// obs_integration_test.go exercises the observability layer end to end
// through the public facade: a system with metrics attached records an
// accepted open and a blocked link-following attack, and both show up in
// the registry's JSON and Prometheus exports.
package pfirewall_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pfirewall"
)

func TestObservabilityIntegration(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{
		Firewall:       true,
		Observability:  true,
		ObsSampleEvery: 1, // sample every request so histograms fill deterministically
	})
	sys.MustInstallRules(pfirewall.StandardRules())

	adversary := sys.NewAdversary()
	if err := adversary.Symlink("/etc/shadow", "/tmp/innocent"); err != nil {
		t.Fatal(err)
	}
	victim := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd"})
	if _, err := victim.Open("/tmp/innocent", pfirewall.O_RDONLY, 0); !errors.Is(err, pfirewall.ErrPFDenied) {
		t.Fatalf("link walk should be blocked, got %v", err)
	}
	fd, err := victim.Open("/etc/passwd", pfirewall.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim.Close(fd)

	reg := sys.Obs()
	if reg == nil {
		t.Fatal("Obs() must be non-nil with Observability set")
	}
	snap := reg.JSON()

	if got := snap.Counters["pf_mediations_total"]["op=FILE_OPEN,verdict=ACCEPT"]; got < 1 {
		t.Errorf("FILE_OPEN accepts = %d, want >= 1", got)
	}
	if got := snap.Counters["kernel_syscalls_total"]["nr=open"]; got < 2 {
		t.Errorf("open syscalls = %d, want >= 2", got)
	}
	if got := snap.Histograms["pf_gauntlet_latency_ns"]["op=FILE_OPEN"].Count; got < 1 {
		t.Errorf("FILE_OPEN latency samples = %d, want >= 1", got)
	}

	// The blocked attack must land in the flight recorder with its
	// identity intact.
	drops := snap.Rings["pf_flight_drop"]
	if drops.Total < 1 || len(drops.Events) == 0 {
		t.Fatalf("flight recorder empty after a DROP: %+v", drops)
	}
	ev := drops.Events[len(drops.Events)-1]
	if ev.Verdict != "DROP" || ev.Path != "/tmp/innocent" {
		t.Errorf("drop event = %+v, want DROP of /tmp/innocent", ev)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		`pf_verdicts_total{verdict="DROP"} 1`,
		"# TYPE pf_gauntlet_latency_ns histogram",
		"vfs_dcache_hits_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus export missing %q", want)
		}
	}

	// Without the option, the registry is absent and the hot path carries
	// no instrumentation.
	plain := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	if plain.Obs() != nil {
		t.Error("Obs() must be nil without Observability")
	}
}
