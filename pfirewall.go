// Package pfirewall is a faithful, fully simulated reproduction of
// "Process Firewalls: Protecting Processes During Resource Access"
// (Vijayakumar, Schiffman, Jaeger — EuroSys 2013).
//
// The Process Firewall is a kernel mechanism that protects *benign*
// processes from resource access attacks (link following, TOCTTOU races,
// untrusted search paths, PHP file inclusion, signal races, squatting) by
// filtering every resource access against rules that combine process
// context — which instruction is asking, what system calls came before —
// with system context — resource labels and adversary accessibility.
//
// This package is the public facade over a complete user-space simulation:
//
//   - a Unix-like kernel (internal/kernel) with a VFS (internal/vfs),
//     SELinux-style MAC (internal/mac), simulated user stacks
//     (internal/ustack), signals, and deterministic adversary interleaving;
//   - the firewall engine itself (internal/pf) with the paper's match,
//     target and context modules, lazy context collection, caching, and
//     entrypoint-specific chains;
//   - the pftables rule language (internal/pftables);
//   - the paper's simulated programs and exploits E1–E9
//     (internal/programs, internal/attacks);
//   - rule generation from traces and vulnerabilities (internal/trace,
//     internal/rulegen);
//   - the complete evaluation harness (bench_test.go, cmd/pfbench,
//     cmd/attacklab, cmd/rulegen, cmd/pfctl).
//
// # Quick start
//
//	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
//	sys.MustInstallRules(pfirewall.StandardRules())
//
//	adversary := sys.NewAdversary()
//	adversary.Symlink("/etc/shadow", "/tmp/innocent")
//
//	victim := sys.NewProcess(pfirewall.ProcessSpec{
//		UID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd",
//	})
//	_, err := victim.Open("/tmp/innocent", pfirewall.O_RDONLY, 0)
//	// err == pfirewall.ErrPFDenied: the firewall blocked the link walk.
package pfirewall

import (
	"fmt"

	"pfirewall/internal/kernel"
	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/trace"
)

// Aliases exposing the simulation's core types through the public package.
type (
	// Proc is a simulated process (task structure).
	Proc = kernel.Proc
	// ProcessSpec parameterizes process creation.
	ProcessSpec = kernel.ProcSpec
	// Kernel is the simulated operating system kernel.
	Kernel = kernel.Kernel
	// Engine is the Process Firewall engine.
	Engine = pf.Engine
	// EngineConfig selects the engine's optimizations (Table 6 columns).
	EngineConfig = pf.Config
	// Rule is a compiled firewall rule.
	Rule = pf.Rule
	// Verdict is an ACCEPT/DROP decision.
	Verdict = pf.Verdict
	// Label is a MAC (SELinux-style) type label.
	Label = mac.Label
	// Policy is the MAC policy with adversary accessibility.
	Policy = mac.Policy
	// TraceStore accumulates LOG records for rule generation.
	TraceStore = trace.Store
	// Table8Row is one row of the rule-generation study.
	Table8Row = rulegen.Table8Row
)

// Open flags re-exported for examples and callers.
const (
	O_RDONLY   = kernel.O_RDONLY
	O_WRONLY   = kernel.O_WRONLY
	O_RDWR     = kernel.O_RDWR
	O_CREAT    = kernel.O_CREAT
	O_EXCL     = kernel.O_EXCL
	O_NOFOLLOW = kernel.O_NOFOLLOW
	O_TRUNC    = kernel.O_TRUNC
)

// Signals.
const (
	SIGKILL = kernel.SIGKILL
	SIGALRM = kernel.SIGALRM
	SIGTERM = kernel.SIGTERM
)

// ErrPFDenied is returned by system calls the firewall blocks.
var ErrPFDenied = kernel.ErrPFDenied

// Options parameterizes NewSystem.
type Options struct {
	// Firewall attaches a Process Firewall engine.
	Firewall bool
	// Config overrides the engine configuration; the default is the fully
	// optimized engine (context caching, lazy collection, entrypoint
	// chains). Ignored unless Firewall is set.
	Config *EngineConfig
	// MACEnforcing turns MAC denials into errors (SELinux enforcing mode).
	MACEnforcing bool
	// WebTreeDepth controls the depth of the prebuilt web content tree
	// used by the path-length experiments.
	WebTreeDepth int
	// CollectTrace attaches a trace store and a system-wide LOG rule so
	// every resource access is recorded for rule generation.
	CollectTrace bool
	// Observability attaches the lock-free metrics layer (internal/obs):
	// syscall/mediation counters, latency histograms, cache statistics,
	// and the PF flight recorder, exportable as Prometheus text or JSON
	// through System.Obs().
	Observability bool
	// ObsSampleEvery overrides the latency sampling period (default 16;
	// 1 samples every request). Ignored unless Observability is set.
	ObsSampleEvery int
}

// System is one simulated machine: kernel, policy, programs, and
// (optionally) the firewall.
type System struct {
	world *programs.World
	// Trace is non-nil when Options.CollectTrace was set.
	Trace *TraceStore
	obs   *obs.Registry
}

// NewSystem builds the standard Ubuntu-flavoured world of the paper's
// evaluation: trusted system domains, an untrusted user, /tmp with the
// sticky bit, web content, a PHP application, D-Bus, and the program
// binaries at their usual paths.
func NewSystem(opts Options) *System {
	wopts := programs.WorldOpts{
		MACEnforcing: opts.MACEnforcing,
		WebTreeDepth: opts.WebTreeDepth,
	}
	if opts.Firewall {
		cfg := pf.Optimized()
		if opts.Config != nil {
			cfg = *opts.Config
		}
		wopts.PF = &cfg
	}
	if opts.Observability {
		wopts.Obs = obs.New()
		wopts.ObsEvery = opts.ObsSampleEvery
	}
	w := programs.NewWorld(wopts)
	sys := &System{world: w, obs: wopts.Obs}
	if opts.CollectTrace && w.Engine != nil {
		sys.Trace = trace.NewStore()
		w.Engine.Logger = sys.Trace.Collector(w.K.Policy.SIDs())
		w.Engine.Append("input", &pf.Rule{Target: &pf.LogTarget{Prefix: "trace"}})
	}
	return sys
}

// Kernel exposes the simulated kernel.
func (s *System) Kernel() *Kernel { return s.world.K }

// Obs exposes the metrics registry, or nil when Options.Observability was
// not set. Use its WritePrometheus/WriteJSON/Handler methods to export.
func (s *System) Obs() *obs.Registry { return s.obs }

// Firewall exposes the engine, or nil when disabled.
func (s *System) Firewall() *Engine { return s.world.Engine }

// World exposes the program-layer world for advanced scenarios (the
// simulated Apache, PHP, ld.so, D-Bus, sshd models live there).
func (s *System) World() *programs.World { return s.world }

// NewProcess starts a process.
func (s *System) NewProcess(spec ProcessSpec) *Proc { return s.world.NewProc(spec) }

// NewAdversary starts the canonical untrusted local user (uid 1000,
// user_t, home /home/user).
func (s *System) NewAdversary() *Proc { return s.world.NewUser() }

// InstallRules parses and installs pftables rule lines.
func (s *System) InstallRules(lines []string) (int, error) {
	if s.world.Engine == nil {
		return 0, fmt.Errorf("pfirewall: system has no firewall attached")
	}
	return s.world.InstallRules(lines)
}

// MustInstallRules installs rules and panics on error; for examples and
// world setup.
func (s *System) MustInstallRules(lines []string) {
	if _, err := s.InstallRules(lines); err != nil {
		panic(err)
	}
}

// InstallRule installs a single rule line.
func (s *System) InstallRule(line string) error {
	_, err := s.InstallRules([]string{line})
	return err
}

// StandardRules returns the paper's Table 5 rule set (R1–R12 plus the
// system-wide safe_open rule).
func StandardRules() []string { return programs.StandardRules() }

// SafeOpenRules returns the firewall rules equivalent to Chari et al.'s
// safe_open (used by the Figure 4 experiment).
func SafeOpenRules() []string {
	return []string{
		`pftables -o LNK_FILE_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`,
	}
}

// OptimizedConfig returns the fully optimized engine configuration.
func OptimizedConfig() EngineConfig { return pf.Optimized() }

// RuleEnv returns a pftables compilation environment bound to this system
// (label resolution, path→inode lookup, NR_* syscall names).
func (s *System) RuleEnv() *pftables.Env { return s.world.Env }

// SuggestRules runs the paper's runtime-analysis rule suggestion over the
// system's collected trace (requires Options.CollectTrace).
func (s *System) SuggestRules(threshold int) ([]string, error) {
	if s.Trace == nil {
		return nil, fmt.Errorf("pfirewall: system was not created with CollectTrace")
	}
	var out []string
	for _, sug := range rulegen.SuggestRules(s.Trace, threshold) {
		out = append(out, sug.Rule)
	}
	return out, nil
}
