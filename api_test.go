package pfirewall_test

import (
	"errors"
	"strings"
	"testing"

	"pfirewall"
	"pfirewall/internal/programs"
)

func TestQuickstartFlow(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	if err := sys.InstallRule(`pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP`); err != nil {
		t.Fatal(err)
	}
	adversary := sys.NewAdversary()
	if err := adversary.Symlink("/etc/shadow", "/tmp/innocent"); err != nil {
		t.Fatal(err)
	}
	victim := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd"})
	if _, err := victim.Open("/tmp/innocent", pfirewall.O_RDONLY, 0); !errors.Is(err, pfirewall.ErrPFDenied) {
		t.Errorf("open trap: %v, want ErrPFDenied", err)
	}
	fd, err := victim.Open("/etc/shadow", pfirewall.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("direct open: %v", err)
	}
	victim.Close(fd)
	if sys.Firewall().Stats.Drops.Load() != 1 {
		t.Errorf("drops = %d, want 1", sys.Firewall().Stats.Drops.Load())
	}
}

func TestSystemWithoutFirewall(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{})
	if sys.Firewall() != nil {
		t.Error("firewall should be nil")
	}
	if _, err := sys.InstallRules(pfirewall.StandardRules()); err == nil {
		t.Error("installing rules without a firewall must fail")
	}
	if _, err := sys.SuggestRules(1); err == nil {
		t.Error("SuggestRules without CollectTrace must fail")
	}
	// The kernel still works.
	p := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd"})
	if _, err := p.Open("/etc/passwd", pfirewall.O_RDONLY, 0); err != nil {
		t.Errorf("open: %v", err)
	}
}

func TestStandardRulesInstallCleanly(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	n, err := sys.InstallRules(pfirewall.StandardRules())
	if err != nil || n != len(pfirewall.StandardRules()) {
		t.Fatalf("installed %d, %v", n, err)
	}
	if sys.Firewall().RuleCount() != n {
		t.Errorf("rule count = %d, want %d", sys.Firewall().RuleCount(), n)
	}
}

func TestCollectTraceAndSuggest(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true, CollectTrace: true})
	if sys.Trace == nil {
		t.Fatal("trace store missing")
	}
	ld := programs.NewLinker(sys.World())
	for i := 0; i < 12; i++ {
		p := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "httpd_t", Exec: programs.BinApache})
		if _, err := ld.LoadLibrary(p, "libssl.so"); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Trace.Len() == 0 {
		t.Fatal("no trace records collected")
	}
	rules, err := sys.SuggestRules(10)
	if err != nil || len(rules) == 0 {
		t.Fatalf("suggestions: %v, %v", rules, err)
	}
	found := false
	for _, r := range rules {
		if strings.Contains(r, programs.BinLdSo) && strings.Contains(r, "FILE_OPEN") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an ld.so FILE_OPEN suggestion, got:\n%s", strings.Join(rules, "\n"))
	}
}

func TestEngineConfigOption(t *testing.T) {
	cfg := pfirewall.EngineConfig{} // unoptimized
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true, Config: &cfg})
	if got := sys.Firewall().Config(); got != cfg {
		t.Errorf("config = %+v", got)
	}
	def := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	if got := def.Firewall().Config(); got != pfirewall.OptimizedConfig() {
		t.Errorf("default config = %+v", got)
	}
}

func TestSafeOpenRulesBlockCrossOwnerLinks(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	sys.MustInstallRules(pfirewall.SafeOpenRules())
	adversary := sys.NewAdversary()
	adversary.Symlink("/etc/passwd", "/tmp/x")
	victim := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd"})
	if _, err := victim.Open("/tmp/x", pfirewall.O_RDONLY, 0); !errors.Is(err, pfirewall.ErrPFDenied) {
		t.Errorf("err = %v", err)
	}
}

func TestRuleEnvUsableWithPftables(t *testing.T) {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	env := sys.RuleEnv()
	if env == nil || env.Policy == nil || env.LookupPath == nil {
		t.Fatal("rule env incomplete")
	}
	if ino, ok := env.LookupPath("/etc/passwd"); !ok || ino == 0 {
		t.Error("LookupPath broken")
	}
	if _, ok := env.Syscalls["sigreturn"]; !ok {
		t.Error("syscall table missing sigreturn")
	}
}
