# Developer / CI entry points. `make ci` is the tier-1 gate plus the
# race-enabled test suite; `make lint` is the source gate (vet, gofmt, the
# pflint hot-path lock-discipline linter, and the pflint -alloc escape-
# analysis gate that keeps the Filter closure free of unaudited heap
# escapes); `make check` is the ruleset gate (the pfcheck static analyzer
# over every shipped rule base); `make verify` is the invariant gate (the
# pfverify symbolic verifier proving every shipped .inv file and the
# worldgen tenant invariant); `make analyze` bundles lint+check+verify as
# the single CI static-analysis job; `make bench-smoke` is a fast perf sanity
# pass; `make bench-hotpath` refreshes BENCH_hotpath.json, `make bench-ipc`
# refreshes BENCH_ipc.json, `make bench-obs` refreshes BENCH_obs.json
# (observability overhead), `make bench-rulescale` refreshes
# BENCH_rulescale.json (ns/op vs rule-base size, compiled dispatch vs
# linear), and `make bench-alloc` refreshes BENCH_alloc.json (allocs/op,
# bytes/op and tail latency on the armed hot path; `bench-alloc-smoke` is
# the CI variant that additionally fails if the open+close or stat rows
# allocate at all) so the perf trajectory is tracked across PRs.
# `make bench-trace` refreshes the decision-provenance half of
# BENCH_obs.json (tracing disabled vs sampled spans) and enforces the ≤10%
# sampled-tracing budget; `bench-trace-smoke` is the CI variant, which also
# runs the zero-alloc tracing tripwires.
# `make bench-worldscale` refreshes BENCH_worldscale.json — the worldgen +
# fleet stress bed (throughput and mediation latency percentiles vs world
# size up to a million inodes and fleet size, under live process churn and
# rule mutation); it takes minutes and is the perf-PR gate, while
# `bench-worldscale-smoke` is the seconds-long CI cell on the tiny world.
# `make bench-policy` refreshes BENCH_policy.json — the policy control
# plane (incremental vs full publish latency up to 10k rules, fleet
# propagation, open-path p99 disturbance while churning) with the hitless
# gates enforced; `bench-policy-smoke` is the trimmed CI variant.
# `make bench-verify` refreshes BENCH_verify.json — the symbolic
# verifier's full invariant-sweep wall clock vs rule-base size up to 10k
# rules, gated on every invariant proving inside the budget;
# `bench-verify-smoke` is the trimmed CI variant.

GO ?= go

.PHONY: all vet gofmt-check pflint pflint-alloc lint build test test-race ci check verify analyze bench-smoke bench-hotpath bench-ipc bench-obs bench-rulescale bench-rulescale-smoke bench-alloc bench-alloc-smoke bench-trace bench-trace-smoke bench-worldscale bench-worldscale-smoke bench-policy bench-policy-smoke bench-verify bench-verify-smoke

all: lint ci check verify

vet:
	$(GO) vet ./...

gofmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

pflint:
	$(GO) run ./cmd/pflint

pflint-alloc:
	$(GO) run ./cmd/pflint -alloc

lint: vet gofmt-check pflint pflint-alloc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

ci: vet build test-race

# Ruleset gate: the pfcheck static analyzer must pass (no error-severity
# findings) on every shipped example ruleset, the paper's Table 5 base, and
# the synthetic scale bases the benchmarks use.
check:
	for f in examples/rules/*.pft; do $(GO) run ./cmd/pfctl -check -f $$f || exit 1; done
	$(GO) run ./cmd/pfctl -check -standard
	$(GO) run ./cmd/pfctl -check -scale 100
	$(GO) run ./cmd/pfctl -check -scale 1200
	$(GO) run ./cmd/pfctl -check -scale 10000

# Verification gate: the pfverify symbolic verifier must prove every
# shipped invariant file against its ruleset (the paper's Table 5 base and
# the webserver example) and the built-in tenant non-interference
# invariant against a generated deployment's rule base.
verify:
	$(GO) run ./cmd/pfctl -verify -standard -inv examples/rules/standard.inv
	$(GO) run ./cmd/pfctl -verify -f examples/rules/webserver.pft -inv examples/rules/webserver.inv
	$(GO) run ./cmd/pfctl -verify -world tiny

# The whole static-analysis surface as one target (the ci.yml analyze
# job): vet + gofmt + both pflint modes, the pfcheck analyzer over every
# shipped rule base, and the pfverify invariant proofs.
analyze: lint check verify

# A quick pass over the hot-path benchmarks: single-thread latency
# (Table 6 open/stat), ruleset-size flatness, multi-goroutine scaling with
# the metrics layer enabled, and a short off/on overhead comparison
# emitting BENCH_obs.json.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkTable6/(stat|open\+close)/EPTSPC|BenchmarkRuleBaseScaling/eptchains' -benchtime 0.1s .
	PFBENCH_OBS=1 $(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 100x .
	$(GO) run ./cmd/pfbench -obs -iters 2000 -obs-json BENCH_obs.json

bench-hotpath:
	$(GO) run ./cmd/pfbench -parallel -iters 20000 -json BENCH_hotpath.json

bench-ipc:
	$(GO) run ./cmd/pfbench -ipc -iters 20000 -ipc-json BENCH_ipc.json

bench-obs:
	$(GO) run ./cmd/pfbench -obs -iters 20000 -obs-json BENCH_obs.json

# Decision-provenance overhead: the metrics off/on cells plus the tracing
# off/sampled cells in one BENCH_obs.json, with the sampled-tracing budget
# enforced (≤10% on the open path at the default period).
bench-trace:
	$(GO) run ./cmd/pfbench -obs -tracing -tracing-gate -iters 20000 -obs-json BENCH_obs.json

# CI variant: fewer iterations, the same combined artifact and gate, plus
# the allocation tripwires — tracing disabled must stay at 0 allocs/op on
# the armed open path, and even TraceEvery=1 span capture must not touch
# the heap.
bench-trace-smoke:
	$(GO) test -run 'TestZeroAllocTracingDisabled|TestSampledTracingAllocBounded' ./internal/lmbench/
	$(GO) run ./cmd/pfbench -obs -tracing -tracing-gate -iters 8000 -obs-json BENCH_obs.json

bench-rulescale:
	$(GO) run ./cmd/pfbench -rulescale -iters 50000 -rulescale-json BENCH_rulescale.json

# CI variant: fewer iterations and the 10k-rule cells dropped, but the same
# JSON artifact, so every PR still records the compiled-vs-linear curve.
bench-rulescale-smoke:
	$(GO) run ./cmd/pfbench -rulescale -iters 4000 -rulescale-max 1200 -rulescale-json BENCH_rulescale.json

bench-alloc:
	$(GO) run ./cmd/pfbench -alloc -iters 20000 -alloc-json BENCH_alloc.json

# CI variant: fewer iterations, same artifact, plus the hard gate — the run
# fails if the single-syscall file workloads allocate at all.
bench-alloc-smoke:
	$(GO) run ./cmd/pfbench -alloc -alloc-gate -iters 4000 -alloc-json BENCH_alloc.json

# The full sweep: small/medium/large worlds (the large preset crosses a
# million inodes) × 4/8-instance fleets, 2s of churned traffic per cell.
# Run this on performance PRs; it is the standing regression bed.
bench-worldscale:
	$(GO) run ./cmd/pfbench -worldscale -worldscale-secs 2 -worldscale-json BENCH_worldscale.json

# CI variant: the tiny world and a small fleet for a fraction of a second
# per cell — proves the bed runs (conservation, no unexpected verdicts)
# without holding the pipeline for minutes.
bench-worldscale-smoke:
	$(GO) run ./cmd/pfbench -worldscale -worldscale-sizes tiny,small -worldscale-fleets 2 -worldscale-secs 0.3 -worldscale-json BENCH_worldscale_smoke.json

# Policy control plane: publish latency full-vs-incremental at
# 100/1200/10000 rules, canary propagation across a policyd fleet, and
# open-path p99 while updates stream in. The gate requires a >=10x
# incremental win at 10k rules, zero stale verdicts after any completed
# publish, verdict conservation, and <=10% best-round p99 disturbance.
bench-policy:
	$(GO) run ./cmd/pfbench -policy -policy-gate -iters 20000 -policy-json BENCH_policy.json

# CI variant: the 10k cells dropped and fewer publishes/opens per cell,
# with the same artifact shape and the same hitless gates (the speedup bar
# scales down with the trimmed base).
bench-policy-smoke:
	$(GO) run ./cmd/pfbench -policy -policy-gate -iters 6000 -policy-publishes 120 -policy-max 1200 -policy-json BENCH_policy_smoke.json

# Verifier scaling: full invariant-sweep wall clock at 100/1200/10000
# rules, with the gate enforcing that every invariant proves and the 10k
# sweep stays under the recorded budget.
bench-verify:
	$(GO) run ./cmd/pfbench -verify -verify-gate -verify-json BENCH_verify.json

# CI variant: the 10k cell dropped, same artifact shape and gates.
bench-verify-smoke:
	$(GO) run ./cmd/pfbench -verify -verify-gate -verify-max 1200 -verify-json BENCH_verify_smoke.json
