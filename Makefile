# Developer / CI entry points. `make check` is the tier-1 gate plus the
# race-enabled test suite; `make bench-smoke` is a fast perf sanity pass;
# `make bench-hotpath` refreshes BENCH_hotpath.json and `make bench-ipc`
# refreshes BENCH_ipc.json so the scaling trajectory is tracked across PRs.

GO ?= go

.PHONY: all vet build test test-race check bench-smoke bench-hotpath bench-ipc

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

check: vet build test-race

# A quick pass over the hot-path benchmarks: single-thread latency
# (Table 6 open/stat), ruleset-size flatness, and multi-goroutine scaling.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkTable6/(stat|open\+close)/EPTSPC|BenchmarkRuleBaseScaling/eptchains|BenchmarkParallel' -benchtime 0.1s .

bench-hotpath:
	$(GO) run ./cmd/pfbench -parallel -iters 20000 -json BENCH_hotpath.json

bench-ipc:
	$(GO) run ./cmd/pfbench -ipc -iters 20000 -ipc-json BENCH_ipc.json
