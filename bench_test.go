// bench_test.go regenerates every performance table and figure of the
// paper's evaluation (Section 6.2) as Go benchmarks:
//
//	BenchmarkTable6   — lmbench-style syscall latency × PF configuration
//	BenchmarkTable7   — macrobenchmarks × {Without PF, PF Base, PF Full}
//	BenchmarkFigure4  — open variants × path length
//	BenchmarkFigure5  — Apache SymLinksIfOwnerMatch: program checks vs rule R8
//	BenchmarkRuleBaseScaling — ablation: entrypoint chains vs linear scan
//
// Run with: go test -bench=. -benchmem
// The cmd/pfbench tool prints the same data in the paper's table layout.
package pfirewall_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/lmbench"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/safeopen"
	"pfirewall/internal/webbench"
)

// parallelBenchWorld builds the fully optimized world the parallel
// benchmarks run against. PFBENCH_OBS=1 additionally attaches the metrics
// layer, so `PFBENCH_OBS=1 go test -bench=BenchmarkParallel` measures the
// observability-enabled hot path against the same benchmark baseline (the
// `make bench-smoke` comparison).
func parallelBenchWorld(b *testing.B) *programs.World {
	b.Helper()
	cfg := pf.Optimized()
	wopts := programs.WorldOpts{PF: &cfg}
	if os.Getenv("PFBENCH_OBS") == "1" {
		wopts.Obs = obs.New()
	}
	w := programs.NewWorld(wopts)
	if _, err := w.InstallRules(lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize)); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable6 measures each syscall workload under each firewall
// configuration; compare ns/op across configs to reproduce Table 6's
// overhead columns.
func BenchmarkTable6(b *testing.B) {
	for _, wl := range lmbench.Workloads() {
		for _, cfg := range lmbench.Configs() {
			b.Run(fmt.Sprintf("%s/%s", wl.Name, cfg.Name), func(b *testing.B) {
				w := lmbench.World(cfg)
				p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
				for f := 0; f < 16; f++ {
					p.PushFrame(programs.BinSshd, uint64(0x100+f*0x10))
				}
				p.SyscallSite(programs.BinSshd, 0x300)
				body := wl.Setup(w, p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					body()
				}
			})
		}
	}
}

// BenchmarkTable7 measures the macrobenchmarks. Apache-build units and
// boot services are fixed per iteration so ns/op is comparable across
// configurations.
func BenchmarkTable7(b *testing.B) {
	fullRules := lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize)
	for _, cfg := range webbench.MacroConfigs() {
		b.Run("ApacheBuild/"+cfg.Name, func(b *testing.B) {
			w := webbench.NewMacroWorld(cfg, fullRules)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := webbench.ApacheBuild(w, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Boot/"+cfg.Name, func(b *testing.B) {
			w := webbench.NewMacroWorld(cfg, fullRules)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := webbench.Boot(w, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, clients := range []int{1, 100} {
			b.Run(fmt.Sprintf("Web%d/%s", clients, cfg.Name), func(b *testing.B) {
				w := webbench.NewMacroWorld(cfg, fullRules)
				a := programs.NewApache(w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := webbench.RunWeb(w, a, clients, 200, "/index.html")
					if res.Errors > 0 {
						b.Fatalf("%d errors", res.Errors)
					}
				}
			})
		}
	}
}

// BenchmarkFigure4 measures each open variant at each path length.
func BenchmarkFigure4(b *testing.B) {
	for _, n := range safeopen.PaperPathLens {
		for _, v := range safeopen.Variants() {
			b.Run(fmt.Sprintf("%s/n=%d", v.Name, n), func(b *testing.B) {
				_, p, path := safeopen.Figure4World(n, v.NeedsPF)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd, err := v.Open(p, path)
					if err != nil {
						b.Fatal(err)
					}
					p.Close(fd)
				}
			})
		}
	}
}

// BenchmarkFigure5 measures Apache request handling with the symlink-owner
// checks in the program versus in the firewall, across client counts and
// path lengths.
func BenchmarkFigure5(b *testing.B) {
	for _, mode := range []string{"program", "pf-rules"} {
		for _, c := range webbench.Figure5Clients {
			for _, n := range webbench.Figure5PathLens {
				b.Run(fmt.Sprintf("%s/c=%d/n=%d", mode, c, n), func(b *testing.B) {
					w, a := webbench.NewFigure5World(mode, n)
					_ = w
					path := webbench.DeepPath(n)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res := webbench.RunWeb(w, a, c, 100, path)
						if res.Errors > 0 {
							b.Fatalf("%d errors", res.Errors)
						}
					}
				})
			}
		}
	}
}

// BenchmarkRuleBaseScaling is the ablation for design decision 2 of
// DESIGN.md: with entrypoint-specific chains, per-access cost is flat in
// the rule-base size; with a linear scan it grows.
func BenchmarkRuleBaseScaling(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		for _, nrules := range []int{10, 100, 1000, 5000} {
			name := "linear"
			if indexed {
				name = "eptchains"
			}
			b.Run(fmt.Sprintf("%s/rules=%d", name, nrules), func(b *testing.B) {
				cfg := pf.Config{CtxCache: true, LazyCtx: true, EptChains: indexed}
				w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
				if _, err := w.InstallRules(lmbench.SyntheticRuleBase(nrules)); err != nil {
					b.Fatal(err)
				}
				p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
				p.SyscallSite(programs.BinSshd, 0x300)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
					if err != nil {
						b.Fatal(err)
					}
					p.Close(fd)
				}
			})
		}
	}
}

// BenchmarkRuleScale measures generic-rule scaling: the mediated open+close
// pair against the deployment-scale generated rule base, with the
// publish-time dispatch index off ("linear" — the paper's EPTSPC
// configuration) and on ("compiled"). Compiled dispatch should stay near
// flat as the rule count grows. The 10,000-rule cells are gated behind
// PFBENCH_RULESCALE=1 (like the PFBENCH_OBS benches) so a blanket
// `go test -bench .` stays fast; `pfbench -rulescale` always runs them.
func BenchmarkRuleScale(b *testing.B) {
	for _, mode := range []struct {
		name      string
		ruleIndex bool
	}{{"linear", false}, {"compiled", true}} {
		for _, nrules := range rulegen.ScaleSizes {
			b.Run(fmt.Sprintf("%s/rules=%d", mode.name, nrules), func(b *testing.B) {
				if nrules > 1200 && os.Getenv("PFBENCH_RULESCALE") != "1" {
					b.Skip("set PFBENCH_RULESCALE=1 for the 10k-rule cells")
				}
				cfg := pf.Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: mode.ruleIndex}
				w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
				if _, err := w.InstallRules(rulegen.ScaleRuleBase(1, nrules)); err != nil {
					b.Fatal(err)
				}
				p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
				p.SyscallSite(programs.BinSshd, 0x300)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
					if err != nil {
						b.Fatal(err)
					}
					p.Close(fd)
				}
			})
		}
	}
}

// BenchmarkParallelOpen measures the mediated open+close hot path with b.N
// split across g goroutines, each driving its own process (per-process
// syscall state is single-flow by design). The shared read structures —
// dentry cache, MAC adversary snapshot, hook table, PF ruleset — are all
// hit concurrently; because every one of them is published through an
// atomic pointer, ns/op should fall toward 1/cores as g grows on multicore
// hardware (and stay flat on one core).
func BenchmarkParallelOpen(b *testing.B) {
	for _, g := range lmbench.ParallelFanout {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			w := parallelBenchWorld(b)
			procs := make([]*kernel.Proc, g)
			for i := range procs {
				p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
				for f := 0; f < 16; f++ {
					p.PushFrame(programs.BinSshd, uint64(0x100+f*0x10))
				}
				p.SyscallSite(programs.BinSshd, 0x300)
				// Warm the per-process context caches so the timed region
				// measures steady state.
				fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
				if err != nil {
					b.Fatal(err)
				}
				p.Close(fd)
				procs[i] = p
			}
			per := b.N / g
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(p *kernel.Proc) {
					defer wg.Done()
					for n := 0; n < per; n++ {
						fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
						if err != nil {
							b.Error(err)
							return
						}
						p.Close(fd)
					}
				}(procs[i])
			}
			wg.Wait()
		})
	}
}

// BenchmarkParallelWeb holds the total request count fixed and varies the
// client concurrency, so ns/op isolates how the mediation stack behaves as
// more simulated Apache workers contend on the shared world.
func BenchmarkParallelWeb(b *testing.B) {
	// 320 requests split evenly at every fan-out in the grid (RunWeb floors
	// at 40 requests per client, so 8 clients is the max even split).
	const totalRequests = 320
	fullRules := lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize)
	for _, g := range lmbench.ParallelFanout {
		b.Run(fmt.Sprintf("clients=%d", g), func(b *testing.B) {
			cfg := webbench.MacroConfigs()[len(webbench.MacroConfigs())-1] // PF Full
			w := webbench.NewMacroWorld(cfg, fullRules)
			a := programs.NewApache(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := webbench.RunWeb(w, a, g, totalRequests, "/index.html")
				if res.Errors > 0 {
					b.Fatalf("%d errors", res.Errors)
				}
			}
		})
	}
}

// BenchmarkParallelIPC measures the mediated socket round trip — connect,
// accept, request, reply, close — with b.N split across g goroutines, each
// driving its own daemon/client process pair against a private abstract
// listener. The namespace registry and the PF ruleset are shared across
// all goroutines; both are published through atomic pointers, so the read
// side scales like the open path in BenchmarkParallelOpen.
func BenchmarkParallelIPC(b *testing.B) {
	for _, g := range lmbench.ParallelFanout {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			w := parallelBenchWorld(b)
			type pair struct {
				daemon, client *kernel.Proc
				sfd            int
				name           string
			}
			pairs := make([]pair, g)
			for i := range pairs {
				daemon := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "dbusd_t", Exec: programs.BinDbusD})
				client := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
				client.SyscallSite(programs.BinSshd, 0x300)
				name := fmt.Sprintf("bench-ipc-%d", i)
				sfd, err := daemon.BindAbstract(name)
				if err != nil {
					b.Fatal(err)
				}
				if err := daemon.Listen(sfd, 16); err != nil {
					b.Fatal(err)
				}
				pairs[i] = pair{daemon: daemon, client: client, sfd: sfd, name: name}
			}
			req := []byte("GET job\n")
			per := b.N / g
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(pr pair) {
					defer wg.Done()
					for n := 0; n < per; n++ {
						cfd, err := pr.client.ConnectAbstract(pr.name)
						if err != nil {
							b.Error(err)
							return
						}
						afd, err := pr.daemon.Accept(pr.sfd)
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := pr.client.Send(cfd, req); err != nil {
							b.Error(err)
							return
						}
						if _, err := pr.daemon.Recv(afd, 0); err != nil {
							b.Error(err)
							return
						}
						pr.client.Close(cfd)
						pr.daemon.Close(afd)
					}
				}(pairs[i])
			}
			wg.Wait()
		})
	}
}

// BenchmarkAdversaryCache is the ablation for the MAC-layer memoization of
// adversary accessibility, which sits on the PF hot path for every
// ADV_ACCESS and ~{SYSHIGH} evaluation.
func BenchmarkAdversaryCache(b *testing.B) {
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules([]string{
		`pftables -o FILE_OPEN -m ADV_ACCESS --write --is true -j LOG`,
	}); err != nil {
		b.Fatal(err)
	}
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			b.Fatal(err)
		}
		p.Close(fd)
	}
}
