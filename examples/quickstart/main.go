// Quickstart: build a simulated system, plant the classic /tmp symlink
// trap, and watch the Process Firewall block the victim's resource access
// while leaving legitimate accesses untouched.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"

	"pfirewall"
)

func main() {
	// A system with the firewall attached in its fully optimized
	// configuration (context caching + lazy collection + entrypoint chains).
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})

	// One rule, straight from the paper's Table 3 example:
	// "Disallow following links in temp filesystems."
	if err := sys.InstallRule(`pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP`); err != nil {
		panic(err)
	}

	// The local adversary (uid 1000) plants a symlink in the sticky /tmp
	// pointing at the password database.
	adversary := sys.NewAdversary()
	if err := adversary.Symlink("/etc/shadow", "/tmp/innocent-looking"); err != nil {
		panic(err)
	}
	fmt.Println("adversary planted /tmp/innocent-looking -> /etc/shadow")

	// A root daemon later opens what it believes is its own temp file.
	victim := sys.NewProcess(pfirewall.ProcessSpec{
		UID: 0, GID: 0, Label: "sshd_t", Exec: "/usr/sbin/sshd",
	})
	_, err := victim.Open("/tmp/innocent-looking", pfirewall.O_RDONLY, 0)
	switch {
	case errors.Is(err, pfirewall.ErrPFDenied):
		fmt.Println("firewall blocked the symlink walk:", err)
	case err == nil:
		fmt.Println("ATTACK SUCCEEDED — victim reached /etc/shadow through /tmp")
	default:
		fmt.Println("unexpected error:", err)
	}

	// Legitimate access to the same file is unaffected: the rule keys on
	// the resource-access pattern, not the file.
	if fd, err := victim.Open("/etc/shadow", pfirewall.O_RDONLY, 0); err == nil {
		data, _ := victim.ReadAll(fd)
		victim.Close(fd)
		fmt.Printf("direct open of /etc/shadow still works (read %d bytes)\n", len(data))
	} else {
		fmt.Println("unexpected: direct open failed:", err)
	}

	drops := sys.Firewall().Stats.Drops.Load()
	fmt.Printf("firewall verdicts so far: %d dropped\n", drops)
}
