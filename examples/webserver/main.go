// Webserver: the paper's motivating example (Section 1). The same Apache
// process must read web content from its serve entrypoint and the password
// database from its authentication entrypoint — and nothing else from
// either. Access control cannot express this (it treats all of the
// process's system calls equally); per-entrypoint firewall rules can.
//
// The example also demonstrates rule R8: SymLinksIfOwnerMatch enforced in
// the firewall instead of by per-component lstat checks in the program.
//
// Run with: go run ./examples/webserver
package main

import (
	"errors"
	"fmt"

	"pfirewall"
	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
	"pfirewall/internal/webbench"
)

func main() {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true, WebTreeDepth: 3})
	sys.MustInstallRules([]string{
		// The serve entrypoint may only touch web content.
		fmt.Sprintf(`pftables -p %s -i 0x%x -d ~{httpd_content_t} -o FILE_OPEN -j DROP`,
			programs.BinApache, programs.EntryApacheServe),
		// R8: symlink-owner matching in the firewall.
		webbench.SymlinkOwnerRule(),
	})

	apache := programs.NewApache(sys.World())
	worker := apache.Spawn()

	// Normal request.
	body, err := apache.Serve(worker, "/index.html")
	fmt.Printf("GET /index.html -> %q, err=%v\n", body, err)

	// Directory traversal request for the password file: the serve
	// entrypoint is confined to httpd_content_t, so the firewall drops it.
	_, err = apache.Serve(worker, "/../../../etc/shadow")
	fmt.Printf("GET /../../../etc/shadow -> blocked=%v (%v)\n",
		errors.Is(err, pfirewall.ErrPFDenied), err)

	// Authentication reads the very same file from its own entrypoint.
	ok, err := apache.Authenticate(worker, "root")
	fmt.Printf("authenticate(root) -> %v, err=%v\n", ok, err)

	// Symlink-owner mismatch: a compromised upload leaves a user-owned
	// symlink inside DocumentRoot pointing at a root file.
	root := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "httpd_t", Exec: programs.BinSh})
	if err := root.Symlink("/etc/passwd", "/var/www/html/leak.html"); err != nil {
		panic(err)
	}
	res, err := sys.Kernel().FS.Resolve(nil, "/var/www/html/leak.html", vfs.ResolveOpts{}, nil)
	if err != nil {
		panic(err)
	}
	sys.Kernel().FS.Chown(res.Node, 1000, 1000) // now user-owned

	// Apache must walk the link from its link-read entrypoint for R8 to
	// key on it.
	worker.SyscallSite(programs.BinApache, programs.EntryApacheLink)
	_, err = worker.Open("/var/www/html/leak.html", kernel.O_RDONLY, 0)
	fmt.Printf("GET /leak.html (cross-owner symlink) -> blocked=%v (%v)\n",
		errors.Is(err, pfirewall.ErrPFDenied), err)
}
