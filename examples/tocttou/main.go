// TOCTTOU: the dbus-daemon bind→chmod race of exploit E6. The daemon binds
// its socket, then chmods it by path; an adversary who owns the directory
// swaps the binding in between, turning the daemon's chmod into an
// arbitrary root chmod of /etc/shadow.
//
// Rules R5/R6 record the inode at bind time in the per-process STATE
// dictionary and drop any setattr whose inode differs — the paper's
// stateful, system-call-trace context (Table 2, row 3).
//
// Run with: go run ./examples/tocttou
package main

import (
	"errors"
	"fmt"

	"pfirewall"
	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

func run(withPF bool) {
	var sys *pfirewall.System
	if withPF {
		sys = pfirewall.NewSystem(pfirewall.Options{Firewall: true})
		sys.MustInstallRules([]string{
			fmt.Sprintf(`pftables -i 0x%x -p %s -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO`,
				programs.EntryDbusBind, programs.BinDbusD),
			fmt.Sprintf(`pftables -i 0x%x -p %s -o SOCKET_SETATTR,FILE_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP`,
				programs.EntryDbusChmod, programs.BinDbusD),
		})
	} else {
		sys = pfirewall.NewSystem(pfirewall.Options{})
	}

	// The adversary owns the directory the session socket lives in.
	adversary := sys.NewAdversary()
	if err := adversary.Mkdir("/tmp/dbus", 0o777); err != nil {
		panic(err)
	}

	daemon := programs.NewDbusDaemon(sys.World())
	daemon.SocketPath = "/tmp/dbus/session_socket"
	dproc := daemon.Spawn()

	// The race: at the daemon's chmod syscall, the adversary renames the
	// socket away and plants a symlink to /etc/shadow.
	swapped := false
	hook := sys.Kernel().AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == dproc && nr == kernel.NrChmod && !swapped {
			swapped = true
			adversary.Rename("/tmp/dbus/session_socket", "/tmp/dbus/stolen")
			adversary.Symlink("/etc/shadow", "/tmp/dbus/session_socket")
		}
	})
	defer sys.Kernel().RemoveHook(hook)

	err := daemon.Start(dproc)
	res, _ := sys.Kernel().FS.Resolve(nil, "/etc/shadow", vfs.ResolveOpts{}, nil)
	compromised := res.Node.Mode&0o022 != 0

	fmt.Printf("PF=%-5v daemon start err=%v\n", withPF, err)
	fmt.Printf("        /etc/shadow mode=%04o compromised=%v (blocked=%v)\n",
		res.Node.Mode, compromised, errors.Is(err, pfirewall.ErrPFDenied))
}

func main() {
	fmt.Println("--- without the Process Firewall ---")
	run(false)
	fmt.Println("--- with rules R5/R6 installed ---")
	run(true)
}
