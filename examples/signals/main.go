// Signals: the OpenSSH non-reentrant signal handler race (exploit E5,
// CVE-2006-5051). A second SIGALRM delivered while the grace-period
// handler runs re-enters non-reentrant cleanup code. The firewall's signal
// rules (R9–R12) track handler entry/exit in the STATE dictionary and drop
// nested deliveries — something no filesystem-oriented defense can express.
//
// Run with: go run ./examples/signals
package main

import (
	"fmt"

	"pfirewall"
	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
)

func run(withPF bool) {
	var sys *pfirewall.System
	if withPF {
		sys = pfirewall.NewSystem(pfirewall.Options{Firewall: true})
		sys.MustInstallRules([]string{
			`pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN`,
			`pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP`,
			`pftables -A signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1`,
			`pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0`,
		})
	} else {
		sys = pfirewall.NewSystem(pfirewall.Options{})
	}

	sshd := programs.NewSshd(sys.World())
	victim := sshd.Spawn()
	attacker := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "sshd_t", Exec: programs.BinSshd})

	// The attacker times the second signal to land inside the handler's
	// first system call.
	fired := false
	hook := sys.Kernel().AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == victim && nr == kernel.NrOpen && !fired {
			fired = true
			attacker.Kill(victim.PID(), pfirewall.SIGALRM)
		}
	})
	defer sys.Kernel().RemoveHook(hook)

	attacker.Kill(victim.PID(), pfirewall.SIGALRM)
	fmt.Printf("PF=%-5v handler runs=%d corrupted=%v\n", withPF, sshd.HandlerRuns, sshd.Corrupted)

	// After the handler completes, a fresh signal must still deliver —
	// rule R12 cleared the in-handler state on sigreturn.
	attacker.Kill(victim.PID(), pfirewall.SIGALRM)
	fmt.Printf("        after completion: handler runs=%d\n", sshd.HandlerRuns)
}

func main() {
	fmt.Println("--- without the Process Firewall ---")
	run(false)
	fmt.Println("--- with signal rules R9-R12 installed ---")
	run(true)
}
