// Rulegen: the paper's runtime-analysis workflow (Section 6.3). A system
// runs with a LOG rule collecting every resource access; the trace is
// classified per entrypoint; high-integrity-only entrypoints become T1
// deny rules; and the generated rules block an attack they were never
// written against — the property the paper demonstrates with rules R1–R4.
//
// Run with: go run ./examples/rulegen
package main

import (
	"errors"
	"fmt"

	"pfirewall"
	"pfirewall/internal/programs"
)

func main() {
	// Phase 1: collect a runtime trace of normal operation.
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true, CollectTrace: true})
	ld := programs.NewLinker(sys.World())
	for i := 0; i < 20; i++ {
		p := sys.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "httpd_t", Exec: programs.BinApache})
		if _, err := ld.LoadLibrary(p, "libssl.so"); err != nil {
			panic(err)
		}
	}
	fmt.Printf("collected %d trace records of normal library loading\n", sys.Trace.Len())

	// Phase 2: suggest rules. ld.so's library-open entrypoint only ever
	// touched lib_t resources, so it is classified high-only and gets a
	// T1 rule confining it to the observed labels.
	rules, err := sys.SuggestRules(10)
	if err != nil {
		panic(err)
	}
	for _, r := range rules {
		fmt.Println("suggested:", r)
	}

	// Phase 3: deploy the suggested rules on a fresh system and launch an
	// attack the rules were not written against — the E1-style RPATH
	// hijack. The suggestion must block it with no knowledge of the CVE.
	prod := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	prod.MustInstallRules(rules)

	adversary := prod.NewAdversary()
	adversary.Mkdir("/tmp/svn", 0o777)
	fd, err := adversary.Open("/tmp/svn/libssl.so", pfirewall.O_CREAT|pfirewall.O_RDWR, 0o755)
	if err != nil {
		panic(err)
	}
	adversary.Close(fd)
	prod.World().RPaths[programs.BinApache] = []string{"/tmp/svn"}

	ld2 := programs.NewLinker(prod.World())
	victim := prod.NewProcess(pfirewall.ProcessSpec{UID: 0, Label: "httpd_t", Exec: programs.BinApache})
	loaded, err := ld2.LoadLibrary(victim, "libssl.so")
	switch {
	case err == nil && loaded == "/tmp/svn/libssl.so":
		fmt.Println("ATTACK SUCCEEDED: loaded", loaded)
	case err == nil:
		fmt.Printf("attack defeated: trojan skipped (denied: %v), loaded %s instead\n", ld2.Denied, loaded)
	case errors.Is(err, pfirewall.ErrPFDenied):
		fmt.Println("attack blocked outright:", err)
	default:
		fmt.Println("error:", err)
	}
}
