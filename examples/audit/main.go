// Audit: the operator's side of the Process Firewall (Section 6.1.2).
// The firewall silently defeats an attack while the program keeps working;
// later, the denial log reveals what happened — this is how the paper's
// authors discovered the previously unknown GNU Icecat vulnerability (E8).
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"

	"pfirewall"
	"pfirewall/internal/audit"
	"pfirewall/internal/programs"
	"pfirewall/internal/trace"
)

func main() {
	sys := pfirewall.NewSystem(pfirewall.Options{Firewall: true})
	sys.MustInstallRules(pfirewall.StandardRules())

	// Attach the denial log.
	store := trace.NewStore()
	sys.Firewall().Logger = store.Collector(sys.Kernel().Policy.SIDs())
	sys.Firewall().LogDenials = true

	// The adversary plants a Trojan libssl.so in the user's home; the
	// Icecat launcher bug makes ld.so search the working directory first.
	adversary := sys.NewAdversary()
	fd, err := adversary.Open("/home/user/libssl.so", pfirewall.O_CREAT|pfirewall.O_RDWR, 0o755)
	if err != nil {
		panic(err)
	}
	adversary.Close(fd)

	// The user launches the browser. Nothing visibly goes wrong: rule R1
	// rejects the Trojan candidate, ld.so falls through to /lib, and the
	// browser starts normally.
	icecat := programs.NewIcecat(sys.World())
	p := icecat.Spawn("/home/user")
	loaded, _, err := icecat.Start(p)
	fmt.Printf("icecat started: loaded %v (err=%v)\n", loaded, err)

	// Days later, the operator reviews the denial log.
	groups := audit.Denials(store)
	fmt.Println("\ndenial log:")
	fmt.Print(audit.Report(groups))

	suspicious := audit.Suspicious(groups, 1)
	fmt.Printf("\n%d suspicious denial pattern(s) — adversary-writable resources repeatedly blocked.\n", len(suspicious))
	for _, g := range suspicious {
		fmt.Printf("-> report a vulnerability in %s (entrypoint 0x%x): it tried to load %v\n",
			g.Key.Program, g.Key.Entrypoint, g.Paths)
	}
}
