// concurrency_test.go is the multi-core stress suite for the mediation hot
// path: many processes resolving, creating, renaming, unlinking and
// signalling on one shared world, run under `go test -race`. It validates
// the lock-free read structures introduced for scalability — the vfs dentry
// cache, the MAC adversary snapshot, the kernel hook snapshot, and the PF
// ruleset — against concurrent namespace and policy mutation.
package pfirewall_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/lmbench"
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// stressWorld builds one fully armed world: optimized PF engine with the
// deployment-scale synthetic rule base installed.
func stressWorld(t *testing.T) *programs.World {
	t.Helper()
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize)); err != nil {
		t.Fatal(err)
	}
	return w
}

// stressProc spawns a root sshd_t process with a realistic stack so
// entrypoint collection has work to do.
func stressProc(w *programs.World) *kernel.Proc {
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	for f := 0; f < 8; f++ {
		p.PushFrame(programs.BinSshd, uint64(0x100+f*0x10))
	}
	p.SyscallSite(programs.BinSshd, 0x300)
	return p
}

// benignErr reports whether err is an acceptable outcome for operations
// that race namespace mutators or trip firewall rules: the binding may be
// mid-flip (ENOENT/EEXIST) or a PF rule may fire. Anything else is a bug.
func benignErr(err error) bool {
	return err == nil ||
		errors.Is(err, vfs.ErrNotExist) ||
		errors.Is(err, vfs.ErrExist) ||
		errors.Is(err, kernel.ErrPFDenied)
}

// TestConcurrentMediationStress drives openers, a renamer, a
// creator/unlinker and a signaller against one shared world. Stable paths
// must always resolve; racing paths may come and go but must never produce
// an unexpected error class; and the whole run must be race-detector clean.
func TestConcurrentMediationStress(t *testing.T) {
	w := stressWorld(t)

	iters := 400
	if testing.Short() {
		iters = 50
	}

	var wg sync.WaitGroup

	// Four openers hammer stable paths and poke the flipping one.
	const openers = 4
	for g := 0; g < openers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := stressProc(w)
			for i := 0; i < iters; i++ {
				fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
				if err != nil {
					t.Errorf("open /etc/passwd: %v", err)
					return
				}
				p.Close(fd)
				if _, err := p.Stat("/var/www/html/index.html"); err != nil {
					t.Errorf("stat index.html: %v", err)
					return
				}
				// The flipping binding: any benign outcome is fine.
				if fd, err := p.Open("/tmp/flip", kernel.O_RDONLY, 0); err == nil {
					p.Close(fd)
				} else if !benignErr(err) {
					t.Errorf("open /tmp/flip: %v", err)
					return
				}
			}
		}()
	}

	// The renamer flips /tmp/flip: create under a scratch name, rename
	// over, unlink — the adversary pattern of paper Figure 1a.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := stressProc(w)
		for i := 0; i < iters; i++ {
			fd, err := p.Open("/tmp/flip-src", kernel.O_CREAT|kernel.O_RDWR, 0o600)
			if !benignErr(err) {
				t.Errorf("create flip-src: %v", err)
				return
			}
			if err == nil {
				p.Close(fd)
			}
			if err := p.Rename("/tmp/flip-src", "/tmp/flip"); !benignErr(err) {
				t.Errorf("rename: %v", err)
				return
			}
			if err := p.Unlink("/tmp/flip"); !benignErr(err) {
				t.Errorf("unlink flip: %v", err)
				return
			}
		}
	}()

	// The creator/unlinker churns private names, exercising negative
	// dentries and inode recycling.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := stressProc(w)
		for i := 0; i < iters; i++ {
			path := fmt.Sprintf("/tmp/cu-%d", i%7)
			fd, err := p.Open(path, kernel.O_CREAT|kernel.O_RDWR, 0o600)
			if !benignErr(err) {
				t.Errorf("create %s: %v", path, err)
				return
			}
			if err == nil {
				p.Close(fd)
			}
			if err := p.Unlink(path); !benignErr(err) {
				t.Errorf("unlink %s: %v", path, err)
				return
			}
		}
	}()

	// The signaller delivers to a dedicated victim, driving the PF signal
	// chain (rules R9-R12 shape) concurrently with resource mediation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sender := stressProc(w)
		victim := stressProc(w)
		victim.Sigaction(kernel.SIGTERM, func(*kernel.Proc, int) {})
		for i := 0; i < iters; i++ {
			if err := sender.Kill(victim.PID(), kernel.SIGTERM); !benignErr(err) {
				t.Errorf("kill: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// The shared counters must have seen traffic from all flows, and the
	// firewall must not have dropped the stable-path accesses.
	if w.K.FS.Resolutions.Load() == 0 || w.K.FS.Components.Load() == 0 {
		t.Error("resolution counters did not advance")
	}
	if w.K.FS.DcacheHits.Load() == 0 {
		t.Error("dentry cache served no hits under a read-heavy load")
	}
}

// TestConcurrentRuleInstallDuringTraffic races rule-base edits (RCU
// ruleset swaps) and MAC policy edits (adversary snapshot swaps) against
// mediated traffic on stable paths, which must keep succeeding throughout.
func TestConcurrentRuleInstallDuringTraffic(t *testing.T) {
	w := stressWorld(t)

	iters := 300
	if testing.Short() {
		iters = 40
	}

	var wg sync.WaitGroup
	const openers = 3
	for g := 0; g < openers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := stressProc(w)
			for i := 0; i < iters; i++ {
				fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
				if err != nil {
					t.Errorf("open during rule churn: %v", err)
					return
				}
				p.Close(fd)
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			// LOG rules match everything but verdict nothing: traffic keeps
			// flowing while the ruleset snapshot is republished.
			if _, err := w.InstallRules([]string{
				`pftables -o FILE_OPEN -m ADV_ACCESS --write --is true -j LOG`,
			}); err != nil {
				t.Errorf("install: %v", err)
				return
			}
			// Policy edit: forces adversary snapshot invalidation mid-run.
			w.K.Policy.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermRead)
		}
	}()

	wg.Wait()
}
