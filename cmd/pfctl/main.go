// Command pfctl is the userspace rule tool: it parses pftables rule files
// against the standard simulated world, validates them, installs them into
// an engine, and prints the compiled form — the workflow of the paper's
// pftables process (Section 5.2).
//
// Usage:
//
//	pfctl -f rules.pft        # compile and validate a rule file
//	pfctl -standard           # print and validate the paper's Table 5 rules
//	pfctl -e 'pftables ...'   # compile one rule from the command line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
)

func main() {
	file := flag.String("f", "", "rule file to compile")
	standard := flag.Bool("standard", false, "compile the paper's Table 5 rule set")
	expr := flag.String("e", "", "compile a single rule")
	list := flag.Bool("L", false, "list installed chains and rules with hit counters")
	save := flag.Bool("S", false, "print the installed rule base as re-loadable pftables lines")
	flag.Parse()

	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})

	var lines []string
	switch {
	case *standard:
		lines = programs.StandardRules()
	case *expr != "":
		lines = []string{*expr}
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	installed := 0
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, err := pftables.Install(w.Env, w.Engine, line)
		if err != nil {
			fatal(fmt.Errorf("%s\n  -> %w", line, err))
		}
		installed++
		if cmd.NewChainName != "" {
			fmt.Printf("chain %s created\n", cmd.NewChainName)
			continue
		}
		fmt.Printf("[%s/%s] %s\n", cmd.Table, cmd.Chain, cmd.Rule.String(w.K.Policy.SIDs()))
	}
	fmt.Printf("# %d rules installed; chains: %s\n", installed, strings.Join(w.Engine.Chains(), ", "))
	if *list {
		listRules(w.Engine)
	}
	if *save {
		for _, line := range pftables.Save(w.Engine) {
			fmt.Println(line)
		}
	}
}

// listRules prints every chain with per-rule hit counters, like
// iptables -L -v.
func listRules(engine *pf.Engine) {
	for _, name := range engine.Chains() {
		c, _ := engine.Chain(name)
		fmt.Printf("Chain %s (%d rules)\n", name, len(c.Rules))
		for i, r := range c.Rules {
			fmt.Printf("  %3d  hits=%-8d %s\n", i+1, r.Hits.Load(), r.String(engine.Policy().SIDs()))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfctl:", err)
	os.Exit(1)
}
