// Command pfctl is the userspace rule tool: it parses pftables rule files
// against the standard simulated world, validates them, installs them into
// an engine, and prints the compiled form — the workflow of the paper's
// pftables process (Section 5.2). It doubles as the observability
// front-end: -stats and -stats-prom export the internal/obs metrics
// registry (counters, latency histograms, the flight recorder) after
// exercising a canned deterministic workload, and -listen serves the same
// registry over HTTP.
//
// Usage:
//
//	pfctl -f rules.pft        # compile and validate a rule file
//	pfctl -standard           # print and validate the paper's Table 5 rules
//	pfctl -e 'pftables ...'   # compile one rule from the command line
//	pfctl -check -f rules.pft # static analysis only: shadowing, dead
//	                          # chains, jump cycles, unknown symbols
//	pfctl -check -json -f rules.pft  # same, findings as a JSON document
//	pfctl -check -scale 10000 # analyze a synthetic deployment-scale base
//	pfctl -verify -standard -inv examples/rules/standard.inv
//	                          # symbolically prove invariants over the
//	                          # compiled ruleset; violations are replayed
//	                          # as concrete witnesses and exit non-zero
//	pfctl -verify -world tiny # prove the tenant non-interference invariant
//	                          # over a generated deployment's rule base
//	pfctl -standard -L        # list chains with hits, traversals, verdicts
//	pfctl -stats              # run the demo workload, dump metrics as JSON
//	pfctl -stats-prom         # same, Prometheus text exposition format
//	pfctl -listen :9090       # serve /metrics and /vars over HTTP
//
// -world swaps the canned demo for the deployment-scale stress bed: it
// builds a seeded worldgen world (tiny/small/medium/large) and drives a
// supervised daemon fleet against it with live process churn, rule
// mutation, and adversary noise, then prints the fleet report. The
// fleet's rule churn flows through an in-world policyd control plane
// (internal/policyd: streamed pftables batches over abstract sockets,
// pfcheck-gated, versioned hitless publishes with rollback), so the
// report's "policy:" line shows publish/delta/rollback/veto counts.
// -fleet, -duration and -seed shape the run; combined with
// -stats/-listen the fleet traffic populates the exported metrics
// instead:
//
//	pfctl -world small -fleet 8 -duration 5s   # interactive stress run
//	pfctl -world tiny -stats                   # fleet-fed metrics dump
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pfirewall/internal/audit"
	"pfirewall/internal/fleet"
	"pfirewall/internal/kernel"
	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pfcheck"
	"pfirewall/internal/pftables"
	"pfirewall/internal/pfverify"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/trace"
	"pfirewall/internal/worldgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// statsTopDenials caps the denial summary embedded in -stats output.
const statsTopDenials = 10

// run is the whole tool behind a testable seam: args are the command line
// without the program name, out receives everything the user sees.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pfctl", flag.ContinueOnError)
	file := fs.String("f", "", "rule file to compile")
	standard := fs.Bool("standard", false, "compile the paper's Table 5 rule set")
	expr := fs.String("e", "", "compile a single rule")
	list := fs.Bool("L", false, "list installed chains and rules with hit, traversal and verdict counters")
	save := fs.Bool("S", false, "print the installed rule base as re-loadable pftables lines")
	workload := fs.Bool("workload", false, "exercise the canned deterministic workload after installing rules (implied by -stats/-stats-prom/-listen)")
	stats := fs.Bool("stats", false, "run the workload and print the metrics registry and denial summary as JSON")
	statsProm := fs.Bool("stats-prom", false, "run the workload and print the metrics registry in Prometheus text format")
	listen := fs.String("listen", "", "serve /metrics (Prometheus) and /vars (JSON) on this address after running the workload")
	checkOnly := fs.Bool("check", false, "statically analyze the ruleset (shadowing, reachability, symbols) without installing it; exit non-zero on error findings")
	jsonOut := fs.Bool("json", false, "with -check: print the analyzer report as JSON instead of compiler-style lines")
	verify := fs.Bool("verify", false, "symbolically verify invariants over the installed ruleset; exit non-zero on definite violations")
	invFile := fs.String("inv", "", "with -verify: invariant file (.inv); defaults to the built-in tenant invariants with -world")
	scale := fs.Int("scale", 0, "with -check: analyze a deterministic synthetic rule base of this many rules")
	world := fs.String("world", "", "run the fleet stress bed against this worldgen preset (tiny/small/medium/large) instead of the canned demo")
	fleetSize := fs.Int("fleet", 4, "with -world: number of fleet instances")
	duration := fs.Duration("duration", 2*time.Second, "with -world: how long the fleet serves traffic")
	seed := fs.Uint64("seed", 1, "with -world: seed for the world tree and fleet schedule")
	traceFlag := fs.Bool("trace", false, "tail sampled decision-provenance spans from the running workload over the in-simulation span stream")
	topFlag := fs.Bool("top", false, "live fleet-wide span aggregation per tenant/persona/op (implies the workload; best with -world)")
	traceEvery := fs.Int("trace-every", 1, "with -trace/-top: sample one syscall in N for span generation")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exporting := *stats || *statsProm || *listen != ""
	tracing := *traceFlag || *topFlag
	if exporting || tracing || *world != "" {
		*workload = true
	}

	cfg := pf.Optimized()
	wopts := programs.WorldOpts{PF: &cfg}
	var reg *obs.Registry
	if *workload || exporting {
		// Sample every request so the short deterministic workload
		// populates the latency histograms, not just the counters.
		reg = obs.New()
		wopts.Obs = reg
		wopts.ObsEvery = 1
	}
	if tracing {
		wopts.TraceEvery = *traceEvery
	}
	var w *programs.World
	var gw *worldgen.World
	if *world != "" {
		spec, ok := worldgen.SpecByName(*world)
		if !ok {
			return fmt.Errorf("unknown world preset %q (want tiny/small/medium/large)", *world)
		}
		spec.Seed = *seed
		wopts.MACEnforcing = true
		gw = worldgen.Build(spec, wopts)
		w = gw.World
	} else {
		w = programs.NewWorld(wopts)
	}

	var store *trace.Store
	if exporting {
		store = trace.NewStore()
		w.Engine.Logger = store.Collector(w.K.Policy.SIDs())
		w.Engine.LogDenials = true
	}

	var lines []string
	srcName := "<input>"
	switch {
	case *world != "":
		// worldgen.Build installed the world's own rule base (standard
		// rules + per-tenant guards + scale filler) during construction.
		srcName = "<worldgen>"
	case *scale > 0:
		if !*checkOnly {
			return fmt.Errorf("-scale requires -check")
		}
		lines = rulegen.ScaleRuleBase(1, *scale)
		srcName = fmt.Sprintf("<scale-%d>", *scale)
	case *standard:
		lines = programs.StandardRules()
		srcName = "<standard>"
	case *expr != "":
		lines = []string{*expr}
		srcName = "<expr>"
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			return err
		}
		srcName = *file
	case exporting || tracing:
		// Pure stats and trace runs default to the standard rule base so
		// the workload has something to traverse.
		lines = programs.StandardRules()
		srcName = "<standard>"
	default:
		fs.Usage()
		os.Exit(2)
	}

	// Known-label snapshot for symbol validation: taken before any parsing,
	// because the SID table interns every label a rule mentions.
	knownLabel := pfcheck.LabelSnapshot(w.Env.Policy)
	sym := &pfcheck.Symbols{
		KnownLabel: knownLabel,
		KnownProgram: func(p string) bool {
			_, ok := w.Env.LookupPath(p)
			return ok
		},
		Entrypoints: programs.KnownEntrypoints(),
	}
	if *scale > 0 {
		// The synthetic base draws labels and programs from its own
		// namespace; only the semantic checks apply to it.
		sym = &pfcheck.Symbols{KnownLabel: func(mac.Label) bool { return true }}
	}

	if *checkOnly {
		return runCheck(out, w, srcName, lines, sym, *jsonOut)
	}
	if *verify {
		return runVerify(out, w, gw, srcName, lines, *invFile)
	}

	// In export mode the compiled-rule chatter would corrupt the JSON or
	// Prometheus stream, so keep stdout for the exposition only.
	installed := 0
	for n, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, err := pftables.InstallAt(w.Env, w.Engine, line, pf.Pos{File: srcName, Line: n + 1})
		if err != nil {
			return fmt.Errorf("%s\n  -> %w", line, err)
		}
		installed++
		if exporting {
			continue
		}
		if cmd.NewChainName != "" {
			fmt.Fprintf(out, "chain %s created\n", cmd.NewChainName)
			continue
		}
		fmt.Fprintf(out, "[%s/%s] %s\n", cmd.Table, cmd.Chain, cmd.Rule.String(w.K.Policy.SIDs()))
	}
	if !exporting {
		if gw != nil {
			fmt.Fprintf(out, "# world %s: %d inodes, %d users, %d labels, %d rules (built in %.0fms)\n",
				gw.Spec.Name, gw.Stats.Inodes, gw.Stats.Users, gw.Stats.Labels, gw.Stats.Rules, gw.Stats.BuildMs)
		} else {
			fmt.Fprintf(out, "# %d rules installed; chains: %s\n", installed, strings.Join(w.Engine.Chains(), ", "))
		}
	}

	// Load-time analysis: in export mode the installed ruleset is analyzed
	// and the finding tallies ride along with the other metrics, so a
	// scraper can alert on rulesets that loaded with analyzer errors.
	var checks *pfcheck.Summary
	if exporting {
		rep := pfcheck.AnalyzeEngine(w.Engine, sym)
		rep.Export(reg)
		s := rep.Summary()
		checks = &s
	}

	if *workload {
		switch {
		case tracing:
			if err := runTraced(out, w, gw, *fleetSize, *duration, *seed, *topFlag, exporting); err != nil {
				return err
			}
		case gw != nil:
			runFleet(out, gw, *fleetSize, *duration, *seed, exporting)
		default:
			runWorkload(w)
		}
	}
	if *list {
		listRules(w.Engine, out)
	}
	if *save {
		for _, line := range pftables.Save(w.Engine) {
			fmt.Fprintln(out, line)
		}
	}
	if *stats {
		if err := writeStats(out, reg, store, checks); err != nil {
			return err
		}
	}
	if *statsProm {
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
	}
	if *listen != "" {
		fmt.Fprintf(os.Stderr, "pfctl: serving /metrics and /vars on %s\n", *listen)
		return http.ListenAndServe(*listen, reg.Handler())
	}
	return nil
}

// runWorkload drives a canned, deterministic slice of the simulated world
// through the firewall so every exported metric family has data: trusted
// file opens (FILE_OPEN accepts), an abstract-socket echo session
// (SOCKET_SENDMSG / RECVMSG), and an adversary link-following attack that
// the rule base drops (populating the flight recorder and denial log).
func runWorkload(w *programs.World) {
	sshd := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	for i := 0; i < 8; i++ {
		if fd, err := sshd.Open("/etc/passwd", kernel.O_RDONLY, 0); err == nil {
			sshd.ReadAll(fd)
			sshd.Close(fd)
		}
	}

	srv := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	cli := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	if lfd, err := srv.BindAbstract("pfctl-demo"); err == nil {
		if srv.Listen(lfd, 4) == nil {
			if cfd, err := cli.ConnectAbstract("pfctl-demo"); err == nil {
				if sfd, err := srv.Accept(lfd); err == nil {
					for i := 0; i < 4; i++ {
						cli.Send(cfd, []byte("ping"))
						srv.Recv(sfd, -1)
						srv.Send(sfd, []byte("pong"))
						cli.Recv(cfd, -1)
					}
					srv.Close(sfd)
				}
				cli.Close(cfd)
			}
		}
		srv.Close(lfd)
	}

	adv := w.NewUser()
	adv.Symlink("/etc/shadow", "/tmp/trap")
	if fd, err := sshd.Open("/tmp/trap", kernel.O_RDONLY, 0); err == nil {
		// Only reached when the installed rules lack a link-walk guard.
		sshd.Close(fd)
	}
}

// runFleet is pfctl -world: the deployment-scale stress bed. A supervised
// mixed fleet (apache, sshd, dbus, php personas) serves traffic against
// the worldgen tree for the given duration with process churn, rule
// mutation, and adversary filesystem noise all live. In export mode the
// report is suppressed — the traffic exists to feed the metrics registry,
// and stdout must stay a clean JSON/Prometheus stream.
func runFleet(out io.Writer, gw *worldgen.World, instances int, d time.Duration, seed uint64, exporting bool) {
	fl := fleet.New(gw, fleet.Config{
		Seed:      seed,
		Instances: instances,
		Duration:  d,
		RuleChurn: true, ProcChurn: true, AdversaryChurn: true,
	})
	rep := fl.Run()
	if !exporting {
		fmt.Fprint(out, fleet.Format(rep))
	}
}

// runTraced is pfctl -trace / -top: start the in-simulation span stream
// (server and tailing client are processes inside the world, talking over
// the mediated abstract-socket transport), run the workload or fleet in
// the background, and consume the stream live — printing each span
// (-trace) or aggregating a fleet-wide per-tenant/persona/op view (-top).
func runTraced(out io.Writer, w *programs.World, gw *worldgen.World, instances int, d time.Duration, seed uint64, top, exporting bool) error {
	srv, err := trace.ServeSpans(w.K, "")
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := trace.DialSpans(w.K, "")
	if err != nil {
		return err
	}
	defer cl.Close()
	// Give the relay a moment to admit the client: spans published before
	// the connection is accepted are not replayed to it.
	for i := 0; i < 100 && w.K.Tracer().Subscribers() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		defer close(done)
		if gw != nil {
			runFleet(io.Discard, gw, instances, d, seed, true)
		} else {
			runWorkload(w)
		}
	}()

	agg := newTopAgg()
	start := time.Now()
	lastFrame := start
	finished := false
	for {
		sp, err := cl.Next(50 * time.Millisecond)
		switch {
		case err == nil:
			if top {
				agg.add(&sp)
			} else {
				fmt.Fprintln(out, formatSpan(&sp))
			}
		case errors.Is(err, trace.ErrStreamTimeout):
			if finished {
				// Workload done and the stream has gone quiet: drained.
				if top {
					agg.render(out, w, time.Since(start))
				}
				return nil
			}
		default:
			return err
		}
		if top && time.Since(lastFrame) >= time.Second {
			agg.render(out, w, time.Since(start))
			lastFrame = time.Now()
		}
		select {
		case <-done:
			finished = true
		default:
		}
	}
}

// formatSpan renders one provenance span as a human-readable -trace line:
// identity, decision, the deciding rule's source position, and the
// per-layer latency split.
func formatSpan(sp *obs.Span) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d pid=%d %s %s %s", sp.Seq, sp.PID, sp.Subject, sp.Syscall, sp.Op)
	if sp.Path != "" {
		fmt.Fprintf(&b, " %s", sp.Path)
	}
	fmt.Fprintf(&b, " -> %s", sp.Verdict)
	if src := sp.RuleSrc(); src != "" {
		fmt.Fprintf(&b, " rule=%s(%s)", src, sp.RuleTarget)
	}
	fmt.Fprintf(&b, " kernel=%s check=%s gauntlet=%s total=%s",
		time.Duration(sp.KernelNs), time.Duration(sp.CheckNs),
		time.Duration(sp.GauntletNs), time.Duration(sp.TotalNs))
	if names := sp.Flags.Names(); len(names) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(names, ","))
	}
	return b.String()
}

// topKey is one -top aggregation bucket.
type topKey struct {
	Tenant  string
	Persona string
	Op      string
}

// topRow accumulates spans for one key; latency quantiles reuse the obs
// histogram bucketing so -top and -stats agree on the estimate.
type topRow struct {
	count uint64
	drops uint64
	hist  obs.HistSnapshot
}

type topAgg struct {
	rows map[topKey]*topRow
}

func newTopAgg() *topAgg { return &topAgg{rows: map[topKey]*topRow{}} }

// tenantOf maps an object path to its worldgen tenant (the component
// under /srv/tenants), or "-" for shared infrastructure.
func tenantOf(path string) string {
	prefix := worldgen.TenantRoot + "/"
	if !strings.HasPrefix(path, prefix) {
		return "-"
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "-"
	}
	return rest
}

func (a *topAgg) add(sp *obs.Span) {
	k := topKey{Tenant: tenantOf(sp.Path), Persona: sp.Subject, Op: sp.Op}
	r := a.rows[k]
	if r == nil {
		r = &topRow{}
		a.rows[k] = r
	}
	r.count++
	if sp.Verdict == "DROP" {
		r.drops++
	}
	r.hist.Count++
	r.hist.Sum += sp.TotalNs
	r.hist.Buckets[obs.BucketIndex(sp.TotalNs)]++
}

// topRows caps one -top frame.
const topRows = 24

// render prints one -top frame: header with stream health, then the
// busiest tenant/persona/op buckets with deny counts and latency
// quantiles.
func (a *topAgg) render(out io.Writer, w *programs.World, elapsed time.Duration) {
	t := w.K.Tracer()
	keys := make([]topKey, 0, len(a.rows))
	var total uint64
	for k, r := range a.rows {
		keys = append(keys, k)
		total += r.count
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, rj := a.rows[keys[i]], a.rows[keys[j]]
		if ri.count != rj.count {
			return ri.count > rj.count
		}
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		if keys[i].Persona != keys[j].Persona {
			return keys[i].Persona < keys[j].Persona
		}
		return keys[i].Op < keys[j].Op
	})
	fmt.Fprintf(out, "pfctl top — %d spans streamed, %d published, %d subscriber drops, elapsed %s\n",
		total, t.Total(), t.Dropped(), elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "%-12s %-18s %-20s %8s %6s %10s %10s\n",
		"TENANT", "PERSONA", "OP", "SPANS", "DENY", "P50", "P99")
	shown := keys
	if len(shown) > topRows {
		shown = shown[:topRows]
	}
	for _, k := range shown {
		r := a.rows[k]
		fmt.Fprintf(out, "%-12s %-18s %-20s %8d %6d %10s %10s\n",
			k.Tenant, k.Persona, k.Op, r.count, r.drops,
			time.Duration(r.hist.Quantile(0.50)), time.Duration(r.hist.Quantile(0.99)))
	}
	if len(keys) > len(shown) {
		fmt.Fprintf(out, "… %d more buckets\n", len(keys)-len(shown))
	}
}

// runCheck is pfctl -check: run the static analyzer over the ruleset
// source, print every finding compiler-style plus a summary line, and fail
// (non-zero exit) exactly when an error-class finding exists. Timing goes
// to stderr so stdout stays byte-deterministic.
func runCheck(out io.Writer, w *programs.World, name string, lines []string, sym *pfcheck.Symbols, jsonOut bool) error {
	start := time.Now()
	rep := pfcheck.Analyze(w.Env, name, lines, sym)
	elapsed := time.Since(start)
	s := rep.Summary()
	if jsonOut {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", enc)
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintln(out, f.String())
		}
		fmt.Fprintf(out, "# pfcheck: %d rules, %d chains: %d errors, %d warnings, %d infos\n",
			s.Rules, s.Chains, s.Errors, s.Warnings, s.Infos)
	}
	fmt.Fprintf(os.Stderr, "pfcheck: analyzed %s (%d rules) in %s\n",
		name, s.Rules, elapsed.Round(time.Microsecond))
	if rep.HasErrors() {
		return fmt.Errorf("pfcheck: %d error finding(s)", s.Errors)
	}
	return nil
}

// runVerify is pfctl -verify: install the ruleset (worldgen worlds arrive
// with theirs already in place), sweep the invariant file's properties over
// the compiled dispatch index, print each invariant's outcome, and replay
// every definite violation's witness in a fresh world so the finding is
// backed by a concrete denied-or-allowed request, not just the abstraction.
func runVerify(out io.Writer, w *programs.World, gw *worldgen.World, name string, lines []string, invFile string) error {
	for n, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := pftables.InstallAt(w.Env, w.Engine, line, pf.Pos{File: name, Line: n + 1}); err != nil {
			return fmt.Errorf("%s\n  -> %w", line, err)
		}
	}
	invName, invSrc := invFile, ""
	switch {
	case invFile != "":
		data, err := os.ReadFile(invFile)
		if err != nil {
			return err
		}
		invSrc = string(data)
	case gw != nil:
		invName, invSrc = "<worldgen>", worldgen.Invariants()
	default:
		return fmt.Errorf("pfverify: -verify needs -inv FILE (or -world for the built-in tenant invariants)")
	}
	invs, err := pfverify.ParseInvariants(invName, invSrc)
	if err != nil {
		return err
	}
	start := time.Now()
	rep := pfverify.Check(pfverify.FromEngine(w.Engine), w.K.Policy.SIDs(), invs)
	elapsed := time.Since(start)
	for _, res := range rep.Results {
		status := "holds"
		switch {
		case !res.Holds:
			status = "VIOLATED"
		case !res.Definitely:
			status = "holds (potential violations under widening)"
		}
		fmt.Fprintf(out, "invariant %s: %s (%d points", res.Invariant.Name, status, res.Points)
		if res.ViolationCount > 0 {
			fmt.Fprintf(out, ", %d violating", res.ViolationCount)
		}
		fmt.Fprintln(out, ")")
		for i := range res.Violations {
			fmt.Fprintln(out, "  "+res.Violations[i].String())
		}
	}
	if rep.Violated() && len(lines) > 0 {
		// Counterexample replay: every definite violation must reproduce
		// concretely; one that does not is a verifier bug.
		reproduced, skipped, failures := pfverify.ReplayAll(rep, lines)
		fmt.Fprintf(out, "# witness replay: %d reproduced, %d skipped, %d failed\n",
			reproduced, skipped, len(failures))
		for i := range failures {
			fmt.Fprintln(out, "  REPLAY FAILED: "+failures[i].String())
		}
	}
	fmt.Fprintf(out, "# pfverify: %d invariants over %d points (%d rules)\n",
		len(rep.Results), rep.Points, w.Engine.RuleCount())
	fmt.Fprintf(os.Stderr, "pfverify: swept %s in %s\n", name, elapsed.Round(time.Microsecond))
	if rep.Violated() {
		return fmt.Errorf("pfverify: invariant violation(s)")
	}
	return nil
}

// statsDoc is the -stats JSON document: the full metrics registry, the
// per-op latency quantile summary derived from the gauntlet histograms,
// the operator-facing denial summary (audit.TopN over the trace store),
// and the load-time static-analysis tallies.
type statsDoc struct {
	Metrics json.RawMessage     `json:"metrics"`
	Latency []opLatency         `json:"latency,omitempty"`
	Denials []audit.DenialGroup `json:"denials"`
	Checks  *pfcheck.Summary    `json:"checks,omitempty"`
}

// opLatency is one operation's sampled gauntlet-latency summary. The
// quantiles are bucket upper bounds (power-of-two nanoseconds), the same
// estimate the histograms themselves export.
type opLatency struct {
	Op    string `json:"op"`
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
}

// latencySummary derives the per-op p50/p99 table from the engine's
// already-registered pf_gauntlet_latency_ns series.
func latencySummary(reg *obs.Registry) []opLatency {
	var out []opLatency
	for key, hs := range reg.HistogramSnapshots("pf_gauntlet_latency_ns") {
		if hs.Count == 0 {
			continue
		}
		op := strings.TrimPrefix(key, "op=")
		out = append(out, opLatency{
			Op: op, Count: hs.Count,
			P50Ns: hs.Quantile(0.50), P99Ns: hs.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

func writeStats(out io.Writer, reg *obs.Registry, store *trace.Store, checks *pfcheck.Summary) error {
	metrics, err := reg.MarshalJSON()
	if err != nil {
		return err
	}
	doc := statsDoc{
		Metrics: metrics,
		Latency: latencySummary(reg),
		Denials: audit.TopN(audit.Denials(store), statsTopDenials),
		Checks:  checks,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", enc)
	return err
}

// listRules prints every chain with per-rule hit counters and per-chain
// traversal counts, like iptables -L -v, followed by the engine's verdict
// totals.
func listRules(engine *pf.Engine, out io.Writer) {
	for _, name := range engine.Chains() {
		c, _ := engine.Chain(name)
		fmt.Fprintf(out, "Chain %s (%d rules, traversals=%d)\n", name, len(c.Rules), c.Traversals.Load())
		for i, r := range c.Rules {
			fmt.Fprintf(out, "  %3d  hits=%-8d %s\n", i+1, r.Hits.Load(), r.String(engine.Policy().SIDs()))
		}
	}
	fmt.Fprintf(out, "Verdict totals: requests=%d accepts=%d drops=%d\n",
		engine.Stats.Requests.Load(), engine.Stats.Accepts.Load(), engine.Stats.Drops.Load())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfctl:", err)
	os.Exit(1)
}
