package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestListGolden pins the -L output format: per-rule hit counters,
// per-chain traversal counts, and the verdict-totals footer. The world and
// the canned workload are fully deterministic, so the whole listing is
// byte-stable. The counts reflect the kernel's per-op rule-mask fast path:
// operations no installed rule could match are accepted before a request
// is even built, so only the one LNK_FILE_READ access reaches the engine.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-e", "pftables -o LNK_FILE_READ -d tmp_t -j DROP", "-workload", "-L"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `[filter/input] -d {tmp_t} -o LNK_FILE_READ -j DROP
# 1 rules installed; chains: input, mangle/input, syscallbegin
Chain input (1 rules, traversals=1)
    1  hits=1        -d {tmp_t} -o LNK_FILE_READ -j DROP
Chain mangle/input (0 rules, traversals=0)
Chain syscallbegin (0 rules, traversals=0)
Verdict totals: requests=1 accepts=0 drops=1
`
	if buf.String() != golden {
		t.Errorf("-L output drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), golden)
	}
}

// TestStatsPromFormat checks the Prometheus exposition for the acceptance
// series: FILE_OPEN and SOCKET_SENDMSG counters and histograms with the
// deterministic workload's counts, plus verdict totals.
func TestStatsPromFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stats-prom"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pf_mediations_total counter\n",
		"# TYPE pf_gauntlet_latency_ns histogram\n",
		"# TYPE pf_verdicts_total counter\n",
		`pf_mediations_total{op="FILE_OPEN",verdict="ACCEPT"} 8` + "\n",
		`pf_mediations_total{op="SOCKET_SENDMSG",verdict="ACCEPT"} 8` + "\n",
		`pf_gauntlet_latency_ns_bucket{op="FILE_OPEN",le="+Inf"} 8` + "\n",
		`pf_gauntlet_latency_ns_count{op="FILE_OPEN"} 8` + "\n",
		`pf_gauntlet_latency_ns_count{op="SOCKET_SENDMSG"} 8` + "\n",
		`pf_verdicts_total{verdict="DROP"} 1` + "\n",
		`ipc_binds_total{ns="abstract"} 1` + "\n",
		`kernel_syscalls_total{nr="open"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats-prom output missing %q", want)
		}
	}
	// Every sample line parses as "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestStatsJSONRoundTrip checks that -stats emits a JSON document that
// round-trips through encoding/json and carries the workload's evidence:
// the registry snapshot and the TopN denial summary.
func TestStatsJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-stats output is not valid JSON: %v", err)
	}
	re, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 map[string]any
	if err := json.Unmarshal(re, &doc2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, doc2) {
		t.Error("-stats JSON does not round-trip through encoding/json")
	}

	metrics, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("metrics section missing: %v", doc)
	}
	counters := metrics["counters"].(map[string]any)
	med := counters["pf_mediations_total"].(map[string]any)
	if got := med["op=FILE_OPEN,verdict=ACCEPT"].(float64); got != 8 {
		t.Errorf("FILE_OPEN accepts = %v, want 8", got)
	}
	if got := med["op=SOCKET_SENDMSG,verdict=ACCEPT"].(float64); got != 8 {
		t.Errorf("SOCKET_SENDMSG accepts = %v, want 8", got)
	}
	rings := metrics["rings"].(map[string]any)
	drop := rings["pf_flight_drop"].(map[string]any)
	if got := drop["total"].(float64); got < 1 {
		t.Errorf("flight recorder captured no drops: %v", drop)
	}
	denials, ok := doc["denials"].([]any)
	if !ok || len(denials) == 0 {
		t.Fatalf("denial summary missing: %v", doc["denials"])
	}
	top := denials[0].(map[string]any)
	if op := top["Key"].(map[string]any)["Op"]; op != "LNK_FILE_READ" {
		t.Errorf("top denial op = %v, want LNK_FILE_READ", op)
	}

	// The load-time analysis summary rides along: the standard base is
	// clean, so every tally except the rule/chain counts is zero.
	checks, ok := doc["checks"].(map[string]any)
	if !ok {
		t.Fatalf("checks section missing: %v", doc)
	}
	if checks["errors"].(float64) != 0 || checks["warnings"].(float64) != 0 {
		t.Errorf("standard base should analyze clean, got %v", checks)
	}
	if checks["rules"].(float64) == 0 {
		t.Errorf("checks should count analyzed rules, got %v", checks)
	}
}

// TestCheckStandardClean pins that the shipped Table 5 rule base passes the
// static analyzer with zero findings of any severity.
func TestCheckStandardClean(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check", "-standard"}, &buf); err != nil {
		t.Fatalf("pfctl -check -standard: %v\n%s", err, buf.String())
	}
	const golden = "# pfcheck: 13 rules, 4 chains: 0 errors, 0 warnings, 0 infos\n"
	if buf.String() != golden {
		t.Errorf("-check -standard output drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), golden)
	}
}

// TestCheckFileFindings runs -check over a rule file with one defect of
// each headline class and checks the compiler-style finding lines and the
// non-zero exit.
func TestCheckFileFindings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pft")
	src := strings.Join([]string{
		"# exercise every analyzer layer",
		"pftables -A input -s sshd_t -j ACCEPT",
		"pftables -A input -s sshd_t -d shadow_t -j DROP",
		"pftables -A input -o NOT_AN_OP -j DROP",
		"pftables -A syscallbegin -o FILE_OPEN -j DROP",
		"pftables -A input -s sshd_tt -o FILE_READ -j DROP",
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-check", "-f", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "error finding") {
		t.Fatalf("want error-findings failure, got err=%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		path + ":3: error: [shadowed]",
		path + ":4:19: error: [parse]",
		path + ":5: error: [never-matches]",
		path + ":6: warning: [unknown-label]",
		"3 errors, 1 warnings",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-check output missing %q:\n%s", want, out)
		}
	}
}

// TestCheckScaleDeterministic runs the analyzer twice over the same
// synthetic base and demands byte-identical stdout.
func TestCheckScaleDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-check", "-scale", "600"}, &a); err != nil {
		t.Fatalf("-check -scale: %v", err)
	}
	if err := run([]string{"-check", "-scale", "600"}, &b); err != nil {
		t.Fatalf("-check -scale: %v", err)
	}
	if a.String() != b.String() {
		t.Error("-check -scale output is not deterministic")
	}
	if !strings.Contains(a.String(), "# pfcheck: 600 rules") {
		t.Errorf("summary line missing:\n%s", a.String())
	}
}

// TestStatsLatencySection checks the -stats per-op latency summary
// derived from the gauntlet histograms: present, sorted by op, and
// carrying the deterministic workload's counts.
func TestStatsLatencySection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Latency []struct {
			Op    string `json:"op"`
			Count uint64 `json:"count"`
			P50Ns uint64 `json:"p50_ns"`
			P99Ns uint64 `json:"p99_ns"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Latency) == 0 {
		t.Fatal("-stats has no latency section")
	}
	byOp := map[string]uint64{}
	for i, l := range doc.Latency {
		if l.P50Ns == 0 || l.P99Ns < l.P50Ns {
			t.Errorf("%s: implausible quantiles p50=%d p99=%d", l.Op, l.P50Ns, l.P99Ns)
		}
		if i > 0 && doc.Latency[i-1].Op >= l.Op {
			t.Errorf("latency section not sorted by op: %q >= %q", doc.Latency[i-1].Op, l.Op)
		}
		byOp[l.Op] = l.Count
	}
	if byOp["FILE_OPEN"] != 8 {
		t.Errorf("FILE_OPEN latency count = %d, want 8", byOp["FILE_OPEN"])
	}
	if byOp["LNK_FILE_READ"] != 1 {
		t.Errorf("LNK_FILE_READ latency count = %d, want 1", byOp["LNK_FILE_READ"])
	}
}

// TestTraceStreamsSpans runs the canned workload under -trace and checks
// the streamed span lines: accepted opens with per-layer latency, and the
// link-walk denial naming the deciding rule's source position.
func TestTraceStreamsSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FILE_OPEN /etc/passwd -> ACCEPT",
		"LNK_FILE_READ /tmp/trap -> DROP rule=<standard>:13(DROP)",
		"kernel=", "check=", "gauntlet=", "total=",
		"[batch", "dcache_hit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-trace output missing %q:\n%s", want, out)
		}
	}
	// Every span line carries the full latency split.
	spans := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) < 2 || line[0] != '#' || line[1] < '0' || line[1] > '9' {
			continue // rule chatter and comments, not span lines
		}
		spans++
		for _, part := range []string{" kernel=", " check=", " gauntlet=", " total="} {
			if !strings.Contains(line, part) {
				t.Errorf("span line missing %q: %s", part, line)
			}
		}
	}
	if spans < 50 {
		t.Errorf("only %d span lines streamed, want the workload's full trace", spans)
	}
}

// TestTopRendersFleetView runs a short traced fleet under -top and checks
// the aggregated frame: header with stream health and per
// tenant/persona/op rows with quantiles.
func TestTopRendersFleetView(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-world", "tiny", "-fleet", "2", "-duration", "300ms", "-top", "-trace-every", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pfctl top — ") {
		t.Fatalf("-top frame header missing:\n%s", out)
	}
	if !strings.Contains(out, "TENANT") || !strings.Contains(out, "PERSONA") || !strings.Contains(out, "P99") {
		t.Errorf("-top column header missing:\n%s", out)
	}
	// The tiny fleet always walks directories; at 1-in-4 sampling the
	// busiest buckets must include persona'd DIR_SEARCH rows.
	if !strings.Contains(out, "DIR_SEARCH") {
		t.Errorf("-top shows no DIR_SEARCH bucket:\n%s", out)
	}
}

// TestCheckExitsNonZeroOnErrorFindings: -check must fail the process when
// the analyzer reports an error-class finding (here: a parse error), and
// succeed on a clean ruleset.
func TestCheckExitsNonZeroOnErrorFindings(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-check", "-e", "pftables -R input -j DROP"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "error finding") {
		t.Fatalf("err = %v, want error-finding failure\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "-R requires a 1-based rule position") {
		t.Errorf("finding not printed:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-check", "-e", "pftables -o FILE_OPEN -d tmp_t -j DROP"}, &buf); err != nil {
		t.Fatalf("clean ruleset: %v", err)
	}
}

// TestCheckJSON pins -check -json: a machine-readable report with rendered
// positions, still failing on error findings.
func TestCheckJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-check", "-json", "-e", "pftables -A input --tag web -j DROP"}, &buf)
	if err == nil {
		t.Fatal("want non-zero on error finding")
	}
	var doc struct {
		Findings []struct {
			Severity string `json:"severity"`
			Pos      string `json:"pos"`
			Col      int    `json:"col"`
		} `json:"findings"`
	}
	if jerr := json.Unmarshal(buf.Bytes(), &doc); jerr != nil {
		t.Fatalf("not JSON: %v\n%s", jerr, buf.String())
	}
	if len(doc.Findings) != 1 || doc.Findings[0].Severity != "error" || doc.Findings[0].Col != 19 {
		t.Errorf("findings = %+v, want one error at col 19", doc.Findings)
	}
}

// TestVerifyProvesStandardInvariants: -verify over the paper ruleset and
// its shipped invariant file proves every property.
func TestVerifyProvesStandardInvariants(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-verify", "-standard", "-inv", "../../examples/rules/standard.inv"}, &buf)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, inv := range []string{"ld-untrusted-library", "safe-open-owner-diff", "dbus-connect-trusted-socket", "python-untrusted-module"} {
		if !strings.Contains(out, "invariant "+inv+": holds") {
			t.Errorf("invariant %s not proven:\n%s", inv, out)
		}
	}
}

// TestVerifyDetectsAndReplaysViolation: dropping the loader guard from the
// paper ruleset violates ld-untrusted-library; -verify must report it, the
// witness must replay, and the exit must be non-zero.
func TestVerifyDetectsAndReplaysViolation(t *testing.T) {
	lines, err := os.ReadFile("../../examples/rules/standard.pft")
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(lines), "\n") {
		if strings.Contains(line, "0x596b") {
			continue // seed the violation: remove the ld.so guard
		}
		kept = append(kept, line)
	}
	f := filepath.Join(t.TempDir(), "weak.pft")
	if err := os.WriteFile(f, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{"-verify", "-f", f, "-inv", "../../examples/rules/standard.inv"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "invariant violation") {
		t.Fatalf("err = %v, want violation failure\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "invariant ld-untrusted-library: VIOLATED") {
		t.Errorf("violation not reported:\n%s", out)
	}
	if !strings.Contains(out, "# witness replay:") || strings.Contains(out, "REPLAY FAILED") {
		t.Errorf("witness replay missing or failed:\n%s", out)
	}
	if !strings.Contains(out, " 0 failed") {
		t.Errorf("replay failures present:\n%s", out)
	}
}

// TestVerifyWorldgenTenantInvariant: -verify -world proves the built-in
// tenant non-interference invariant over a generated deployment.
func TestVerifyWorldgenTenantInvariant(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-verify", "-world", "tiny"}, &buf); err != nil {
		t.Fatalf("verify: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "invariant tenant-home-no-serve: holds") {
		t.Errorf("tenant invariant not proven:\n%s", buf.String())
	}
}
