// Command pfbench regenerates the paper's performance tables and figures
// (Section 6.2) in their published layouts:
//
//	pfbench -table6   # lmbench microbenchmarks × PF configuration
//	pfbench -table7   # macrobenchmarks × {Without PF, PF Base, PF Full}
//	pfbench -fig4     # open variants × path length
//	pfbench -fig5     # Apache SymLinksIfOwnerMatch: program vs rule R8
//	pfbench -all      # everything
//
// -iters and -requests trade precision for runtime.
package main

import (
	"flag"
	"fmt"

	"pfirewall/internal/lmbench"
	"pfirewall/internal/safeopen"
	"pfirewall/internal/webbench"
)

func main() {
	t6 := flag.Bool("table6", false, "run the Table 6 microbenchmarks")
	t7 := flag.Bool("table7", false, "run the Table 7 macrobenchmarks")
	f4 := flag.Bool("fig4", false, "run the Figure 4 open-variant comparison")
	f5 := flag.Bool("fig5", false, "run the Figure 5 Apache comparison")
	all := flag.Bool("all", false, "run everything")
	iters := flag.Int("iters", 20000, "iterations per microbenchmark cell")
	requests := flag.Int("requests", 300, "requests per client per web cell")
	scale := flag.Int("scale", 50, "macrobenchmark scale (build units)")
	flag.Parse()

	if !*t6 && !*t7 && !*f4 && !*f5 && !*all {
		flag.Usage()
		return
	}
	if *all {
		*t6, *t7, *f4, *f5 = true, true, true, true
	}

	if *t6 {
		fmt.Println("Table 6: microbenchmarks (ns/op, % overhead vs DISABLED)")
		fmt.Print(lmbench.FormatTable6(lmbench.Run(*iters)))
		fmt.Println()
	}
	if *t7 {
		fmt.Println("Table 7: macrobenchmarks (elapsed, % overhead vs Without PF)")
		fmt.Print(webbench.FormatTable7(webbench.RunTable7(*scale, lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize))))
		fmt.Println()
	}
	if *f4 {
		fmt.Println("Figure 4: open variants vs path length (ns/op, % over bare open)")
		fmt.Print(safeopen.Format(safeopen.Run(*iters)))
		fmt.Println()
	}
	if *f5 {
		fmt.Println("Figure 5: Apache SymLinksIfOwnerMatch — program checks vs PF rule R8 (req/s)")
		fmt.Print(webbench.FormatFigure5(webbench.RunFigure5(*requests)))
		fmt.Println()
	}
}
