// Command pfbench regenerates the paper's performance tables and figures
// (Section 6.2) in their published layouts:
//
//	pfbench -table6   # lmbench microbenchmarks × PF configuration
//	pfbench -table7   # macrobenchmarks × {Without PF, PF Base, PF Full}
//	pfbench -fig4     # open variants × path length
//	pfbench -fig5     # Apache SymLinksIfOwnerMatch: program vs rule R8
//	pfbench -parallel  # multi-process hot-path scaling at 1/4/8 goroutines
//	pfbench -ipc       # socket round-trip scaling across the three namespaces
//	pfbench -rulescale # ns/op vs rule-base size, compiled dispatch vs linear
//	pfbench -policy    # control-plane publish latency, propagation, disturbance
//	pfbench -alloc     # allocs/op, bytes/op and tail latency on the hot path
//	pfbench -verify    # symbolic invariant-sweep wall clock vs rule-base size
//	pfbench -worldscale # fleet traffic vs world size (worldgen + fleet stress bed)
//	pfbench -all       # everything
//
// -iters and -requests trade precision for runtime. -json writes the
// -parallel results (plus hardware parallelism) to the given file, e.g.
// `pfbench -parallel -json BENCH_hotpath.json`; -ipc-json does the same
// for the -ipc results, e.g. `pfbench -ipc -ipc-json BENCH_ipc.json`.
//
// -obs runs the observability-overhead comparison (hot paths with the
// metrics layer off vs on); -obs-json writes its report, e.g.
// `pfbench -obs -obs-json BENCH_obs.json`. -tracing adds the
// decision-provenance comparison (metrics-on world with tracing disabled
// vs sampling one syscall in -trace-every) to the same report, and
// -tracing-gate fails the run if sampled tracing costs more than 10% on
// the open path. -cpuprofile, -memprofile and -trace capture
// pprof/runtime-trace artifacts of whatever ran.
//
// -worldscale sweeps the standing stress bed: deployment-scale worlds
// (up to a million inodes) under a supervised daemon fleet with live
// process churn and concurrent rule mutation. -worldscale-json writes
// BENCH_worldscale.json; -worldscale-sizes/-fleets/-secs/-seed shape the
// sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"

	"pfirewall/internal/lmbench"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/safeopen"
	"pfirewall/internal/webbench"
)

func main() {
	t6 := flag.Bool("table6", false, "run the Table 6 microbenchmarks")
	t7 := flag.Bool("table7", false, "run the Table 7 macrobenchmarks")
	f4 := flag.Bool("fig4", false, "run the Figure 4 open-variant comparison")
	f5 := flag.Bool("fig5", false, "run the Figure 5 Apache comparison")
	par := flag.Bool("parallel", false, "run the multi-process hot-path scaling measurement")
	ipc := flag.Bool("ipc", false, "run the socket round-trip scaling measurement")
	obsRun := flag.Bool("obs", false, "run the observability-overhead comparison (metrics off vs on)")
	tracingRun := flag.Bool("tracing", false, "run the decision-provenance overhead comparison (tracing off vs sampled)")
	tracingGate := flag.Bool("tracing-gate", false, "with -tracing: fail if sampled tracing exceeds 10% overhead on the open path")
	traceEvery := flag.Int("trace-every", 0, "span sampling period for -tracing (0: the default)")
	ruleScale := flag.Bool("rulescale", false, "run the rule-base scaling comparison (compiled dispatch vs linear)")
	policyRun := flag.Bool("policy", false, "run the policy control-plane measurement (publish latency, propagation, open-path disturbance)")
	policyGate := flag.Bool("policy-gate", false, "with -policy: fail on slow incremental publish, stale verdicts, or >10% open-path p99 disturbance")
	policyJSONPath := flag.String("policy-json", "", "write -policy results as JSON to this file")
	policyPublishes := flag.Int("policy-publishes", 400, "publishes per -policy latency cell")
	policyMax := flag.Int("policy-max", 0, "largest -policy rule-base size (0: all standard sizes)")
	allocRun := flag.Bool("alloc", false, "run the hot-path allocation profile (allocs/op, bytes/op, p99)")
	allocGate := flag.Bool("alloc-gate", false, "with -alloc: fail if the open+close or stat workload allocates at all")
	verifyRun := flag.Bool("verify", false, "run the symbolic-verifier scaling sweep (invariant proof wall clock vs rule-base size)")
	verifyGate := flag.Bool("verify-gate", false, "with -verify: fail if any invariant fails to prove or any sweep exceeds the wall-clock budget")
	verifyJSONPath := flag.String("verify-json", "", "write -verify results as JSON to this file")
	verifyMax := flag.Int("verify-max", 0, "largest -verify rule-base size (0: all standard sizes)")
	worldScale := flag.Bool("worldscale", false, "run the fleet stress bed across world sizes and fleet sizes")
	all := flag.Bool("all", false, "run everything")
	iters := flag.Int("iters", 20000, "iterations per microbenchmark cell")
	requests := flag.Int("requests", 300, "requests per client per web cell")
	scale := flag.Int("scale", 50, "macrobenchmark scale (build units)")
	sampleEvery := flag.Int("obs-sample", 0, "latency sampling period for -obs (0: the default)")
	jsonPath := flag.String("json", "", "write -parallel results as JSON to this file")
	ipcJSONPath := flag.String("ipc-json", "", "write -ipc results as JSON to this file")
	obsJSONPath := flag.String("obs-json", "", "write -obs results as JSON to this file")
	ruleScaleJSONPath := flag.String("rulescale-json", "", "write -rulescale results as JSON to this file")
	allocJSONPath := flag.String("alloc-json", "", "write -alloc results as JSON to this file")
	ruleScaleMax := flag.Int("rulescale-max", 0, "largest -rulescale rule-base size (0: all standard sizes)")
	worldScaleJSONPath := flag.String("worldscale-json", "", "write -worldscale results as JSON to this file")
	worldScaleSizes := flag.String("worldscale-sizes", "", "comma-separated worldgen presets for -worldscale (default small,medium,large)")
	worldScaleFleets := flag.String("worldscale-fleets", "", "comma-separated fleet sizes for -worldscale (default 4,8)")
	worldScaleSecs := flag.Float64("worldscale-secs", 2, "traffic seconds per -worldscale cell")
	worldScaleSeed := flag.Uint64("worldscale-seed", 1, "seed for -worldscale worlds and fleet schedules")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if !*t6 && !*t7 && !*f4 && !*f5 && !*par && !*ipc && !*obsRun && !*tracingRun && !*ruleScale && !*policyRun && !*allocRun && !*verifyRun && !*worldScale && !*all {
		flag.Usage()
		return
	}
	if *all {
		// -worldscale stays opt-in: the full sweep builds million-inode
		// worlds and holds each cell under traffic for -worldscale-secs.
		*t6, *t7, *f4, *f5, *par, *ipc, *obsRun, *tracingRun, *ruleScale, *policyRun, *allocRun, *verifyRun = true, true, true, true, true, true, true, true, true, true, true, true
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("cpuprofile:", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile:", err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace:", err)
		}
		if err := trace.Start(f); err != nil {
			fatal("trace:", err)
		}
		defer func() { trace.Stop(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal("memprofile:", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("memprofile:", err)
			}
		}()
	}

	if *t6 {
		fmt.Println("Table 6: microbenchmarks (ns/op, % overhead vs DISABLED)")
		fmt.Print(lmbench.FormatTable6(lmbench.Run(*iters)))
		fmt.Println()
	}
	if *t7 {
		fmt.Println("Table 7: macrobenchmarks (elapsed, % overhead vs Without PF)")
		fmt.Print(webbench.FormatTable7(webbench.RunTable7(*scale, lmbench.SyntheticRuleBase(lmbench.FullRuleBaseSize))))
		fmt.Println()
	}
	if *f4 {
		fmt.Println("Figure 4: open variants vs path length (ns/op, % over bare open)")
		fmt.Print(safeopen.Format(safeopen.Run(*iters)))
		fmt.Println()
	}
	if *f5 {
		fmt.Println("Figure 5: Apache SymLinksIfOwnerMatch — program checks vs PF rule R8 (req/s)")
		fmt.Print(webbench.FormatFigure5(webbench.RunFigure5(*requests)))
		fmt.Println()
	}
	if *par {
		rep := lmbench.RunParallel(*iters, lmbench.ParallelFanout)
		emit("Hot-path scaling: mediated syscalls across concurrent processes",
			lmbench.FormatParallel(rep), *jsonPath, rep)
	}
	if *ipc {
		rep := lmbench.RunIPC(*iters, lmbench.ParallelFanout)
		emit("IPC scaling: socket round trips across concurrent daemon/client pairs",
			lmbench.FormatIPC(rep), *ipcJSONPath, rep)
	}
	if *ruleScale {
		sizes := rulegen.ScaleSizes
		if *ruleScaleMax > 0 {
			var trimmed []int
			for _, n := range sizes {
				if n <= *ruleScaleMax {
					trimmed = append(trimmed, n)
				}
			}
			sizes = trimmed
		}
		rep := lmbench.RunRuleScale(*iters, sizes)
		emit("Rule-base scaling: compiled dispatch vs linear traversal",
			lmbench.FormatRuleScale(rep), *ruleScaleJSONPath, rep)
	}
	if *policyRun {
		sizes := lmbench.PolicyChurnSizes
		if *policyMax > 0 {
			var trimmed []int
			for _, n := range sizes {
				if n <= *policyMax {
					trimmed = append(trimmed, n)
				}
			}
			sizes = trimmed
		}
		rep := lmbench.RunPolicyChurn(*policyPublishes, *iters, sizes)
		emit("Policy control plane: hitless publish latency, fleet propagation, open-path disturbance",
			lmbench.FormatPolicyChurn(rep), *policyJSONPath, rep)
		if *policyGate {
			// The speedup gate reads the largest swept size: at deployment
			// scale (>=10k rules) incremental publish must beat the full
			// rebuild by 10x; a trimmed smoke sweep still has to show a
			// clear win. The hitless gates are absolute: no probe may see
			// a stale verdict after its publish round-trip, every request
			// must resolve to a verdict, and the open path's best-round
			// p99 may not degrade more than 10% while churning.
			maxSize := rep.MaxPublishSize()
			need := 10.0
			if maxSize < 10000 {
				need = 1.5
			}
			if s := rep.SpeedupAt(maxSize); s < need {
				fatal("policy gate:", fmt.Errorf(
					"incremental publish only %.1fx faster than full rebuild at %d rules, want >=%.1fx", s, maxSize, need))
			}
			if rep.Propagation.Lost != 0 {
				fatal("policy gate:", fmt.Errorf(
					"%d probes saw a stale verdict after a completed publish", rep.Propagation.Lost))
			}
			if !rep.Disturbance.VerdictsConserved {
				fatal("policy gate:", fmt.Errorf(
					"verdicts not conserved under churn: %d requests vs %d accepts + %d drops",
					rep.Disturbance.Requests, rep.Disturbance.Accepts, rep.Disturbance.Drops))
			}
			if rep.Disturbance.BestRoundPct > 10 {
				fatal("policy gate:", fmt.Errorf(
					"open-path p99 degrades %.1f%% in every churning round, budget 10%%", rep.Disturbance.BestRoundPct))
			}
			fmt.Printf("policy gate: ok (%.0fx at %d rules, 0 stale verdicts, conserved, best-round disturbance %+.1f%%)\n",
				rep.SpeedupAt(maxSize), maxSize, rep.Disturbance.BestRoundPct)
		}
	}
	if *allocRun {
		rep := lmbench.RunAlloc(*iters)
		emit("Hot-path allocation profile: per-op heap traffic and tail latency",
			lmbench.FormatAlloc(rep), *allocJSONPath, rep)
		if *allocGate {
			for _, c := range rep.Cells {
				if (c.Workload == "open+close" || c.Workload == "stat") && c.AllocsPerOp != 0 {
					fatal("alloc gate:", fmt.Errorf("%s allocates %.3f/op on the armed hot path, want 0", c.Workload, c.AllocsPerOp))
				}
			}
			fmt.Println("alloc gate: ok (open+close and stat allocation-free)")
		}
	}
	if *obsRun || *tracingRun {
		// Both comparisons share the BENCH_obs.json artifact: the metrics
		// off/on cells and the tracing off/sampled cells land in one report
		// so the observability cost story stays in one place.
		var rep lmbench.ObsReport
		var text string
		if *obsRun {
			rep = lmbench.RunObsOverhead(*iters, *sampleEvery, lmbench.ParallelFanout)
			text += lmbench.FormatObsOverhead(rep)
		}
		if *tracingRun {
			trep := lmbench.RunTraceOverhead(*iters, *sampleEvery, *traceEvery, lmbench.ParallelFanout)
			if !*obsRun {
				rep = trep
			} else {
				rep.TraceEvery, rep.TraceCells = trep.TraceEvery, trep.TraceCells
			}
			text += lmbench.FormatTraceOverhead(trep)
		}
		emit("Observability overhead: metrics off vs on; provenance tracing off vs sampled",
			text, *obsJSONPath, rep)
		if *tracingGate {
			// The gate reads the single-goroutine file cell: it isolates
			// per-request span cost, where the fan-out cells on a small CI
			// box mostly measure scheduler interference. It judges the best
			// *paired* round — off and on run back-to-back each round, so
			// interference (a throttled cgroup, a stray daemon) inflates
			// both sides of a pair and cancels in the ratio; only a cost
			// present in every round fails the gate.
			for _, c := range rep.TraceCells {
				if c.Workload == "open+stat+close" && c.Goroutines == 1 && c.BestRoundPct > 10 {
					fatal("tracing gate:", fmt.Errorf(
						"sampled tracing costs %.1f%% on the open path in every round, budget 10%%", c.BestRoundPct))
				}
			}
			fmt.Println("tracing gate: ok (sampled spans within 10% on the open path)")
		}
	}
	if *verifyRun {
		sizes := lmbench.VerifyScaleSizes
		if *verifyMax > 0 {
			var trimmed []int
			for _, n := range sizes {
				if n <= *verifyMax {
					trimmed = append(trimmed, n)
				}
			}
			sizes = trimmed
		}
		rep := lmbench.RunVerifyScale(sizes)
		emit("Verifier scaling: symbolic invariant sweep vs rule-base size",
			lmbench.FormatVerifyScale(rep), *verifyJSONPath, rep)
		if *verifyGate {
			for _, c := range rep.Cells {
				if !c.Holds {
					fatal("verify gate:", fmt.Errorf("invariants not proven at %d rules", c.Rules))
				}
			}
			if !rep.WithinBudget() {
				fatal("verify gate:", fmt.Errorf("a sweep exceeded the %s budget", lmbench.VerifyBudget))
			}
			fmt.Printf("verify gate: ok (all invariants proven, every sweep under %s)\n", lmbench.VerifyBudget)
		}
	}
	if *worldScale {
		sizes := lmbench.WorldScaleSizes
		if *worldScaleSizes != "" {
			sizes = splitList(*worldScaleSizes)
		}
		fleets := lmbench.WorldScaleFleets
		if *worldScaleFleets != "" {
			fleets = nil
			for _, s := range splitList(*worldScaleFleets) {
				n, err := strconv.Atoi(s)
				if err != nil || n < 1 {
					fatal("worldscale-fleets:", fmt.Errorf("bad fleet size %q", s))
				}
				fleets = append(fleets, n)
			}
		}
		rep := lmbench.RunWorldScale(sizes, fleets, *worldScaleSecs, *worldScaleSeed)
		emit("World scaling: fleet traffic under churn vs world size and fleet size",
			lmbench.FormatWorldScale(rep), *worldScaleJSONPath, rep)
	}
}

// emit prints one benchmark section — header, formatted table, blank
// separator — and writes the report as JSON when a path was given. Every
// bench funnels through here so the console and JSON shapes stay uniform.
func emit(header, text, jsonPath string, rep any) {
	fmt.Println(header)
	fmt.Print(text)
	fmt.Println()
	if jsonPath != "" {
		writeJSON(jsonPath, rep)
	}
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(prefix string, err error) {
	fmt.Fprintln(os.Stderr, "pfbench:", prefix, err)
	os.Exit(1)
}

func writeJSON(path string, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
