// Command rulegen reproduces the paper's rule-generation study
// (Section 6.3): Table 8 over the synthetic two-week deployment trace,
// rule suggestion from traces, rule generation from known vulnerabilities,
// and the OS-distributor environment-consistency analysis.
//
// Usage:
//
//	rulegen -table8                 # classification vs invocation threshold
//	rulegen -suggest -threshold 100 # suggest rules from a trace
//	rulegen -trace file.jsonl       # use a real trace instead of synthetic
//	rulegen -vulns                  # generate rules for the known vulns E6/E7
//	rulegen -consistency            # Section 6.3.2 distributor analysis
package main

import (
	"flag"
	"fmt"
	"os"

	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/trace"
)

func main() {
	table8 := flag.Bool("table8", false, "print Table 8")
	suggest := flag.Bool("suggest", false, "suggest rules from the trace")
	threshold := flag.Int("threshold", 1149, "invocation threshold for suggestions")
	traceFile := flag.String("trace", "", "JSON-lines trace file (default: synthetic deployment)")
	vulns := flag.Bool("vulns", false, "generate rules from known vulnerabilities")
	consistency := flag.Bool("consistency", false, "OS-distributor environment analysis")
	dump := flag.String("dump", "", "write the synthetic trace as JSON lines to this file")
	seed := flag.Uint64("seed", 2013, "synthetic trace seed")
	flag.Parse()

	load := func() *trace.Store {
		if *traceFile == "" {
			return rulegen.SyntheticDeployment(*seed)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		s, err := trace.ReadJSON(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		return s
	}

	switch {
	case *dump != "":
		s := rulegen.SyntheticDeployment(*seed)
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "rulegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", s.Len(), *dump)
	case *table8:
		s := load()
		fmt.Printf("Table 8: entrypoint classification vs invocation threshold (%d log entries)\n", s.Len())
		fmt.Print(rulegen.FormatTable8(rulegen.Table8(s, rulegen.PaperThresholds)))
	case *suggest:
		s := load()
		sugs := rulegen.SuggestRules(s, *threshold)
		fmt.Printf("# %d rule suggestions at threshold %d\n", len(sugs), *threshold)
		for _, sg := range sugs {
			fmt.Printf("# %s+0x%x: %s, %d invocations\n%s\n", sg.Ep.Program, sg.Ep.Off, sg.Class, sg.Invoked, sg.Rule)
		}
	case *vulns:
		fmt.Println("# Rules generated from known vulnerabilities (E6: dbus TOCTTOU, E7: java config)")
		for _, r := range rulegen.RulesFromVuln(rulegen.Vuln{
			Kind: rulegen.VulnTOCTTOU, Program: programs.BinDbusD,
			CheckEntrypoint: programs.EntryDbusBind, CheckOp: "SOCKET_BIND",
			Entrypoint: programs.EntryDbusChmod, Op: "SOCKET_SETATTR",
		}) {
			fmt.Println(r)
		}
		for _, r := range rulegen.RulesFromVuln(rulegen.Vuln{
			Kind: rulegen.VulnUntrustedResource, Program: programs.BinJava,
			Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN",
		}) {
			fmt.Println(r)
		}
	case *consistency:
		launches := rulegen.SyntheticLaunches(*seed)
		c, total := rulegen.ConsistentPrograms(launches)
		fmt.Printf("Section 6.3.2: %d of %d programs launched in the installed-package environment every time\n", c, total)
		fmt.Println("(paper: 232 of 318 — distributor-shipped rules are valid for these)")
	default:
		flag.Usage()
	}
}
