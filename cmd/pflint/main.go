// Command pflint is the repository's lock-discipline linter for the
// mediation hot path. The engine's Filter path is designed to be lock-free:
// rulesets, compiled indexes, MAC caches, and hook tables are all published
// through atomic pointers (RCU/copy-on-write), and per-request counters are
// sharded. A mutex acquired anywhere Filter can reach reintroduces the
// cross-core serialization the design removed — and has done so before,
// invisibly to the unit tests, because correctness is unaffected.
//
// Suppressions come in two granularities: "//pflint:allow" on (or above) a
// line audits that single site, and "//pflint:allow-fn" in a function's doc
// comment audits the whole function as cold-path for the allocation lint —
// the right shape for renderers and miss-path builders whose every line
// allocates by design.
//
// pflint parses the hot-path packages with the standard library's go/ast
// (no type checking, no external dependencies) and builds a name-based call
// graph rooted at (*Engine).Filter. Within every function reachable from
// that root it flags:
//
//   - sync mutex acquisitions: any .Lock() / .RLock() call;
//   - post-publish snapshot mutation: an assignment through a variable
//     bound from a .Load() call — mutating a published snapshot instead of
//     copy-on-write racing every concurrent reader.
//
// With -alloc, pflint instead guards the zero-allocation invariant: it runs
// the compiler's escape analysis (go build -gcflags=<pkg>=-m — diagnostics
// are replayed from the build cache, so warm runs are cheap) and flags every
// "escapes to heap" / "moved to heap" site inside a function reachable from
// the Filter roots. The pooled request/scratch design makes the steady-state
// mediation path allocation-free; an escape that creeps into its closure is
// a per-syscall heap allocation waiting to happen. The same "//pflint:allow"
// comment suppresses a site after it has been audited as cold-path (slow
// paths that only run on rule updates, cache misses, or log emission).
//
// Name-based reachability is deliberately an over-approximation (interface
// method calls fan out to every method of that name), which is the sound
// direction for a linter guarding an invariant. A finding that is a
// verified false positive — the lock provably sits on a cold path — is
// suppressed by a "//pflint:allow" comment on or directly above the line,
// which doubles as in-source documentation that the lock was audited.
//
// Usage: pflint [-v] [-alloc] [dir ...]  (default: the hot-path package closure)
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// defaultDirs is the transitive package closure of the mediation hot path:
// everything (*Engine).Filter can execute, plus the control-plane and
// provenance packages (policyd, trace) whose callbacks the engine invokes
// from inside mediation (gate closures, span collection, denial logging).
var defaultDirs = []string{
	"internal/pf", "internal/mac", "internal/ustack", "internal/obs",
	"internal/trace", "internal/policyd",
}

func main() {
	verbose := flag.Bool("v", false, "list the functions found reachable from Engine.Filter")
	alloc := flag.Bool("alloc", false, "run the allocation lint (escape analysis on the Filter closure) instead of the lock lint")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	run := runLint
	if *alloc {
		run = runAllocLint
	}
	n, err := run(dirs, *verbose, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pflint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// site is one flagged source location.
type site struct {
	pos token.Position
	msg string
}

// fn is one analyzed function declaration.
type fn struct {
	key     string // pkg.recv.name, for diagnostics
	name    string // bare name, the call-graph vertex label
	pos     token.Position
	endLine int  // last source line of the body, for escape-site attribution
	allowFn bool // doc comment carries pflint:allow-fn: audited cold path
	calls   map[string]bool
	locks   []site
	muts    []site
}

// scan parses every non-test .go file under dirs, returning the analyzed
// functions and the per-file set of lines carrying a pflint:allow comment.
func scan(fset *token.FileSet, dirs []string) ([]*fn, map[string]map[int]bool, error) {
	var fns []*fn
	allows := make(map[string]map[int]bool)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			fileFns, allowed := analyzeFile(fset, file)
			fns = append(fns, fileFns...)
			allows[canonFile(path)] = allowed
		}
	}
	return fns, allows, nil
}

// reachable BFS-walks the name-based call graph from every Filter root
// ((*Engine).Filter and (*Batch).Filter declarations) and returns the
// reached set plus the predecessor map for diagnostics.
func reachable(fns []*fn, dirs []string) (map[*fn]bool, map[*fn]*fn, error) {
	byName := make(map[string][]*fn)
	for _, f := range fns {
		byName[f.name] = append(byName[f.name], f)
	}
	reach := make(map[*fn]bool)
	var queue []*fn
	for _, f := range fns {
		if f.key == "pf.Engine.Filter" || f.key == "pf.Batch.Filter" {
			reach[f] = true
			queue = append(queue, f)
		}
	}
	if len(queue) == 0 {
		return nil, nil, fmt.Errorf("no Filter root found in %v", dirs)
	}
	via := make(map[*fn]*fn)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for name := range f.calls {
			for _, callee := range byName[name] {
				if !reach[callee] {
					reach[callee] = true
					via[callee] = f
					queue = append(queue, callee)
				}
			}
		}
	}
	return reach, via, nil
}

// runLint scans dirs (non-test .go files), builds the call graph, and
// writes one line per finding. It returns the number of findings.
func runLint(dirs []string, verbose bool, out io.Writer) (int, error) {
	fset := token.NewFileSet()
	fns, _, err := scan(fset, dirs)
	if err != nil {
		return 0, err
	}
	reach, via, err := reachable(fns, dirs)
	if err != nil {
		return 0, err
	}

	var findings []site
	reached := make([]string, 0, len(reach))
	for f := range reach {
		reached = append(reached, f.key)
		for _, s := range append(f.locks, f.muts...) {
			findings = append(findings, site{pos: s.pos, msg: fmt.Sprintf("%s (in %s, reachable from Engine.Filter via %s)", s.msg, f.key, chain(via, f))})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, s := range findings {
		fmt.Fprintf(out, "%s:%d: [pflint] %s\n", s.pos.Filename, s.pos.Line, s.msg)
	}
	if verbose {
		sort.Strings(reached)
		fmt.Fprintf(out, "pflint: %d functions reachable from Engine.Filter:\n", len(reached))
		for _, k := range reached {
			fmt.Fprintf(out, "  %s\n", k)
		}
	}
	if len(findings) == 0 {
		fmt.Fprintf(out, "pflint: ok (%d functions scanned, %d reachable from Engine.Filter)\n", len(fns), len(reach))
	}
	return len(findings), nil
}

// pkgPath maps a scan directory to its import path, tolerating dirs given
// relative to a subdirectory (as the tests do with "../../internal/pf").
func pkgPath(dir string) string {
	slash := filepath.ToSlash(filepath.Clean(dir))
	if i := strings.Index(slash, "internal/"); i >= 0 {
		return "pfirewall/" + slash[i:]
	}
	return "pfirewall/" + slash
}

// canonFile normalizes a source path for matching compiler diagnostics
// (module-root relative) against parsed file names (scan-dir relative).
func canonFile(path string) string {
	slash := filepath.ToSlash(filepath.Clean(path))
	if i := strings.Index(slash, "internal/"); i >= 0 {
		return slash[i:]
	}
	return slash
}

// escapeLine matches one compiler escape diagnostic worth flagging. The
// "leaking param" and "does not escape" lines are deliberately excluded:
// only sites where something actually lands on the heap can allocate.
var escapeLine = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// runAllocLint builds the scanned packages with escape analysis enabled and
// flags heap-escape sites inside the Filter closure.
func runAllocLint(dirs []string, verbose bool, out io.Writer) (int, error) {
	fset := token.NewFileSet()
	fns, allows, err := scan(fset, dirs)
	if err != nil {
		return 0, err
	}
	reach, via, err := reachable(fns, dirs)
	if err != nil {
		return 0, err
	}

	// fnAt resolves an escape site to the innermost reachable function
	// whose body spans the line (function literals report their enclosing
	// declaration, which is the granularity the call graph works at).
	byFile := make(map[string][]*fn)
	for f := range reach {
		byFile[canonFile(f.pos.Filename)] = append(byFile[canonFile(f.pos.Filename)], f)
	}
	fnAt := func(file string, line int) *fn {
		var best *fn
		for _, f := range byFile[file] {
			if f.pos.Line <= line && line <= f.endLine {
				if best == nil || f.pos.Line > best.pos.Line {
					best = f
				}
			}
		}
		return best
	}

	// One build invocation covers every scanned package; the compiler
	// replays -m diagnostics from the build cache, so warm runs cost only
	// the cache lookup.
	args := []string{"build"}
	pkgs := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		args = append(args, "-gcflags", pkgPath(dir)+"=-m")
		pkgs = append(pkgs, pkgPath(dir))
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, raw)
	}
	if !strings.Contains(string(raw), ":") {
		return 0, fmt.Errorf("escape analysis produced no diagnostics — build cache anomaly? re-run with a clean cache")
	}

	var findings []site
	for _, line := range strings.Split(string(raw), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, msg := canonFile(m[1]), m[3]
		ln := 0
		fmt.Sscanf(m[2], "%d", &ln)
		f := fnAt(file, ln)
		if f == nil {
			continue // not inside the Filter closure
		}
		if f.allowFn || allows[file][ln] {
			continue // audited cold-path escape
		}
		findings = append(findings, site{
			pos: token.Position{Filename: file, Line: ln},
			msg: fmt.Sprintf("%s (in %s, reachable from Filter via %s)", msg, f.key, chain(via, f)),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, s := range findings {
		fmt.Fprintf(out, "%s:%d: [pflint-alloc] %s\n", s.pos.Filename, s.pos.Line, s.msg)
	}
	if verbose {
		reached := make([]string, 0, len(reach))
		for f := range reach {
			reached = append(reached, f.key)
		}
		sort.Strings(reached)
		fmt.Fprintf(out, "pflint -alloc: %d functions in the Filter closure:\n", len(reached))
		for _, k := range reached {
			fmt.Fprintf(out, "  %s\n", k)
		}
	}
	if len(findings) == 0 {
		fmt.Fprintf(out, "pflint -alloc: ok (no unaudited heap escapes in the Filter closure)\n")
	}
	return len(findings), nil
}

// chain renders the BFS path from Filter down to f, e.g.
// "Filter -> traverseFrom -> evalRule".
func chain(via map[*fn]*fn, f *fn) string {
	var names []string
	for cur := f; cur != nil; cur = via[cur] {
		names = append(names, cur.name)
		if len(names) > 8 {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// analyzeFile extracts every function declaration with its outgoing calls,
// lock sites, and snapshot-mutation sites, plus the file's pflint:allow
// line set (shared by both lint modes).
func analyzeFile(fset *token.FileSet, file *ast.File) ([]*fn, map[int]bool) {
	// Lines carrying a pflint:allow suppression (the line itself or the
	// line below a standalone comment).
	allowed := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "pflint:allow") {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}

	var fns []*fn
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		f := &fn{
			name:    fd.Name.Name,
			key:     funcKey(file.Name.Name, fd),
			pos:     fset.Position(fd.Pos()),
			endLine: fset.Position(fd.End()).Line,
			calls:   make(map[string]bool),
		}
		// Doc.Text() strips directive-style comments, so scan the raw list.
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.Contains(c.Text, "pflint:allow-fn") {
					f.allowFn = true
				}
			}
		}
		snapVars := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				switch fun := x.Fun.(type) {
				case *ast.Ident:
					f.calls[fun.Name] = true
				case *ast.SelectorExpr:
					f.calls[fun.Sel.Name] = true
					if fun.Sel.Name == "Lock" || fun.Sel.Name == "RLock" {
						pos := fset.Position(x.Pos())
						if !allowed[pos.Line] {
							f.locks = append(f.locks, site{pos: pos, msg: fmt.Sprintf("mutex %s() on the mediation hot path", fun.Sel.Name)})
						}
					}
				}
			case *ast.AssignStmt:
				// x := <expr>.Load() binds a published snapshot.
				if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
					for i, rhs := range x.Rhs {
						if isLoadCall(rhs) {
							if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
								snapVars[id.Name] = true
							}
						}
					}
				}
				// Any assignment through a snapshot variable mutates the
				// published object every concurrent reader sees.
				for _, lhs := range x.Lhs {
					if root, deref := rootIdent(lhs); deref && root != nil && snapVars[root.Name] {
						pos := fset.Position(lhs.Pos())
						if !allowed[pos.Line] {
							f.muts = append(f.muts, site{pos: pos, msg: fmt.Sprintf("mutation through %q, a snapshot obtained from .Load() — copy-on-write it instead", root.Name)})
						}
					}
				}
			case *ast.IncDecStmt:
				if root, deref := rootIdent(x.X); deref && root != nil && snapVars[root.Name] {
					pos := fset.Position(x.Pos())
					if !allowed[pos.Line] {
						f.muts = append(f.muts, site{pos: pos, msg: fmt.Sprintf("mutation through %q, a snapshot obtained from .Load() — copy-on-write it instead", root.Name)})
					}
				}
			}
			return true
		})
		fns = append(fns, f)
	}
	return fns, allowed
}

// isLoadCall reports whether e is a call whose selector is named Load
// (atomic.Pointer/Value and the obs snapshot accessors all use the name).
func isLoadCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Load"
}

// rootIdent unwraps selector/index/star expressions down to the base
// identifier. deref reports whether any wrapping existed — a plain
// reassignment of the variable itself is not a mutation of the snapshot.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	deref := false
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e, deref = x.X, true
		case *ast.IndexExpr:
			e, deref = x.X, true
		case *ast.StarExpr:
			e, deref = x.X, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return x, deref
		default:
			return nil, deref
		}
	}
}

// funcKey renders pkg.Recv.Name for diagnostics and root matching.
func funcKey(pkg string, fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name + "."
		}
	}
	return pkg + "." + recv + fd.Name.Name
}
