package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture writes a one-package source tree and returns its directory.
func fixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pf.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLockOnHotPathFlagged(t *testing.T) {
	dir := fixture(t, `package pf

import "sync"

type Engine struct{ mu sync.Mutex }

func (e *Engine) Filter() { e.eval() }

func (e *Engine) eval() {
	e.mu.Lock()
	defer e.mu.Unlock()
}

func (e *Engine) update() { // not reachable from Filter
	e.mu.Lock()
	defer e.mu.Unlock()
}
`)
	var buf bytes.Buffer
	n, err := runLint([]string{dir}, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want 1 finding, got %d:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "pf.go:10:") || !strings.Contains(out, "Filter -> eval") {
		t.Errorf("finding should cite line 10 and the call chain:\n%s", out)
	}
	if strings.Contains(out, "update") {
		t.Errorf("unreachable function must not be flagged:\n%s", out)
	}
}

func TestAllowCommentSuppresses(t *testing.T) {
	dir := fixture(t, `package pf

import "sync"

type Engine struct{ mu sync.Mutex }

func (e *Engine) Filter() {
	e.mu.Lock() //pflint:allow — audited
	e.mu.Unlock()
}
`)
	var buf bytes.Buffer
	n, err := runLint([]string{dir}, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("allow comment should suppress, got %d findings:\n%s", n, buf.String())
	}
}

func TestSnapshotMutationFlagged(t *testing.T) {
	dir := fixture(t, `package pf

import "sync/atomic"

type ruleset struct {
	chains map[string]int
	gen    int
}

type Engine struct{ rs atomic.Pointer[ruleset] }

func (e *Engine) Filter() {
	rs := e.rs.Load()
	rs.chains["input"] = 1 // mutates the published snapshot
	rs.gen++
	rs = e.rs.Load() // plain rebind: not a mutation
	_ = rs
}
`)
	var buf bytes.Buffer
	n, err := runLint([]string{dir}, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 mutation findings, got %d:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "copy-on-write") {
		t.Errorf("mutation message missing:\n%s", buf.String())
	}
}

func TestInterfaceFanOutIsReachable(t *testing.T) {
	// A call through an interface method name reaches every declaration of
	// that name — the sound over-approximation.
	dir := fixture(t, `package pf

import "sync"

type Match interface{ Match() bool }

type stateMatch struct{ mu sync.Mutex }

func (m *stateMatch) Match() bool {
	m.mu.Lock()
	m.mu.Unlock()
	return true
}

type Engine struct{ ms []Match }

func (e *Engine) Filter() {
	for _, m := range e.ms {
		m.Match()
	}
}
`)
	var buf bytes.Buffer
	n, err := runLint([]string{dir}, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("interface fan-out lock not flagged (%d findings):\n%s", n, buf.String())
	}
}

func TestNoRootIsAnError(t *testing.T) {
	dir := fixture(t, "package other\n\nfunc f() {}\n")
	if _, err := runLint([]string{dir}, false, &bytes.Buffer{}); err == nil {
		t.Fatal("want error when no Engine.Filter root exists")
	}
}

// TestRealRepoClean pins the actual invariant: the repository's hot-path
// closure has no unaudited locks or snapshot mutations.
func TestRealRepoClean(t *testing.T) {
	root := "../.."
	dirs := make([]string, len(defaultDirs))
	for i, d := range defaultDirs {
		dirs[i] = filepath.Join(root, d)
	}
	var buf bytes.Buffer
	n, err := runLint(dirs, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("hot path has %d lock-discipline findings:\n%s", n, buf.String())
	}
}

// TestEscapeLineParsing pins which compiler diagnostics the allocation lint
// treats as heap traffic: only actual escapes, not parameter-leak notes or
// "does not escape" confirmations.
func TestEscapeLineParsing(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{"internal/pf/engine.go:12:9: &Request{...} escapes to heap", true},
		{"internal/pf/engine.go:40:2: moved to heap: buf", true},
		{"internal/pf/engine.go:12:9: req does not escape", false},
		{"internal/pf/engine.go:12:9: leaking param: req", false},
		{"# pfirewall/internal/pf", false},
	}
	for _, c := range cases {
		if got := escapeLine.MatchString(c.line); got != c.want {
			t.Errorf("escapeLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

// TestAllowFnDetected checks that a //pflint:allow-fn directive in a doc
// comment marks the whole function audited (directive comments are hidden
// from CommentGroup.Text, so the raw list must be scanned).
func TestAllowFnDetected(t *testing.T) {
	dir := fixture(t, `package pf

// render builds debug text.
//pflint:allow-fn — cold path
func render() {}

func eval() {}
`)
	fns, _, err := scan(token.NewFileSet(), []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, f := range fns {
		byName[f.name] = f.allowFn
	}
	if !byName["render"] {
		t.Error("render: allow-fn directive not detected")
	}
	if byName["eval"] {
		t.Error("eval: spuriously marked allowed")
	}
}

// TestAllocRealRepoClean pins the tentpole invariant: the compiler finds no
// unaudited heap escapes anywhere in the Filter closure, so the steady-state
// mediation path performs zero allocations.
func TestAllocRealRepoClean(t *testing.T) {
	root := "../.."
	dirs := make([]string, len(defaultDirs))
	for i, d := range defaultDirs {
		dirs[i] = filepath.Join(root, d)
	}
	var buf bytes.Buffer
	n, err := runAllocLint(dirs, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("hot path has %d unaudited heap escapes:\n%s", n, buf.String())
	}
}
