// Command attacklab runs the paper's security evaluation (Section 6.1):
// the nine exploits of Table 4 against the simulated system, with the
// Process Firewall disabled and enabled, and prints the outcome table.
//
// Usage:
//
//	attacklab           # run E1–E9 and print Table 4
//	attacklab -table1   # print the CVE survey data of Table 1
//	attacklab -table2   # print the attack taxonomy of Table 2
//	attacklab -ipc      # run the IPC rendezvous exploits E10–E12
//	attacklab -run E4   # run a single exploit in both modes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pfirewall/internal/attacks"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 (CVE counts per attack class)")
	table2 := flag.Bool("table2", false, "print Table 2 (attack taxonomy)")
	extra := flag.Bool("extra", false, "run the extra exploits X1-X3 (cryogenic sleep, traversal, squat)")
	ipc := flag.Bool("ipc", false, "run the IPC rendezvous exploits E10-E12 (squats and stale rebinds)")
	runOne := flag.String("run", "", "run a single exploit by id (E1..E12, X1..X3)")
	flag.Parse()

	switch {
	case *table1:
		printTable1()
	case *table2:
		printTable2()
	case *extra:
		if err := runExtra(); err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
	case *ipc:
		if err := runIPC(); err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
	case *runOne != "":
		if err := runSingle(*runOne); err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
	default:
		out, err := attacks.Table4()
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println("Table 4: exploits vs the Process Firewall")
		fmt.Print(out)
	}
}

func printTable1() {
	fmt.Println("Table 1: resource access attack classes (CVE survey, reproduced from the paper)")
	fmt.Printf("%-24s %-10s %-8s %-8s\n", "Attack Class", "CWE", "<2007", "2007-12")
	for _, r := range attacks.Table1() {
		fmt.Printf("%-24s %-10s %-8d %-8d\n", r.Class, r.CWE, r.CVEPre2007, r.CVE2007to12)
	}
	fmt.Println("% of total CVEs: 12.40% (<2007), 9.41% (2007-12)")
}

func printTable2() {
	fmt.Println("Table 2: safe vs unsafe resources per attack class")
	for _, r := range attacks.Table2() {
		fmt.Printf("safe:   %s\nunsafe: %s\nclasses: %s\ncontext: %s\n\n",
			r.SafeResource, r.UnsafeResource, strings.Join(r.Classes, ", "), r.ProcessContext)
	}
}

func runExtra() error {
	fmt.Println("Extra exploits (beyond the paper's Table 4)")
	return printBothWays(attacks.ExtraExploits())
}

func runIPC() error {
	fmt.Println("IPC rendezvous exploits (socket namespaces, beyond the paper's Table 4)")
	return printBothWays(attacks.IPCExploits())
}

// printBothWays runs each exploit with the firewall off and on and prints
// the Table 4-style verdict row.
func printBothWays(exploits []attacks.Exploit) error {
	fmt.Printf("%-3s %-18s %-15s %-26s %-10s %-10s\n",
		"#", "Program", "Reference", "Class", "PF off", "PF on")
	for _, e := range exploits {
		off, err := attacks.RunOne(e, false)
		if err != nil {
			return err
		}
		on, err := attacks.RunOne(e, true)
		if err != nil {
			return err
		}
		verdict := func(o attacks.Outcome) string {
			if o.Succeeded {
				return "EXPLOITED"
			}
			return "blocked"
		}
		fmt.Printf("%-3s %-18s %-15s %-26s %-10s %-10s\n",
			e.ID, e.Program, e.Reference, e.Class, verdict(off), verdict(on))
	}
	return nil
}

func runSingle(id string) error {
	all := append(attacks.Exploits(), attacks.ExtraExploits()...)
	all = append(all, attacks.IPCExploits()...)
	for _, e := range all {
		if !strings.EqualFold(e.ID, id) {
			continue
		}
		for _, pf := range []bool{false, true} {
			o, err := attacks.RunOne(e, pf)
			if err != nil {
				return err
			}
			state := "blocked"
			if o.Succeeded {
				state = "EXPLOITED"
			}
			fmt.Printf("%s (%s, %s) with PF=%v: %s\n", e.ID, e.Program, e.Reference, pf, state)
		}
		return nil
	}
	return fmt.Errorf("unknown exploit %q", id)
}
