// Command sting demonstrates the vulnerability testing workflow the paper
// uses to seed rule generation (Section 6.3.1): identify the attack
// surface of a victim workload, probe each binding with symlink and squat
// attacks, report confirmed vulnerabilities, and emit the pftables rules
// that block them.
//
// The built-in demo victim is a root daemon that consults /tmp/app.conf
// before /etc/java.conf — the untrusted-search-path pattern of exploit E7.
//
// Usage: go run ./cmd/sting
package main

import (
	"fmt"
	"os"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/sting"
)

func demoWorkload() sting.Workload {
	return sting.Workload{
		NewWorld: func() *programs.World {
			cfg := pf.Optimized()
			return programs.NewWorld(programs.WorldOpts{PF: &cfg})
		},
		Run: func(w *programs.World) ([]uint64, error) {
			p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "java_t", Exec: programs.BinJava})
			var used []uint64
			for _, cand := range []string{"/tmp/app.conf", "/etc/java.conf"} {
				if err := p.SyscallSite(programs.BinJava, programs.EntryJavaConf); err != nil {
					return nil, err
				}
				fd, err := p.Open(cand, kernel.O_RDONLY, 0)
				if err != nil {
					continue
				}
				st, _ := p.Fstat(fd)
				p.ReadAll(fd)
				p.Close(fd)
				used = append(used, uint64(st.Ino))
				break
			}
			return used, nil
		},
	}
}

func main() {
	wl := demoWorkload()
	tester := sting.New()

	surfaces, err := tester.FindSurfaces(wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sting:", err)
		os.Exit(1)
	}
	fmt.Printf("phase 1: %d adversary-influenceable bindings\n", len(surfaces))
	for _, s := range surfaces {
		fmt.Printf("  %s (program %s, entrypoint 0x%x, op %s)\n", s.Path, s.Program, s.Entrypoint, s.Op)
	}

	// The victim's first candidate name is absent in the clean world, so
	// the plantable binding is known from the failed lookup.
	surfaces = append(surfaces, sting.Surface{
		Path: "/tmp/app.conf", Program: programs.BinJava,
		Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN",
	})

	var findings []sting.Finding
	for _, s := range surfaces {
		for _, kind := range []sting.ProbeKind{sting.ProbeSymlink, sting.ProbeSquat} {
			f, err := tester.Probe(wl, s, kind)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sting:", err)
				os.Exit(1)
			}
			if f != nil {
				findings = append(findings, *f)
				fmt.Printf("phase 2: CONFIRMED %s attack via %s (planted ino %d)\n",
					kind, s.Path, f.PlantedIno)
			}
		}
	}
	if len(findings) == 0 {
		fmt.Println("phase 2: no vulnerabilities confirmed")
		return
	}

	fmt.Println("generated rules:")
	for _, r := range sting.Rules(findings) {
		fmt.Println(" ", r)
	}
}
