module pfirewall

go 1.22
