// Package fleet keeps a mixed population of simulated daemons —
// Apache workers, mod_php interpreters, sshd session spawners, D-Bus
// daemons with their clients — serving traffic against a worldgen world
// for a configurable duration, under a process-manager discipline:
// supervised start/stop/restart with readiness, per-instance bounded
// logs, a seeded crash/restart schedule (live process churn), plus
// concurrent rule-base mutation and filesystem adversary noise underneath.
// It is the standing stress bed for the mediation stack: throughput and
// latency percentiles come out of it, and so does the "no lost verdicts"
// conservation check (every request the engine saw was either accepted or
// dropped, across all churn).
package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pfverify"
	"pfirewall/internal/policyd"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

// xorshift64 is the repo's deterministic PRNG (one copy per stream so
// streams never interleave).
type xorshift64 struct{ s uint64 }

func (x *xorshift64) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift64) intn(n int) int { return int(x.next() % uint64(n)) }

// Config shapes one fleet run.
type Config struct {
	// Seed drives instance traffic, the churn schedule, and the mutator
	// streams. Same seed + same shape = same plan (see ScheduleHash).
	Seed uint64 `json:"seed"`
	// Instances is the fleet size; kinds rotate apache/sshd/dbus/php.
	Instances int `json:"instances"`
	// Duration is how long instances serve traffic.
	Duration time.Duration `json:"-"`

	// RuleChurn runs the concurrent rule mutator: waves of tagged inert
	// rules installed and removed, with periodic full Flush + reinstall of
	// the world's rule base.
	RuleChurn bool `json:"rule_churn"`
	// ProcChurn executes the seeded crash/restart schedule.
	ProcChurn bool `json:"proc_churn"`
	// AdversaryChurn runs a tenant-user process mutating shared /tmp
	// (create/unlink/symlink flips — dcache invalidation load).
	AdversaryChurn bool `json:"adversary_churn"`

	// ChurnActions sizes the process-churn schedule (default: one slot
	// per instance).
	ChurnActions int `json:"churn_actions"`
	// SampleCap bounds each instance's latency ring (default 8192).
	SampleCap int `json:"sample_cap"`
}

// Fleet is one supervised run against a world.
type Fleet struct {
	W   *worldgen.World
	Cfg Config

	instances []*Instance
	schedule  []ChurnAction

	// ruleEpoch is even when the rule base is quiescent and odd while the
	// mutator is mid-change; instances assert guard verdicts strictly only
	// across stable even windows.
	ruleEpoch     atomic.Uint64
	ruleMutations atomic.Uint64
	policyVetoes  atomic.Uint64 // gate vetoes the mutator overrode
	verifyVetoes  atomic.Uint64 // pfverify refinement-gate rejections
	advOps        atomic.Uint64
	dropsSend     atomic.Uint64 // schedule actions dropped on full queues

	stopCh  chan struct{}
	helpers sync.WaitGroup
	t0      time.Time
	started bool
	elapsed time.Duration
}

// New plans a fleet over a built world. The world must carry an attached
// PF engine when RuleChurn is set.
func New(w *worldgen.World, cfg Config) *Fleet {
	if cfg.Instances < 1 {
		cfg.Instances = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 8192
	}
	if cfg.ChurnActions <= 0 {
		cfg.ChurnActions = cfg.Instances
	}
	fl := &Fleet{W: w, Cfg: cfg, stopCh: make(chan struct{})}
	for i := 0; i < cfg.Instances; i++ {
		fl.instances = append(fl.instances, newInstance(fl, i))
	}
	if cfg.ProcChurn {
		fl.schedule = BuildSchedule(cfg.Seed, cfg.Instances, cfg.ChurnActions)
	}
	return fl
}

// Instances lists the fleet's members.
func (fl *Fleet) Instances() []*Instance { return fl.instances }

// Instance returns the named member.
func (fl *Fleet) Instance(name string) *Instance {
	for _, in := range fl.instances {
		if in.name == name {
			return in
		}
	}
	return nil
}

// epochStable runs f and reports whether the rule base was quiescent for
// its whole extent (epoch even and unchanged).
func (fl *Fleet) epochStable(f func()) bool {
	e0 := fl.ruleEpoch.Load()
	f()
	return fl.ruleEpoch.Load() == e0 && e0&1 == 0
}

// Start launches the instance goroutines and the churn helpers. The run
// ends at the configured duration; Wait collects it.
func (fl *Fleet) Start() {
	if fl.started {
		panic("fleet: Start called twice")
	}
	fl.started = true
	fl.t0 = time.Now()
	deadline := fl.t0.Add(fl.Cfg.Duration)
	for _, in := range fl.instances {
		go in.run(deadline)
	}
	if fl.Cfg.ProcChurn {
		fl.helpers.Add(1)
		go fl.supervise()
	}
	if fl.Cfg.RuleChurn && fl.W.Engine != nil {
		fl.helpers.Add(1)
		go fl.ruleChurn()
	}
	if fl.Cfg.AdversaryChurn {
		fl.helpers.Add(1)
		go fl.adversary()
	}
}

// Await blocks until the named instance reaches state (or timeout).
func (fl *Fleet) Await(name string, s State, timeout time.Duration) bool {
	in := fl.Instance(name)
	if in == nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		if in.State() == s {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stop asks the named instance to stop gracefully.
func (fl *Fleet) Stop(name string) bool {
	in := fl.Instance(name)
	return in != nil && in.send(cmdStop)
}

// Restart asks the named instance to recycle (or revive, if crashed).
func (fl *Fleet) Restart(name string) bool {
	in := fl.Instance(name)
	return in != nil && in.send(cmdRestart)
}

// Crash kills the named instance's processes abruptly.
func (fl *Fleet) Crash(name string) bool {
	in := fl.Instance(name)
	return in != nil && in.send(cmdCrash)
}

// Wait blocks until every instance stopped (at the deadline or earlier),
// shuts the churn helpers down, and assembles the report.
func (fl *Fleet) Wait() Report {
	for _, in := range fl.instances {
		<-in.done
	}
	fl.elapsed = time.Since(fl.t0)
	close(fl.stopCh)
	fl.helpers.Wait()
	return fl.report()
}

// Run is Start + Wait.
func (fl *Fleet) Run() Report {
	fl.Start()
	return fl.Wait()
}

// supervise executes the precomputed churn schedule against the clock.
func (fl *Fleet) supervise() {
	defer fl.helpers.Done()
	for _, a := range fl.schedule {
		at := fl.t0.Add(time.Duration(a.At * float64(fl.Cfg.Duration)))
		wait := time.Until(at)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-fl.stopCh:
				t.Stop()
				return
			case <-t.C:
			}
		}
		in := fl.instances[a.Instance]
		var ok bool
		switch a.Verb {
		case VerbCrash:
			ok = in.send(cmdCrash)
		case VerbRestart:
			ok = in.send(cmdRestart)
		}
		if !ok {
			fl.dropsSend.Add(1)
		}
	}
}

// churnTag marks mutator-installed rules so removal can match exactly the
// rules this goroutine owns, via each rule's recorded source position.
const churnTag = "<fleet-churn>"

// churnWave is how many tagged rules one install wave adds.
const churnWave = 16

// policySocket is the fleet's control-plane rendezvous: the churn mutator
// streams every rule-base change through a policyd daemon instead of
// touching the engine directly, so the stress bed exercises the same
// gated, transactional update path operators use.
const policySocket = "pfpolicy-fleet"

// ruleChurn is the concurrent rule mutator, rerouted through the policy
// control plane: install a wave of tagged rules as one gated apply, drain
// them by tag (or roll the whole wave back) as another, and every few
// cycles stream a full reload — -F plus the complete base as ONE
// transaction, so traffic races an atomic pointer flip instead of the
// empty-ruleset window a bare Flush+reinstall would expose. The epoch is
// odd for the full extent of every mutation.
func (fl *Fleet) ruleChurn() {
	defer fl.helpers.Done()
	eng := fl.W.Engine
	base := worldgen.Rules(fl.W.Spec)
	srv, err := policyd.Serve(fl.W.K, fl.W.Env, eng, policySocket, nil)
	if err != nil {
		panic(fmt.Sprintf("fleet: policyd serve: %v", err))
	}
	// Arm the symbolic refinement gate with the world's tenant invariants:
	// every churn batch must keep proving tenant non-interference, so a
	// mutation that weakened a guard would be vetoed pre-publish.
	invs, perr := pfverify.ParseInvariants("<worldgen>", worldgen.Invariants())
	if perr != nil {
		panic(fmt.Sprintf("fleet: worldgen invariants: %v", perr))
	}
	srv.SetInvariants(invs)
	defer func() {
		fl.verifyVetoes.Store(srv.VerifyVetoes())
		srv.Close()
	}()
	cl, err := policyd.Dial(fl.W.K, policySocket)
	if err != nil {
		panic(fmt.Sprintf("fleet: policyd dial: %v", err))
	}
	defer cl.Close()
	apply := func(src string, lines []string, noCheck bool) policyd.Response {
		resp, err := cl.Do(policyd.Request{Op: "apply", Src: src, Lines: lines, NoCheck: noCheck}, 0)
		if err != nil {
			panic(fmt.Sprintf("fleet: policy apply: %v", err))
		}
		return resp
	}
	rng := xorshift64{s: fl.Cfg.Seed ^ 0xda3e39cb94b95bdb | 1}
	cycle := 0
	for {
		select {
		case <-fl.stopCh:
			return
		default:
		}
		fl.ruleEpoch.Add(1) // odd: mutation window opens
		if cycle%8 == 7 {
			// Full policy reload under fire, as one atomic hitless batch.
			resp := apply("worldgen.pft", append([]string{"pftables -F"}, base...), false)
			if !resp.OK {
				panic(fmt.Sprintf("fleet: reload rejected: %s %v", resp.Err, resp.Findings))
			}
		} else {
			// Wave of tagged inert rules (a dead entrypoint of an unrelated
			// binary, so live traffic verdicts are unaffected), one batch.
			before := eng.RuleCount()
			lines := make([]string, 0, churnWave)
			for i := 0; i < churnWave; i++ {
				lines = append(lines, fmt.Sprintf("pftables -p %s -i 0x%x -d {tmp_t} -o FILE_UNLINK -j DROP",
					programs.BinBash, 0xdead00+rng.intn(256)))
			}
			resp := apply(churnTag, lines, false)
			if !resp.OK {
				// A scaled base can legitimately shadow an inert wave rule,
				// which the gate vetoes; override like an operator would,
				// and count the veto.
				fl.policyVetoes.Add(1)
				if resp = apply(churnTag, lines, true); !resp.OK {
					panic(fmt.Sprintf("fleet: churn install: %s", resp.Err))
				}
			}
			if resp.Rules != before+churnWave {
				panic(fmt.Sprintf("fleet: churn wave landed %d rules, want %d", resp.Rules-before, churnWave))
			}
			if cycle%5 == 4 {
				// Occasionally revert the wave by version instead of by tag.
				rb, err := cl.Rollback(0)
				if err != nil || !rb.OK {
					panic(fmt.Sprintf("fleet: churn rollback: %v %s", err, rb.Err))
				}
				resp = rb
			} else {
				resp = apply("churn-drain.pft",
					[]string{fmt.Sprintf("pftables -D input --tag %s", churnTag)}, false)
				if !resp.OK {
					panic(fmt.Sprintf("fleet: churn drain: %s", resp.Err))
				}
			}
			if resp.Rules != before {
				panic(fmt.Sprintf("fleet: churn left %d rules, want %d", resp.Rules, before))
			}
		}
		fl.ruleEpoch.Add(1) // even: quiescent again
		fl.ruleMutations.Add(1)
		cycle++
		// Pace mutations so traffic sees long stable windows between them.
		t := time.NewTimer(2 * time.Millisecond)
		select {
		case <-fl.stopCh:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// adversary is the filesystem noise generator: a tenant user process
// creating, unlinking, and re-pointing symlinks in shared /tmp — every
// mutation bumps the directory's dentry generation, so concurrent
// path walks constantly revalidate against a moving namespace.
func (fl *Fleet) adversary() {
	defer fl.helpers.Done()
	rng := xorshift64{s: fl.Cfg.Seed ^ 0x94d049bb133111eb | 1}
	spec := fl.W.Spec
	adv := fl.W.NewTenantUser(rng.intn(maxInt(spec.Tenants, 1)), 0)
	defer adv.Exit(0)
	slot := 0
	for {
		select {
		case <-fl.stopCh:
			return
		default:
		}
		name := fmt.Sprintf("/tmp/churn-%d", slot%8)
		switch rng.intn(3) {
		case 0:
			if fd, err := adv.Open(name, kernel.O_WRONLY|kernel.O_CREAT, 0o644); err == nil {
				adv.Close(fd)
			}
		case 1:
			adv.Unlink(name)
		default:
			// Flip: point the lure somewhere else (classic TOCTTOU bait).
			adv.Unlink(name)
			target := "/etc/passwd"
			if rng.intn(2) == 0 {
				target = worldgen.HomeFilePath(rng.intn(maxInt(spec.Tenants, 1)), 0, 0)
			}
			adv.Symlink(target, name)
		}
		fl.advOps.Add(1)
		slot++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
