// instance.go is the per-instance supervisor loop. Every instance runs
// exactly one goroutine, and that goroutine owns every kernel.Proc the
// instance spawns — the kernel's mediation scratch is single-flow per
// process, so procs never migrate across goroutines. The supervisor talks
// to instances only through the command channel and the atomic state word.
package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

// Kind selects an instance's persona.
type Kind string

const (
	KindApache Kind = "apache"
	KindPHP    Kind = "php"
	KindSshd   Kind = "sshd"
	KindDbus   Kind = "dbus"
)

// kindRotation assigns kinds to instance indices round-robin.
var kindRotation = []Kind{KindApache, KindSshd, KindDbus, KindPHP}

// State is an instance's lifecycle state, readable lock-free.
type State int32

const (
	StateNew State = iota
	StateStarting
	StateReady
	StateStopping
	StateStopped
	StateCrashed
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateStopping:
		return "stopping"
	case StateStopped:
		return "stopped"
	case StateCrashed:
		return "crashed"
	}
	return "?"
}

// command is a supervisor → instance intervention.
type command int

const (
	cmdStop command = iota
	cmdCrash
	cmdRestart
)

// instStats is owned by the instance goroutine; read only after done.
type instStats struct {
	ops      int64
	restarts int64
	crashes  int64

	expectedDenies   int64
	unexpectedAllows int64
	unexpectedErrors int64

	samples []int64 // per-op latency ring, ns
	nextSam int
	wrapped bool
}

// Instance is one supervised daemon (plus its clients) in the fleet.
type Instance struct {
	fl   *Fleet
	name string
	kind Kind
	idx  int
	seed uint64

	rng   xorshift64
	state atomic.Int32
	cmds  chan command
	done  chan struct{}

	incarnation int // bumped per (re)start; keys per-incarnation names

	stats instStats

	// events is a bounded ring of lifecycle/log lines.
	events    [64]string
	eventN    int
	eventSeen int
}

func newInstance(fl *Fleet, idx int) *Instance {
	kind := kindRotation[idx%len(kindRotation)]
	seed := fl.Cfg.Seed*0x9e3779b97f4a7c15 + uint64(idx)*0xbf58476d1ce4e5b9
	in := &Instance{
		fl:   fl,
		name: fmt.Sprintf("%s-%02d", kind, idx),
		kind: kind,
		idx:  idx,
		seed: seed,
		rng:  xorshift64{s: seed | 1},
		cmds: make(chan command, 8),
		done: make(chan struct{}),
	}
	in.stats.samples = make([]int64, 0, fl.Cfg.SampleCap)
	return in
}

// Name returns the instance's stable name (kind-index).
func (in *Instance) Name() string { return in.name }

// Kind returns the instance's persona.
func (in *Instance) Kind() Kind { return in.kind }

// State returns the current lifecycle state, lock-free.
func (in *Instance) State() State { return State(in.state.Load()) }

func (in *Instance) setState(s State) { in.state.Store(int32(s)) }

// send delivers a command without blocking; a full queue drops the
// command (the supervisor retries crashed instances via the schedule).
func (in *Instance) send(c command) bool {
	select {
	case in.cmds <- c:
		return true
	default:
		return false
	}
}

// event appends a line to the bounded per-instance log.
func (in *Instance) event(format string, args ...any) {
	in.events[in.eventN%len(in.events)] = fmt.Sprintf("[%s] ", in.name) + fmt.Sprintf(format, args...)
	in.eventN++
	in.eventSeen++
}

// Events returns the retained log lines, oldest first. Call only when the
// instance is stopped (the ring is goroutine-local while running).
func (in *Instance) Events() []string {
	n := in.eventN
	if n > len(in.events) {
		n = len(in.events)
	}
	out := make([]string, 0, n)
	start := in.eventN - n
	for i := start; i < in.eventN; i++ {
		out = append(out, in.events[i%len(in.events)])
	}
	return out
}

// recordLatency stores one op latency in the bounded ring.
func (in *Instance) recordLatency(ns int64) {
	st := &in.stats
	if len(st.samples) < cap(st.samples) {
		st.samples = append(st.samples, ns)
		return
	}
	st.samples[st.nextSam] = ns
	st.nextSam = (st.nextSam + 1) % len(st.samples)
	st.wrapped = true
}

// session is one incarnation's live processes and traffic driver.
type session interface {
	// op performs one traffic operation. Errors are unexpected: every
	// driver routes expected denials through Instance.expectDeny.
	op() error
	// teardown exits the session's processes (graceful or after crash).
	teardown()
}

// run is the instance goroutine: a supervised start/serve/recover loop
// until deadline or cmdStop.
func (in *Instance) run(deadline time.Time) {
	defer close(in.done)
	for {
		in.setState(StateStarting)
		sess, err := in.start()
		if err != nil {
			in.event("start failed: %v", err)
			in.stats.unexpectedErrors++
			in.setState(StateCrashed)
			if !in.awaitRestart(deadline) {
				in.setState(StateStopped)
				return
			}
			in.stats.restarts++
			continue
		}
		in.event("ready (incarnation %d)", in.incarnation)
		in.setState(StateReady)

		switch in.serve(sess, deadline) {
		case cmdStop:
			in.setState(StateStopping)
			sess.teardown()
			in.event("stopped after %d ops", in.stats.ops)
			in.setState(StateStopped)
			return
		case cmdCrash:
			sess.teardown() // abrupt: processes exit without drain
			in.stats.crashes++
			in.event("crashed")
			in.setState(StateCrashed)
			if !in.awaitRestart(deadline) {
				in.setState(StateStopped)
				return
			}
			in.stats.restarts++
		case cmdRestart:
			in.setState(StateStopping)
			sess.teardown()
			in.stats.restarts++
			in.event("recycling")
		}
	}
}

// serve drives traffic until a command or the deadline; the deadline
// reads as a stop.
func (in *Instance) serve(sess session, deadline time.Time) command {
	for {
		select {
		case c := <-in.cmds:
			return c
		default:
		}
		if !time.Now().Before(deadline) {
			return cmdStop
		}
		t0 := time.Now()
		var err error
		stable := in.fl.epochStable(func() { err = sess.op() })
		in.recordLatency(time.Since(t0).Nanoseconds())
		in.stats.ops++
		if err != nil && stable {
			in.stats.unexpectedErrors++
			in.event("op error: %v", err)
		}
	}
}

// awaitRestart blocks in StateCrashed until a restart (true) or stop /
// deadline (false).
func (in *Instance) awaitRestart(deadline time.Time) bool {
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		t := time.NewTimer(wait)
		select {
		case c := <-in.cmds:
			t.Stop()
			switch c {
			case cmdRestart:
				return true
			case cmdStop:
				return false
			}
			// A crash while crashed is a no-op; keep waiting.
		case <-t.C:
			return false
		}
	}
}

// start builds the session for the instance's kind.
func (in *Instance) start() (session, error) {
	in.incarnation++
	switch in.kind {
	case KindApache:
		return in.startApache()
	case KindPHP:
		return in.startPHP()
	case KindSshd:
		return in.startSshd()
	case KindDbus:
		return in.startDbus()
	}
	return nil, fmt.Errorf("fleet: unknown kind %q", in.kind)
}

// expectDeny runs a probe whose correct outcome is a PF denial. The
// verdict is asserted strictly only when the rule epoch is even (no
// mutation in flight) and unchanged across the probe — during rule churn
// windows (install/remove/flush-reinstall) the guard may legitimately be
// absent, and the probe only counts.
func (in *Instance) expectDeny(probe func() error) {
	var err error
	stable := in.fl.epochStable(func() { err = probe() })
	switch {
	case errors.Is(err, kernel.ErrPFDenied):
		in.stats.expectedDenies++
	case err == nil:
		if stable {
			in.stats.unexpectedAllows++
			in.event("guard probe was allowed")
		}
	default:
		if stable {
			in.stats.unexpectedErrors++
			in.event("guard probe failed oddly: %v", err)
		}
	}
}

// tenantURL turns a worldgen absolute path into a URL path under the
// fleet's Apache DocumentRoot (the tenant root).
func tenantURL(path string) string {
	return strings.TrimPrefix(path, worldgen.TenantRoot)
}

// ---- apache ----

type apacheSession struct {
	in    *Instance
	ap    *programs.Apache
	httpd *kernel.Proc
}

func (in *Instance) startApache() (session, error) {
	ap := programs.NewApache(in.fl.W.World)
	ap.DocRoot = worldgen.TenantRoot
	s := &apacheSession{in: in, ap: ap, httpd: ap.Spawn()}
	// Readiness: the instance is Ready only once it actually serves.
	if _, err := ap.Serve(s.httpd, tenantURL(worldgen.WebFilePath(0, 0, 0))); err != nil {
		s.teardown()
		return nil, err
	}
	return s, nil
}

func (s *apacheSession) op() error {
	in := s.in
	spec := in.fl.W.Spec
	t := in.rng.intn(spec.Tenants)
	u := in.rng.intn(spec.UsersPerTenant)
	switch in.rng.intn(16) {
	case 0:
		// Authentication entrypoint: /etc/shadow is legitimate here.
		_, err := s.ap.Authenticate(s.httpd, "root")
		return err
	case 1:
		// Guard probe: serving tenant home content is admitted by DAC and
		// MAC but must die on the per-tenant PF guard.
		home := tenantURL(worldgen.HomeFilePath(t, u, in.rng.intn(spec.HomeFilesPerUser+1)))
		in.expectDeny(func() error {
			_, err := s.ap.Serve(s.httpd, home)
			return err
		})
		return nil
	case 2:
		// Deep-path page on the nearest deep user.
		if spec.DeepEvery > 0 && spec.WebDepth > 0 {
			u -= u % spec.DeepEvery
			_, err := s.ap.Serve(s.httpd, tenantURL(spec.DeepFilePath(t, u)))
			return err
		}
		fallthrough
	case 3:
		// Owner-matched symlink hop through current -> public_html.
		_, err := s.ap.Serve(s.httpd, fmt.Sprintf("/t%02d/u%04d/current/index.html", t, u))
		return err
	default:
		_, err := s.ap.Serve(s.httpd, tenantURL(worldgen.WebFilePath(t, u, in.rng.intn(spec.WebFilesPerUser+1))))
		return err
	}
}

func (s *apacheSession) teardown() { s.httpd.Exit(0) }

// ---- php ----

type phpSession struct {
	in  *Instance
	php *programs.PHP
	p   *kernel.Proc
}

func (in *Instance) startPHP() (session, error) {
	php := programs.NewPHP(in.fl.W.World)
	s := &phpSession{in: in, php: php, p: php.Spawn()}
	if err := s.p.InterpPush("/var/www/scripts/index.php", 1); err != nil {
		s.teardown()
		return nil, err
	}
	if _, err := php.Include(s.p, "/var/www/scripts/gcalendar.php"); err != nil {
		s.teardown()
		return nil, err
	}
	return s, nil
}

func (s *phpSession) op() error {
	in := s.in
	switch in.rng.intn(8) {
	case 0:
		// Inclusion probe: rule R4 confines the include entrypoint to
		// properly labeled script content; a tenant web file must be
		// dropped there even though MAC lets httpd_t read it.
		spec := in.fl.W.Spec
		t := in.rng.intn(spec.Tenants)
		u := in.rng.intn(spec.UsersPerTenant)
		in.expectDeny(func() error {
			_, err := s.php.Include(s.p, worldgen.WebFilePath(t, u, 0))
			return err
		})
		return nil
	case 1:
		_, err := s.php.Include(s.p, "/var/www/scripts/index.php")
		return err
	default:
		_, err := s.php.Include(s.p, "/var/www/scripts/gcalendar.php")
		return err
	}
}

func (s *phpSession) teardown() { s.p.Exit(0) }

// ---- sshd ----

type sshdSession struct {
	in   *Instance
	sshd *kernel.Proc
}

func (in *Instance) startSshd() (session, error) {
	daemon := programs.NewSshd(in.fl.W.World)
	p := daemon.Spawn()
	for f := 0; f < 8; f++ {
		if err := p.PushFrame(programs.BinSshd, uint64(0x100+f*0x10)); err != nil {
			p.Exit(1)
			return nil, err
		}
	}
	s := &sshdSession{in: in, sshd: p}
	if err := s.op(); err != nil { // readiness: one full session
		s.teardown()
		return nil, err
	}
	return s, nil
}

// op is one login session: fork, exec a shell, touch the password
// database, exit — the fleet's built-in process churn, one short-lived
// process per operation.
func (s *sshdSession) op() error {
	if err := s.sshd.SyscallSite(programs.BinSshd, 0x300); err != nil {
		return err
	}
	child, err := s.sshd.Fork()
	if err != nil {
		return err
	}
	if err := child.Execve(programs.BinSh, map[string]string{"SHELL": programs.BinSh}); err != nil {
		child.Exit(127)
		return err
	}
	if err := child.SyscallSite(programs.BinSh, 0x500); err != nil {
		child.Exit(1)
		return err
	}
	fd, err := child.Open("/etc/passwd", kernel.O_RDONLY, 0)
	if err != nil {
		child.Exit(1)
		return err
	}
	child.Close(fd)
	child.Exit(0)
	return nil
}

func (s *sshdSession) teardown() { s.sshd.Exit(0) }

// ---- dbus ----

type dbusSession struct {
	in     *Instance
	daemon *programs.DbusDaemon
	dproc  *kernel.Proc
	lib    *programs.LibDbus
	cproc  *kernel.Proc
}

func (in *Instance) startDbus() (session, error) {
	w := in.fl.W.World
	d := programs.NewDbusDaemon(w)
	// Per-incarnation socket path: daemon death leaves a dangling socket
	// inode behind (squattable, connection-refused), exactly like an
	// unlinked-on-crash real bus; the revived daemon binds a fresh name.
	d.SocketPath = fmt.Sprintf("/var/run/dbus/bus-%02d-%d", in.idx, in.incarnation)
	dproc := d.Spawn()
	if err := d.Start(dproc); err != nil {
		dproc.Exit(1)
		return nil, err
	}
	cproc := w.NewProc(kernel.ProcSpec{
		UID: 0, GID: 0, Label: "init_t", Exec: programs.BinSh,
		Env: map[string]string{"DBUS_SYSTEM_BUS_ADDRESS": d.SocketPath},
	})
	s := &dbusSession{in: in, daemon: d, dproc: dproc, lib: programs.NewLibDbus(w), cproc: cproc}
	if err := s.op(); err != nil { // readiness: one round trip
		s.teardown()
		return nil, err
	}
	return s, nil
}

var dbusCall = []byte("METHOD_CALL org.freedesktop.DBus.Hello\n")
var dbusReply = []byte("METHOD_RETURN :1.42\n")

// op is one bus round trip over the mediated data plane: connect, accept,
// method call, reply, close.
func (s *dbusSession) op() error {
	cfd, err := s.lib.Connect(s.cproc)
	if err != nil {
		return err
	}
	defer s.cproc.Close(cfd)
	afd, err := s.daemon.AcceptOne(s.dproc)
	if err != nil {
		return err
	}
	defer s.dproc.Close(afd)
	if _, err := s.cproc.Send(cfd, dbusCall); err != nil {
		return err
	}
	if _, err := s.dproc.Recv(afd, 0); err != nil {
		return err
	}
	if _, err := s.dproc.Send(afd, dbusReply); err != nil {
		return err
	}
	if _, err := s.cproc.Recv(cfd, 0); err != nil {
		return err
	}
	return nil
}

func (s *dbusSession) teardown() {
	s.cproc.Exit(0)
	s.dproc.Exit(0)
}
