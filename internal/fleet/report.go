// report.go assembles the end-of-run report: throughput, latency
// percentiles from the per-instance sample rings, churn accounting, and
// the verdict-conservation check.
package fleet

import (
	"fmt"
	"sort"
)

// KindStats aggregates one persona's instances.
type KindStats struct {
	Kind     string `json:"kind"`
	Count    int    `json:"count"`
	Ops      int64  `json:"ops"`
	Restarts int64  `json:"restarts"`
	Crashes  int64  `json:"crashes"`
}

// Report is one fleet run's outcome.
type Report struct {
	World     string  `json:"world"`
	Seed      uint64  `json:"seed"`
	Instances int     `json:"instances"`
	Seconds   float64 `json:"seconds"`

	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns"`
	P999Ns    float64 `json:"p999_ns"`

	Restarts      int64  `json:"restarts"`
	Crashes       int64  `json:"crashes"`
	RuleMutations uint64 `json:"rule_mutations"`
	AdversaryOps  uint64 `json:"adversary_ops"`

	// Policy control plane accounting (zeros when RuleChurn is off or no
	// engine is attached): how the churn's streamed updates published.
	PolicyPublishes     uint64 `json:"policy_publishes"`
	PolicyDeltaCompiles uint64 `json:"policy_delta_compiles"`
	PolicyFullCompiles  uint64 `json:"policy_full_compiles"`
	PolicyRollbacks     uint64 `json:"policy_rollbacks"`
	PolicyVetoes        uint64 `json:"policy_vetoes"`
	// VerifyVetoes counts applies the pfverify refinement gate rejected
	// because the batch would have weakened a held invariant.
	VerifyVetoes uint64 `json:"verify_vetoes"`

	ExpectedDenies   int64 `json:"expected_denies"`
	UnexpectedAllows int64 `json:"unexpected_allows"`
	UnexpectedErrors int64 `json:"unexpected_errors"`

	// Verdict conservation: every request the engine received resolved to
	// exactly one verdict, across all rule/process churn. Zeros when no
	// engine is attached.
	Requests          uint64 `json:"requests"`
	Accepts           uint64 `json:"accepts"`
	Drops             uint64 `json:"drops"`
	VerdictsConserved bool   `json:"verdicts_conserved"`

	Kinds []KindStats `json:"kinds"`
}

// percentile reads the q-quantile from sorted samples (nearest-rank).
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i])
}

// report collects the run; callers hold no instance goroutines (Wait has
// joined them all).
func (fl *Fleet) report() Report {
	rep := Report{
		World:         fl.W.Spec.Name,
		Seed:          fl.Cfg.Seed,
		Instances:     fl.Cfg.Instances,
		Seconds:       fl.elapsed.Seconds(),
		RuleMutations: fl.ruleMutations.Load(),
		AdversaryOps:  fl.advOps.Load(),
	}
	var all []int64
	byKind := map[Kind]*KindStats{}
	for _, in := range fl.instances {
		st := &in.stats
		rep.Ops += st.ops
		rep.Restarts += st.restarts
		rep.Crashes += st.crashes
		rep.ExpectedDenies += st.expectedDenies
		rep.UnexpectedAllows += st.unexpectedAllows
		rep.UnexpectedErrors += st.unexpectedErrors
		all = append(all, st.samples...)
		ks := byKind[in.kind]
		if ks == nil {
			ks = &KindStats{Kind: string(in.kind)}
			byKind[in.kind] = ks
		}
		ks.Count++
		ks.Ops += st.ops
		ks.Restarts += st.restarts
		ks.Crashes += st.crashes
	}
	if rep.Seconds > 0 {
		rep.OpsPerSec = float64(rep.Ops) / rep.Seconds
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50Ns = percentile(all, 0.50)
	rep.P99Ns = percentile(all, 0.99)
	rep.P999Ns = percentile(all, 0.999)
	for _, k := range kindRotation {
		if ks := byKind[k]; ks != nil {
			rep.Kinds = append(rep.Kinds, *ks)
		}
	}
	if eng := fl.W.Engine; eng != nil {
		rep.Requests = eng.Stats.Requests.Load()
		rep.Accepts = eng.Stats.Accepts.Load()
		rep.Drops = eng.Stats.Drops.Load()
		rep.VerdictsConserved = rep.Requests == rep.Accepts+rep.Drops
		ps := eng.PublishStats()
		rep.PolicyPublishes = ps.Publishes
		rep.PolicyDeltaCompiles = ps.DeltaCompiles
		rep.PolicyFullCompiles = ps.FullCompiles
		rep.PolicyRollbacks = ps.Rollbacks
		rep.PolicyVetoes = fl.policyVetoes.Load()
		rep.VerifyVetoes = fl.verifyVetoes.Load()
	}
	return rep
}

// Format renders the report as a compact text block for pfctl.
func Format(rep Report) string {
	out := fmt.Sprintf("fleet: world=%s instances=%d seed=%d ran %.2fs\n",
		rep.World, rep.Instances, rep.Seed, rep.Seconds)
	out += fmt.Sprintf("  traffic: %d ops (%.0f ops/sec)  latency p50=%.0fns p99=%.0fns p99.9=%.0fns\n",
		rep.Ops, rep.OpsPerSec, rep.P50Ns, rep.P99Ns, rep.P999Ns)
	out += fmt.Sprintf("  churn:   %d crashes, %d restarts, %d rule mutations, %d adversary ops\n",
		rep.Crashes, rep.Restarts, rep.RuleMutations, rep.AdversaryOps)
	if rep.PolicyPublishes > 0 {
		out += fmt.Sprintf("  policy:  %d publishes (%d incremental, %d full), %d rollbacks, %d vetoes overridden, %d invariant vetoes\n",
			rep.PolicyPublishes, rep.PolicyDeltaCompiles, rep.PolicyFullCompiles,
			rep.PolicyRollbacks, rep.PolicyVetoes, rep.VerifyVetoes)
	}
	out += fmt.Sprintf("  guards:  %d expected denies, %d unexpected allows, %d unexpected errors\n",
		rep.ExpectedDenies, rep.UnexpectedAllows, rep.UnexpectedErrors)
	out += fmt.Sprintf("  engine:  %d requests = %d accepts + %d drops (conserved=%v)\n",
		rep.Requests, rep.Accepts, rep.Drops, rep.VerdictsConserved)
	for _, k := range rep.Kinds {
		out += fmt.Sprintf("  %-7s x%d: %d ops, %d crashes, %d restarts\n",
			k.Kind, k.Count, k.Ops, k.Crashes, k.Restarts)
	}
	return out
}
