// schedule.go precomputes the fleet's process-churn timeline. All churn —
// which instance crashes, when, and when it is revived — is derived from
// the seed before the fleet starts, so two runs with the same seed and
// fleet shape execute identical schedules (the determinism satellite's
// golden test hashes this). Only the interleaving with traffic is left to
// the scheduler, as it is on a real machine.
package fleet

import (
	"fmt"
	"hash/fnv"
)

// ChurnVerb is one lifecycle intervention.
type ChurnVerb string

const (
	// VerbCrash kills the instance's processes abruptly (no graceful
	// teardown), leaving it in StateCrashed until a restart arrives.
	VerbCrash ChurnVerb = "crash"
	// VerbRestart revives a crashed instance or gracefully recycles a
	// running one: old processes exit, fresh ones spawn and re-ready.
	VerbRestart ChurnVerb = "restart"
)

// ChurnAction schedules one intervention at a fraction of the run.
type ChurnAction struct {
	At       float64   `json:"at"` // fraction of the configured duration, [0,1)
	Instance int       `json:"instance"`
	Verb     ChurnVerb `json:"verb"`
}

// BuildSchedule derives the churn timeline: count crash/restart pairs
// spread over the middle of the run, each crash revived shortly after, on
// instances picked by the seeded PRNG. Sorted by At (construction order
// already is).
func BuildSchedule(seed uint64, instances, count int) []ChurnAction {
	if instances < 1 || count < 1 {
		return nil
	}
	rng := xorshift64{s: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d | 1}
	var sched []ChurnAction
	for i := 0; i < count; i++ {
		// Spread pairs across [0.10, 0.80) so every crash's restart lands
		// well before the deadline.
		base := 0.10 + 0.70*float64(i)/float64(count)
		inst := rng.intn(instances)
		if rng.intn(4) == 0 {
			// A quarter of the slots are graceful recycles.
			sched = append(sched, ChurnAction{At: base, Instance: inst, Verb: VerbRestart})
			continue
		}
		sched = append(sched, ChurnAction{At: base, Instance: inst, Verb: VerbCrash})
		sched = append(sched, ChurnAction{At: base + 0.05, Instance: inst, Verb: VerbRestart})
	}
	return sched
}

// ScheduleHash fingerprints a fleet's full deterministic plan: the kind
// assignment, each instance's traffic seed, and the churn timeline. Equal
// seeds and shapes must hash equal.
func (fl *Fleet) ScheduleHash() uint64 {
	h := fnv.New64a()
	for _, in := range fl.instances {
		fmt.Fprintf(h, "%s %s %x\n", in.name, in.kind, in.seed)
	}
	for _, a := range fl.schedule {
		fmt.Fprintf(h, "%.4f %d %s\n", a.At, a.Instance, a.Verb)
	}
	return h.Sum64()
}
