package fleet

import (
	"testing"
	"time"

	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

func testWorld(t *testing.T) *worldgen.World {
	t.Helper()
	cfg := pf.Optimized()
	return worldgen.Build(worldgen.Tiny, programs.WorldOpts{PF: &cfg, MACEnforcing: true})
}

// TestScheduleDeterminism is the fleet half of the determinism satellite:
// same seed and shape → identical plans; different seed → different plan.
func TestScheduleDeterminism(t *testing.T) {
	w := testWorld(t)
	cfg := Config{Seed: 7, Instances: 6, Duration: time.Second, ProcChurn: true}
	a, b := New(w, cfg), New(w, cfg)
	if ha, hb := a.ScheduleHash(), b.ScheduleHash(); ha != hb {
		t.Fatalf("same config, different schedules: %x vs %x", ha, hb)
	}
	cfg.Seed = 8
	c := New(w, cfg)
	if a.ScheduleHash() == c.ScheduleHash() {
		t.Fatalf("different seeds produced identical schedules")
	}
	if len(a.schedule) == 0 {
		t.Fatalf("ProcChurn planned an empty schedule")
	}
}

// TestFleetServes runs a short full-featured fleet and checks the basic
// outcome shape: every kind served traffic, guards denied, verdicts were
// conserved, and all instances ended stopped.
func TestFleetServes(t *testing.T) {
	w := testWorld(t)
	fl := New(w, Config{
		Seed: 42, Instances: 4, Duration: 400 * time.Millisecond,
		RuleChurn: true, ProcChurn: true, AdversaryChurn: true,
	})
	rep := fl.Run()

	if len(rep.Kinds) != 4 {
		t.Fatalf("expected all 4 kinds active, got %+v", rep.Kinds)
	}
	for _, k := range rep.Kinds {
		if k.Ops == 0 {
			t.Errorf("kind %s served no traffic", k.Kind)
		}
	}
	if rep.ExpectedDenies == 0 {
		t.Errorf("no guard probes were denied")
	}
	if rep.UnexpectedAllows != 0 {
		t.Errorf("%d guard probes allowed in stable windows", rep.UnexpectedAllows)
	}
	if rep.UnexpectedErrors != 0 {
		t.Errorf("%d unexpected traffic errors", rep.UnexpectedErrors)
		for _, in := range fl.Instances() {
			for _, e := range in.Events() {
				t.Log(e)
			}
		}
	}
	if rep.RuleMutations == 0 {
		t.Errorf("rule mutator never ran")
	}
	if rep.PolicyPublishes == 0 {
		t.Errorf("rule churn published nothing through the control plane")
	}
	if rep.PolicyDeltaCompiles == 0 {
		t.Errorf("no churn publish took the incremental compile path")
	}
	if rep.AdversaryOps == 0 {
		t.Errorf("adversary never ran")
	}
	if !rep.VerdictsConserved {
		t.Errorf("verdicts not conserved: %d requests vs %d accepts + %d drops",
			rep.Requests, rep.Accepts, rep.Drops)
	}
	for _, in := range fl.Instances() {
		if in.State() != StateStopped {
			t.Errorf("%s ended in state %s", in.Name(), in.State())
		}
	}
}

// TestLifecycleCommands exercises the supervisor verbs directly: crash an
// instance, await the crashed state, revive it, await readiness, stop it.
func TestLifecycleCommands(t *testing.T) {
	w := testWorld(t)
	fl := New(w, Config{Seed: 3, Instances: 2, Duration: 5 * time.Second})
	fl.Start()
	name := fl.Instances()[0].Name()
	if !fl.Await(name, StateReady, 2*time.Second) {
		t.Fatalf("%s never became ready", name)
	}
	if !fl.Crash(name) {
		t.Fatalf("crash command not delivered")
	}
	if !fl.Await(name, StateCrashed, 2*time.Second) {
		t.Fatalf("%s never crashed", name)
	}
	if !fl.Restart(name) {
		t.Fatalf("restart command not delivered")
	}
	if !fl.Await(name, StateReady, 2*time.Second) {
		t.Fatalf("%s never revived", name)
	}
	for _, in := range fl.Instances() {
		fl.Stop(in.Name())
	}
	rep := fl.Wait()
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Errorf("crashes=%d restarts=%d, want 1/1", rep.Crashes, rep.Restarts)
	}
	in := fl.Instance(name)
	if len(in.Events()) == 0 {
		t.Errorf("no lifecycle events logged")
	}
}

// TestChurnStress is the ≥5s -race churn satellite: a full fleet with
// live process churn (spawn/exec/exit plus scheduled crash/restart),
// rule Install/Remove/Flush racing traffic, and dcache-invalidating
// adversary noise — asserting no panic, no lost verdicts, and no guard
// misfires in stable windows. Extends the PR 6 pooled-scratch stress to
// whole-daemon lifecycles. Shortened under -short.
func TestChurnStress(t *testing.T) {
	dur := 5 * time.Second
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	cfg := pf.Optimized()
	w := worldgen.Build(worldgen.Tiny, programs.WorldOpts{PF: &cfg, MACEnforcing: true})
	fl := New(w, Config{
		Seed: 1337, Instances: 8, Duration: dur,
		RuleChurn: true, ProcChurn: true, AdversaryChurn: true,
		ChurnActions: 24,
	})
	rep := fl.Run()

	if !rep.VerdictsConserved {
		t.Fatalf("lost verdicts: %d requests vs %d accepts + %d drops",
			rep.Requests, rep.Accepts, rep.Drops)
	}
	if rep.UnexpectedAllows != 0 {
		t.Fatalf("%d guard probes allowed in stable windows", rep.UnexpectedAllows)
	}
	if rep.UnexpectedErrors != 0 {
		t.Errorf("%d unexpected traffic errors", rep.UnexpectedErrors)
		for _, in := range fl.Instances() {
			for _, e := range in.Events() {
				t.Log(e)
			}
		}
	}
	if rep.Crashes == 0 && !testing.Short() {
		t.Errorf("stress ran with no crashes — schedule never fired?")
	}
	if rep.RuleMutations < 8 {
		t.Errorf("only %d rule mutations over %v", rep.RuleMutations, dur)
	}
	t.Logf("stress: %d ops, %d crashes, %d restarts, %d rule mutations, %d adversary ops, %d denies",
		rep.Ops, rep.Crashes, rep.Restarts, rep.RuleMutations, rep.AdversaryOps, rep.ExpectedDenies)
}
