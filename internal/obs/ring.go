package obs

import (
	"sort"
	"sync/atomic"
)

// Event is one flight-recorder entry: a mediation event compact enough to
// record on the hot path (recording happens only for the verdicts the
// engine opts in, DROPs by default, so inspectability does not require
// unbounded trace growth).
type Event struct {
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"time_unix_nano"`
	PID          int    `json:"pid"`
	Op           string `json:"op"`
	Verdict      string `json:"verdict"`
	Chain        string `json:"chain,omitempty"`
	Path         string `json:"path,omitempty"`
	ResourceID   uint64 `json:"resource_id,omitempty"`
}

// Ring is a fixed-size, lock-free flight recorder: the last cap events
// survive, oldest evicted first. Writers claim a monotonically increasing
// sequence number with one atomic add and publish the event with one
// atomic pointer store; readers snapshot without blocking writers. A
// reader racing a writer may miss the very newest slot or see a slightly
// stale one — acceptable for a diagnostic surface, and the Seq makes any
// reordering visible.
type Ring struct {
	name  string
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
}

// NewRing returns a ring holding the last cap events (minimum 1).
func NewRing(name string, cap int) *Ring {
	if cap < 1 {
		cap = 1
	}
	return &Ring{name: name, slots: make([]atomic.Pointer[Event], cap)}
}

// Name returns the ring's registry name.
func (r *Ring) Name() string { return r.name }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Record stores ev, evicting the oldest entry once the ring is full. The
// event's Seq is assigned here (1-based).
//
//pflint:allow-fn — flight-recorder capture; runs only for sampled or dropped events, not on the accept path.
func (r *Ring) Record(ev Event) {
	seq := r.seq.Add(1)
	ev.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&ev)
}

// Total returns how many events were ever recorded (recorded - Cap, when
// positive, were evicted).
func (r *Ring) Total() uint64 { return r.seq.Load() }

// Snapshot returns the surviving events, oldest first.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
