package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
)

// TestRegistryStress hammers every primitive from 8+ writer goroutines
// while exporter readers run concurrently — the invariants the lock-free
// claims rest on, under -race.
func TestRegistryStress(t *testing.T) {
	const (
		writers       = 8
		itersPerGorot = 2000
	)
	r := New()
	ctr := r.Counter("stress_total", "stress counter")
	labeled := r.Counter("stress_ops_total", "labeled", L("op", "FILE_OPEN"), L("verdict", "ACCEPT"))
	hist := r.Histogram("stress_latency_ns", "stress histogram")
	ring := r.Ring("stress_ring", 64)
	smp := NewSampler(4)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Exporter readers: Prometheus + JSON, continuously.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				var buf bytes.Buffer
				if err := r.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
				var doc JSONSnapshot
				if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
					t.Errorf("round-trip under load: %v", err)
					return
				}
			}
		}()
	}

	// Concurrent registration of fresh series (exercises the COW snapshot
	// swap against in-flight exports).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ops := []string{"FILE_OPEN", "SOCKET_SENDMSG", "FILE_READ", "IPC_BIND"}
		for i := 0; i < 200; i++ {
			r.Counter("stress_dyn_total", "", L("op", ops[i%len(ops)])).Add(i, 1)
		}
	}()

	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < itersPerGorot; i++ {
				key := g*itersPerGorot + i
				ctr.Add(key, 1)
				labeled.Add(key, 2)
				hist.Observe(key, uint64(i%5000))
				if smp.Tick(key) {
					ring.Record(Event{PID: key, Op: "FILE_OPEN", Verdict: "DROP"})
				}
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	if got := ctr.Load(); got != writers*itersPerGorot {
		t.Errorf("stress_total = %d, want %d", got, writers*itersPerGorot)
	}
	if got := labeled.Load(); got != 2*writers*itersPerGorot {
		t.Errorf("stress_ops_total = %d, want %d", got, 2*writers*itersPerGorot)
	}
	hs := hist.Snapshot()
	if hs.Count != writers*itersPerGorot {
		t.Errorf("histogram count = %d, want %d", hs.Count, writers*itersPerGorot)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
	// Ring: every surviving event must have a distinct seq, ascending.
	evs := ring.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("ring order violated at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if ring.Total() == 0 {
		t.Error("sampler never fired")
	}
}
