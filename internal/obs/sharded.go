// sharded.go holds the cache-line-padded, per-shard atomic primitives the
// whole observability layer is built from. The discipline is the one the
// PF engine's statistics pioneered (and which now lives here): increments
// go to a shard selected by a caller-provided key (typically the pid), so
// a thousand concurrent processes never serialize on one cache line — the
// user-space analogue of the kernel's per-CPU counters.
package obs

import "sync/atomic"

// counterShards is the shard fan-out for counters and samplers. 64 shards
// of one cache line each is 4 KiB per counter — cheap for the fixed, low
// cardinality the registry enforces (op × verdict × chain).
const counterShards = 64

// paddedUint64 occupies a full cache line so neighboring shards never
// false-share.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a sharded monotonic counter. The zero value is ready to use.
type Counter struct {
	shards [counterShards]paddedUint64
}

// Add adds n on the shard selected by key (typically the pid).
func (c *Counter) Add(key int, n uint64) {
	c.shards[uint(key)%counterShards].v.Add(n)
}

// Load sums all shards. The sum is not a snapshot — concurrent adds may or
// may not be included — but it is monotone over quiescent points.
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// LoadKey reads the single shard selected by key. Instrumentation uses it
// to derive sampling decisions from a counter the hot path maintains
// anyway: `LoadKey(pid)&mask == 0` costs one load instead of a dedicated
// sampler's read-modify-write.
func (c *Counter) LoadKey(key int) uint64 {
	return c.shards[uint(key)%counterShards].v.Load()
}

// SampleMask turns a sampling period into the bitmask used against a
// monotone event counter: `count&mask == 0` fires once per `every` events,
// with every rounded up to a power of two (every <= 1 fires always).
func SampleMask(every int) uint64 {
	n := uint64(1)
	for int(n) < every {
		n <<= 1
	}
	return n - 1
}

// Sampler decides, lock-free, whether an expensive observation (two
// timestamps and a histogram record) should be taken for this event: one
// in every `every` events per shard. Shards are pre-biased so the first
// event on each shard samples, which keeps short deterministic workloads
// (CLI runs, tests) observable while steady-state overhead stays at
// 1/every.
type Sampler struct {
	mask   uint64
	shards [counterShards]paddedUint64
}

// NewSampler returns a sampler firing once per `every` ticks per shard,
// rounded up to a power of two; every <= 1 samples everything.
func NewSampler(every int) *Sampler {
	n := uint64(1)
	for int(n) < every {
		n <<= 1
	}
	s := &Sampler{mask: n - 1}
	for i := range s.shards {
		s.shards[i].v.Store(n - 1) // first Add lands on a multiple of n
	}
	return s
}

// Tick advances the shard selected by key and reports whether this event
// should be sampled.
func (s *Sampler) Tick(key int) bool {
	return s.shards[uint(key)%counterShards].v.Add(1)&s.mask == 0
}

// Every returns the effective sampling period.
func (s *Sampler) Every() int { return int(s.mask + 1) }
