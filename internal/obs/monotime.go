package obs

import "time"

// Span latency stamps use the process monotonic clock alone. time.Now
// reads both the wall and the monotonic clock on every call, which on
// virtualized hosts without a fast vDSO clocksource is the single largest
// cost of capturing a span (four stamps each paying two clock reads).
// MonoNow pays one read; the wall-clock publish stamp is derived from the
// base captured at process start, which is exact up to NTP slew since
// then — fine for ordering and display, the only things spans use it for.

// monoBase anchors the process monotonic clock; wallBase is its wall time.
var monoBase = time.Now()
var wallBase = monoBase.UnixNano()

// MonoNow returns nanoseconds since process start on the monotonic clock —
// a single clock read, half the cost of time.Now.
func MonoNow() int64 { return int64(time.Since(monoBase)) }

// WallNano converts a MonoNow stamp to Unix nanoseconds.
func WallNano(mono int64) int64 { return wallBase + mono }
