package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the decision-provenance layer: a fixed-size Span record that
// explains one mediated request — which chains it traversed, which rule
// decided it (with its ruleset source position), which caches hit, and how
// the latency split across kernel → DAC/MAC → gauntlet — plus the Tracer
// that samples spans into a flight ring and fans them out to live
// subscribers. Spans are embedded by value in the kernel's per-syscall
// mediation scratch, so the armed-but-disabled path allocates nothing; the
// schema is deliberately the one a future learning mode will mine.

// SpanFlags is a bitfield of provenance facts about one mediated request.
type SpanFlags uint32

const (
	// SpanBatch marks a request that was not the first mediation of its
	// syscall (BatchIndex > 0): one of several requests amortized over a
	// single gauntlet setup, e.g. the per-component walk of a path.
	SpanBatch SpanFlags = 1 << iota
	// SpanEptCacheHit: the entrypoint context was served from the per-proc
	// unwind cache (stack and address-space generations unchanged).
	SpanEptCacheHit
	// SpanEptUnwound: the user stack was actually unwound for this request.
	SpanEptUnwound
	// SpanDcacheHit / SpanDcacheMiss: how the request's object was found
	// during path resolution. Both clear means no lookup was attributable
	// (fd-based syscalls, IPC resources, the syscall-begin probe).
	SpanDcacheHit
	SpanDcacheMiss
	// SpanAdvCacheHit / SpanAdvCacheMiss: whether the adversary-
	// accessibility answer came from the wait-free MAC snapshot. Both clear
	// means no rule needed adversary context.
	SpanAdvCacheHit
	SpanAdvCacheMiss
	// SpanRuleDecided: a rule issued the final verdict; clear means the
	// ruleset default (accept) applied.
	SpanRuleDecided
	// SpanEmptyRuleset: the empty-ruleset fast path accepted the request
	// without entering any chain.
	SpanEmptyRuleset
)

// spanFlagNames is ordered by bit position, for the derived flag_names
// JSON field.
var spanFlagNames = []string{
	"batch",
	"ept_cache_hit",
	"ept_unwound",
	"dcache_hit",
	"dcache_miss",
	"adv_cache_hit",
	"adv_cache_miss",
	"rule_decided",
	"empty_ruleset",
}

// Names expands the bitfield into its symbolic names, bit order.
func (f SpanFlags) Names() []string {
	var out []string
	for i, n := range spanFlagNames {
		if f&(1<<uint(i)) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// SpanChainMax bounds the recorded chain path. Deeper jump chains truncate
// (the jump depth limit in the engine is higher, but provenance keeps the
// record fixed-size); the first SpanChainMax chains entered are kept.
const SpanChainMax = 4

// Span is one request's provenance record. It is fixed-size — every string
// field is an interned or pre-existing string (operation names, verdict
// names, ruleset file names, resolved paths), so filling a span performs no
// allocation; the record itself lives in per-syscall scratch and is copied
// by value into the tracer ring and subscriber channels.
//
// Latency split, all monotonic nanoseconds:
//
//	KernelNs   syscall entry → this request's mediation start
//	CheckNs    DAC + MAC checks ahead of the gauntlet (0 when the request
//	           reached the firewall without a vfs mediation wrapper)
//	GauntletNs pf.Batch.Filter entry → verdict
//	TotalNs    mediation start → verdict (CheckNs + GauntletNs)
type Span struct {
	Seq          uint64 // tracer-assigned publish ordinal (1-based)
	TimeUnixNano int64  // wall-clock publish stamp
	PID          int
	SyscallSeq   uint64 // kernel-wide syscall ordinal; groups batch members
	BatchIndex   uint32 // request ordinal within its syscall (0 = first)
	Flags        SpanFlags

	Syscall string // syscall name ("open", "connect", ...)
	Op      string // firewall operation ("FILE_OPEN", ...)
	Verdict string // "ACCEPT" or "DROP"
	Subject string // subject label of the mediating process
	Path    string // object path, when the resource has one

	// Deciding rule, valid when SpanRuleDecided is set. The source position
	// is kept as separate fields so recording never renders a string; use
	// RuleSrc (or the rule_src JSON field) for display.
	RuleFile   string
	RuleLine   int
	RuleCol    int
	RuleTarget string // target name of the deciding rule ("DROP", "ACCEPT", "LOG", ...)

	RulesEvaluated uint32 // rules the gauntlet evaluated for this request

	KernelNs   uint64
	CheckNs    uint64
	GauntletNs uint64
	TotalNs    uint64

	chain    [SpanChainMax]string
	chainLen uint8
}

// PushChain records entry into a chain. Beyond SpanChainMax entries the
// record truncates silently; no allocation either way.
func (s *Span) PushChain(name string) {
	if int(s.chainLen) < SpanChainMax {
		s.chain[s.chainLen] = name
		s.chainLen++
	}
}

// Chains returns the recorded chain path, oldest first. The slice aliases
// the span's fixed buffer; callers that retain it must copy.
func (s *Span) Chains() []string {
	return s.chain[:s.chainLen]
}

// RuleSrc renders the deciding rule's source position ("file:line:col"),
// or "" when no rule decided the request. Allocates; display/export only.
func (s *Span) RuleSrc() string {
	if s.Flags&SpanRuleDecided == 0 || s.RuleFile == "" && s.RuleLine == 0 {
		return ""
	}
	b := make([]byte, 0, len(s.RuleFile)+8)
	b = append(b, s.RuleFile...)
	b = append(b, ':')
	b = appendInt(b, s.RuleLine)
	if s.RuleCol > 0 {
		b = append(b, ':')
		b = appendInt(b, s.RuleCol)
	}
	return string(b)
}

func appendInt(b []byte, n int) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

// spanJSON is the wire schema. rule_src and flag_names are derived on
// marshal and ignored on unmarshal (flags is authoritative), so a
// marshal → unmarshal → marshal round trip is byte-stable.
type spanJSON struct {
	Seq            uint64   `json:"seq"`
	TimeUnixNano   int64    `json:"time_unix_nano"`
	PID            int      `json:"pid"`
	SyscallSeq     uint64   `json:"syscall_seq"`
	BatchIndex     uint32   `json:"batch_index"`
	Flags          uint32   `json:"flags"`
	FlagNames      []string `json:"flag_names,omitempty"`
	Syscall        string   `json:"syscall,omitempty"`
	Op             string   `json:"op"`
	Verdict        string   `json:"verdict"`
	Subject        string   `json:"subject,omitempty"`
	Path           string   `json:"path,omitempty"`
	Chains         []string `json:"chains,omitempty"`
	RuleSrc        string   `json:"rule_src,omitempty"`
	RuleFile       string   `json:"rule_file,omitempty"`
	RuleLine       int      `json:"rule_line,omitempty"`
	RuleCol        int      `json:"rule_col,omitempty"`
	RuleTarget     string   `json:"rule_target,omitempty"`
	RulesEvaluated uint32   `json:"rules_evaluated,omitempty"`
	KernelNs       uint64   `json:"kernel_ns"`
	CheckNs        uint64   `json:"check_ns"`
	GauntletNs     uint64   `json:"gauntlet_ns"`
	TotalNs        uint64   `json:"total_ns"`
}

// MarshalJSON encodes the span's wire schema. Export/display only; never
// called on the mediation path.
func (s *Span) MarshalJSON() ([]byte, error) {
	var chains []string
	if s.chainLen > 0 {
		chains = append(chains, s.chain[:s.chainLen]...)
	}
	return json.Marshal(spanJSON{
		Seq: s.Seq, TimeUnixNano: s.TimeUnixNano, PID: s.PID,
		SyscallSeq: s.SyscallSeq, BatchIndex: s.BatchIndex,
		Flags: uint32(s.Flags), FlagNames: s.Flags.Names(),
		Syscall: s.Syscall, Op: s.Op, Verdict: s.Verdict,
		Subject: s.Subject, Path: s.Path, Chains: chains,
		RuleSrc: s.RuleSrc(), RuleFile: s.RuleFile, RuleLine: s.RuleLine,
		RuleCol: s.RuleCol, RuleTarget: s.RuleTarget,
		RulesEvaluated: s.RulesEvaluated,
		KernelNs:       s.KernelNs, CheckNs: s.CheckNs,
		GauntletNs: s.GauntletNs, TotalNs: s.TotalNs,
	})
}

// UnmarshalJSON decodes the wire schema back into a span.
func (s *Span) UnmarshalJSON(data []byte) error {
	var j spanJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Span{
		Seq: j.Seq, TimeUnixNano: j.TimeUnixNano, PID: j.PID,
		SyscallSeq: j.SyscallSeq, BatchIndex: j.BatchIndex,
		Flags:   SpanFlags(j.Flags),
		Syscall: j.Syscall, Op: j.Op, Verdict: j.Verdict,
		Subject: j.Subject, Path: j.Path,
		RuleFile: j.RuleFile, RuleLine: j.RuleLine, RuleCol: j.RuleCol,
		RuleTarget:     j.RuleTarget,
		RulesEvaluated: j.RulesEvaluated,
		KernelNs:       j.KernelNs, CheckNs: j.CheckNs,
		GauntletNs: j.GauntletNs, TotalNs: j.TotalNs,
	}
	for _, c := range j.Chains {
		s.PushChain(c)
	}
	return nil
}

// TraceConfig parameterizes a Tracer.
type TraceConfig struct {
	// RingSize is the span flight-recorder capacity (default 256, rounded
	// up to one).
	RingSize int
	// SubBuf is the per-subscriber channel depth (default 64). A slow
	// subscriber drops spans rather than stalling mediation.
	SubBuf int
}

// SpanSub is one live subscription. Spans are delivered by value on C;
// deliveries that would block are counted in Drops instead.
type SpanSub struct {
	id    uint64
	ch    chan Span
	drops atomic.Uint64
}

// C is the subscriber's delivery channel. It is closed by Unsubscribe.
func (s *SpanSub) C() <-chan Span { return s.ch }

// Drops reports spans dropped because this subscriber's buffer was full.
func (s *SpanSub) Drops() uint64 { return s.drops.Load() }

// subSet is the published subscriber list; swapped wholesale on
// subscribe/unsubscribe so Publish reads it without locks.
type subSet struct {
	subs []*SpanSub
}

// Tracer samples provenance spans into a bounded ring and fans them out to
// subscribers. Publish is called from the kernel's syscall layer (never
// from inside the gauntlet closure): a short mutex guards the ring slots,
// while the subscriber list and mute set are read via atomic snapshots.
type Tracer struct {
	name string

	seq   atomic.Uint64
	drops atomic.Uint64 // total spans dropped across all subscribers

	mu    sync.Mutex
	slots []Span

	subMu  sync.Mutex // guards copy-on-write of subs and muted
	nextID uint64
	subs   atomic.Pointer[subSet]
	muted  atomic.Pointer[map[int]struct{}]

	subBuf int
}

// NewTracer creates a standalone tracer. Most callers want
// Registry.Tracer, which also exports the ring.
func NewTracer(name string, cfg TraceConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.SubBuf <= 0 {
		cfg.SubBuf = 64
	}
	t := &Tracer{name: name, slots: make([]Span, cfg.RingSize), subBuf: cfg.SubBuf}
	t.subs.Store(&subSet{})
	empty := map[int]struct{}{}
	t.muted.Store(&empty)
	return t
}

// Name returns the tracer's registered name.
func (t *Tracer) Name() string { return t.name }

// Publish assigns the span its sequence number, records it in the ring,
// and fans it out to subscribers (dropping, never blocking). Spans from
// muted pids are discarded — that is what breaks the feedback loop when
// the trace stream itself is carried over mediated in-simulation sockets.
func (t *Tracer) Publish(sp *Span) {
	if m := t.muted.Load(); len(*m) > 0 {
		if _, ok := (*m)[sp.PID]; ok {
			return
		}
	}
	sp.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.slots[(sp.Seq-1)%uint64(len(t.slots))] = *sp
	t.mu.Unlock()
	if ss := t.subs.Load(); len(ss.subs) > 0 {
		for _, sub := range ss.subs {
			select {
			case sub.ch <- *sp:
			default:
				sub.drops.Add(1)
				t.drops.Add(1)
			}
		}
	}
}

// Total reports spans published (including those since evicted).
func (t *Tracer) Total() uint64 { return t.seq.Load() }

// Dropped reports spans dropped across all subscribers.
func (t *Tracer) Dropped() uint64 { return t.drops.Load() }

// Subscribers reports the current live subscription count.
func (t *Tracer) Subscribers() int { return len(t.subs.Load().subs) }

// Subscribe registers a live span consumer with the tracer's default
// buffer depth.
func (t *Tracer) Subscribe() *SpanSub { return t.SubscribeBuf(0) }

// SubscribeBuf registers a live span consumer with an explicit channel
// depth (<= 0 uses the tracer default). Relays that fan out to further
// consumers use a deep buffer so a synchronous burst of publishes does
// not overrun them before their goroutine is scheduled.
func (t *Tracer) SubscribeBuf(buf int) *SpanSub {
	if buf <= 0 {
		buf = t.subBuf
	}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	t.nextID++
	sub := &SpanSub{id: t.nextID, ch: make(chan Span, buf)}
	cur := t.subs.Load()
	next := &subSet{subs: make([]*SpanSub, 0, len(cur.subs)+1)}
	next.subs = append(next.subs, cur.subs...)
	next.subs = append(next.subs, sub)
	t.subs.Store(next)
	return sub
}

// Unsubscribe removes the subscription and closes its channel. Safe to
// call at most once per subscription; unknown subscriptions are ignored.
func (t *Tracer) Unsubscribe(sub *SpanSub) {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	cur := t.subs.Load()
	next := &subSet{subs: make([]*SpanSub, 0, len(cur.subs))}
	found := false
	for _, s := range cur.subs {
		if s.id == sub.id {
			found = true
			continue
		}
		next.subs = append(next.subs, s)
	}
	if !found {
		return
	}
	t.subs.Store(next)
	close(sub.ch)
}

// Mute discards future spans whose PID matches. Used by the span stream's
// own server/client processes so the transport cannot trace itself into a
// feedback loop.
func (t *Tracer) Mute(pid int) {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	cur := t.muted.Load()
	next := make(map[int]struct{}, len(*cur)+1)
	for k := range *cur {
		next[k] = struct{}{}
	}
	next[pid] = struct{}{}
	t.muted.Store(&next)
}

// Unmute re-enables spans for pid.
func (t *Tracer) Unmute(pid int) {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	cur := t.muted.Load()
	next := make(map[int]struct{}, len(*cur))
	for k := range *cur {
		if k != pid {
			next[k] = struct{}{}
		}
	}
	t.muted.Store(&next)
}

// Snapshot returns the ring's current spans ordered by sequence number,
// oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if t.slots[i].Seq != 0 {
			out = append(out, t.slots[i])
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
