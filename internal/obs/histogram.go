package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every latency histogram: buckets
// 0..NumBuckets-2 hold values v with v <= 2^i nanoseconds (power-of-two
// upper bounds, so bucketing is two instructions — a decrement and a
// bits.Len64), and the final bucket is the +Inf overflow. 2^30 ns ≈ 1.07 s
// is the largest finite bound; any mediation slower than that is an
// outlier the overflow bucket still accounts for.
const NumBuckets = 32

// histShards is the shard fan-out for histograms. Histogram records are
// sampled (see Sampler), so contention is already throttled; 8 shards
// keeps the per-histogram footprint small while still separating
// concurrent writers. Shards are padded on both ends so adjacent shards
// never share a cache line; cells within a shard belong to one writer
// lane, so they are left unpadded.
const histShards = 8

// histShard is one writer lane.
type histShard struct {
	_       [64]byte
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [64]byte
}

// Histogram is a fixed-bucket, power-of-two-nanosecond latency histogram
// with per-shard atomics. The zero value is ready to use.
type Histogram struct {
	shards [histShards]histShard
}

// BucketIndex maps a nanosecond value to its bucket: the smallest i with
// ns <= 2^i, clamped into the overflow bucket. 0 and 1 ns share bucket 0
// (bound 2^0 = 1).
func BucketIndex(ns uint64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(ns - 1) // smallest i with ns <= 1<<i
	if i > NumBuckets-1 {
		i = NumBuckets - 1
	}
	return i
}

// BucketBound renders bucket i's upper bound as a Prometheus `le` value.
func BucketBound(i int) string {
	if i >= NumBuckets-1 {
		return "+Inf"
	}
	return strconv.FormatUint(1<<uint(i), 10)
}

// Observe records one value on the shard selected by key.
func (h *Histogram) Observe(key int, ns uint64) {
	sh := &h.shards[uint(key)%histShards]
	sh.buckets[BucketIndex(ns)].Add(1)
	sh.count.Add(1)
	sh.sum.Add(ns)
}

// HistSnapshot is a point-in-time (per-cell best-effort) read of a
// histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64 // per-bucket (non-cumulative) counts
}

// Quantile estimates the q-th quantile (0 < q <= 1) in nanoseconds: the
// upper bound of the bucket where the cumulative count crosses q·Count.
// With power-of-two bounds the estimate is within 2× of the true value
// except in the +Inf bucket, which reports the largest finite bound.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= target {
			if b >= NumBuckets-1 {
				return 1 << uint(NumBuckets-2)
			}
			return 1 << uint(b)
		}
	}
	return 1 << uint(NumBuckets-2)
}

// Snapshot sums all shards.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := 0; b < NumBuckets; b++ {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	return s
}
