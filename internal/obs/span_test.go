package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerRingAndSeq(t *testing.T) {
	tr := NewTracer("t", TraceConfig{RingSize: 4})
	for i := 0; i < 6; i++ {
		sp := Span{Op: "FILE_OPEN", PID: i}
		tr.Publish(&sp)
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring keeps %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(3 + i); sp.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d (oldest-first, newest kept)", i, sp.Seq, want)
		}
	}
}

func TestTracerSubscribeFanoutAndDrops(t *testing.T) {
	tr := NewTracer("t", TraceConfig{RingSize: 8, SubBuf: 2})
	a, b := tr.Subscribe(), tr.Subscribe()
	if tr.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", tr.Subscribers())
	}
	for i := 0; i < 5; i++ {
		tr.Publish(&Span{PID: i})
	}
	// Each buffer holds 2; 3 spans dropped per subscriber.
	if a.Drops() != 3 || b.Drops() != 3 {
		t.Errorf("drops = %d/%d, want 3/3", a.Drops(), b.Drops())
	}
	if tr.Dropped() != 6 {
		t.Errorf("tracer dropped = %d, want 6", tr.Dropped())
	}
	if sp := <-a.C(); sp.PID != 0 {
		t.Errorf("first delivered span PID = %d, want 0", sp.PID)
	}
	tr.Unsubscribe(a)
	if _, ok := <-a.C(); ok {
		// One span was still buffered; the channel must drain then close.
		if _, ok := <-a.C(); ok {
			t.Error("unsubscribed channel did not close")
		}
	}
	tr.Unsubscribe(a) // double-unsubscribe is a no-op, must not panic
	if tr.Subscribers() != 1 {
		t.Errorf("subscribers after unsubscribe = %d, want 1", tr.Subscribers())
	}
}

func TestTracerMute(t *testing.T) {
	tr := NewTracer("t", TraceConfig{})
	tr.Mute(7)
	tr.Publish(&Span{PID: 7})
	tr.Publish(&Span{PID: 8})
	if tr.Total() != 1 {
		t.Fatalf("muted pid published; total = %d, want 1", tr.Total())
	}
	tr.Unmute(7)
	tr.Publish(&Span{PID: 7})
	if tr.Total() != 2 {
		t.Fatalf("unmuted pid silent; total = %d, want 2", tr.Total())
	}
}

func TestSpanChainTruncates(t *testing.T) {
	var sp Span
	for _, c := range []string{"a", "b", "c", "d", "e", "f"} {
		sp.PushChain(c)
	}
	got := sp.Chains()
	if len(got) != SpanChainMax {
		t.Fatalf("chain len = %d, want %d", len(got), SpanChainMax)
	}
	if got[0] != "a" || got[SpanChainMax-1] != "d" {
		t.Errorf("chain = %v, want first %d entries kept", got, SpanChainMax)
	}
}

func TestSpanRuleSrc(t *testing.T) {
	sp := Span{Flags: SpanRuleDecided, RuleFile: "web.pft", RuleLine: 12, RuleCol: 3}
	if got := sp.RuleSrc(); got != "web.pft:12:3" {
		t.Errorf("RuleSrc = %q", got)
	}
	sp.RuleCol = 0
	if got := sp.RuleSrc(); got != "web.pft:12" {
		t.Errorf("RuleSrc without col = %q", got)
	}
	var empty Span
	if got := empty.RuleSrc(); got != "" {
		t.Errorf("undecided RuleSrc = %q, want empty", got)
	}
}

func TestRegistryFamilyKindMixPanics(t *testing.T) {
	r := New()
	r.Counter("m_total", "", L("op", "A"))
	defer func() {
		if recover() == nil {
			t.Fatal("registering a histogram under a counter family must panic")
		}
	}()
	// Different label set, same family name, different kind: the
	// family-level check must reject it even though the series is new.
	r.Histogram("m_total", "", L("op", "B"))
}

func TestRegistryTracerDedupe(t *testing.T) {
	r := New()
	a := r.Tracer("spans", TraceConfig{RingSize: 8})
	b := r.Tracer("spans", TraceConfig{RingSize: 999})
	if a != b {
		t.Fatal("same tracer name must return the same tracer")
	}
}

// TestExportOrderStable registers the same series in two different orders
// and requires byte-identical Prometheus and JSON exports: ordering is a
// property of the schema, not of registration history.
func TestExportOrderStable(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := New()
		series := []struct {
			name string
			op   string
		}{{"b_total", "y"}, {"a_total", "z"}, {"b_total", "x"}, {"a_total", "a"}}
		if reverse {
			for i, j := 0, len(series)-1; i < j; i, j = i+1, j-1 {
				series[i], series[j] = series[j], series[i]
			}
		}
		for _, s := range series {
			r.Counter(s.name, "help", L("op", s.op)).Add(0, 1)
		}
		tr := r.Tracer("spans", TraceConfig{RingSize: 4})
		tr.Publish(&Span{Op: "FILE_OPEN", Verdict: "ACCEPT"})
		return r
	}
	var p1, p2 bytes.Buffer
	if err := build(false).WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Errorf("prometheus export depends on registration order:\n%s\nvs\n%s", &p1, &p2)
	}
	j1, err := json.Marshal(build(false).JSON())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build(true).JSON())
	if err != nil {
		t.Fatal(err)
	}
	// Timestamps differ; spans carry none here, so the documents compare
	// directly.
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSON export depends on registration order:\n%s\nvs\n%s", j1, j2)
	}
}

func TestJSONExportsSpans(t *testing.T) {
	r := New()
	tr := r.Tracer("spans", TraceConfig{RingSize: 4})
	tr.Publish(&Span{Op: "FILE_OPEN", Verdict: "DROP", PID: 3})
	doc := r.JSON()
	s, ok := doc.Spans["spans"]
	if !ok {
		t.Fatalf("JSON export missing spans section: %+v", doc)
	}
	if s.Total != 1 || len(s.Recent) != 1 {
		t.Fatalf("spans export = %+v", s)
	}
	if s.Recent[0].Verdict != "DROP" || s.Recent[0].PID != 3 {
		t.Errorf("recent span = %+v", s.Recent[0])
	}
}

func TestHistQuantile(t *testing.T) {
	h := New().Histogram("q_ns", "")
	// 90 observations near 1µs, 10 near 1ms: p50 lands in the µs bucket,
	// p99 in the ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(i, 1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(i, 1_000_000)
	}
	s := h.Snapshot()
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 < 1000 || p50 > 2048 {
		t.Errorf("p50 = %d, want ~1µs bucket", p50)
	}
	if p99 < 1_000_000 || p99 > 1<<21 {
		t.Errorf("p99 = %d, want ~1ms bucket", p99)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}
