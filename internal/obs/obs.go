// Package obs is the process-wide, lock-free observability layer of the
// mediation stack. It answers, for a running system, the questions the
// paper's operational story depends on — how many FILE_OPENs were
// mediated, at what latency, with what cache hit rates, and what got
// dropped in the last minute (Section 6.1.2's denial review, Section 7's
// syscall-granularity overhead measurement) — without ever taking a lock
// on the hot path.
//
// Design:
//
//   - Metrics are registered once, at wire-up time, against a fixed, low
//     cardinality (op × verdict × chain). Registration returns the raw
//     sharded primitive (Counter, Histogram); the hot path touches only
//     that pointer — no map lookups, no interface calls, no locks.
//   - The registry's metric list is itself an immutable snapshot behind an
//     atomic pointer (the same RCU discipline as the PF ruleset), so
//     exporters never block writers and registration never blocks readers.
//   - Cheap always-on subsystem counters (the vfs dcache atomics, the MAC
//     adversary-cache counters, IPC byte counts) are not duplicated: the
//     registry samples them at export time through CounterFunc/GaugeFunc.
//   - Latency histograms are sampled (Sampler, default 1/16 per shard), so
//     the enabled-metrics overhead stays within the ≤5% budget; counters
//     are exact.
//   - The disabled path is a single nil check at each instrumentation
//     point: a system built without a registry pays one predictable branch.
//
// Exporters: Prometheus text exposition (WritePrometheus), expvar-style
// JSON (WriteJSON/MarshalJSON), and an optional net/http handler serving
// both (Handler).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {op, FILE_OPEN}.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric kinds. Funcs sample external atomics at export time.
type kind uint8

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) promType() string {
	switch k {
	case kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   kind

	counter *Counter
	fn      func() uint64
	hist    *Histogram
}

// value reads the scalar kinds.
func (m *metric) value() uint64 {
	if m.fn != nil {
		return m.fn()
	}
	return m.counter.Load()
}

// labelString renders the Prometheus label block, "" when unlabeled.
func (m *metric) labelString(extra ...Label) string {
	ls := m.labels
	if len(extra) > 0 {
		ls = append(append([]Label(nil), ls...), extra...)
	}
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// jsonKey renders the label set as the expvar-style map key,
// "op=FILE_OPEN,verdict=ACCEPT"; "" when unlabeled.
func (m *metric) jsonKey() string {
	if len(m.labels) == 0 {
		return ""
	}
	parts := make([]string, len(m.labels))
	for i, l := range m.labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string { return v } // %q in labelString already escapes \ " and \n

// key uniquely identifies a series for idempotent registration.
func seriesKey(name string, labels []Label) string {
	b := strings.Builder{}
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\xff')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// snapshot is the immutable export view.
type snapshot struct {
	metrics []*metric // sorted by (name, labelString)
	rings   []*Ring   // sorted by name
	tracers []*Tracer // sorted by name
}

// Registry owns the process-wide metric set. Registration is serialized;
// the hot path and the exporters are lock-free.
type Registry struct {
	mu       sync.Mutex
	byKey    map[string]*metric
	byFamily map[string]kind // metric family name -> kind, for mixed-kind rejection
	rings    map[string]*Ring
	tracers  map[string]*Tracer
	snap     atomic.Pointer[snapshot]
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{
		byKey:    make(map[string]*metric),
		byFamily: make(map[string]kind),
		rings:    make(map[string]*Ring),
		tracers:  make(map[string]*Tracer),
	}
	r.snap.Store(&snapshot{})
	return r
}

// register inserts m (or returns the existing series with the same name
// and labels — registration is deterministic and idempotent: the first
// registration of a series wins and every duplicate resolves to it, so
// re-attaching a subsystem is harmless and export output never depends on
// attach order). Kind mismatches — whether on the exact series or between
// series sharing a family name, which would emit contradictory Prometheus
// TYPE lines — are programmer errors and panic.
func (r *Registry) register(m *metric) *metric {
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("obs: series %s re-registered as a different kind", m.name))
		}
		return old
	}
	if fk, ok := r.byFamily[m.name]; ok && fk != m.kind {
		panic(fmt.Sprintf("obs: metric family %s mixes kinds (%s and %s)", m.name, fk.promType(), m.kind.promType()))
	}
	r.byFamily[m.name] = m.kind
	r.byKey[key] = m
	r.publishLocked()
	return m
}

// publishLocked rebuilds the sorted export snapshot.
func (r *Registry) publishLocked() {
	ms := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].jsonKey() < ms[j].jsonKey()
	})
	rs := make([]*Ring, 0, len(r.rings))
	for _, ring := range r.rings {
		rs = append(rs, ring)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].name < rs[j].name })
	ts := make([]*Tracer, 0, len(r.tracers))
	for _, t := range r.tracers {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	r.snap.Store(&snapshot{metrics: ms, rings: rs, tracers: ts})
}

// Counter registers (or finds) a sharded counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// CounterFunc registers a counter series whose value is sampled from fn at
// export time — used to surface always-on subsystem atomics (dcache hits,
// adversary-cache hits, engine verdict totals) without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge series sampled from fn at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or finds) a latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, hist: &Histogram{}})
	return m.hist
}

// HistogramSnapshots reads every histogram series of one family, keyed by
// the series' expvar-style label string ("op=FILE_OPEN"; "" when
// unlabeled). Front-ends use it to derive quantile summaries from the
// already-exported histograms instead of keeping separate state.
func (r *Registry) HistogramSnapshots(family string) map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	for _, m := range r.snap.Load().metrics {
		if m.kind == kindHistogram && m.name == family {
			out[m.jsonKey()] = m.hist.Snapshot()
		}
	}
	return out
}

// Ring registers (or finds) a named flight-recorder ring.
func (r *Registry) Ring(name string, cap int) *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.rings[name]; ok {
		return old
	}
	ring := NewRing(name, cap)
	r.rings[name] = ring
	r.publishLocked()
	return ring
}

// Tracer registers (or finds) a named provenance-span tracer, attaching
// its flight ring to the registry's JSON export.
func (r *Registry) Tracer(name string, cfg TraceConfig) *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.tracers[name]; ok {
		return old
	}
	t := NewTracer(name, cfg)
	r.tracers[name] = t
	r.publishLocked()
	return t
}
