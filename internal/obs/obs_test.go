package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBucketIndexBoundaries pins the bucket math at the exact edges: 0 ns,
// 1 ns, each power-of-two boundary and its neighbors, and overflow.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, // zero lands in the first bucket (le 1)
		{1, 0},
		{2, 1}, // first value above 2^0
		{3, 2},
		{4, 2}, // exact edge: 4 <= 2^2
		{5, 3},
		{8, 3},
		{9, 4},
		{1024, 10},
		{1025, 11},
		{1 << 30, 30},        // largest finite bound
		{1<<30 + 1, 31},      // first overflow value
		{1 << 40, 31},        // deep overflow
		{math.MaxUint64, 31}, // extreme overflow
	}
	for _, c := range cases {
		if got := BucketIndex(c.ns); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bucket's bound must itself land in that bucket (le is
	// inclusive), and bound+1 in the next.
	for i := 0; i < NumBuckets-1; i++ {
		bound := uint64(1) << uint(i)
		if got := BucketIndex(bound); got != i {
			t.Errorf("BucketIndex(2^%d) = %d, want %d", i, got, i)
		}
		wantNext := i + 1
		if wantNext > NumBuckets-1 {
			wantNext = NumBuckets - 1
		}
		if got := BucketIndex(bound + 1); got != wantNext {
			t.Errorf("BucketIndex(2^%d+1) = %d, want %d", i, got, wantNext)
		}
	}
	if BucketBound(NumBuckets-1) != "+Inf" {
		t.Errorf("last bucket bound = %q, want +Inf", BucketBound(NumBuckets-1))
	}
	if BucketBound(3) != "8" {
		t.Errorf("BucketBound(3) = %q, want 8", BucketBound(3))
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(0, 0)
	h.Observe(1, 100)
	h.Observe(2, 100)
	h.Observe(3, 1<<62) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if want := uint64(0 + 100 + 100 + 1<<62); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if s.Buckets[0] != 1 || s.Buckets[BucketIndex(100)] != 2 || s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("bucket spread wrong: %+v", s.Buckets)
	}
}

func TestCounterShardsSum(t *testing.T) {
	var c Counter
	for key := 0; key < 1000; key++ {
		c.Add(key, 2)
	}
	if got := c.Load(); got != 2000 {
		t.Fatalf("Load = %d, want 2000", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(16)
	if s.Every() != 16 {
		t.Fatalf("Every = %d, want 16", s.Every())
	}
	// Pre-biased: the very first tick on a shard samples.
	if !s.Tick(7) {
		t.Fatal("first tick should sample")
	}
	hits := 0
	for i := 0; i < 15; i++ {
		if s.Tick(7) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("ticks 2..16 sampled %d times, want 0", hits)
	}
	if !s.Tick(7) {
		t.Fatal("tick 17 should sample")
	}
	// every<=1 samples everything; non-power-of-two rounds up.
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Tick(i) {
			t.Fatal("NewSampler(1) must sample every tick")
		}
	}
	if got := NewSampler(10).Every(); got != 16 {
		t.Fatalf("NewSampler(10).Every() = %d, want 16", got)
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing("test", 4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{PID: i, Op: "FILE_OPEN", Verdict: "DROP"})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.PID != int(wantSeq) {
			t.Fatalf("slot %d: seq=%d pid=%d, want seq=pid=%d", i, ev.Seq, ev.PID, wantSeq)
		}
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("op", "A"))
	b := r.Counter("x_total", "", L("op", "A"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	if c := r.Counter("x_total", "", L("op", "B")); c == a {
		t.Fatal("different labels must return a distinct counter")
	}
	if r.Ring("ring", 8) != r.Ring("ring", 99) {
		t.Fatal("same ring name must return the same ring")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Histogram("x_total", "", L("op", "A"))
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("pf_requests_total", "Requests mediated.").Add(1, 3)
	r.Counter("pf_mediations_total", "Mediations.", L("op", "FILE_OPEN"), L("verdict", "ACCEPT")).Add(1, 2)
	r.Counter("pf_mediations_total", "Mediations.", L("op", "FILE_OPEN"), L("verdict", "DROP")).Add(1, 1)
	r.GaugeFunc("mac_adv_epoch", "Adversary cache epoch.", func() uint64 { return 7 })
	h := r.Histogram("pf_gauntlet_latency_ns", "Gauntlet latency.", L("op", "FILE_OPEN"))
	h.Observe(0, 3)
	h.Observe(0, 900)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pf_requests_total counter\n",
		"pf_requests_total 3\n",
		"# HELP pf_mediations_total Mediations.\n",
		`pf_mediations_total{op="FILE_OPEN",verdict="ACCEPT"} 2` + "\n",
		`pf_mediations_total{op="FILE_OPEN",verdict="DROP"} 1` + "\n",
		"# TYPE mac_adv_epoch gauge\n",
		"mac_adv_epoch 7\n",
		"# TYPE pf_gauntlet_latency_ns histogram\n",
		`pf_gauntlet_latency_ns_bucket{op="FILE_OPEN",le="4"} 1` + "\n",
		`pf_gauntlet_latency_ns_bucket{op="FILE_OPEN",le="1024"} 2` + "\n",
		`pf_gauntlet_latency_ns_bucket{op="FILE_OPEN",le="+Inf"} 2` + "\n",
		`pf_gauntlet_latency_ns_sum{op="FILE_OPEN"} 903` + "\n",
		`pf_gauntlet_latency_ns_count{op="FILE_OPEN"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// The TYPE header must appear exactly once per family even with
	// multiple label sets.
	if n := strings.Count(out, "# TYPE pf_mediations_total counter"); n != 1 {
		t.Errorf("TYPE header for pf_mediations_total appears %d times, want 1", n)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("pf_requests_total", "").Add(0, 5)
	r.Counter("pf_mediations_total", "", L("op", "SOCKET_SENDMSG"), L("verdict", "ACCEPT")).Add(0, 4)
	r.GaugeFunc("mac_adv_epoch", "", func() uint64 { return 2 })
	r.Histogram("kernel_mediation_latency_ns", "").Observe(0, 77)
	ring := r.Ring("pf_flight_drop", 4)
	ring.Record(Event{PID: 9, Op: "FILE_OPEN", Verdict: "DROP", Path: "/tmp/x"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc JSONSnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip failed: %v\n%s", err, buf.String())
	}
	if doc.Counters["pf_requests_total"][""] != 5 {
		t.Errorf("pf_requests_total = %v", doc.Counters["pf_requests_total"])
	}
	if doc.Counters["pf_mediations_total"]["op=SOCKET_SENDMSG,verdict=ACCEPT"] != 4 {
		t.Errorf("labeled counter = %v", doc.Counters["pf_mediations_total"])
	}
	if doc.Gauges["mac_adv_epoch"][""] != 2 {
		t.Errorf("gauge = %v", doc.Gauges)
	}
	h := doc.Histograms["kernel_mediation_latency_ns"][""]
	if h.Count != 1 || h.SumNs != 77 {
		t.Errorf("histogram = %+v", h)
	}
	fr := doc.Rings["pf_flight_drop"]
	if fr.Total != 1 || len(fr.Events) != 1 || fr.Events[0].Path != "/tmp/x" {
		t.Errorf("ring = %+v", fr)
	}
	// And the marshal must be deterministic enough to re-marshal equal.
	again, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(r.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(first) {
		t.Errorf("re-marshal differs:\n%s\n%s", again, first)
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("pf_requests_total", "").Add(0, 1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "pf_requests_total 1") {
		t.Errorf("/metrics missing counter:\n%s", buf.String())
	}

	resp, err = srv.Client().Get(srv.URL + "/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc JSONSnapshot
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Counters["pf_requests_total"][""] != 1 {
		t.Errorf("/vars = %+v", doc.Counters)
	}
}
