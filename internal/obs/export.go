package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric family,
// cumulative `le` buckets plus _sum and _count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.snap.Load()
	var lastFamily string
	for _, m := range snap.metrics {
		if m.name != lastFamily {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind.promType()); err != nil {
				return err
			}
			lastFamily = m.name
		}
		if m.kind == kindHistogram {
			hs := m.hist.Snapshot()
			var cum uint64
			for b := 0; b < NumBuckets; b++ {
				cum += hs.Buckets[b]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.name, m.labelString(L("le", BucketBound(b))), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, m.labelString(), hs.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labelString(), hs.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labelString(), m.value()); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp applies the HELP-line escaping (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// JSONHistogram is the expvar-style JSON shape of one histogram.
type JSONHistogram struct {
	Count   uint64            `json:"count"`
	SumNs   uint64            `json:"sum_ns"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // le -> cumulative count, empty buckets elided
}

// JSONRing is the JSON shape of one flight-recorder ring.
type JSONRing struct {
	Cap    int     `json:"cap"`
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// JSONSpans is the JSON shape of one provenance tracer: its totals plus
// the flight ring's recent spans, oldest first.
type JSONSpans struct {
	Total       uint64 `json:"total"`
	Dropped     uint64 `json:"dropped"`
	Subscribers int    `json:"subscribers"`
	Recent      []Span `json:"recent"`
}

// JSONSnapshot is the full expvar-style JSON document. Scalar series of
// the same family collapse into a labels->value map, so the document both
// round-trips through encoding/json and stays human-scannable.
type JSONSnapshot struct {
	Counters   map[string]map[string]uint64        `json:"counters"`
	Gauges     map[string]map[string]uint64        `json:"gauges,omitempty"`
	Histograms map[string]map[string]JSONHistogram `json:"histograms,omitempty"`
	Rings      map[string]JSONRing                 `json:"rings,omitempty"`
	Spans      map[string]JSONSpans                `json:"spans,omitempty"`
}

// JSON materializes the snapshot document.
func (r *Registry) JSON() JSONSnapshot {
	snap := r.snap.Load()
	doc := JSONSnapshot{Counters: map[string]map[string]uint64{}}
	for _, m := range snap.metrics {
		key := m.jsonKey()
		switch m.kind {
		case kindHistogram:
			hs := m.hist.Snapshot()
			jh := JSONHistogram{Count: hs.Count, SumNs: hs.Sum}
			var cum uint64
			for b := 0; b < NumBuckets; b++ {
				if hs.Buckets[b] == 0 && b < NumBuckets-1 {
					cum += hs.Buckets[b]
					continue
				}
				cum += hs.Buckets[b]
				if jh.Buckets == nil {
					jh.Buckets = map[string]uint64{}
				}
				jh.Buckets[BucketBound(b)] = cum
			}
			if doc.Histograms == nil {
				doc.Histograms = map[string]map[string]JSONHistogram{}
			}
			fam := doc.Histograms[m.name]
			if fam == nil {
				fam = map[string]JSONHistogram{}
				doc.Histograms[m.name] = fam
			}
			fam[key] = jh
		case kindGaugeFunc:
			if doc.Gauges == nil {
				doc.Gauges = map[string]map[string]uint64{}
			}
			fam := doc.Gauges[m.name]
			if fam == nil {
				fam = map[string]uint64{}
				doc.Gauges[m.name] = fam
			}
			fam[key] = m.value()
		default:
			fam := doc.Counters[m.name]
			if fam == nil {
				fam = map[string]uint64{}
				doc.Counters[m.name] = fam
			}
			fam[key] = m.value()
		}
	}
	for _, ring := range snap.rings {
		if doc.Rings == nil {
			doc.Rings = map[string]JSONRing{}
		}
		evs := ring.Snapshot()
		if evs == nil {
			evs = []Event{}
		}
		doc.Rings[ring.name] = JSONRing{Cap: ring.Cap(), Total: ring.Total(), Events: evs}
	}
	for _, t := range snap.tracers {
		if doc.Spans == nil {
			doc.Spans = map[string]JSONSpans{}
		}
		sps := t.Snapshot()
		if sps == nil {
			sps = []Span{}
		}
		doc.Spans[t.name] = JSONSpans{
			Total: t.Total(), Dropped: t.Dropped(),
			Subscribers: t.Subscribers(), Recent: sps,
		}
	}
	return doc
}

// WriteJSON writes the indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSON())
}

// MarshalJSON lets a Registry be embedded directly in larger documents.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.JSON())
}

// Handler serves /metrics (Prometheus text) and /vars (JSON); any other
// path gets a short index.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "pfirewall observability\n  /metrics  Prometheus text exposition\n  /vars     expvar-style JSON\n")
	})
	return mux
}
