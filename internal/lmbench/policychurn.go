// policychurn.go measures the policy control plane — the
// BENCH_policy.json artifact. Three questions:
//
//   - publish latency: how long one rule change takes to land, full
//     recompile (pf.Config.FullRecompile) vs incremental bucket-level
//     delta compile, across rule-base sizes — the tentpole claim is that
//     the incremental path makes publish cost independent of base size;
//   - propagation: how long one canary DROP takes to reach every engine
//     of a small fleet when streamed through policyd publishers, with the
//     verdict flip verified in-world after every round;
//   - disturbance: what churning the rule base through the control plane
//     does to the mediated open path's p99, measured as paired
//     quiet/churning rounds (interleaved so drift inflates both sides and
//     cancels in the ratio — only a cost present in every round counts).
package lmbench

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/policyd"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
)

// PolicyChurnSizes is the standard publish-latency sweep: small, the
// paper-scale base, and deployment scale.
var PolicyChurnSizes = []int{100, 1200, 10000}

// policyWorlds is the propagation fleet size.
const policyWorlds = 4

// policyRounds is the paired-round count for propagation and disturbance.
const policyRounds = 4

// PolicyPublishCell is one (mode, rule-count) publish-latency measurement.
type PolicyPublishCell struct {
	Mode         string  `json:"mode"` // "full" or "incremental"
	Rules        int     `json:"rules"`
	Publishes    int     `json:"publishes"`
	NsPerPublish float64 `json:"ns_per_publish"`
	P50Ns        float64 `json:"p50_ns"`
	P99Ns        float64 `json:"p99_ns"`
}

// PolicyPropagation is the fleet fan-out measurement.
type PolicyPropagation struct {
	Worlds int `json:"worlds"`
	Rounds int `json:"rounds"`
	// P50Ns/MaxNs: time from publish start until every world's engine
	// answered with the new verdict (client round trip + verified probe).
	P50Ns float64 `json:"p50_ns"`
	MaxNs float64 `json:"max_ns"`
	// Lost counts probes that saw a stale verdict after their publish
	// round-trip completed — the "zero dropped/blocked requests" gate.
	Lost int `json:"lost"`
}

// PolicyDisturbance is the paired quiet/churning open-path comparison.
type PolicyDisturbance struct {
	Rounds     int     `json:"rounds"`
	OpsPerSide int     `json:"ops_per_side"`
	QuietP99Ns float64 `json:"quiet_p99_ns"`
	ChurnP99Ns float64 `json:"churn_p99_ns"`
	// Pct is the mean-of-rounds p99 disturbance; BestRoundPct the minimum
	// paired round, the gate's number.
	Pct          float64 `json:"p99_disturbance_pct"`
	BestRoundPct float64 `json:"best_round_p99_disturbance_pct"`
	// Publishes landed while the churning sides ran, and verdict
	// conservation over the whole engine lifetime.
	Publishes         uint64 `json:"publishes"`
	DeltaCompiles     uint64 `json:"delta_compiles"`
	Requests          uint64 `json:"requests"`
	Accepts           uint64 `json:"accepts"`
	Drops             uint64 `json:"drops"`
	VerdictsConserved bool   `json:"verdicts_conserved"`
}

// PolicyChurnReport is the full control-plane measurement.
type PolicyChurnReport struct {
	BenchEnv
	Publish     []PolicyPublishCell `json:"publish"`
	Propagation PolicyPropagation   `json:"propagation"`
	Disturbance PolicyDisturbance   `json:"disturbance"`
}

// SpeedupAt reports full/incremental ns-per-publish at the given size
// (zero when either cell is missing).
func (rep *PolicyChurnReport) SpeedupAt(rules int) float64 {
	var full, inc float64
	for _, c := range rep.Publish {
		if c.Rules != rules {
			continue
		}
		switch c.Mode {
		case "full":
			full = c.NsPerPublish
		case "incremental":
			inc = c.NsPerPublish
		}
	}
	if full == 0 || inc == 0 {
		return 0
	}
	return full / inc
}

// MaxPublishSize is the largest size in the publish sweep.
func (rep *PolicyChurnReport) MaxPublishSize() int {
	max := 0
	for _, c := range rep.Publish {
		if c.Rules > max {
			max = c.Rules
		}
	}
	return max
}

// policyProbeRule renders the inert probe rule used for publish timing:
// non-entrypoint (so it rides the generic lane the delta compiler
// patches), with a subject label no process carries.
const policyProbeRule = `pftables -A input -s {policy_probe_t} -d {tmp_t} -o FILE_UNLINK -j DROP`

// RunPolicyChurn runs the three control-plane measurements. publishes is
// the per-cell publish count for the latency sweep; iters the per-side op
// count for the disturbance rounds.
func RunPolicyChurn(publishes, iters int, sizes []int) PolicyChurnReport {
	if publishes < 2 {
		publishes = 2
	}
	publishes -= publishes % 2 // append/remove pairs
	if iters < 1 {
		iters = 1
	}
	if len(sizes) == 0 {
		sizes = PolicyChurnSizes
	}
	rep := PolicyChurnReport{BenchEnv: Env()}
	rep.Publish = runPolicyPublish(publishes, sizes)
	rep.Propagation = runPolicyPropagation()
	rep.Disturbance = runPolicyDisturbance(iters)
	return rep
}

// publishModes: both sides carry the full optimized config including the
// dispatch index; "full" forces every publish through a from-scratch
// compile, isolating the incremental delta compiler as the only delta.
var publishModes = []struct {
	name string
	cfg  pf.Config
}{
	{"full", pf.Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: true, FullRecompile: true}},
	{"incremental", pf.Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: true}},
}

// runPolicyPublish times single-rule publishes against installed bases of
// each size: one append and one remove per pair, so the base size is
// stable across the measured window.
func runPolicyPublish(publishes int, sizes []int) []PolicyPublishCell {
	var cells []PolicyPublishCell
	for _, m := range publishModes {
		for _, n := range sizes {
			cfg := m.cfg
			w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
			if _, err := w.InstallRules(rulegen.ScaleRuleBase(1, n)); err != nil {
				panic(err)
			}
			cmd, err := pftables.Parse(w.Env, policyProbeRule)
			if err != nil {
				panic(err)
			}
			probe := cmd.Rule
			eng := w.Engine
			match := func(r *pf.Rule) bool { return r == probe }
			// Warm both paths (and let lazy derived state settle).
			for i := 0; i < 4; i++ {
				mustPolicy(eng.Append("input", probe))
				mustPolicy(eng.Remove("input", match))
			}
			st0 := eng.PublishStats()
			samples := make([]int64, 0, publishes)
			for i := 0; i < publishes/2; i++ {
				t0 := time.Now()
				mustPolicy(eng.Append("input", probe))
				samples = append(samples, time.Since(t0).Nanoseconds())
				t0 = time.Now()
				mustPolicy(eng.Remove("input", match))
				samples = append(samples, time.Since(t0).Nanoseconds())
			}
			st1 := eng.PublishStats()
			if m.name == "incremental" && st1.DeltaCompiles == st0.DeltaCompiles {
				panic("policychurn: incremental cell never took the delta-compile path")
			}
			var total int64
			for _, s := range samples {
				total += s
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			cells = append(cells, PolicyPublishCell{
				Mode:         m.name,
				Rules:        n,
				Publishes:    len(samples),
				NsPerPublish: float64(total) / float64(len(samples)),
				P50Ns:        percentileNs(samples, 0.50),
				P99Ns:        percentileNs(samples, 0.99),
			})
		}
	}
	return cells
}

// runPolicyPropagation streams a canary DROP to a small fleet of worlds
// through policyd publishers and measures until every engine's verdict
// actually flipped, verified by an in-world probe each round.
func runPolicyPropagation() PolicyPropagation {
	cfg := pf.Optimized()
	type target struct {
		w     *programs.World
		probe *kernel.Proc
	}
	var (
		targets []target
		names   []string
		clients []*policyd.Client
	)
	for i := 0; i < policyWorlds; i++ {
		w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
		// A base rule so opens are mediated at all (MayFilter gating).
		if _, err := w.InstallRules([]string{
			`pftables -A input -s user_t -d shadow_t -o FILE_OPEN -j DROP`,
		}); err != nil {
			panic(err)
		}
		name := fmt.Sprintf("pfpolicy-bench-%d", i)
		srv, err := policyd.Serve(w.K, w.Env, w.Engine, name, nil)
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		cl, err := policyd.Dial(w.K, name)
		if err != nil {
			panic(err)
		}
		targets = append(targets, target{
			w:     w,
			probe: w.NewProc(kernel.ProcSpec{UID: 1000, Label: "user_t"}),
		})
		names = append(names, name)
		clients = append(clients, cl)
	}
	pub := policyd.NewPublisher(names, clients)
	defer pub.Close()

	canary := []string{`pftables -A input -s user_t -o FILE_OPEN -j DROP`}
	drain := []string{`pftables -D input --tag canary.pft`}
	res := PolicyPropagation{Worlds: policyWorlds, Rounds: policyRounds * 2}
	var samples []int64
	for round := 0; round < policyRounds*2; round++ {
		t0 := time.Now()
		for _, r := range pub.Apply("canary.pft", canary, 0) {
			if r.Err != "" || !r.Resp.OK {
				panic(fmt.Sprintf("policychurn: canary publish to %s: %s %s", r.Name, r.Err, r.Resp.Err))
			}
		}
		// The publish responses are back, so every engine must already
		// answer with the canary verdict: a stale accept is a lost update.
		for _, tg := range targets {
			if fd, err := tg.probe.Open("/etc/passwd", kernel.O_RDONLY, 0); err == nil {
				tg.probe.Close(fd)
				res.Lost++
			}
		}
		samples = append(samples, time.Since(t0).Nanoseconds())
		for _, r := range pub.Apply("drain.pft", drain, 0) {
			if r.Err != "" || !r.Resp.OK {
				panic(fmt.Sprintf("policychurn: canary drain to %s: %s %s", r.Name, r.Err, r.Resp.Err))
			}
		}
		// And the drain must restore the accept.
		for _, tg := range targets {
			fd, err := tg.probe.Open("/etc/passwd", kernel.O_RDONLY, 0)
			if err != nil {
				res.Lost++
				continue
			}
			tg.probe.Close(fd)
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.P50Ns = percentileNs(samples, 0.50)
	res.MaxNs = float64(samples[len(samples)-1])
	return res
}

// churnWaveLines builds one inert non-entrypoint wave batch (generic-lane
// rules, so every publish exercises the bucket delta compiler).
func churnWaveLines(tag int) []string {
	lines := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		lines = append(lines, fmt.Sprintf(
			`pftables -A input -s {policy_probe_t} -d {scl_obj%02d_t} -o FILE_UNLINK -j DROP`, (tag+i)%24))
	}
	return lines
}

// runPolicyDisturbance measures mediated open+close p99 in paired
// quiet/churning rounds on one world whose rule base is the paper-scale
// 1200 rules.
func runPolicyDisturbance(iters int) PolicyDisturbance {
	cfg := pf.Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: true}
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(rulegen.ScaleRuleBase(1, 1200)); err != nil {
		panic(err)
	}
	srv, err := policyd.Serve(w.K, w.Env, w.Engine, "pfpolicy-disturb", nil)
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	p := parallelProc(w)
	measure := func() []int64 {
		samples := make([]int64, iters)
		for i := range samples {
			t0 := time.Now()
			fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
			if err != nil {
				panic(err)
			}
			p.Close(fd)
			samples[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples
	}

	// The streamer client is dialed once; rounds hand it to one goroutine
	// at a time (measure joins the churner before the next round), so the
	// kernel's single-flow invariant holds.
	cl, err := policyd.Dial(w.K, "pfpolicy-disturb")
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	st0 := w.Engine.PublishStats()
	res := PolicyDisturbance{Rounds: policyRounds, OpsPerSide: iters}
	var quietSum, churnSum, pctSum float64
	for round := 0; round < policyRounds; round++ {
		quiet := percentileNs(measure(), 0.99)

		// Churning side: a background streamer drives wave applies and
		// tag-drains through the daemon for the whole measured window. The
		// round only starts measuring once the first wave landed, so every
		// churn side overlaps at least one real publish.
		var stop atomic.Bool
		done := make(chan struct{})
		ready := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				resp, err := cl.Apply("bench-wave.pft", churnWaveLines(i), 0)
				if err != nil || !resp.OK {
					panic(fmt.Sprintf("policychurn: wave apply: %v %s", err, resp.Err))
				}
				resp, err = cl.Apply("bench-drain.pft",
					[]string{`pftables -D input --tag bench-wave.pft`}, 0)
				if err != nil || !resp.OK {
					panic(fmt.Sprintf("policychurn: wave drain: %v %s", err, resp.Err))
				}
				if i == 0 {
					close(ready)
				}
				if stop.Load() {
					return
				}
			}
		}()
		<-ready
		churn := percentileNs(measure(), 0.99)
		stop.Store(true)
		<-done

		quietSum += quiet
		churnSum += churn
		pct := (churn - quiet) / quiet * 100
		pctSum += pct
		if round == 0 || pct < res.BestRoundPct {
			res.BestRoundPct = pct
		}
	}
	st1 := w.Engine.PublishStats()
	res.QuietP99Ns = quietSum / float64(policyRounds)
	res.ChurnP99Ns = churnSum / float64(policyRounds)
	res.Pct = pctSum / float64(policyRounds)
	res.Publishes = st1.Publishes - st0.Publishes
	res.DeltaCompiles = st1.DeltaCompiles - st0.DeltaCompiles
	res.Requests = w.Engine.Stats.Requests.Load()
	res.Accepts = w.Engine.Stats.Accepts.Load()
	res.Drops = w.Engine.Stats.Drops.Load()
	res.VerdictsConserved = res.Requests == res.Accepts+res.Drops
	return res
}

// percentileNs reads the q-quantile from sorted samples (nearest-rank).
func percentileNs(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i])
}

func mustPolicy(err error) {
	if err != nil {
		panic(err)
	}
}

// FormatPolicyChurn renders the three measurements.
func FormatPolicyChurn(rep PolicyChurnReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Policy publish latency: full recompile vs incremental delta (NumCPU=%d GOMAXPROCS=%d)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %9s\n", "mode", "rules", "ns/publish", "p50 ns", "p99 ns", "speedup")
	for _, c := range rep.Publish {
		speed := ""
		if c.Mode == "incremental" {
			speed = fmt.Sprintf("%8.1fx", rep.SpeedupAt(c.Rules))
		}
		fmt.Fprintf(&b, "%-12s %8d %12.0f %12.0f %12.0f %9s\n",
			c.Mode, c.Rules, c.NsPerPublish, c.P50Ns, c.P99Ns, speed)
	}
	pr := rep.Propagation
	fmt.Fprintf(&b, "Propagation: %d worlds, %d rounds: p50=%.0fns max=%.0fns, %d stale verdicts\n",
		pr.Worlds, pr.Rounds, pr.P50Ns, pr.MaxNs, pr.Lost)
	d := rep.Disturbance
	fmt.Fprintf(&b, "Open p99 disturbance while churning: quiet=%.0fns churn=%.0fns (%+.1f%%, best round %+.1f%%)\n",
		d.QuietP99Ns, d.ChurnP99Ns, d.Pct, d.BestRoundPct)
	fmt.Fprintf(&b, "  churn window: %d publishes (%d incremental); verdicts %d = %d + %d (conserved=%v)\n",
		d.Publishes, d.DeltaCompiles, d.Requests, d.Accepts, d.Drops, d.VerdictsConserved)
	return b.String()
}
