// parallel.go measures multi-core scaling of the mediated hot path: b
// goroutines, each driving its own process (per-process syscall state is
// single-flow by design), hammer the shared read structures — the vfs
// dentry cache, the MAC adversary snapshot, the kernel hook table and the
// PF ruleset — all of which are published through atomic pointers so the
// read side takes no locks. On multicore hardware throughput should scale
// near-linearly with the fan-out; on a single core it stays flat.
package lmbench

import (
	"fmt"
	"sync"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// ParallelFanout is the goroutine grid for the scaling measurement.
var ParallelFanout = []int{1, 4, 8}

// ParallelCell is one (workload, fan-out) measurement.
type ParallelCell struct {
	Workload   string  `json:"workload"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Allocation rate over the measured interval, from runtime.MemStats
	// deltas across all goroutines (the mediation path itself is designed
	// to allocate nothing in the steady state).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ParallelReport is the full scaling run.
type ParallelReport struct {
	BenchEnv
	Cells []ParallelCell `json:"cells"`
}

// parallelProc builds one benchmark process with the standard deep stack.
func parallelProc(w *programs.World) *kernel.Proc {
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	for f := 0; f < 16; f++ {
		p.PushFrame(programs.BinSshd, uint64(0x100+f*0x10))
	}
	p.SyscallSite(programs.BinSshd, 0x300)
	return p
}

// parallelWorkloads are the hot-path operations measured: the mediated
// open+close pair (dcache + two hooks + ruleset walk) and stat (one hook).
var parallelWorkloads = []struct {
	Name string
	Body func(p *kernel.Proc)
}{
	{Name: "open+close", Body: func(p *kernel.Proc) {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			panic(err)
		}
		p.Close(fd)
	}},
	{Name: "stat", Body: func(p *kernel.Proc) {
		if _, err := p.Stat("/etc/passwd"); err != nil {
			panic(err)
		}
	}},
}

// RunParallel measures each workload at each fan-out, itersPerGoroutine
// operations per goroutine, on a fully armed world (EPTSPC configuration
// with the deployment-scale rule base).
func RunParallel(itersPerGoroutine int, fanout []int) ParallelReport {
	if itersPerGoroutine < 1 {
		itersPerGoroutine = 1
	}
	rep := ParallelReport{BenchEnv: Env()}
	for _, wl := range parallelWorkloads {
		for _, g := range fanout {
			cfg := pf.Optimized()
			w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
			if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
				panic(err)
			}
			procs := make([]*kernel.Proc, g)
			for i := range procs {
				procs[i] = parallelProc(w)
				wl.Body(procs[i]) // warm per-process context caches
			}

			var wg sync.WaitGroup
			m0 := readMem()
			start := time.Now()
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(p *kernel.Proc) {
					defer wg.Done()
					for n := 0; n < itersPerGoroutine; n++ {
						wl.Body(p)
					}
				}(procs[i])
			}
			wg.Wait()
			elapsed := time.Since(start)
			m1 := readMemNow()

			ops := g * itersPerGoroutine
			rep.Cells = append(rep.Cells, ParallelCell{
				Workload:    wl.Name,
				Goroutines:  g,
				Ops:         ops,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
				OpsPerSec:   float64(ops) / elapsed.Seconds(),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
			})
		}
	}
	return rep
}

// FormatParallel renders the scaling run as a table with per-workload
// speedup relative to the single-goroutine cell.
func FormatParallel(rep ParallelReport) string {
	out := fmt.Sprintf("%-12s %10s %12s %14s %9s %10s %10s\n",
		"workload", "goroutines", "ns/op", "ops/sec", "speedup", "allocs/op", "B/op")
	base := map[string]float64{}
	for _, c := range rep.Cells {
		if c.Goroutines == 1 {
			base[c.Workload] = c.OpsPerSec
		}
		speedup := 0.0
		if b := base[c.Workload]; b > 0 {
			speedup = c.OpsPerSec / b
		}
		out += fmt.Sprintf("%-12s %10d %12.0f %14.0f %8.2fx %10.2f %10.1f\n",
			c.Workload, c.Goroutines, c.NsPerOp, c.OpsPerSec, speedup, c.AllocsPerOp, c.BytesPerOp)
	}
	out += fmt.Sprintf("(NumCPU=%d GOMAXPROCS=%d — speedup is bounded by available cores)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	return out
}
