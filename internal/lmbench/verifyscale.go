// verifyscale.go measures the symbolic policy verifier — the
// BENCH_verify.json artifact. The question: how does a full invariant
// sweep (pfverify.Check over every abstract point in scope) scale with
// the installed rule-base size? The verifier prunes with the same
// bucket-level dispatch index the hot path compiled (per-lane rule lists
// keyed by op and subject SID), so sweep cost should grow with the label
// universe, not the raw rule count — at deployment scale (10k rules) the
// whole proof must still land under a CI-friendly wall-clock budget.
package lmbench

import (
	"fmt"
	"strings"
	"time"

	"pfirewall/internal/pf"
	"pfirewall/internal/pfverify"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
)

// VerifyScaleSizes is the standard sweep: small, the paper-scale base,
// and deployment scale.
var VerifyScaleSizes = []int{100, 1200, 10000}

// VerifyBudget is the wall-clock budget for one full invariant sweep at
// the largest standard size; the gate (pfbench -verify-gate) enforces it.
const VerifyBudget = 10 * time.Second

// verifyGuardRules are prepended to the synthetic base so the bench
// invariants have something to prove: a subjectless unlink guard on the
// secret label (swept against every interned subject label — the wide
// cell) and a per-subject open guard across the scale objects.
var verifyGuardRules = []string{
	`pftables -I input -d {vrf_secret_t} -o FILE_UNLINK -j DROP`,
	`pftables -I input -s {vrf_guard_t} -d {scl_obj00_t|scl_obj01_t|scl_obj02_t|scl_obj03_t|scl_obj04_t|scl_obj05_t|scl_obj06_t|scl_obj07_t|scl_obj08_t|scl_obj09_t|scl_obj10_t|scl_obj11_t|scl_obj12_t|scl_obj13_t|scl_obj14_t|scl_obj15_t|scl_obj16_t|scl_obj17_t|scl_obj18_t|scl_obj19_t|scl_obj20_t|scl_obj21_t|scl_obj22_t|scl_obj23_t} -o FILE_OPEN -j DROP`,
}

// verifyInvariants are the properties swept at every size. The wide cell
// enumerates every subject label the rule base interned (so its point
// count grows with the base), the narrow cell pins one subject across
// the 24 scale objects.
const verifyInvariants = `
invariant scale-secret-unlink {
    require DROP
    op FILE_UNLINK
    subject any
    object vrf_secret_t
}

invariant scale-guard-open {
    require DROP
    op FILE_OPEN
    subject vrf_guard_t
    object scl_obj??_t
}
`

// VerifyScaleCell is one rule-base size's sweep measurement.
type VerifyScaleCell struct {
	Rules      int `json:"rules"`
	Labels     int `json:"labels"`
	Invariants int `json:"invariants"`
	Points     int `json:"points"`
	// Holds: every invariant proven (the bench seeds no violations, so
	// anything else is a verifier regression).
	Holds      bool    `json:"holds"`
	TotalNs    int64   `json:"total_ns"`
	NsPerPoint float64 `json:"ns_per_point"`
}

// VerifyScaleReport is the full verifier-scale measurement.
type VerifyScaleReport struct {
	BenchEnv
	BudgetNs int64             `json:"budget_ns"`
	Cells    []VerifyScaleCell `json:"cells"`
}

// WithinBudget reports whether the largest swept cell finished inside
// VerifyBudget.
func (rep *VerifyScaleReport) WithinBudget() bool {
	for _, c := range rep.Cells {
		if c.TotalNs > rep.BudgetNs {
			return false
		}
	}
	return true
}

// RunVerifyScale sweeps the bench invariants over synthetic rule bases of
// each size and times the full Check pass (one warm-up sweep per cell, so
// lazily-derived engine state is settled before the measured run).
func RunVerifyScale(sizes []int) VerifyScaleReport {
	if len(sizes) == 0 {
		sizes = VerifyScaleSizes
	}
	rep := VerifyScaleReport{BenchEnv: Env(), BudgetNs: VerifyBudget.Nanoseconds()}
	invs, err := pfverify.ParseInvariants("<verifyscale>", verifyInvariants)
	if err != nil {
		panic(err)
	}
	for _, n := range sizes {
		cfg := pf.Optimized()
		w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
		lines := append(append([]string{}, verifyGuardRules...), rulegen.ScaleRuleBase(1, n)...)
		if _, err := w.InstallRules(lines); err != nil {
			panic(err)
		}
		tbl := w.K.Policy.SIDs()
		ev := pfverify.FromEngine(w.Engine)
		pfverify.Check(ev, tbl, invs) // warm-up
		t0 := time.Now()
		chk := pfverify.Check(pfverify.FromEngine(w.Engine), tbl, invs)
		elapsed := time.Since(t0).Nanoseconds()
		cell := VerifyScaleCell{
			Rules:      w.Engine.RuleCount(),
			Labels:     len(tbl.Labels()),
			Invariants: len(chk.Results),
			Points:     chk.Points,
			Holds:      true,
			TotalNs:    elapsed,
		}
		for _, res := range chk.Results {
			if !res.Holds || !res.Definitely {
				cell.Holds = false
			}
		}
		if chk.Points > 0 {
			cell.NsPerPoint = float64(elapsed) / float64(chk.Points)
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// FormatVerifyScale renders the sweep.
func FormatVerifyScale(rep VerifyScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Verifier scaling: full invariant sweep vs rule-base size (budget %s, NumCPU=%d GOMAXPROCS=%d)\n",
		time.Duration(rep.BudgetNs), rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%8s %8s %6s %8s %6s %12s %10s\n", "rules", "labels", "invs", "points", "holds", "sweep", "ns/point")
	for _, c := range rep.Cells {
		fmt.Fprintf(&b, "%8d %8d %6d %8d %6v %12s %10.0f\n",
			c.Rules, c.Labels, c.Invariants, c.Points, c.Holds,
			time.Duration(c.TotalNs).Round(time.Microsecond), c.NsPerPoint)
	}
	return b.String()
}
