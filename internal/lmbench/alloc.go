// alloc.go measures the allocation behavior of the mediated hot path: the
// number of heap allocations and bytes per operation on a fully armed world
// (EPTSPC configuration, deployment-scale rule base), plus tail latency.
// The pooled request/scratch design is supposed to make the steady-state
// mediation path allocation-free; this harness is the evidence, and the
// bench-alloc-smoke CI gate holds the line at exactly zero for the
// open+close and stat workloads.
package lmbench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// readMem opens a measured interval: it forces a GC first so the cycle's
// own bookkeeping allocations land before the snapshot, then reads the
// allocator counters. Close the interval with readMemNow — a second forced
// GC would charge its ~4 internal allocations to the interval.
func readMem() runtime.MemStats {
	runtime.GC()
	return readMemNow()
}

// readMemNow reads the allocator counters without disturbing them; Mallocs
// and TotalAlloc are monotonic, so no GC is needed for an accurate delta.
func readMemNow() runtime.MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m
}

// AllocCell is one workload's allocation profile on the armed hot path.
type AllocCell struct {
	Workload string `json:"workload"`
	Ops      int    `json:"ops"`
	// NsPerOp comes from a tight loop with no per-op instrumentation, so it
	// is directly comparable to the Table 6 / hotpath numbers.
	NsPerOp float64 `json:"ns_per_op"`
	// P50Ns/P99Ns come from a second, per-op-timed loop over the same body;
	// the clock reads add a fixed overhead to every sample but leave the
	// tail shape intact.
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// AllocReport is the full allocation-profile run.
type AllocReport struct {
	BenchEnv
	Rules int         `json:"rules"`
	Cells []AllocCell `json:"cells"`
}

// allocWorkloads are the profiled bodies. The first four exercise the
// pooled single-syscall path (expected: zero allocations in steady state);
// the mmsg rows exercise the batched burst path, where one syscall's
// gauntlet setup is amortized over eight per-message checks (the receive
// side hands out data slices, so only the send burst can reach zero).
var allocWorkloads = []struct {
	name  string
	setup func(w *programs.World, p *kernel.Proc) func()
}{
	{"null", func(w *programs.World, p *kernel.Proc) func() {
		return func() { p.Getpid() }
	}},
	{"stat", func(w *programs.World, p *kernel.Proc) func() {
		return func() { p.Stat("/etc/passwd") }
	}},
	{"open+close", func(w *programs.World, p *kernel.Proc) func() {
		return func() {
			fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
			if err != nil {
				panic(err)
			}
			p.Close(fd)
		}
	}},
	{"fstat", func(w *programs.World, p *kernel.Proc) func() {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			panic(err)
		}
		return func() { p.Fstat(fd) }
	}},
	{"sendmmsg-8", func(w *programs.World, p *kernel.Proc) func() {
		pr := newIPCPair(w, "abstract", 7001)
		cfd, err := pr.connect()
		if err != nil {
			panic(err)
		}
		afd, err := pr.daemon.Accept(pr.sfd)
		if err != nil {
			panic(err)
		}
		burst := make([][]byte, 8)
		for i := range burst {
			burst[i] = ipcRequest
		}
		return func() {
			if _, err := pr.client.Sendmmsg(cfd, burst); err != nil {
				panic(err)
			}
			// Drain in one burst so the stream buffer stays bounded.
			if _, err := pr.daemon.Recvmmsg(afd, 8, 0); err != nil {
				panic(err)
			}
		}
	}},
}

// RunAlloc profiles each workload for iters operations on an Optimized
// engine carrying the deployment-scale rule base.
func RunAlloc(iters int) AllocReport {
	if iters < 100 {
		iters = 100
	}
	rep := AllocReport{
		BenchEnv: Env(),
		Rules:    FullRuleBaseSize,
	}
	for _, wl := range allocWorkloads {
		cfg := pf.Optimized()
		w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
		if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
			panic(err)
		}
		p := benchProc(w)
		body := wl.setup(w, p)

		// Warm: fill the per-process scratch pools and the entrypoint cache
		// so the measured interval sees only steady-state behavior.
		for i := 0; i < 64; i++ {
			body()
		}

		// Pass 1 — tight loop: mean ns/op and the allocation counters.
		// Pinning to one P for the counted interval keeps background
		// goroutine allocations (GC workers, timers) out of the delta,
		// exactly as testing.AllocsPerRun does.
		prev := runtime.GOMAXPROCS(1)
		m0 := readMem()
		start := time.Now()
		for i := 0; i < iters; i++ {
			body()
		}
		elapsed := time.Since(start)
		m1 := readMemNow()
		runtime.GOMAXPROCS(prev)

		// Pass 2 — per-op timing for the percentiles. The sample slice is
		// allocated before the loop so it does not pollute anything.
		samples := iters
		if samples > 20000 {
			samples = 20000
		}
		lat := make([]float64, samples)
		for i := range lat {
			t0 := time.Now()
			body()
			lat[i] = float64(time.Since(t0).Nanoseconds())
		}
		sort.Float64s(lat)

		rep.Cells = append(rep.Cells, AllocCell{
			Workload:    wl.name,
			Ops:         iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			P50Ns:       lat[samples/2],
			P99Ns:       lat[samples*99/100],
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
		})
	}
	return rep
}

// FormatAlloc renders the allocation profile as a table.
func FormatAlloc(rep AllocReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s %10s\n",
		"workload", "ns/op", "p50 ns", "p99 ns", "allocs/op", "B/op")
	for _, c := range rep.Cells {
		fmt.Fprintf(&b, "%-12s %10.0f %10.0f %10.0f %12.3f %10.1f\n",
			c.Workload, c.NsPerOp, c.P50Ns, c.P99Ns, c.AllocsPerOp, c.BytesPerOp)
	}
	fmt.Fprintf(&b, "(Optimized engine, %d-rule base; allocs/op must be 0 on the single-syscall file rows)\n",
		rep.Rules)
	return b.String()
}
