// env.go is the shared benchmark-environment stamp. Every BENCH_*.json
// report embeds BenchEnv (untagged, so its fields flatten into the outer
// JSON object and the emitted schema is unchanged) instead of hand-rolling
// the same NumCPU/GOMAXPROCS pair per report type.
package lmbench

import "runtime"

// BenchEnv annotates a report with the hardware parallelism actually
// available, so results are interpretable across machines.
type BenchEnv struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Env snapshots the current environment.
func Env() BenchEnv {
	return BenchEnv{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}
