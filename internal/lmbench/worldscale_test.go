package lmbench

import (
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

// TestZeroAllocWorldscale re-runs the allocation tripwire on a worldgen
// world rather than the hand-built bench world: a bigger SID table, MAC
// enforcement on (so every component crosses the DAC→MAC→PF gauntlet),
// per-tenant guard rules installed, and paths several directories deeper
// than /etc/passwd. The steady-state invariant is the same — the mediated
// open+close and stat paths must not allocate at all.
func TestZeroAllocWorldscale(t *testing.T) {
	spec := worldgen.Small
	cfg := pf.Optimized()
	w := worldgen.Build(spec, programs.WorldOpts{PF: &cfg, MACEnforcing: true})

	// A tenant user reading its own web tree: DAC owner match, MAC tenant
	// grants, and the full ruleset dispatch all on the path.
	p := w.NewTenantUser(0, 0)
	shallow := worldgen.WebFilePath(0, 0, 0)
	deep := spec.DeepFilePath(0, 0) // user 0 always gets the deep chain

	bodies := []struct {
		name string
		path string
		body func(path string)
	}{
		{"open+close shallow", shallow, func(path string) {
			fd, err := p.Open(path, kernel.O_RDONLY, 0)
			if err != nil {
				panic(err)
			}
			p.Close(fd)
		}},
		{"open+close deep", deep, func(path string) {
			fd, err := p.Open(path, kernel.O_RDONLY, 0)
			if err != nil {
				panic(err)
			}
			p.Close(fd)
		}},
		{"stat deep", deep, func(path string) {
			if _, err := p.Stat(path); err != nil {
				panic(err)
			}
		}},
	}
	for _, b := range bodies {
		body := func() { b.body(b.path) }
		// Warm the scratch pools, the dcache, and the entrypoint cache.
		for i := 0; i < 64; i++ {
			body()
		}
		if avg := testing.AllocsPerRun(200, body); avg != 0 {
			t.Errorf("%s (%s): %.2f allocs/op on the worldgen hot path, want 0", b.name, b.path, avg)
		}
	}
}
