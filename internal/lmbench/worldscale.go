// worldscale.go sweeps the fleet stress bed across world sizes and fleet
// sizes: for each (world, fleet) cell a deployment-scale world is built
// from scratch (fresh engine, fresh counters), a mixed daemon fleet
// serves traffic against it for a fixed wall-clock budget with live
// process churn, concurrent rule mutation, and adversary filesystem
// noise, and the cell records throughput, mediation-path latency
// percentiles, and the churn/conservation accounting. BENCH_worldscale.json
// is this report; every later performance PR runs against it.
package lmbench

import (
	"fmt"
	"strings"
	"time"

	"pfirewall/internal/fleet"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/worldgen"
)

// WorldScaleFleets is the default fleet-size grid.
var WorldScaleFleets = []int{4, 8}

// WorldScaleSizes is the default world grid: the top size crosses a
// million inodes.
var WorldScaleSizes = []string{"small", "medium", "large"}

// WorldScaleCell is one (world size, fleet size) run.
type WorldScaleCell struct {
	World   string  `json:"world"`
	Inodes  int     `json:"inodes"`
	Users   int     `json:"users"`
	Labels  int     `json:"labels"`
	Rules   int     `json:"rules"`
	BuildMs float64 `json:"build_ms"`

	FleetSize int     `json:"fleet_size"`
	Seconds   float64 `json:"seconds"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns"`
	P999Ns    float64 `json:"p999_ns"`

	Crashes       int64  `json:"crashes"`
	Restarts      int64  `json:"restarts"`
	RuleMutations uint64 `json:"rule_mutations"`
	AdversaryOps  uint64 `json:"adversary_ops"`

	ExpectedDenies    int64 `json:"expected_denies"`
	UnexpectedAllows  int64 `json:"unexpected_allows"`
	UnexpectedErrors  int64 `json:"unexpected_errors"`
	VerdictsConserved bool  `json:"verdicts_conserved"`
}

// WorldScaleReport is the full sweep; BENCH_worldscale.json is this shape.
type WorldScaleReport struct {
	BenchEnv
	Seed        uint64           `json:"seed"`
	SecsPerCell float64          `json:"secs_per_cell"`
	Cells       []WorldScaleCell `json:"cells"`
}

// RunWorldScale runs the sweep. sizes name worldgen presets, fleets are
// instance counts, secsPerCell is the per-cell traffic budget, and seed
// drives both world generation and fleet schedules.
func RunWorldScale(sizes []string, fleets []int, secsPerCell float64, seed uint64) WorldScaleReport {
	if secsPerCell <= 0 {
		secsPerCell = 2
	}
	rep := WorldScaleReport{BenchEnv: Env(), Seed: seed, SecsPerCell: secsPerCell}
	for _, name := range sizes {
		spec, ok := worldgen.SpecByName(name)
		if !ok {
			panic(fmt.Sprintf("worldscale: unknown world size %q", name))
		}
		spec.Seed = seed
		for _, f := range fleets {
			// Fresh world per cell: the engine's verdict counters start at
			// zero, so conservation and throughput are cell-local.
			cfg := pf.Optimized()
			w := worldgen.Build(spec, programs.WorldOpts{PF: &cfg, MACEnforcing: true})
			fl := fleet.New(w, fleet.Config{
				Seed:      seed,
				Instances: f,
				Duration:  time.Duration(secsPerCell * float64(time.Second)),
				RuleChurn: true, ProcChurn: true, AdversaryChurn: true,
			})
			r := fl.Run()
			rep.Cells = append(rep.Cells, WorldScaleCell{
				World:   spec.Name,
				Inodes:  w.Stats.Inodes,
				Users:   w.Stats.Users,
				Labels:  w.Stats.Labels,
				Rules:   w.Stats.Rules,
				BuildMs: w.Stats.BuildMs,

				FleetSize: f,
				Seconds:   r.Seconds,
				Ops:       r.Ops,
				OpsPerSec: r.OpsPerSec,
				P50Ns:     r.P50Ns,
				P99Ns:     r.P99Ns,
				P999Ns:    r.P999Ns,

				Crashes:       r.Crashes,
				Restarts:      r.Restarts,
				RuleMutations: r.RuleMutations,
				AdversaryOps:  r.AdversaryOps,

				ExpectedDenies:    r.ExpectedDenies,
				UnexpectedAllows:  r.UnexpectedAllows,
				UnexpectedErrors:  r.UnexpectedErrors,
				VerdictsConserved: r.VerdictsConserved,
			})
		}
	}
	return rep
}

// FormatWorldScale renders the sweep as a table.
func FormatWorldScale(rep WorldScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %6s %6s %9s %12s %10s %10s %10s %8s %6s\n",
		"world", "inodes", "rules", "fleet", "ops", "ops/sec", "p50 ns", "p99 ns", "p99.9 ns", "denies", "churn")
	for _, c := range rep.Cells {
		churn := fmt.Sprintf("%d/%d", c.Crashes, c.Restarts)
		fmt.Fprintf(&b, "%-8s %9d %6d %6d %9d %12.0f %10.0f %10.0f %10.0f %8d %6s",
			c.World, c.Inodes, c.Rules, c.FleetSize, c.Ops, c.OpsPerSec,
			c.P50Ns, c.P99Ns, c.P999Ns, c.ExpectedDenies, churn)
		if !c.VerdictsConserved {
			fmt.Fprintf(&b, "  VERDICTS-LOST")
		}
		if c.UnexpectedAllows != 0 || c.UnexpectedErrors != 0 {
			fmt.Fprintf(&b, "  UNEXPECTED(a=%d e=%d)", c.UnexpectedAllows, c.UnexpectedErrors)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(NumCPU=%d GOMAXPROCS=%d; one op is a full persona operation — page serve, include, login session, bus round trip — under live rule/process churn; churn is crashes/restarts)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	return b.String()
}
