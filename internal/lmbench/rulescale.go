// rulescale.go measures how per-mediation cost scales with the size of the
// installed rule base — the BENCH_rulescale.json trajectory. Two engine
// modes are compared at each size: "linear" is the paper's fully optimized
// configuration (EPTSPC: context caching, lazy context, entrypoint chains)
// whose generic rules are still walked linearly, and "compiled" adds the
// publish-time dispatch index (pf.Config.RuleIndex), which should hold
// ns/op nearly flat as the rule count grows.
package lmbench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
)

// RuleScaleCell is one (mode, rule-count) measurement.
type RuleScaleCell struct {
	Mode    string  `json:"mode"` // "linear" or "compiled"
	Rules   int     `json:"rules"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
	// Allocation rate over the measured interval (MemStats deltas).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// RuleScaleReport is the full sweep.
type RuleScaleReport struct {
	BenchEnv
	Workload string          `json:"workload"`
	Cells    []RuleScaleCell `json:"cells"`
}

// ruleScaleModes maps report mode names to engine configs. Both sides carry
// every paper optimization so the delta isolates the dispatch index.
var ruleScaleModes = []struct {
	name string
	cfg  pf.Config
}{
	{"linear", pf.Config{CtxCache: true, LazyCtx: true, EptChains: true}},
	{"compiled", pf.Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: true}},
}

// RunRuleScale sweeps the generated rule base over sizes for both modes,
// timing the mediated open+close pair (two PF hooks plus directory-search
// mediation per component — the workload most sensitive to rule-base size).
func RunRuleScale(iters int, sizes []int) RuleScaleReport {
	if iters < 1 {
		iters = 1
	}
	rep := RuleScaleReport{
		BenchEnv: Env(),
		Workload: "open+close",
	}
	for _, m := range ruleScaleModes {
		for _, n := range sizes {
			cfg := m.cfg
			w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
			if _, err := w.InstallRules(rulegen.ScaleRuleBase(1, n)); err != nil {
				panic(err)
			}
			p := parallelProc(w)
			body := func() {
				fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
				if err != nil {
					panic(err)
				}
				p.Close(fd)
			}
			for i := 0; i < iters/10+1; i++ {
				body()
			}
			runtime.GC()
			m0 := readMem()
			start := time.Now()
			for i := 0; i < iters; i++ {
				body()
			}
			el := time.Since(start)
			m1 := readMemNow()
			rep.Cells = append(rep.Cells, RuleScaleCell{
				Mode:        m.name,
				Rules:       n,
				Ops:         iters,
				NsPerOp:     float64(el.Nanoseconds()) / float64(iters),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
			})
		}
	}
	return rep
}

// FormatRuleScale renders the sweep as a table with growth factors
// relative to each mode's smallest size.
func FormatRuleScale(rep RuleScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rule-base scaling, %s (ns/op; NumCPU=%d GOMAXPROCS=%d)\n",
		rep.Workload, rep.NumCPU, rep.GOMAXPROCS)
	fmt.Fprintf(&b, "%-10s %10s %12s %8s %10s\n", "mode", "rules", "ns/op", "vs min", "allocs/op")
	base := map[string]float64{}
	for _, c := range rep.Cells {
		if _, ok := base[c.Mode]; !ok {
			base[c.Mode] = c.NsPerOp
		}
		fmt.Fprintf(&b, "%-10s %10d %12.1f %7.2fx %10.2f\n",
			c.Mode, c.Rules, c.NsPerOp, c.NsPerOp/base[c.Mode], c.AllocsPerOp)
	}
	return b.String()
}
