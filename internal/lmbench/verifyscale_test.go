package lmbench

import "testing"

// TestVerifyScaleSmoke runs the trimmed sweep: both bench invariants must
// be proven at every size and the artifact fields must be populated.
func TestVerifyScaleSmoke(t *testing.T) {
	rep := RunVerifyScale([]int{100, 1200})
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.Holds {
			t.Errorf("invariants not proven at %d rules", c.Rules)
		}
		if c.Invariants != 2 || c.Points == 0 || c.TotalNs <= 0 {
			t.Errorf("cell fields unpopulated: %+v", c)
		}
	}
	if rep.Cells[0].Points >= rep.Cells[1].Points {
		t.Errorf("wide-cell point count should grow with the label universe: %d -> %d",
			rep.Cells[0].Points, rep.Cells[1].Points)
	}
	if !rep.WithinBudget() {
		t.Errorf("trimmed sweep exceeded the budget: %+v", rep.Cells)
	}
	if out := FormatVerifyScale(rep); out == "" {
		t.Error("empty render")
	}
}
