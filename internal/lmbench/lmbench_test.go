package lmbench

import (
	"strings"
	"testing"
)

func TestConfigsMatchPaperColumns(t *testing.T) {
	want := []string{"DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC"}
	cfgs := Configs()
	if len(cfgs) != len(want) {
		t.Fatalf("configs = %d, want %d", len(cfgs), len(want))
	}
	for i, c := range cfgs {
		if c.Name != want[i] {
			t.Errorf("config %d = %q, want %q", i, c.Name, want[i])
		}
	}
	// Monotone optimization flags, as in the paper: "each column except
	// the last incorporates optimizations of the previous column".
	if cfgs[3].Engine.CtxCache != true || cfgs[4].Engine.LazyCtx != true || cfgs[5].Engine.EptChains != true {
		t.Error("optimization flags not cumulative")
	}
}

func TestWorkloadsMatchPaperRows(t *testing.T) {
	want := []string{"null", "stat", "read", "write", "fstat", "open+close",
		"fork+exit", "fork+execve", "fork+sh -c"}
	wls := Workloads()
	if len(wls) != len(want) {
		t.Fatalf("workloads = %d, want %d", len(wls), len(want))
	}
	for i, wl := range wls {
		if wl.Name != want[i] {
			t.Errorf("workload %d = %q, want %q", i, wl.Name, want[i])
		}
	}
}

func TestSyntheticRuleBaseSizeAndValidity(t *testing.T) {
	rules := SyntheticRuleBase(FullRuleBaseSize)
	if len(rules) != 1218 {
		t.Fatalf("rule base = %d, want 1218 (the paper's deployment size)", len(rules))
	}
	// Every rule must install (World panics otherwise).
	w := World(Config{Name: "FULL", Attach: true, Rules: true})
	if got := w.Engine.RuleCount(); got != 1218 {
		t.Errorf("installed = %d, want 1218", got)
	}
}

func TestEveryWorkloadRunsUnderEveryConfig(t *testing.T) {
	// Smoke: each cell completes a few iterations without error and
	// reports a positive latency.
	for _, wl := range Workloads() {
		for _, cfg := range Configs() {
			m := RunCell(wl, cfg, 20)
			if m.NsPerOp <= 0 {
				t.Errorf("%s/%s: ns/op = %v", wl.Name, cfg.Name, m.NsPerOp)
			}
			if m.Workload != wl.Name || m.Config != cfg.Name {
				t.Errorf("cell labels wrong: %+v", m)
			}
		}
	}
}

func TestFormatTable6Layout(t *testing.T) {
	cells := []Measurement{
		{Workload: "stat", Config: "DISABLED", NsPerOp: 100},
		{Workload: "stat", Config: "BASE", NsPerOp: 110},
		{Workload: "stat", Config: "FULL", NsPerOp: 200},
		{Workload: "stat", Config: "CONCACHE", NsPerOp: 180},
		{Workload: "stat", Config: "LAZYCON", NsPerOp: 170},
		{Workload: "stat", Config: "EPTSPC", NsPerOp: 111},
	}
	out := FormatTable6(cells)
	if !strings.Contains(out, "stat") || !strings.Contains(out, "+10.0%") || !strings.Contains(out, "+100.0%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestEptspcBeatsFullScan(t *testing.T) {
	// The core Table 6 claim, asserted as an inequality rather than a
	// number: with the 1218-rule base, the fully optimized engine is much
	// cheaper per open than the unoptimized one.
	wl := Workloads()[5] // open+close
	full := RunCell(wl, Configs()[2], 400)
	ept := RunCell(wl, Configs()[5], 400)
	if ept.NsPerOp*5 > full.NsPerOp {
		t.Errorf("EPTSPC (%v ns) should be at least 5x cheaper than FULL (%v ns)",
			ept.NsPerOp, full.NsPerOp)
	}
}
