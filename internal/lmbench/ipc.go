// ipc.go measures the mediated IPC rendezvous and data plane across the
// three socket namespaces. Each goroutine drives its own daemon/client
// process pair through a full round trip — connect, accept, request,
// reply, close — so every iteration crosses the firewall at the connect,
// accept, send and recv hooks while the namespace registries (atomic COW
// maps, like the dcache) are hit concurrently from every goroutine.
package lmbench

import (
	"fmt"
	"sync"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// IPCCell is one (namespace, fan-out) measurement; an "op" is one complete
// round trip (connect + accept + two sends + two recvs + two closes).
type IPCCell struct {
	Namespace  string  `json:"namespace"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Allocation rate over the measured interval (MemStats deltas). The
	// data plane hands out received byte slices, so IPC cells are not
	// zero-alloc; the number tracks the mediation overhead trend.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// IPCReport is the full IPC scaling run.
type IPCReport struct {
	BenchEnv
	Cells []IPCCell `json:"cells"`
}

// ipcNamespaces are the three rendezvous spaces: filesystem sockets walk
// the vfs on every connect, the abstract and port namespaces only touch
// the IPC registry.
var ipcNamespaces = []string{"fs", "abstract", "port"}

// ipcPair is one daemon/client pairing with its private listener.
type ipcPair struct {
	daemon  *kernel.Proc
	client  *kernel.Proc
	sfd     int
	connect func() (int, error)
}

var ipcRequest = []byte("GET job\n")
var ipcReply = []byte("OK job\n")

// newIPCPair binds a listener in the given namespace under a key unique to
// this pair index and returns the ready-to-run pairing.
func newIPCPair(w *programs.World, ns string, i int) ipcPair {
	daemon := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "dbusd_t", Exec: programs.BinDbusD})
	client := parallelProc(w)
	var sfd int
	var err error
	var connect func() (int, error)
	switch ns {
	case "fs":
		path := fmt.Sprintf("/tmp/ipcbench-%d", i)
		if sfd, err = daemon.Bind(path, 0o666); err != nil {
			panic(err)
		}
		connect = func() (int, error) { return client.Connect(path) }
	case "abstract":
		name := fmt.Sprintf("ipcbench-%d", i)
		if sfd, err = daemon.BindAbstract(name); err != nil {
			panic(err)
		}
		connect = func() (int, error) { return client.ConnectAbstract(name) }
	case "port":
		port := uint16(9000 + i)
		if sfd, err = daemon.BindPort(port); err != nil {
			panic(err)
		}
		connect = func() (int, error) { return client.ConnectPort(port) }
	default:
		panic("unknown namespace " + ns)
	}
	if err := daemon.Listen(sfd, 16); err != nil {
		panic(err)
	}
	return ipcPair{daemon: daemon, client: client, sfd: sfd, connect: connect}
}

// roundTrip is the measured body: a complete client/daemon exchange.
// Connect enqueues the pending pair synchronously, so Accept never spins.
func (pr ipcPair) roundTrip() {
	cfd, err := pr.connect()
	if err != nil {
		panic(err)
	}
	afd, err := pr.daemon.Accept(pr.sfd)
	if err != nil {
		panic(err)
	}
	if _, err := pr.client.Send(cfd, ipcRequest); err != nil {
		panic(err)
	}
	if _, err := pr.daemon.Recv(afd, 0); err != nil {
		panic(err)
	}
	if _, err := pr.daemon.Send(afd, ipcReply); err != nil {
		panic(err)
	}
	if _, err := pr.client.Recv(cfd, 0); err != nil {
		panic(err)
	}
	pr.client.Close(cfd)
	pr.daemon.Close(afd)
}

// RunIPC measures each namespace at each fan-out, itersPerGoroutine round
// trips per goroutine, on a fully armed world (EPTSPC configuration with
// the deployment-scale rule base).
func RunIPC(itersPerGoroutine int, fanout []int) IPCReport {
	if itersPerGoroutine < 1 {
		itersPerGoroutine = 1
	}
	rep := IPCReport{BenchEnv: Env()}
	for _, ns := range ipcNamespaces {
		for _, g := range fanout {
			cfg := pf.Optimized()
			w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
			if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
				panic(err)
			}
			pairs := make([]ipcPair, g)
			for i := range pairs {
				pairs[i] = newIPCPair(w, ns, i)
				pairs[i].roundTrip() // warm per-process context caches
			}

			var wg sync.WaitGroup
			m0 := readMem()
			start := time.Now()
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(pr ipcPair) {
					defer wg.Done()
					for n := 0; n < itersPerGoroutine; n++ {
						pr.roundTrip()
					}
				}(pairs[i])
			}
			wg.Wait()
			elapsed := time.Since(start)
			m1 := readMemNow()

			ops := g * itersPerGoroutine
			rep.Cells = append(rep.Cells, IPCCell{
				Namespace:   ns,
				Goroutines:  g,
				Ops:         ops,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
				OpsPerSec:   float64(ops) / elapsed.Seconds(),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
			})
		}
	}
	return rep
}

// FormatIPC renders the IPC scaling run as a table with per-namespace
// speedup relative to the single-goroutine cell.
func FormatIPC(rep IPCReport) string {
	out := fmt.Sprintf("%-10s %10s %12s %14s %9s %10s %10s\n",
		"namespace", "goroutines", "ns/op", "ops/sec", "speedup", "allocs/op", "B/op")
	base := map[string]float64{}
	for _, c := range rep.Cells {
		if c.Goroutines == 1 {
			base[c.Namespace] = c.OpsPerSec
		}
		speedup := 0.0
		if b := base[c.Namespace]; b > 0 {
			speedup = c.OpsPerSec / b
		}
		out += fmt.Sprintf("%-10s %10d %12.0f %14.0f %8.2fx %10.2f %10.1f\n",
			c.Namespace, c.Goroutines, c.NsPerOp, c.OpsPerSec, speedup, c.AllocsPerOp, c.BytesPerOp)
	}
	out += fmt.Sprintf("(NumCPU=%d GOMAXPROCS=%d — one op is a full connect/accept/send/recv/close round trip)\n",
		rep.NumCPU, rep.GOMAXPROCS)
	return out
}
