package lmbench

import (
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// TestZeroAllocHotPath is the allocation regression tripwire: on a fully
// armed world (Optimized engine, deployment-scale rule base) the mediated
// open+close and stat paths must not allocate at all in steady state. Any
// new heap traffic on these paths — a request built outside the pool, an
// escape in the resolver, a formatted string in a context module — fails
// this test before it ever shows up as a latency regression.
func TestZeroAllocHotPath(t *testing.T) {
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
	if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
		t.Fatal(err)
	}
	p := benchProc(w)

	bodies := []struct {
		name string
		body func()
	}{
		{"open+close", func() {
			fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
			if err != nil {
				panic(err)
			}
			p.Close(fd)
		}},
		{"stat", func() {
			if _, err := p.Stat("/etc/passwd"); err != nil {
				panic(err)
			}
		}},
	}
	for _, b := range bodies {
		// Warm the scratch pools, the dcache, and the entrypoint cache.
		for i := 0; i < 64; i++ {
			b.body()
		}
		if avg := testing.AllocsPerRun(200, b.body); avg != 0 {
			t.Errorf("%s: %.2f allocs/op on the armed hot path, want 0", b.name, avg)
		}
	}
}

// TestZeroAllocTracingDisabled pins the decision-provenance gate's cheap
// side: with the metrics layer attached but TraceEvery zero, the span
// machinery must cost nothing on the armed open+close path — the only
// admissible residue is the single tracer-nil branch per filter site.
func TestZeroAllocTracingDisabled(t *testing.T) {
	w := traceWorld(true, DefaultObsSampleEvery, 0)
	p := benchProc(w)
	body := func() {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			panic(err)
		}
		p.Close(fd)
	}
	for i := 0; i < 64; i++ {
		body()
	}
	if avg := testing.AllocsPerRun(200, body); avg != 0 {
		t.Errorf("open+close with tracing disabled: %.2f allocs/op, want 0", avg)
	}
}

// TestSampledTracingAllocBounded keeps the sampled side honest: with every
// mediated syscall carrying a provenance span (TraceEvery 1, the most
// expensive setting), steady-state span capture must stay allocation-free
// — the span lives by value in the mediation scratch state and the flight
// ring is preallocated.
func TestSampledTracingAllocBounded(t *testing.T) {
	w := traceWorld(true, DefaultObsSampleEvery, 1)
	p := benchProc(w)
	body := func() {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			panic(err)
		}
		p.Close(fd)
	}
	for i := 0; i < 64; i++ {
		body()
	}
	if avg := testing.AllocsPerRun(200, body); avg != 0 {
		t.Errorf("open+close with TraceEvery=1: %.2f allocs/op, want 0", avg)
	}
}
