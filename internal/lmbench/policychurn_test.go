package lmbench

import "testing"

// TestPolicyChurnSmoke runs the whole control-plane measurement at tiny
// parameters and checks the structural invariants the pfbench gate reads.
func TestPolicyChurnSmoke(t *testing.T) {
	rep := RunPolicyChurn(20, 200, []int{100, 400})
	if len(rep.Publish) != 4 {
		t.Fatalf("publish sweep has %d cells, want 4", len(rep.Publish))
	}
	for _, c := range rep.Publish {
		if c.NsPerPublish <= 0 || c.Publishes == 0 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
	if s := rep.SpeedupAt(rep.MaxPublishSize()); s <= 0 {
		t.Errorf("no speedup computable at max size (got %f)", s)
	}
	if rep.Propagation.Lost != 0 {
		t.Errorf("%d stale verdicts after synchronous publishes", rep.Propagation.Lost)
	}
	if rep.Propagation.MaxNs <= 0 {
		t.Error("propagation measured nothing")
	}
	d := rep.Disturbance
	if !d.VerdictsConserved {
		t.Errorf("verdicts not conserved: %d != %d + %d", d.Requests, d.Accepts, d.Drops)
	}
	if d.Publishes == 0 || d.DeltaCompiles == 0 {
		t.Errorf("churn side published nothing (%d publishes, %d delta)", d.Publishes, d.DeltaCompiles)
	}
	if d.QuietP99Ns <= 0 || d.ChurnP99Ns <= 0 {
		t.Error("disturbance percentiles degenerate")
	}
	_ = FormatPolicyChurn(rep)
}
