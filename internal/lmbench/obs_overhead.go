// obs_overhead.go measures what the observability layer costs on the two
// contended hot paths: the mediated open+close pair and the abstract-socket
// round trip. Each cell runs the identical workload twice — once on a world
// without a metrics registry (the disabled path is a single atomic pointer
// load per mediation) and once with metrics attached at the given sampling
// period — and reports the relative slowdown. The issue budget is 5%.
package lmbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// DefaultObsSampleEvery is the latency sampling period used when none is
// given — the same default kernel.AttachObs applies.
const DefaultObsSampleEvery = 16

// DefaultTraceEvery is the provenance-span sampling period the trace
// overhead comparison uses when none is given: one syscall in sixteen
// (the same period as latency sampling) carries a full provenance span
// through the gauntlet, which keeps the open path inside the 10% budget.
const DefaultTraceEvery = 16

// ObsCell is one (workload, fan-out) off/on comparison. OverheadPct
// compares each side's best round (the least-interfered run of each);
// BestRoundPct is the minimum overhead across *paired* rounds — each
// round's off and on runs are adjacent in time, so interference that hits
// both cancels in the ratio, making it the robust statistic for gating on
// loaded or throttled machines.
type ObsCell struct {
	Workload     string  `json:"workload"`
	Goroutines   int     `json:"goroutines"`
	Ops          int     `json:"ops"`
	OffNsPerOp   float64 `json:"off_ns_per_op"`
	OnNsPerOp    float64 `json:"on_ns_per_op"`
	OverheadPct  float64 `json:"overhead_pct"`
	BestRoundPct float64 `json:"best_round_overhead_pct"`
}

// ObsReport is the full overhead run; BENCH_obs.json is this shape. The
// trace fields are present when the decision-provenance comparison ran:
// there "off" is a metrics-attached world with tracing disabled and "on"
// is the same world sampling one syscall in TraceEvery, so the cells
// isolate what span capture costs on top of the metrics layer.
type ObsReport struct {
	BenchEnv
	SampleEvery int       `json:"sample_every"`
	Cells       []ObsCell `json:"cells,omitempty"`
	TraceEvery  int       `json:"trace_every,omitempty"`
	TraceCells  []ObsCell `json:"trace_cells,omitempty"`
}

// obsWorld builds the benchmark world (EPTSPC configuration,
// deployment-scale rule base), optionally with the metrics layer attached.
func obsWorld(withObs bool, sampleEvery int) *programs.World {
	return traceWorld(withObs, sampleEvery, 0)
}

// traceWorld is obsWorld plus an optional provenance-span sampling period.
func traceWorld(withObs bool, sampleEvery, traceEvery int) *programs.World {
	cfg := pf.Optimized()
	wopts := programs.WorldOpts{PF: &cfg}
	if withObs {
		wopts.Obs = obs.New()
		wopts.ObsEvery = sampleEvery
		wopts.TraceEvery = traceEvery
	}
	w := programs.NewWorld(wopts)
	if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
		panic(err)
	}
	return w
}

// RunObsOverhead runs the off/on comparison for each workload at each
// fan-out. sampleEvery <= 0 selects the default period.
func RunObsOverhead(itersPerGoroutine, sampleEvery int, fanout []int) ObsReport {
	if itersPerGoroutine < 1 {
		itersPerGoroutine = 1
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultObsSampleEvery
	}
	rep := ObsReport{BenchEnv: Env(), SampleEvery: sampleEvery}
	workloads := []obsWorkload{
		{"open+close", runObsOpen},
		{"ipc/abstract", runObsIPC},
	}
	rep.Cells = obsCompare(itersPerGoroutine, fanout, workloads,
		func() *programs.World { return obsWorld(false, sampleEvery) },
		func() *programs.World { return obsWorld(true, sampleEvery) })
	return rep
}

// RunTraceOverhead runs the decision-provenance comparison: both sides
// carry the metrics layer, the "on" side additionally samples one syscall
// in traceEvery into a full provenance span. traceEvery <= 0 selects the
// default period.
func RunTraceOverhead(itersPerGoroutine, sampleEvery, traceEvery int, fanout []int) ObsReport {
	if itersPerGoroutine < 1 {
		itersPerGoroutine = 1
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultObsSampleEvery
	}
	if traceEvery <= 0 {
		traceEvery = DefaultTraceEvery
	}
	rep := ObsReport{BenchEnv: Env(), SampleEvery: sampleEvery, TraceEvery: traceEvery}
	// The file workload here is a three-syscall loop, coprime with the
	// power-of-two sampling mask: a two-syscall open+close loop pins the
	// sampled slot to whichever syscall the counter phase happens to
	// select (all opens, or all unmediated closes), making the measured
	// span rate bimodal across runs. Three slots rotate through every
	// residue, so the rate — and the overhead — is phase-independent.
	workloads := []obsWorkload{
		{"open+stat+close", runTraceOpen},
		{"ipc/abstract", runObsIPC},
	}
	rep.TraceCells = obsCompare(itersPerGoroutine, fanout, workloads,
		func() *programs.World { return traceWorld(true, sampleEvery, 0) },
		func() *programs.World { return traceWorld(true, sampleEvery, traceEvery) })
	return rep
}

// obsWorkload is one named hot-path body the off/on comparison times.
type obsWorkload struct {
	name string
	run  func(w *programs.World, g, iters int) (int, float64)
}

// obsCompare times every (workload, fan-out) cell on fresh worlds from
// offWorld and onWorld and reports the relative slowdown.
func obsCompare(itersPerGoroutine int, fanout []int, workloads []obsWorkload, offWorld, onWorld func() *programs.World) []ObsCell {
	// Each cell is the best of obsRounds fresh-world runs, with off and on
	// rounds interleaved so slow drift (GC pressure, thermal, scheduler)
	// hits both sides equally; the minimum is the least-interfered run.
	const obsRounds = 5
	var cells []ObsCell
	for _, wl := range workloads {
		for _, g := range fanout {
			opsOff, off, on, bestPct := 0, 0.0, 0.0, 0.0
			for r := 0; r < obsRounds; r++ {
				ops, offR := wl.run(offWorld(), g, itersPerGoroutine)
				_, onR := wl.run(onWorld(), g, itersPerGoroutine)
				if r == 0 || offR < off {
					opsOff, off = ops, offR
				}
				if r == 0 || onR < on {
					on = onR
				}
				if pct := (onR - offR) / offR * 100; r == 0 || pct < bestPct {
					bestPct = pct
				}
			}
			cells = append(cells, ObsCell{
				Workload:     wl.name,
				Goroutines:   g,
				Ops:          opsOff,
				OffNsPerOp:   off,
				OnNsPerOp:    on,
				OverheadPct:  (on - off) / off * 100,
				BestRoundPct: bestPct,
			})
		}
	}
	return cells
}

// runObsOpen times the mediated open+close pair, mirroring RunParallel.
func runObsOpen(w *programs.World, g, itersPerGoroutine int) (int, float64) {
	wl := parallelWorkloads[0] // open+close
	return obsTimed(g, itersPerGoroutine, func(i int) func() {
		p := parallelProc(w)
		wl.Body(p) // warm per-process context caches
		return func() { wl.Body(p) }
	})
}

// runTraceOpen times the mediated open+stat+close triple the tracing
// comparison uses (see RunTraceOverhead for why three syscalls).
func runTraceOpen(w *programs.World, g, itersPerGoroutine int) (int, float64) {
	body := func(p *kernel.Proc) {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			panic(err)
		}
		if _, err := p.Stat("/etc/passwd"); err != nil {
			panic(err)
		}
		p.Close(fd)
	}
	return obsTimed(g, itersPerGoroutine, func(i int) func() {
		p := parallelProc(w)
		body(p) // warm per-process context caches
		return func() { body(p) }
	})
}

// runObsIPC times the abstract-namespace round trip, mirroring RunIPC.
func runObsIPC(w *programs.World, g, itersPerGoroutine int) (int, float64) {
	return obsTimed(g, itersPerGoroutine, func(i int) func() {
		pr := newIPCPair(w, "abstract", i)
		pr.roundTrip() // warm per-process context caches
		return func() { pr.roundTrip() }
	})
}

// obsTimed builds g per-goroutine bodies, then times itersPerGoroutine
// calls of each concurrently.
func obsTimed(g, itersPerGoroutine int, build func(i int) func()) (int, float64) {
	bodies := make([]func(), g)
	for i := range bodies {
		bodies[i] = build(i)
	}
	// Collect the construction garbage (a fresh world per round installs a
	// deployment-scale ruleset) before the timer starts, so the collector
	// does not fire inside one side's window and skew the comparison.
	runtime.GC()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(body func()) {
			defer wg.Done()
			for n := 0; n < itersPerGoroutine; n++ {
				body()
			}
		}(bodies[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := g * itersPerGoroutine
	return ops, float64(elapsed.Nanoseconds()) / float64(ops)
}

// FormatObsOverhead renders the off/on comparison as a table.
func FormatObsOverhead(rep ObsReport) string {
	out := fmt.Sprintf("%-14s %10s %13s %13s %9s\n",
		"workload", "goroutines", "off ns/op", "on ns/op", "overhead")
	for _, c := range rep.Cells {
		out += fmt.Sprintf("%-14s %10d %13.0f %13.0f %8.1f%%\n",
			c.Workload, c.Goroutines, c.OffNsPerOp, c.OnNsPerOp, c.OverheadPct)
	}
	out += fmt.Sprintf("(NumCPU=%d GOMAXPROCS=%d sample_every=%d — counters are exact, latency is sampled)\n",
		rep.NumCPU, rep.GOMAXPROCS, rep.SampleEvery)
	return out
}

// FormatTraceOverhead renders the tracing-disabled vs tracing-sampled
// comparison as a table.
func FormatTraceOverhead(rep ObsReport) string {
	out := fmt.Sprintf("%-15s %10s %13s %13s %9s %11s\n",
		"workload", "goroutines", "no-trace ns", "trace ns", "overhead", "best-round")
	for _, c := range rep.TraceCells {
		out += fmt.Sprintf("%-15s %10d %13.0f %13.0f %8.1f%% %10.1f%%\n",
			c.Workload, c.Goroutines, c.OffNsPerOp, c.OnNsPerOp, c.OverheadPct, c.BestRoundPct)
	}
	out += fmt.Sprintf("(NumCPU=%d GOMAXPROCS=%d trace_every=%d — both sides carry metrics; on adds provenance spans)\n",
		rep.NumCPU, rep.GOMAXPROCS, rep.TraceEvery)
	return out
}
