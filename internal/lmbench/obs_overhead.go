// obs_overhead.go measures what the observability layer costs on the two
// contended hot paths: the mediated open+close pair and the abstract-socket
// round trip. Each cell runs the identical workload twice — once on a world
// without a metrics registry (the disabled path is a single atomic pointer
// load per mediation) and once with metrics attached at the given sampling
// period — and reports the relative slowdown. The issue budget is 5%.
package lmbench

import (
	"fmt"
	"sync"
	"time"

	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// DefaultObsSampleEvery is the latency sampling period used when none is
// given — the same default kernel.AttachObs applies.
const DefaultObsSampleEvery = 16

// ObsCell is one (workload, fan-out) off/on comparison.
type ObsCell struct {
	Workload    string  `json:"workload"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsReport is the full overhead run; BENCH_obs.json is this shape.
type ObsReport struct {
	BenchEnv
	SampleEvery int       `json:"sample_every"`
	Cells       []ObsCell `json:"cells"`
}

// obsWorld builds the benchmark world (EPTSPC configuration,
// deployment-scale rule base), optionally with the metrics layer attached.
func obsWorld(withObs bool, sampleEvery int) *programs.World {
	cfg := pf.Optimized()
	wopts := programs.WorldOpts{PF: &cfg}
	if withObs {
		wopts.Obs = obs.New()
		wopts.ObsEvery = sampleEvery
	}
	w := programs.NewWorld(wopts)
	if _, err := w.InstallRules(SyntheticRuleBase(FullRuleBaseSize)); err != nil {
		panic(err)
	}
	return w
}

// RunObsOverhead runs the off/on comparison for each workload at each
// fan-out. sampleEvery <= 0 selects the default period.
func RunObsOverhead(itersPerGoroutine, sampleEvery int, fanout []int) ObsReport {
	if itersPerGoroutine < 1 {
		itersPerGoroutine = 1
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultObsSampleEvery
	}
	rep := ObsReport{BenchEnv: Env(), SampleEvery: sampleEvery}
	workloads := []struct {
		name string
		run  func(w *programs.World, g, iters int) (int, float64)
	}{
		{"open+close", runObsOpen},
		{"ipc/abstract", runObsIPC},
	}
	// Each cell is the best of obsRounds fresh-world runs, with off and on
	// rounds interleaved so slow drift (GC pressure, thermal, scheduler)
	// hits both sides equally; the minimum is the least-interfered run.
	const obsRounds = 5
	for _, wl := range workloads {
		for _, g := range fanout {
			opsOff, off, on := 0, 0.0, 0.0
			for r := 0; r < obsRounds; r++ {
				ops, offR := wl.run(obsWorld(false, sampleEvery), g, itersPerGoroutine)
				_, onR := wl.run(obsWorld(true, sampleEvery), g, itersPerGoroutine)
				if r == 0 || offR < off {
					opsOff, off = ops, offR
				}
				if r == 0 || onR < on {
					on = onR
				}
			}
			rep.Cells = append(rep.Cells, ObsCell{
				Workload:    wl.name,
				Goroutines:  g,
				Ops:         opsOff,
				OffNsPerOp:  off,
				OnNsPerOp:   on,
				OverheadPct: (on - off) / off * 100,
			})
		}
	}
	return rep
}

// runObsOpen times the mediated open+close pair, mirroring RunParallel.
func runObsOpen(w *programs.World, g, itersPerGoroutine int) (int, float64) {
	wl := parallelWorkloads[0] // open+close
	return obsTimed(g, itersPerGoroutine, func(i int) func() {
		p := parallelProc(w)
		wl.Body(p) // warm per-process context caches
		return func() { wl.Body(p) }
	})
}

// runObsIPC times the abstract-namespace round trip, mirroring RunIPC.
func runObsIPC(w *programs.World, g, itersPerGoroutine int) (int, float64) {
	return obsTimed(g, itersPerGoroutine, func(i int) func() {
		pr := newIPCPair(w, "abstract", i)
		pr.roundTrip() // warm per-process context caches
		return func() { pr.roundTrip() }
	})
}

// obsTimed builds g per-goroutine bodies, then times itersPerGoroutine
// calls of each concurrently.
func obsTimed(g, itersPerGoroutine int, build func(i int) func()) (int, float64) {
	bodies := make([]func(), g)
	for i := range bodies {
		bodies[i] = build(i)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(body func()) {
			defer wg.Done()
			for n := 0; n < itersPerGoroutine; n++ {
				body()
			}
		}(bodies[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := g * itersPerGoroutine
	return ops, float64(elapsed.Nanoseconds()) / float64(ops)
}

// FormatObsOverhead renders the off/on comparison as a table.
func FormatObsOverhead(rep ObsReport) string {
	out := fmt.Sprintf("%-14s %10s %13s %13s %9s\n",
		"workload", "goroutines", "off ns/op", "on ns/op", "overhead")
	for _, c := range rep.Cells {
		out += fmt.Sprintf("%-14s %10d %13.0f %13.0f %8.1f%%\n",
			c.Workload, c.Goroutines, c.OffNsPerOp, c.OnNsPerOp, c.OverheadPct)
	}
	out += fmt.Sprintf("(NumCPU=%d GOMAXPROCS=%d sample_every=%d — counters are exact, latency is sampled)\n",
		rep.NumCPU, rep.GOMAXPROCS, rep.SampleEvery)
	return out
}
