package rulegen

import (
	"strings"
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
	"pfirewall/internal/trace"
)

// mkRecs builds a record sequence for one entrypoint: 'h' = high access,
// 'l' = low access.
func mkRecs(prog string, off uint64, pattern string) []trace.Record {
	var out []trace.Record
	for i, c := range pattern {
		r := trace.Record{
			Program: prog, Entrypoint: off, Op: "FILE_OPEN",
			ObjectLabel: "lib_t", ResourceID: uint64(i),
		}
		if c == 'l' {
			r.ObjectLabel = "tmp_t"
			r.AdvWrite = true
		}
		out = append(out, r)
	}
	return out
}

func storeOf(groups ...[]trace.Record) *trace.Store {
	s := trace.NewStore()
	for _, g := range groups {
		for _, r := range g {
			s.Add(r)
		}
	}
	return s
}

func TestClassify(t *testing.T) {
	cases := []struct {
		pattern string
		n       int
		want    Class
	}{
		{"hhhh", 0, ClassHighOnly},
		{"llll", 0, ClassLowOnly},
		{"hhl", 0, ClassBoth},
		{"hhl", 2, ClassHighOnly}, // flip not yet observed
		{"hhl", 3, ClassBoth},
		{"", 0, ClassUnknown},
	}
	for _, c := range cases {
		recs := mkRecs("/p", 1, c.pattern)
		if got := classify(recs, c.n); got != c.want {
			t.Errorf("classify(%q, %d) = %v, want %v", c.pattern, c.n, got, c.want)
		}
	}
}

func TestTable8SmallTrace(t *testing.T) {
	// Three entrypoints: pure high (10 invocations), pure low (3),
	// flips at invocation 4 (6 invocations).
	s := storeOf(
		mkRecs("/a", 1, "hhhhhhhhhh"),
		mkRecs("/b", 2, "lll"),
		mkRecs("/c", 3, "hhhlhl"),
	)
	rows := Table8(s, []int{0, 5})

	r0 := rows[0]
	if r0.HighOnly != 2 || r0.LowOnly != 1 || r0.Both != 0 {
		t.Errorf("t=0: %+v", r0)
	}
	// All three are invoked ≥1 and classified H/L on the first
	// invocation → 3 rules; /c later flips → 1 false positive.
	if r0.Rules != 3 || r0.FalsePos != 1 {
		t.Errorf("t=0 rules/fp: %+v", r0)
	}

	r5 := rows[1]
	// By invocation 5, /c has flipped → both; /b has only 3 invocations.
	if r5.Both != 1 || r5.HighOnly != 1 || r5.LowOnly != 1 {
		t.Errorf("t=5 classes: %+v", r5)
	}
	// Rules at t=5: only /a qualifies (≥5 invocations, high-only).
	if r5.Rules != 1 || r5.FalsePos != 0 {
		t.Errorf("t=5 rules/fp: %+v", r5)
	}
}

func TestTable8SyntheticMatchesPaperShape(t *testing.T) {
	s := SyntheticDeployment(42)
	rows := Table8(s, PaperThresholds)

	want := map[int]Table8Row{
		0:    {Threshold: 0, HighOnly: 4570, LowOnly: 664, Both: 0, Rules: 5234, FalsePos: 525},
		1149: {Threshold: 1149, HighOnly: 4229, LowOnly: 480, Both: 525, FalsePos: 0},
	}
	byT := map[int]Table8Row{}
	for _, r := range rows {
		byT[r.Threshold] = r
	}

	// Exact population invariants.
	r0 := byT[0]
	if r0.HighOnly+r0.LowOnly+r0.Both != SynTotalEps {
		t.Errorf("t=0 classes sum to %d, want %d", r0.HighOnly+r0.LowOnly+r0.Both, SynTotalEps)
	}
	if r0.Both != 0 {
		t.Errorf("t=0 Both = %d, want 0 (single invocation cannot be both)", r0.Both)
	}
	if r0.Rules != 5234 || r0.FalsePos != 525 {
		t.Errorf("t=0 = %+v, want rules=5234 fp=525", r0)
	}
	if w := want[0]; r0.HighOnly != w.HighOnly || r0.LowOnly != w.LowOnly {
		t.Errorf("t=0 = %+v, want %+v", r0, w)
	}

	r1149 := byT[1149]
	if r1149.Both != 525 || r1149.FalsePos != 0 {
		t.Errorf("t=1149 = %+v, want both=525 fp=0 (the paper's safe threshold)", r1149)
	}
	if r1149.HighOnly != 4229 || r1149.LowOnly != 480 {
		t.Errorf("t=1149 classes = %+v", r1149)
	}

	// Monotonicity: Both grows, FalsePos shrinks with the threshold.
	for i := 1; i < len(rows); i++ {
		if rows[i].Both < rows[i-1].Both {
			t.Errorf("Both not monotone at %d", rows[i].Threshold)
		}
		if rows[i].FalsePos > rows[i-1].FalsePos {
			t.Errorf("FalsePos not monotone at %d", rows[i].Threshold)
		}
		if rows[i].Rules > rows[i-1].Rules {
			t.Errorf("Rules not monotone at %d", rows[i].Threshold)
		}
	}

	// The trace is deployment-scale: the paper reports ~410k entries.
	if n := s.Len(); n < 200000 || n > 700000 {
		t.Errorf("synthetic trace has %d entries, want roughly 410k", n)
	}

	// False positives at intermediate thresholds track the paper's values
	// exactly (they are determined by the flip-point cohorts).
	fpWant := map[int]int{5: 235, 10: 157, 50: 28, 100: 18, 500: 4, 1000: 1, 5000: 0}
	for t2, fp := range fpWant {
		if got := byT[t2].FalsePos; got != fp {
			t.Errorf("t=%d FalsePos = %d, want %d", t2, got, fp)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticDeployment(7)
	b := SyntheticDeployment(7)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	ra, rb := a.Records(), b.Records()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSuggestRulesT1(t *testing.T) {
	s := storeOf(
		mkRecs("/lib/ld-2.15.so", 0x596b, strings.Repeat("h", 20)),
		mkRecs("/usr/bin/cat", 0x100, strings.Repeat("l", 20)),
		mkRecs("/usr/bin/nautilus", 0x200, "hhhhhhhhhhhhhhhhhhhl"), // both
		mkRecs("/usr/bin/rare", 0x300, "hh"),                       // under threshold
	)
	sugs := SuggestRules(s, 10)
	if len(sugs) != 2 {
		t.Fatalf("suggestions = %d, want 2: %+v", len(sugs), sugs)
	}
	var ld Suggestion
	for _, sg := range sugs {
		if sg.Ep.Program == "/lib/ld-2.15.so" {
			ld = sg
		}
	}
	if ld.Class != ClassHighOnly {
		t.Errorf("ld.so class = %v", ld.Class)
	}
	for _, frag := range []string{"-p /lib/ld-2.15.so", "-i 0x596b", "-d ~{lib_t}", "-j DROP", "-s SYSHIGH"} {
		if !strings.Contains(ld.Rule, frag) {
			t.Errorf("rule %q missing %q", ld.Rule, frag)
		}
	}
}

func TestSuggestedRulesParse(t *testing.T) {
	// Suggested rules must round-trip through the pftables parser.
	w := programs.NewWorld(programs.WorldOpts{})
	s := storeOf(mkRecs(programs.BinLdSo, 0x596b, strings.Repeat("h", 15)))
	engine := pf.New(w.K.Policy, pf.Optimized())
	for _, sg := range SuggestRules(s, 10) {
		if sg.Class != ClassHighOnly {
			continue
		}
		if _, err := pftables.Install(w.Env, engine, sg.Rule); err != nil {
			t.Errorf("suggested rule does not parse: %v\n%s", err, sg.Rule)
		}
	}
	if engine.RuleCount() == 0 {
		t.Error("no suggested rules installed")
	}
}

func TestRulesFromVulnT1(t *testing.T) {
	rules := RulesFromVuln(Vuln{
		Kind: VulnUntrustedResource, Program: "/usr/bin/java",
		Entrypoint: 0x5d7e, Op: "FILE_OPEN",
	})
	if len(rules) != 1 || !strings.Contains(rules[0], "-d ~{SYSHIGH}") {
		t.Errorf("rules = %v", rules)
	}
	w := programs.NewWorld(programs.WorldOpts{})
	engine := pf.New(w.K.Policy, pf.Optimized())
	if _, err := pftables.Install(w.Env, engine, rules[0]); err != nil {
		t.Errorf("T1 rule does not parse: %v", err)
	}
}

func TestRulesFromVulnT2(t *testing.T) {
	rules := RulesFromVuln(Vuln{
		Kind: VulnTOCTTOU, Program: "/bin/dbus-daemon",
		CheckEntrypoint: 0x3c750, CheckOp: "SOCKET_BIND",
		Entrypoint: 0x3c786, Op: "SOCKET_SETATTR",
	})
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	if !strings.Contains(rules[0], "STATE --set") || !strings.Contains(rules[1], "--nequal -j DROP") {
		t.Errorf("T2 rules = %v", rules)
	}
	w := programs.NewWorld(programs.WorldOpts{})
	engine := pf.New(w.K.Policy, pf.Optimized())
	for _, r := range rules {
		if _, err := pftables.Install(w.Env, engine, r); err != nil {
			t.Errorf("T2 rule does not parse: %v\n%s", err, r)
		}
	}
}

func TestConsistentPrograms(t *testing.T) {
	launches := SyntheticLaunches(3)
	consistent, total := ConsistentPrograms(launches)
	if total != 318 || consistent != 232 {
		t.Errorf("consistent/total = %d/%d, want 232/318 (paper Section 6.3.2)", consistent, total)
	}
}

func TestConsistentProgramsEdgeCases(t *testing.T) {
	launches := []Launch{
		{Program: "/bin/a", Args: "x", Env: "e"},
		{Program: "/bin/a", Args: "x", Env: "e"},
		{Program: "/bin/b", Args: "x", Env: "e"},
		{Program: "/bin/b", Args: "y", Env: "e"}, // differing args
		{Program: "/bin/c", Args: "x", Env: "e", PackageModified: true},
	}
	consistent, total := ConsistentPrograms(launches)
	if total != 3 || consistent != 1 {
		t.Errorf("got %d/%d, want 1/3", consistent, total)
	}
}

func TestClassString(t *testing.T) {
	if ClassHighOnly.String() != "high" || ClassBoth.String() != "both" ||
		ClassLowOnly.String() != "low" || ClassUnknown.String() != "unknown" {
		t.Error("Class.String mismatch")
	}
}

func TestFormatTable8(t *testing.T) {
	out := FormatTable8([]Table8Row{{Threshold: 1149, HighOnly: 4229, LowOnly: 480, Both: 525, Rules: 30}})
	if !strings.Contains(out, "1149") || !strings.Contains(out, "4229") {
		t.Errorf("format: %q", out)
	}
}
