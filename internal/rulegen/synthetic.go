package rulegen

import (
	"fmt"

	"pfirewall/internal/trace"
)

// This file synthesizes the two-week deployment runtime trace of paper
// Section 6.3.1 (5234 entrypoints, ~410,000 log entries on an Ubuntu 10.04
// desktop with SELinux). The real trace is unavailable; the generator
// reconstructs a population whose classification behaviour matches the
// published Table 8:
//
//   - 4229 entrypoints only ever access high-integrity resources;
//   - 480 only ever access low-integrity resources;
//   - 525 eventually access both, with the invocation at which the second
//     class first appears ("flip point") distributed per the Both column's
//     deltas — the last flip at invocation 1149, the paper's
//     zero-false-positive threshold;
//   - invocation counts follow a heavy tail sized so the Rules column and
//     the ~410k total both come out near the paper's values.
//
// The generator is deterministic: same seed, same trace (an xorshift PRNG
// is embedded to avoid any dependence on global randomness).

// xorshift64 is a tiny deterministic PRNG.
type xorshift64 struct{ s uint64 }

func (x *xorshift64) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// intn returns a deterministic value in [0, n).
func (x *xorshift64) intn(n int) int { return int(x.next() % uint64(n)) }

// epSpec describes one synthetic entrypoint.
type epSpec struct {
	program string
	off     uint64
	invokes int
	// flip is the invocation index (1-based) at which the minority class
	// first appears; 0 means never (pure entrypoint).
	flip int
	// startLow selects the majority class.
	startLow bool
}

// flipCohorts encodes the Both-column deltas of Table 8: how many
// entrypoints first show their second class within each invocation band.
var flipCohorts = []struct {
	count    int
	from, to int // flip point range [from, to]
}{
	{290, 2, 5},
	{78, 6, 10},
	{129, 11, 50},
	{10, 51, 100},
	{14, 101, 500},
	{3, 501, 1000},
	{1, 1149, 1149},
}

// pureCohorts sizes the invocation heavy tail for the 4709 pure
// entrypoints, chosen so the Rules column lands near the paper's.
var pureCohorts = []struct {
	count    int
	from, to int // invocation count range
}{
	{2615, 1, 4},
	{715, 5, 9},
	{917, 10, 49},
	{185, 50, 99},
	{217, 100, 499},
	{27, 500, 999},
	{3, 1000, 1148},
	{19, 1149, 4999},
	{11, 5000, 24000},
}

// Totals of the synthetic population (matching the paper's Section 6.3.1).
const (
	SynPureHigh = 4229
	SynPureLow  = 480
	SynBoth     = 525
	SynTotalEps = SynPureHigh + SynPureLow + SynBoth // 5234
)

// SyntheticDeployment generates the synthetic two-week trace.
func SyntheticDeployment(seed uint64) *trace.Store {
	rng := &xorshift64{s: seed | 1}
	var specs []epSpec

	// Pure entrypoints: assign invocation counts from the tail cohorts.
	pure := make([]int, 0, SynPureHigh+SynPureLow)
	for _, c := range pureCohorts {
		for i := 0; i < c.count; i++ {
			n := c.from
			if c.to > c.from {
				n += rng.intn(c.to - c.from + 1)
			}
			pure = append(pure, n)
		}
	}
	for i, n := range pure {
		specs = append(specs, epSpec{
			program:  fmt.Sprintf("/usr/bin/prog%03d", i%318),
			off:      uint64(0x1000 + i*16),
			invokes:  n,
			startLow: i >= SynPureHigh, // the last 480 pure eps are low-only
		})
	}

	// Both entrypoints: flip points per cohort; 341 start high, 184 start
	// low (the Table 8 High/Low column deltas between t=0 and t=1149).
	bothIdx := 0
	for _, c := range flipCohorts {
		for i := 0; i < c.count; i++ {
			flip := c.from
			if c.to > c.from {
				flip += rng.intn(c.to - c.from + 1)
			}
			specs = append(specs, epSpec{
				program:  fmt.Sprintf("/usr/bin/prog%03d", bothIdx%318),
				off:      uint64(0x900000 + bothIdx*16),
				invokes:  flip + 1 + rng.intn(8),
				flip:     flip,
				startLow: bothIdx >= 341,
			})
			bothIdx++
		}
	}

	// Emit records. Interleaving across entrypoints is irrelevant to the
	// analysis (classification is per entrypoint), so emit grouped. The
	// deployment-scale trace (~410k records) exceeds the store's default
	// ring capacity, so size it explicitly.
	s := trace.NewStoreCapacity(1 << 20)
	for _, sp := range specs {
		for inv := 1; inv <= sp.invokes; inv++ {
			low := sp.startLow
			if sp.flip > 0 && inv >= sp.flip {
				// From the flip point on, the minority class appears;
				// alternate afterwards so both classes keep occurring.
				if inv == sp.flip || inv%2 == 0 {
					low = !sp.startLow
				}
			}
			obj, adv := "lib_t", false
			if low {
				obj, adv = "tmp_t", true
			}
			s.Add(trace.Record{
				PID:          1,
				SubjectLabel: "syshigh_t",
				ObjectLabel:  obj,
				Op:           "FILE_OPEN",
				ResourceID:   uint64(inv),
				Program:      sp.program,
				Entrypoint:   sp.off,
				AdvWrite:     adv,
				Verdict:      "ACCEPT",
			})
		}
	}
	return s
}

// Launch records one program invocation for the OS-distributor analysis
// (paper Section 6.3.2): command line, environment, and whether the
// package files were modified since installation.
type Launch struct {
	Program         string
	Args            string
	Env             string
	PackageModified bool
}

// ConsistentPrograms returns, per Section 6.3.2, the programs whose every
// launch used identical arguments and environment with unmodified package
// files — the programs for which distributor-shipped rules are valid.
func ConsistentPrograms(launches []Launch) (consistent, total int) {
	type sig struct{ args, env string }
	first := map[string]sig{}
	bad := map[string]bool{}
	for _, l := range launches {
		s := sig{l.Args, l.Env}
		if l.PackageModified {
			bad[l.Program] = true
		}
		if prev, ok := first[l.Program]; ok {
			if prev != s {
				bad[l.Program] = true
			}
		} else {
			first[l.Program] = s
		}
	}
	for p := range first {
		if !bad[p] {
			consistent++
		}
	}
	return consistent, len(first)
}

// SyntheticLaunches reproduces the paper's observation: 318 programs, 232
// of which were launched in the installed-package environment every time.
func SyntheticLaunches(seed uint64) []Launch {
	rng := &xorshift64{s: seed | 1}
	var out []Launch
	for i := 0; i < 318; i++ {
		prog := fmt.Sprintf("/usr/bin/prog%03d", i)
		inconsistent := i >= 232 // 86 programs vary across launches
		n := 2 + rng.intn(6)
		for j := 0; j < n; j++ {
			l := Launch{Program: prog, Args: "--default", Env: "PATH=/usr/bin"}
			if inconsistent && j == n-1 {
				switch i % 3 {
				case 0:
					l.Args = "--custom"
				case 1:
					l.Env = "PATH=/home/user/bin"
				default:
					l.PackageModified = true
				}
			}
			out = append(out, l)
		}
	}
	return out
}
