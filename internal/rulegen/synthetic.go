package rulegen

import (
	"fmt"

	"pfirewall/internal/trace"
)

// This file synthesizes the two-week deployment runtime trace of paper
// Section 6.3.1 (5234 entrypoints, ~410,000 log entries on an Ubuntu 10.04
// desktop with SELinux). The real trace is unavailable; the generator
// reconstructs a population whose classification behaviour matches the
// published Table 8:
//
//   - 4229 entrypoints only ever access high-integrity resources;
//   - 480 only ever access low-integrity resources;
//   - 525 eventually access both, with the invocation at which the second
//     class first appears ("flip point") distributed per the Both column's
//     deltas — the last flip at invocation 1149, the paper's
//     zero-false-positive threshold;
//   - invocation counts follow a heavy tail sized so the Rules column and
//     the ~410k total both come out near the paper's values.
//
// The generator is deterministic: same seed, same trace (an xorshift PRNG
// is embedded to avoid any dependence on global randomness).

// xorshift64 is a tiny deterministic PRNG.
type xorshift64 struct{ s uint64 }

func (x *xorshift64) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// intn returns a deterministic value in [0, n).
func (x *xorshift64) intn(n int) int { return int(x.next() % uint64(n)) }

// epSpec describes one synthetic entrypoint.
type epSpec struct {
	program string
	off     uint64
	invokes int
	// flip is the invocation index (1-based) at which the minority class
	// first appears; 0 means never (pure entrypoint).
	flip int
	// startLow selects the majority class.
	startLow bool
}

// flipCohorts encodes the Both-column deltas of Table 8: how many
// entrypoints first show their second class within each invocation band.
var flipCohorts = []struct {
	count    int
	from, to int // flip point range [from, to]
}{
	{290, 2, 5},
	{78, 6, 10},
	{129, 11, 50},
	{10, 51, 100},
	{14, 101, 500},
	{3, 501, 1000},
	{1, 1149, 1149},
}

// pureCohorts sizes the invocation heavy tail for the 4709 pure
// entrypoints, chosen so the Rules column lands near the paper's.
var pureCohorts = []struct {
	count    int
	from, to int // invocation count range
}{
	{2615, 1, 4},
	{715, 5, 9},
	{917, 10, 49},
	{185, 50, 99},
	{217, 100, 499},
	{27, 500, 999},
	{3, 1000, 1148},
	{19, 1149, 4999},
	{11, 5000, 24000},
}

// Totals of the synthetic population (matching the paper's Section 6.3.1).
const (
	SynPureHigh = 4229
	SynPureLow  = 480
	SynBoth     = 525
	SynTotalEps = SynPureHigh + SynPureLow + SynBoth // 5234
)

// SyntheticDeployment generates the synthetic two-week trace.
func SyntheticDeployment(seed uint64) *trace.Store {
	rng := &xorshift64{s: seed | 1}
	var specs []epSpec

	// Pure entrypoints: assign invocation counts from the tail cohorts.
	pure := make([]int, 0, SynPureHigh+SynPureLow)
	for _, c := range pureCohorts {
		for i := 0; i < c.count; i++ {
			n := c.from
			if c.to > c.from {
				n += rng.intn(c.to - c.from + 1)
			}
			pure = append(pure, n)
		}
	}
	for i, n := range pure {
		specs = append(specs, epSpec{
			program:  fmt.Sprintf("/usr/bin/prog%03d", i%318),
			off:      uint64(0x1000 + i*16),
			invokes:  n,
			startLow: i >= SynPureHigh, // the last 480 pure eps are low-only
		})
	}

	// Both entrypoints: flip points per cohort; 341 start high, 184 start
	// low (the Table 8 High/Low column deltas between t=0 and t=1149).
	bothIdx := 0
	for _, c := range flipCohorts {
		for i := 0; i < c.count; i++ {
			flip := c.from
			if c.to > c.from {
				flip += rng.intn(c.to - c.from + 1)
			}
			specs = append(specs, epSpec{
				program:  fmt.Sprintf("/usr/bin/prog%03d", bothIdx%318),
				off:      uint64(0x900000 + bothIdx*16),
				invokes:  flip + 1 + rng.intn(8),
				flip:     flip,
				startLow: bothIdx >= 341,
			})
			bothIdx++
		}
	}

	// Emit records. Interleaving across entrypoints is irrelevant to the
	// analysis (classification is per entrypoint), so emit grouped. The
	// deployment-scale trace (~410k records) exceeds the store's default
	// ring capacity, so size it explicitly.
	s := trace.NewStoreCapacity(1 << 20)
	for _, sp := range specs {
		for inv := 1; inv <= sp.invokes; inv++ {
			low := sp.startLow
			if sp.flip > 0 && inv >= sp.flip {
				// From the flip point on, the minority class appears;
				// alternate afterwards so both classes keep occurring.
				if inv == sp.flip || inv%2 == 0 {
					low = !sp.startLow
				}
			}
			obj, adv := "lib_t", false
			if low {
				obj, adv = "tmp_t", true
			}
			s.Add(trace.Record{
				PID:          1,
				SubjectLabel: "syshigh_t",
				ObjectLabel:  obj,
				Op:           "FILE_OPEN",
				ResourceID:   uint64(inv),
				Program:      sp.program,
				Entrypoint:   sp.off,
				AdvWrite:     adv,
				Verdict:      "ACCEPT",
			})
		}
	}
	return s
}

// ScaleSizes are the rule-base sizes the rule-scaling benchmark sweeps:
// a small app profile, the paper's system-wide deployment (Table 5 reports
// ~1,226 installed rules), and an order of magnitude beyond it.
var ScaleSizes = []int{100, 1200, 10000}

// scaleOps carries the op distribution of the generated generic rules,
// weighted the way deployed rule bases skew: file opens and reads dominate,
// sockets and metadata ops trail.
var scaleOps = []struct {
	name   string
	weight int
}{
	{"FILE_OPEN", 22},
	{"FILE_READ", 12},
	{"FILE_WRITE", 10},
	{"FILE_GETATTR", 8},
	{"DIR_SEARCH", 8},
	{"LNK_FILE_READ", 8},
	{"FILE_CREATE", 5},
	{"SOCKET_BIND", 5},
	{"UNIX_STREAM_SOCKET_CONNECT", 5},
	{"FILE_EXEC", 4},
	{"FILE_UNLINK", 3},
	{"SOCKET_SENDMSG", 3},
	{"SOCKET_RECVMSG", 3},
	{"FILE_SETATTR", 2},
	{"PROCESS_SIGNAL_DELIVERY", 2},
}

// wildcardOps restricts subjectless (and subject-negated) rules to the ops
// such rules carry in practice — integrity invariants like the paper's
// symlink and signal rules — rather than the hot file-access ops. This is
// what keeps the per-op wildcard buckets small: a rule base whose wildcard
// rules all sat on FILE_OPEN would degrade every process equally no matter
// how rules are indexed.
var wildcardOps = []string{
	"LNK_FILE_READ", "FILE_SETATTR", "SOCKET_BIND",
	"UNIX_STREAM_SOCKET_CONNECT", "PROCESS_SIGNAL_DELIVERY", "FIFO_CREATE",
}

func pickWeighted(rng *xorshift64) string {
	total := 0
	for _, o := range scaleOps {
		total += o.weight
	}
	n := rng.intn(total)
	for _, o := range scaleOps {
		if n < o.weight {
			return o.name
		}
		n -= o.weight
	}
	return scaleOps[0].name
}

// ScaleRuleBase generates a deployment-scale rule base of n pftables lines
// with a realistic subject/op distribution: mostly per-domain deny rules
// (the subject-domain pool grows with n, as real deployments add rules
// because they confine more programs), a slice of entrypoint-specific rules,
// and a small wildcard/negated-subject tail. Deny objects are drawn from a
// synthetic label namespace so the rules never fire against the benchmark
// workload's files — the cost being measured is rule matching, not verdict
// churn. Deterministic in seed.
func ScaleRuleBase(seed uint64, n int) []string {
	rng := &xorshift64{s: seed | 1}
	// Subject domains: domain 0 is the benchmark identity (sshd_t), so a
	// realistic share of rules lands in its dispatch buckets.
	nDoms := n / 16
	if nDoms < 8 {
		nDoms = 8
	}
	dom := func(i int) string {
		if i == 0 {
			return "sshd_t"
		}
		return fmt.Sprintf("scl_dom%03d_t", i)
	}
	obj := func() string { return fmt.Sprintf("scl_obj%02d_t", rng.intn(24)) }

	rules := make([]string, 0, n)
	for i := 0; len(rules) < n; i++ {
		switch r := rng.intn(100); {
		case r < 15:
			// Entrypoint-specific deny (what rule suggestion mass-produces);
			// EptChains indexes these out of the generic traversal list.
			rules = append(rules, fmt.Sprintf(
				"pftables -A input -p /usr/bin/prog%03d -i 0x%x -s SYSHIGH -d {%s} -o FILE_OPEN -j DROP",
				i%331, 0x2000+(i*0x40)%0xffff, obj()))
		case r < 20:
			// Wildcard subject: system-wide invariant on a non-hot op.
			op := wildcardOps[rng.intn(len(wildcardOps))]
			if rng.intn(3) == 0 {
				rules = append(rules, fmt.Sprintf(
					"pftables -A input -s ~{%s} -d {%s} -o %s -j DROP", dom(rng.intn(nDoms)), obj(), op))
			} else {
				rules = append(rules, fmt.Sprintf(
					"pftables -A input -d {%s} -o %s -j DROP", obj(), op))
			}
		case r < 24:
			// Audit rule: LOG and fall through.
			rules = append(rules, fmt.Sprintf(
				"pftables -A input -s {%s} -d {%s} -o %s -j LOG --prefix scale",
				dom(rng.intn(nDoms)), obj(), pickWeighted(rng)))
		default:
			// Per-domain deny, the bulk of a deployed base. One or two ops,
			// subject of one or two domains.
			ops := pickWeighted(rng)
			if rng.intn(3) == 0 {
				ops += "," + pickWeighted(rng)
			}
			subj := dom(rng.intn(nDoms))
			if rng.intn(5) == 0 {
				subj += "|" + dom(rng.intn(nDoms))
			}
			rules = append(rules, fmt.Sprintf(
				"pftables -A input -s {%s} -d {%s} -o %s -j DROP", subj, obj(), ops))
		}
	}
	return rules
}

// Launch records one program invocation for the OS-distributor analysis
// (paper Section 6.3.2): command line, environment, and whether the
// package files were modified since installation.
type Launch struct {
	Program         string
	Args            string
	Env             string
	PackageModified bool
}

// ConsistentPrograms returns, per Section 6.3.2, the programs whose every
// launch used identical arguments and environment with unmodified package
// files — the programs for which distributor-shipped rules are valid.
func ConsistentPrograms(launches []Launch) (consistent, total int) {
	type sig struct{ args, env string }
	first := map[string]sig{}
	bad := map[string]bool{}
	for _, l := range launches {
		s := sig{l.Args, l.Env}
		if l.PackageModified {
			bad[l.Program] = true
		}
		if prev, ok := first[l.Program]; ok {
			if prev != s {
				bad[l.Program] = true
			}
		} else {
			first[l.Program] = s
		}
	}
	for p := range first {
		if !bad[p] {
			consistent++
		}
	}
	return consistent, len(first)
}

// SyntheticLaunches reproduces the paper's observation: 318 programs, 232
// of which were launched in the installed-package environment every time.
func SyntheticLaunches(seed uint64) []Launch {
	rng := &xorshift64{s: seed | 1}
	var out []Launch
	for i := 0; i < 318; i++ {
		prog := fmt.Sprintf("/usr/bin/prog%03d", i)
		inconsistent := i >= 232 // 86 programs vary across launches
		n := 2 + rng.intn(6)
		for j := 0; j < n; j++ {
			l := Launch{Program: prog, Args: "--default", Env: "PATH=/usr/bin"}
			if inconsistent && j == n-1 {
				switch i % 3 {
				case 0:
					l.Args = "--custom"
				case 1:
					l.Env = "PATH=/home/user/bin"
				default:
					l.PackageModified = true
				}
			}
			out = append(out, l)
		}
	}
	return out
}
