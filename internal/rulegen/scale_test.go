package rulegen

import (
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// TestScaleRuleBaseInstalls checks every generated line parses and installs
// through the real pftables front end, at the two smaller benchmark sizes
// (the 10k base is exercised by the benchmarks; installing it under the race
// detector in CI is disproportionate).
func TestScaleRuleBaseInstalls(t *testing.T) {
	for _, n := range []int{100, 1200} {
		lines := ScaleRuleBase(1, n)
		if len(lines) != n {
			t.Fatalf("ScaleRuleBase(1, %d) produced %d lines", n, len(lines))
		}
		cfg := pf.Optimized()
		w := programs.NewWorld(programs.WorldOpts{PF: &cfg})
		installed, err := w.InstallRules(lines)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if installed != n {
			t.Fatalf("n=%d: installed %d rules", n, installed)
		}
		if got := w.Engine.RuleCount(); got != n {
			t.Fatalf("n=%d: engine reports %d rules", n, got)
		}
	}
}

func TestScaleRuleBaseDeterministic(t *testing.T) {
	a := ScaleRuleBase(7, 500)
	b := ScaleRuleBase(7, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("line %d differs across runs with the same seed:\n%s\n%s", i, a[i], b[i])
		}
	}
	if c := ScaleRuleBase(8, 500); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced identical openings")
	}
}
