// Package rulegen implements the paper's rule generation study
// (Section 6.3): classifying entrypoints from runtime traces as
// high-integrity-only, low-integrity-only, or both; producing Table 8
// (classification and false-positive counts versus invocation threshold);
// suggesting rules from the templates T1/T2; generating rules from known
// vulnerabilities; and the OS-distributor environment-consistency analysis
// of Section 6.3.2.
package rulegen

import (
	"fmt"
	"sort"
	"strings"

	"pfirewall/internal/trace"
)

// Class is the integrity classification of an entrypoint.
type Class uint8

// Classifications.
const (
	ClassUnknown Class = iota
	ClassHighOnly
	ClassLowOnly
	ClassBoth
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassHighOnly:
		return "high"
	case ClassLowOnly:
		return "low"
	case ClassBoth:
		return "both"
	default:
		return "unknown"
	}
}

// classify returns the class of the first n records (n<=0 means all).
func classify(recs []trace.Record, n int) Class {
	if n <= 0 || n > len(recs) {
		n = len(recs)
	}
	if n == 0 {
		return ClassUnknown
	}
	sawHigh, sawLow := false, false
	for _, r := range recs[:n] {
		if r.LowIntegrity() {
			sawLow = true
		} else {
			sawHigh = true
		}
	}
	switch {
	case sawHigh && sawLow:
		return ClassBoth
	case sawLow:
		return ClassLowOnly
	default:
		return ClassHighOnly
	}
}

// Table8Row is one row of the paper's Table 8.
type Table8Row struct {
	Threshold int
	HighOnly  int
	LowOnly   int
	Both      int
	Rules     int
	FalsePos  int
}

// PaperThresholds are the invocation thresholds Table 8 evaluates.
var PaperThresholds = []int{0, 5, 10, 50, 100, 500, 1000, 1149, 5000}

// Table8 reproduces the paper's analysis: for each threshold t, every
// entrypoint is classified by its first max(t,1) invocations; rules are
// produced for entrypoints invoked at least t times whose class so far is
// high- or low-only; a produced rule is a false positive if the
// entrypoint's full-trace class is both (the rule would deny a valid
// access observed later in the trace).
func Table8(s *trace.Store, thresholds []int) []Table8Row {
	byEp := s.ByEntrypoint()
	rows := make([]Table8Row, 0, len(thresholds))
	for _, t := range thresholds {
		row := Table8Row{Threshold: t}
		for _, recs := range byEp {
			soFar := classify(recs, max(t, 1))
			full := classify(recs, 0)
			switch soFar {
			case ClassHighOnly:
				row.HighOnly++
			case ClassLowOnly:
				row.LowOnly++
			case ClassBoth:
				row.Both++
			}
			if len(recs) >= max(t, 1) && (soFar == ClassHighOnly || soFar == ClassLowOnly) {
				row.Rules++
				if full == ClassBoth {
					row.FalsePos++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatTable8 renders rows in the paper's layout.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s %-10s %-10s\n",
		"Threshold", "HighOnly", "LowOnly", "Both", "Rules", "FalsePos")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-10d %-10d %-10d %-10d %-10d\n",
			r.Threshold, r.HighOnly, r.LowOnly, r.Both, r.Rules, r.FalsePos)
	}
	return b.String()
}

// Suggestion is a generated rule with its provenance.
type Suggestion struct {
	Ep      trace.EpKey
	Class   Class
	Rule    string
	Invoked int
}

// SuggestRules applies template T1 to the trace: for every entrypoint
// invoked at least threshold times and classified high-only, emit a rule
// denying it access to any label outside the set it was observed to use
// (the paper's generalization: deny all adversary-accessible resources for
// the entrypoint). Low-only entrypoints are the link-following direction
// and get the inverse suggestion.
func SuggestRules(s *trace.Store, threshold int) []Suggestion {
	byEp := s.ByEntrypoint()
	var out []Suggestion
	for ep, recs := range byEp {
		if len(recs) < threshold {
			continue
		}
		cls := classify(recs, 0)
		if cls != ClassHighOnly && cls != ClassLowOnly {
			continue
		}
		// One rule per operation observed at the entrypoint, each confined
		// to the labels that operation legitimately used.
		byOp := map[string][]trace.Record{}
		var ops []string
		for _, r := range recs {
			if _, ok := byOp[r.Op]; !ok {
				ops = append(ops, r.Op)
			}
			byOp[r.Op] = append(byOp[r.Op], r)
		}
		sort.Strings(ops)
		for _, op := range ops {
			labels := observedLabels(byOp[op])
			var rule string
			if cls == ClassHighOnly {
				// T1: restrict the entrypoint to the observed (trusted) labels.
				rule = fmt.Sprintf("pftables -p %s -i 0x%x -s SYSHIGH -d ~{%s} -o %s -j DROP",
					ep.Program, ep.Off, strings.Join(labels, "|"), op)
			} else {
				// Low-only entrypoints must never reach high-integrity
				// resources (link following / traversal direction).
				rule = fmt.Sprintf("pftables -p %s -i 0x%x -s SYSHIGH -d {%s} -o %s -j ACCEPT",
					ep.Program, ep.Off, strings.Join(labels, "|"), op)
			}
			out = append(out, Suggestion{Ep: ep, Class: cls, Rule: rule, Invoked: len(recs)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ep.Program != out[j].Ep.Program {
			return out[i].Ep.Program < out[j].Ep.Program
		}
		if out[i].Ep.Off != out[j].Ep.Off {
			return out[i].Ep.Off < out[j].Ep.Off
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// observedLabels returns the sorted distinct object labels in recs.
func observedLabels(recs []trace.Record) []string {
	set := map[string]bool{}
	for _, r := range recs {
		if r.ObjectLabel != "" {
			set[r.ObjectLabel] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// VulnKind selects the rule template for a known vulnerability.
type VulnKind uint8

// Vulnerability kinds, mapping to Table 2 classes.
const (
	VulnUntrustedResource VulnKind = iota // search path / library / inclusion / squat
	VulnTOCTTOU
)

// Vuln describes a known vulnerability as logged by a testing tool such as
// STING (paper Section 6.3.1: "our testing tool logs the process
// entrypoint and the unsafe resource that led to the attack").
type Vuln struct {
	Kind    VulnKind
	Program string
	// Entrypoint of the vulnerable access (T1) or the use call (T2).
	Entrypoint uint64
	Op         string
	// CheckEntrypoint / CheckOp describe the check call for TOCTTOU (T2).
	CheckEntrypoint uint64
	CheckOp         string
	// StateKey names the T2 state slot; derived from the use entrypoint
	// when zero.
	StateKey uint64
}

// RulesFromVuln instantiates template T1 or T2 for v. The generated rules
// are generalized to deny all adversary-accessible resources (~{SYSHIGH}),
// which the paper argues cannot cause false positives because the
// (entrypoint, unsafe resource) pair is known to be exploitable.
func RulesFromVuln(v Vuln) []string {
	switch v.Kind {
	case VulnTOCTTOU:
		key := v.StateKey
		if key == 0 {
			key = v.Entrypoint
		}
		return []string{
			fmt.Sprintf("pftables -I input -i 0x%x -p %s -o %s -j STATE --set --key 0x%x --value C_INO",
				v.CheckEntrypoint, v.Program, v.CheckOp, key),
			fmt.Sprintf("pftables -i 0x%x -p %s -o %s -m STATE --key 0x%x --cmp C_INO --nequal -j DROP",
				v.Entrypoint, v.Program, v.Op, key),
		}
	default:
		return []string{
			fmt.Sprintf("pftables -I input -i 0x%x -p %s -d ~{SYSHIGH} -o %s -j DROP",
				v.Entrypoint, v.Program, v.Op),
		}
	}
}
