package policyd

import (
	"strings"
	"testing"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/pfcheck"
	"pfirewall/internal/pftables"
	"pfirewall/internal/pfverify"
	"pfirewall/internal/programs"
)

func policyWorld(t *testing.T) *programs.World {
	t.Helper()
	cfg := pf.Optimized()
	return programs.NewWorld(programs.WorldOpts{PF: &cfg})
}

func serveWorld(t *testing.T, w *programs.World) (*Server, *Client) {
	t.Helper()
	sym := &pfcheck.Symbols{KnownLabel: pfcheck.LabelSnapshot(w.Env.Policy)}
	srv, err := Serve(w.K, w.Env, w.Engine, "", sym)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cl, err := Dial(w.K, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return srv, cl
}

// TestApplyPublishesOnce is the basic protocol round trip: one streamed
// batch lands as exactly one engine publish, and the response reflects the
// live ruleset.
func TestApplyPublishesOnce(t *testing.T) {
	w := policyWorld(t)
	_, cl := serveWorld(t, w)
	gen0 := w.Engine.Generation()

	resp, err := cl.Apply("web.pft", []string{
		`pftables -A input -s httpd_t -d shadow_t -o FILE_OPEN -j DROP`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("apply failed: %s (findings %v)", resp.Err, resp.Findings)
	}
	if resp.Rules != 2 || w.Engine.RuleCount() != 2 {
		t.Fatalf("rules = %d (engine %d), want 2", resp.Rules, w.Engine.RuleCount())
	}
	if got := w.Engine.Generation() - gen0; got != 1 {
		t.Fatalf("batch bumped generation %d times, want 1", got)
	}
	if resp.Version != w.Engine.Version() {
		t.Fatalf("response version %d != engine version %d", resp.Version, w.Engine.Version())
	}
	if resp.PublishNs <= 0 {
		t.Fatal("apply reported no publish time")
	}

	// A second small batch rides the incremental delta-compile path.
	resp, err = cl.Apply("web.pft", []string{
		`pftables -A input -s user_t -o FILE_OPEN -j DROP`,
	}, 0)
	if err != nil || !resp.OK {
		t.Fatalf("second apply: %v %s", err, resp.Err)
	}
	if !resp.Incremental {
		t.Fatal("single-rule apply did not take the incremental path")
	}
}

// TestGateVetoesBadBatch: a batch whose rules the analyzer flags as
// error-class never publishes, and the response carries the findings.
func TestGateVetoesBadBatch(t *testing.T) {
	w := policyWorld(t)
	_, cl := serveWorld(t, w)
	ver0 := w.Engine.Version()

	// The second rule is fully shadowed by the first with a conflicting
	// verdict — an error-class finding.
	resp, err := cl.Apply("bad.pft", []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j DROP`,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("gate accepted a batch with a conflicting shadowed rule")
	}
	if len(resp.Findings) == 0 || !strings.Contains(resp.Findings[0], "bad.pft") {
		t.Fatalf("veto carried no usable findings: %v", resp.Findings)
	}
	if w.Engine.Version() != ver0 || w.Engine.RuleCount() != 0 {
		t.Fatal("vetoed batch reached the rule base")
	}

	// NoCheck bypasses the gate for operators who mean it.
	resp, err = cl.Do(Request{Op: "apply", Src: "bad.pft", NoCheck: true, Lines: []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j DROP`,
	}}, 0)
	if err != nil || !resp.OK {
		t.Fatalf("NoCheck apply: %v %s", err, resp.Err)
	}
	if w.Engine.RuleCount() != 2 {
		t.Fatalf("NoCheck apply installed %d rules, want 2", w.Engine.RuleCount())
	}
}

// TestGateIgnoresPreexistingDefects: error findings anchored outside the
// batch being applied must not wedge the control plane.
func TestGateIgnoresPreexistingDefects(t *testing.T) {
	w := policyWorld(t)
	// Install a defective pair directly (bypassing the daemon).
	if _, err := pftables.InstallAllFrom(w.Env, w.Engine, "legacy.pft", []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j DROP`,
	}); err != nil {
		t.Fatal(err)
	}
	_, cl := serveWorld(t, w)
	resp, err := cl.Apply("clean.pft", []string{
		`pftables -A input -s user_t -d shadow_t -o FILE_OPEN -j DROP`,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("clean batch vetoed by pre-existing legacy defects: %s %v", resp.Err, resp.Findings)
	}
}

// TestRollbackOverProtocol: version moves forward on apply and back on
// rollback, and verdicts follow.
func TestRollbackOverProtocol(t *testing.T) {
	w := policyWorld(t)
	_, cl := serveWorld(t, w)

	if resp, err := cl.Apply("v1.pft", []string{
		`pftables -A input -s user_t -d shadow_t -o FILE_OPEN -j DROP`,
	}, 0); err != nil || !resp.OK {
		t.Fatalf("apply v1: %v %+v", err, resp)
	}
	v1, err := cl.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := cl.Apply("v2.pft", []string{
		`pftables -F input`,
	}, 0); err != nil || !resp.OK {
		t.Fatalf("apply v2: %v %+v", err, resp)
	}
	if w.Engine.RuleCount() != 0 {
		t.Fatal("flush batch did not land")
	}

	resp, err := cl.Rollback(0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Version != v1.Version || resp.Rules != 1 {
		t.Fatalf("rollback resp = %+v, want version %d with 1 rule", resp, v1.Version)
	}
	// Draining the whole history window eventually errors without crashing.
	for i := 0; i < 16; i++ {
		if resp, _ = cl.Rollback(0); !resp.OK {
			break
		}
	}
	if resp.OK {
		t.Fatal("rollback never exhausted the history window")
	}
}

// TestApplyAtomicReload: a -F plus reinstall batch over the wire never
// exposes an empty rule base to concurrent mediation.
func TestApplyAtomicReload(t *testing.T) {
	w := policyWorld(t)
	_, cl := serveWorld(t, w)
	base := []string{
		`pftables -A input -s user_t -o FILE_OPEN -j DROP`,
	}
	// Non-vacuity: before the guard lands, the probe open succeeds.
	sanity := w.K.NewProc(kernel.ProcSpec{UID: 1000, Label: "user_t"})
	if fd, err := sanity.Open("/etc/passwd", kernel.O_RDONLY, 0); err != nil {
		t.Fatalf("probe open blocked before any rule: %v", err)
	} else {
		sanity.Close(fd)
	}
	if resp, err := cl.Apply("base.pft", base, 0); err != nil || !resp.OK {
		t.Fatalf("base apply: %v %+v", err, resp)
	}

	// A reader hammering the guarded open must never see an ACCEPT while
	// reload batches (-F + reinstall in one transaction) stream in.
	stop := make(chan struct{})
	accepts := make(chan int, 1)
	go func() {
		p := w.K.NewProc(kernel.ProcSpec{UID: 1000, Label: "user_t"})
		n := 0
		for {
			select {
			case <-stop:
				accepts <- n
				return
			default:
			}
			if fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0); err == nil {
				p.Close(fd)
				n++
			}
		}
	}()
	reload := append([]string{`pftables -F`}, base...)
	for i := 0; i < 50; i++ {
		if resp, err := cl.Apply("base.pft", reload, 0); err != nil || !resp.OK {
			t.Fatalf("reload %d: %v %+v", i, err, resp)
		}
	}
	close(stop)
	if n := <-accepts; n != 0 {
		t.Fatalf("%d guarded opens slipped through during atomic reloads", n)
	}
}

// TestPublisherFanout: one batch lands on every world of a small fleet.
func TestPublisherFanout(t *testing.T) {
	const worlds = 3
	var names []string
	var clients []*Client
	var engines []*pf.Engine
	for i := 0; i < worlds; i++ {
		w := policyWorld(t)
		name := "pfpolicy-" + string(rune('a'+i))
		sym := &pfcheck.Symbols{KnownLabel: pfcheck.LabelSnapshot(w.Env.Policy)}
		srv, err := Serve(w.K, w.Env, w.Engine, name, sym)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		cl, err := Dial(w.K, name)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		clients = append(clients, cl)
		engines = append(engines, w.Engine)
	}
	pub := NewPublisher(names, clients)
	defer pub.Close()

	results := pub.Apply("fleet.pft", []string{
		`pftables -A input -s user_t -d shadow_t -o FILE_OPEN -j DROP`,
	}, 10*time.Second)
	if len(results) != worlds {
		t.Fatalf("got %d results, want %d", len(results), worlds)
	}
	for i, res := range results {
		if res.Err != "" || !res.Resp.OK {
			t.Fatalf("target %s failed: %s %+v", res.Name, res.Err, res.Resp)
		}
		if engines[i].RuleCount() != 1 {
			t.Fatalf("target %s engine has %d rules, want 1", res.Name, engines[i].RuleCount())
		}
		if res.RTT <= 0 {
			t.Fatalf("target %s reported no round trip", res.Name)
		}
	}
}

// TestBadRequestLine: protocol garbage gets an error response, and the
// connection keeps working.
func TestBadRequestLine(t *testing.T) {
	w := policyWorld(t)
	_, cl := serveWorld(t, w)
	if _, err := cl.proc.Send(cl.fd, []byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	// Read the error response by hand via Do's machinery: issue a ping and
	// expect the garbage answer first.
	resp, err := cl.Do(Request{Op: "ping"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("garbage line was answered OK")
	}
	resp, err = cl.Do(Request{Op: "ping"}, 0)
	if err != nil || !resp.OK {
		t.Fatalf("connection broken after garbage: %v %+v", err, resp)
	}
	if _, err := cl.Do(Request{Op: "nonsense"}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantGateVetoesWeakeningBatch: with SetInvariants armed, a batch
// that passes pfcheck but weakens a held invariant is vetoed pre-publish,
// with the regression witness in the findings.
func TestInvariantGateVetoesWeakeningBatch(t *testing.T) {
	w := policyWorld(t)
	srv, cl := serveWorld(t, w)

	invs, err := pfverify.ParseInvariants("srv.inv", `invariant httpd-no-shadow {
    require DROP
    op FILE_OPEN
    subject httpd_t
    object shadow_t
}`)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetInvariants(invs)

	resp, err := cl.Apply("base.pft", []string{
		`pftables -A input -s httpd_t -d shadow_t -o FILE_OPEN -j DROP`,
	}, 0)
	if err != nil || !resp.OK {
		t.Fatalf("base apply: %v %s", err, resp.Err)
	}
	ver := w.Engine.Version()

	// Clean per pfcheck (nothing shadowed — the ACCEPT is narrower than
	// nothing and first-match puts it ahead), but it weakens the invariant.
	resp, err = cl.Apply("weaken.pft", []string{
		`pftables -I input -s httpd_t -o FILE_OPEN -j ACCEPT`,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("refinement gate let a weakening batch publish")
	}
	found := false
	for _, f := range resp.Findings {
		if strings.Contains(f, "httpd-no-shadow") {
			found = true
		}
	}
	if !found {
		t.Fatalf("veto findings missing the regressed invariant: %v", resp.Findings)
	}
	if w.Engine.Version() != ver {
		t.Fatal("vetoed batch reached the rule base")
	}
	if srv.VerifyVetoes() != 1 {
		t.Fatalf("VerifyVetoes = %d, want 1", srv.VerifyVetoes())
	}

	// A non-weakening batch still publishes with the gate armed.
	resp, err = cl.Apply("ok.pft", []string{
		`pftables -A input -s user_t -d shadow_t -o FILE_OPEN -j DROP`,
	}, 0)
	if err != nil || !resp.OK {
		t.Fatalf("harmless apply: %v %s %v", err, resp.Err, resp.Findings)
	}
}
