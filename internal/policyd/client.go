package policyd

import (
	"bytes"
	"encoding/json"
	"errors"
	"time"

	"pfirewall/internal/kernel"
)

// ErrTimeout is returned by Client.Do when no response arrived in time.
var ErrTimeout = errors.New("policyd: response read timed out")

// DefaultTimeout bounds one round trip when the caller passes zero.
const DefaultTimeout = 5 * time.Second

// Client speaks the control protocol to one policyd server from inside the
// simulation. A Client owns one simulated process; all calls must come
// from one goroutine at a time (the kernel's single-flow invariant).
type Client struct {
	proc *kernel.Proc
	fd   int
	buf  []byte
}

// Dial connects a fresh (muted) process to the named control socket.
func Dial(k *kernel.Kernel, name string) (*Client, error) {
	if name == "" {
		name = DefaultSocketName
	}
	proc := k.NewProc(kernel.ProcSpec{UID: 0, Label: policyLabel})
	if t := k.Tracer(); t != nil {
		t.Mute(proc.PID())
	}
	fd, err := proc.ConnectAbstract(name)
	if err != nil {
		return nil, err
	}
	return &Client{proc: proc, fd: fd}, nil
}

// Do sends one request and waits for its response (requests on one
// connection are answered in order).
func (c *Client) Do(req Request, timeout time.Duration) (Response, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	line, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	line = append(line, '\n')
	if _, err := c.proc.Send(c.fd, line); err != nil {
		return Response{}, err
	}
	deadline := time.Now().Add(timeout)
	for {
		if i := bytes.IndexByte(c.buf, '\n'); i >= 0 {
			raw := c.buf[:i]
			c.buf = c.buf[i+1:]
			var resp Response
			if err := json.Unmarshal(raw, &resp); err != nil {
				return Response{}, err
			}
			return resp, nil
		}
		data, err := c.proc.Recv(c.fd, 0)
		if len(data) > 0 {
			c.buf = append(c.buf, data...)
			continue
		}
		if err != nil && !kernel.IsWouldBlock(err) {
			return Response{}, err
		}
		if time.Now().After(deadline) {
			return Response{}, ErrTimeout
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Apply streams one pftables batch to be applied as a single gated
// transaction. A Response with OK=false carries the gate's findings (or
// the parse/install error) and means nothing was published.
func (c *Client) Apply(src string, lines []string, timeout time.Duration) (Response, error) {
	return c.Do(Request{Op: "apply", Src: src, Lines: lines}, timeout)
}

// Rollback reverts the engine to the previous published ruleset version.
func (c *Client) Rollback(timeout time.Duration) (Response, error) {
	return c.Do(Request{Op: "rollback"}, timeout)
}

// Version reports the live ruleset version and rule count.
func (c *Client) Version(timeout time.Duration) (Response, error) {
	return c.Do(Request{Op: "version"}, timeout)
}

// Close tears down the client's end of the connection.
func (c *Client) Close() {
	_ = c.proc.Close(c.fd)
}

// PublishResult is one target's outcome of a fan-out publish.
type PublishResult struct {
	Name  string        `json:"name"`
	RTT   time.Duration `json:"-"`
	RTTNs int64         `json:"rtt_ns"`
	Resp  Response      `json:"resp"`
	Err   string        `json:"err,omitempty"`
}

// Publisher fans control-plane operations out to a set of policyd servers
// — one per world of a fleet — concurrently, and reports per-target round
// trips. Each target's client is driven by its own goroutine per call, so
// the single-flow invariant holds per process.
type Publisher struct {
	names   []string
	clients []*Client
}

// NewPublisher assembles a fan-out set. Names and clients correspond by
// index; the Publisher takes ownership of the clients.
func NewPublisher(names []string, clients []*Client) *Publisher {
	if len(names) != len(clients) {
		panic("policyd: NewPublisher: names and clients length mismatch")
	}
	return &Publisher{names: names, clients: clients}
}

// Apply publishes one batch to every target concurrently and returns the
// per-target results in target order.
func (p *Publisher) Apply(src string, lines []string, timeout time.Duration) []PublishResult {
	return p.fanout(Request{Op: "apply", Src: src, Lines: lines}, timeout)
}

// Rollback reverts every target by one version concurrently.
func (p *Publisher) Rollback(timeout time.Duration) []PublishResult {
	return p.fanout(Request{Op: "rollback"}, timeout)
}

// fanout runs one request against every target on its own goroutine.
func (p *Publisher) fanout(req Request, timeout time.Duration) []PublishResult {
	results := make([]PublishResult, len(p.clients))
	done := make(chan int, len(p.clients))
	for i := range p.clients {
		go func(i int) {
			t0 := time.Now()
			resp, err := p.clients[i].Do(req, timeout)
			rtt := time.Since(t0)
			results[i] = PublishResult{Name: p.names[i], RTT: rtt, RTTNs: rtt.Nanoseconds(), Resp: resp}
			if err != nil {
				results[i].Err = err.Error()
			}
			done <- i
		}(i)
	}
	for range p.clients {
		<-done
	}
	return results
}

// Close tears down every target connection.
func (p *Publisher) Close() {
	for _, c := range p.clients {
		c.Close()
	}
}
