// Package policyd is the live policy control plane: a daemon that owns an
// engine's rule base and applies streamed updates — add/remove/replace
// batches, full reloads, rollbacks — as single hitless transactions, each
// gated through the pfcheck analyzer before its publish commits.
//
// The protocol is JSON lines over the simulated kernel's own abstract-
// namespace sockets (dogfooding internal/ipc the way internal/trace
// streams spans): one Request line in, one Response line out, in order,
// per connection. Because every update rides pf.TransactionGated, the
// mediation path never observes a half-applied batch — readers keep
// filtering against the previous ruleset generation until the atomic
// pointer store, and a vetoed or failed batch publishes nothing at all.
//
// Concurrency: the server owns exactly one simulated process and issues
// all of its syscalls from the event-loop goroutine; clients each own a
// fresh process driven by the caller's goroutine. Both endpoints are muted
// on the tracer (when one is attached) so the control plane's own
// Send/Recv traffic does not pollute provenance streams.
package policyd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/pfcheck"
	"pfirewall/internal/pftables"
	"pfirewall/internal/pfverify"
)

// DefaultSocketName is the abstract-namespace rendezvous both pfctl and
// Serve default to.
const DefaultSocketName = "pfpolicy"

// policyLabel is the subject label of the control plane's endpoint
// processes. It appears in no shipped ruleset, so persona-targeted rules
// can never match the transport.
const policyLabel = "pfpolicyd_t"

// serverPoll bounds how long an idle server loop sleeps between accept and
// read polls.
const serverPoll = 500 * time.Microsecond

// Request is one control-plane operation, a single JSON line.
type Request struct {
	// Op selects the operation: "apply", "rollback", "version", "ping".
	Op string `json:"op"`
	// Src names the batch for rule provenance and gate scoping ("apply").
	Src string `json:"src,omitempty"`
	// Lines is the pftables batch to apply atomically ("apply").
	Lines []string `json:"lines,omitempty"`
	// NoCheck skips the pfcheck gate for this batch ("apply").
	NoCheck bool `json:"no_check,omitempty"`
}

// Response answers one Request, a single JSON line.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Version and Rules describe the live ruleset after the operation.
	Version uint64 `json:"version"`
	Rules   int    `json:"rules"`
	// Findings carries the gate's error-class diagnostics when a batch was
	// vetoed (rendered compiler-style).
	Findings []string `json:"findings,omitempty"`
	// PublishNs is the wall time the apply spent inside the engine
	// transaction (parse + mutate + gate + compile + publish).
	PublishNs int64 `json:"publish_ns,omitempty"`
	// Incremental reports whether the publish took the delta-compile path
	// (bucket-level copy-on-write) rather than a from-scratch compile.
	Incremental bool `json:"incremental,omitempty"`
}

// errVetoed marks a gate rejection inside ApplyAllGated so the handler can
// distinguish it from parse/install errors.
var errVetoed = errors.New("policyd: batch vetoed by pfcheck gate")

// Server owns an engine's rule base and serves the control protocol.
type Server struct {
	k      *kernel.Kernel
	env    *pftables.Env
	engine *pf.Engine
	sym    *pfcheck.Symbols
	proc   *kernel.Proc
	lfd    int

	// invs, when set, arms the pfverify refinement gate: a batch that
	// weakens an invariant the live generation satisfies is vetoed before
	// its publish commits. verifyVetoes counts those rejections.
	invs         []*pfverify.Invariant
	verifyVetoes atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// SetInvariants arms the symbolic refinement gate: every subsequent apply
// must refine the live ruleset with respect to invs — an invariant the
// current generation satisfies must still hold under the candidate, or the
// batch is vetoed pre-publish with the regression witnesses as findings.
// Call before the first client applies; the slice is not copied.
func (s *Server) SetInvariants(invs []*pfverify.Invariant) { s.invs = invs }

// VerifyVetoes reports how many applies the refinement gate rejected.
func (s *Server) VerifyVetoes() uint64 { return s.verifyVetoes.Load() }

// Serve binds an abstract socket named name (DefaultSocketName when empty)
// inside k's world and starts the control loop for engine. sym configures
// the pfcheck gate's symbol validation; nil skips symbol findings but
// keeps the reachability analysis.
func Serve(k *kernel.Kernel, env *pftables.Env, engine *pf.Engine, name string, sym *pfcheck.Symbols) (*Server, error) {
	if name == "" {
		name = DefaultSocketName
	}
	proc := k.NewProc(kernel.ProcSpec{UID: 0, Label: policyLabel})
	if t := k.Tracer(); t != nil {
		t.Mute(proc.PID())
	}
	lfd, err := proc.BindAbstract(name)
	if err != nil {
		return nil, err
	}
	if err := proc.Listen(lfd, 16); err != nil {
		return nil, err
	}
	s := &Server{
		k: k, env: env, engine: engine, sym: sym, proc: proc, lfd: lfd,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

// Close stops the control loop and waits for it to unwind.
func (s *Server) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// conn is one client connection's server-side state.
type conn struct {
	fd  int
	buf []byte
}

// loop is the server's single flow: admit pending connections, drain each
// client's stream, answer every complete request line in order.
func (s *Server) loop() {
	defer close(s.done)
	var conns []*conn
	defer func() {
		for _, c := range conns {
			_ = s.proc.Close(c.fd)
		}
		_ = s.proc.Close(s.lfd)
	}()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		busy := false
		for {
			fd, err := s.proc.Accept(s.lfd)
			if err != nil {
				break
			}
			conns = append(conns, &conn{fd: fd})
			busy = true
		}
		live := conns[:0]
		for _, c := range conns {
			ok, progressed := s.drain(c)
			if !ok {
				_ = s.proc.Close(c.fd)
				continue
			}
			busy = busy || progressed
			live = append(live, c)
		}
		conns = live
		if !busy {
			time.Sleep(serverPoll)
		}
	}
}

// drain reads whatever c has buffered and answers each complete line.
// Returns ok=false when the connection is gone.
func (s *Server) drain(c *conn) (ok, progressed bool) {
	data, err := s.proc.Recv(c.fd, 0)
	if len(data) > 0 {
		c.buf = append(c.buf, data...)
		progressed = true
	}
	if err != nil && !kernel.IsWouldBlock(err) {
		return false, progressed
	}
	for {
		i := bytes.IndexByte(c.buf, '\n')
		if i < 0 {
			return true, progressed
		}
		line := c.buf[:i]
		c.buf = c.buf[i+1:]
		resp := s.handle(line)
		out, merr := json.Marshal(resp)
		if merr != nil {
			out = []byte(`{"ok":false,"err":"policyd: response marshal failed"}`)
		}
		out = append(out, '\n')
		if _, err := s.proc.Send(c.fd, out); err != nil && !kernel.IsWouldBlock(err) {
			return false, progressed
		}
	}
}

// handle executes one request line.
func (s *Server) handle(line []byte) Response {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return s.status(false, fmt.Sprintf("policyd: bad request: %v", err))
	}
	switch req.Op {
	case "ping", "version":
		return s.status(true, "")
	case "rollback":
		if _, err := s.engine.Rollback(); err != nil {
			return s.status(false, err.Error())
		}
		return s.status(true, "")
	case "apply":
		return s.apply(&req)
	default:
		return s.status(false, fmt.Sprintf("policyd: unknown op %q", req.Op))
	}
}

// status snapshots the live ruleset into a minimal response.
func (s *Server) status(ok bool, errMsg string) Response {
	return Response{
		OK:      ok,
		Err:     errMsg,
		Version: s.engine.Version(),
		Rules:   s.engine.RuleCount(),
	}
}

// apply runs one batch as a single gated transaction. The gate analyzes
// the candidate rule base and vetoes on error-class findings anchored in
// this batch's source — pre-existing defects elsewhere in the rule base
// never wedge the control plane.
func (s *Server) apply(req *Request) Response {
	src := req.Src
	if src == "" {
		src = "policyd"
	}
	var vetoes []string
	gate := func(chains map[string]*pf.Chain) error {
		if req.NoCheck {
			return nil
		}
		rep := pfcheck.AnalyzeRuleset(s.engine.Policy().SIDs(), chains, s.sym)
		for _, f := range rep.Findings {
			if f.Sev == pfcheck.SevError && f.Pos.File == src {
				vetoes = append(vetoes, f.String())
			}
		}
		if len(vetoes) > 0 {
			return errVetoed
		}
		// Refinement gate: the candidate must not weaken any invariant the
		// live generation satisfies. Runs under the engine's write lock, so
		// FromEngine still observes the pre-publish generation while chains
		// is the candidate.
		if len(s.invs) > 0 {
			tbl := s.engine.Policy().SIDs()
			cur := pfverify.FromEngine(s.engine)
			cand := pfverify.NewEvaluator(s.engine.Policy(), chains, s.engine.Config())
			for _, reg := range pfverify.Refines(cur, cand, tbl, s.invs) {
				msg := fmt.Sprintf("pfverify: batch weakens invariant %s", reg.Invariant)
				if len(reg.Violations) > 0 {
					msg += ": " + reg.Violations[0].String()
				}
				vetoes = append(vetoes, msg)
			}
			if len(vetoes) > 0 {
				s.verifyVetoes.Add(1)
				return errVetoed
			}
		}
		return nil
	}
	st0 := s.engine.PublishStats()
	t0 := time.Now()
	_, err := pftables.ApplyAllGated(s.env, s.engine, src, req.Lines, gate)
	elapsed := time.Since(t0)
	st1 := s.engine.PublishStats()
	resp := s.status(err == nil, "")
	resp.PublishNs = elapsed.Nanoseconds()
	resp.Incremental = st1.DeltaCompiles > st0.DeltaCompiles
	if err != nil {
		resp.Err = err.Error()
		resp.Findings = vetoes
	}
	return resp
}
