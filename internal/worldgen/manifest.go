// manifest.go fingerprints a built world. The manifest is a deterministic
// depth-first walk of the whole tree in sorted entry order, hashing every
// attribute generation controls (path, type, ownership, mode, size, label
// name, symlink target) — but not inode numbers or generations, which
// depend on allocation order details the spec doesn't promise. Two builds
// from the same Spec must produce the same hash; the golden test pins
// this.
package worldgen

import (
	"fmt"
	"hash/fnv"
	"io"

	"pfirewall/internal/vfs"
)

// ManifestHash walks the world's filesystem and returns the FNV-1a hash of
// its manifest.
func (w *World) ManifestHash() uint64 {
	h := fnv.New64a()
	w.writeManifest(h)
	return h.Sum64()
}

// WriteManifest streams the human-readable manifest (one line per inode)
// to out — the thing ManifestHash hashes, exposed for debugging diverging
// worlds.
func (w *World) WriteManifest(out io.Writer) {
	w.writeManifest(out)
}

func (w *World) writeManifest(out io.Writer) {
	fs := w.K.FS
	sids := w.K.Policy.SIDs()
	var walk func(dir *vfs.Inode, path string)
	walk = func(dir *vfs.Inode, path string) {
		for _, name := range fs.List(dir) {
			n, ok := fs.Lookup(dir, name)
			if !ok {
				continue
			}
			full := path + "/" + name
			st := fs.StatOf(n)
			fmt.Fprintf(out, "%s t=%d uid=%d gid=%d mode=%o size=%d label=%s target=%s\n",
				full, st.Type, st.UID, st.GID, st.Mode, st.Size, sids.Label(st.SID), n.Target)
			if n.IsDir() {
				walk(n, full)
			}
		}
	}
	walk(fs.Root(), "")
}
