package worldgen

import (
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// TestDeterministicManifest is the golden determinism test: two builds
// from the same spec hash identically, and changing only the seed changes
// the hash (the /tmp seed spread is seed-dependent).
func TestDeterministicManifest(t *testing.T) {
	a := Build(Tiny, programs.WorldOpts{})
	b := Build(Tiny, programs.WorldOpts{})
	if ha, hb := a.ManifestHash(), b.ManifestHash(); ha != hb {
		t.Fatalf("same spec, different manifests: %x vs %x", ha, hb)
	}
	other := Tiny
	other.Seed = 99
	c := Build(other, programs.WorldOpts{})
	if a.ManifestHash() == c.ManifestHash() {
		t.Fatalf("different seeds produced identical manifests")
	}
}

// TestEstimatedInodesExact pins EstimatedInodes to what Build actually
// creates, for every preset small enough to build in a unit test.
func TestEstimatedInodesExact(t *testing.T) {
	for _, spec := range []Spec{Tiny, Small} {
		w := Build(spec, programs.WorldOpts{})
		if got, want := w.Stats.Inodes, spec.EstimatedInodes(); got != want {
			t.Errorf("%s: built %d inodes, estimated %d", spec.Name, got, want)
		}
	}
}

// TestLargeCrossesMillion checks the top preset's arithmetic clears the
// 1M-inode bar without building it.
func TestLargeCrossesMillion(t *testing.T) {
	if n := Large.EstimatedInodes(); n < 1_000_000 {
		t.Fatalf("Large estimates %d inodes, want >= 1,000,000", n)
	}
}

// TestRuleBaseSized checks Rules pads to the spec's total and that the
// whole base installs cleanly on an armed world.
func TestRuleBaseSized(t *testing.T) {
	cfg := pf.Optimized()
	w := Build(Tiny, programs.WorldOpts{PF: &cfg})
	if w.Stats.Rules < Tiny.Rules {
		t.Fatalf("installed %d rules, spec asks %d", w.Stats.Rules, Tiny.Rules)
	}
	if got := w.Engine.RuleCount(); got != w.Stats.Rules {
		t.Fatalf("engine holds %d rules, stats say %d", got, w.Stats.Rules)
	}
}

// TestTenantGuard exercises the generated world end to end: the web
// server serves tenant web content but is blocked by the per-tenant PF
// guard — not MAC, not DAC — when a planted symlink lures its serve
// entrypoint into a tenant home.
func TestTenantGuard(t *testing.T) {
	cfg := pf.Optimized()
	w := Build(Tiny, programs.WorldOpts{PF: &cfg, MACEnforcing: true})
	ap := programs.NewApache(w.World)
	ap.DocRoot = TenantRoot
	httpd := ap.Spawn()

	if _, err := ap.Serve(httpd, "/t00/u0000/public_html/index.html"); err != nil {
		t.Fatalf("benign serve: %v", err)
	}
	if _, err := ap.Serve(httpd, "/t01/u0001/current/index.html"); err != nil {
		t.Fatalf("serve through owner-matched symlink: %v", err)
	}

	// Adversary plants a lure in their own web tree pointing at a home
	// file; the serve entrypoint must get ErrPFDenied from the guard.
	adv := w.NewTenantUser(0, 0)
	lure := UserDir(0, 0) + "/public_html/steal.html"
	if err := adv.Symlink(HomeFilePath(0, 0, 0), lure); err != nil {
		t.Fatalf("adversary symlink: %v", err)
	}
	if _, err := ap.Serve(httpd, "/t00/u0000/public_html/steal.html"); err == nil {
		t.Fatalf("serve followed lure into tenant home")
	} else if err != kernel.ErrPFDenied && err != programs.ErrForbidden {
		t.Fatalf("lure denied by %v, want PF denial", err)
	}
}

// TestPathHelpersResolve checks the path-reconstruction helpers used by
// the fleet traffic drivers actually name inodes Build created.
func TestPathHelpersResolve(t *testing.T) {
	w := Build(Tiny, programs.WorldOpts{})
	spec := w.Spec
	paths := []string{
		WebFilePath(0, 0, 0),
		WebFilePath(spec.Tenants-1, spec.UsersPerTenant-1, spec.WebFilesPerUser),
		HomeFilePath(0, 0, 0),
		HomeFilePath(spec.Tenants-1, spec.UsersPerTenant-1, spec.HomeFilesPerUser),
		spec.DeepFilePath(0, 0),
	}
	for _, p := range paths {
		if _, ok := w.K.LookupIno(p); !ok {
			t.Errorf("%s does not resolve", p)
		}
	}
}
