// Package worldgen scales the simulated world from the hand-built image of
// internal/programs to deployment size: multi-tenant home directories,
// per-user web roots, a contended shared /tmp, and device/proc trees —
// millions of inodes, all labeled, with a MAC policy and a rule base sized
// to match. The paper evaluates the Process Firewall on real multi-process
// systems (Apache/PHP, sshd, dbus); worldgen is the standing stress bed
// that lets the reproduction's benchmarks drive the same mediation stack at
// "millions of users" scale instead of extrapolating from a toy tree.
//
// Generation is strictly deterministic: every decision comes from an
// embedded xorshift PRNG seeded by Spec.Seed, iteration is always in index
// order (never over maps), and the resulting tree can be fingerprinted with
// Manifest so two builds from the same spec are provably identical.
package worldgen

import (
	"fmt"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/mac"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/vfs"
)

// TenantRoot is where tenant trees live.
const TenantRoot = "/srv/tenants"

// Spec parameterizes one generated world. The preset specs (Tiny, Small,
// Medium, Large) are the sizes the worldscale benchmark sweeps; custom
// specs are fine anywhere a preset is accepted.
type Spec struct {
	Name string `json:"name"`
	// Seed drives every generation decision. Two builds with equal Spec
	// (including Seed) produce byte-identical world trees.
	Seed uint64 `json:"seed"`

	// Tenants × UsersPerTenant is the user population.
	Tenants        int `json:"tenants"`
	UsersPerTenant int `json:"users_per_tenant"`

	// WebFilesPerUser sizes each user's public_html asset set (index.html
	// is always present on top of these).
	WebFilesPerUser int `json:"web_files_per_user"`
	// HomeFilesPerUser sizes each user's home directory (plus .profile).
	HomeFilesPerUser int `json:"home_files_per_user"`

	// WebDepth nests a d1/d2/.../page.html chain under the web root of
	// every DeepEvery-th user, so a slice of traffic walks deep paths.
	WebDepth  int `json:"web_depth"`
	DeepEvery int `json:"deep_every"`

	// TmpFiles seeds the shared sticky /tmp with pre-existing contention.
	TmpFiles int `json:"tmp_files"`

	// Rules sizes the installed rule base: the paper's Table 5 rules, one
	// home-directory guard per tenant, and rulegen.ScaleRuleBase filler up
	// to this total.
	Rules int `json:"rules"`
}

// Presets. Inode totals include the base programs world (~70 inodes) plus
// the device and proc trees; see EstimatedInodes for the exact arithmetic.
var (
	// Tiny builds in microseconds; CI smoke tests and golden tests use it.
	Tiny = Spec{Name: "tiny", Seed: 1, Tenants: 2, UsersPerTenant: 4,
		WebFilesPerUser: 6, HomeFilesPerUser: 2, WebDepth: 3, DeepEvery: 2,
		TmpFiles: 8, Rules: 60}
	// Small is a single-rack deployment: ~10k inodes.
	Small = Spec{Name: "small", Seed: 1, Tenants: 8, UsersPerTenant: 25,
		WebFilesPerUser: 30, HomeFilesPerUser: 6, WebDepth: 4, DeepEvery: 8,
		TmpFiles: 64, Rules: 300}
	// Medium is a mid-size fleet: ~115k inodes.
	Medium = Spec{Name: "medium", Seed: 1, Tenants: 24, UsersPerTenant: 60,
		WebFilesPerUser: 66, HomeFilesPerUser: 8, WebDepth: 5, DeepEvery: 8,
		TmpFiles: 256, Rules: 1200}
	// Large crosses a million inodes: 64 tenants × 170 users.
	Large = Spec{Name: "large", Seed: 1, Tenants: 64, UsersPerTenant: 170,
		WebFilesPerUser: 80, HomeFilesPerUser: 8, WebDepth: 6, DeepEvery: 8,
		TmpFiles: 512, Rules: 3000}
)

// Presets lists the built-in sizes in ascending order.
func Presets() []Spec { return []Spec{Tiny, Small, Medium, Large} }

// SpecByName returns the preset with the given name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// perUserInodes is the exact inode count one user's subtree contributes:
// three directories (uNNNN, public_html, home), index.html, the web
// assets, .profile, the home files, and the "current" symlink.
func (s Spec) perUserInodes() int {
	return 3 + 1 + s.WebFilesPerUser + 1 + s.HomeFilesPerUser + 1
}

// EstimatedInodes predicts the number of inodes Build adds to the base
// world (tenant trees, /tmp seed, device and proc trees). BuildTest asserts
// this arithmetic exactly matches what Build creates.
func (s Spec) EstimatedInodes() int {
	n := 2 // /srv, /srv/tenants
	users := s.Tenants * s.UsersPerTenant
	n += s.Tenants // tenant directories
	n += users * s.perUserInodes()
	if s.DeepEvery > 0 && s.WebDepth > 0 {
		deepUsers := 0
		for u := 0; u < s.UsersPerTenant; u++ {
			if u%s.DeepEvery == 0 {
				deepUsers++
			}
		}
		n += s.Tenants * deepUsers * (s.WebDepth + 1) // chain dirs + page.html
	}
	n += s.TmpFiles
	n += len(devNodes) + 1  // /dev + device nodes
	n += 3 + len(procFiles) // /proc, /proc/sys, /proc/sys/kernel + files
	return n
}

// EstimatedUsers returns the simulated user population.
func (s Spec) EstimatedUsers() int { return s.Tenants * s.UsersPerTenant }

// BuildStats records what Build actually created.
type BuildStats struct {
	Inodes   int           `json:"inodes"` // created by worldgen, beyond the base image
	Users    int           `json:"users"`
	Labels   int           `json:"labels"` // SID-table size after build
	Rules    int           `json:"rules"`  // installed rule count (0 when PF detached)
	Duration time.Duration `json:"-"`
	BuildMs  float64       `json:"build_ms"`
}

// World is a generated deployment-scale world.
type World struct {
	*programs.World
	Spec  Spec
	Stats BuildStats
}

// xorshift64 is the same tiny deterministic PRNG rulegen embeds; worldgen
// carries its own copy so the two generators' streams stay independent.
type xorshift64 struct{ s uint64 }

func (x *xorshift64) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift64) intn(n int) int { return int(x.next() % uint64(n)) }

// Tenant label names. The label space is bounded by tenants (not users) so
// the SID table grows into the hundreds, not the tens of thousands: per
// tenant a web-content label, a home label, and an untrusted user-subject
// label.
func webLabel(t int) mac.Label  { return mac.Label(fmt.Sprintf("tenant%02d_web_t", t)) }
func homeLabel(t int) mac.Label { return mac.Label(fmt.Sprintf("tenant%02d_home_t", t)) }
func userLabel(t int) mac.Label { return mac.Label(fmt.Sprintf("tenant%02d_user_t", t)) }

// UserUID returns the uid of tenant t's user u.
func UserUID(t, u int) int { return 10000 + t*1000 + u }

// TenantDir returns the tenant's directory path.
func TenantDir(t int) string { return fmt.Sprintf("%s/t%02d", TenantRoot, t) }

// UserDir returns the user's directory path.
func UserDir(t, u int) string { return fmt.Sprintf("%s/u%04d", TenantDir(t), u) }

// WebFilePath reconstructs the path of one generated web asset without
// consulting the filesystem, so traffic drivers can address a
// million-inode tree without holding a million path strings: i selects
// index.html (i == 0) or asset a%03d.html (1 ≤ i ≤ WebFilesPerUser).
func WebFilePath(t, u, i int) string {
	if i == 0 {
		return UserDir(t, u) + "/public_html/index.html"
	}
	return fmt.Sprintf("%s/public_html/a%03d.html", UserDir(t, u), i-1)
}

// HomeFilePath reconstructs the path of one generated home file: i selects
// .profile (i == 0) or f%02d.dat (1 ≤ i ≤ HomeFilesPerUser).
func HomeFilePath(t, u, i int) string {
	if i == 0 {
		return UserDir(t, u) + "/home/.profile"
	}
	return fmt.Sprintf("%s/home/f%02d.dat", UserDir(t, u), i-1)
}

// DeepFilePath reconstructs the deep page path for a deep user (u %
// DeepEvery == 0), the d1/d2/.../page.html chain.
func (s Spec) DeepFilePath(t, u int) string {
	p := UserDir(t, u) + "/public_html"
	for d := 1; d <= s.WebDepth; d++ {
		p += fmt.Sprintf("/d%d", d)
	}
	return p + "/page.html"
}

// devNodes is the static device tree (inode-bearing; /dev/log is a socket).
var devNodes = []struct {
	name string
	typ  vfs.FileType
	mode uint16
}{
	{"null", vfs.TypeRegular, 0o666},
	{"zero", vfs.TypeRegular, 0o666},
	{"full", vfs.TypeRegular, 0o666},
	{"urandom", vfs.TypeRegular, 0o666},
	{"random", vfs.TypeRegular, 0o666},
	{"tty", vfs.TypeRegular, 0o666},
	{"log", vfs.TypeSocket, 0o666},
	{"shm", vfs.TypeDir, 0o1777},
}

// procFiles is the static proc tree under /proc and /proc/sys/kernel.
var procFiles = []struct {
	path    string
	content string
}{
	{"/proc/meminfo", "MemTotal: 16331648 kB"},
	{"/proc/loadavg", "0.42 0.37 0.30 2/512 4242"},
	{"/proc/sys/kernel/ostype", "Linux"},
	{"/proc/sys/kernel/osrelease", "3.2.0-pf"},
	{"/proc/sys/kernel/pid_max", "32768"},
}

// Build generates the world: the standard base image plus the scaled
// tenant population, labeled and (when opts.PF is set) ruled. The
// firewall, MAC mode, and observability attachment all pass through opts
// unchanged.
func Build(spec Spec, opts programs.WorldOpts) *World {
	start := time.Now()
	w := &World{World: programs.NewWorld(opts), Spec: spec}
	g := &builder{w: w, rng: xorshift64{s: spec.Seed | 1}}

	g.policy()
	g.contexts()
	g.devProc()
	g.tmp()
	g.tenants()

	if w.Engine != nil {
		rules := Rules(spec)
		// Named install: provenance spans from fleet runs attribute their
		// deciding rule to "worldgen.pft:<line>" instead of a bare line.
		n, err := pftables.InstallAllFrom(w.Env, w.Engine, "worldgen.pft", rules)
		if err != nil {
			panic(fmt.Sprintf("worldgen: rule install: %v", err))
		}
		w.Stats.Rules = n
	}

	w.Stats.Users = spec.EstimatedUsers()
	w.Stats.Labels = w.K.Policy.SIDs().Len()
	w.Stats.Duration = time.Since(start)
	w.Stats.BuildMs = float64(w.Stats.Duration.Microseconds()) / 1000
	return w
}

// builder carries build state.
type builder struct {
	w   *World
	rng xorshift64
}

// created counts one worldgen-created inode.
func (g *builder) created() { g.w.Stats.Inodes++ }

// mkdir creates one directory with an explicit label, counting it.
func (g *builder) mkdir(parent *vfs.Inode, name, full string, uid, gid int, mode uint16, lbl mac.Label) *vfs.Inode {
	n, err := g.w.K.FS.CreateAt(parent, name, full, vfs.CreateOpts{
		UID: uid, GID: gid, Mode: mode, Type: vfs.TypeDir, Label: lbl,
	})
	if err != nil {
		panic(fmt.Sprintf("worldgen: mkdir %s: %v", full, err))
	}
	g.created()
	return n
}

// mkfile creates one regular file with an explicit label, counting it.
func (g *builder) mkfile(parent *vfs.Inode, name, full string, uid, gid int, mode uint16, lbl mac.Label, content string) *vfs.Inode {
	n, err := g.w.K.FS.CreateAt(parent, name, full, vfs.CreateOpts{
		UID: uid, GID: gid, Mode: mode, Label: lbl,
	})
	if err != nil {
		panic(fmt.Sprintf("worldgen: create %s: %v", full, err))
	}
	if content != "" {
		g.w.K.FS.WriteFile(n, []byte(content))
	}
	g.created()
	return n
}

// policy extends the base MAC policy with the tenant label space: each
// tenant's untrusted user subject can write its own home and web tree
// (the adversary accessibility the firewall consumes), and the web server
// can read every tenant's web content but has no MAC grant on homes.
func (g *builder) policy() {
	pol := g.w.K.Policy
	spec := g.w.Spec
	pol.Allow("httpd_t", "tenant_root_t", mac.ClassDir, mac.PermSearch|mac.PermRead)
	// The base policy grants httpd_t file read/execute on user scripts but
	// no search on the script directory itself; the fleet's mod_php
	// traffic walks into it under enforcement.
	pol.Allow("httpd_t", "httpd_user_script_exec_t", mac.ClassDir, mac.PermSearch)
	for t := 0; t < spec.Tenants; t++ {
		web, home, usr := webLabel(t), homeLabel(t), userLabel(t)
		pol.Allow(usr, home, mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate|mac.PermUnlink)
		pol.Allow(usr, home, mac.ClassDir, mac.PermSearch|mac.PermAddName|mac.PermRemoveName)
		pol.Allow(usr, home, mac.ClassLnkFile, mac.PermRead|mac.PermCreate)
		pol.Allow(usr, web, mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate)
		pol.Allow(usr, web, mac.ClassDir, mac.PermSearch|mac.PermAddName)
		pol.Allow(usr, web, mac.ClassLnkFile, mac.PermRead|mac.PermCreate)
		pol.Allow(usr, "tmp_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate|mac.PermUnlink)
		pol.Allow(usr, "tmp_t", mac.ClassDir, mac.PermSearch|mac.PermAddName|mac.PermRemoveName)
		pol.Allow(usr, "tmp_t", mac.ClassLnkFile, mac.PermRead|mac.PermCreate)
		// Traversal of the shared prefix (/, /srv, /srv/tenants) and read
		// access to public system files, mirroring base user_t.
		for _, obj := range []mac.Label{"default_t", "tenant_root_t", "etc_t", "lib_t", "usr_t", "bin_t"} {
			pol.Allow(usr, obj, mac.ClassFile, mac.PermRead)
			pol.Allow(usr, obj, mac.ClassDir, mac.PermSearch)
		}
		pol.Allow("httpd_t", web, mac.ClassFile, mac.PermRead)
		pol.Allow("httpd_t", web, mac.ClassDir, mac.PermSearch|mac.PermRead)
		pol.Allow("httpd_t", web, mac.ClassLnkFile, mac.PermRead)
		pol.Allow("httpd_t", home, mac.ClassFile, mac.PermRead)
		pol.Allow("httpd_t", home, mac.ClassDir, mac.PermSearch)
	}
}

// contexts registers per-tenant file contexts so files created at runtime
// under a tenant tree inherit the tenant's web label, and the device/proc
// prefixes label correctly.
func (g *builder) contexts() {
	fc := g.w.K.Contexts
	for t := 0; t < g.w.Spec.Tenants; t++ {
		fc.Add(TenantDir(t), webLabel(t))
	}
	fc.Add("/dev", "device_t")
	fc.Add("/proc", "proc_t")
	fc.Add(TenantRoot, "tenant_root_t")
}

// devProc builds the static /dev and /proc trees.
func (g *builder) devProc() {
	fs := g.w.K.FS
	dev := g.mkdir(fs.Root(), "dev", "/dev", 0, 0, 0o755, "device_t")
	for _, d := range devNodes {
		_, err := fs.CreateAt(dev, d.name, "/dev/"+d.name, vfs.CreateOpts{
			Mode: d.mode, Type: d.typ, Label: "device_t",
		})
		if err != nil {
			panic(fmt.Sprintf("worldgen: /dev/%s: %v", d.name, err))
		}
		g.created()
	}
	proc := g.mkdir(fs.Root(), "proc", "/proc", 0, 0, 0o555, "proc_t")
	sys := g.mkdir(proc, "sys", "/proc/sys", 0, 0, 0o555, "proc_t")
	g.mkdir(sys, "kernel", "/proc/sys/kernel", 0, 0, 0o555, "proc_t")
	for _, pfile := range procFiles {
		dir := fs.MustPath(parentOf(pfile.path))
		g.mkfile(dir, baseOf(pfile.path), pfile.path, 0, 0, 0o444, "proc_t", pfile.content)
	}
}

// tmp seeds the shared sticky /tmp with pre-existing files owned by a
// deterministic spread of tenant users — the contention surface.
func (g *builder) tmp() {
	fs := g.w.K.FS
	tmp := fs.MustPath("/tmp")
	spec := g.w.Spec
	for i := 0; i < spec.TmpFiles; i++ {
		t := g.rng.intn(maxInt(spec.Tenants, 1))
		u := g.rng.intn(maxInt(spec.UsersPerTenant, 1))
		name := fmt.Sprintf("seed-%04d", i)
		g.mkfile(tmp, name, "/tmp/"+name, UserUID(t, u), UserUID(t, u), 0o644, "tmp_t", "")
	}
}

// tenants builds the tenant population in strict index order.
func (g *builder) tenants() {
	fs := g.w.K.FS
	spec := g.w.Spec
	srv := g.mkdir(fs.Root(), "srv", "/srv", 0, 0, 0o755, "tenant_root_t")
	troot := g.mkdir(srv, "tenants", TenantRoot, 0, 0, 0o755, "tenant_root_t")

	for t := 0; t < spec.Tenants; t++ {
		web, home := webLabel(t), homeLabel(t)
		tdir := g.mkdir(troot, fmt.Sprintf("t%02d", t), TenantDir(t), 0, 0, 0o755, web)
		for u := 0; u < spec.UsersPerTenant; u++ {
			uid := UserUID(t, u)
			udirPath := UserDir(t, u)
			udir := g.mkdir(tdir, fmt.Sprintf("u%04d", u), udirPath, uid, uid, 0o755, web)

			// public_html: index + assets, world-readable for the server.
			wdir := g.mkdir(udir, "public_html", udirPath+"/public_html", uid, uid, 0o755, web)
			g.mkfile(wdir, "index.html", udirPath+"/public_html/index.html",
				uid, uid, 0o644, web, fmt.Sprintf("<html>t%02d/u%04d</html>", t, u))
			for i := 0; i < spec.WebFilesPerUser; i++ {
				name := fmt.Sprintf("a%03d.html", i)
				g.mkfile(wdir, name, udirPath+"/public_html/"+name, uid, uid, 0o644, web, "")
			}

			// home: .profile + data files; world-readable files under a
			// 0711 directory, so DAC admits the traversal and the PF's
			// tenant guard is the layer that actually protects them.
			hdir := g.mkdir(udir, "home", udirPath+"/home", uid, uid, 0o711, home)
			g.mkfile(hdir, ".profile", udirPath+"/home/.profile", uid, uid, 0o644, home, "export PS1=$")
			for i := 0; i < spec.HomeFilesPerUser; i++ {
				name := fmt.Sprintf("f%02d.dat", i)
				g.mkfile(hdir, name, udirPath+"/home/"+name, uid, uid, 0o644, home, "")
			}

			// current -> public_html, owner-consistent so the system-wide
			// symlink rule stays quiet on legitimate traffic.
			_, err := fs.CreateAt(udir, "current", udirPath+"/current", vfs.CreateOpts{
				UID: uid, GID: uid, Mode: 0o777, Type: vfs.TypeSymlink,
				Target: udirPath + "/public_html", Label: web,
			})
			if err != nil {
				panic(fmt.Sprintf("worldgen: symlink %s/current: %v", udirPath, err))
			}
			g.created()

			// Deep chain for every DeepEvery-th user.
			if spec.DeepEvery > 0 && spec.WebDepth > 0 && u%spec.DeepEvery == 0 {
				cur := wdir
				curPath := udirPath + "/public_html"
				for d := 1; d <= spec.WebDepth; d++ {
					name := fmt.Sprintf("d%d", d)
					curPath += "/" + name
					cur = g.mkdir(cur, name, curPath, uid, uid, 0o755, web)
				}
				g.mkfile(cur, "page.html", curPath+"/page.html", uid, uid, 0o644, web, "deep")
			}
		}
	}
}

// Rules builds the spec's rule base: the paper's Table 5 set, one
// home-directory guard per tenant (the web server's serve entrypoint must
// never open tenant home content, however it was reached), and
// rulegen.ScaleRuleBase filler up to Spec.Rules total — the per-size rule
// base the dispatch index is exercised against.
func Rules(spec Spec) []string {
	rules := programs.StandardRules()
	for t := 0; t < spec.Tenants; t++ {
		rules = append(rules, fmt.Sprintf(
			"pftables -p %s -i 0x%x -d {%s} -o FILE_OPEN -j DROP",
			programs.BinApache, programs.EntryApacheServe, homeLabel(t)))
	}
	if n := spec.Rules - len(rules); n > 0 {
		rules = append(rules, rulegen.ScaleRuleBase(spec.Seed, n)...)
	}
	return rules
}

// Invariants returns the pfverify invariant source the spec's rule base
// must satisfy: tenant non-interference stated as an abstract property —
// the web server's serve entrypoint never opens tenant home content, for
// any tenant, whatever subject, process state, or rule ordering. The
// per-tenant guard rules in Rules are the mechanism; this is the property,
// so dropping or preempting any one guard fails verification.
func Invariants() string {
	return `invariant tenant-home-no-serve {
    require DROP
    op FILE_OPEN
    subject any
    object tenant??_home_t
    entry ` + programs.BinApache + fmt.Sprintf(":0x%x", programs.EntryApacheServe) + `
}
`
}

// NewTenantUser starts an untrusted process for tenant t's user u, the
// adversary population of the generated world.
func (w *World) NewTenantUser(t, u int) *kernel.Proc {
	return w.K.NewProc(kernel.ProcSpec{
		UID: UserUID(t, u), GID: UserUID(t, u), Label: userLabel(t),
		Exec: programs.BinSh, Cwd: UserDir(t, u),
	})
}

func parentOf(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

func baseOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
