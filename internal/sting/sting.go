// Package sting implements the vulnerability testing tool the paper uses
// to seed its rule generation (Section 6.3.1: "we generate rules for each
// of the over 20 previously-unknown vulnerabilities we found using our
// vulnerability testing tool [41]. Our testing tool logs the process
// entrypoint and the unsafe resource that led to the attack") — a
// simulation of STING (Vijayakumar et al., USENIX Security 2012).
//
// The tool works in two phases, as STING does:
//
//  1. Attack-surface identification: run the victim workload under a
//     recording tripwire and collect every pathname resolution that passes
//     through an adversary-writable directory — the name bindings an
//     adversary could influence.
//  2. Active probing: for each surface entry, re-run the workload with an
//     attack planted at that binding (a symlink to a secret for
//     link-following/traversal tests, a pre-created file for squat tests)
//     and observe whether the victim accepts the planted resource. Each
//     accepted attack yields a Vuln report carrying the victim's program,
//     entrypoint, and operation — exactly what rulegen.RulesFromVuln needs
//     to emit a blocking rule.
package sting

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
	"pfirewall/internal/rulegen"
	"pfirewall/internal/trace"
	"pfirewall/internal/vfs"
)

// ProbeKind is the attack variety planted at a surface entry.
type ProbeKind uint8

// Probe kinds.
const (
	// ProbeSymlink plants a symbolic link to a high-secrecy target
	// (link following / untrusted search path direction).
	ProbeSymlink ProbeKind = iota
	// ProbeSquat pre-creates an adversary-owned file at the binding
	// (file squatting direction).
	ProbeSquat
)

// String names the probe kind.
func (k ProbeKind) String() string {
	if k == ProbeSquat {
		return "squat"
	}
	return "symlink"
}

// Surface is one adversary-influenceable name binding discovered in
// phase 1: the victim resolved Path while an adversary could write the
// containing directory.
type Surface struct {
	Path       string // the binding the adversary can redirect
	Program    string // victim program
	Entrypoint uint64 // victim entrypoint performing the access
	Op         string // mediated operation
}

// Finding is one confirmed vulnerability from phase 2.
type Finding struct {
	Surface Surface
	Kind    ProbeKind
	// PlantedIno is the inode of the adversary resource the victim
	// accepted.
	PlantedIno uint64
}

// Vuln converts the finding into rulegen's vulnerability report.
func (f Finding) Vuln() rulegen.Vuln {
	return rulegen.Vuln{
		Kind:       rulegen.VulnUntrustedResource,
		Program:    f.Surface.Program,
		Entrypoint: f.Surface.Entrypoint,
		Op:         f.Surface.Op,
	}
}

// Workload is the victim behaviour under test. NewWorld must build a fresh
// world (attacks mutate the filesystem, so every probe runs on a clean
// one); Run drives the victim once and reports the resources it accepted.
type Workload struct {
	// NewWorld builds a pristine world for one run.
	NewWorld func() *programs.World
	// Run executes the victim once, returning the inodes of the resources
	// it ended up using (e.g. the library it loaded, the file it read).
	Run func(w *programs.World) ([]uint64, error)
}

// Tester drives the two phases.
type Tester struct {
	// SecretTarget is where symlink probes point (default /etc/shadow).
	SecretTarget string
}

// New returns a tester with defaults.
func New() *Tester { return &Tester{SecretTarget: "/etc/shadow"} }

// FindSurfaces runs phase 1: execute the workload under a LOG-everything
// firewall and keep every access whose resolution passed through an
// adversary-writable binding.
func (t *Tester) FindSurfaces(wl Workload) ([]Surface, error) {
	w := wl.NewWorld()
	if w.Engine == nil {
		return nil, errors.New("sting: workload world must have a firewall for tracing")
	}
	store := trace.NewStore()
	w.Engine.Logger = store.Collector(w.K.Policy.SIDs())
	if err := installLogAll(w); err != nil {
		return nil, err
	}
	if _, err := wl.Run(w); err != nil {
		return nil, fmt.Errorf("sting: phase 1 run: %w", err)
	}

	seen := map[Surface]bool{}
	var out []Surface
	for _, r := range store.Records() {
		// A binding is attackable if the adversary can modify it — the
		// record's own adversary-accessibility bit, restricted to named
		// filesystem resources.
		if !r.AdvWrite || r.Path == "" || r.Program == "" {
			continue
		}
		s := Surface{Path: r.Path, Program: r.Program, Entrypoint: r.Entrypoint, Op: r.Op}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Entrypoint < out[j].Entrypoint
	})
	return out, nil
}

// installLogAll adds the system-wide LOG rule phase 1 records through.
func installLogAll(w *programs.World) error {
	_, err := w.InstallRules([]string{`pftables -I input -j LOG --prefix "sting"`})
	return err
}

// Probe runs phase 2 for one surface entry and probe kind: plant the
// attack in a fresh world, re-run the workload, and decide whether the
// victim accepted the planted resource.
func (t *Tester) Probe(wl Workload, s Surface, kind ProbeKind) (*Finding, error) {
	w := wl.NewWorld()
	adv := w.NewUser()

	planted, err := t.plant(w, adv, s.Path, kind)
	if err != nil {
		// The binding was not actually attackable in a fresh world (e.g.
		// the file already exists for squat); not a finding.
		return nil, nil
	}

	used, err := wl.Run(w)
	if err != nil {
		// The attack crashed the victim rather than redirecting it; STING
		// records these separately — we treat them as no finding.
		return nil, nil
	}
	target := planted
	if kind == ProbeSymlink {
		// Accepting the symlink means reaching its target.
		res, rerr := w.K.FS.Resolve(nil, t.SecretTarget, vfs.ResolveOpts{FollowFinal: true}, nil)
		if rerr != nil {
			return nil, rerr
		}
		target = uint64(res.Node.Ino)
	}
	for _, ino := range used {
		if ino == target {
			return &Finding{Surface: s, Kind: kind, PlantedIno: planted}, nil
		}
	}
	return nil, nil
}

// plant installs the adversary resource at path, returning its inode.
func (t *Tester) plant(w *programs.World, adv *kernel.Proc, path string, kind ProbeKind) (uint64, error) {
	// Ensure intermediate adversary-owned directories exist (mirrors the
	// adversary's mkdir in shared spaces like /tmp).
	dir := path[:strings.LastIndex(path, "/")]
	if dir != "" && dir != "/tmp" {
		if err := adv.Mkdir(dir, 0o777); err != nil && !errors.Is(err, vfs.ErrExist) {
			return 0, err
		}
	}
	switch kind {
	case ProbeSymlink:
		if err := adv.Symlink(t.SecretTarget, path); err != nil {
			return 0, err
		}
	case ProbeSquat:
		fd, err := adv.Open(path, kernel.O_CREAT|kernel.O_EXCL|kernel.O_RDWR, 0o666)
		if err != nil {
			return 0, err
		}
		adv.Write(fd, []byte("SQUATTED"))
		adv.Close(fd)
	}
	res, err := w.K.FS.Resolve(nil, path, vfs.ResolveOpts{}, nil)
	if err != nil {
		return 0, err
	}
	return uint64(res.Node.Ino), nil
}

// Hunt runs both phases end to end: identify surfaces, probe each with
// both attack kinds, and return the confirmed findings.
func (t *Tester) Hunt(wl Workload) ([]Finding, error) {
	surfaces, err := t.FindSurfaces(wl)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, s := range surfaces {
		for _, kind := range []ProbeKind{ProbeSymlink, ProbeSquat} {
			f, err := t.Probe(wl, s, kind)
			if err != nil {
				return findings, err
			}
			if f != nil {
				findings = append(findings, *f)
			}
		}
	}
	return findings, nil
}

// Rules converts findings into pftables rules via template T1, one rule
// per distinct (program, entrypoint, op).
func Rules(findings []Finding) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range findings {
		for _, r := range rulegen.RulesFromVuln(f.Vuln()) {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}
