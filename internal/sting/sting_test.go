package sting

import (
	"errors"
	"strings"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// tmpConfigWorkload is a vulnerable victim modeled on the java launcher
// (E7): a root daemon that reads its configuration from a fixed name in
// the world-writable /tmp before falling back to /etc.
func tmpConfigWorkload() Workload {
	return Workload{
		NewWorld: func() *programs.World {
			cfg := pf.Optimized()
			return programs.NewWorld(programs.WorldOpts{PF: &cfg})
		},
		Run: func(w *programs.World) ([]uint64, error) {
			p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "java_t", Exec: programs.BinJava})
			var used []uint64
			for _, cand := range []string{"/tmp/app.conf", "/etc/java.conf"} {
				if err := p.SyscallSite(programs.BinJava, programs.EntryJavaConf); err != nil {
					return nil, err
				}
				fd, err := p.Open(cand, kernel.O_RDONLY, 0)
				if err != nil {
					continue
				}
				st, _ := p.Fstat(fd)
				p.ReadAll(fd)
				p.Close(fd)
				used = append(used, uint64(st.Ino))
				break
			}
			return used, nil
		},
	}
}

func TestFindSurfaces(t *testing.T) {
	surfaces, err := New().FindSurfaces(tmpConfigWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// The probe of /tmp/app.conf traverses /tmp (adversary-writable dir
	// search); the config file itself does not exist in the clean world,
	// so the surface is the /tmp directory binding plus nothing else
	// adversary-writable.
	if len(surfaces) == 0 {
		t.Fatal("no surfaces found")
	}
	foundTmp := false
	for _, s := range surfaces {
		if s.Path == "/tmp" && s.Program == programs.BinJava {
			foundTmp = true
			if s.Entrypoint != programs.EntryJavaConf {
				t.Errorf("surface entrypoint = %#x, want %#x", s.Entrypoint, programs.EntryJavaConf)
			}
		}
		if strings.HasPrefix(s.Path, "/etc") {
			t.Errorf("high-integrity binding %q must not be a surface", s.Path)
		}
	}
	if !foundTmp {
		t.Errorf("surfaces = %+v, want /tmp binding", surfaces)
	}
}

func TestProbeSquatFindsVulnerability(t *testing.T) {
	wl := tmpConfigWorkload()
	s := Surface{Path: "/tmp/app.conf", Program: programs.BinJava,
		Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN"}
	f, err := New().Probe(wl, s, ProbeSquat)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("squat probe should confirm the vulnerability")
	}
	if f.Kind != ProbeSquat || f.Surface != s {
		t.Errorf("finding = %+v", f)
	}
}

func TestProbeSymlinkFindsVulnerability(t *testing.T) {
	wl := tmpConfigWorkload()
	s := Surface{Path: "/tmp/app.conf", Program: programs.BinJava,
		Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN"}
	f, err := New().Probe(wl, s, ProbeSymlink)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("symlink probe should confirm the vulnerability (victim reads the secret)")
	}
	if f.Kind != ProbeSymlink {
		t.Errorf("finding kind = %v", f.Kind)
	}
}

func TestProbeSafeProgramFindsNothing(t *testing.T) {
	// A victim that only reads its /etc config is not redirectable.
	wl := Workload{
		NewWorld: func() *programs.World {
			cfg := pf.Optimized()
			return programs.NewWorld(programs.WorldOpts{PF: &cfg})
		},
		Run: func(w *programs.World) ([]uint64, error) {
			p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "java_t", Exec: programs.BinJava})
			p.SyscallSite(programs.BinJava, programs.EntryJavaConf)
			fd, err := p.Open("/etc/java.conf", kernel.O_RDONLY, 0)
			if err != nil {
				return nil, err
			}
			st, _ := p.Fstat(fd)
			p.Close(fd)
			return []uint64{uint64(st.Ino)}, nil
		},
	}
	s := Surface{Path: "/tmp/unrelated", Program: programs.BinJava,
		Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN"}
	f, err := New().Probe(wl, s, ProbeSquat)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Errorf("safe program yielded a finding: %+v", f)
	}
}

func TestHuntEndToEnd(t *testing.T) {
	wl := tmpConfigWorkload()
	tester := New()

	// Phase 1 gives the /tmp directory surface; Hunt probes bindings, but
	// directory-search surfaces are not directly plantable — extend the
	// surface list with the file binding STING derives from the failed
	// final lookup. We model that derivation here explicitly.
	findings, err := tester.Hunt(wl)
	if err != nil {
		t.Fatal(err)
	}
	f, err := tester.Probe(wl, Surface{
		Path: "/tmp/app.conf", Program: programs.BinJava,
		Entrypoint: programs.EntryJavaConf, Op: "FILE_OPEN",
	}, ProbeSquat)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		findings = append(findings, *f)
	}
	if len(findings) == 0 {
		t.Fatal("hunt found nothing")
	}

	// Convert findings to rules, deploy, and verify the attack is dead.
	rules := Rules(findings)
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	w := wl.NewWorld()
	if _, err := pftables.InstallAll(w.Env, w.Engine, rules); err != nil {
		t.Fatalf("install generated rules: %v", err)
	}
	adv := w.NewUser()
	fd, err := adv.Open("/tmp/app.conf", kernel.O_CREAT|kernel.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	adv.Write(fd, []byte("SQUATTED"))
	adv.Close(fd)

	victim := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "java_t", Exec: programs.BinJava})
	victim.SyscallSite(programs.BinJava, programs.EntryJavaConf)
	if _, err := victim.Open("/tmp/app.conf", kernel.O_RDONLY, 0); !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("generated rule should block the squatted config: %v", err)
	}
	// The fallback config still loads — no false positive.
	victim.SyscallSite(programs.BinJava, programs.EntryJavaConf)
	if _, err := victim.Open("/etc/java.conf", kernel.O_RDONLY, 0); err != nil {
		t.Errorf("trusted config blocked: %v", err)
	}
}

func TestRulesDeduplicate(t *testing.T) {
	s := Surface{Path: "/tmp/x", Program: "/usr/bin/java", Entrypoint: 0x5d7e, Op: "FILE_OPEN"}
	rules := Rules([]Finding{{Surface: s, Kind: ProbeSquat}, {Surface: s, Kind: ProbeSymlink}})
	if len(rules) != 1 {
		t.Errorf("rules = %v, want 1 deduplicated", rules)
	}
}

func TestProbeKindString(t *testing.T) {
	if ProbeSymlink.String() != "symlink" || ProbeSquat.String() != "squat" {
		t.Error("ProbeKind.String mismatch")
	}
}

func TestPlantRequiresAttackableBinding(t *testing.T) {
	w := programs.NewWorld(programs.WorldOpts{})
	adv := w.NewUser()
	// /etc is not adversary-writable; planting must fail cleanly.
	if _, err := New().plant(w, adv, "/etc/planted", ProbeSquat); err == nil {
		t.Error("plant in /etc should fail for the adversary")
	}
	if _, err := w.K.FS.Resolve(nil, "/etc/planted", vfs.ResolveOpts{}, nil); !errors.Is(err, vfs.ErrNotExist) {
		t.Error("failed plant must leave nothing behind")
	}
}
