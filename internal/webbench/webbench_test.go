package webbench

import (
	"strings"
	"testing"

	"pfirewall/internal/lmbench"
	"pfirewall/internal/programs"
)

func TestDeepPath(t *testing.T) {
	cases := map[int]string{
		0: "/index.html",
		1: "/index.html",
		3: "/d/d/index.html",
		9: "/d/d/d/d/d/d/d/d/index.html",
	}
	for n, want := range cases {
		if got := DeepPath(n); got != want {
			t.Errorf("DeepPath(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunWebServesWithoutErrors(t *testing.T) {
	w := programs.NewWorld(programs.WorldOpts{WebTreeDepth: 4})
	a := programs.NewApache(w)
	res := RunWeb(w, a, 4, 200, DeepPath(3))
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Requests < 160 || res.ReqPerSec <= 0 || res.MeanLat <= 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunWebMinPerClient(t *testing.T) {
	w := programs.NewWorld(programs.WorldOpts{})
	a := programs.NewApache(w)
	// Ask for fewer requests than clients: the floor kicks in.
	res := RunWeb(w, a, 8, 1, "/index.html")
	if res.Requests != 8*minPerClient {
		t.Errorf("requests = %d, want %d", res.Requests, 8*minPerClient)
	}
}

func TestFigure5WorldsBehave(t *testing.T) {
	// Program mode: symlink checks happen in Apache; pf-rules mode: R8
	// installed, Apache runs check-free.
	wp, ap := NewFigure5World("program", 3)
	if wp.Engine != nil || !ap.SymLinksIfOwnerMatch {
		t.Error("program mode misconfigured")
	}
	wr, ar := NewFigure5World("pf-rules", 3)
	if wr.Engine == nil || ar.SymLinksIfOwnerMatch {
		t.Error("pf-rules mode misconfigured")
	}
	if wr.Engine.RuleCount() != 1 {
		t.Errorf("pf-rules rule count = %d", wr.Engine.RuleCount())
	}
	// Both serve the deep path without errors.
	for _, tc := range []struct {
		w *programs.World
		a *programs.Apache
	}{{wp, ap}, {wr, ar}} {
		res := RunWeb(tc.w, tc.a, 1, 40, DeepPath(3))
		if res.Errors != 0 {
			t.Errorf("errors = %d", res.Errors)
		}
	}
}

func TestFigure5PanicsOnUnknownMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mode should panic")
		}
	}()
	NewFigure5World("bogus", 1)
}

func TestSymlinkOwnerRuleParses(t *testing.T) {
	w, _ := NewFigure5World("pf-rules", 1)
	_ = w // construction already installs the rule; reaching here is the test
	if !strings.Contains(SymlinkOwnerRule(), "COMPARE") {
		t.Error("rule should use the COMPARE module")
	}
}

func TestApacheBuildAndBootComplete(t *testing.T) {
	for _, cfg := range MacroConfigs() {
		w := NewMacroWorld(cfg, lmbench.SyntheticRuleBase(64))
		if err := ApacheBuild(w, 5); err != nil {
			t.Errorf("%s build: %v", cfg.Name, err)
		}
		// Repeatable (cleanup must be complete).
		if err := ApacheBuild(w, 5); err != nil {
			t.Errorf("%s build rerun: %v", cfg.Name, err)
		}
		if err := Boot(w, 3); err != nil {
			t.Errorf("%s boot: %v", cfg.Name, err)
		}
		if err := Boot(w, 3); err != nil {
			t.Errorf("%s boot rerun: %v", cfg.Name, err)
		}
	}
}

func TestMacroConfigsMatchPaperColumns(t *testing.T) {
	want := []string{"Without PF", "PF Base", "PF Full"}
	cfgs := MacroConfigs()
	for i, c := range cfgs {
		if c.Name != want[i] {
			t.Errorf("config %d = %q", i, c.Name)
		}
	}
}

func TestFormatFigure5(t *testing.T) {
	cells := []Figure5Cell{
		{Mode: "program", Clients: 1, PathLen: 1, Result: WebResult{ReqPerSec: 100}},
		{Mode: "pf-rules", Clients: 1, PathLen: 1, Result: WebResult{ReqPerSec: 110}},
	}
	out := FormatFigure5(cells)
	if !strings.Contains(out, "+10.0%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestFormatTable7(t *testing.T) {
	out := FormatTable7([]MacroResult{
		{Benchmark: "Boot", Config: "Without PF", Elapsed: 1000000},
		{Benchmark: "Boot", Config: "PF Base", Elapsed: 1100000},
		{Benchmark: "Boot", Config: "PF Full", Elapsed: 1500000},
	})
	if !strings.Contains(out, "Boot") || !strings.Contains(out, "+50.0%") {
		t.Errorf("format:\n%s", out)
	}
}

func TestProgramChecksCostMoreSyscallsThanRule(t *testing.T) {
	// The mechanism behind Figure 5: per request, the program-mode server
	// issues extra lstat/stat syscalls per component; the rule mode does
	// not. Compare syscall counts directly.
	count := func(mode string, n int) uint64 {
		w, a := NewFigure5World(mode, n)
		p := a.Spawn()
		before := w.K.SyscallCount.Load()
		if _, err := a.Serve(p, DeepPath(n)); err != nil {
			t.Fatal(err)
		}
		return w.K.SyscallCount.Load() - before
	}
	prog, rule := count("program", 5), count("pf-rules", 5)
	if prog <= rule {
		t.Errorf("program mode = %d syscalls, rule mode = %d; program must cost more", prog, rule)
	}
	// And the gap widens with path length.
	progDeep, ruleDeep := count("program", 9), count("pf-rules", 9)
	if progDeep-ruleDeep <= prog-rule {
		t.Errorf("syscall gap should grow with path length: %d vs %d", progDeep-ruleDeep, prog-rule)
	}
}

func TestRunTable7SmallGrid(t *testing.T) {
	// Shrink the grid so the full harness path runs in test time.
	oldClients := Table7WebClients
	Table7WebClients = []int{1}
	defer func() { Table7WebClients = oldClients }()

	results := RunTable7(2, lmbench.SyntheticRuleBase(16))
	// 3 configs × (build + boot + 1 web row).
	if len(results) != 9 {
		t.Fatalf("results = %d, want 9", len(results))
	}
	for _, r := range results {
		if r.Elapsed <= 0 || r.Runs != Table7Runs {
			t.Errorf("cell %+v", r)
		}
	}
	out := FormatTable7(results)
	if !strings.Contains(out, "Apache Build") || !strings.Contains(out, "PF Full") {
		t.Errorf("format:\n%s", out)
	}
}

func TestRunFigure5SmallGrid(t *testing.T) {
	oldC, oldN := Figure5Clients, Figure5PathLens
	Figure5Clients, Figure5PathLens = []int{1}, []int{1, 3}
	defer func() { Figure5Clients, Figure5PathLens = oldC, oldN }()

	cells := RunFigure5(2)
	if len(cells) != 4 { // 2 modes × 1 client × 2 path lengths
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Result.Errors != 0 || c.Result.ReqPerSec <= 0 {
			t.Errorf("cell %+v", c)
		}
	}
}
