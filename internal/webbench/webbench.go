// Package webbench implements the paper's macro-level performance
// experiments: the ApacheBench-style web driver behind Table 7's Web rows
// and Figure 5's SymLinksIfOwnerMatch comparison, plus the Apache-build
// and boot macrobenchmarks of Table 7.
package webbench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// minPerClient keeps worker spawn costs amortized across requests.
const minPerClient = 40

// WebResult summarizes one web run.
type WebResult struct {
	Requests  int
	Clients   int
	Elapsed   time.Duration
	ReqPerSec float64
	MeanLat   time.Duration
	Errors    int
}

// RunWeb drives requests GET requests against apache with the given
// concurrency, one simulated worker process per client (Apache's prefork
// model). urlPath is requested repeatedly. Each client issues at least
// minPerClient requests so per-connection setup does not dominate.
func RunWeb(w *programs.World, apache *programs.Apache, clients, requests int, urlPath string) WebResult {
	if clients < 1 {
		clients = 1
	}
	perClient := requests / clients
	if perClient < minPerClient {
		perClient = minPerClient
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	totalErr := 0
	var totalLat time.Duration

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := apache.Spawn()
			errs := 0
			var lat time.Duration
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if _, err := apache.Serve(worker, urlPath); err != nil {
					errs++
				}
				lat += time.Since(t0)
			}
			mu.Lock()
			totalErr += errs
			totalLat += lat
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	done := perClient * clients
	return WebResult{
		Requests:  done,
		Clients:   clients,
		Elapsed:   elapsed,
		ReqPerSec: float64(done) / elapsed.Seconds(),
		MeanLat:   totalLat / time.Duration(done),
		Errors:    totalErr,
	}
}

// DeepPath returns the Figure 5 request path of length n within the
// standard world's nested web tree (n=1 is /index.html).
func DeepPath(n int) string {
	if n <= 1 {
		return "/index.html"
	}
	return strings.Repeat("/d", n-1) + "/index.html"
}

// Figure5Cell is one (mode, clients, pathlen) measurement.
type Figure5Cell struct {
	Mode    string // "program" or "pf-rules"
	Clients int
	PathLen int
	Result  WebResult
}

// Figure5Params are the paper's parameter grid.
var (
	Figure5Clients  = []int{1, 10, 200}
	Figure5PathLens = []int{1, 3, 5, 9}
)

// SymlinkOwnerRule is rule R8: SymLinksIfOwnerMatch in the firewall.
func SymlinkOwnerRule() string {
	return `pftables -i 0x2d637 -p ` + programs.BinApache +
		` -o LINK_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`
}

// NewFigure5World builds a world for one Figure 5 mode. In "program" mode
// Apache performs the per-component owner checks itself and no firewall is
// attached; in "pf-rules" mode the checks are rule R8 and Apache runs with
// them disabled.
func NewFigure5World(mode string, pathLen int) (*programs.World, *programs.Apache) {
	switch mode {
	case "program":
		w := programs.NewWorld(programs.WorldOpts{WebTreeDepth: 10})
		a := programs.NewApache(w)
		a.SymLinksIfOwnerMatch = true
		return w, a
	case "pf-rules":
		cfg := pf.Optimized()
		w := programs.NewWorld(programs.WorldOpts{PF: &cfg, WebTreeDepth: 10})
		if _, err := w.InstallRules([]string{SymlinkOwnerRule()}); err != nil {
			panic(err)
		}
		a := programs.NewApache(w)
		return w, a
	default:
		panic("webbench: unknown mode " + mode)
	}
}

// RunFigure5 measures the full grid; perClient is the number of requests
// each concurrent client issues.
func RunFigure5(perClient int) []Figure5Cell {
	var cells []Figure5Cell
	for _, mode := range []string{"program", "pf-rules"} {
		for _, c := range Figure5Clients {
			for _, n := range Figure5PathLens {
				w, a := NewFigure5World(mode, n)
				// Warm-up pass to populate allocator and caches.
				RunWeb(w, a, c, c*minPerClient, DeepPath(n))
				res := RunWeb(w, a, c, c*perClient, DeepPath(n))
				cells = append(cells, Figure5Cell{Mode: mode, Clients: c, PathLen: n, Result: res})
			}
		}
	}
	return cells
}

// FormatFigure5 renders the grid with the PF-over-program improvement.
func FormatFigure5(cells []Figure5Cell) string {
	prog := map[[2]int]WebResult{}
	pfr := map[[2]int]WebResult{}
	for _, c := range cells {
		k := [2]int{c.Clients, c.PathLen}
		if c.Mode == "program" {
			prog[k] = c.Result
		} else {
			pfr[k] = c.Result
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-14s %-14s %-10s\n", "c,n", "program req/s", "pf-rules req/s", "gain")
	for _, c := range Figure5Clients {
		for _, n := range Figure5PathLens {
			k := [2]int{c, n}
			p, q := prog[k], pfr[k]
			gain := 0.0
			if p.ReqPerSec > 0 {
				gain = (q.ReqPerSec - p.ReqPerSec) / p.ReqPerSec * 100
			}
			fmt.Fprintf(&b, "c=%-4d n=%-6d %-14.0f %-14.0f %+.1f%%\n", c, n, p.ReqPerSec, q.ReqPerSec, gain)
		}
	}
	return b.String()
}

// --- Table 7 macrobenchmarks -------------------------------------------

// MacroConfig names one Table 7 column.
type MacroConfig struct {
	Name  string
	PF    bool
	Rules bool
}

// MacroConfigs returns Without PF / PF Base / PF Full.
func MacroConfigs() []MacroConfig {
	return []MacroConfig{
		{Name: "Without PF"},
		{Name: "PF Base", PF: true},
		{Name: "PF Full", PF: true, Rules: true},
	}
}

// NewMacroWorld builds a world for a Table 7 column, installing the
// deployment rule base for "PF Full".
func NewMacroWorld(cfg MacroConfig, fullRules []string) *programs.World {
	var opts programs.WorldOpts
	if cfg.PF {
		e := pf.Optimized()
		opts.PF = &e
	}
	opts.WebTreeDepth = 4
	w := programs.NewWorld(opts)
	if cfg.Rules {
		if _, err := w.InstallRules(fullRules); err != nil {
			panic(err)
		}
	}
	return w
}

// ApacheBuild simulates the paper's "Apache Build" macrobenchmark: a
// compile job's filesystem behaviour — stat/open/read of many sources and
// headers, creation of objects, a final link — scaled by units.
func ApacheBuild(w *programs.World, units int) error {
	cc := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "init_t", Exec: programs.BinSh, Cwd: "/tmp"})
	if err := cc.Mkdir("/tmp/build", 0o755); err != nil {
		return err
	}
	for i := 0; i < units; i++ {
		src := fmt.Sprintf("/tmp/build/src%d.c", i)
		obj := fmt.Sprintf("/tmp/build/src%d.o", i)
		fd, err := cc.Open(src, kernel.O_CREAT|kernel.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		cc.Write(fd, []byte("int main(){}"))
		cc.Close(fd)
		// The compiler stats headers and reads the source.
		for _, h := range []string{"/etc/ld.so.conf", "/lib/libc.so.6", "/etc/passwd"} {
			cc.Stat(h)
		}
		fd, err = cc.Open(src, kernel.O_RDONLY, 0)
		if err != nil {
			return err
		}
		cc.ReadAll(fd)
		cc.Close(fd)
		fd, err = cc.Open(obj, kernel.O_CREAT|kernel.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		cc.Write(fd, []byte("OBJ"))
		cc.Close(fd)
	}
	// Link step: read every object, write the binary.
	out, err := cc.Open("/tmp/build/httpd", kernel.O_CREAT|kernel.O_WRONLY, 0o755)
	if err != nil {
		return err
	}
	for i := 0; i < units; i++ {
		fd, err := cc.Open(fmt.Sprintf("/tmp/build/src%d.o", i), kernel.O_RDONLY, 0)
		if err != nil {
			return err
		}
		cc.ReadAll(fd)
		cc.Close(fd)
	}
	cc.Write(out, []byte("ELF"))
	cc.Close(out)
	// Clean up so repeated runs start fresh.
	for i := 0; i < units; i++ {
		cc.Unlink(fmt.Sprintf("/tmp/build/src%d.c", i))
		cc.Unlink(fmt.Sprintf("/tmp/build/src%d.o", i))
	}
	cc.Unlink("/tmp/build/httpd")
	cc.Rmdir("/tmp/build")
	return nil
}

// Boot simulates the paper's bootup macrobenchmark: init runs a series of
// genuine shell scripts (through the simulated bash interpreter) that
// probe configuration, load libraries through ld.so, create runtime files,
// and daemonize — exercising a variety of rules in different ways.
func Boot(w *programs.World, services int) error {
	ld := programs.NewLinker(w)
	bash := programs.NewBash(w)
	for i := 0; i < services; i++ {
		script := fmt.Sprintf("/etc/init.d/svc%d", i)
		ensureInitScript(w, script, i)
		p := bash.Spawn(script)
		// Probe config and load a shared library (ld.so work happens in
		// the daemon binary, not the script).
		p.Stat("/etc/passwd")
		if _, err := ld.LoadLibrary(p, "libssl.so"); err != nil {
			return err
		}
		// Run the script body.
		if _, err := bash.ExecScript(p, script); err != nil {
			return err
		}
		// Daemonize: fork and exit the parent.
		child, err := p.Fork()
		if err != nil {
			return err
		}
		p.Exit(0)
		child.Exit(0)
	}
	return nil
}

// ensureInitScript installs the boot script for service i on first use.
// The body is self-cleaning so Boot can repeat on one world.
func ensureInitScript(w *programs.World, path string, i int) {
	if _, ok := w.K.LookupIno(path); ok {
		return
	}
	fs := w.K.FS
	dir := fs.MustPath("/etc/init.d")
	n, err := fs.CreateAt(dir, fmt.Sprintf("svc%d", i), path, vfs.CreateOpts{Mode: 0o755})
	if err != nil {
		panic(err)
	}
	body := fmt.Sprintf(`#!/bin/sh
# start service %d
cat /etc/ld.so.conf
touch /tmp/svc%d.pid
echo 1 > /tmp/svc%d.pid
chmod 644 /tmp/svc%d.pid
rm /tmp/svc%d.pid
`, i, i, i, i, i)
	fs.WriteFile(n, []byte(body))
}

// MacroResult is one Table 7 cell: the mean of several runs, as the paper
// reports means over 30 runs.
type MacroResult struct {
	Benchmark string
	Config    string
	Elapsed   time.Duration // mean per run
	Runs      int
}

// Table7Runs is how many timed repetitions each cell gets (after a
// warm-up); the paper used 30.
const Table7Runs = 10

// Table7WebClients are the web concurrency levels of Table 7 (the paper's
// Web1 and Web1000 rows). A variable so tests can shrink the grid.
var Table7WebClients = []int{1, 1000}

// timeRuns runs body warm+Table7Runs times and returns the mean. A forced
// collection beforehand isolates cells from each other's garbage.
func timeRuns(body func()) time.Duration {
	body() // warm-up
	runtime.GC()
	start := time.Now()
	for i := 0; i < Table7Runs; i++ {
		body()
	}
	return time.Since(start) / Table7Runs
}

// RunTable7 measures the macrobenchmarks across the three configurations.
// scale controls workload size (build units / boot services / web requests).
func RunTable7(scale int, fullRules []string) []MacroResult {
	var out []MacroResult
	for _, cfg := range MacroConfigs() {
		// Apache build.
		w := NewMacroWorld(cfg, fullRules)
		mean := timeRuns(func() {
			if err := ApacheBuild(w, scale); err != nil {
				panic(fmt.Sprintf("apache build (%s): %v", cfg.Name, err))
			}
		})
		out = append(out, MacroResult{"Apache Build", cfg.Name, mean, Table7Runs})

		// Boot.
		w = NewMacroWorld(cfg, fullRules)
		mean = timeRuns(func() {
			if err := Boot(w, scale/2+1); err != nil {
				panic(fmt.Sprintf("boot (%s): %v", cfg.Name, err))
			}
		})
		out = append(out, MacroResult{"Boot", cfg.Name, mean, Table7Runs})

		// Web with 1 and 1000 concurrent clients.
		for _, clients := range Table7WebClients {
			w = NewMacroWorld(cfg, fullRules)
			a := programs.NewApache(w)
			mean = timeRuns(func() {
				res := RunWeb(w, a, clients, scale*10, "/index.html")
				if res.Errors > 0 {
					panic(fmt.Sprintf("web (%s): %d errors", cfg.Name, res.Errors))
				}
			})
			out = append(out, MacroResult{fmt.Sprintf("Web%d", clients), cfg.Name, mean, Table7Runs})
		}
	}
	return out
}

// FormatTable7 renders macro results with overhead versus "Without PF".
func FormatTable7(results []MacroResult) string {
	base := map[string]time.Duration{}
	order := []string{}
	byCell := map[string]map[string]time.Duration{}
	for _, r := range results {
		if byCell[r.Benchmark] == nil {
			byCell[r.Benchmark] = map[string]time.Duration{}
			order = append(order, r.Benchmark)
		}
		byCell[r.Benchmark][r.Config] = r.Elapsed
		if r.Config == "Without PF" {
			base[r.Benchmark] = r.Elapsed
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, cfg := range MacroConfigs() {
		fmt.Fprintf(&b, "%-26s", cfg.Name)
	}
	b.WriteString("\n")
	for _, bench := range order {
		fmt.Fprintf(&b, "%-14s", bench)
		for _, cfg := range MacroConfigs() {
			v := byCell[bench][cfg.Name]
			over := 0.0
			if base[bench] > 0 {
				over = (v.Seconds() - base[bench].Seconds()) / base[bench].Seconds() * 100
			}
			fmt.Fprintf(&b, "%-26s", fmt.Sprintf("%v (%+.1f%%)", v.Round(time.Microsecond), over))
		}
		b.WriteString("\n")
	}
	return b.String()
}
