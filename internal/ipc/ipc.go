// Package ipc implements the kernel's socket and IPC substrate: rendezvous
// namespaces (filesystem socket inodes, the abstract socket namespace, and a
// TCP-like port space), listeners with bounded accept backlogs, connected
// duplex byte streams with peer credentials captured at connect time, and
// the non-blocking byte queues behind FIFOs.
//
// The namespaces are the attack surface the paper's squatting rows target
// (Table 1, CWE-283): a name an adversary can bind before — or rebind after
// — the victim is a rendezvous the victim cannot trust. The subsystem
// deliberately reproduces the permissive POSIX semantics (abstract names are
// first-come-first-served; ports are rebindable the moment the previous
// listener closes, the SO_REUSEADDR squat window) so the Process Firewall
// layered above it has something real to defend.
//
// Concurrency follows the PR-1 discipline: namespace tables are published as
// immutable snapshots behind atomic pointers, so the lookup path (every
// connect) takes no lock; binds copy-on-write under a writer mutex. Listener
// backlogs and stream buffers are fine-grained: one mutex per listener, one
// per connected pair.
package ipc

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
)

// Stats counts registry activity with sharded atomics (always on; the
// observability layer samples them at export time). Listeners, streams,
// and FIFO queues carry a backpointer so the counting happens where the
// event happens without threading a registry through every call.
type Stats struct {
	BindsFile     obs.Counter
	BindsAbstract obs.Counter
	BindsPort     obs.Counter
	Connects      obs.Counter
	BacklogDrops  obs.Counter // connects refused because the backlog was full
	StreamBytes   obs.Counter // bytes queued through connected streams
	FifoBytes     obs.Counter // bytes queued through FIFO queues
}

// Errors mirroring the errno a real kernel would return.
var (
	// ErrAddrInUse: the name or port has a live listener (EADDRINUSE).
	ErrAddrInUse = errors.New("address already in use")
	// ErrRefused: no live listener is accepting at the address, or its
	// backlog is full (ECONNREFUSED).
	ErrRefused = errors.New("connection refused")
	// ErrWouldBlock: the non-blocking operation has nothing to deliver
	// (EAGAIN/EWOULDBLOCK).
	ErrWouldBlock = errors.New("operation would block")
	// ErrPeerClosed: the other endpoint is gone and the stream is drained
	// (EPIPE on send, EOF on receive).
	ErrPeerClosed = errors.New("peer closed")
	// ErrClosed: the endpoint itself was already closed (EBADF-adjacent).
	ErrClosed = errors.New("endpoint closed")
	// ErrNotListening: Accept on a socket that never called Listen (EINVAL).
	ErrNotListening = errors.New("socket is not listening")
)

// Cred is a peer credential triple, the SO_PEERCRED payload. It is captured
// when the connection pair is created, not when it is queried — exactly the
// binding a PEER_CRED firewall rule needs to be squat-proof.
type Cred struct {
	PID, UID, GID int
}

// NS identifies the rendezvous namespace a socket lives in.
type NS uint8

// Namespaces.
const (
	NSFile     NS = iota // filesystem socket inode
	NSAbstract           // string-keyed abstract namespace, no inode
	NSPort               // TCP-like uint16 port space
)

// String returns the rule-language spelling used by the SOCK_NS match.
func (ns NS) String() string {
	switch ns {
	case NSAbstract:
		return "abstract"
	case NSPort:
		return "port"
	default:
		return "fs"
	}
}

// ParseNS parses a SOCK_NS spelling.
func ParseNS(s string) (NS, bool) {
	switch s {
	case "fs", "file":
		return NSFile, true
	case "abstract":
		return NSAbstract, true
	case "port":
		return NSPort, true
	}
	return NSFile, false
}

// Meta is the identity of a rendezvous point, shared by its listener and
// every connection accepted through it. ID is registry-assigned and never
// recycled, so it stays unambiguous across inode-number reuse (the
// cryogenic-sleep aliasing games of paper Section 2.1 cannot forge it).
type Meta struct {
	NS   NS
	Key  string  // abstract name, or filesystem path at bind time
	Port uint16  // NSPort only
	ID   uint64  // registry id; unique for the registry's lifetime
	SID  mac.SID // MAC label of the rendezvous resource
	// Display is the namespace-qualified printable name ("@name" for
	// abstract, ":port" for ports, the path otherwise), precomputed at bind
	// time so per-message mediation never formats strings.
	Display string
}

// Listener is a bound socket endpoint. It is created by a bind, starts
// accepting after Listen, and queues at most its backlog of pending
// connections.
type Listener struct {
	meta  Meta
	owner Cred
	stats *Stats // owning registry's counters; may be nil in isolation

	mu        sync.Mutex
	listening bool
	maxQueue  int
	queue     []*Conn
	closed    bool
}

// Meta returns the listener's identity.
func (l *Listener) Meta() Meta { return l.meta }

// Owner returns the credential captured at bind time.
func (l *Listener) Owner() Cred { return l.owner }

// Listen starts accepting with the given backlog bound (minimum 1).
func (l *Listener) Listen(backlog int) error {
	if backlog < 1 {
		backlog = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.listening = true
	l.maxQueue = backlog
	return nil
}

// Listening reports whether Listen has been called on an open listener.
func (l *Listener) Listening() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.listening && !l.closed
}

// Closed reports whether the listener has been closed.
func (l *Listener) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Accept pops the oldest pending connection. It never blocks: an empty
// backlog returns ErrWouldBlock.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if !l.listening {
		return nil, ErrNotListening
	}
	if len(l.queue) == 0 {
		return nil, ErrWouldBlock
	}
	c := l.queue[0]
	l.queue = l.queue[1:]
	return c, nil
}

// Close shuts the listener down. Pending (never-accepted) connections are
// reset so their clients observe ErrPeerClosed, and the name becomes
// rebindable — the SO_REUSEADDR squat window the exploits exercise.
func (l *Listener) Close() {
	l.mu.Lock()
	pending := l.queue
	l.queue = nil
	l.closed = true
	l.listening = false
	l.mu.Unlock()
	for _, c := range pending {
		c.Close()
	}
}

// connect creates the duplex pair and enqueues the server side, enforcing
// the backlog bound. The client credential is snapshotted here.
func (l *Listener) connect(client Cred) (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.listening {
		return nil, ErrRefused
	}
	if len(l.queue) >= l.maxQueue {
		if l.stats != nil {
			l.stats.BacklogDrops.Add(client.PID, 1)
		}
		return nil, ErrRefused // backlog full; a real stack may also EAGAIN
	}
	server, clientEnd := newPair(l.meta, l.owner, client, l.stats)
	l.queue = append(l.queue, server)
	if l.stats != nil {
		l.stats.Connects.Add(client.PID, 1)
	}
	return clientEnd, nil
}

// pairState is the shared half of a connected pair: one mutex guards both
// directions, which keeps send/recv single-lock and deadlock-free.
type pairState struct {
	mu     sync.Mutex
	buf    [2][]byte // buf[i] holds bytes waiting to be read by endpoint i
	closed [2]bool
}

// Conn is one endpoint of a connected stream.
type Conn struct {
	pair  *pairState
	end   int // index into pair arrays
	meta  Meta
	stats *Stats // owning registry's counters; may be nil in isolation

	local, remote Cred
}

// newPair builds a connected (server, client) endpoint pair.
func newPair(meta Meta, server, client Cred, stats *Stats) (*Conn, *Conn) {
	ps := &pairState{}
	s := &Conn{pair: ps, end: 0, meta: meta, stats: stats, local: server, remote: client}
	c := &Conn{pair: ps, end: 1, meta: meta, stats: stats, local: client, remote: server}
	return s, c
}

// Meta returns the identity of the rendezvous this stream came from.
func (c *Conn) Meta() Meta { return c.meta }

// LocalCred returns this endpoint's credential.
func (c *Conn) LocalCred() Cred { return c.local }

// PeerCred returns the other endpoint's credential — SO_PEERCRED, as
// captured when the pair was created.
func (c *Conn) PeerCred() Cred { return c.remote }

// Send queues data for the peer. It never blocks; sending on a closed
// endpoint or to a closed peer fails.
func (c *Conn) Send(data []byte) (int, error) {
	ps := c.pair
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed[c.end] {
		return 0, ErrClosed
	}
	if ps.closed[1-c.end] {
		return 0, ErrPeerClosed
	}
	ps.buf[1-c.end] = append(ps.buf[1-c.end], data...)
	if c.stats != nil {
		c.stats.StreamBytes.Add(c.local.PID, uint64(len(data)))
	}
	return len(data), nil
}

// Recv takes up to n bytes (all buffered bytes when n <= 0). Buffered data
// is delivered even after the peer closes; only a drained stream with a
// closed peer reports ErrPeerClosed, and an empty stream with a live peer
// reports ErrWouldBlock.
func (c *Conn) Recv(n int) ([]byte, error) {
	ps := c.pair
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed[c.end] {
		return nil, ErrClosed
	}
	buf := ps.buf[c.end]
	if len(buf) == 0 {
		if ps.closed[1-c.end] {
			return nil, ErrPeerClosed
		}
		return nil, ErrWouldBlock
	}
	if n <= 0 || n > len(buf) {
		n = len(buf)
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	ps.buf[c.end] = buf[n:]
	return out, nil
}

// Closed reports whether this endpoint has been closed.
func (c *Conn) Closed() bool {
	c.pair.mu.Lock()
	defer c.pair.mu.Unlock()
	return c.pair.closed[c.end]
}

// Close shuts this endpoint down. The peer keeps any buffered bytes.
func (c *Conn) Close() {
	c.pair.mu.Lock()
	c.pair.closed[c.end] = true
	c.pair.buf[c.end] = nil
	c.pair.mu.Unlock()
}

// fifoMax bounds a FIFO's buffered bytes, like a pipe's capacity.
const fifoMax = 1 << 16

// Queue is the byte queue behind a FIFO inode: many writers, many readers,
// never blocking.
type Queue struct {
	id    uint64 // registry id; sharding key for byte counting
	stats *Stats // owning registry's counters; may be nil in isolation

	mu  sync.Mutex
	buf []byte
}

// Push appends data, bounded by the pipe capacity.
func (q *Queue) Push(data []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	room := fifoMax - len(q.buf)
	if room <= 0 {
		return 0, ErrWouldBlock
	}
	if len(data) > room {
		data = data[:room]
	}
	q.buf = append(q.buf, data...)
	if q.stats != nil {
		q.stats.FifoBytes.Add(int(q.id), uint64(len(data)))
	}
	return len(data), nil
}

// Pop removes up to n bytes (everything when n <= 0); an empty queue
// returns no data and no error, like a non-blocking pipe read with no
// writer.
func (q *Queue) Pop(n int) []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil
	}
	if n <= 0 || n > len(q.buf) {
		n = len(q.buf)
	}
	out := make([]byte, n)
	copy(out, q.buf[:n])
	q.buf = q.buf[n:]
	return out
}

// Len returns the number of buffered bytes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Registry owns the three rendezvous namespaces and the FIFO queue table.
// All four tables are copy-on-write maps behind atomic pointers: the
// connect/lookup path is lock-free, mutation serializes on mu.
type Registry struct {
	// Stats is the registry's activity accounting, read by the
	// observability exporter.
	Stats Stats

	mu     sync.Mutex
	nextID atomic.Uint64

	abstract atomic.Pointer[map[string]*Listener]
	ports    atomic.Pointer[map[uint16]*Listener]
	files    atomic.Pointer[map[uint64]*Listener] // registry id -> listener
	fifos    atomic.Pointer[map[uint64]*Queue]    // registry id -> queue
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.abstract.Store(&map[string]*Listener{})
	r.ports.Store(&map[uint16]*Listener{})
	r.files.Store(&map[uint64]*Listener{})
	r.fifos.Store(&map[uint64]*Queue{})
	return r
}

// newListener allocates a listener with a fresh, never-recycled id.
func (r *Registry) newListener(ns NS, key string, port uint16, sid mac.SID, owner Cred) *Listener {
	m := Meta{NS: ns, Key: key, Port: port, ID: r.nextID.Add(1), SID: sid}
	switch ns {
	case NSAbstract:
		m.Display = "@" + key
	case NSPort:
		m.Display = ":" + strconv.Itoa(int(port))
	default:
		m.Display = key
	}
	return &Listener{
		meta:  m,
		owner: owner,
		stats: &r.Stats,
	}
}

// BindFile registers a listener for a filesystem socket. The caller stores
// the returned listener's Meta().ID on the inode; path and label are carried
// for rule matching. Name conflicts are the filesystem's business (the inode
// either exists or it doesn't), so BindFile never fails.
func (r *Registry) BindFile(path string, sid mac.SID, owner Cred) *Listener {
	l := r.newListener(NSFile, path, 0, sid, owner)
	r.Stats.BindsFile.Add(owner.PID, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.files.Load()
	next := make(map[uint64]*Listener, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[l.meta.ID] = l
	r.files.Store(&next)
	return l
}

// FileListener resolves a filesystem socket's registry id.
func (r *Registry) FileListener(id uint64) (*Listener, bool) {
	l, ok := (*r.files.Load())[id]
	return l, ok
}

// BindAbstract claims a name in the abstract namespace. A live (unclosed)
// listener blocks the bind with ErrAddrInUse; a closed one is silently
// replaced — first-come-first-served, the classic squat surface.
func (r *Registry) BindAbstract(name string, sid mac.SID, owner Cred) (*Listener, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.abstract.Load()
	if prev, ok := old[name]; ok && !prev.Closed() {
		return nil, ErrAddrInUse
	}
	l := r.newListener(NSAbstract, name, 0, sid, owner)
	r.Stats.BindsAbstract.Add(owner.PID, 1)
	next := make(map[string]*Listener, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = l
	r.abstract.Store(&next)
	return l, nil
}

// LookupAbstract resolves an abstract name. Closed listeners are returned
// too; the caller decides how a dangling rendezvous fails.
func (r *Registry) LookupAbstract(name string) (*Listener, bool) {
	l, ok := (*r.abstract.Load())[name]
	return l, ok
}

// BindPort claims a TCP-like port. Semantics mirror SO_REUSEADDR hosts: the
// port conflicts only while its current listener is open, so the instant a
// daemon closes (or dies), the port is up for grabs.
func (r *Registry) BindPort(port uint16, sid mac.SID, owner Cred) (*Listener, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.ports.Load()
	if prev, ok := old[port]; ok && !prev.Closed() {
		return nil, ErrAddrInUse
	}
	l := r.newListener(NSPort, "", port, sid, owner)
	r.Stats.BindsPort.Add(owner.PID, 1)
	next := make(map[uint16]*Listener, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[port] = l
	r.ports.Store(&next)
	return l, nil
}

// LookupPort resolves a port.
func (r *Registry) LookupPort(port uint16) (*Listener, bool) {
	l, ok := (*r.ports.Load())[port]
	return l, ok
}

// Connect establishes a client connection to l, snapshotting the client
// credential into the pair (SO_PEERCRED).
func (r *Registry) Connect(l *Listener, client Cred) (*Conn, error) {
	return l.connect(client)
}

// NewFifo allocates the byte queue behind a new FIFO inode and returns its
// registry id.
func (r *Registry) NewFifo() uint64 {
	id := r.nextID.Add(1)
	q := &Queue{id: id, stats: &r.Stats}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.fifos.Load()
	next := make(map[uint64]*Queue, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = q
	r.fifos.Store(&next)
	return id
}

// Fifo resolves a FIFO queue by registry id.
func (r *Registry) Fifo(id uint64) (*Queue, bool) {
	q, ok := (*r.fifos.Load())[id]
	return q, ok
}
