package ipc

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func reg() *Registry { return NewRegistry() }

var (
	root = Cred{PID: 1, UID: 0, GID: 0}
	user = Cred{PID: 2, UID: 1000, GID: 1000}
)

func TestAbstractBindConflictAndSquatWindow(t *testing.T) {
	r := reg()
	l, err := r.BindAbstract("bus", 1, root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.BindAbstract("bus", 1, user); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second bind: %v, want ErrAddrInUse", err)
	}
	l.Close()
	// The squat window: the moment the owner closes, anyone can rebind.
	squat, err := r.BindAbstract("bus", 1, user)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	got, ok := r.LookupAbstract("bus")
	if !ok || got != squat {
		t.Error("lookup should resolve to the squatter's listener")
	}
	if got.Owner() != user {
		t.Errorf("owner = %+v, want the squatter", got.Owner())
	}
}

func TestPortBindReuseSemantics(t *testing.T) {
	r := reg()
	l, err := r.BindPort(631, 1, root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.BindPort(631, 1, user); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("conflicting bind: %v, want ErrAddrInUse", err)
	}
	l.Close()
	if _, err := r.BindPort(631, 1, user); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestConnectRequiresListen(t *testing.T) {
	r := reg()
	l, _ := r.BindAbstract("svc", 1, root)
	if _, err := r.Connect(l, user); !errors.Is(err, ErrRefused) {
		t.Fatalf("connect before listen: %v, want ErrRefused", err)
	}
	l.Listen(1)
	if _, err := r.Connect(l, user); err != nil {
		t.Fatalf("connect after listen: %v", err)
	}
}

func TestBacklogBound(t *testing.T) {
	r := reg()
	l, _ := r.BindPort(80, 1, root)
	l.Listen(2)
	for i := 0; i < 2; i++ {
		if _, err := r.Connect(l, user); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Connect(l, user); !errors.Is(err, ErrRefused) {
		t.Fatalf("overfull backlog: %v, want ErrRefused", err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	// Draining one slot reopens the backlog.
	if _, err := r.Connect(l, user); err != nil {
		t.Fatalf("connect after drain: %v", err)
	}
}

func TestPeerCredsAndDataPlane(t *testing.T) {
	r := reg()
	l, _ := r.BindAbstract("echo", 1, root)
	l.Listen(4)
	client, err := r.Connect(l, user)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if server.PeerCred() != user || client.PeerCred() != root {
		t.Errorf("peer creds: server sees %+v, client sees %+v", server.PeerCred(), client.PeerCred())
	}

	if _, err := client.Send([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	client.Send([]byte("world"))
	// Partial reads preserve stream order across separate sends.
	a, err := server.Recv(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := append(a, b...); !bytes.Equal(got, []byte("hello world")) {
		t.Errorf("recv = %q, want %q", got, "hello world")
	}
	// Full duplex: the server can talk back on the same stream.
	server.Send([]byte("ack"))
	if got, err := client.Recv(0); err != nil || string(got) != "ack" {
		t.Errorf("client recv = %q, %v", got, err)
	}
}

func TestRecvDrainsBufferAfterPeerClose(t *testing.T) {
	r := reg()
	l, _ := r.BindPort(8080, 1, root)
	l.Listen(1)
	client, _ := r.Connect(l, user)
	server, _ := l.Accept()

	client.Send([]byte("last words"))
	client.Close()

	// Buffered bytes survive the close...
	got, err := server.Recv(0)
	if err != nil || string(got) != "last words" {
		t.Fatalf("recv = %q, %v", got, err)
	}
	// ...then the drained stream reports the peer gone.
	if _, err := server.Recv(0); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("recv after drain: %v, want ErrPeerClosed", err)
	}
	if _, err := server.Send([]byte("x")); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("send to closed peer: %v, want ErrPeerClosed", err)
	}
}

func TestRecvEmptyLivePeerWouldBlock(t *testing.T) {
	r := reg()
	l, _ := r.BindAbstract("q", 1, root)
	l.Listen(1)
	client, _ := r.Connect(l, user)
	server, _ := l.Accept()
	if _, err := server.Recv(0); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("empty recv: %v, want ErrWouldBlock", err)
	}
	_ = client
}

func TestListenerCloseResetsPending(t *testing.T) {
	r := reg()
	l, _ := r.BindAbstract("dead", 1, root)
	l.Listen(4)
	client, _ := r.Connect(l, user)
	l.Close()
	if _, err := client.Recv(0); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("recv on reset conn: %v, want ErrPeerClosed", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("accept on closed listener: %v, want ErrClosed", err)
	}
}

func TestFifoQueue(t *testing.T) {
	r := reg()
	id := r.NewFifo()
	q, ok := r.Fifo(id)
	if !ok {
		t.Fatal("fifo not registered")
	}
	if got := q.Pop(0); got != nil {
		t.Errorf("empty pop = %q", got)
	}
	q.Push([]byte("abc"))
	q.Push([]byte("def"))
	if got := q.Pop(4); string(got) != "abcd" {
		t.Errorf("pop(4) = %q", got)
	}
	if got := q.Pop(0); string(got) != "ef" {
		t.Errorf("pop rest = %q", got)
	}
	// Capacity bound.
	big := make([]byte, fifoMax+10)
	n, err := q.Push(big)
	if err != nil || n != fifoMax {
		t.Errorf("bounded push = %d, %v", n, err)
	}
	if _, err := q.Push([]byte("x")); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("push to full fifo: %v, want ErrWouldBlock", err)
	}
}

func TestRegistryIDsNeverRecycle(t *testing.T) {
	r := reg()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		l, err := r.BindAbstract("n", 1, root)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l.Meta().ID] {
			t.Fatalf("id %d recycled", l.Meta().ID)
		}
		seen[l.Meta().ID] = true
		l.Close()
	}
}

// TestConcurrentConnectAndBind exercises the snapshot-read tables and the
// per-listener backlog under -race: binds racing with lookups and connects.
func TestConcurrentConnectAndBind(t *testing.T) {
	r := reg()
	l, _ := r.BindAbstract("srv", 1, root)
	l.Listen(1 << 16)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got, ok := r.LookupAbstract("srv"); !ok || got != l {
					t.Error("lookup lost the listener")
					return
				}
				c, err := r.Connect(l, Cred{PID: 100 + g, UID: 1000, GID: 1000})
				if err != nil {
					t.Error(err)
					return
				}
				c.Send([]byte{byte(i)})
				c.Close()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.BindPort(uint16(1000+i), 1, root)
			r.NewFifo()
		}
	}()
	wg.Wait()

	accepted := 0
	for {
		c, err := l.Accept()
		if errors.Is(err, ErrWouldBlock) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted++
		c.Close()
	}
	if accepted != 4*200 {
		t.Errorf("accepted %d connections, want 800", accepted)
	}
}
