package programs

import (
	"errors"
	"fmt"
	"strings"

	"pfirewall/internal/kernel"
)

// This file implements a miniature shell so init scripts execute genuine
// script text from the simulated filesystem. The command subset covers
// what boot-time resource access needs (and misuses):
//
//	# comment
//	touch PATH            — create-or-truncate (the E9 foot-gun)
//	echo TEXT > PATH      — create-or-truncate and write
//	echo TEXT >> PATH     — append
//	cat PATH              — read (output collected)
//	ln -s TARGET PATH     — symlink
//	mkdir PATH            — directory
//	rm PATH               — unlink
//	chmod MODE PATH       — octal chmod
//	mkfifo PATH           — named pipe
//
// Each command line runs with a bash interpreter frame recording the
// script and line number, so script-level firewall rules apply.

// ErrShellParse reports an unsupported command.
var ErrShellParse = errors.New("sh: parse error")

// ExecScript reads the script at path and runs it in process p, returning
// the accumulated cat/echo output.
func (b *Bash) ExecScript(p *kernel.Proc, path string) (string, error) {
	fd, err := p.Open(path, kernel.O_RDONLY, 0)
	if err != nil {
		return "", err
	}
	src, err := p.ReadAll(fd)
	p.Close(fd)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for lineNo, raw := range strings.Split(string(src), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.InterpPush(path, lineNo+1); err != nil {
			return out.String(), err
		}
		err := b.execLine(p, line, &out)
		p.InterpPop()
		if err != nil {
			return out.String(), fmt.Errorf("%s:%d: %w", path, lineNo+1, err)
		}
	}
	return out.String(), nil
}

// execLine runs one command.
func (b *Bash) execLine(p *kernel.Proc, line string, out *strings.Builder) error {
	// Redirections first: echo TEXT >(>) PATH.
	if strings.HasPrefix(line, "echo ") {
		rest := strings.TrimPrefix(line, "echo ")
		if idx := strings.Index(rest, ">>"); idx >= 0 {
			return b.writeFile(p, strings.TrimSpace(rest[idx+2:]), unquote(strings.TrimSpace(rest[:idx])), true)
		}
		if idx := strings.Index(rest, ">"); idx >= 0 {
			return b.writeFile(p, strings.TrimSpace(rest[idx+1:]), unquote(strings.TrimSpace(rest[:idx])), false)
		}
		out.WriteString(unquote(strings.TrimSpace(rest)) + "\n")
		return nil
	}

	fields := strings.Fields(line)
	switch fields[0] {
	case "touch":
		if len(fields) != 2 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		// touch as init scripts use it: O_CREAT|O_TRUNC without O_EXCL —
		// exactly the unsafe creation pattern of exploit E9.
		fd, err := p.Open(fields[1], kernel.O_CREAT|kernel.O_WRONLY|kernel.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		return p.Close(fd)
	case "cat":
		if len(fields) != 2 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		fd, err := p.Open(fields[1], kernel.O_RDONLY, 0)
		if err != nil {
			return err
		}
		data, err := p.ReadAll(fd)
		p.Close(fd)
		if err != nil {
			return err
		}
		out.Write(data)
		return nil
	case "ln":
		if len(fields) != 4 || fields[1] != "-s" {
			return fmt.Errorf("%w: %q (only ln -s)", ErrShellParse, line)
		}
		return p.Symlink(fields[2], fields[3])
	case "mkdir":
		if len(fields) != 2 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		return p.Mkdir(fields[1], 0o755)
	case "rm":
		if len(fields) != 2 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		return p.Unlink(fields[1])
	case "chmod":
		if len(fields) != 3 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		var mode uint16
		if _, err := fmt.Sscanf(fields[1], "%o", &mode); err != nil {
			return fmt.Errorf("%w: bad mode %q", ErrShellParse, fields[1])
		}
		return p.Chmod(fields[2], mode)
	case "mkfifo":
		if len(fields) != 2 {
			return fmt.Errorf("%w: %q", ErrShellParse, line)
		}
		return p.Mkfifo(fields[1], 0o666)
	case "true", ":":
		return nil
	default:
		return fmt.Errorf("%w: unknown command %q", ErrShellParse, fields[0])
	}
}

// writeFile implements the > and >> redirections.
func (b *Bash) writeFile(p *kernel.Proc, path, text string, appendMode bool) error {
	flags := kernel.O_CREAT | kernel.O_WRONLY
	if !appendMode {
		flags |= kernel.O_TRUNC
	}
	fd, err := p.Open(path, flags, 0o644)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	_, err = p.Write(fd, []byte(text+"\n"))
	return err
}

// unquote strips one level of matched quotes.
func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
