package programs

import (
	"errors"

	"pfirewall/internal/kernel"
)

// Java models the Java launcher's untrusted configuration search (exploit
// E7, rule R7): it probes the working directory for a config file before
// the system one, so an adversary-controlled cwd plants settings.
type Java struct {
	W *World
}

// NewJava returns the launcher model.
func NewJava(w *World) *Java { return &Java{w} }

// Spawn starts a java process with the given working directory.
func (j *Java) Spawn(cwd string) *kernel.Proc {
	return j.W.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "java_t", Exec: BinJava, Cwd: cwd})
}

// LoadConfig opens the first config found: ./.hotspotrc then
// /etc/java.conf, both at the launcher's config-open entrypoint.
func (j *Java) LoadConfig(p *kernel.Proc) (string, []byte, error) {
	for _, cand := range []string{".hotspotrc", "/etc/java.conf"} {
		if err := p.SyscallSite(BinJava, EntryJavaConf); err != nil {
			return "", nil, err
		}
		fd, err := p.Open(cand, kernel.O_RDONLY, 0)
		if err != nil {
			continue
		}
		data, err := p.ReadAll(fd)
		p.Close(fd)
		if err != nil {
			return "", nil, err
		}
		return cand, data, nil
	}
	return "", nil, errors.New("java: no configuration found")
}

// Icecat models the GNU Icecat browser whose launcher script left an
// environment variable that made ld.so search the working directory
// (exploit E8 — the previously unknown vulnerability the Process Firewall
// blocked silently).
type Icecat struct {
	W *World
}

// NewIcecat returns the browser model.
func NewIcecat(w *World) *Icecat { return &Icecat{w} }

// Spawn starts icecat from cwd with the buggy environment: the launcher
// script effectively prepends "." to the library search path.
func (i *Icecat) Spawn(cwd string) *kernel.Proc {
	return i.W.NewProc(kernel.ProcSpec{
		UID: 0, GID: 0, Label: "icecat_t", Exec: BinIcecat, Cwd: cwd,
		Env: map[string]string{"LD_LIBRARY_PATH": "."},
	})
}

// Start loads the browser's libraries through ld.so; with the buggy env,
// "." is searched first.
func (i *Icecat) Start(p *kernel.Proc) (loaded []string, denied []string, err error) {
	ld := NewLinker(i.W)
	for _, lib := range []string{"libssl.so", "libdl.so"} {
		path, lerr := ld.LoadLibrary(p, lib)
		if lerr != nil {
			return loaded, ld.Denied, lerr
		}
		loaded = append(loaded, path)
	}
	return loaded, ld.Denied, nil
}

// InitScript models the Ubuntu init script of exploit E9: it writes a pid
// file under /tmp with a fixed name, following whatever is there — the
// unsafe file creation the paper's system-wide safe_open rules caught.
type InitScript struct {
	W *World
	// PidPath is the fixed, world-guessable path.
	PidPath string
}

// NewInitScript returns the script model.
func NewInitScript(w *World) *InitScript {
	return &InitScript{W: w, PidPath: "/tmp/daemon.pid"}
}

// Run executes the script body: create-or-truncate the pid file without
// O_EXCL and without checking for symlinks.
func (s *InitScript) Run(p *kernel.Proc) error {
	p.InterpPush("/etc/init.d/daemon", 23)
	defer p.InterpPop()
	if err := p.SyscallSite(BinBash, EntryInitCreat); err != nil {
		return err
	}
	fd, err := p.Open(s.PidPath, kernel.O_CREAT|kernel.O_WRONLY|kernel.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	_, err = p.Write(fd, []byte("4242\n"))
	return err
}

// Dstat models the dstat utility (exploit E2): a Python script whose
// module search path included the working directory.
type Dstat struct {
	W *World
}

// NewDstat returns the tool model.
func NewDstat(w *World) *Dstat { return &Dstat{w} }

// Run starts dstat from cwd and imports its plugin module; the buggy
// sys.path searches the working directory first.
func (d *Dstat) Run(cwd string) (module string, err error) {
	py := NewPython(d.W)
	py.Path = append([]string{""}, py.Path...) // the os.path bug: cwd first
	p := py.Spawn("/usr/bin/dstat")
	if cwd != "" {
		if err := p.Chdir(cwd); err != nil {
			return "", err
		}
	}
	return py.ImportModule(p, "dstat_disk")
}
