package programs

import (
	"errors"
	"fmt"
	"strings"

	"pfirewall/internal/kernel"
	"pfirewall/internal/vfs"
)

// Apache models the web server of the paper's motivating example and of
// the Figure 5 experiment: it serves files beneath DocumentRoot, optionally
// enforcing SymLinksIfOwnerMatch either in the program (per-component
// lstat checks, the expensive configuration the Apache documentation
// recommends disabling) or not at all (relying on the Process Firewall's
// rule R8 instead). A separate entrypoint reads the password file for
// authentication, demonstrating per-instruction resource expectations.
type Apache struct {
	W       *World
	DocRoot string

	// SymLinksIfOwnerMatch enables the program-side symlink owner checks.
	SymLinksIfOwnerMatch bool

	// ReadHtaccess makes Serve look for .htaccess files per directory,
	// as the paper's test-suite discussion (Section 6.3.1) describes.
	ReadHtaccess bool
}

// NewApache returns a server rooted at /var/www/html.
func NewApache(w *World) *Apache {
	return &Apache{W: w, DocRoot: "/var/www/html"}
}

// Spawn starts an Apache worker process.
func (a *Apache) Spawn() *kernel.Proc {
	p := a.W.NewProc(kernel.ProcSpec{UID: 33, GID: 33, Label: "httpd_t", Exec: BinApache})
	return p
}

// ErrForbidden is the server's 403 response.
var ErrForbidden = errors.New("apache: 403 forbidden")

// Serve handles GET urlPath and returns the response body. The raw URL
// path is appended to DocRoot without canonicalization — the directory
// traversal attack surface — while symlink policy is handled per
// configuration.
func (a *Apache) Serve(p *kernel.Proc, urlPath string) ([]byte, error) {
	full := a.DocRoot + "/" + strings.TrimPrefix(urlPath, "/")

	if a.SymLinksIfOwnerMatch {
		if err := a.checkSymlinkOwners(p, full); err != nil {
			return nil, err
		}
	}
	if a.ReadHtaccess {
		a.readHtaccess(p, full)
	}

	if err := p.SyscallSite(BinApache, EntryApacheServe); err != nil {
		return nil, err
	}
	fd, err := p.Open(full, kernel.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	return p.ReadAll(fd)
}

// checkSymlinkOwners is the in-program SymLinksIfOwnerMatch: for every
// pathname component it lstats the component and, for symlinks, stats the
// target to compare owners. This is the per-component overhead Figure 5
// measures, and it is inherently racy (the documentation itself warns the
// option "can be circumvented through races").
func (a *Apache) checkSymlinkOwners(p *kernel.Proc, full string) error {
	comps := strings.Split(strings.TrimPrefix(full, "/"), "/")
	path := ""
	for _, c := range comps {
		path += "/" + c
		if err := p.SyscallSite(BinApache, EntryApacheLink); err != nil {
			return err
		}
		st, err := p.Lstat(path)
		if err != nil {
			return err
		}
		if st.Type == vfs.TypeSymlink {
			tgt, err := p.Stat(path) // follows the link
			if err != nil {
				return err
			}
			if tgt.UID != st.UID {
				return fmt.Errorf("%w: symlink owner mismatch at %s", ErrForbidden, path)
			}
		}
	}
	return nil
}

// readHtaccess probes each directory level for a .htaccess file.
func (a *Apache) readHtaccess(p *kernel.Proc, full string) {
	comps := strings.Split(strings.TrimPrefix(parentDir(full), "/"), "/")
	path := ""
	for _, c := range comps {
		path += "/" + c
		p.SyscallSite(BinApache, EntryApacheServe+8)
		if fd, err := p.Open(path+"/.htaccess", kernel.O_RDONLY, 0); err == nil {
			p.ReadAll(fd)
			p.Close(fd)
		}
	}
}

// Authenticate reads the password database from Apache's authentication
// entrypoint — legitimate there, and only there (Section 1's example).
func (a *Apache) Authenticate(p *kernel.Proc, user string) (bool, error) {
	if err := p.SyscallSite(BinApache, EntryApacheAuth); err != nil {
		return false, err
	}
	fd, err := p.Open("/etc/shadow", kernel.O_RDONLY, 0)
	if err != nil {
		return false, err
	}
	defer p.Close(fd)
	data, err := p.ReadAll(fd)
	if err != nil {
		return false, err
	}
	return strings.Contains(string(data), user+":"), nil
}

// LoadModule loads an Apache module through the dynamic linker, the vector
// of exploit E1 (insecure RUNPATH on module binaries).
func (a *Apache) LoadModule(p *kernel.Proc, module string) (string, error) {
	ld := NewLinker(a.W)
	return ld.LoadLibrary(p, module)
}
