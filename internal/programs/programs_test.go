package programs

import (
	"errors"
	"strings"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// worldPF builds a standard world with the full Table 5 rule set.
func worldPF(t *testing.T) *World {
	t.Helper()
	cfg := pf.Optimized()
	w := NewWorld(WorldOpts{PF: &cfg})
	if n, err := w.InstallRules(StandardRules()); err != nil || n == 0 {
		t.Fatalf("install rules: %d, %v", n, err)
	}
	return w
}

func TestWorldConstruction(t *testing.T) {
	w := NewWorld(WorldOpts{})
	for _, path := range []string{
		"/etc/passwd", "/etc/shadow", "/lib/ld-2.15.so", "/usr/bin/php5",
		"/var/www/html/index.html", "/usr/lib/apache2/mod_ssl.so",
	} {
		if _, ok := w.K.LookupIno(path); !ok {
			t.Errorf("world missing %s", path)
		}
	}
	if w.Engine != nil {
		t.Error("world without PF opts should have nil engine")
	}
}

func TestWorldWebTreeDepth(t *testing.T) {
	w := NewWorld(WorldOpts{WebTreeDepth: 5})
	if _, ok := w.K.LookupIno("/var/www/html/d/d/d/d/d/index.html"); !ok {
		t.Error("deep web tree missing")
	}
}

func TestStandardRulesCount(t *testing.T) {
	w := worldPF(t)
	if got := w.Engine.RuleCount(); got != len(StandardRules()) {
		t.Errorf("rule count = %d, want %d", got, len(StandardRules()))
	}
}

// --- Linker ----------------------------------------------------------------

func TestLinkerDefaultPath(t *testing.T) {
	w := NewWorld(WorldOpts{})
	ld := NewLinker(w)
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache})
	path, err := ld.LoadLibrary(p, "libssl.so")
	if err != nil || path != "/lib/libssl.so" {
		t.Errorf("load = %q, %v", path, err)
	}
	// The loaded library is now mapped for entrypoint matching.
	if _, ok := p.AddrSpace().FindByPath("/lib/libssl.so"); !ok {
		t.Error("library not mapped after load")
	}
}

func TestLinkerEnvPrecedence(t *testing.T) {
	w := NewWorld(WorldOpts{})
	adv := w.NewUser()
	fd, err := adv.Open("/tmp/libssl.so", kernel.O_CREAT|kernel.O_RDWR, 0o755)
	if err != nil {
		t.Fatal(err)
	}
	adv.Close(fd)

	ld := NewLinker(w)
	p := w.NewProc(kernel.ProcSpec{
		UID: 1000, GID: 1000, Label: "user_t", Exec: BinSh,
		Env: map[string]string{"LD_LIBRARY_PATH": "/tmp"},
	})
	path, err := ld.LoadLibrary(p, "libssl.so")
	if err != nil || path != "/tmp/libssl.so" {
		t.Errorf("LD_LIBRARY_PATH should win for non-setuid: %q, %v", path, err)
	}
}

func TestLinkerSetuidFiltersEnv(t *testing.T) {
	w := NewWorld(WorldOpts{})
	adv := w.NewUser()
	fd, _ := adv.Open("/tmp/libssl.so", kernel.O_CREAT|kernel.O_RDWR, 0o755)
	adv.Close(fd)

	ld := NewLinker(w)
	p := w.NewProc(kernel.ProcSpec{
		UID: 1000, GID: 1000, Label: "user_t", Exec: BinSh,
		Env: map[string]string{"LD_LIBRARY_PATH": "/tmp"},
	})
	p.EUID = 0 // setuid: Figure 1(b)'s unsetenv path
	path, err := ld.LoadLibrary(p, "libssl.so")
	if err != nil || path != "/lib/libssl.so" {
		t.Errorf("setuid must ignore LD_LIBRARY_PATH: %q, %v", path, err)
	}
}

func TestLinkerRPathHonoredEvenSetuid(t *testing.T) {
	// RPATH is embedded in the binary, so ld.so honors it regardless —
	// the E1 flaw.
	w := NewWorld(WorldOpts{})
	adv := w.NewUser()
	adv.Mkdir("/tmp/svn", 0o777)
	fd, _ := adv.Open("/tmp/svn/libssl.so", kernel.O_CREAT|kernel.O_RDWR, 0o755)
	adv.Close(fd)
	w.RPaths[BinSshd] = []string{"/tmp/svn"}

	ld := NewLinker(w)
	p := w.NewProc(kernel.ProcSpec{UID: 1000, GID: 1000, Label: "user_t", Exec: BinSshd})
	p.EUID = 0
	path, err := ld.LoadLibrary(p, "libssl.so")
	if err != nil || path != "/tmp/svn/libssl.so" {
		t.Errorf("RPATH should be honored: %q, %v", path, err)
	}
}

func TestLinkerPFFallsBackToTrusted(t *testing.T) {
	// With rule R1, a poisoned search path is skipped and the trusted
	// library still loads — protection without loss of function.
	w := worldPF(t)
	adv := w.NewUser()
	adv.Mkdir("/tmp/svn", 0o777)
	fd, _ := adv.Open("/tmp/svn/libssl.so", kernel.O_CREAT|kernel.O_RDWR, 0o755)
	adv.Close(fd)
	w.RPaths[BinApache] = []string{"/tmp/svn"}

	ld := NewLinker(w)
	p := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache})
	path, err := ld.LoadLibrary(p, "libssl.so")
	if err != nil || path != "/lib/libssl.so" {
		t.Errorf("load = %q, %v", path, err)
	}
	if len(ld.Denied) != 1 || ld.Denied[0] != "/tmp/svn/libssl.so" {
		t.Errorf("denial log = %v", ld.Denied)
	}
}

// --- Apache ------------------------------------------------------------------

func TestApacheServes(t *testing.T) {
	w := NewWorld(WorldOpts{})
	a := NewApache(w)
	p := a.Spawn()
	body, err := a.Serve(p, "/index.html")
	if err != nil || !strings.Contains(string(body), "hello") {
		t.Errorf("serve = %q, %v", body, err)
	}
}

func TestApacheSymLinksIfOwnerMatchInProgram(t *testing.T) {
	w := NewWorld(WorldOpts{})
	root := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "httpd_t", Exec: BinSh})
	// Same-owner symlink: root link to a root file.
	if err := root.Symlink("/var/www/html/index.html", "/var/www/html/ok.html"); err != nil {
		t.Fatal(err)
	}
	// Cross-owner symlink: a user-owned link (planted via a compromised
	// upload step, modeled by chowning the link) to a root file.
	if err := root.Symlink("/etc/passwd", "/var/www/html/evil.html"); err != nil {
		t.Fatal(err)
	}
	res, err := w.K.FS.Resolve(nil, "/var/www/html/evil.html", vfs.ResolveOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.K.FS.Chown(res.Node, 1000, 1000)

	a := NewApache(w)
	a.SymLinksIfOwnerMatch = true
	p := a.Spawn()

	if _, err := a.Serve(p, "/ok.html"); err != nil {
		t.Errorf("same-owner symlink should serve: %v", err)
	}
	_, err = a.Serve(p, "/evil.html")
	if !errors.Is(err, ErrForbidden) {
		t.Errorf("cross-owner symlink: %v, want 403", err)
	}
}

func TestApacheAuthenticate(t *testing.T) {
	w := NewWorld(WorldOpts{})
	a := NewApache(w)
	p := a.Spawn()
	ok, err := a.Authenticate(p, "root")
	if err != nil || !ok {
		t.Errorf("auth = %v, %v", ok, err)
	}
	ok, _ = a.Authenticate(p, "nobody")
	if ok {
		t.Error("unknown user authenticated")
	}
}

func TestApacheEntrypointSeparation(t *testing.T) {
	// The Section 1 property: block shadow access from the serve
	// entrypoint while the auth entrypoint still works.
	cfg := pf.Optimized()
	w := NewWorld(WorldOpts{PF: &cfg})
	rule := `pftables -p ` + BinApache + ` -i 0x41a20 -d shadow_t -o FILE_OPEN -j DROP`
	if _, err := w.InstallRules([]string{rule}); err != nil {
		t.Fatal(err)
	}
	a := NewApache(w)
	p := a.Spawn()

	// Directory-traversal-style request for the password file.
	if _, err := a.Serve(p, "/../../../etc/shadow"); !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("serve shadow: %v, want ErrPFDenied", err)
	}
	// Authentication reads the same file from its own entrypoint: allowed.
	if ok, err := a.Authenticate(p, "root"); err != nil || !ok {
		t.Errorf("auth after block: %v, %v", ok, err)
	}
}

func TestApacheNoFalsePositivesUnderFullRules(t *testing.T) {
	w := worldPF(t)
	a := NewApache(w)
	p := a.Spawn()
	if _, err := a.Serve(p, "/index.html"); err != nil {
		t.Errorf("serve with full rules: %v", err)
	}
	if ok, err := a.Authenticate(p, "root"); err != nil || !ok {
		t.Errorf("auth with full rules: %v %v", ok, err)
	}
}

// --- PHP / Python / Bash ------------------------------------------------------

func TestPHPTrustedIncludeAllowed(t *testing.T) {
	w := worldPF(t)
	php := NewPHP(w)
	p := php.Spawn()
	err := php.RunScript(p, "/var/www/scripts/index.php", func() error {
		_, ierr := php.Include(p, "/var/www/scripts/gcalendar.php")
		return ierr
	})
	if err != nil {
		t.Errorf("trusted include blocked: %v", err)
	}
}

func TestPythonTrustedImport(t *testing.T) {
	w := worldPF(t)
	py := NewPython(w)
	p := py.Spawn("/usr/bin/dstat")
	mod, err := py.ImportModule(p, "os")
	if err != nil || mod != "/usr/lib/python2.7/os.py" {
		t.Errorf("import = %q, %v", mod, err)
	}
}

func TestPythonImportError(t *testing.T) {
	w := NewWorld(WorldOpts{})
	py := NewPython(w)
	p := py.Spawn("/usr/bin/dstat")
	if _, err := py.ImportModule(p, "nonexistent"); !errors.Is(err, ErrModuleNotFound) {
		t.Errorf("err = %v", err)
	}
}

// --- D-Bus ---------------------------------------------------------------------

func TestDbusDaemonNormalStartWithRules(t *testing.T) {
	// No adversary: the bind+chmod sequence must complete (no false
	// positive from R5/R6).
	w := worldPF(t)
	d := NewDbusDaemon(w)
	p := d.Spawn()
	if err := d.Start(p); err != nil {
		t.Errorf("normal start: %v", err)
	}
}

func TestLibDbusDefaultConnect(t *testing.T) {
	w := worldPF(t)
	d := NewDbusDaemon(w)
	dp := d.Spawn()
	if err := d.Start(dp); err != nil {
		t.Fatal(err)
	}
	lib := NewLibDbus(w)
	client := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache})
	if _, err := lib.Connect(client); err != nil {
		t.Errorf("default connect with rules: %v", err)
	}
}

func TestDbusRendezvousDataPlane(t *testing.T) {
	// A full message round trip over the real data plane: client connects
	// through libdbus, daemon accepts and reads the bytes, replies, client
	// reads the reply — all under the standard rule set.
	w := worldPF(t)
	d := NewDbusDaemon(w)
	dp := d.Spawn()
	if err := d.Start(dp); err != nil {
		t.Fatal(err)
	}
	lib := NewLibDbus(w)
	client := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache})
	cfd, err := lib.Connect(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Send(cfd, []byte("Hello")); err != nil {
		t.Fatalf("client send: %v", err)
	}
	sfd, err := d.AcceptOne(dp)
	if err != nil {
		t.Fatalf("daemon accept: %v", err)
	}
	if got, err := dp.Recv(sfd, 0); err != nil || string(got) != "Hello" {
		t.Fatalf("daemon recv = %q, %v", got, err)
	}
	if _, err := dp.Send(sfd, []byte("NameAcquired :1.42")); err != nil {
		t.Fatalf("daemon send: %v", err)
	}
	if got, err := client.Recv(cfd, 0); err != nil || string(got) != "NameAcquired :1.42" {
		t.Fatalf("client recv = %q, %v", got, err)
	}
}

func TestLibDbusAbstractAddress(t *testing.T) {
	// Session buses use abstract addresses; libdbus parses the abstract=
	// prefix and connects through the inode-less namespace. No rule set
	// here: R3 pins the libdbus entrypoint to the system bus label, and an
	// abstract listener carries its binder's process label instead (that
	// interaction is asserted separately below).
	w := NewWorld(WorldOpts{})
	daemon := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "dbusd_t", Exec: BinDbusD})
	lfd, err := daemon.BindAbstract("dbus-session-abc123")
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Listen(lfd, 4); err != nil {
		t.Fatal(err)
	}
	lib := NewLibDbus(w)
	client := w.NewProc(kernel.ProcSpec{
		UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache,
		Env: map[string]string{"DBUS_SYSTEM_BUS_ADDRESS": "abstract=dbus-session-abc123"},
	})
	cfd, err := lib.Connect(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Send(cfd, []byte("Hello")); err != nil {
		t.Fatal(err)
	}
	sfd, err := daemon.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := daemon.Recv(sfd, 0); err != nil || string(got) != "Hello" {
		t.Fatalf("recv over abstract = %q, %v", got, err)
	}
}

func TestR3BlocksAbstractSquatViaLibDbus(t *testing.T) {
	// With the standard rules, R3 confines the libdbus connect entrypoint
	// to system_dbusd_var_run_t. An abstract socket carries its binder's
	// process label, so pointing DBUS_SYSTEM_BUS_ADDRESS at an abstract
	// name — squatted or not — is dropped at that entrypoint.
	w := worldPF(t)
	adv := w.NewUser()
	sfd, err := adv.BindAbstract("fake_bus")
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Listen(sfd, 4); err != nil {
		t.Fatal(err)
	}
	lib := NewLibDbus(w)
	victim := w.NewProc(kernel.ProcSpec{
		UID: 0, GID: 0, Label: "httpd_t", Exec: BinApache,
		Env: map[string]string{"DBUS_SYSTEM_BUS_ADDRESS": "abstract=fake_bus"},
	})
	if _, err := lib.Connect(victim); !errors.Is(err, kernel.ErrPFDenied) {
		t.Fatalf("connect to abstract squat via libdbus: %v, want ErrPFDenied", err)
	}
}

// --- sshd -----------------------------------------------------------------------

func TestSshdSingleSignalWithRules(t *testing.T) {
	w := worldPF(t)
	s := NewSshd(w)
	victim := s.Spawn()
	trigger := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: BinSshd})
	if err := trigger.Kill(victim.PID(), kernel.SIGALRM); err != nil {
		t.Fatalf("single signal should deliver: %v", err)
	}
	if s.HandlerRuns != 1 || s.Corrupted {
		t.Errorf("runs=%d corrupted=%v", s.HandlerRuns, s.Corrupted)
	}
	// A second, sequential signal also delivers (state cleared by R12).
	if err := trigger.Kill(victim.PID(), kernel.SIGALRM); err != nil {
		t.Errorf("sequential signal: %v", err)
	}
	if s.HandlerRuns != 2 {
		t.Errorf("runs = %d, want 2", s.HandlerRuns)
	}
}

// --- misc programs ---------------------------------------------------------------

func TestJavaSystemConfigWithRules(t *testing.T) {
	w := worldPF(t)
	j := NewJava(w)
	p := j.Spawn("/")
	name, data, err := j.LoadConfig(p)
	if err != nil || name != "/etc/java.conf" || !strings.Contains(string(data), "jvm-args") {
		t.Errorf("config = %q, %q, %v", name, data, err)
	}
}

func TestIcecatNormalStartWithRules(t *testing.T) {
	w := worldPF(t)
	i := NewIcecat(w)
	p := i.Spawn("/") // cwd "." resolves to / where no trojan exists
	loaded, _, err := i.Start(p)
	if err != nil || len(loaded) != 2 {
		t.Errorf("loaded = %v, %v", loaded, err)
	}
}

func TestInitScriptNormalRunWithRules(t *testing.T) {
	w := worldPF(t)
	b := NewBash(w)
	p := b.Spawn("/etc/init.d/daemon")
	s := NewInitScript(w)
	if err := s.Run(p); err != nil {
		t.Errorf("normal pid-file creation: %v", err)
	}
	if _, ok := w.K.LookupIno(s.PidPath); !ok {
		t.Error("pid file missing")
	}
}

func TestDstatNormalRun(t *testing.T) {
	w := worldPF(t)
	d := NewDstat(w)
	// cwd without a trojan: the trusted plugin loads.
	mod, err := d.Run("/")
	if err != nil || mod != "/usr/share/dstat/dstat_disk.py" {
		t.Errorf("module = %q, %v", mod, err)
	}
}
