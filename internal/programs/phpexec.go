package programs

import (
	"errors"
	"fmt"
	"strings"

	"pfirewall/internal/kernel"
)

// This file implements a miniature PHP execution engine so the file
// inclusion experiments run on genuine script text stored in the simulated
// filesystem, rather than on hand-driven call sequences. The language
// subset covers what the attack class needs:
//
//	$var = "literal";
//	$var = $_GET['param'];
//	include("path");  include($var);  include($_GET['param']);
//	echo "text";  echo $var;
//
// Every include performs the interpreter's file-open at the real include
// entrypoint (rule R4's -i 0x27ad2c) with an interpreter frame recording
// the script and line — so both native-PC and script-level firewall rules
// apply to script execution exactly as they do in the paper.

// PHPRequest carries the attacker-controllable request parameters ($_GET).
type PHPRequest map[string]string

// ErrPHPParse reports a script construct outside the supported subset.
var ErrPHPParse = errors.New("php: parse error")

// maxIncludeDepth bounds include recursion (PHP's own limit is memory).
const maxIncludeDepth = 16

// Exec loads the script at path and executes it in process p with the
// given request, returning the emitted output. The top-level script load
// itself goes through the include entrypoint, like mod_php's handler.
func (i *PHP) Exec(p *kernel.Proc, path string, req PHPRequest) (string, error) {
	var out strings.Builder
	if err := i.execFile(p, path, req, map[string]string{}, &out, 0); err != nil {
		return out.String(), err
	}
	return out.String(), nil
}

// execFile reads and interprets one script file.
func (i *PHP) execFile(p *kernel.Proc, path string, req PHPRequest, vars map[string]string, out *strings.Builder, depth int) error {
	if depth > maxIncludeDepth {
		return fmt.Errorf("php: include depth exceeded at %s", path)
	}
	src, err := i.Include(p, path)
	if err != nil {
		return err
	}
	body := string(src)
	if !strings.Contains(body, "<?php") {
		// Non-PHP content included verbatim — exactly what makes LFI an
		// exploit: the "image" an attacker uploaded is echoed/executed.
		out.WriteString(body)
		return nil
	}
	body = strings.TrimSpace(body)
	body = strings.TrimPrefix(body, "<?php")
	body = strings.TrimSuffix(body, "?>")

	for lineNo, raw := range strings.Split(body, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.InterpPush(path, lineNo+2); err != nil { // +2: after <?php
			return err
		}
		err := i.execLine(p, path, line, req, vars, out, depth)
		p.InterpPop()
		if err != nil {
			return fmt.Errorf("%s:%d: %w", path, lineNo+2, err)
		}
	}
	return nil
}

// execLine interprets a single statement.
func (i *PHP) execLine(p *kernel.Proc, script, line string, req PHPRequest, vars map[string]string, out *strings.Builder, depth int) error {
	line = strings.TrimSuffix(line, ";")
	switch {
	case strings.HasPrefix(line, "include(") && strings.HasSuffix(line, ")"):
		expr := line[len("include(") : len(line)-1]
		target, err := evalExpr(expr, req, vars)
		if err != nil {
			return err
		}
		// Relative includes resolve against the including script's dir.
		if !strings.HasPrefix(target, "/") {
			target = parentDir(script) + "/" + target
		}
		return i.execFile(p, target, req, vars, out, depth+1)

	case strings.HasPrefix(line, "echo "):
		v, err := evalExpr(strings.TrimPrefix(line, "echo "), req, vars)
		if err != nil {
			return err
		}
		out.WriteString(v)
		return nil

	case strings.HasPrefix(line, "$"):
		// $var = expr
		parts := strings.SplitN(line, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("%w: %q", ErrPHPParse, line)
		}
		name := strings.TrimSpace(strings.TrimPrefix(parts[0], "$"))
		v, err := evalExpr(strings.TrimSpace(parts[1]), req, vars)
		if err != nil {
			return err
		}
		vars[name] = v
		return nil

	default:
		return fmt.Errorf("%w: %q", ErrPHPParse, line)
	}
}

// evalExpr evaluates the expression subset: "literal", 'literal', $var,
// $_GET['name'], and . concatenation of those.
func evalExpr(expr string, req PHPRequest, vars map[string]string) (string, error) {
	var out strings.Builder
	for _, part := range splitConcat(expr) {
		part = strings.TrimSpace(part)
		switch {
		case len(part) >= 2 && (part[0] == '"' || part[0] == '\''):
			if part[len(part)-1] != part[0] {
				return "", fmt.Errorf("%w: unterminated string %q", ErrPHPParse, part)
			}
			out.WriteString(part[1 : len(part)-1])
		case strings.HasPrefix(part, "$_GET["):
			key := strings.TrimSuffix(strings.TrimPrefix(part, "$_GET["), "]")
			key = strings.Trim(key, `'"`)
			out.WriteString(req[key])
		case strings.HasPrefix(part, "$"):
			out.WriteString(vars[strings.TrimPrefix(part, "$")])
		default:
			return "", fmt.Errorf("%w: expression %q", ErrPHPParse, part)
		}
	}
	return out.String(), nil
}

// splitConcat splits on the PHP "." operator outside string literals.
func splitConcat(expr string) []string {
	var parts []string
	depth := byte(0) // current quote char, 0 = outside strings
	start := 0
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		switch {
		case depth == 0 && (c == '"' || c == '\''):
			depth = c
		case depth != 0 && c == depth:
			depth = 0
		case depth == 0 && c == '.':
			parts = append(parts, expr[start:i])
			start = i + 1
		}
	}
	parts = append(parts, expr[start:])
	return parts
}
