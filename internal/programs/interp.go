package programs

import (
	"errors"
	"strings"

	"pfirewall/internal/kernel"
	"pfirewall/internal/ustack"
)

// PHP models the PHP interpreter's file inclusion (paper exploit E4 and
// rule R4): include() resolves an attacker-influenced name and opens it at
// the interpreter's include call site, while interpreter-level frames
// record which script and line requested the inclusion.
type PHP struct {
	W *World
}

// NewPHP returns the interpreter model.
func NewPHP(w *World) *PHP { return &PHP{W: w} }

// Spawn starts a PHP process (running under Apache's domain, as mod_php).
func (i *PHP) Spawn() *kernel.Proc {
	p := i.W.NewProc(kernel.ProcSpec{UID: 33, GID: 33, Label: "httpd_t", Exec: BinPHP})
	p.BecomeInterpreter(ustack.LangPHP)
	return p
}

// RunScript enters script and executes body within its interpreter frame.
func (i *PHP) RunScript(p *kernel.Proc, script string, body func() error) error {
	if err := p.InterpPush(script, 1); err != nil {
		return err
	}
	defer p.InterpPop()
	return body()
}

// Include opens path at the interpreter's include entrypoint and returns
// the included source. The PHP local-file-inclusion class exists because
// scripts pass unfiltered request input here.
func (i *PHP) Include(p *kernel.Proc, path string) ([]byte, error) {
	if err := p.SyscallSite(BinPHP, EntryPHPInclude); err != nil {
		return nil, err
	}
	fd, err := p.Open(path, kernel.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	return p.ReadAll(fd)
}

// Python models the module import machinery whose untrusted search path
// enabled exploit E2 (dstat) and CVE-2008-5983; rule R2 constrains it.
type Python struct {
	W *World
	// Path is sys.path; the dstat bug is the empty entry (the cwd).
	Path []string
}

// NewPython returns an interpreter with the standard module path.
func NewPython(w *World) *Python {
	return &Python{W: w, Path: []string{"/usr/lib/python2.7", "/usr/share/dstat"}}
}

// Spawn starts a Python process executing script (e.g. dstat).
func (i *Python) Spawn(script string) *kernel.Proc {
	p := i.W.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "dstat_t", Exec: BinPython, Cwd: "/home/user"})
	p.BecomeInterpreter(ustack.LangPython)
	p.InterpPush(script, 1)
	return p
}

// ErrModuleNotFound reports an exhausted sys.path.
var ErrModuleNotFound = errors.New("python: ImportError")

// ImportModule searches Path for name.py, opening candidates at the
// import entrypoint. An empty path entry means the working directory —
// the Trojan-module attack surface.
func (i *Python) ImportModule(p *kernel.Proc, name string) (string, error) {
	for _, dir := range i.Path {
		var cand string
		switch {
		case dir == "":
			cand = name + ".py" // cwd-relative
		case strings.HasSuffix(dir, "/"):
			cand = dir + name + ".py"
		default:
			cand = dir + "/" + name + ".py"
		}
		if err := p.SyscallSite(BinPython, EntryPyImport); err != nil {
			return "", err
		}
		fd, err := p.Open(cand, kernel.O_RDONLY, 0)
		if err != nil {
			continue // includes PF denials: try the next entry
		}
		p.Close(fd)
		return cand, nil
	}
	return "", ErrModuleNotFound
}

// Bash models shell script execution with interpreter frames, used by the
// init-script exploit E9.
type Bash struct {
	W *World
}

// NewBash returns the shell model.
func NewBash(w *World) *Bash { return &Bash{w} }

// Spawn starts a bash process running script as root (init context).
func (b *Bash) Spawn(script string) *kernel.Proc {
	p := b.W.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "init_t", Exec: BinBash})
	p.BecomeInterpreter(ustack.LangBash)
	p.InterpPush(script, 1)
	return p
}
