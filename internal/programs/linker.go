package programs

import (
	"errors"
	"strings"

	"pfirewall/internal/kernel"
)

// Linker models ld.so's library loading (paper Figure 1b): it builds a
// search path from LD_LIBRARY_PATH (filtered for setuid processes), the
// binary's RPATH, and the system default, then opens and maps the first
// matching library — the code path behind Untrusted Library Load attacks
// (E1, E8) and the one rule R1 protects.
type Linker struct {
	W *World
	// DefaultPath is the trusted system search path.
	DefaultPath []string
	// Denied accumulates candidate paths the firewall rejected — the
	// "denial log" that surfaced the previously unknown Icecat bug (E8).
	Denied []string
}

// NewLinker returns a linker with the standard /lib:/usr/lib default path.
func NewLinker(w *World) *Linker {
	return &Linker{W: w, DefaultPath: []string{"/lib", "/usr/lib", "/usr/lib/apache2"}}
}

// ErrLibNotFound reports that no search-path entry yielded the library.
var ErrLibNotFound = errors.New("ld.so: library not found")

// SearchPath computes the directories to probe for p, replicating ld.so's
// precedence: LD_LIBRARY_PATH (unless setuid), then the executable's
// RPATH, then the default path. The setuid filtering on lines 1–5 of
// Figure 1(b) is exactly what RPATH bugs and linker bugs bypass.
func (l *Linker) SearchPath(p *kernel.Proc) []string {
	var dirs []string
	setuid := p.UID != p.EUID || p.GID != p.EGID
	if !setuid {
		if v, ok := p.Env["LD_LIBRARY_PATH"]; ok && v != "" {
			dirs = append(dirs, strings.Split(v, ":")...)
		}
	}
	// RPATH entries are honored even for setuid binaries — the flaw behind
	// CVE-2006-1564 (E1).
	dirs = append(dirs, l.W.RPaths[p.ExecPath()]...)
	dirs = append(dirs, l.DefaultPath...)
	return dirs
}

// LoadLibrary searches for lib and maps it, issuing the open at ld.so's
// library-open entrypoint so rule R1 governs it. It returns the path the
// library was loaded from.
func (l *Linker) LoadLibrary(p *kernel.Proc, lib string) (string, error) {
	if _, ok := p.AddrSpace().FindByPath(BinLdSo); !ok {
		p.AddrSpace().Map(BinLdSo, 0)
	}
	if err := p.PushFrame(BinLdSo, 0x1000); err != nil {
		return "", err
	}
	defer p.PopFrame()

	for _, dir := range l.SearchPath(p) {
		path := dir + "/" + lib
		if err := p.SyscallSite(BinLdSo, EntryLdOpen); err != nil {
			return "", err
		}
		fd, err := p.Open(path, kernel.O_RDONLY, 0)
		if err != nil {
			if errors.Is(err, kernel.ErrPFDenied) {
				// The firewall blocked this candidate. ld.so sees EPERM
				// and tries the next directory — the attack is silently
				// defeated while trusted candidates still load, which is
				// how the paper noticed E8 only in the denial logs.
				l.Denied = append(l.Denied, path)
			}
			continue
		}
		if err := p.SyscallSite(BinLdSo, EntryLdOpen+0x20); err != nil {
			return "", err
		}
		if err := p.Mmap(fd); err != nil {
			p.Close(fd)
			return "", err
		}
		p.Close(fd)
		return path, nil
	}
	return "", ErrLibNotFound
}
