package programs

import (
	"pfirewall/internal/kernel"
)

// Sshd models OpenSSH's non-reentrant SIGALRM handler (exploit E5,
// CVE-2006-5051): the grace-period handler calls cleanup code that is not
// safe to re-enter. If a second signal lands while the handler runs, the
// cleanup state is corrupted — observable here as the Corrupted flag.
// Rules R9–R12 drop the nested delivery.
type Sshd struct {
	W *World

	// Corrupted records that the non-reentrant section was re-entered.
	Corrupted bool
	// HandlerRuns counts completed handler executions.
	HandlerRuns int

	inCleanup bool
}

// NewSshd returns the daemon model.
func NewSshd(w *World) *Sshd { return &Sshd{W: w} }

// Spawn starts sshd and registers the vulnerable handler.
func (s *Sshd) Spawn() *kernel.Proc {
	p := s.W.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: BinSshd})
	p.Sigaction(kernel.SIGALRM, s.graceAlarmHandler)
	return p
}

// graceAlarmHandler is sshd's grace_alarm_handler: it performs cleanup
// that must not be re-entered (the real bug calls non-async-signal-safe
// functions like syslog/free).
func (s *Sshd) graceAlarmHandler(p *kernel.Proc, sig int) {
	if s.inCleanup {
		// Re-entered mid-cleanup: the heap/state corruption the CVE
		// describes.
		s.Corrupted = true
		return
	}
	s.inCleanup = true
	// The cleanup makes system calls, opening the window in which a
	// second signal can arrive (delivered via interleave hooks in the
	// exploit, or naturally by a second Kill in the simulation).
	p.SyscallSite(BinSshd, 0x7730)
	if fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0); err == nil {
		p.Close(fd)
	}
	s.inCleanup = false
	s.HandlerRuns++
}
