package programs

import (
	"strings"

	"pfirewall/internal/kernel"
)

// DbusDaemon models the message bus daemon whose bind→chmod sequence has
// an unpatched TOCTTOU window (exploit E6): it binds the system socket,
// then chmods it world-accessible. An adversary who swaps the binding in
// between gets an arbitrary root chmod. Rules R5/R6 record the bound inode
// and drop mismatched chmods.
type DbusDaemon struct {
	W          *World
	SocketPath string

	// fd is the listening socket, kept open for the daemon's lifetime once
	// Start succeeds.
	fd int
}

// NewDbusDaemon returns the daemon model bound at the standard path.
func NewDbusDaemon(w *World) *DbusDaemon {
	return &DbusDaemon{W: w, SocketPath: "/var/run/dbus/system_bus_socket", fd: -1}
}

// Spawn starts the daemon process.
func (d *DbusDaemon) Spawn() *kernel.Proc {
	return d.W.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "dbusd_t", Exec: BinDbusD})
}

// Start performs the vulnerable startup sequence: bind at one call site,
// chmod by path at another. The chmod resolves the path again — the race.
// On success the daemon is left listening on the bus socket.
func (d *DbusDaemon) Start(p *kernel.Proc) error {
	if err := p.SyscallSite(BinDbusD, EntryDbusBind); err != nil {
		return err
	}
	fd, err := p.Bind(d.SocketPath, 0o600)
	if err != nil {
		return err
	}

	// The window: a real daemon does other work here; the simulation's
	// interleave hooks let the adversary act at the next syscall entry.
	if err := p.SyscallSite(BinDbusD, EntryDbusChmod); err != nil {
		p.Close(fd)
		return err
	}
	if err := p.Chmod(d.SocketPath, 0o666); err != nil {
		p.Close(fd)
		return err
	}
	if err := p.SyscallSite(BinDbusD, EntryDbusListen); err != nil {
		p.Close(fd)
		return err
	}
	if err := p.Listen(fd, 16); err != nil {
		p.Close(fd)
		return err
	}
	d.fd = fd
	return nil
}

// Fd returns the daemon's listening descriptor (-1 before Start succeeds).
func (d *DbusDaemon) Fd() int { return d.fd }

// AcceptOne accepts a single pending client connection, returning the
// connected descriptor.
func (d *DbusDaemon) AcceptOne(p *kernel.Proc) (int, error) {
	return p.Accept(d.fd)
}

// LibDbus models the client library (exploit E3, rule R3): it resolves the
// bus address from an environment variable that setuid programs fail to
// filter, then connects at libdbus's connect call site.
type LibDbus struct {
	W *World
}

// NewLibDbus returns the client library model.
func NewLibDbus(w *World) *LibDbus { return &LibDbus{w} }

// Connect opens a connection to the system bus for p. The address comes
// from DBUS_SYSTEM_BUS_ADDRESS if set — programmers assumed only trusted
// callers would set it. Addresses of the form "abstract=NAME" use the
// inode-less abstract namespace, as real D-Bus session buses do.
func (l *LibDbus) Connect(p *kernel.Proc) (int, error) {
	if _, ok := p.AddrSpace().FindByPath(BinLibDbus); !ok {
		p.AddrSpace().Map(BinLibDbus, 0)
	}
	addr := p.Env["DBUS_SYSTEM_BUS_ADDRESS"]
	if addr == "" {
		addr = "/var/run/dbus/system_bus_socket"
	}
	if err := p.PushFrame(BinLibDbus, 0x100); err != nil {
		return -1, err
	}
	defer p.PopFrame()
	if err := p.SyscallSite(BinLibDbus, EntryDbusConnect); err != nil {
		return -1, err
	}
	if name, ok := strings.CutPrefix(addr, "abstract="); ok {
		return p.ConnectAbstract(name)
	}
	return p.Connect(addr)
}
