package programs

import (
	"errors"
	"strings"
	"testing"

	"pfirewall/internal/kernel"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// putScript writes (or overwrites) a script into the world as root.
func putScript(t *testing.T, w *World, path, content string) {
	t.Helper()
	dir := w.K.FS.MustPath(parentDir(path))
	n, err := w.K.FS.CreateAt(dir, baseName(path), path, vfs.CreateOpts{Mode: 0o644})
	if errors.Is(err, vfs.ErrExist) {
		existing, _ := w.K.FS.Lookup(dir, baseName(path))
		n = existing
	} else if err != nil {
		t.Fatal(err)
	}
	w.K.FS.WriteFile(n, []byte(content))
}

// --- PHP -------------------------------------------------------------------

func TestPHPExecEchoAndVars(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/var/www/scripts/hello.php", `<?php
$greeting = "hello";
echo $greeting . " " . "world";
?>`)
	php := NewPHP(w)
	p := php.Spawn()
	out, err := php.Exec(p, "/var/www/scripts/hello.php", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "hello world" {
		t.Errorf("out = %q", out)
	}
}

func TestPHPExecStaticInclude(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/var/www/scripts/main.php", `<?php
include("lib.php");
echo "-after";
?>`)
	putScript(t, w, "/var/www/scripts/lib.php", `<?php
echo "from-lib";
?>`)
	php := NewPHP(w)
	p := php.Spawn()
	out, err := php.Exec(p, "/var/www/scripts/main.php", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "from-lib-after" {
		t.Errorf("out = %q", out)
	}
}

func TestPHPExecGetParamInclude(t *testing.T) {
	// The LFI pattern as real script text: include($_GET['page']).
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/var/www/scripts/index.php", `<?php
$page = $_GET['page'];
include($page);
?>`)
	putScript(t, w, "/var/www/scripts/welcome.php", `<?php
echo "welcome";
?>`)
	php := NewPHP(w)
	p := php.Spawn()
	out, err := php.Exec(p, "/var/www/scripts/index.php", PHPRequest{"page": "welcome.php"})
	if err != nil || out != "welcome" {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestPHPExecLFIAttackAndDefense(t *testing.T) {
	// Without the firewall the uploaded "image" is included and its
	// contents surface; with rule R4 the include is dropped.
	run := func(withPF bool) (string, error) {
		var w *World
		if withPF {
			w = worldPF(t)
		} else {
			w = NewWorld(WorldOpts{})
		}
		putScript(t, w, "/var/www/scripts/index.php", `<?php
include($_GET['page']);
?>`)
		adv := w.NewUser()
		fd, err := adv.Open("/var/www/uploads/evil.jpg", kernel.O_CREAT|kernel.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		adv.Write(fd, []byte("PAYLOAD system('id')"))
		adv.Close(fd)

		php := NewPHP(w)
		p := php.Spawn()
		return php.Exec(p, "/var/www/scripts/index.php",
			PHPRequest{"page": "../uploads/evil.jpg"})
	}

	out, err := run(false)
	if err != nil || !strings.Contains(out, "PAYLOAD") {
		t.Errorf("attack should succeed without PF: %q, %v", out, err)
	}
	out, err = run(true)
	if !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("attack should be blocked with PF: %q, %v", out, err)
	}
}

func TestPHPExecIncludeDepthBounded(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/var/www/scripts/loop.php", `<?php
include("loop.php");
?>`)
	php := NewPHP(w)
	p := php.Spawn()
	if _, err := php.Exec(p, "/var/www/scripts/loop.php", nil); err == nil {
		t.Error("self-include must hit the depth bound")
	}
}

func TestPHPExecParseErrors(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/var/www/scripts/bad.php", `<?php
exec("rm -rf /");
?>`)
	php := NewPHP(w)
	p := php.Spawn()
	if _, err := php.Exec(p, "/var/www/scripts/bad.php", nil); !errors.Is(err, ErrPHPParse) {
		t.Errorf("err = %v, want ErrPHPParse", err)
	}
}

// --- shell -------------------------------------------------------------------

func TestShellExecBasics(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/etc/init.d/demo", `#!/bin/sh
# start the demo service
mkdir /tmp/demo
echo started > /tmp/demo/state
echo again >> /tmp/demo/state
cat /tmp/demo/state
touch /tmp/demo/pid
chmod 600 /tmp/demo/pid
`)
	b := NewBash(w)
	p := b.Spawn("/etc/init.d/demo")
	out, err := b.ExecScript(p, "/etc/init.d/demo")
	if err != nil {
		t.Fatal(err)
	}
	if out != "started\nagain\n" {
		t.Errorf("out = %q", out)
	}
	res, err := w.K.FS.Resolve(nil, "/tmp/demo/pid", vfs.ResolveOpts{}, nil)
	if err != nil || res.Node.Mode != 0o600 {
		t.Errorf("pid file: %+v, %v", res, err)
	}
}

func TestShellExecSymlinkAndRm(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/etc/init.d/links", `#!/bin/sh
touch /tmp/orig
ln -s /tmp/orig /tmp/alias
rm /tmp/orig
`)
	b := NewBash(w)
	p := b.Spawn("/etc/init.d/links")
	if _, err := b.ExecScript(p, "/etc/init.d/links"); err != nil {
		t.Fatal(err)
	}
	res, err := w.K.FS.Resolve(nil, "/tmp/alias", vfs.ResolveOpts{}, nil)
	if err != nil || !res.Node.IsSymlink() {
		t.Errorf("alias: %+v, %v", res, err)
	}
}

func TestShellExecE9ThroughRealScript(t *testing.T) {
	// Exploit E9 driven by genuine script text: the adversary's symlink
	// turns "touch /tmp/daemon.pid" into a truncation of /etc/passwd.
	run := func(withPF bool) error {
		var w *World
		if withPF {
			w = worldPF(t)
		} else {
			w = NewWorld(WorldOpts{})
		}
		putScript(t, w, "/etc/init.d/daemon", `#!/bin/sh
touch /tmp/daemon.pid
echo 4242 > /tmp/daemon.pid
`)
		adv := w.NewUser()
		if err := adv.Symlink("/etc/passwd", "/tmp/daemon.pid"); err != nil {
			t.Fatal(err)
		}
		b := NewBash(w)
		p := b.Spawn("/etc/init.d/daemon")
		_, err := b.ExecScript(p, "/etc/init.d/daemon")
		return err
	}

	if err := run(false); err != nil {
		t.Errorf("without PF the script runs (and clobbers): %v", err)
	}
	if err := run(true); !errors.Is(err, kernel.ErrPFDenied) {
		t.Errorf("with PF the symlink walk is dropped: %v", err)
	}
}

func TestShellExecUnknownCommand(t *testing.T) {
	w := NewWorld(WorldOpts{})
	putScript(t, w, "/etc/init.d/bad", "curl http://evil\n")
	b := NewBash(w)
	p := b.Spawn("/etc/init.d/bad")
	if _, err := b.ExecScript(p, "/etc/init.d/bad"); !errors.Is(err, ErrShellParse) {
		t.Errorf("err = %v, want ErrShellParse", err)
	}
}

func TestShellScriptLevelRule(t *testing.T) {
	// Firewall rules can key on interpreter frames: block a specific
	// script line from writing /tmp at all.
	cfg := optimizedCfg()
	w := NewWorld(WorldOpts{PF: &cfg})
	putScript(t, w, "/etc/init.d/noisy", `#!/bin/sh
touch /tmp/allowed
touch /tmp/blocked
`)
	// Line 3 ("touch /tmp/blocked") is forbidden from creating tmp_t files.
	rule := `pftables -p /etc/init.d/noisy -i 3 -d tmp_t -o FILE_CREATE -j DROP`
	if _, err := w.InstallRules([]string{rule}); err != nil {
		t.Fatal(err)
	}
	b := NewBash(w)
	p := b.Spawn("/etc/init.d/noisy")
	_, err := b.ExecScript(p, "/etc/init.d/noisy")
	if !errors.Is(err, kernel.ErrPFDenied) {
		t.Fatalf("line-3 create should be dropped: %v", err)
	}
	if _, ok := w.K.LookupIno("/tmp/allowed"); !ok {
		t.Error("line 2 should have succeeded")
	}
	if _, ok := w.K.LookupIno("/tmp/blocked"); ok {
		t.Error("line 3 must not have created the file")
	}
}

// optimizedCfg avoids importing pf at each call site in this file.
func optimizedCfg() pf.Config { return pf.Optimized() }
