// Package programs provides the simulated application layer of the
// reproduction: an Ubuntu-flavoured world (policy, file contexts,
// filesystem image) plus faithful models of the programs the paper attacks
// and defends — the dynamic linker, Apache, the PHP and Python
// interpreters, libdbus and dbus-daemon, sshd, the Java launcher, GNU
// Icecat, dstat, and an init script.
//
// Each program issues system calls through the simulated kernel with
// realistic call-stack frames at the entrypoint offsets the paper's rules
// name (e.g. ld.so's library open at 0x596b), so the Table 5 rule set
// applies verbatim.
package programs

import (
	"pfirewall/internal/kernel"
	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/vfs"
)

// Binary paths and entrypoint offsets used across the simulated programs.
// Offsets match the paper's Table 5 listings where the paper names them.
const (
	BinLdSo    = "/lib/ld-2.15.so"
	BinLibc    = "/lib/libc.so.6"
	BinLibDbus = "/lib/libdbus-1.so.3"
	BinApache  = "/usr/bin/apache2"
	BinPHP     = "/usr/bin/php5"
	BinPython  = "/usr/bin/python2.7"
	BinJava    = "/usr/bin/java"
	BinDbusD   = "/bin/dbus-daemon"
	BinSshd    = "/usr/sbin/sshd"
	BinSh      = "/bin/sh"
	BinBash    = "/bin/bash"
	BinIcecat  = "/usr/bin/icecat"
	BinDstat   = "/usr/bin/dstat"

	// EntryLdOpen is ld.so's library-open call site (rule R1).
	EntryLdOpen uint64 = 0x596b
	// EntryPyImport is the Python module-open call site (rule R2).
	EntryPyImport uint64 = 0x34f05
	// EntryDbusConnect is libdbus's socket connect call site (rule R3).
	EntryDbusConnect uint64 = 0x39231
	// EntryPHPInclude is the PHP interpreter's include call site (rule R4).
	EntryPHPInclude uint64 = 0x27ad2c
	// EntryDbusBind / EntryDbusChmod are dbus-daemon's bind and chmod call
	// sites (rules R5, R6).
	EntryDbusBind  uint64 = 0x3c750
	EntryDbusChmod uint64 = 0x3c786

	// EntryDbusListen is dbus-daemon's listen call site, reached after the
	// socket is made world-accessible.
	EntryDbusListen uint64 = 0x3c7b2
	// EntryJavaConf is the Java launcher's configuration-open call site
	// (rule R7).
	EntryJavaConf uint64 = 0x5d7e
	// EntryApacheLink is Apache's symlink-walk call site (rule R8).
	EntryApacheLink uint64 = 0x2d637
	// EntryApacheServe / EntryApacheAuth are Apache's content-open and
	// password-read call sites (the Section 1 motivating example: the same
	// process must reach different resources from different instructions).
	EntryApacheServe uint64 = 0x41a20
	EntryApacheAuth  uint64 = 0x42b31
	// EntryInitCreat is the init script's pid-file creation site (E9).
	EntryInitCreat uint64 = 0x1137
)

// KnownEntrypoints is the program registry for static rule validation: every
// named resource-access call site, keyed by the binary (or library) that
// contains it. A ruleset's -p/-i pair naming an offset absent here is almost
// certainly a typo — the rule would silently never match any unwound stack.
func KnownEntrypoints() map[string][]uint64 {
	return map[string][]uint64{
		BinLdSo:    {EntryLdOpen},
		BinPython:  {EntryPyImport},
		BinLibDbus: {EntryDbusConnect},
		BinPHP:     {EntryPHPInclude},
		BinDbusD:   {EntryDbusBind, EntryDbusChmod, EntryDbusListen},
		BinJava:    {EntryJavaConf},
		BinApache:  {EntryApacheLink, EntryApacheServe, EntryApacheAuth},
		BinBash:    {EntryInitCreat},
	}
}

// World bundles one simulated system: kernel, policy, optional Process
// Firewall, and the program models' shared configuration.
type World struct {
	K      *kernel.Kernel
	Engine *pf.Engine // nil when the firewall is disabled
	Env    *pftables.Env

	// RPaths simulates RUNPATH/RPATH entries embedded in binaries
	// (the Debian-installer bug of exploit E1 sets an insecure one).
	RPaths map[string][]string
}

// Labels that constitute the TCB (SYSHIGH) in the standard world.
var trustedLabels = []mac.Label{
	"httpd_t", "sshd_t", "dbusd_t", "java_t", "init_t", "icecat_t", "dstat_t",
	"bin_t", "lib_t", "usr_t", "etc_t", "shadow_t", "var_t",
	"httpd_content_t", "httpd_modules_t", "httpd_config_t",
	"system_dbusd_var_run_t", "textrel_shlib_t", "default_t",
}

// NewPolicy builds the standard world's MAC policy: the TCB labels above
// plus an untrusted user_t with write access to the world-writable spots
// (/tmp, the user's home) — the adversary accessibility the PF consumes.
func NewPolicy() *mac.Policy {
	pol := mac.NewPolicy(mac.NewSIDTable())
	pol.MarkTrusted(trustedLabels...)

	pol.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate|mac.PermUnlink)
	pol.Allow("user_t", "tmp_t", mac.ClassDir, mac.PermSearch|mac.PermAddName|mac.PermRemoveName)
	pol.Allow("user_t", "tmp_t", mac.ClassLnkFile, mac.PermRead|mac.PermCreate)
	pol.Allow("user_t", "user_home_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate)
	pol.Allow("user_t", "user_home_t", mac.ClassDir, mac.PermSearch|mac.PermAddName)
	pol.Allow("user_t", "user_home_t", mac.ClassLnkFile, mac.PermRead|mac.PermCreate)
	// PHP user-upload area: adversary-writable (E4's attack surface).
	pol.Allow("user_t", "httpd_user_upload_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate)
	// Read access to public system files.
	for _, obj := range []mac.Label{"etc_t", "lib_t", "usr_t", "bin_t", "httpd_content_t"} {
		pol.Allow("user_t", obj, mac.ClassFile, mac.PermRead)
		pol.Allow("user_t", obj, mac.ClassDir, mac.PermSearch)
	}

	// Trusted subjects' functional permissions (used when MACEnforcing).
	for _, sub := range []mac.Label{"httpd_t", "sshd_t", "dbusd_t", "java_t", "init_t", "icecat_t", "dstat_t"} {
		for _, obj := range trustedLabels {
			pol.AllowAllClasses(sub, obj, mac.PermRead|mac.PermSearch|mac.PermGetattr)
		}
		pol.Allow(sub, "tmp_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate)
		pol.Allow(sub, "tmp_t", mac.ClassDir, mac.PermSearch|mac.PermAddName|mac.PermRemoveName)
		pol.Allow(sub, "tmp_t", mac.ClassLnkFile, mac.PermRead)
	}
	pol.Allow("httpd_t", "httpd_user_script_exec_t", mac.ClassFile, mac.PermRead|mac.PermExecute)
	pol.Allow("httpd_t", "httpd_user_upload_t", mac.ClassFile, mac.PermRead)
	pol.Allow("dbusd_t", "system_dbusd_var_run_t", mac.ClassSockFile, mac.PermCreate|mac.PermSetattr|mac.PermBind)
	return pol
}

// NewContexts builds the standard file-context map.
func NewContexts() *mac.FileContexts {
	fc := mac.NewFileContexts("default_t")
	fc.Add("/tmp", "tmp_t")
	fc.Add("/etc", "etc_t")
	fc.Add("/etc/shadow", "shadow_t")
	fc.Add("/lib", "lib_t")
	fc.Add("/usr/lib", "lib_t")
	fc.Add("/usr/share", "usr_t")
	fc.Add("/usr", "usr_t")
	fc.Add("/usr/bin", "bin_t")
	fc.Add("/usr/sbin", "bin_t")
	fc.Add("/bin", "bin_t")
	fc.Add("/var", "var_t")
	fc.Add("/var/www", "httpd_content_t")
	fc.Add("/var/www/scripts", "httpd_user_script_exec_t")
	fc.Add("/var/www/uploads", "httpd_user_upload_t")
	fc.Add("/var/run/dbus", "system_dbusd_var_run_t")
	fc.Add("/home", "user_home_t")
	return fc
}

// WorldOpts parameterizes world construction.
type WorldOpts struct {
	// PF selects the firewall configuration; nil leaves the firewall
	// detached (the DISABLED mode).
	PF *pf.Config
	// MACEnforcing puts the kernel's MAC layer in enforcing mode.
	MACEnforcing bool
	// WebTreeDepth adds nested /var/www/html directories d1/d2/.../index.html
	// for the path-length experiments (Figures 4 and 5). Zero means 1 level.
	WebTreeDepth int
	// Obs, when non-nil, attaches the observability layer to the kernel
	// (and the engine, when PF is set), registering every mediation-stack
	// metric on the given registry.
	Obs *obs.Registry
	// ObsEvery overrides the latency sampling period (default 16;
	// 1 samples every request — what pfctl uses so short deterministic
	// workloads populate the histograms).
	ObsEvery int
	// TraceEvery enables decision-provenance tracing, sampling one syscall
	// in TraceEvery (0 disables; requires Obs).
	TraceEvery int
	// TraceRing overrides the span flight-recorder capacity (default 256).
	TraceRing int
}

// NewWorld builds the standard simulated system.
func NewWorld(opts WorldOpts) *World {
	pol := NewPolicy()
	fc := NewContexts()
	k := kernel.New(pol, fc)
	k.MACEnforcing = opts.MACEnforcing

	w := &World{
		K: k,
		Env: &pftables.Env{
			Policy:     pol,
			LookupPath: k.LookupIno,
			Syscalls:   kernel.SyscallNames(),
		},
		RPaths: make(map[string][]string),
	}
	if opts.PF != nil {
		w.Engine = pf.New(pol, *opts.PF)
		k.AttachPF(w.Engine)
	}
	if opts.Obs != nil {
		k.AttachObs(opts.Obs, kernel.ObsConfig{
			SampleEvery: opts.ObsEvery,
			TraceEvery:  opts.TraceEvery,
			TraceRing:   opts.TraceRing,
		})
	}
	w.populate(opts)
	return w
}

// file creates a root-owned file with content.
func (w *World) file(path string, mode uint16, content string) *vfs.Inode {
	dir := w.K.FS.MustPath(parentDir(path))
	n, err := w.K.FS.CreateAt(dir, baseName(path), path, vfs.CreateOpts{Mode: mode})
	if err != nil {
		panic(err)
	}
	if content != "" {
		w.K.FS.WriteFile(n, []byte(content))
	}
	return n
}

func parentDir(path string) string {
	for i := len(path) - 1; i > 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "/"
}

func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// populate writes the standard filesystem image.
func (w *World) populate(opts WorldOpts) {
	fs := w.K.FS

	tmp := fs.MustPath("/tmp")
	fs.Chmod(tmp, 0o777|vfs.ModeSticky)

	// System binaries and libraries.
	for _, bin := range []string{
		BinLdSo, BinLibc, BinLibDbus, BinApache, BinPHP, BinPython, BinJava,
		BinDbusD, BinSshd, BinSh, BinBash, BinIcecat,
	} {
		w.file(bin, 0o755, "ELF")
	}
	// dstat is a Python script.
	w.file(BinDstat, 0o755, "#!/usr/bin/python2.7")

	// Libraries the linker should find.
	w.file("/lib/libssl.so", 0o755, "ELF")
	w.file("/lib/libdl.so", 0o755, "ELF")
	w.file("/usr/lib/apache2/mod_ssl.so", 0o755, "ELF")
	// Python modules.
	w.file("/usr/lib/python2.7/os.py", 0o644, "python")
	w.file("/usr/lib/python2.7/csv.py", 0o644, "python")
	w.file("/usr/share/dstat/dstat_disk.py", 0o644, "python")

	// Configuration.
	w.file("/etc/passwd", 0o644, "root:x:0:0\nuser:x:1000:1000")
	// The password database is group-readable by the web server's group,
	// matching the paper's motivating example of a web server that
	// authenticates users against it (Section 1).
	shadow := w.file("/etc/shadow", 0o640, "root:$6$secret")
	fs.Chown(shadow, 0, 33)
	w.file("/etc/ld.so.conf", 0o644, "/lib\n/usr/lib")
	w.file("/etc/java.conf", 0o644, "jvm-args=-Xmx1g")
	w.file("/etc/apache2/httpd.conf", 0o644, "DocumentRoot /var/www/html")

	// Web content, nested for path-length experiments.
	w.file("/var/www/html/index.html", 0o644, "<html>hello</html>")
	depth := opts.WebTreeDepth
	if depth < 1 {
		depth = 1
	}
	path := "/var/www/html"
	for i := 1; i <= depth; i++ {
		path += "/d"
		fs.MustPath(path)
		w.file(path+"/index.html", 0o644, "<html>deep</html>")
	}
	// PHP application (Joomla!-like) with trusted scripts and an
	// adversary-writable upload area.
	w.file("/var/www/scripts/index.php", 0o644, "<?php include($_GET['page']); ?>")
	w.file("/var/www/scripts/gcalendar.php", 0o644, "<?php /* component */ ?>")
	fs.MustPath("/var/www/uploads")
	uploads := fs.MustPath("/var/www/uploads")
	fs.Chmod(uploads, 0o777)

	// D-Bus runtime directory.
	fs.MustPath("/var/run/dbus")

	// User home.
	home := fs.MustPath("/home/user")
	fs.Chown(home, 1000, 1000)
	fs.Chmod(home, 0o755)
}

// InstallRules parses and installs pftables rule lines into the world's
// engine.
func (w *World) InstallRules(lines []string) (int, error) {
	return pftables.InstallAll(w.Env, w.Engine, lines)
}

// NewProc starts a process in this world.
func (w *World) NewProc(spec kernel.ProcSpec) *kernel.Proc {
	return w.K.NewProc(spec)
}

// NewUser starts an untrusted adversary process (uid 1000, user_t).
func (w *World) NewUser() *kernel.Proc {
	return w.K.NewProc(kernel.ProcSpec{UID: 1000, GID: 1000, Label: "user_t", Exec: BinSh, Cwd: "/home/user"})
}

// StandardRules returns the paper's Table 5 rule set (R1–R12), adapted only
// in that R2 additionally trusts usr_t script directories, exactly as the
// paper's generated rule does.
func StandardRules() []string {
	return []string{
		// R1: only trusted library files may be loaded by the dynamic linker.
		`pftables -p ` + BinLdSo + ` -i 0x596b -s SYSHIGH -d ~{lib_t|textrel_shlib_t|httpd_modules_t} -o FILE_OPEN -j DROP`,
		// R2: load only trusted python modules.
		`pftables -p ` + BinPython + ` -i 0x34f05 -s SYSHIGH -d ~{lib_t|usr_t} -o FILE_OPEN -j DROP`,
		// R3: libdbus may connect only to the trusted D-Bus server socket.
		`pftables -p ` + BinLibDbus + ` -i 0x39231 -s SYSHIGH -d ~{system_dbusd_var_run_t} -o UNIX_STREAM_SOCKET_CONNECT -j DROP`,
		// R4: PHP includes only properly labeled files.
		`pftables -p ` + BinPHP + ` -i 0x27ad2c -s SYSHIGH -d ~{httpd_user_script_exec_t|httpd_content_t|lib_t|usr_t} -o FILE_OPEN -j DROP`,
		// R5/R6: dbus-daemon bind/chmod TOCTTOU defense.
		`pftables -i 0x3c750 -p ` + BinDbusD + ` -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO`,
		`pftables -i 0x3c786 -p ` + BinDbusD + ` -o SOCKET_SETATTR,FILE_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP`,
		// R6 is generalized (Section 6.3.1) to cover the symlink variant of
		// the squat, where the final chmod object is a regular file.
		// R7: java must not load untrusted configuration files.
		`pftables -i 0x5d7e -p ` + BinJava + ` -d ~{SYSHIGH} -o FILE_OPEN -j DROP`,
		// R8: SymLinksIfOwnerMatch as a firewall rule.
		`pftables -i 0x2d637 -p ` + BinApache + ` -o LINK_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`,
		// R9–R12: non-reentrant signal handler defense.
		`pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN`,
		`pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP`,
		`pftables -A signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1`,
		`pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0`,
		// System-wide safe_open rule (Section 6.1.2, E9): never traverse a
		// symlink whose owner differs from its target's owner.
		`pftables -o LNK_FILE_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP`,
	}
}
