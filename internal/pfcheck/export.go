package pfcheck

import "pfirewall/internal/obs"

// Export publishes the report's finding tallies as the
// pf_check_findings{severity="..."} counter family, so a fleet scraping
// the observability endpoint can alert on rulesets that loaded with
// analyzer errors. All three severities are always registered — a zero
// series is the "analyzer ran and found nothing" signal, distinct from the
// series being absent.
func (r *Report) Export(reg *obs.Registry) {
	for _, sev := range []Severity{SevError, SevWarning, SevInfo} {
		c := reg.Counter("pf_check_findings",
			"Static ruleset analyzer findings by severity.",
			obs.L("severity", sev.String()))
		if n := r.Count(sev); n > 0 {
			c.Add(0, uint64(n))
		}
	}
}
