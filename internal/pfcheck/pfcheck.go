// Package pfcheck is the pftables static analyzer: it parses a ruleset
// without installing it, rebuilds the chain layout the engine would end up
// with, and layers three kinds of semantic findings on top of the pf
// package's reachability analysis (DESIGN.md §8):
//
//   - shadowing / unreachability: rules the per-field match-space lattice
//     proves can never fire (first-match shadowing, empty sets, op-context
//     mismatches, dead chains);
//   - jump-graph defects: jumps to chains that cannot exist, jump cycles,
//     user chains no built-in chain reaches;
//   - symbol validation: labels, programs, and entrypoint offsets that are
//     not known to the MAC policy or the program registry — a rule naming
//     one parses fine and silently matches nothing, the worst failure mode
//     for a protection system.
//
// Every finding carries a source position (file:line:col) and a severity.
// Error-class findings are defects that change enforcement (conflicting
// shadowed verdicts, rules that cannot match, installs that would fail);
// warnings flag suspicious-but-harmless rules (redundant shadows, unknown
// symbols, dead side effects); info notes the rest.
package pfcheck

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
)

// Severity classifies a finding.
type Severity uint8

// Severities, in increasing order of badness.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String names the severity the way findings print it.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// Finding codes. Codes are stable identifiers tests and tooling match on;
// messages are for humans.
const (
	CodeParse      = "parse"           // line does not parse
	CodeInstall    = "install"         // line parses but installing it would fail
	CodeShadowed   = "shadowed"        // earlier rule covers this one (conflicting or side-effecting)
	CodeRedundant  = "redundant"       // earlier rule covers this one with the same outcome
	CodeNeverMatch = "never-matches"   // match space empty or disjoint from chain's op context
	CodeDeadChain  = "dead-chain"      // chain unreachable from any built-in chain
	CodeJumpCycle  = "jump-cycle"      // chains jump in a loop
	CodeEmptyJump  = "empty-chain"     // jump to a chain holding no rules
	CodeUnknownLbl = "unknown-label"   // label not in the MAC policy
	CodeUnknownPrg = "unknown-program" // -p path not in the system image
	CodeUnknownEnt = "unknown-entry"   // -i offset not a named call site of -p
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Sev  Severity `json:"severity"`
	Code string   `json:"code"`
	Pos  pf.Pos   `json:"pos"`
	Msg  string   `json:"message"`
}

// String renders the finding compiler-style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", f.Pos, f.Sev, f.Code, f.Msg)
}

// MarshalJSON renders the position both as the compiler-style "file:line:col"
// string tooling greps for and as its split fields.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Sev  Severity `json:"severity"`
		Code string   `json:"code"`
		Pos  string   `json:"pos"`
		File string   `json:"file,omitempty"`
		Line int      `json:"line,omitempty"`
		Col  int      `json:"col,omitempty"`
		Msg  string   `json:"message"`
	}{f.Sev, f.Code, f.Pos.String(), f.Pos.File, f.Pos.Line, f.Pos.Col, f.Msg})
}

// Report is the result of one analysis run. It marshals to the stable JSON
// document pfctl -check -json emits.
type Report struct {
	// File is the name findings cite (may be empty for engine analyses).
	File string `json:"file,omitempty"`
	// Rules and Chains count what was analyzed.
	Rules  int `json:"rules"`
	Chains int `json:"chains"`
	// Findings, sorted by (line, col, severity desc, code, message) and
	// deduplicated.
	Findings []Finding `json:"findings"`
}

func (r *Report) add(sev Severity, code string, pos pf.Pos, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Sev: sev, Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Count reports how many findings carry severity sev.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Sev == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-class finding exists; pfctl -check
// exits non-zero exactly when it does.
func (r *Report) HasErrors() bool { return r.Count(SevError) > 0 }

// sortFindings fixes a deterministic order: source position first, then
// severity (errors before warnings), then code and message as tiebreakers.
func (r *Report) sortFindings() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// Summary is the compact form pfctl -stats embeds.
type Summary struct {
	Rules    int `json:"rules"`
	Chains   int `json:"chains"`
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Summary tallies the report.
func (r *Report) Summary() Summary {
	return Summary{
		Rules:    r.Rules,
		Chains:   r.Chains,
		Errors:   r.Count(SevError),
		Warnings: r.Count(SevWarning),
		Infos:    r.Count(SevInfo),
	}
}

// Symbols supplies the external name registries rules are validated
// against. Nil predicates (and a nil Entrypoints map) skip that check.
type Symbols struct {
	// KnownLabel reports whether a MAC label existed before the ruleset
	// interned anything. The SID table interns on demand, so this must be
	// a snapshot taken before parsing — see LabelSnapshot.
	KnownLabel func(mac.Label) bool
	// KnownProgram reports whether a -p path exists in the system image.
	KnownProgram func(path string) bool
	// Entrypoints maps a program to its named call-site offsets (-i
	// validation). Programs absent from the map are not checked.
	Entrypoints map[string][]uint64
}

// LabelSnapshot captures the set of labels currently interned in pol's SID
// table as a KnownLabel predicate. Take it before parsing: parseSIDSet
// interns every label it sees, so a post-parse lookup can never tell a
// policy label from a ruleset typo.
func LabelSnapshot(pol *mac.Policy) func(mac.Label) bool {
	known := make(map[mac.Label]bool)
	for _, l := range pol.SIDs().Labels() {
		known[l] = true
	}
	return func(l mac.Label) bool { return known[l] }
}

// dedupe collapses findings that are exact duplicates (same severity, code,
// position, and message) into one — e.g. an unknown label cited by both the
// -s and -d set of the same rule. Requires sorted findings, so it runs right
// after sortFindings.
func (r *Report) dedupe() {
	out := r.Findings[:0]
	for i, f := range r.Findings {
		if i > 0 && f == r.Findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	r.Findings = out
}

// engineBuiltins are the chains a fresh engine actually has. Note the
// asymmetry with the pftables grammar: pftables accepts "output" as a
// built-in chain name, but the engine never creates one (no resource
// access is mediated on an output path), so installing into it fails.
var engineBuiltins = map[string]bool{
	"input": true, "syscallbegin": true, "mangle/input": true,
}

// chainModel mirrors one engine chain while the source is replayed.
type chainModel struct {
	declared bool // created by an explicit -N
	rules    []*pf.Rule
}

// Analyze parses and analyzes a ruleset without touching an engine. The
// lines are replayed against a model of the engine's chain layout with
// Install's exact semantics (auto-created chains, mangle prefixing, -D by
// rendering), then the assembled chains go through pf.AnalyzeChains and
// every result is translated into a positioned finding.
func Analyze(env *pftables.Env, file string, lines []string, sym *Symbols) *Report {
	if sym == nil {
		sym = &Symbols{}
	}
	known := sym.KnownLabel
	if known == nil && env.Policy != nil {
		known = LabelSnapshot(env.Policy)
	}
	rep := &Report{File: file}
	tbl := env.Policy.SIDs()

	model := map[string]*chainModel{}
	for name := range engineBuiltins {
		model[name] = &chainModel{}
	}
	ensure := func(name string) *chainModel {
		if c, ok := model[name]; ok {
			return c
		}
		c := &chainModel{}
		model[name] = c
		return c
	}

	for i, line := range lines {
		pos := pf.Pos{File: file, Line: i + 1}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, err := pftables.ParseAt(env, line, pos)
		if err != nil {
			var pe *pftables.Error
			if errors.As(err, &pe) {
				rep.add(SevError, CodeParse, pe.Pos, "%v", pe.Err)
			} else {
				rep.add(SevError, CodeParse, pos, "%v", err)
			}
			continue
		}

		if cmd.NewChainName != "" {
			if _, exists := model[cmd.NewChainName]; exists {
				rep.add(SevError, CodeInstall, pos, "chain %q already exists", cmd.NewChainName)
				continue
			}
			model[cmd.NewChainName] = &chainModel{declared: true}
			continue
		}

		chain := cmd.Chain
		if cmd.Table == "mangle" {
			chain = "mangle/" + chain
		}
		// The grammar's "output" chain has no engine counterpart: the
		// pftables installer would skip auto-creation (it is nominally
		// built-in) and the engine append would then fail.
		if chain == "output" {
			rep.add(SevError, CodeInstall, pos, "chain \"output\" exists in the grammar but not in the engine; installing this rule would fail")
			continue
		}
		c := ensure(chain)
		if jt, ok := cmd.Rule.Target.(*pf.JumpTarget); ok {
			if jt.ChainName == "output" {
				rep.add(SevError, CodeInstall, pos, "jump to chain \"output\", which the engine never creates")
				continue
			}
			ensure(jt.ChainName)
		}
		switch cmd.Action {
		case 'I':
			c.rules = append([]*pf.Rule{cmd.Rule}, c.rules...)
			rep.Rules++
		case 'A':
			c.rules = append(c.rules, cmd.Rule)
			rep.Rules++
		case 'D':
			if !modelDelete(c, cmd.Rule, tbl) {
				rep.add(SevError, CodeInstall, pos, "delete: no rule in chain %q matches", chain)
			}
			continue
		}
		symbolFindings(rep, cmd.Rule, sym, known, tbl)
	}
	rep.Chains = len(model)

	chains := make(map[string]*pf.Chain, len(model))
	for name, c := range model {
		chains[name] = &pf.Chain{Name: name, Rules: c.rules}
	}
	analysisFindings(rep, pf.AnalyzeChains(chains), chains, file)

	// Jumps into empty chains: the traversal is a no-op. When the target
	// chain was never even declared, the name is almost certainly a typo
	// that the installer's auto-creation silently absorbed.
	for _, name := range sortedNames(model) {
		for _, r := range model[name].rules {
			jt, ok := r.Target.(*pf.JumpTarget)
			if !ok {
				continue
			}
			tgt := model[jt.ChainName]
			if tgt == nil || len(tgt.rules) > 0 || engineBuiltins[jt.ChainName] {
				continue
			}
			if tgt.declared {
				rep.add(SevInfo, CodeEmptyJump, r.Src, "jump to declared chain %q, which holds no rules", jt.ChainName)
			} else {
				rep.add(SevWarning, CodeEmptyJump, r.Src, "jump to chain %q, which holds no rules and was never declared with -N — possible chain-name typo", jt.ChainName)
			}
		}
	}

	rep.sortFindings()
	rep.dedupe()
	return rep
}

// AnalyzeEngine runs the semantic analysis over an engine's installed
// ruleset (the load-time variant: rules carry positions when they were
// installed through InstallAt). Source-only checks — parse errors, install
// failures, empty-jump heuristics — do not apply here.
func AnalyzeEngine(e *pf.Engine, sym *Symbols) *Report {
	chains := make(map[string]*pf.Chain)
	for _, name := range e.Chains() {
		if c, ok := e.Chain(name); ok {
			chains[name] = c
		}
	}
	return AnalyzeRuleset(e.Policy().SIDs(), chains, sym)
}

// AnalyzeRuleset is AnalyzeEngine over a bare chain map, for callers that
// hold a candidate rule base not (yet) installed in any engine — policyd
// gates each transactional delta through it before the publish commits.
func AnalyzeRuleset(tbl *mac.SIDTable, chains map[string]*pf.Chain, sym *Symbols) *Report {
	if sym == nil {
		sym = &Symbols{}
	}
	rep := &Report{}
	for _, c := range chains {
		rep.Rules += len(c.Rules)
		for _, r := range c.Rules {
			symbolFindings(rep, r, sym, sym.KnownLabel, tbl)
		}
	}
	rep.Chains = len(chains)
	analysisFindings(rep, pf.AnalyzeChains(chains), chains, "")
	rep.sortFindings()
	rep.dedupe()
	return rep
}

// modelDelete mirrors pftables.deleteRule: remove the first rule whose
// rendering matches.
func modelDelete(c *chainModel, want *pf.Rule, tbl *mac.SIDTable) bool {
	ws := want.String(tbl)
	for i, r := range c.rules {
		if r.String(tbl) == ws {
			c.rules = append(c.rules[:i:i], c.rules[i+1:]...)
			return true
		}
	}
	return false
}

// analysisFindings translates a pf.RulesetAnalysis into findings.
func analysisFindings(rep *Report, an *pf.RulesetAnalysis, chains map[string]*pf.Chain, file string) {
	for _, u := range an.Unreachable {
		pos := u.Rule.Src
		switch u.Kind {
		case pf.UnreachEmptySubject:
			rep.add(SevError, CodeNeverMatch, pos, "rule can never match: its -s set is empty (no process carries a matching label)")
		case pf.UnreachEmptyObject:
			rep.add(SevError, CodeNeverMatch, pos, "rule can never match: its -d set is empty (no resource carries a matching label)")
		case pf.UnreachOpContext:
			rep.add(SevError, CodeNeverMatch, pos, "rule can never match: no operation that reaches chain %q satisfies its -o mask", u.Chain)
		case pf.UnreachShadowed:
			by := ruleRef(u.Chain, u.ByIndex, u.By)
			switch {
			case u.SameVerdict:
				rep.add(SevWarning, CodeRedundant, pos, "redundant: %s already applies %s to every request this rule can match", by, targetName(u.Rule))
			case isTerminal(u.Rule):
				rep.add(SevError, CodeShadowed, pos, "unreachable: %s covers this rule's entire match space, so its %s verdict never applies", by, targetName(u.Rule))
			default:
				rep.add(SevWarning, CodeShadowed, pos, "dead side effect: %s covers this rule's entire match space, so its %s target never fires", by, targetName(u.Rule))
			}
		case pf.UnreachDeadChain:
			// Reported once per chain below.
		}
	}
	for _, name := range an.DeadChains {
		c := chains[name]
		pos := pf.Pos{File: file}
		if len(c.Rules) > 0 {
			pos = c.Rules[0].Src
		}
		sev, detail := SevWarning, fmt.Sprintf("its %d rules are dead", len(c.Rules))
		if len(c.Rules) == 0 {
			sev, detail = SevInfo, "it holds no rules"
		}
		rep.add(sev, CodeDeadChain, pos, "chain %q is unreachable from any built-in chain; %s", name, detail)
	}
	for _, cyc := range an.Cycles {
		pos := pf.Pos{File: file}
		// Cite the jump that closes the cycle (last chain back to first).
		if from := chains[cyc[len(cyc)-1]]; from != nil {
			for _, r := range from.Rules {
				if jt, ok := r.Target.(*pf.JumpTarget); ok && jt.ChainName == cyc[0] && r.Src.IsSet() {
					pos = r.Src
					break
				}
			}
		}
		rep.add(SevError, CodeJumpCycle, pos, "jump cycle: %s -> %s", strings.Join(cyc, " -> "), cyc[0])
	}
}

// symbolFindings validates one rule's labels, program, and entrypoint
// against the registries.
func symbolFindings(rep *Report, r *pf.Rule, sym *Symbols, known func(mac.Label) bool, tbl *mac.SIDTable) {
	pos := r.Src
	if known != nil {
		for _, set := range []*pf.SIDSet{r.Subject, r.Object} {
			if set == nil {
				continue
			}
			for _, sid := range set.SIDs() {
				if lbl := tbl.Label(sid); lbl != "" && !known(lbl) {
					rep.add(SevWarning, CodeUnknownLbl, pos, "label %q is not defined by the MAC policy; the rule matches nothing until it is", lbl)
				}
			}
		}
	}
	progKnown := true
	if r.Program != "" && sym.KnownProgram != nil {
		if progKnown = sym.KnownProgram(r.Program); !progKnown {
			rep.add(SevWarning, CodeUnknownPrg, pos, "program %q does not exist in the system image", r.Program)
		}
	}
	if r.EntrySet && progKnown && sym.Entrypoints != nil {
		if offs, ok := sym.Entrypoints[r.Program]; ok && !containsOff(offs, r.Entry) {
			rep.add(SevWarning, CodeUnknownEnt, pos, "%#x is not a named call site of %s (known: %s)", r.Entry, r.Program, offList(offs))
		}
	}
}

func containsOff(offs []uint64, off uint64) bool {
	for _, o := range offs {
		if o == off {
			return true
		}
	}
	return false
}

func offList(offs []uint64) string {
	parts := make([]string, len(offs))
	for i, o := range offs {
		parts[i] = fmt.Sprintf("%#x", o)
	}
	return strings.Join(parts, ", ")
}

// ruleRef names a shadowing rule for a message, preferring its source line.
func ruleRef(chain string, idx int, r *pf.Rule) string {
	if r != nil && r.Src.Line > 0 {
		return fmt.Sprintf("the rule at line %d", r.Src.Line)
	}
	return fmt.Sprintf("rule #%d of chain %q", idx, chain)
}

func targetName(r *pf.Rule) string {
	if r.Target == nil {
		return "(none)"
	}
	return r.Target.TargetName()
}

func isTerminal(r *pf.Rule) bool {
	switch r.Target.(type) {
	case *pf.VerdictTarget, *pf.ReturnTarget:
		return true
	}
	return false
}

func sortedNames(model map[string]*chainModel) []string {
	names := make([]string, 0, len(model))
	for n := range model {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
