package pfcheck

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/rulegen"
)

func testEnv() *pftables.Env {
	pol := mac.NewPolicy(mac.NewSIDTable())
	pol.MarkTrusted("httpd_t", "lib_t", "shadow_t")
	pol.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermWrite)
	return &pftables.Env{Policy: pol}
}

func check(t *testing.T, env *pftables.Env, lines []string, sym *Symbols) *Report {
	t.Helper()
	return Analyze(env, "test.pft", lines, sym)
}

// find returns the findings carrying code, in report order.
func find(rep *Report, code string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func wantOne(t *testing.T, rep *Report, code string, sev Severity, line int, msgPart string) Finding {
	t.Helper()
	fs := find(rep, code)
	if len(fs) != 1 {
		t.Fatalf("want one %s finding, got %d (all: %v)", code, len(fs), rep.Findings)
	}
	f := fs[0]
	if f.Sev != sev {
		t.Errorf("%s severity = %v, want %v", code, f.Sev, sev)
	}
	if line > 0 && f.Pos.Line != line {
		t.Errorf("%s line = %d, want %d (%s)", code, f.Pos.Line, line, f)
	}
	if msgPart != "" && !strings.Contains(f.Msg, msgPart) {
		t.Errorf("%s message %q does not contain %q", code, f.Msg, msgPart)
	}
	return f
}

func TestParseFindingPosition(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A input -s httpd_t -j DROP",
		"pftables -A input -o NOT_AN_OP -j DROP",
	}, nil)
	f := wantOne(t, rep, CodeParse, SevError, 2, "NOT_AN_OP")
	if f.Pos.File != "test.pft" || f.Pos.Col != 19 {
		t.Errorf("parse finding pos = %+v, want test.pft:2:19", f.Pos)
	}
	if !rep.HasErrors() {
		t.Error("parse error should make HasErrors true")
	}
	if rep.Rules != 1 {
		t.Errorf("Rules = %d, want 1 (bad line not counted)", rep.Rules)
	}
}

func TestInstallFindings(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A output -s httpd_t -j DROP",
		"pftables -N input",
		"pftables -N c0",
		"pftables -N c0",
		"pftables -D input -s httpd_t -j DROP",
	}, nil)
	fs := find(rep, CodeInstall)
	if len(fs) != 4 {
		t.Fatalf("want 4 install findings, got %v", fs)
	}
	for i, want := range []struct {
		line int
		part string
	}{
		{1, `"output"`},
		{2, "already exists"},
		{4, "already exists"},
		{5, "no rule in chain"},
	} {
		if fs[i].Pos.Line != want.line || !strings.Contains(fs[i].Msg, want.part) {
			t.Errorf("install finding %d = %v, want line %d containing %q", i, fs[i], want.line, want.part)
		}
		if fs[i].Sev != SevError {
			t.Errorf("install finding %d severity = %v", i, fs[i].Sev)
		}
	}
}

func TestShadowAndRedundantFindings(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A input -s httpd_t -j ACCEPT",
		"pftables -A input -s httpd_t -d shadow_t -j DROP",    // conflict: error
		"pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT", // same verdict: warning
		"pftables -A input -s httpd_t -d tmp_t -j LOG",        // dead side effect: warning
	}, nil)
	fs := find(rep, CodeShadowed)
	if len(fs) != 2 {
		t.Fatalf("want 2 shadowed findings, got %v", rep.Findings)
	}
	if fs[0].Pos.Line != 2 || fs[0].Sev != SevError || !strings.Contains(fs[0].Msg, "line 1") {
		t.Errorf("conflict finding = %v", fs[0])
	}
	if fs[1].Pos.Line != 4 || fs[1].Sev != SevWarning || !strings.Contains(fs[1].Msg, "LOG") {
		t.Errorf("dead side-effect finding = %v", fs[1])
	}
	wantOne(t, rep, CodeRedundant, SevWarning, 3, "ACCEPT")
}

func TestDeleteRemovesFromModel(t *testing.T) {
	// Deleting the shadower resurrects the later rule: no findings.
	rep := check(t, testEnv(), []string{
		"pftables -A input -s httpd_t -j ACCEPT",
		"pftables -A input -s httpd_t -j DROP",
		"pftables -D input -s httpd_t -j ACCEPT",
	}, nil)
	if len(rep.Findings) != 0 {
		t.Fatalf("want no findings after delete, got %v", rep.Findings)
	}
	if rep.Rules != 2 {
		t.Errorf("Rules = %d, want 2", rep.Rules)
	}
}

func TestNeverMatchOpContext(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A syscallbegin -o FILE_OPEN -j DROP",
	}, nil)
	wantOne(t, rep, CodeNeverMatch, SevError, 1, `"syscallbegin"`)
}

func TestDeadChainAndEmptyJump(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -N orphan",
		"pftables -A orphan -s httpd_t -j DROP",
		"pftables -A input -s httpd_t -o FILE_OPEN -j sgnal_chain", // typo'd jump
		"pftables -N declared_empty",
		"pftables -A input -s httpd_t -o FILE_READ -j declared_empty",
	}, nil)
	wantOne(t, rep, CodeDeadChain, SevWarning, 2, `"orphan"`)
	fs := find(rep, CodeEmptyJump)
	if len(fs) != 2 {
		t.Fatalf("want 2 empty-chain findings, got %v", fs)
	}
	if fs[0].Pos.Line != 3 || fs[0].Sev != SevWarning || !strings.Contains(fs[0].Msg, "typo") {
		t.Errorf("undeclared empty jump finding = %v", fs[0])
	}
	if fs[1].Pos.Line != 5 || fs[1].Sev != SevInfo {
		t.Errorf("declared empty jump finding = %v", fs[1])
	}
}

func TestJumpCycleFinding(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A input -s httpd_t -j c0",
		"pftables -A c0 -j c1",
		"pftables -A c1 -j c0",
	}, nil)
	f := wantOne(t, rep, CodeJumpCycle, SevError, 3, "c0 -> c1 -> c0")
	if f.Pos.File != "test.pft" {
		t.Errorf("cycle pos = %+v", f.Pos)
	}
}

func TestSymbolFindings(t *testing.T) {
	env := testEnv()
	sym := &Symbols{
		KnownProgram: func(p string) bool { return p == "/bin/prog" },
		Entrypoints:  map[string][]uint64{"/bin/prog": {0x100, 0x200}},
	}
	rep := check(t, env, []string{
		"pftables -A input -s httpd_t -d tmp_t -j DROP",                           // all known
		"pftables -A input -s httpd_tt -j DROP",                                   // label typo
		"pftables -A input -p /bin/progg -s httpd_t -j DROP",                      // program typo
		"pftables -A input -p /bin/prog -i 0x300 -s httpd_t -o FILE_OPEN -j DROP", // entry typo
		"pftables -A input -p /bin/prog -i 0x200 -s httpd_t -o FILE_READ -j DROP", // ok
	}, sym)
	wantOne(t, rep, CodeUnknownLbl, SevWarning, 2, `"httpd_tt"`)
	wantOne(t, rep, CodeUnknownPrg, SevWarning, 3, `"/bin/progg"`)
	wantOne(t, rep, CodeUnknownEnt, SevWarning, 4, "0x300")
}

func TestLabelSnapshotIsPreParse(t *testing.T) {
	env := testEnv()
	// Without an explicit snapshot, Analyze must take one before parsing:
	// the typo'd label below gets interned during parsing but must still
	// be reported unknown.
	rep := check(t, env, []string{"pftables -A input -s not_a_label_t -j DROP"}, nil)
	wantOne(t, rep, CodeUnknownLbl, SevWarning, 1, "not_a_label_t")
	// A second run now sees the label interned by run one; the explicit
	// snapshot predicate still decides.
	rep = check(t, env, []string{"pftables -A input -s not_a_label_t -j DROP"}, nil)
	if len(find(rep, CodeUnknownLbl)) != 0 {
		t.Error("label interned before Analyze started should be considered known")
	}
}

func TestDeterministicFindings(t *testing.T) {
	lines := []string{
		"pftables -A input -s httpd_t -j ACCEPT",
		"pftables -A input -s httpd_t -d shadow_t -j DROP",
		"pftables -A input -o BADOP -j DROP",
		"pftables -N dead",
		"pftables -A dead -j DROP",
	}
	base := check(t, testEnv(), lines, nil)
	for i := 0; i < 5; i++ {
		if got := check(t, testEnv(), lines, nil); !reflect.DeepEqual(got.Findings, base.Findings) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, got.Findings, base.Findings)
		}
	}
}

func TestSummaryAndExport(t *testing.T) {
	rep := check(t, testEnv(), []string{
		"pftables -A input -s httpd_t -j ACCEPT",
		"pftables -A input -s httpd_t -j DROP",   // error (conflict shadow)
		"pftables -A input -s httpd_t -j ACCEPT", // warning (redundant)
	}, nil)
	s := rep.Summary()
	if s.Rules != 3 || s.Errors != 1 || s.Warnings != 1 || s.Infos != 0 {
		t.Fatalf("summary = %+v", s)
	}
	reg := obs.New()
	rep.Export(reg)
	for sev, want := range map[string]uint64{"error": 1, "warning": 1, "info": 0} {
		c := reg.Counter("pf_check_findings", "", obs.L("severity", sev))
		if c.Load() != want {
			t.Errorf("pf_check_findings{severity=%q} = %d, want %d", sev, c.Load(), want)
		}
	}
}

func TestAnalyzeEngine(t *testing.T) {
	env := testEnv()
	e := pf.New(env.Policy, pf.Config{})
	lines := []string{
		"pftables -A input -s httpd_t -j ACCEPT",
		"pftables -A input -s httpd_t -d shadow_t -j DROP",
	}
	for i, line := range lines {
		if _, err := pftables.InstallAt(env, e, line, pf.Pos{File: "live.pft", Line: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	rep := AnalyzeEngine(e, nil)
	f := wantOne(t, rep, CodeShadowed, SevError, 2, "line 1")
	if f.Pos.File != "live.pft" {
		t.Errorf("engine finding pos = %+v", f.Pos)
	}
	if rep.Rules != 2 {
		t.Errorf("Rules = %d, want 2", rep.Rules)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Sev: SevError, Code: CodeParse, Pos: pf.Pos{File: "a.pft", Line: 3, Col: 7}, Msg: "boom"}
	if got := f.String(); got != "a.pft:3:7: error: [parse] boom" {
		t.Errorf("String() = %q", got)
	}
}

// TestScaleBaseDeterministicAndFast is the acceptance pin for the synthetic
// rule bases: the analyzer's findings over rulegen's deterministic scale
// bases are themselves deterministic (exact severity tallies, identical
// reports across runs), errors stay at zero so pfctl -check exits 0, and the
// 10,000-rule base analyzes comfortably under the 2-second budget.
func TestScaleBaseDeterministicAndFast(t *testing.T) {
	env := testEnv()
	sym := &Symbols{KnownLabel: func(mac.Label) bool { return true }}
	cases := []struct {
		n        int
		warnings int
	}{
		{100, 2},
		{1200, 67},
		{10000, 1373},
	}
	for _, tc := range cases {
		lines := rulegen.ScaleRuleBase(1, tc.n)
		start := time.Now()
		rep := Analyze(env, "scale.pft", lines, sym)
		elapsed := time.Since(start)
		s := rep.Summary()
		if s.Rules != tc.n {
			t.Errorf("scale %d: analyzed %d rules", tc.n, s.Rules)
		}
		if s.Errors != 0 {
			t.Errorf("scale %d: %d error findings, want 0 (base must install cleanly)", tc.n, s.Errors)
		}
		if s.Warnings != tc.warnings {
			t.Errorf("scale %d: %d warnings, want %d", tc.n, s.Warnings, tc.warnings)
		}
		rep2 := Analyze(env, "scale.pft", rulegen.ScaleRuleBase(1, tc.n), sym)
		if !reflect.DeepEqual(rep.Findings, rep2.Findings) {
			t.Errorf("scale %d: findings differ between runs", tc.n)
		}
		if tc.n == 10000 && elapsed > 2*time.Second {
			t.Errorf("scale %d analyzed in %s, acceptance bound is 2s", tc.n, elapsed)
		}
		t.Logf("scale %d: %d warnings in %s", tc.n, s.Warnings, elapsed.Round(time.Microsecond))
	}
}

// TestDedupeIdenticalFindings: an unknown label cited by both the -s and -d
// set of one rule used to produce two byte-identical findings; the report
// now collapses them.
func TestDedupeIdenticalFindings(t *testing.T) {
	env := testEnv()
	sym := &Symbols{KnownLabel: LabelSnapshot(env.Policy)}
	rep := check(t, env, []string{
		`pftables -A input -s {bogus_t} -d {bogus_t} -o FILE_OPEN -j DROP`,
	}, sym)
	fs := find(rep, CodeUnknownLbl)
	if len(fs) != 1 {
		t.Fatalf("want one deduped unknown-label finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "bogus_t") {
		t.Errorf("finding %q should cite bogus_t", fs[0].Msg)
	}
}

// TestReportJSON pins the wire shape of pfctl -check -json: rendered
// file:line:col position strings, named severities, stable field names.
func TestReportJSON(t *testing.T) {
	env := testEnv()
	rep := check(t, env, []string{
		`pftables -A input --tag web -j DROP`,
		`pftables -R input -j DROP`,
	}, nil)
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		File     string `json:"file"`
		Rules    int    `json:"rules"`
		Chains   int    `json:"chains"`
		Findings []struct {
			Severity string `json:"severity"`
			Code     string `json:"code"`
			Pos      string `json:"pos"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, out)
	}
	if doc.File != "test.pft" {
		t.Errorf("file = %q", doc.File)
	}
	if len(doc.Findings) != 2 {
		t.Fatalf("want 2 findings, got %d: %s", len(doc.Findings), out)
	}
	f := doc.Findings[0]
	if f.Severity != "error" || f.Code != CodeParse {
		t.Errorf("finding[0] = %+v, want error/parse", f)
	}
	if f.Pos != "test.pft:1:19" || f.File != "test.pft" || f.Line != 1 || f.Col != 19 {
		t.Errorf("finding[0] pos = %q (%s:%d:%d), want test.pft:1:19", f.Pos, f.File, f.Line, f.Col)
	}
	if doc.Findings[1].Pos != "test.pft:2:10" {
		t.Errorf("finding[1] pos = %q, want test.pft:2:10", doc.Findings[1].Pos)
	}
}
