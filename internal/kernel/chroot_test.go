package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/vfs"
)

// chrootWorld builds a world with a jail directory containing a copy of a
// config file.
func chrootWorld(t *testing.T) *Kernel {
	t.Helper()
	k := newWorld(t)
	jail := k.FS.MustPath("/jail/etc")
	if _, err := k.FS.CreateAt(jail, "passwd", "/jail/etc/passwd", vfs.CreateOpts{Mode: 0o644}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestChrootConfinesAbsolutePaths(t *testing.T) {
	k := chrootWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := p.Chroot("/jail"); err != nil {
		t.Fatal(err)
	}
	if err := p.Chdir("/"); err != nil {
		t.Fatal(err)
	}
	// /etc/passwd now resolves to the jail's copy.
	st, err := p.Stat("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := k.FS.Resolve(nil, "/jail/etc/passwd", vfs.ResolveOpts{}, nil)
	if st.Ino != res.Node.Ino {
		t.Errorf("chrooted stat reached ino %d, want jail copy %d", st.Ino, res.Node.Ino)
	}
	// The real /etc/shadow is unreachable.
	if _, err := p.Stat("/etc/shadow"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("stat /etc/shadow: %v, want ErrNotExist", err)
	}
}

func TestChrootClampsDotDot(t *testing.T) {
	k := chrootWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := p.Chroot("/jail"); err != nil {
		t.Fatal(err)
	}
	p.Chdir("/")
	// The directory-traversal escape must stay inside the jail.
	if _, err := p.Stat("/../../etc/shadow"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("dot-dot escape: %v, want ErrNotExist", err)
	}
	st, err := p.Stat("/../etc/passwd")
	if err != nil {
		t.Fatalf("clamped dot-dot should resolve inside the jail: %v", err)
	}
	res, _ := k.FS.Resolve(nil, "/jail/etc/passwd", vfs.ResolveOpts{}, nil)
	if st.Ino != res.Node.Ino {
		t.Error("clamped dot-dot reached outside the jail")
	}
}

func TestChrootAbsoluteSymlinkStaysInside(t *testing.T) {
	k := chrootWorld(t)
	jailEtc := k.FS.MustPath("/jail/etc")
	// A link whose absolute target would name the real /etc/passwd
	// outside; inside the chroot it must resolve to the jail copy.
	if _, err := k.FS.CreateAt(jailEtc, "link", "/jail/etc/link", vfs.CreateOpts{
		Type: vfs.TypeSymlink, Target: "/etc/passwd",
	}); err != nil {
		t.Fatal(err)
	}
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	p.Chroot("/jail")
	p.Chdir("/")
	st, err := p.Stat("/etc/link")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := k.FS.Resolve(nil, "/jail/etc/passwd", vfs.ResolveOpts{}, nil)
	if st.Ino != res.Node.Ino {
		t.Error("absolute symlink escaped the chroot")
	}
}

func TestChrootRequiresRoot(t *testing.T) {
	k := chrootWorld(t)
	p := newUser(k)
	if err := p.Chroot("/tmp"); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("non-root chroot: %v, want ErrPerm", err)
	}
}

func TestChrootClassicCwdEscape(t *testing.T) {
	// The well-known weakness: chroot without chdir leaves the cwd outside
	// the jail, and relative paths escape. The Process Firewall has no
	// such foot-gun — its rules key on what is accessed, not where the
	// process believes it is.
	k := chrootWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	p.Chdir("/etc") // cwd outside the future jail
	if err := p.Chroot("/jail"); err != nil {
		t.Fatal(err)
	}
	// Relative access from the stale cwd still reaches the real file.
	st, err := p.Stat("shadow")
	if err != nil {
		t.Fatalf("the classic escape should work: %v", err)
	}
	if lbl := k.Policy.SIDs().Label(st.SID); lbl != "shadow_t" {
		t.Errorf("escape reached %q, want shadow_t", lbl)
	}
}

func TestChrootInheritedByFork(t *testing.T) {
	k := chrootWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	p.Chroot("/jail")
	p.Chdir("/")
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.Stat("/etc/shadow"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("child escaped parent's chroot: %v", err)
	}
}
