package kernel

import (
	"pfirewall/internal/ipc"
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// Open flags.
const (
	O_RDONLY   = 0
	O_WRONLY   = 1 << 0
	O_RDWR     = 1 << 1
	O_CREAT    = 1 << 2
	O_EXCL     = 1 << 3
	O_NOFOLLOW = 1 << 4
	O_TRUNC    = 1 << 5
)

// Open opens (or creates) path and returns a file descriptor. Every
// directory searched, symlink followed, and the final object are mediated
// through DAC, MAC and the Process Firewall.
func (p *Proc) Open(path string, flags int, mode uint16) (int, error) {
	if err := p.enterSyscall(NrOpen, uint64(flags)); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	opts := vfs.ResolveOpts{FollowFinal: flags&O_NOFOLLOW == 0, WantParent: flags&O_CREAT != 0}
	res, err := p.resolve(NrOpen, path, opts)
	if err != nil {
		return -1, err
	}

	node := res.Node
	if node == nil {
		// Creation path.
		if flags&O_CREAT == 0 {
			return -1, vfs.ErrNotExist
		}
		if err := p.mediate(NrOpen, vfs.Access{Node: res.Parent, Path: parentPath(res.Path), Class: mac.ClassDir, Want: mac.PermAddName}); err != nil {
			return -1, err
		}
		node, err = p.k.FS.CreateAt(res.Parent, res.Name, res.Path, vfs.CreateOpts{
			UID: p.EUID, GID: p.EGID, Mode: mode,
		})
		if err != nil {
			return -1, err
		}
		if err := p.pfFilter(pf.OpFileCreate, node, res.Path, NrOpen); err != nil {
			// The firewall rejected the created resource; undo.
			p.k.FS.Unlink(res.Parent, res.Name)
			return -1, err
		}
		return p.installFd(node, res.Path), nil
	}

	if flags&O_CREAT != 0 && flags&O_EXCL != 0 {
		return -1, vfs.ErrExist
	}
	if flags&O_NOFOLLOW != 0 && node.IsSymlink() {
		return -1, vfs.ErrLoop // mirrors Linux ELOOP for O_NOFOLLOW
	}
	if node.IsDir() && flags&(O_WRONLY|O_RDWR) != 0 {
		return -1, vfs.ErrIsDir
	}

	// DAC on the final object.
	wantW := flags&(O_WRONLY|O_RDWR|O_TRUNC) != 0
	wantR := !wantW || flags&O_RDWR != 0
	if !vfs.CanAccess(node, p.EUID, p.EGID, wantR, wantW, false) {
		return -1, vfs.ErrPerm
	}
	// MAC + PF on the final object.
	var want mac.Perm = mac.PermRead
	if wantW {
		want |= mac.PermWrite
	}
	if p.k.MACEnforcing && !p.k.Policy.Authorized(p.sid, node.SID, mac.ClassFile, want) {
		return -1, ErrMACDenied
	}
	if err := p.pfFilter(pf.OpFileOpen, node, res.Path, NrOpen); err != nil {
		return -1, err
	}
	if flags&O_TRUNC != 0 {
		p.k.FS.WriteFile(node, nil)
	}
	return p.installFd(node, res.Path), nil
}

// parentPath strips the final component.
func parentPath(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "/"
}

// Close releases a descriptor.
func (p *Proc) Close(fd int) error {
	if err := p.enterSyscall(NrClose, uint64(fd)); err != nil {
		return err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return err
	}
	delete(p.fds, fd)
	if f.Node != nil {
		p.k.FS.DecOpen(f.Node)
	}
	f.closeEndpoints()
	p.recycleFile(f)
	return nil
}

// Read reads up to n bytes from fd.
func (p *Proc) Read(fd, n int) ([]byte, error) {
	if err := p.enterSyscall(NrRead, uint64(fd)); err != nil {
		return nil, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return nil, err
	}
	if f.Node == nil {
		// Inode-less socket descriptor: read(2) on a socket is recv.
		if f.Conn == nil {
			return nil, vfs.ErrInval
		}
		if err := p.pfFilterConn(pf.OpSocketRecv, f.Conn, NrRead); err != nil {
			return nil, err
		}
		return f.Conn.Recv(n)
	}
	if err := p.pfFilterRes(pf.OpFileRead, &f.res, NrRead); err != nil {
		return nil, err
	}
	if f.Node.Type == vfs.TypeFifo {
		if q, ok := p.k.IPC.Fifo(f.Node.IPCID); ok {
			return q.Pop(n), nil
		}
		return nil, nil
	}
	if f.Conn != nil {
		// A connected filesystem socket reads from its stream.
		return f.Conn.Recv(n)
	}
	data, err := p.k.FS.ReadFile(f.Node)
	if err != nil {
		return nil, err
	}
	if f.pos >= len(data) {
		return nil, nil
	}
	end := f.pos + n
	if n <= 0 || end > len(data) {
		end = len(data)
	}
	out := data[f.pos:end]
	f.pos = end
	return out, nil
}

// ReadAll reads the whole file behind fd from the current position.
func (p *Proc) ReadAll(fd int) ([]byte, error) { return p.Read(fd, -1) }

// Write appends data to the file behind fd.
func (p *Proc) Write(fd int, data []byte) (int, error) {
	if err := p.enterSyscall(NrWrite, uint64(fd)); err != nil {
		return 0, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return 0, err
	}
	if f.Node == nil {
		// Inode-less socket descriptor: write(2) on a socket is send.
		if f.Conn == nil {
			return 0, vfs.ErrInval
		}
		if err := p.pfFilterConn(pf.OpSocketSend, f.Conn, NrWrite); err != nil {
			return 0, err
		}
		return f.Conn.Send(data)
	}
	if err := p.pfFilterRes(pf.OpFileWrite, &f.res, NrWrite); err != nil {
		return 0, err
	}
	if f.Node.Type == vfs.TypeFifo {
		if q, ok := p.k.IPC.Fifo(f.Node.IPCID); ok {
			return q.Push(data)
		}
		return len(data), nil
	}
	if f.Conn != nil {
		return f.Conn.Send(data)
	}
	old, err := p.k.FS.ReadFile(f.Node)
	if err != nil {
		return 0, err
	}
	if err := p.k.FS.WriteFile(f.Node, append(old, data...)); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Stat resolves path following symlinks and returns metadata.
func (p *Proc) Stat(path string) (vfs.Stat, error) {
	if err := p.enterSyscall(NrStat); err != nil {
		return vfs.Stat{}, err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrStat, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return vfs.Stat{}, err
	}
	if err := p.pfFilter(pf.OpFileGetattr, res.Node, res.Path, NrStat); err != nil {
		return vfs.Stat{}, err
	}
	return p.k.FS.StatOf(res.Node), nil
}

// Lstat is Stat without following a final symlink.
func (p *Proc) Lstat(path string) (vfs.Stat, error) {
	if err := p.enterSyscall(NrLstat); err != nil {
		return vfs.Stat{}, err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrLstat, path, vfs.ResolveOpts{})
	if err != nil {
		return vfs.Stat{}, err
	}
	if err := p.pfFilter(pf.OpFileGetattr, res.Node, res.Path, NrLstat); err != nil {
		return vfs.Stat{}, err
	}
	return p.k.FS.StatOf(res.Node), nil
}

// Fstat returns metadata for an open descriptor.
func (p *Proc) Fstat(fd int) (vfs.Stat, error) {
	if err := p.enterSyscall(NrFstat, uint64(fd)); err != nil {
		return vfs.Stat{}, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return vfs.Stat{}, err
	}
	if f.Node == nil {
		return vfs.Stat{}, vfs.ErrInval
	}
	if err := p.pfFilterRes(pf.OpFileGetattr, &f.res, NrFstat); err != nil {
		return vfs.Stat{}, err
	}
	return p.k.FS.StatOf(f.Node), nil
}

// Access checks real-uid permissions on path, the access(2) the paper
// notes can only express DAC adversary queries (Section 2.2).
func (p *Proc) Access(path string, r, w, x bool) error {
	if err := p.enterSyscall(NrAccess); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrAccess, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return err
	}
	if !vfs.CanAccess(res.Node, p.UID, p.GID, r, w, x) {
		return vfs.ErrPerm
	}
	return nil
}

// Unlink removes a name, honoring the sticky-bit restricted-deletion rule.
func (p *Proc) Unlink(path string) error {
	if err := p.enterSyscall(NrUnlink); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrUnlink, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if res.Node == nil {
		return vfs.ErrNotExist
	}
	if err := p.checkWriteDir(res.Parent, res.Node, parentPath(res.Path)); err != nil {
		return err
	}
	if err := p.pfFilter(pf.OpFileUnlink, res.Node, res.Path, NrUnlink); err != nil {
		return err
	}
	return p.k.FS.Unlink(res.Parent, res.Name)
}

// checkWriteDir applies DAC write + sticky-bit rules for removing or
// replacing dir entries.
func (p *Proc) checkWriteDir(dir, victim *vfs.Inode, dirPath string) error {
	if !vfs.CanAccess(dir, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	if dir.Mode&vfs.ModeSticky != 0 && p.EUID != 0 && victim != nil &&
		p.EUID != victim.UID && p.EUID != dir.UID {
		return vfs.ErrPerm
	}
	if err := p.mediate(NrUnlink, vfs.Access{Node: dir, Path: dirPath, Class: mac.ClassDir, Want: mac.PermRemoveName}); err != nil {
		return err
	}
	return nil
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(path string, mode uint16) error {
	if err := p.enterSyscall(NrMkdir); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrMkdir, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if res.Node != nil {
		return vfs.ErrExist
	}
	if !vfs.CanAccess(res.Parent, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	node, err := p.k.FS.CreateAt(res.Parent, res.Name, res.Path, vfs.CreateOpts{
		UID: p.EUID, GID: p.EGID, Mode: mode, Type: vfs.TypeDir,
	})
	if err != nil {
		return err
	}
	return p.pfFilter(pf.OpFileCreate, node, res.Path, NrMkdir)
}

// Rmdir removes an empty directory.
func (p *Proc) Rmdir(path string) error {
	if err := p.enterSyscall(NrRmdir); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrRmdir, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if res.Node == nil {
		return vfs.ErrNotExist
	}
	if err := p.checkWriteDir(res.Parent, res.Node, parentPath(res.Path)); err != nil {
		return err
	}
	return p.k.FS.Rmdir(res.Parent, res.Name)
}

// Symlink creates a symbolic link at path pointing to target.
func (p *Proc) Symlink(target, path string) error {
	if err := p.enterSyscall(NrSymlink); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrSymlink, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if res.Node != nil {
		return vfs.ErrExist
	}
	if !vfs.CanAccess(res.Parent, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	node, err := p.k.FS.CreateAt(res.Parent, res.Name, res.Path, vfs.CreateOpts{
		UID: p.EUID, GID: p.EGID, Mode: 0o777, Type: vfs.TypeSymlink, Target: target,
	})
	if err != nil {
		return err
	}
	return p.pfFilter(pf.OpFileCreate, node, res.Path, NrSymlink)
}

// Link creates a hard link newpath to the object at oldpath.
func (p *Proc) Link(oldpath, newpath string) error {
	if err := p.enterSyscall(NrLink); err != nil {
		return err
	}
	defer p.exitSyscall()
	oldRes, err := p.resolve(NrLink, oldpath, vfs.ResolveOpts{})
	if err != nil {
		return err
	}
	newRes, err := p.resolve(NrLink, newpath, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if newRes.Node != nil {
		return vfs.ErrExist
	}
	if !vfs.CanAccess(newRes.Parent, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	if err := p.pfFilter(pf.OpFileCreate, oldRes.Node, newRes.Path, NrLink); err != nil {
		return err
	}
	return p.k.FS.Link(newRes.Parent, newRes.Name, oldRes.Node)
}

// Rename atomically moves oldpath to newpath.
func (p *Proc) Rename(oldpath, newpath string) error {
	if err := p.enterSyscall(NrRename); err != nil {
		return err
	}
	defer p.exitSyscall()
	oldRes, err := p.resolve(NrRename, oldpath, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if oldRes.Node == nil {
		return vfs.ErrNotExist
	}
	newRes, err := p.resolve(NrRename, newpath, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if err := p.checkWriteDir(oldRes.Parent, oldRes.Node, parentPath(oldRes.Path)); err != nil {
		return err
	}
	if !vfs.CanAccess(newRes.Parent, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	return p.k.FS.Rename(oldRes.Parent, oldRes.Name, newRes.Parent, newRes.Name)
}

// Chmod changes permission bits; only the owner or root may.
func (p *Proc) Chmod(path string, mode uint16) error {
	if err := p.enterSyscall(NrChmod); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrChmod, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return err
	}
	return p.chmodNode(res.Node, res.Path, mode, NrChmod)
}

// Fchmod is Chmod on an open descriptor.
func (p *Proc) Fchmod(fd int, mode uint16) error {
	if err := p.enterSyscall(NrFchmod, uint64(fd)); err != nil {
		return err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return err
	}
	return p.chmodNode(f.Node, f.Path, mode, NrFchmod)
}

func (p *Proc) chmodNode(node *vfs.Inode, path string, mode uint16, nr Syscall) error {
	if p.EUID != 0 && p.EUID != node.UID {
		return vfs.ErrPerm
	}
	op := pf.OpFileSetattr
	if node.Type == vfs.TypeSocket {
		op = pf.OpSocketSetattr
	}
	if err := p.pfFilter(op, node, path, nr); err != nil {
		return err
	}
	p.k.FS.Chmod(node, mode)
	return nil
}

// Chown changes ownership; root only.
func (p *Proc) Chown(path string, uid, gid int) error {
	if err := p.enterSyscall(NrChown); err != nil {
		return err
	}
	defer p.exitSyscall()
	if p.EUID != 0 {
		return vfs.ErrPerm
	}
	res, err := p.resolve(NrChown, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return err
	}
	if err := p.pfFilter(pf.OpFileSetattr, res.Node, res.Path, NrChown); err != nil {
		return err
	}
	p.k.FS.Chown(res.Node, uid, gid)
	return nil
}

// Bind creates a socket file at path, recording this process as its owner
// (the bind step of the paper's dbus-daemon TOCTTOU, rule R5).
func (p *Proc) Bind(path string, mode uint16) (int, error) {
	if err := p.enterSyscall(NrBind); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrBind, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return -1, err
	}
	if res.Node != nil {
		return -1, vfs.ErrExist
	}
	if !vfs.CanAccess(res.Parent, p.EUID, p.EGID, false, true, true) {
		return -1, vfs.ErrPerm
	}
	node, err := p.k.FS.CreateAt(res.Parent, res.Name, res.Path, vfs.CreateOpts{
		UID: p.EUID, GID: p.EGID, Mode: mode, Type: vfs.TypeSocket,
	})
	if err != nil {
		return -1, err
	}
	node.SockOwner = p.pid
	if err := p.pfFilter(pf.OpSocketBind, node, res.Path, NrBind); err != nil {
		p.k.FS.Unlink(res.Parent, res.Name)
		return -1, err
	}
	lis := p.k.IPC.BindFile(res.Path, node.SID, p.cred())
	node.IPCID = lis.Meta().ID
	fd := p.installFd(node, res.Path)
	p.fds[fd].Lis = lis
	return fd, nil
}

// Connect opens a client connection to the socket at path (the libdbus
// step of rule R3).
func (p *Proc) Connect(path string) (int, error) {
	if err := p.enterSyscall(NrConnect); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrConnect, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return -1, err
	}
	if res.Node.Type != vfs.TypeSocket {
		return -1, vfs.ErrInval
	}
	if !vfs.CanAccess(res.Node, p.EUID, p.EGID, true, true, false) {
		return -1, vfs.ErrPerm
	}
	// A socket inode is only a rendezvous name; the connection needs a live
	// listener behind it. A dangling socket file whose owner exited (its
	// listener closed with its fds) refuses the connection rather than
	// handing out a descriptor to nobody.
	var lis *ipc.Listener
	if res.Node.IPCID != 0 {
		lis, _ = p.k.IPC.FileListener(res.Node.IPCID)
	}
	if lis == nil || lis.Closed() {
		return -1, ErrConnRefused
	}
	// The PF sees the file identity (label, inode, path) plus the socket
	// context: namespace and the listener owner's credentials — the peer
	// this client will actually be talking to.
	ms := p.curMed
	ms.ipcRes.fromMeta(lis.Meta(), mac.ClassSockFile)
	ms.ipcRes.sid = res.Node.SID
	ms.ipcRes.id = uint64(res.Node.Ino)
	ms.ipcRes.path = res.Path
	ms.ipcRes.owner = res.Node.UID
	ms.ipcRes.peer = lis.Owner()
	ms.ipcRes.peerOK = true
	conn, err := p.connectListener(lis, &ms.ipcRes)
	if err != nil {
		return -1, err
	}
	fd := p.installFd(res.Node, res.Path)
	p.fds[fd].Conn = conn
	return fd, nil
}

// Mkfifo creates a named pipe at path — the IPC rendezvous object of the
// File/IPC squat attack class (paper Table 1, CWE-283). Like Bind, the
// created inode records its creator.
func (p *Proc) Mkfifo(path string, mode uint16) error {
	if err := p.enterSyscall(NrMkfifo); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrMkfifo, path, vfs.ResolveOpts{WantParent: true})
	if err != nil {
		return err
	}
	if res.Node != nil {
		return vfs.ErrExist
	}
	if !vfs.CanAccess(res.Parent, p.EUID, p.EGID, false, true, true) {
		return vfs.ErrPerm
	}
	node, err := p.k.FS.CreateAt(res.Parent, res.Name, res.Path, vfs.CreateOpts{
		UID: p.EUID, GID: p.EGID, Mode: mode, Type: vfs.TypeFifo,
	})
	if err != nil {
		return err
	}
	node.SockOwner = p.pid
	if err := p.pfFilter(pf.OpFifoCreate, node, res.Path, NrMkfifo); err != nil {
		p.k.FS.Unlink(res.Parent, res.Name)
		return err
	}
	node.IPCID = p.k.IPC.NewFifo()
	return nil
}

// Mmap maps the open file into the address space, making its code
// available for entrypoint matching (how ld.so loads libraries).
func (p *Proc) Mmap(fd int) error {
	if err := p.enterSyscall(NrMmap, uint64(fd)); err != nil {
		return err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return err
	}
	if err := p.pfFilterRes(pf.OpFileMmap, &f.res, NrMmap); err != nil {
		return err
	}
	if _, ok := p.as.FindByPath(f.Path); !ok {
		p.as.Map(f.Path, 0)
	}
	return nil
}

// Ftruncate truncates the file behind fd to zero length.
func (p *Proc) Ftruncate(fd int) error {
	if err := p.enterSyscall(NrFtruncate, uint64(fd)); err != nil {
		return err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return err
	}
	if err := p.pfFilterRes(pf.OpFileWrite, &f.res, NrFtruncate); err != nil {
		return err
	}
	f.pos = 0
	return p.k.FS.WriteFile(f.Node, nil)
}

// Getpid returns the process id (the "null" syscall of Table 6).
func (p *Proc) Getpid() (int, error) {
	if err := p.enterSyscall(NrGetpid); err != nil {
		return 0, err
	}
	defer p.exitSyscall()
	return p.pid, nil
}
