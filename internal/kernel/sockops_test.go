package kernel

import (
	"bytes"
	"errors"
	"testing"

	"pfirewall/internal/ipc"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// echo runs a connect/send/accept/recv round trip between client and
// server over the given descriptors and checks the bytes arrive intact.
func echo(t *testing.T, server *Proc, sfd int, client *Proc, cfd int, msg string) {
	t.Helper()
	if _, err := client.Send(cfd, []byte(msg)); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := server.Recv(sfd, 0)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(got, []byte(msg)) {
		t.Fatalf("recv = %q, want %q", got, msg)
	}
}

func TestFilesystemSocketRendezvous(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	lfd, err := srv.Bind("/var/run/dbus/system_bus_socket", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lfd, 4); err != nil {
		t.Fatal(err)
	}
	client := newRoot(k, "httpd_t", "/usr/bin/apache2")
	cfd, err := client.Connect("/var/run/dbus/system_bus_socket")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := srv.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	echo(t, srv, sfd, client, cfd, "hello over fs")
	echo(t, client, cfd, srv, sfd, "and back")
}

func TestAbstractSocketRendezvous(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	lfd, err := srv.BindAbstract("session_bus")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lfd, 4); err != nil {
		t.Fatal(err)
	}
	client := newUser(k)
	cfd, err := client.ConnectAbstract("session_bus")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := srv.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	echo(t, srv, sfd, client, cfd, "abstract bytes")
}

func TestPortSocketRendezvous(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
	lfd, err := srv.BindPort(8080)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lfd, 4); err != nil {
		t.Fatal(err)
	}
	client := newUser(k)
	cfd, err := client.ConnectPort(8080)
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := srv.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	echo(t, srv, sfd, client, cfd, "GET / HTTP/1.0")
	// read/write on a socket fd aliases recv/send.
	if _, err := srv.Write(sfd, []byte("200 OK")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Read(cfd, 0); err != nil || string(got) != "200 OK" {
		t.Fatalf("read on socket fd = %q, %v", got, err)
	}
}

func TestConnectDanglingSocketRefused(t *testing.T) {
	k := newWorld(t)
	owner := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	fd, err := owner.Bind("/var/run/dbus/system_bus_socket", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Listen(fd, 4); err != nil {
		t.Fatal(err)
	}
	// The owner dies; the socket inode remains in the filesystem but nobody
	// is behind it. Connecting must refuse, not hand out a dead descriptor.
	owner.Exit(0)
	if _, ok := k.LookupIno("/var/run/dbus/system_bus_socket"); !ok {
		t.Fatal("socket inode should linger after owner exit")
	}
	client := newRoot(k, "httpd_t", "/usr/bin/apache2")
	if _, err := client.Connect("/var/run/dbus/system_bus_socket"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect to dangling socket: %v, want ErrConnRefused", err)
	}
}

func TestConnectBeforeListenRefused(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	if _, err := srv.Bind("/var/run/dbus/system_bus_socket", 0o666); err != nil {
		t.Fatal(err)
	}
	client := newRoot(k, "httpd_t", "/usr/bin/apache2")
	if _, err := client.Connect("/var/run/dbus/system_bus_socket"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect before listen: %v, want ErrConnRefused", err)
	}
	if _, err := client.ConnectAbstract("nobody_home"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect to unbound abstract name: %v, want ErrConnRefused", err)
	}
	if _, err := client.ConnectPort(9); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("connect to unbound port: %v, want ErrConnRefused", err)
	}
}

func TestBacklogRefusesWhenFull(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
	lfd, _ := srv.BindPort(80)
	if err := srv.Listen(lfd, 1); err != nil {
		t.Fatal(err)
	}
	client := newUser(k)
	if _, err := client.ConnectPort(80); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ConnectPort(80); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("overfull backlog: %v, want ErrConnRefused", err)
	}
}

func TestPeerCredsCapturedAtConnect(t *testing.T) {
	k := newWorld(t)
	srv := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	lfd, _ := srv.BindAbstract("bus")
	srv.Listen(lfd, 4)
	client := newUser(k)
	cfd, err := client.ConnectAbstract("bus")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := srv.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	sf := srv.fds[sfd]
	if c := sf.Conn.PeerCred(); c.UID != 1000 || c.PID != client.PID() {
		t.Errorf("server's peer cred = %+v, want the client's", c)
	}
	cf := client.fds[cfd]
	if c := cf.Conn.PeerCred(); c.UID != 0 || c.PID != srv.PID() {
		t.Errorf("client's peer cred = %+v, want the server's", c)
	}
}

func TestAbstractSquatWindowAfterExit(t *testing.T) {
	k := newWorld(t)
	daemon := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	lfd, err := daemon.BindAbstract("system_bus")
	if err != nil {
		t.Fatal(err)
	}
	daemon.Listen(lfd, 4)
	// While the daemon lives, the name is taken.
	adv := newUser(k)
	if _, err := adv.BindAbstract("system_bus"); !errors.Is(err, ipc.ErrAddrInUse) {
		t.Fatalf("bind over a live name: %v, want ErrAddrInUse", err)
	}
	daemon.Exit(0)
	// The moment it dies, anyone can squat the name — the attack surface
	// exploit E10 walks through.
	sfd, err := adv.BindAbstract("system_bus")
	if err != nil {
		t.Fatalf("squat after owner exit: %v", err)
	}
	if err := adv.Listen(sfd, 4); err != nil {
		t.Fatal(err)
	}
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	cfd, err := victim.ConnectAbstract("system_bus")
	if err != nil {
		t.Fatalf("victim connect: %v", err)
	}
	vf := victim.fds[cfd]
	if c := vf.Conn.PeerCred(); c.UID != 1000 {
		t.Errorf("victim's peer uid = %d, want the squatter's 1000", c.UID)
	}
}

// pfWith builds an engine holding exactly the given rules, attached to k.
func pfWith(k *Kernel, rules ...*pf.Rule) {
	engine := pf.New(k.Policy, pf.Optimized())
	for _, r := range rules {
		engine.Append("input", r)
	}
	k.AttachPF(engine)
}

func TestPFBlocksEachSocketStep(t *testing.T) {
	type step struct {
		name string
		op   pf.Op
		run  func(t *testing.T, k *Kernel) error
	}
	// Each step builds a world where everything up to the mediated
	// operation succeeds, with a PF rule denying exactly that operation.
	steps := []step{
		{"listen", pf.OpSocketListen, func(t *testing.T, k *Kernel) error {
			srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
			lfd, err := srv.BindPort(80)
			if err != nil {
				t.Fatal(err)
			}
			return srv.Listen(lfd, 4)
		}},
		{"accept", pf.OpSocketAccept, func(t *testing.T, k *Kernel) error {
			srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
			lfd, _ := srv.BindPort(80)
			srv.Listen(lfd, 4)
			client := newUser(k)
			if _, err := client.ConnectPort(80); err != nil {
				t.Fatal(err)
			}
			_, err := srv.Accept(lfd)
			return err
		}},
		{"send", pf.OpSocketSend, func(t *testing.T, k *Kernel) error {
			srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
			lfd, _ := srv.BindPort(80)
			srv.Listen(lfd, 4)
			client := newUser(k)
			cfd, err := client.ConnectPort(80)
			if err != nil {
				t.Fatal(err)
			}
			_, err = client.Send(cfd, []byte("x"))
			return err
		}},
		{"recv", pf.OpSocketRecv, func(t *testing.T, k *Kernel) error {
			srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
			lfd, _ := srv.BindPort(80)
			srv.Listen(lfd, 4)
			client := newUser(k)
			cfd, err := client.ConnectPort(80)
			if err != nil {
				t.Fatal(err)
			}
			_, err = client.Recv(cfd, 0)
			return err
		}},
	}
	for _, s := range steps {
		t.Run(s.name, func(t *testing.T) {
			k := newWorld(t)
			pfWith(k, &pf.Rule{Ops: pf.NewOpSet(s.op), Target: pf.Drop()})
			if err := s.run(t, k); !errors.Is(err, ErrPFDenied) {
				t.Errorf("%s under deny rule: %v, want ErrPFDenied", s.name, err)
			}
		})
	}
}

func TestPFAcceptDenyResetsClient(t *testing.T) {
	k := newWorld(t)
	pfWith(k, &pf.Rule{Ops: pf.NewOpSet(pf.OpSocketAccept), Target: pf.Drop()})
	srv := newRoot(k, "httpd_t", "/usr/bin/apache2")
	lfd, _ := srv.BindPort(80)
	srv.Listen(lfd, 4)
	client := newUser(k)
	cfd, err := client.ConnectPort(80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Accept(lfd); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("accept: %v, want ErrPFDenied", err)
	}
	// The denied connection must be reset, not left half-open.
	if _, err := client.Recv(cfd, 0); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("client after denied accept: %v, want ErrPeerClosed", err)
	}
}

func TestPFPeerCredBlocksSquatterConnect(t *testing.T) {
	k := newWorld(t)
	// Abstract-namespace connects must be answered by root.
	pfWith(k, &pf.Rule{
		Ops: pf.NewOpSet(pf.OpSocketConnect),
		Matches: []pf.Match{
			&pf.SockNSMatch{NS: "abstract"},
			&pf.PeerCredMatch{UID: pf.Literal(0), Nequal: true},
		},
		Target: pf.Drop(),
	})
	daemon := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	lfd, _ := daemon.BindAbstract("bus")
	daemon.Listen(lfd, 4)
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := victim.ConnectAbstract("bus"); err != nil {
		t.Fatalf("connect to root daemon: %v", err)
	}
	daemon.Exit(0)
	adv := newUser(k)
	sfd, _ := adv.BindAbstract("bus")
	adv.Listen(sfd, 4)
	if _, err := victim.ConnectAbstract("bus"); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("connect to squatter: %v, want ErrPFDenied", err)
	}
}

func TestFifoDataPlane(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	if err := user.Mkfifo("/tmp/pipe", 0o666); err != nil {
		t.Fatal(err)
	}
	wfd, err := user.Open("/tmp/pipe", O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	rfd, err := user.Open("/tmp/pipe", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := user.Write(wfd, []byte("through the pipe")); err != nil {
		t.Fatal(err)
	}
	got, err := user.Read(rfd, 0)
	if err != nil || string(got) != "through the pipe" {
		t.Fatalf("fifo read = %q, %v", got, err)
	}
	// A fifo is a byte queue: reading consumed the data.
	if got, _ := user.Read(rfd, 0); got != nil {
		t.Errorf("second read = %q, want empty", got)
	}
}

func TestSocketFdMisuse(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "httpd_t", "/usr/bin/apache2")
	fd, err := p.Open("/etc/passwd", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen(fd, 4); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("listen on a file: %v, want ErrInval", err)
	}
	if _, err := p.Accept(fd); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("accept on a file: %v, want ErrInval", err)
	}
	if _, err := p.Send(fd, []byte("x")); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("send on a file: %v, want ErrInval", err)
	}
	lfd, _ := p.BindPort(80)
	if _, err := p.Fstat(lfd); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("fstat on inode-less socket: %v, want ErrInval", err)
	}
	if err := p.Close(lfd); err != nil {
		t.Errorf("close listener: %v", err)
	}
}
