package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

func TestExecvePFDenied(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	bin := k.Policy.SIDs().SID("bin_t")
	engine.Append("input", &pf.Rule{
		Object: pf.NewSIDSet(false, bin),
		Ops:    pf.NewOpSet(pf.OpFileExec),
		Target: pf.Drop(),
	})
	k.AttachPF(engine)
	bdir := k.FS.MustPath("/bin")
	k.FS.CreateAt(bdir, "tool", "/bin/tool", vfs.CreateOpts{Mode: 0o755})
	p := newUser(k)
	if err := p.Execve("/bin/tool", nil); !errors.Is(err, ErrPFDenied) {
		t.Errorf("execve: %v, want ErrPFDenied", err)
	}
}

func TestExecveNonExecutable(t *testing.T) {
	k := newWorld(t)
	etc := k.FS.MustPath("/etc")
	k.FS.CreateAt(etc, "data", "/etc/data", vfs.CreateOpts{Mode: 0o644})
	p := newUser(k)
	if err := p.Execve("/etc/data", nil); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("execve non-exec: %v, want ErrPerm", err)
	}
}

func TestMmapPFDenied(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	lib := k.Policy.SIDs().SID("lib_t")
	engine.Append("input", &pf.Rule{
		Object: pf.NewSIDSet(false, lib),
		Ops:    pf.NewOpSet(pf.OpFileMmap),
		Target: pf.Drop(),
	})
	k.AttachPF(engine)
	ldir := k.FS.MustPath("/lib")
	k.FS.CreateAt(ldir, "l.so", "/lib/l.so", vfs.CreateOpts{Mode: 0o755})
	p := newRoot(k, "httpd_t", "/usr/bin/apache2")
	fd, err := p.Open("/lib/l.so", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mmap(fd); !errors.Is(err, ErrPFDenied) {
		t.Errorf("mmap: %v, want ErrPFDenied", err)
	}
	if _, ok := p.AddrSpace().FindByPath("/lib/l.so"); ok {
		t.Error("denied mmap must not add a mapping")
	}
}

func TestAccessUsesRealUID(t *testing.T) {
	// access(2) checks the real uid even for setuid processes — the
	// historical purpose of the call (and the root of access/open races).
	k := newWorld(t)
	p := newUser(k)
	p.EUID = 0 // setuid-root
	if err := p.Access("/etc/shadow", true, false, false); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("access as real-uid 1000: %v, want ErrPerm", err)
	}
	// The same process can open it (effective uid 0): the classic
	// access/open inconsistency.
	if _, err := p.Open("/etc/shadow", O_RDONLY, 0); err != nil {
		t.Errorf("open with euid 0: %v", err)
	}
}

func TestMkfifoAndSquatDetection(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	if err := user.Mkfifo("/tmp/pipe", 0o666); err != nil {
		t.Fatal(err)
	}
	st, err := user.Lstat("/tmp/pipe")
	if err != nil || st.Type != vfs.TypeFifo {
		t.Fatalf("fifo stat = %+v, %v", st, err)
	}
	if err := user.Mkfifo("/tmp/pipe", 0o666); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("duplicate mkfifo: %v, want ErrExist", err)
	}
}

func TestMkfifoPFCreateDenied(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	tmp := k.Policy.SIDs().SID("tmp_t")
	engine.Append("input", &pf.Rule{
		Object: pf.NewSIDSet(false, tmp),
		Ops:    pf.NewOpSet(pf.OpFifoCreate),
		Target: pf.Drop(),
	})
	k.AttachPF(engine)
	user := newUser(k)
	if err := user.Mkfifo("/tmp/pipe", 0o666); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("mkfifo: %v, want ErrPFDenied", err)
	}
	if _, err := user.Lstat("/tmp/pipe"); !errors.Is(err, vfs.ErrNotExist) {
		t.Error("denied mkfifo must leave nothing behind")
	}
}

func TestFtruncate(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	fd, err := user.Open("/tmp/t", O_CREAT|O_RDWR, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	user.Write(fd, []byte("hello"))
	if err := user.Ftruncate(fd); err != nil {
		t.Fatal(err)
	}
	st, _ := user.Fstat(fd)
	if st.Size != 0 {
		t.Errorf("size after ftruncate = %d", st.Size)
	}
	// Writes restart at the beginning.
	user.Write(fd, []byte("x"))
	st, _ = user.Fstat(fd)
	if st.Size != 1 {
		t.Errorf("size after rewrite = %d", st.Size)
	}
	if err := user.Ftruncate(99); !errors.Is(err, ErrBadFd) {
		t.Errorf("ftruncate bad fd: %v", err)
	}
}

func TestReadPositionAdvances(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	fd, _ := p.Open("/etc/passwd", O_RDONLY, 0)
	a, _ := p.Read(fd, 4)
	b, _ := p.Read(fd, 4)
	if string(a) == "" || string(a) == string(b) {
		t.Errorf("reads = %q then %q; position should advance", a, b)
	}
}

func TestOpenTruncFlag(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	fd, _ := user.Open("/tmp/tr", O_CREAT|O_RDWR, 0o600)
	user.Write(fd, []byte("content"))
	user.Close(fd)
	fd, err := user.Open("/tmp/tr", O_RDWR|O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := user.Fstat(fd)
	if st.Size != 0 {
		t.Errorf("O_TRUNC left size %d", st.Size)
	}
}

func TestSignalToDeadProcess(t *testing.T) {
	k := newWorld(t)
	victim := newUser(k)
	sender := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	victim.Exit(0)
	if err := sender.Kill(victim.PID(), SIGTERM); !errors.Is(err, ErrNoProc) {
		t.Errorf("kill dead: %v, want ErrNoProc", err)
	}
}

func TestProcsSnapshot(t *testing.T) {
	k := newWorld(t)
	a := newUser(k)
	b := newUser(k)
	if got := len(k.Procs()); got != 2 {
		t.Fatalf("Procs = %d, want 2", got)
	}
	a.Exit(0)
	if got := len(k.Procs()); got != 1 {
		t.Errorf("Procs after exit = %d, want 1", got)
	}
	if p, ok := k.Proc(b.PID()); !ok || p != b {
		t.Error("Proc lookup failed")
	}
}

func TestSyscallNamesComplete(t *testing.T) {
	names := SyscallNames()
	for nr := Syscall(1); nr < nrCount; nr++ {
		name := nr.String()
		if name == "syscall(?)" {
			t.Errorf("syscall %d has no name", nr)
			continue
		}
		if got, ok := names[name]; !ok || got != int(nr) {
			t.Errorf("SyscallNames[%q] = %d,%v want %d", name, got, ok, nr)
		}
	}
}
