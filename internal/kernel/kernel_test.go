package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/ustack"
	"pfirewall/internal/vfs"
)

// newWorld builds a small Ubuntu-flavoured system: trusted httpd/sshd/dbus
// domains, an untrusted user, /etc /lib /tmp /var/www with standard labels.
func newWorld(t *testing.T) *Kernel {
	t.Helper()
	pol := mac.NewPolicy(mac.NewSIDTable())
	pol.MarkTrusted("httpd_t", "sshd_t", "dbusd_t", "lib_t", "etc_t", "shadow_t",
		"httpd_content_t", "bin_t", "system_dbusd_var_run_t")
	pol.Allow("httpd_t", "httpd_content_t", mac.ClassFile, mac.PermRead)
	pol.Allow("httpd_t", "shadow_t", mac.ClassFile, mac.PermRead)
	pol.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermRead|mac.PermWrite|mac.PermCreate)
	pol.Allow("user_t", "tmp_t", mac.ClassDir, mac.PermAddName|mac.PermSearch)
	pol.Allow("user_t", "user_home_t", mac.ClassFile, mac.PermRead|mac.PermWrite)

	fc := mac.NewFileContexts("default_t")
	fc.Add("/tmp", "tmp_t")
	fc.Add("/etc", "etc_t")
	fc.Add("/etc/shadow", "shadow_t")
	fc.Add("/lib", "lib_t")
	fc.Add("/bin", "bin_t")
	fc.Add("/var/www", "httpd_content_t")
	fc.Add("/home", "user_home_t")
	fc.Add("/var/run/dbus", "system_dbusd_var_run_t")

	k := New(pol, fc)
	fs := k.FS
	tmp := fs.MustPath("/tmp")
	fs.Chmod(tmp, 0o777|vfs.ModeSticky)
	etc := fs.MustPath("/etc")
	fs.MustPath("/lib")
	fs.MustPath("/bin")
	fs.MustPath("/var/www")
	fs.MustPath("/home/alice")
	fs.MustPath("/var/run/dbus")

	shadow, err := fs.CreateAt(etc, "shadow", "/etc/shadow", vfs.CreateOpts{Mode: 0o600})
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(shadow, []byte("root:hash"))
	passwd, _ := fs.CreateAt(etc, "passwd", "/etc/passwd", vfs.CreateOpts{Mode: 0o644})
	fs.WriteFile(passwd, []byte("root:x"))
	return k
}

func pfEnv(k *Kernel) *pftables.Env {
	return &pftables.Env{
		Policy:     k.Policy,
		LookupPath: k.LookupIno,
		Syscalls:   SyscallNames(),
	}
}

func newRoot(k *Kernel, label mac.Label, exec string) *Proc {
	return k.NewProc(ProcSpec{UID: 0, GID: 0, Label: label, Exec: exec})
}

func newUser(k *Kernel) *Proc {
	return k.NewProc(ProcSpec{UID: 1000, GID: 1000, Label: "user_t", Exec: "/bin/sh"})
}

func TestOpenReadWriteClose(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "httpd_t", "/usr/bin/apache2")
	fd, err := p.Open("/etc/passwd", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.ReadAll(fd)
	if err != nil || string(data) != "root:x" {
		t.Errorf("read = %q, %v", data, err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(fd, 10); !errors.Is(err, ErrBadFd) {
		t.Error("read after close should fail")
	}
}

func TestOpenCreatesWithContextLabel(t *testing.T) {
	k := newWorld(t)
	p := newUser(k)
	fd, err := p.Open("/tmp/scratch", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Fstat(fd)
	if err != nil {
		t.Fatal(err)
	}
	if lbl := k.Policy.SIDs().Label(st.SID); lbl != "tmp_t" {
		t.Errorf("new file label = %q, want tmp_t", lbl)
	}
	if st.UID != 1000 {
		t.Errorf("new file uid = %d, want 1000", st.UID)
	}
}

func TestDACDenied(t *testing.T) {
	k := newWorld(t)
	p := newUser(k)
	if _, err := p.Open("/etc/shadow", O_RDONLY, 0); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("user open shadow: %v, want ErrPerm", err)
	}
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := root.Open("/etc/shadow", O_RDONLY, 0); err != nil {
		t.Errorf("root open shadow: %v", err)
	}
}

func TestMACEnforcing(t *testing.T) {
	k := newWorld(t)
	k.MACEnforcing = true
	p := newUser(k)
	// user_t has no allow rule for etc_t dir search.
	_, err := p.Open("/etc/passwd", O_RDONLY, 0)
	if !errors.Is(err, ErrMACDenied) {
		t.Errorf("err = %v, want ErrMACDenied", err)
	}
}

func TestStickyBitDeletion(t *testing.T) {
	k := newWorld(t)
	alice := newUser(k)
	bob := k.NewProc(ProcSpec{UID: 1001, GID: 1001, Label: "user_t", Exec: "/bin/sh"})

	if _, err := alice.Open("/tmp/af", O_CREAT|O_RDWR, 0o644); err != nil {
		t.Fatal(err)
	}
	// Bob cannot delete Alice's file from the sticky /tmp.
	if err := bob.Unlink("/tmp/af"); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("bob unlink: %v, want ErrPerm", err)
	}
	// Alice can.
	if err := alice.Unlink("/tmp/af"); err != nil {
		t.Errorf("alice unlink: %v", err)
	}
}

func TestStatVsLstat(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	if err := user.Symlink("/etc/passwd", "/tmp/ln"); err != nil {
		t.Fatal(err)
	}
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	st, err := root.Stat("/tmp/ln")
	if err != nil || st.Type != vfs.TypeRegular {
		t.Errorf("stat follows: %+v, %v", st, err)
	}
	lst, err := root.Lstat("/tmp/ln")
	if err != nil || lst.Type != vfs.TypeSymlink {
		t.Errorf("lstat must not follow: %+v, %v", lst, err)
	}
}

func TestONofollow(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	user.Symlink("/etc/passwd", "/tmp/ln2")
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := root.Open("/tmp/ln2", O_NOFOLLOW, 0); !errors.Is(err, vfs.ErrLoop) {
		t.Errorf("O_NOFOLLOW on symlink: %v, want ErrLoop", err)
	}
}

func TestOExcl(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	if _, err := user.Open("/tmp/x", O_CREAT|O_EXCL|O_RDWR, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Open("/tmp/x", O_CREAT|O_EXCL|O_RDWR, 0o600); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("second O_EXCL: %v, want ErrExist", err)
	}
}

func TestPFBlocksSymlinkFollowInTmp(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	if _, err := pftables.Install(pfEnv(k), engine, `pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP`); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)

	user := newUser(k)
	user.Symlink("/etc/shadow", "/tmp/trap")

	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := victim.Open("/tmp/trap", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Errorf("open via /tmp symlink: %v, want ErrPFDenied", err)
	}
	// Direct access is unaffected.
	if _, err := victim.Open("/etc/shadow", O_RDONLY, 0); err != nil {
		t.Errorf("direct open: %v", err)
	}
}

func TestCompleteMediationCounts(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	before := k.MediationCount.Load()
	if _, err := p.Open("/etc/passwd", O_RDONLY, 0); err != nil {
		t.Fatal(err)
	}
	steps := k.MediationCount.Load() - before
	// Expect search on / and /etc (final object is mediated via pfFilter +
	// DAC inline, not through the vfs mediator).
	if steps != 2 {
		t.Errorf("mediated %d steps, want 2", steps)
	}
}

func TestPFCreateUndoneOnDrop(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	// Drop creation of tmp_t files by sshd_t.
	sshd := k.Policy.SIDs().SID("sshd_t")
	tmp := k.Policy.SIDs().SID("tmp_t")
	engine.Append("input", &pf.Rule{
		Subject: pf.NewSIDSet(false, sshd),
		Object:  pf.NewSIDSet(false, tmp),
		Ops:     pf.NewOpSet(pf.OpFileCreate),
		Target:  pf.Drop(),
	})
	k.AttachPF(engine)
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := victim.Open("/tmp/f", O_CREAT|O_RDWR, 0o600); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("create: %v, want ErrPFDenied", err)
	}
	// The file must not linger after the denied create.
	if _, err := victim.Lstat("/tmp/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("lstat after denied create: %v, want ErrNotExist", err)
	}
}

func TestSyscallBeginDropAbortsSyscall(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	engine.Append("syscallbegin", &pf.Rule{
		Matches: []pf.Match{&pf.SyscallArgsMatch{Arg: 0, Equal: uint64(NrUnlink)}},
		Target:  pf.Drop(),
	})
	k.AttachPF(engine)
	user := newUser(k)
	user.Open("/tmp/z", O_CREAT|O_RDWR, 0o600)
	if err := user.Unlink("/tmp/z"); !errors.Is(err, ErrPFDenied) {
		t.Errorf("unlink: %v, want ErrPFDenied", err)
	}
	if _, err := user.Lstat("/tmp/z"); err != nil {
		t.Error("file should survive the aborted unlink")
	}
}

func TestSetuidExecve(t *testing.T) {
	k := newWorld(t)
	bin := k.FS.MustPath("/bin")
	prog, _ := k.FS.CreateAt(bin, "passwdtool", "/bin/passwdtool", vfs.CreateOpts{
		UID: 0, GID: 0, Mode: 0o4755 | 0o111,
	})
	_ = prog
	user := newUser(k)
	if err := user.Execve("/bin/passwdtool", map[string]string{"PATH": "/bin"}); err != nil {
		t.Fatal(err)
	}
	if user.EUID != 0 || user.UID != 1000 {
		t.Errorf("after setuid exec: uid=%d euid=%d", user.UID, user.EUID)
	}
	if user.ExecPath() != "/bin/passwdtool" {
		t.Errorf("exec path = %q", user.ExecPath())
	}
	if _, ok := user.AddrSpace().FindByPath("/bin/passwdtool"); !ok {
		t.Error("new image not mapped")
	}
}

func TestForkInheritsAndIsolates(t *testing.T) {
	k := newWorld(t)
	parent := newUser(k)
	parent.PFState().Set(7, 70)
	fd, _ := parent.Open("/tmp/ff", O_CREAT|O_RDWR, 0o600)

	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if child.PID() == parent.PID() {
		t.Error("child must get a fresh pid")
	}
	if v, _ := child.PFState().Get(7); v != 70 {
		t.Error("child should inherit STATE dictionary")
	}
	child.PFState().Set(7, 71)
	if v, _ := parent.PFState().Get(7); v != 70 {
		t.Error("child writes must not affect parent")
	}
	// Child sees the inherited descriptor.
	if _, err := child.Fstat(fd); err != nil {
		t.Errorf("child fstat inherited fd: %v", err)
	}
}

func TestKillDACAndHandler(t *testing.T) {
	k := newWorld(t)
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	attacker := newUser(k)

	got := 0
	victim.Sigaction(SIGALRM, func(p *Proc, sig int) { got = sig })

	// Non-root, different uid: denied.
	if err := attacker.Kill(victim.PID(), SIGALRM); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("cross-uid kill: %v, want ErrPerm", err)
	}
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := root.Kill(victim.PID(), SIGALRM); err != nil {
		t.Fatal(err)
	}
	if got != SIGALRM {
		t.Error("handler did not run")
	}
}

func TestSignalRaceBlockedByPFRules(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	rules := []string{
		`pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN`,
		`pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP`,
		`pftables -A signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1`,
		`pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0`,
	}
	if _, err := pftables.InstallAll(pfEnv(k), engine, rules); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)

	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")

	maxDepth := 0
	var nestedErr error
	victim.Sigaction(SIGALRM, func(p *Proc, sig int) {
		if p.SigDepth() > maxDepth {
			maxDepth = p.SigDepth()
		}
		if p.SigDepth() == 1 {
			// Adversary re-signals while the handler runs.
			nestedErr = root.Kill(victim.PID(), SIGALRM)
		}
	})

	if err := root.Kill(victim.PID(), SIGALRM); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(nestedErr, ErrPFDenied) {
		t.Errorf("nested delivery: %v, want ErrPFDenied", nestedErr)
	}
	if maxDepth != 1 {
		t.Errorf("handler nesting depth = %d, want 1", maxDepth)
	}
	// After the handler returns (sigreturn), signals deliver again.
	if err := root.Kill(victim.PID(), SIGALRM); err != nil {
		t.Errorf("post-handler delivery: %v", err)
	}
}

func TestSignalRaceSucceedsWithoutPF(t *testing.T) {
	k := newWorld(t)
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	maxDepth := 0
	victim.Sigaction(SIGALRM, func(p *Proc, sig int) {
		if p.SigDepth() > maxDepth {
			maxDepth = p.SigDepth()
		}
		if p.SigDepth() == 1 {
			root.Kill(victim.PID(), SIGALRM)
		}
	})
	root.Kill(victim.PID(), SIGALRM)
	if maxDepth != 2 {
		t.Errorf("without PF the handler should re-enter: depth = %d", maxDepth)
	}
}

func TestTOCTTOURaceViaInterleaveHook(t *testing.T) {
	// Reproduces Figure 1(a)'s race: the adversary flips /tmp/f to a
	// symlink between the victim's lstat and open.
	k := newWorld(t)
	user := newUser(k)
	fd, err := user.Open("/tmp/f", O_CREAT|O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	user.Close(fd)

	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	flipped := false
	hook := k.AddPreSyscallHook(func(p *Proc, nr Syscall) {
		if p == victim && nr == NrOpen && !flipped {
			flipped = true
			user.Unlink("/tmp/f")
			user.Symlink("/etc/shadow", "/tmp/f")
		}
	})
	defer k.RemoveHook(hook)

	st, err := victim.Lstat("/tmp/f")
	if err != nil || st.Type != vfs.TypeRegular {
		t.Fatalf("check: %+v, %v", st, err)
	}
	fd, err = victim.Open("/tmp/f", O_RDONLY, 0)
	if err != nil {
		t.Fatalf("use: %v", err)
	}
	st2, _ := victim.Fstat(fd)
	lbl := k.Policy.SIDs().Label(st2.SID)
	if lbl != "shadow_t" {
		t.Errorf("race should reach shadow_t, got %q", lbl)
	}
	if st2.Ino == st.Ino {
		t.Error("inode must differ — that is what the check/use compare detects")
	}
}

func TestBindConnectAndSocketSetattr(t *testing.T) {
	k := newWorld(t)
	dbus := newRoot(k, "dbusd_t", "/bin/dbus-daemon")
	fd, err := dbus.Bind("/var/run/dbus/system_bus_socket", 0o666)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := dbus.Fstat(fd)
	if st.Type != vfs.TypeSocket {
		t.Error("bind should create a socket inode")
	}
	if err := dbus.Listen(fd, 8); err != nil {
		t.Fatalf("listen: %v", err)
	}
	client := newRoot(k, "httpd_t", "/usr/bin/apache2")
	if _, err := client.Connect("/var/run/dbus/system_bus_socket"); err != nil {
		t.Errorf("connect: %v", err)
	}
	if err := dbus.Fchmod(fd, 0o644); err != nil {
		t.Errorf("fchmod socket: %v", err)
	}
	if _, err := client.Connect("/etc/passwd"); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("connect non-socket: %v, want ErrInval", err)
	}
}

func TestMmapAddsMapping(t *testing.T) {
	k := newWorld(t)
	lib := k.FS.MustPath("/lib")
	k.FS.CreateAt(lib, "libc.so", "/lib/libc.so", vfs.CreateOpts{Mode: 0o755})
	p := newRoot(k, "httpd_t", "/usr/bin/apache2")
	fd, err := p.Open("/lib/libc.so", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mmap(fd); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.AddrSpace().FindByPath("/lib/libc.so"); !ok {
		t.Error("mmap did not add mapping")
	}
}

func TestEntrypointRuleThroughKernel(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	if _, err := pftables.Install(pfEnv(k), engine,
		`pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH -d ~{lib_t} -o FILE_OPEN -j DROP`); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)

	// Plant an adversary "library" in /tmp.
	user := newUser(k)
	ufd, _ := user.Open("/tmp/evil.so", O_CREAT|O_RDWR, 0o777)
	user.Close(ufd)

	victim := newRoot(k, "httpd_t", "/usr/bin/apache2")
	victim.AddrSpace().Map("/lib/ld-2.15.so", 0)
	if err := victim.PushFrame("/lib/ld-2.15.so", 0x100); err != nil {
		t.Fatal(err)
	}
	if err := victim.SyscallSite("/lib/ld-2.15.so", 0x596b); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Open("/tmp/evil.so", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Errorf("library load from tmp: %v, want ErrPFDenied", err)
	}

	// The same process opening the same file from a different call site
	// is allowed — per-entrypoint protection, not per-process.
	victim.SyscallSite("/usr/bin/apache2", 0x1111)
	if _, err := victim.Open("/tmp/evil.so", O_RDONLY, 0); err != nil {
		t.Errorf("non-linker open: %v", err)
	}
}

func TestExitReleasesResources(t *testing.T) {
	k := newWorld(t)
	p := newUser(k)
	fd, _ := p.Open("/tmp/e", O_CREAT|O_RDWR, 0o600)
	_ = fd
	p.Exit(0)
	if !p.Exited() {
		t.Fatal("not exited")
	}
	if _, err := p.Getpid(); !errors.Is(err, ErrExited) {
		t.Error("syscalls after exit must fail")
	}
	if _, ok := k.Proc(p.PID()); ok {
		t.Error("exited process still in table")
	}
}

func TestSigactionRejectsKill(t *testing.T) {
	k := newWorld(t)
	p := newUser(k)
	if err := p.Sigaction(SIGKILL, func(*Proc, int) {}); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("sigaction SIGKILL: %v, want ErrInval", err)
	}
}

func TestSigprocmaskBlocksDelivery(t *testing.T) {
	k := newWorld(t)
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	ran := false
	victim.Sigaction(SIGALRM, func(*Proc, int) { ran = true })
	victim.Sigprocmask(SIGALRM, true)
	root.Kill(victim.PID(), SIGALRM)
	if ran {
		t.Error("blocked signal must not run the handler")
	}
	victim.Sigprocmask(SIGALRM, false)
	root.Kill(victim.PID(), SIGALRM)
	if !ran {
		t.Error("unblocked signal should deliver")
	}
}

func TestSIGKILLTerminates(t *testing.T) {
	k := newWorld(t)
	victim := newUser(k)
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := root.Kill(victim.PID(), SIGKILL); err != nil {
		t.Fatal(err)
	}
	if !victim.Exited() {
		t.Error("SIGKILL should terminate")
	}
}

func TestLookupIno(t *testing.T) {
	k := newWorld(t)
	ino, ok := k.LookupIno("/etc/passwd")
	if !ok || ino == 0 {
		t.Errorf("LookupIno = %d, %v", ino, ok)
	}
	if _, ok := k.LookupIno("/no/such"); ok {
		t.Error("missing path should fail")
	}
}

func TestChdirRelativeResolution(t *testing.T) {
	k := newWorld(t)
	home := k.FS.MustPath("/home/alice")
	k.FS.Chown(home, 1000, 1000)
	p := newUser(k)
	if err := p.Chdir("/home/alice"); err != nil {
		t.Fatal(err)
	}
	fd, err := p.Open("notes", O_CREAT|O_RDWR, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := p.Fstat(fd)
	if lbl := k.Policy.SIDs().Label(st.SID); lbl != "user_home_t" {
		t.Errorf("label = %q, want user_home_t", lbl)
	}
}

func TestInterpreterFramesVisibleToPF(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	// Block opens from a specific PHP script line when touching tmp_t.
	tmpSID := k.Policy.SIDs().SID("tmp_t")
	engine.Append("input", &pf.Rule{
		Program: "include.php", Entry: 12, EntrySet: true,
		Object: pf.NewSIDSet(false, tmpSID),
		Ops:    pf.NewOpSet(pf.OpFileOpen),
		Target: pf.Drop(),
	})
	k.AttachPF(engine)

	user := newUser(k)
	fd, _ := user.Open("/tmp/payload", O_CREAT|O_RDWR, 0o666)
	user.Close(fd)

	php := newRoot(k, "httpd_t", "/usr/bin/php5")
	php.BecomeInterpreter(ustackLangPHP())
	php.InterpPush("include.php", 12)
	if _, err := php.Open("/tmp/payload", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Errorf("include from script line: %v, want ErrPFDenied", err)
	}
	php.InterpPop()
	if _, err := php.Open("/tmp/payload", O_RDONLY, 0); err != nil {
		t.Errorf("outside script frame: %v", err)
	}
}

func TestRenameReplacesAtomically(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	fd, _ := user.Open("/tmp/a", O_CREAT|O_RDWR, 0o600)
	user.Write(fd, []byte("A"))
	user.Close(fd)
	fd, _ = user.Open("/tmp/b", O_CREAT|O_RDWR, 0o600)
	user.Write(fd, []byte("B"))
	user.Close(fd)
	if err := user.Rename("/tmp/a", "/tmp/b"); err != nil {
		t.Fatal(err)
	}
	fd, err := user.Open("/tmp/b", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := user.ReadAll(fd)
	if string(data) != "A" {
		t.Errorf("renamed content = %q", data)
	}
}

// ustackLangPHP avoids importing ustack in every test site.
func ustackLangPHP() ustack.Lang { return ustack.LangPHP }
