package kernel

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/vfs"
)

// TestPooledScratchReuseStress hammers the pooled mediation scratch
// (medState, pooled File handles, pooled EvalCtx) from many processes at
// once, under -race in CI. Each goroutine drives its own process through
// open/fstat/read/stat/close cycles against a private file with a
// per-process byte, so any cross-request state bleed — a scratch recycled
// into the wrong flow, a preresolved fd handle pointing at another
// process's inode, a stale resolver path — surfaces as a wrong byte, a
// wrong inode, or a detector report rather than passing silently.
func TestPooledScratchReuseStress(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	// Real rules on the exercised ops so every cycle runs the full gauntlet
	// through the pooled request rather than skipping via the op mask.
	if _, err := pftables.InstallAll(pfEnv(k), engine, []string{
		`pftables -o LNK_FILE_READ -d tmp_t -j DROP`,
		`pftables -o FILE_OPEN -d shadow_t -s user_t -j DROP`,
		`pftables -o FILE_READ -d shadow_t -s user_t -j DROP`,
		`pftables -o FILE_GETATTR -d shadow_t -s user_t -j DROP`,
	}); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)

	const procs = 8
	const iters = 400

	type worker struct {
		p    *Proc
		path string
		want byte
		ino  vfs.Ino
	}
	workers := make([]worker, procs)
	for i := range workers {
		p := newRoot(k, "httpd_t", "/usr/bin/apache2")
		path := fmt.Sprintf("/tmp/pool-%d", i)
		fd, err := p.Open(path, O_CREAT|O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		b := byte('A' + i)
		if _, err := p.Write(fd, []byte{b}); err != nil {
			t.Fatal(err)
		}
		st, err := p.Fstat(fd)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatal(err)
		}
		workers[i] = worker{p: p, path: path, want: b, ino: st.Ino}
	}

	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for i := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				fd, err := w.p.Open(w.path, O_RDONLY, 0)
				if err != nil {
					errs <- fmt.Errorf("%s open: %w", w.path, err)
					return
				}
				st, err := w.p.Fstat(fd)
				if err != nil {
					errs <- fmt.Errorf("%s fstat: %w", w.path, err)
					return
				}
				if st.Ino != w.ino {
					errs <- fmt.Errorf("%s: fstat ino %d, want %d — fd handle bled across processes", w.path, st.Ino, w.ino)
					return
				}
				data, err := w.p.Read(fd, 1)
				if err != nil {
					errs <- fmt.Errorf("%s read: %w", w.path, err)
					return
				}
				if len(data) != 1 || data[0] != w.want {
					errs <- fmt.Errorf("%s: read %q, want %q — scratch state bled across requests", w.path, data, []byte{w.want})
					return
				}
				if st2, err := w.p.Stat(w.path); err != nil {
					errs <- fmt.Errorf("%s stat: %w", w.path, err)
					return
				} else if st2.Ino != w.ino {
					errs <- fmt.Errorf("%s: stat ino %d, want %d — resolver scratch bled", w.path, st2.Ino, w.ino)
					return
				}
				if err := w.p.Close(fd); err != nil {
					errs <- fmt.Errorf("%s close: %w", w.path, err)
					return
				}
			}
		}(workers[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The firewall stayed live throughout: a ruled op must still drop.
	user := newUser(k)
	user.Symlink("/etc/shadow", "/tmp/pool-trap")
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := victim.Open("/tmp/pool-trap", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Errorf("symlink open after stress = %v, want ErrPFDenied", err)
	}
}
