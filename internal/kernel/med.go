package kernel

import (
	"pfirewall/internal/ipc"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// medState is the per-syscall mediation scratch: one Process Firewall batch
// (the gauntlet snapshot amortized across every check the syscall performs),
// plus preallocated request/resource/resolution storage so the mediation
// path — path-walk per-component checks included — performs no heap
// allocation in the steady state.
//
// Ownership model: a medState belongs to exactly one in-flight syscall on
// its process. enterSyscall acquires one (pushing it on p.curMed, a LIFO —
// signal-handler re-entry nests by pushing deeper), the syscall's deferred
// exitSyscall releases it back to p.medFree. The paper's single-flow
// invariant (a process mediates on its own flow) is what makes the
// lock-free per-proc freelist sound.
type medState struct {
	p  *Proc
	nr Syscall

	b   pf.Batch
	req pf.Request

	// One scratch slot per resource shape the kernel mediates.
	res      resource
	ipcRes   ipcResource
	sigRes   signalResource
	sig      pf.SignalInfo
	resolved vfs.Resolved

	prev        *medState // enclosing syscall's scratch (signal re-entry)
	batchActive bool

	// Decision-provenance tracing scratch. tracer is non-nil exactly when
	// this syscall was trace-sampled at entry; the span record is embedded
	// by value, so arming, filling, and publishing (a value copy into the
	// tracer ring) allocate nothing. With tracing disabled every filter
	// site pays one nil check.
	tracer     *obs.Tracer
	span       obs.Span
	spanT0     int64  // syscall entry stamp (obs.MonoNow)
	medT0      int64  // current mediation's entry stamp (zero outside a vfs wrapper)
	gT0        int64  // current request's gauntlet-entry stamp
	syscallSeq uint64 // kernel-wide syscall ordinal (groups batch members)
	spanIdx    uint32 // requests spanned so far in this syscall
	dcHits     uint32 // resolved.DcacheHits already attributed to spans
	dcMisses   uint32
}

// Mediate implements vfs.Mediator: every object touched during path
// resolution runs the DAC → MAC → PF gauntlet for the owning syscall.
func (ms *medState) Mediate(a vfs.Access) error { return ms.p.mediate(ms.nr, a) }

// acquireMed pops a scratch off the process freelist (or allocates on the
// cold first use / deepest-ever nesting) and pushes it as the current one.
func (p *Proc) acquireMed(nr Syscall) *medState {
	var ms *medState
	if n := len(p.medFree); n > 0 {
		ms = p.medFree[n-1]
		p.medFree[n-1] = nil
		p.medFree = p.medFree[:n-1]
	} else {
		ms = &medState{}
	}
	ms.p = p
	ms.nr = nr
	ms.prev = p.curMed
	p.curMed = ms
	return ms
}

// exitSyscall finishes the current syscall's batch and recycles its scratch.
// Deferred by every syscall entry point right after enterSyscall succeeds;
// enterSyscall itself releases on its own denial path.
func (p *Proc) exitSyscall() {
	ms := p.curMed
	if ms == nil {
		return
	}
	p.curMed = ms.prev
	if ms.batchActive {
		ms.b.Finish()
		ms.batchActive = false
	}
	// Drop references so recycled scratch does not pin inodes, conns, or
	// processes. The resolved Trail keeps its backing array — that reuse is
	// the point — but is truncated; ResolveInto resets it on entry anyway.
	ms.p = nil
	ms.nr = 0
	ms.req.Reset()
	ms.res = resource{}
	ms.ipcRes = ipcResource{}
	ms.sigRes = signalResource{}
	ms.sig = pf.SignalInfo{}
	ms.resolved.Node, ms.resolved.Parent = nil, nil
	ms.resolved.Name, ms.resolved.Path = "", ""
	ms.resolved.Trail = ms.resolved.Trail[:0]
	ms.resolved.DcacheHits, ms.resolved.DcacheMisses = 0, 0
	ms.prev = nil
	ms.tracer = nil
	ms.span = obs.Span{}
	ms.spanT0, ms.medT0, ms.gT0 = 0, 0, 0
	ms.syscallSeq, ms.spanIdx = 0, 0
	ms.dcHits, ms.dcMisses = 0, 0
	p.medFree = append(p.medFree, ms)
}

// beginSpan fills the provenance header for the request about to enter the
// gauntlet and arms ms.req.Span so the engine annotates it in place. Every
// string stored is interned or pre-existing; no allocation occurs. Called
// only when ms.tracer != nil.
func (ms *medState) beginSpan(op pf.Op, path string) {
	now := obs.MonoNow()
	sp := &ms.span
	*sp = obs.Span{}
	sp.PID = ms.p.pid
	sp.SyscallSeq = ms.syscallSeq
	sp.BatchIndex = ms.spanIdx
	if ms.spanIdx > 0 {
		sp.Flags |= obs.SpanBatch
	}
	sp.Syscall = ms.nr.String()
	sp.Op = op.String()
	sp.Path = path
	sp.Subject = ms.p.subject
	sp.KernelNs = uint64(now - ms.spanT0)
	if ms.medT0 != 0 {
		// The request came through the vfs mediation wrapper: DAC and MAC
		// ran between medT0 and now. Consume the stamp so a mediation whose
		// op the firewall skips (MayFilter false) cannot leak its stamp
		// into a later request's split.
		sp.CheckNs = uint64(now - ms.medT0)
		sp.KernelNs = uint64(ms.medT0 - ms.spanT0)
		ms.medT0 = 0
	}
	// Dentry-cache lookups performed since the previous span are the ones
	// that located this request's object; attribute them here and advance
	// the consumed-counter watermark.
	if ms.resolved.DcacheHits > ms.dcHits {
		sp.Flags |= obs.SpanDcacheHit
	}
	if ms.resolved.DcacheMisses > ms.dcMisses {
		sp.Flags |= obs.SpanDcacheMiss
	}
	ms.dcHits, ms.dcMisses = ms.resolved.DcacheHits, ms.resolved.DcacheMisses
	ms.gT0 = now
	ms.req.Span = sp
}

// endSpan stamps verdict and latency totals, disarms the request, and
// publishes the span (a value copy into the tracer ring and any
// subscriber buffers).
func (ms *medState) endSpan(v pf.Verdict) {
	sp := &ms.span
	now := obs.MonoNow()
	sp.Verdict = v.String()
	// One end stamp covers both latency fields: the gauntlet ran the whole
	// beginSpan→endSpan bracket (the engine stamps no clocks of its own),
	// and the total adds the DAC+MAC prelude beginSpan measured (zero when
	// the request had no vfs wrapper).
	sp.GauntletNs = uint64(now - ms.gT0)
	sp.TotalNs = sp.CheckNs + sp.GauntletNs
	sp.TimeUnixNano = obs.WallNano(now)
	ms.spanIdx++
	ms.req.Span = nil
	ms.tracer.Publish(sp)
}

// pfFilter consults the Process Firewall about op on node. The per-op rule
// mask is checked before any request is built: an op no installed rule can
// match is a guaranteed default-accept, so the hot path skips straight past
// the firewall (satellite fast path; verdict parity is tested).
func (p *Proc) pfFilter(op pf.Op, node *vfs.Inode, path string, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, &resource{k: p.k, node: node, path: path}, nr)
	}
	ms.res = resource{k: p.k, node: node, path: path}
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.res
	ms.req.SyscallNR = int(nr)
	if ms.tracer != nil {
		ms.beginSpan(op, path)
	}
	v := ms.b.Filter(&ms.req)
	if ms.tracer != nil {
		ms.endSpan(v)
	}
	if v == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterRes consults the Process Firewall with a caller-built resource,
// used where the resource is an IPC endpoint (usually one of the medState
// scratch slots) rather than (only) an inode.
func (p *Proc) pfFilterRes(op pf.Op, res pf.Resource, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, res, nr)
	}
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = res
	ms.req.SyscallNR = int(nr)
	if ms.tracer != nil {
		ms.beginSpan(op, res.Path())
	}
	v := ms.b.Filter(&ms.req)
	if ms.tracer != nil {
		ms.endSpan(v)
	}
	if v == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterConn mediates one message on a connected socket, filling the
// scratch IPC resource from the connection's metadata and peer credential.
func (p *Proc) pfFilterConn(op pf.Op, c *ipc.Conn, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, connResource(c), nr)
	}
	ms.ipcRes.fromConn(c)
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.ipcRes
	ms.req.SyscallNR = int(nr)
	if ms.tracer != nil {
		ms.beginSpan(op, ms.ipcRes.Path())
	}
	v := ms.b.Filter(&ms.req)
	if ms.tracer != nil {
		ms.endSpan(v)
	}
	if v == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterLis mediates against a rendezvous point (bind/listen/connect),
// filling the scratch IPC resource from the listener's metadata and binder
// credential.
func (p *Proc) pfFilterLis(op pf.Op, l *ipc.Listener, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		r := &ipcResource{}
		r.fromLis(l)
		return p.pfFilterSlow(pfe, op, r, nr)
	}
	ms.ipcRes.fromLis(l)
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.ipcRes
	ms.req.SyscallNR = int(nr)
	if ms.tracer != nil {
		ms.beginSpan(op, ms.ipcRes.Path())
	}
	v := ms.b.Filter(&ms.req)
	if ms.tracer != nil {
		ms.endSpan(v)
	}
	if v == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterSlow is the one-shot fallback for the rare call without an active
// syscall scratch (helpers invoked outside syscall dispatch). It allocates;
// the hot paths never reach it.
func (p *Proc) pfFilterSlow(pfe *pf.Engine, op pf.Op, res pf.Resource, nr Syscall) error {
	req := pf.Request{Proc: p, Op: op, Obj: res, SyscallNR: int(nr)}
	if pfe.Filter(&req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}
