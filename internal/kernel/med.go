package kernel

import (
	"pfirewall/internal/ipc"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// medState is the per-syscall mediation scratch: one Process Firewall batch
// (the gauntlet snapshot amortized across every check the syscall performs),
// plus preallocated request/resource/resolution storage so the mediation
// path — path-walk per-component checks included — performs no heap
// allocation in the steady state.
//
// Ownership model: a medState belongs to exactly one in-flight syscall on
// its process. enterSyscall acquires one (pushing it on p.curMed, a LIFO —
// signal-handler re-entry nests by pushing deeper), the syscall's deferred
// exitSyscall releases it back to p.medFree. The paper's single-flow
// invariant (a process mediates on its own flow) is what makes the
// lock-free per-proc freelist sound.
type medState struct {
	p  *Proc
	nr Syscall

	b   pf.Batch
	req pf.Request

	// One scratch slot per resource shape the kernel mediates.
	res      resource
	ipcRes   ipcResource
	sigRes   signalResource
	sig      pf.SignalInfo
	resolved vfs.Resolved

	prev        *medState // enclosing syscall's scratch (signal re-entry)
	batchActive bool
}

// Mediate implements vfs.Mediator: every object touched during path
// resolution runs the DAC → MAC → PF gauntlet for the owning syscall.
func (ms *medState) Mediate(a vfs.Access) error { return ms.p.mediate(ms.nr, a) }

// acquireMed pops a scratch off the process freelist (or allocates on the
// cold first use / deepest-ever nesting) and pushes it as the current one.
func (p *Proc) acquireMed(nr Syscall) *medState {
	var ms *medState
	if n := len(p.medFree); n > 0 {
		ms = p.medFree[n-1]
		p.medFree[n-1] = nil
		p.medFree = p.medFree[:n-1]
	} else {
		ms = &medState{}
	}
	ms.p = p
	ms.nr = nr
	ms.prev = p.curMed
	p.curMed = ms
	return ms
}

// exitSyscall finishes the current syscall's batch and recycles its scratch.
// Deferred by every syscall entry point right after enterSyscall succeeds;
// enterSyscall itself releases on its own denial path.
func (p *Proc) exitSyscall() {
	ms := p.curMed
	if ms == nil {
		return
	}
	p.curMed = ms.prev
	if ms.batchActive {
		ms.b.Finish()
		ms.batchActive = false
	}
	// Drop references so recycled scratch does not pin inodes, conns, or
	// processes. The resolved Trail keeps its backing array — that reuse is
	// the point — but is truncated; ResolveInto resets it on entry anyway.
	ms.p = nil
	ms.nr = 0
	ms.req.Reset()
	ms.res = resource{}
	ms.ipcRes = ipcResource{}
	ms.sigRes = signalResource{}
	ms.sig = pf.SignalInfo{}
	ms.resolved.Node, ms.resolved.Parent = nil, nil
	ms.resolved.Name, ms.resolved.Path = "", ""
	ms.resolved.Trail = ms.resolved.Trail[:0]
	ms.prev = nil
	p.medFree = append(p.medFree, ms)
}

// pfFilter consults the Process Firewall about op on node. The per-op rule
// mask is checked before any request is built: an op no installed rule can
// match is a guaranteed default-accept, so the hot path skips straight past
// the firewall (satellite fast path; verdict parity is tested).
func (p *Proc) pfFilter(op pf.Op, node *vfs.Inode, path string, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, &resource{k: p.k, node: node, path: path}, nr)
	}
	ms.res = resource{k: p.k, node: node, path: path}
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.res
	ms.req.SyscallNR = int(nr)
	if ms.b.Filter(&ms.req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterRes consults the Process Firewall with a caller-built resource,
// used where the resource is an IPC endpoint (usually one of the medState
// scratch slots) rather than (only) an inode.
func (p *Proc) pfFilterRes(op pf.Op, res pf.Resource, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, res, nr)
	}
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = res
	ms.req.SyscallNR = int(nr)
	if ms.b.Filter(&ms.req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterConn mediates one message on a connected socket, filling the
// scratch IPC resource from the connection's metadata and peer credential.
func (p *Proc) pfFilterConn(op pf.Op, c *ipc.Conn, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		return p.pfFilterSlow(pfe, op, connResource(c), nr)
	}
	ms.ipcRes.fromConn(c)
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.ipcRes
	ms.req.SyscallNR = int(nr)
	if ms.b.Filter(&ms.req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterLis mediates against a rendezvous point (bind/listen/connect),
// filling the scratch IPC resource from the listener's metadata and binder
// credential.
func (p *Proc) pfFilterLis(op pf.Op, l *ipc.Listener, nr Syscall) error {
	pfe := p.k.PF
	if pfe == nil || !pfe.MayFilter(op) {
		return nil
	}
	ms := p.curMed
	if ms == nil || !ms.batchActive {
		r := &ipcResource{}
		r.fromLis(l)
		return p.pfFilterSlow(pfe, op, r, nr)
	}
	ms.ipcRes.fromLis(l)
	ms.req.Reset()
	ms.req.Proc = p
	ms.req.Op = op
	ms.req.Obj = &ms.ipcRes
	ms.req.SyscallNR = int(nr)
	if ms.b.Filter(&ms.req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}

// pfFilterSlow is the one-shot fallback for the rare call without an active
// syscall scratch (helpers invoked outside syscall dispatch). It allocates;
// the hot paths never reach it.
func (p *Proc) pfFilterSlow(pfe *pf.Engine, op pf.Op, res pf.Resource, nr Syscall) error {
	req := pf.Request{Proc: p, Op: op, Obj: res, SyscallNR: int(nr)}
	if pfe.Filter(&req) == pf.VerdictDrop {
		return ErrPFDenied
	}
	return nil
}
