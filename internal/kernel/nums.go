// Package kernel implements the simulated operating-system kernel that
// hosts the Process Firewall: processes with credentials, file descriptors
// and simulated user memory; a system-call layer whose pathname resolution
// is mediated object-by-object (the LSM analogue); UNIX DAC plus an
// SELinux-like MAC check; signal delivery; and deterministic adversary
// interleaving hooks that reproduce the scheduling freedom real attackers
// exploit for TOCTTOU and signal races.
//
// The mediation order per operation follows the paper's Figure 2: DAC and
// MAC authorize first; only if they allow is the Process Firewall invoked
// to decide whether the resource is appropriate for the process's current
// context.
package kernel

import (
	"errors"

	"pfirewall/internal/ipc"
)

// Syscall numbers, used by syscallbegin-chain rules via NR_* constants
// (paper rule R12 matches NR_sigreturn).
type Syscall int

// System calls of the simulated kernel.
const (
	NrInvalid Syscall = iota
	NrOpen
	NrClose
	NrRead
	NrWrite
	NrStat
	NrLstat
	NrFstat
	NrAccess
	NrUnlink
	NrMkdir
	NrRmdir
	NrSymlink
	NrLink
	NrRename
	NrChmod
	NrFchmod
	NrChown
	NrBind
	NrConnect
	NrMmap
	NrFork
	NrExecve
	NrExit
	NrKill
	NrSigaction
	NrSigprocmask
	NrSigreturn
	NrGetpid
	NrFtruncate
	NrChroot
	NrMkfifo
	NrListen
	NrAccept
	NrSendmsg
	NrRecvmsg
	NrSendmmsg
	NrRecvmmsg
	nrCount
)

var syscallNames = map[Syscall]string{
	NrOpen: "open", NrClose: "close", NrRead: "read", NrWrite: "write",
	NrStat: "stat", NrLstat: "lstat", NrFstat: "fstat", NrAccess: "access",
	NrUnlink: "unlink", NrMkdir: "mkdir", NrRmdir: "rmdir",
	NrSymlink: "symlink", NrLink: "link", NrRename: "rename",
	NrChmod: "chmod", NrFchmod: "fchmod", NrChown: "chown",
	NrBind: "bind", NrConnect: "connect", NrMmap: "mmap",
	NrFork: "fork", NrExecve: "execve", NrExit: "exit", NrKill: "kill",
	NrSigaction: "sigaction", NrSigprocmask: "sigprocmask",
	NrSigreturn: "sigreturn", NrGetpid: "getpid", NrFtruncate: "ftruncate", NrChroot: "chroot", NrMkfifo: "mkfifo",
	NrListen: "listen", NrAccept: "accept", NrSendmsg: "sendmsg", NrRecvmsg: "recvmsg",
	NrSendmmsg: "sendmmsg", NrRecvmmsg: "recvmmsg",
}

// String returns the syscall name.
func (s Syscall) String() string {
	if n, ok := syscallNames[s]; ok {
		return n
	}
	return "syscall(?)"
}

// SyscallNames returns the name→number table used by pftables to resolve
// NR_* constants.
func SyscallNames() map[string]int {
	out := make(map[string]int, len(syscallNames))
	for nr, name := range syscallNames {
		out[name] = int(nr)
	}
	return out
}

// Signals.
const (
	SIGKILL = 9
	SIGUSR1 = 10
	SIGSEGV = 11
	SIGALRM = 14
	SIGTERM = 15
	SIGCHLD = 17
	SIGSTOP = 19
)

// Errors returned by the kernel on top of the vfs error set.
var (
	// ErrPFDenied is returned when the Process Firewall drops an access.
	ErrPFDenied = errors.New("blocked by process firewall")
	// ErrMACDenied is returned when the MAC policy denies an access
	// (only when the kernel is in MAC-enforcing mode).
	ErrMACDenied = errors.New("denied by MAC policy")
	// ErrBadFd is returned for operations on closed or unknown descriptors.
	ErrBadFd = errors.New("bad file descriptor")
	// ErrNoProc is returned when a target process does not exist.
	ErrNoProc = errors.New("no such process")
	// ErrExited is returned for syscalls from an exited process.
	ErrExited = errors.New("process has exited")
	// ErrConnRefused is returned when connecting to a socket nobody is
	// listening on — including a dangling socket inode whose owner exited.
	ErrConnRefused = ipc.ErrRefused
)
