package kernel

import (
	"pfirewall/internal/pf"
	"pfirewall/internal/ustack"
	"pfirewall/internal/vfs"
)

// Fork clones the process: credentials, environment, cwd, descriptors,
// address-space mappings, and the PF STATE dictionary (the child starts
// with the parent's recorded facts, matching the paper's task_struct
// extension semantics).
func (p *Proc) Fork() (*Proc, error) {
	if err := p.enterSyscall(NrFork); err != nil {
		return nil, err
	}
	defer p.exitSyscall()
	k := p.k
	k.mu.Lock()
	pid := k.nextPid
	k.nextPid++
	k.mu.Unlock()

	mem := ustack.NewMemory(userMemWords)
	child := &Proc{
		k:   k,
		pid: pid,
		UID: p.UID, GID: p.GID, EUID: p.EUID, EGID: p.EGID,
		sid:      p.sid,
		subject:  p.subject,
		exec:     p.exec,
		cwd:      p.cwd,
		cwdPath:  p.cwdPath,
		root:     p.root,
		rootPath: p.rootPath,
		Env:      map[string]string{},
		fds:      make(map[int]*File),
		nextFd:   p.nextFd,
		mem:      mem,
		stack:    ustack.NewStack(mem, stackBase),
		as:       ustack.NewAddressSpace(uint64(pid)),
		ps:       p.ps.Clone(),
		handlers: make(map[int]func(*Proc, int)),
		blocked:  make(map[int]bool),
	}
	for key, v := range p.Env {
		child.Env[key] = v
	}
	for fd, f := range p.fds {
		child.fds[fd] = &File{
			Node: f.Node, Path: f.Path, pos: f.pos,
			res: resource{k: k, node: f.Node, path: f.Path},
		}
		k.FS.IncOpen(f.Node)
	}
	for _, m := range p.as.Mappings() {
		child.as.Map(m.Path, m.Size)
	}
	for sig, h := range p.handlers {
		child.handlers[sig] = h
	}
	k.mu.Lock()
	k.procs[pid] = child
	k.mu.Unlock()
	return child, nil
}

// Execve replaces the process image with the program at path: the binary
// is resolved with full mediation, FILE_EXEC is filtered, setuid bits take
// effect, and the address space is rebuilt with only the new binary mapped.
func (p *Proc) Execve(path string, env map[string]string) error {
	if err := p.enterSyscall(NrExecve); err != nil {
		return err
	}
	defer p.exitSyscall()
	res, err := p.resolve(NrExecve, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return err
	}
	node := res.Node
	if node.IsDir() {
		return vfs.ErrIsDir
	}
	if !vfs.CanAccess(node, p.EUID, p.EGID, false, false, true) {
		return vfs.ErrPerm
	}
	if err := p.pfFilter(pf.OpFileExec, node, res.Path, NrExecve); err != nil {
		return err
	}
	// setuid: effective uid becomes the binary owner's.
	if node.Mode&vfs.ModeSetuid != 0 {
		p.EUID = node.UID
	}
	p.exec = res.Path
	p.Env = map[string]string{}
	for k2, v := range env {
		p.Env[k2] = v
	}
	if p.mem != nil {
		p.mem.Recycle()
	}
	p.mem = ustack.NewMemory(userMemWords)
	p.stack = ustack.NewStack(p.mem, stackBase)
	p.as = ustack.NewAddressSpace(uint64(p.pid) * 3)
	p.as.Map(res.Path, 0)
	p.lang = ustack.LangNative
	p.interp = nil
	p.interpHead = 0
	return nil
}

// Exit terminates the process, releasing its descriptors.
func (p *Proc) Exit(code int) {
	if p.exited {
		return
	}
	// No mediation follows exit's entry bookkeeping; release the syscall
	// scratch immediately (enterSyscall released it itself on denial).
	if err := p.enterSyscall(NrExit, uint64(code)); err == nil {
		p.exitSyscall()
	}
	for fd, f := range p.fds {
		if f.Node != nil {
			p.k.FS.DecOpen(f.Node)
		}
		// Closing the endpoints is what makes owner death observable: bound
		// names become squattable, and clients of a dead server get
		// connection-refused instead of a descriptor to nobody.
		f.closeEndpoints()
		delete(p.fds, fd)
	}
	p.exited = true
	// Recycle the address space; the process can make no further use of it
	// (every syscall checks exited first).
	mem := p.mem
	p.mem = nil
	p.stack = nil
	p.interp = nil
	if mem != nil {
		mem.Recycle()
	}
	p.ExitCode = code
	p.k.mu.Lock()
	delete(p.k.procs, p.pid)
	p.k.mu.Unlock()
}

// Exited reports whether the process has exited.
func (p *Proc) Exited() bool { return p.exited }

// Sigaction registers handler for sig. A nil handler resets to default.
func (p *Proc) Sigaction(sig int, handler func(*Proc, int)) error {
	if err := p.enterSyscall(NrSigaction, uint64(sig)); err != nil {
		return err
	}
	defer p.exitSyscall()
	if sig == SIGKILL || sig == SIGSTOP {
		return vfs.ErrInval
	}
	if handler == nil {
		delete(p.handlers, sig)
	} else {
		p.handlers[sig] = handler
	}
	return nil
}

// Sigprocmask blocks or unblocks a signal.
func (p *Proc) Sigprocmask(sig int, block bool) error {
	if err := p.enterSyscall(NrSigprocmask, uint64(sig)); err != nil {
		return err
	}
	defer p.exitSyscall()
	if block {
		p.blocked[sig] = true
	} else {
		delete(p.blocked, sig)
	}
	return nil
}

// Sigreturn is issued by the signal trampoline when a handler returns; the
// PF syscallbegin chain observes it to clear in-handler state (rule R12).
func (p *Proc) Sigreturn() error {
	if err := p.enterSyscall(NrSigreturn); err != nil {
		return err
	}
	p.exitSyscall()
	return nil
}

// Kill sends sig to the process with the given pid. Delivery — not the
// send — is the mediated operation: the Process Firewall filters
// PROCESS_SIGNAL_DELIVERY into the *target's* context, since the firewall
// protects the receiving process (paper Table 2, last row).
func (p *Proc) Kill(pid, sig int) error {
	if err := p.enterSyscall(NrKill, uint64(pid), uint64(sig)); err != nil {
		return err
	}
	defer p.exitSyscall()
	target, ok := p.k.Proc(pid)
	if !ok || target.exited {
		return ErrNoProc
	}
	// DAC: a non-root sender must match the target's uid.
	if p.EUID != 0 && p.EUID != target.UID && p.UID != target.UID {
		return vfs.ErrPerm
	}
	return p.k.deliverSignal(target, sig)
}

// deliverSignal delivers sig to target synchronously, consulting the
// Process Firewall with the target as subject. The handler runs on the
// caller's flow; nested deliveries model handler preemption.
func (k *Kernel) deliverSignal(target *Proc, sig int) error {
	if target.blocked[sig] && sig != SIGKILL && sig != SIGSTOP {
		// Blocked signals stay pending; the simulation drops them, which
		// suffices for the race experiments (a blocked signal cannot
		// interrupt the handler, which is the defense being modeled).
		return nil
	}
	handler, hasHandler := target.handlers[sig]
	if pfe := k.PF; pfe != nil && pfe.MayFilter(pf.OpSignalDeliver) {
		// Delivery mediates in the *target's* context: borrow a scratch from
		// the target's pool (pushed above any syscall it is presently inside
		// — delivery is synchronous on this flow, so the LIFO holds) and
		// release it before the handler runs its own syscalls.
		ms := target.acquireMed(NrInvalid)
		pfe.StartBatch(&ms.b, target)
		ms.batchActive = true
		ms.sigRes = signalResource{sig: sig, target: target}
		ms.sig = pf.SignalInfo{
			Signal:      sig,
			HasHandler:  hasHandler,
			Unblockable: sig == SIGKILL || sig == SIGSTOP,
		}
		ms.req.Reset()
		ms.req.Proc = target
		ms.req.Op = pf.OpSignalDeliver
		ms.req.Obj = &ms.sigRes
		ms.req.Sig = &ms.sig
		v := ms.b.Filter(&ms.req)
		target.exitSyscall()
		if v == pf.VerdictDrop {
			return ErrPFDenied
		}
	}
	if sig == SIGKILL {
		target.Exit(128 + sig)
		return nil
	}
	if !hasHandler {
		return nil // default action ignored in the simulation
	}
	target.sigDepth++
	handler(target, sig)
	target.sigDepth--
	// The signal trampoline issues sigreturn on handler exit.
	return target.Sigreturn()
}

// SigDepth reports the current handler nesting depth; exploit checkers use
// it to detect re-entrancy.
func (p *Proc) SigDepth() int { return p.sigDepth }

// Chroot confines the process (and its descendants) to the subtree at
// path — the namespace-isolation defense the paper's related work compares
// against (Section 2.2: "privilege separation and namespace isolation
// (using chroot) ... enable customized permission enforcement", at the
// cost of manual program restructuring). Root only, as on UNIX.
func (p *Proc) Chroot(path string) error {
	if err := p.enterSyscall(NrChroot); err != nil {
		return err
	}
	defer p.exitSyscall()
	if p.EUID != 0 {
		return vfs.ErrPerm
	}
	res, err := p.resolve(NrChroot, path, vfs.ResolveOpts{FollowFinal: true})
	if err != nil {
		return err
	}
	if !res.Node.IsDir() {
		return vfs.ErrNotDir
	}
	p.root = res.Node
	p.rootPath = res.Path
	// POSIX leaves the cwd alone (the classic escape); we mirror that and
	// let callers Chdir explicitly, so tests can demonstrate both the
	// confinement and its known weaknesses.
	return nil
}
