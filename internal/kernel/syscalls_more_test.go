package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

func TestMkdirRmdirSyscalls(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	if err := user.Mkdir("/tmp/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := user.Stat("/tmp/dir")
	if err != nil || st.Type != vfs.TypeDir || st.UID != 1000 {
		t.Fatalf("mkdir result: %+v, %v", st, err)
	}
	if err := user.Mkdir("/tmp/dir", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	// Non-writable parent.
	if err := user.Mkdir("/etc/dir", 0o755); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("mkdir in /etc: %v", err)
	}
	if err := user.Rmdir("/tmp/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Stat("/tmp/dir"); !errors.Is(err, vfs.ErrNotExist) {
		t.Error("dir survived rmdir")
	}
	if err := user.Rmdir("/tmp/absent"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("rmdir absent: %v", err)
	}
}

func TestLinkSyscall(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	fd, _ := user.Open("/tmp/orig", O_CREAT|O_RDWR, 0o600)
	user.Write(fd, []byte("data"))
	user.Close(fd)
	if err := user.Link("/tmp/orig", "/tmp/alias"); err != nil {
		t.Fatal(err)
	}
	a, _ := user.Stat("/tmp/orig")
	b, err := user.Stat("/tmp/alias")
	if err != nil || a.Ino != b.Ino {
		t.Errorf("hard link inodes: %d vs %d, %v", a.Ino, b.Ino, err)
	}
	if err := user.Link("/tmp/orig", "/tmp/alias"); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("duplicate link: %v", err)
	}
	if err := user.Link("/tmp/absent", "/tmp/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("link from absent: %v", err)
	}
	// Cannot link into a non-writable directory.
	if err := user.Link("/tmp/orig", "/etc/alias"); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("link into /etc: %v", err)
	}
}

func TestChmodChownSyscalls(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	fd, _ := user.Open("/tmp/mine", O_CREAT|O_RDWR, 0o600)
	user.Close(fd)
	if err := user.Chmod("/tmp/mine", 0o644); err != nil {
		t.Fatal(err)
	}
	st, _ := user.Stat("/tmp/mine")
	if st.Mode != 0o644 {
		t.Errorf("mode = %o", st.Mode)
	}
	// Only the owner (or root) may chmod.
	other := k.NewProc(ProcSpec{UID: 1001, GID: 1001, Label: "user_t", Exec: "/bin/sh"})
	if err := other.Chmod("/tmp/mine", 0o777); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("non-owner chmod: %v", err)
	}
	// Chown is root-only.
	if err := user.Chown("/tmp/mine", 0, 0); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("non-root chown: %v", err)
	}
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := root.Chown("/tmp/mine", 33, 33); err != nil {
		t.Fatal(err)
	}
	st, _ = user.Stat("/tmp/mine")
	if st.UID != 33 || st.GID != 33 {
		t.Errorf("owner = %d:%d", st.UID, st.GID)
	}
}

func TestChmodThroughSymlinkFollows(t *testing.T) {
	// chmod(2) follows symlinks — the property E6's squat abuses.
	k := newWorld(t)
	user := newUser(k)
	fd, _ := user.Open("/tmp/target", O_CREAT|O_RDWR, 0o600)
	user.Close(fd)
	user.Symlink("/tmp/target", "/tmp/link")
	if err := user.Chmod("/tmp/link", 0o666); err != nil {
		t.Fatal(err)
	}
	st, _ := user.Lstat("/tmp/target")
	if st.Mode != 0o666 {
		t.Errorf("target mode = %o, want 0666", st.Mode)
	}
}

func TestResourceAdapters(t *testing.T) {
	// Exercise the pf.Resource adapters via a recording engine.
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	var seen []pf.LogRecord
	engine.Logger = func(r pf.LogRecord) { seen = append(seen, r) }
	engine.Append("input", &pf.Rule{Ops: pf.NewOpSet(pf.OpLnkFileRead), Target: &pf.LogTarget{Prefix: "link"}})
	engine.Append("input", &pf.Rule{Ops: pf.NewOpSet(pf.OpSignalDeliver), Target: &pf.LogTarget{Prefix: "sig"}})
	k.AttachPF(engine)

	user := newUser(k)
	user.Symlink("/etc/passwd", "/tmp/ln")
	root := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if _, err := root.Open("/tmp/ln", O_RDONLY, 0); err != nil {
		t.Fatal(err)
	}
	var linkRec *pf.LogRecord
	for i := range seen {
		if seen[i].Prefix == "link" {
			linkRec = &seen[i]
		}
	}
	if linkRec == nil {
		t.Fatal("no link-read record")
	}
	if linkRec.Path != "/tmp/ln" || linkRec.ResourceID == 0 {
		t.Errorf("record = %+v", *linkRec)
	}

	// Signal resource adapter: id is the signal number, class process.
	victim := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	victim.Sigaction(SIGALRM, func(*Proc, int) {})
	seen = nil
	if err := root.Kill(victim.PID(), SIGALRM); err != nil {
		t.Fatal(err)
	}
	var sigRec *pf.LogRecord
	for i := range seen {
		if seen[i].Prefix == "sig" {
			sigRec = &seen[i]
		}
	}
	if sigRec == nil {
		t.Fatal("no signal record")
	}
	if sigRec.ResourceID != SIGALRM {
		t.Errorf("signal resource id = %d, want %d", sigRec.ResourceID, SIGALRM)
	}
}

func TestProcAccessors(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if p.Kernel() != k {
		t.Error("Kernel accessor")
	}
	if p.Label() != "sshd_t" {
		t.Errorf("Label = %q", p.Label())
	}
	p.SetLabel("httpd_t")
	if p.Label() != "httpd_t" {
		t.Error("SetLabel failed")
	}
	if p.Cwd() != k.FS.Root() {
		t.Error("default cwd should be /")
	}
	if got := mac.Label(p.Label()); got != "httpd_t" {
		t.Errorf("label type round trip: %q", got)
	}
}

func TestPushPopFrame(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := p.PushFrame("/usr/sbin/sshd", 0x10); err != nil {
		t.Fatal(err)
	}
	if err := p.PushFrame("/usr/sbin/sshd", 0x20); err != nil {
		t.Fatal(err)
	}
	if err := p.PopFrame(); err != nil {
		t.Fatal(err)
	}
	if err := p.PushFrame("/not/mapped", 0x1); err == nil {
		t.Error("PushFrame into unmapped binary should fail")
	}
	if err := p.SyscallSite("/not/mapped", 0x1); err == nil {
		t.Error("SyscallSite into unmapped binary should fail")
	}
}

func TestInterpGuards(t *testing.T) {
	k := newWorld(t)
	p := newRoot(k, "sshd_t", "/usr/sbin/sshd")
	if err := p.InterpPush("x", 1); err == nil {
		t.Error("InterpPush on non-interpreter should fail")
	}
	if err := p.InterpPop(); err == nil {
		t.Error("InterpPop on non-interpreter should fail")
	}
}

func TestBindErrors(t *testing.T) {
	k := newWorld(t)
	user := newUser(k)
	// Bind over an existing name fails.
	fd, _ := user.Open("/tmp/taken", O_CREAT|O_RDWR, 0o600)
	user.Close(fd)
	if _, err := user.Bind("/tmp/taken", 0o666); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("bind over file: %v", err)
	}
	// Bind in a non-writable directory fails.
	if _, err := user.Bind("/etc/sock", 0o666); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("bind in /etc: %v", err)
	}
}

func TestRenamePFRules(t *testing.T) {
	// Rename is mediated: a syscallbegin rule can veto it.
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	engine.Append("syscallbegin", &pf.Rule{
		Matches: []pf.Match{&pf.SyscallArgsMatch{Arg: 0, Equal: uint64(NrRename)}},
		Target:  pf.Drop(),
	})
	k.AttachPF(engine)
	user := newUser(k)
	fd, _ := user.Open("/tmp/a", O_CREAT|O_RDWR, 0o600)
	user.Close(fd)
	if err := user.Rename("/tmp/a", "/tmp/b"); !errors.Is(err, ErrPFDenied) {
		t.Errorf("rename: %v, want ErrPFDenied", err)
	}
}
