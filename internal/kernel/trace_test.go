package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
)

// traceWorld attaches an optimized engine with a positioned DROP rule on
// tmp_t opens plus a DIR_SEARCH ACCEPT (so path-walk mediations produce
// spans too), and turns tracing on for every syscall.
func traceWorld(t *testing.T, traceEvery int) (*Kernel, *obs.Registry) {
	t.Helper()
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	if _, err := pftables.InstallAt(pfEnv(k), engine,
		`pftables -o FILE_OPEN -d tmp_t -s user_t -j DROP`,
		pf.Pos{File: "trap.pft", Line: 7, Col: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := pftables.InstallAt(pfEnv(k), engine,
		`pftables -o DIR_SEARCH -j ACCEPT`,
		pf.Pos{File: "trap.pft", Line: 9, Col: 1}); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)
	reg := obs.New()
	k.AttachObs(reg, ObsConfig{SampleEvery: 1, TraceEvery: traceEvery})
	return k, reg
}

func TestTraceSpanProvenance(t *testing.T) {
	k, _ := traceWorld(t, 1)
	p := newUser(k)

	// Seed the file as root (httpd_t is not matched by the DROP rule), then
	// have the user trip it.
	root := newRoot(k, "httpd_t", "/usr/bin/apache2")
	fd, err := root.Open("/tmp/trap", O_CREAT|O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	_ = root.Close(fd)

	tr := k.Tracer()
	if tr == nil {
		t.Fatal("tracer not attached")
	}
	before := tr.Total()
	if _, err := p.Open("/tmp/trap", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("user open /tmp/trap: %v, want ErrPFDenied", err)
	}
	if tr.Total() <= before {
		t.Fatal("no spans published for traced syscall")
	}

	spans := tr.Snapshot()
	var drop *obs.Span
	var walks []obs.Span
	for i := range spans {
		sp := spans[i]
		if sp.PID != p.PID() {
			continue
		}
		switch {
		case sp.Op == "FILE_OPEN" && sp.Path == "/tmp/trap" && sp.Verdict == "DROP":
			drop = &spans[i]
		case sp.Op == "DIR_SEARCH":
			walks = append(walks, sp)
		}
	}
	if drop == nil {
		t.Fatalf("no DROP span for /tmp/trap in snapshot: %+v", spans)
	}

	// Deciding-rule provenance: the positioned DROP rule.
	if drop.Flags&obs.SpanRuleDecided == 0 {
		t.Error("DROP span missing SpanRuleDecided")
	}
	if drop.RuleFile != "trap.pft" || drop.RuleLine != 7 {
		t.Errorf("rule src = %s:%d, want trap.pft:7", drop.RuleFile, drop.RuleLine)
	}
	if got := drop.RuleSrc(); got != "trap.pft:7:1" {
		t.Errorf("RuleSrc() = %q, want trap.pft:7:1", got)
	}
	if drop.RuleTarget != "DROP" {
		t.Errorf("rule target = %q, want DROP", drop.RuleTarget)
	}
	if drop.RulesEvaluated == 0 {
		t.Error("DROP span records zero rules evaluated")
	}

	// Chain path: every request enters through the input chain.
	chains := drop.Chains()
	if len(chains) == 0 || chains[0] != "input" {
		t.Errorf("chain path = %v, want to start at input", chains)
	}

	// Identity and batching.
	if drop.Subject != "user_t" {
		t.Errorf("subject = %q, want user_t", drop.Subject)
	}
	if drop.Syscall != "open" {
		t.Errorf("syscall = %q, want open", drop.Syscall)
	}
	if len(walks) == 0 {
		t.Fatal("no DIR_SEARCH spans from the path walk")
	}
	if drop.Flags&obs.SpanBatch == 0 {
		t.Error("final open span should be marked batch (path walk spanned first)")
	}
	if drop.BatchIndex == 0 {
		t.Error("final open span should not be batch index 0")
	}
	for _, w := range walks {
		if w.SyscallSeq != drop.SyscallSeq {
			t.Errorf("walk span syscall_seq %d != open span %d", w.SyscallSeq, drop.SyscallSeq)
		}
		if w.Verdict != "ACCEPT" {
			t.Errorf("walk verdict = %q, want ACCEPT", w.Verdict)
		}
	}

	// Latency split: the gauntlet ran, and totals include it.
	if drop.GauntletNs == 0 {
		t.Error("gauntlet latency not measured")
	}
	if drop.TotalNs < drop.GauntletNs {
		t.Errorf("total %dns < gauntlet %dns", drop.TotalNs, drop.GauntletNs)
	}
	if drop.TimeUnixNano == 0 {
		t.Error("span missing timestamp")
	}

	// Dentry-cache provenance: the walk that located /tmp/trap missed or
	// hit the dcache; either way the bits must be attributed somewhere in
	// this syscall's spans.
	var sawDc bool
	for _, sp := range append(walks, *drop) {
		if sp.Flags&(obs.SpanDcacheHit|obs.SpanDcacheMiss) != 0 {
			sawDc = true
		}
	}
	if !sawDc {
		t.Error("no span carries dcache attribution bits")
	}

	// A repeat open walks a warm dcache: some span must now record a hit.
	if _, err := p.Open("/tmp/trap", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("repeat open: %v, want ErrPFDenied", err)
	}
	var warmHit bool
	for _, sp := range tr.Snapshot() {
		if sp.PID == p.PID() && sp.Flags&obs.SpanDcacheHit != 0 {
			warmHit = true
		}
	}
	if !warmHit {
		t.Error("warm re-walk produced no dcache-hit span")
	}
}

func TestTraceAdvCacheBits(t *testing.T) {
	k := newWorld(t)
	engine := pf.New(k.Policy, pf.Optimized())
	// An adversary-sensitive rule forces EvalCtx to consult the MAC
	// adversary cache during collection.
	if _, err := pftables.InstallAt(pfEnv(k), engine,
		`pftables -o FILE_OPEN -m ADV_ACCESS --write --is true -j DROP`,
		pf.Pos{File: "adv.pft", Line: 1, Col: 1}); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)
	reg := obs.New()
	k.AttachObs(reg, ObsConfig{SampleEvery: 1, TraceEvery: 1})

	root := newRoot(k, "httpd_t", "/usr/bin/apache2")
	// First open computes adversary accessibility (miss), second is served
	// from the snapshot (hit).
	if _, err := root.Open("/etc/passwd", O_RDONLY, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Open("/etc/passwd", O_RDONLY, 0); err != nil {
		t.Fatal(err)
	}

	var sawMiss, sawHit bool
	for _, sp := range k.Tracer().Snapshot() {
		if sp.Op != "FILE_OPEN" {
			continue
		}
		if sp.Flags&obs.SpanAdvCacheMiss != 0 {
			sawMiss = true
		}
		if sp.Flags&obs.SpanAdvCacheHit != 0 {
			sawHit = true
		}
	}
	if !sawMiss {
		t.Error("no span recorded an adversary-cache miss")
	}
	if !sawHit {
		t.Error("no span recorded an adversary-cache hit")
	}
}

func TestTraceDisabledNoTracer(t *testing.T) {
	k := newWorld(t)
	reg := obs.New()
	k.AttachObs(reg, ObsConfig{SampleEvery: 1}) // TraceEvery zero: disabled
	if k.Tracer() != nil {
		t.Fatal("tracer attached with TraceEvery=0")
	}
	p := newUser(k)
	fd, err := p.Open("/tmp/f", O_CREAT|O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Close(fd)
}

func TestTraceSampling(t *testing.T) {
	k, _ := traceWorld(t, 4) // every 4th syscall
	// Three syscalls per iteration so the power-of-two sample mask does
	// not alias onto a single syscall kind in the loop.
	p := newRoot(k, "httpd_t", "/usr/bin/apache2")
	for i := 0; i < 64; i++ {
		fd, err := p.Open("/etc/passwd", O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Fstat(fd); err != nil {
			t.Fatal(err)
		}
		_ = p.Close(fd)
	}
	total := k.Tracer().Total()
	if total == 0 {
		t.Fatal("sampled tracing produced no spans")
	}
	// 192 syscalls at 1-in-4 sampling: a quarter of them span; each open
	// spans several mediations, but far fewer publish than tracing
	// everything would.
	every1 := uint64(0)
	{
		k2, _ := traceWorld(t, 1)
		p2 := newRoot(k2, "httpd_t", "/usr/bin/apache2")
		for i := 0; i < 64; i++ {
			fd, err := p2.Open("/etc/passwd", O_RDONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p2.Fstat(fd); err != nil {
				t.Fatal(err)
			}
			_ = p2.Close(fd)
		}
		every1 = k2.Tracer().Total()
	}
	if total*2 >= every1 {
		t.Errorf("1-in-4 sampling published %d spans, full tracing %d; want far fewer", total, every1)
	}
}
