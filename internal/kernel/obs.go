package kernel

import (
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
)

// kernelObs is the kernel's attached instrumentation: a per-syscall
// counter array indexed directly by syscall number and a sampled
// histogram over the whole mediation gauntlet (DAC → MAC → PF) of one
// object access. As in the PF engine, one atomic pointer load decides
// whether any of it runs.
type kernelObs struct {
	syscalls [nrCount]*obs.Counter
	// sampleMask gates latency timestamps against MediationCount — a
	// counter mediate bumps regardless, so the sampling decision reuses
	// that read-modify-write instead of adding one.
	sampleMask uint64
	medLatency *obs.Histogram

	// tracer, when non-nil, receives decision-provenance spans from
	// syscalls selected by traceMask against SyscallCount (the same
	// piggybacked sampling as the latency histogram). Nil means tracing is
	// disabled and every syscall pays exactly one nil check.
	tracer    *obs.Tracer
	traceMask uint64
}

// ObsConfig configures kernel-level observability; SampleEvery, RingSize,
// and RecordAccepts are forwarded to the engine's AttachObs.
type ObsConfig struct {
	// SampleEvery throttles latency timestamps (default 16; 1 samples
	// everything). Shared by the kernel mediation histogram and the PF
	// gauntlet histograms.
	SampleEvery int
	// RingSize is the PF flight-recorder capacity (see pf.ObsConfig).
	RingSize int
	// RecordAccepts mirrors pf.ObsConfig.RecordAccepts.
	RecordAccepts bool
	// TraceEvery samples one syscall in TraceEvery for decision-provenance
	// tracing (every request the sampled syscall mediates carries a span).
	// 0 disables tracing entirely; 1 traces every syscall.
	TraceEvery int
	// TraceRing is the span flight-recorder capacity (default 256).
	TraceRing int
}

// AttachObs registers the whole mediation stack's metric series on reg:
// kernel syscall/mediation counters and latency, the vfs dcache
// statistics, the MAC adversary-cache statistics, the IPC registry
// statistics, and — when a PF engine is attached — the engine's own
// series. Call after AttachPF.
func (k *Kernel) AttachObs(reg *obs.Registry, cfg ObsConfig) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 16
	}
	ob := &kernelObs{
		sampleMask: obs.SampleMask(cfg.SampleEvery),
		medLatency: reg.Histogram("kernel_mediation_latency_ns",
			"Sampled latency of one object-access mediation (DAC, MAC, PF), in nanoseconds."),
	}
	if cfg.TraceEvery > 0 {
		ob.tracer = reg.Tracer("pf_spans", obs.TraceConfig{RingSize: cfg.TraceRing})
		ob.traceMask = obs.SampleMask(cfg.TraceEvery)
		reg.CounterFunc("trace_spans_total",
			"Decision-provenance spans published.", ob.tracer.Total)
		reg.CounterFunc("trace_span_drops_total",
			"Spans dropped on full subscriber buffers.", ob.tracer.Dropped)
		reg.GaugeFunc("trace_subscribers",
			"Live span-stream subscriptions.", func() uint64 {
				return uint64(ob.tracer.Subscribers())
			})
	}
	for nr := Syscall(1); nr < nrCount; nr++ {
		ob.syscalls[nr] = reg.Counter("kernel_syscalls_total",
			"Syscalls dispatched by number.", obs.L("nr", nr.String()))
	}
	reg.CounterFunc("kernel_mediations_total",
		"Object accesses mediated during path resolution and IPC.", k.MediationCount.Load)

	fs := k.FS
	reg.CounterFunc("vfs_resolutions_total", "Path resolutions.", fs.Resolutions.Load)
	reg.CounterFunc("vfs_components_total", "Path components walked.", fs.Components.Load)
	reg.CounterFunc("vfs_dcache_hits_total", "Dentry-cache hits.", fs.DcacheHits.Load)
	reg.CounterFunc("vfs_dcache_misses_total", "Dentry-cache misses.", fs.DcacheMisses.Load)
	reg.CounterFunc("vfs_dcache_invalidations_total",
		"Directory-generation bumps invalidating cached dentries.", fs.DcacheInvalidations.Load)
	reg.CounterFunc("vfs_dcache_purges_total",
		"Wholesale dentry-cache purges at the entry cap.", fs.DcachePurges.Load)

	pol := k.Policy
	reg.CounterFunc("mac_adv_cache_hits_total",
		"Adversary-accessibility lookups served from the snapshot.", pol.AdvCacheHits.Load)
	reg.CounterFunc("mac_adv_cache_misses_total",
		"Adversary-accessibility lookups recomputed from the policy.", pol.AdvCacheMisses.Load)
	reg.GaugeFunc("mac_adv_epoch",
		"Adversary-cache epoch (policy edits that invalidated the snapshot).", pol.AdvEpoch)

	st := &k.IPC.Stats
	reg.CounterFunc("ipc_binds_total", "Socket binds by namespace.", st.BindsFile.Load, obs.L("ns", "fs"))
	reg.CounterFunc("ipc_binds_total", "Socket binds by namespace.", st.BindsAbstract.Load, obs.L("ns", "abstract"))
	reg.CounterFunc("ipc_binds_total", "Socket binds by namespace.", st.BindsPort.Load, obs.L("ns", "port"))
	reg.CounterFunc("ipc_connects_total", "Connections established.", st.Connects.Load)
	reg.CounterFunc("ipc_backlog_drops_total", "Connects refused on a full backlog.", st.BacklogDrops.Load)
	reg.CounterFunc("ipc_bytes_queued_total", "Bytes queued by transport.", st.StreamBytes.Load, obs.L("kind", "stream"))
	reg.CounterFunc("ipc_bytes_queued_total", "Bytes queued by transport.", st.FifoBytes.Load, obs.L("kind", "fifo"))

	k.obs.Store(ob)
	if k.PF != nil {
		k.PF.AttachObs(reg, pf.ObsConfig{
			SampleEvery:   cfg.SampleEvery,
			RingSize:      cfg.RingSize,
			RecordAccepts: cfg.RecordAccepts,
		})
	}
}

// Tracer returns the attached decision-provenance tracer, or nil when
// observability is not attached or tracing is disabled.
func (k *Kernel) Tracer() *obs.Tracer {
	if ob := k.obs.Load(); ob != nil {
		return ob.tracer
	}
	return nil
}
