package kernel

import (
	"errors"
	"fmt"

	"pfirewall/internal/ipc"
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// ipcResource adapts an IPC endpoint to pf.Resource and pf.SockResource.
// For filesystem sockets it carries the socket inode's identity (label,
// inode number, path) so label- and identifier-based rules written against
// the file keep working, while the socket context modules (SOCK_NS, PORT,
// PEER_CRED) see the rendezvous namespace and the credential captured on
// the other end — the context no namespace squatter can forge.
type ipcResource struct {
	sid    mac.SID
	id     uint64
	path   string
	class  mac.Class
	owner  int
	ns     ipc.NS
	port   uint16
	portOK bool
	peer   ipc.Cred // held by value so scratch reuse carries no pointer
	peerOK bool
}

func (r *ipcResource) SID() mac.SID                    { return r.sid }
func (r *ipcResource) ID() uint64                      { return r.id }
func (r *ipcResource) Path() string                    { return r.path }
func (r *ipcResource) Class() mac.Class                { return r.class }
func (r *ipcResource) OwnerUID() int                   { return r.owner }
func (r *ipcResource) LinkTargetOwnerUID() (int, bool) { return 0, false }

// SockNS implements pf.SockResource.
func (r *ipcResource) SockNS() (string, bool) { return r.ns.String(), true }

// SockPort implements pf.SockResource.
func (r *ipcResource) SockPort() (uint16, bool) { return r.port, r.portOK }

// PeerCred implements pf.SockResource.
func (r *ipcResource) PeerCred() (pid, uid, gid int, ok bool) {
	if !r.peerOK {
		return 0, 0, 0, false
	}
	return r.peer.PID, r.peer.UID, r.peer.GID, true
}

// fromMeta fills the common identity fields from endpoint metadata,
// overwriting all previous state. The display path was precomputed at bind
// time, so filling a scratch resource performs no allocation.
func (r *ipcResource) fromMeta(m ipc.Meta, class mac.Class) {
	*r = ipcResource{sid: m.SID, id: m.ID, path: m.Display, class: class, ns: m.NS}
	if m.NS == ipc.NSPort {
		r.port = m.Port
		r.portOK = true
	}
}

// fromLis describes a rendezvous point for bind/listen/connect mediation.
// The peer credential is the listener's binder (what a client will observe).
func (r *ipcResource) fromLis(l *ipc.Listener) {
	r.fromMeta(l.Meta(), mac.ClassUnixStreamSocket)
	r.peer = l.Owner()
	r.peerOK = true
	r.owner = r.peer.UID
}

// fromConn describes one end of a connected pair for accept/send/recv
// mediation; the peer credential is the remote end's, captured at connect
// time (SO_PEERCRED).
func (r *ipcResource) fromConn(c *ipc.Conn) {
	r.fromMeta(c.Meta(), mac.ClassUnixStreamSocket)
	r.peer = c.PeerCred()
	r.peerOK = true
	r.owner = r.peer.UID
}

// connResource is the allocating form of fromConn, for the rare mediation
// outside an active syscall scratch.
func connResource(c *ipc.Conn) *ipcResource {
	r := &ipcResource{}
	r.fromConn(c)
	return r
}

// cred snapshots the process's effective credentials for SO_PEERCRED.
func (p *Proc) cred() ipc.Cred { return ipc.Cred{PID: p.pid, UID: p.EUID, GID: p.EGID} }

// BindAbstract binds name in the abstract socket namespace — no inode, no
// DAC: first-come first-served, the classic squat surface the Process
// Firewall compensates for with PEER_CRED/SOCK_NS rules.
func (p *Proc) BindAbstract(name string) (int, error) {
	if err := p.enterSyscall(NrBind); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	l, err := p.k.IPC.BindAbstract(name, p.sid, p.cred())
	if err != nil {
		return -1, err
	}
	if err := p.pfFilterLis(pf.OpSocketBind, l, NrBind); err != nil {
		l.Close()
		return -1, err
	}
	fd := p.installFd(nil, "@"+name)
	p.fds[fd].Lis = l
	return fd, nil
}

// BindPort binds a TCP-like port. Closing the listener vacates the port
// immediately (SO_REUSEADDR semantics), so a daemon restart leaves a
// window in which any process may squat its port.
func (p *Proc) BindPort(port uint16) (int, error) {
	if err := p.enterSyscall(NrBind, uint64(port)); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	l, err := p.k.IPC.BindPort(port, p.sid, p.cred())
	if err != nil {
		return -1, err
	}
	if err := p.pfFilterLis(pf.OpSocketBind, l, NrBind); err != nil {
		l.Close()
		return -1, err
	}
	fd := p.installFd(nil, fmt.Sprintf(":%d", port))
	p.fds[fd].Lis = l
	return fd, nil
}

// Listen marks the socket behind fd as accepting connections with a
// bounded backlog.
func (p *Proc) Listen(fd, backlog int) error {
	if err := p.enterSyscall(NrListen, uint64(fd), uint64(backlog)); err != nil {
		return err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return err
	}
	if f.Lis == nil {
		return vfs.ErrInval
	}
	if err := p.pfFilterLis(pf.OpSocketListen, f.Lis, NrListen); err != nil {
		return err
	}
	return f.Lis.Listen(backlog)
}

// Accept pops one pending connection off the listener's backlog. The
// Process Firewall mediates with the connecting peer's credentials; a DROP
// resets the pending connection (the client observes a closed peer).
func (p *Proc) Accept(fd int) (int, error) {
	if err := p.enterSyscall(NrAccept, uint64(fd)); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return -1, err
	}
	if f.Lis == nil {
		return -1, vfs.ErrInval
	}
	conn, err := f.Lis.Accept()
	if err != nil {
		return -1, err
	}
	if err := p.pfFilterConn(pf.OpSocketAccept, conn, NrAccept); err != nil {
		conn.Close()
		return -1, err
	}
	nfd := p.installFd(nil, f.Path)
	p.fds[nfd].Conn = conn
	return nfd, nil
}

// connectListener mediates and establishes a connection to l, returning
// the client end. res carries the identity the PF should see (for
// filesystem sockets, the socket inode's).
func (p *Proc) connectListener(l *ipc.Listener, res pf.Resource) (*ipc.Conn, error) {
	if err := p.pfFilterRes(pf.OpSocketConnect, res, NrConnect); err != nil {
		return nil, err
	}
	return p.k.IPC.Connect(l, p.cred())
}

// ConnectAbstract connects to an abstract-namespace socket.
func (p *Proc) ConnectAbstract(name string) (int, error) {
	if err := p.enterSyscall(NrConnect); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	l, ok := p.k.IPC.LookupAbstract(name)
	if !ok {
		return -1, ErrConnRefused
	}
	ms := p.curMed
	ms.ipcRes.fromLis(l)
	conn, err := p.connectListener(l, &ms.ipcRes)
	if err != nil {
		return -1, err
	}
	fd := p.installFd(nil, "@"+name)
	p.fds[fd].Conn = conn
	return fd, nil
}

// ConnectPort connects to a port-namespace socket.
func (p *Proc) ConnectPort(port uint16) (int, error) {
	if err := p.enterSyscall(NrConnect, uint64(port)); err != nil {
		return -1, err
	}
	defer p.exitSyscall()
	l, ok := p.k.IPC.LookupPort(port)
	if !ok {
		return -1, ErrConnRefused
	}
	ms := p.curMed
	ms.ipcRes.fromLis(l)
	conn, err := p.connectListener(l, &ms.ipcRes)
	if err != nil {
		return -1, err
	}
	fd := p.installFd(nil, fmt.Sprintf(":%d", port))
	p.fds[fd].Conn = conn
	return fd, nil
}

// Send writes data to the connected socket behind fd.
func (p *Proc) Send(fd int, data []byte) (int, error) {
	if err := p.enterSyscall(NrSendmsg, uint64(fd), uint64(len(data))); err != nil {
		return 0, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return 0, err
	}
	if f.Conn == nil {
		return 0, vfs.ErrInval
	}
	if err := p.pfFilterConn(pf.OpSocketSend, f.Conn, NrSendmsg); err != nil {
		return 0, err
	}
	return f.Conn.Send(data)
}

// Recv reads up to n bytes (n <= 0: everything buffered) from the
// connected socket behind fd.
func (p *Proc) Recv(fd, n int) ([]byte, error) {
	if err := p.enterSyscall(NrRecvmsg, uint64(fd)); err != nil {
		return nil, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return nil, err
	}
	if f.Conn == nil {
		return nil, vfs.ErrInval
	}
	if err := p.pfFilterConn(pf.OpSocketRecv, f.Conn, NrRecvmsg); err != nil {
		return nil, err
	}
	return f.Conn.Recv(n)
}

// Sendmmsg sends a burst of messages over the connected socket behind fd in
// one syscall: one gauntlet setup (batch snapshot, scratch acquisition)
// amortized over the per-message firewall checks. Messages are sent in
// order; like sendmmsg(2), a failure after at least one successful send
// reports the partial count instead of an error.
func (p *Proc) Sendmmsg(fd int, msgs [][]byte) (int, error) {
	if err := p.enterSyscall(NrSendmmsg, uint64(fd), uint64(len(msgs))); err != nil {
		return 0, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return 0, err
	}
	if f.Conn == nil {
		return 0, vfs.ErrInval
	}
	sent := 0
	for _, m := range msgs {
		if err := p.pfFilterConn(pf.OpSocketSend, f.Conn, NrSendmmsg); err != nil {
			if sent > 0 {
				return sent, nil
			}
			return 0, err
		}
		if _, err := f.Conn.Send(m); err != nil {
			if sent > 0 {
				return sent, nil
			}
			return 0, err
		}
		sent++
	}
	return sent, nil
}

// Recvmmsg receives up to max messages (each up to per bytes; per <= 0
// drains the buffer) from the connected socket behind fd, mediating each
// message under the single batch established at syscall entry. Returns the
// messages received before the stream emptied or a check failed, mirroring
// recvmmsg(2)'s partial-success contract.
func (p *Proc) Recvmmsg(fd, max, per int) ([][]byte, error) {
	if err := p.enterSyscall(NrRecvmmsg, uint64(fd), uint64(max)); err != nil {
		return nil, err
	}
	defer p.exitSyscall()
	f, err := p.getFd(fd)
	if err != nil {
		return nil, err
	}
	if f.Conn == nil {
		return nil, vfs.ErrInval
	}
	var out [][]byte
	for len(out) < max {
		if err := p.pfFilterConn(pf.OpSocketRecv, f.Conn, NrRecvmmsg); err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		data, err := f.Conn.Recv(per)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		if len(data) == 0 {
			break
		}
		out = append(out, data)
	}
	return out, nil
}

// ErrWouldBlock and friends are re-exported so callers need not import the
// ipc package to classify data-plane errors.
var (
	ErrWouldBlock = ipc.ErrWouldBlock
	ErrPeerClosed = ipc.ErrPeerClosed
)

// IsWouldBlock reports whether err is the non-blocking "try again" error.
func IsWouldBlock(err error) bool { return errors.Is(err, ipc.ErrWouldBlock) }
