package kernel

import (
	"errors"
	"testing"

	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/vfs"
)

// TestEptPrefilterTracksMmap pins the memoized entrypoint pre-filter against
// the kernel's real mapping path: mayMatchEpt caches "none of this process's
// mappings carry entrypoint rules" in PFState, and an mmap that loads a
// rule-bearing library must invalidate that memo (via the address-space
// mapping generation) or the entrypoint rule would silently never fire again
// for this process.
func TestEptPrefilterTracksMmap(t *testing.T) {
	k := newWorld(t)
	lib := k.FS.MustPath("/lib")
	if _, err := k.FS.CreateAt(lib, "libc.so", "/lib/libc.so", vfs.CreateOpts{Mode: 0o755}); err != nil {
		t.Fatal(err)
	}
	engine := pf.New(k.Policy, pf.Optimized())
	if _, err := pftables.Install(pfEnv(k), engine,
		`pftables -p /lib/libc.so -i 0x80 -s SYSHIGH -d ~{lib_t} -o FILE_OPEN -j DROP`); err != nil {
		t.Fatal(err)
	}
	k.AttachPF(engine)

	p := newRoot(k, "httpd_t", "/usr/bin/apache2")

	// Before the mapping exists the pre-filter says no and memoizes it.
	fd, err := p.Open("/etc/passwd", O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open before mmap: %v", err)
	}
	p.Close(fd)

	// Map the rule-bearing library through the kernel and enter via the
	// guarded entrypoint; the memoized "no" must not survive the mmap.
	lfd, err := p.Open("/lib/libc.so", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mmap(lfd); err != nil {
		t.Fatal(err)
	}
	if err := p.PushFrame("/lib/libc.so", 0x80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open("/etc/passwd", O_RDONLY, 0); !errors.Is(err, ErrPFDenied) {
		t.Fatalf("open after mmap through guarded entrypoint: %v, want ErrPFDenied", err)
	}
}
