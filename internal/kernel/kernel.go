package kernel

import (
	"sync"
	"sync/atomic"

	"pfirewall/internal/ipc"
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/vfs"
)

// Kernel is one simulated system: a filesystem, a MAC policy, a process
// table, and (optionally) a Process Firewall engine consulted after
// authorization, exactly as the paper hooks it behind LSM (Section 5.1).
type Kernel struct {
	FS       *vfs.FS
	Policy   *mac.Policy
	Contexts *mac.FileContexts

	// IPC holds the socket rendezvous namespaces (filesystem, abstract,
	// port) and the fifo byte queues backing the data plane.
	IPC *ipc.Registry

	// PF is the Process Firewall; nil disables it entirely (the DISABLED
	// column of Table 6).
	PF *pf.Engine

	// MACEnforcing turns MAC denials into errors. The default (false)
	// mirrors SELinux permissive mode, which keeps world setup terse while
	// adversary accessibility — what the PF consumes — still derives from
	// the policy.
	MACEnforcing bool

	mu      sync.Mutex
	procs   map[int]*Proc
	nextPid int

	// preHooks is published as an immutable snapshot: syscall dispatch
	// (runPreHooks, on every syscall) loads it with one atomic read and no
	// lock; registration and removal copy-on-write under hookMu.
	hookMu   sync.Mutex
	nextHook int
	preHooks atomic.Pointer[[]hookEntry]

	// SyscallCount counts every syscall dispatched, for benchmarks.
	SyscallCount atomic.Uint64
	// MediationCount counts individual mediated object accesses.
	MediationCount atomic.Uint64

	// obs is the attached observability instrumentation; nil (the
	// default) costs dispatch one predictable branch. See AttachObs.
	obs atomic.Pointer[kernelObs]
}

// SyscallHook observes (and may act at) a syscall boundary; adversary
// interleaving is built from these. Hooks run at syscall entry, after the
// per-syscall bookkeeping but before the operation takes effect — the
// moment a real scheduler could preempt the victim (paper Section 2.1).
type SyscallHook func(p *Proc, nr Syscall)

// hookEntry pairs a registered hook with its removal id. Entries are kept
// in registration order, so hooks fire deterministically (the map-based
// predecessor iterated in random order).
type hookEntry struct {
	id int
	h  SyscallHook
}

// New creates a kernel with an empty filesystem labeled by contexts.
func New(policy *mac.Policy, contexts *mac.FileContexts) *Kernel {
	return &Kernel{
		FS:       vfs.New(policy.SIDs(), contexts),
		Policy:   policy,
		Contexts: contexts,
		IPC:      ipc.NewRegistry(),
		procs:    make(map[int]*Proc),
		nextPid:  1,
	}
}

// AttachPF installs a Process Firewall engine.
func (k *Kernel) AttachPF(e *pf.Engine) { k.PF = e }

// AddPreSyscallHook registers a hook and returns its id for removal.
func (k *Kernel) AddPreSyscallHook(h SyscallHook) int {
	k.hookMu.Lock()
	defer k.hookMu.Unlock()
	k.nextHook++
	var old []hookEntry
	if p := k.preHooks.Load(); p != nil {
		old = *p
	}
	hooks := make([]hookEntry, len(old), len(old)+1)
	copy(hooks, old)
	hooks = append(hooks, hookEntry{id: k.nextHook, h: h})
	k.preHooks.Store(&hooks)
	return k.nextHook
}

// RemoveHook unregisters a hook.
func (k *Kernel) RemoveHook(id int) {
	k.hookMu.Lock()
	defer k.hookMu.Unlock()
	p := k.preHooks.Load()
	if p == nil {
		return
	}
	hooks := make([]hookEntry, 0, len(*p))
	for _, e := range *p {
		if e.id != id {
			hooks = append(hooks, e)
		}
	}
	k.preHooks.Store(&hooks)
}

// runPreHooks fires registered hooks for a syscall entry. The snapshot load
// is the only synchronization: no lock is taken on the dispatch path.
func (k *Kernel) runPreHooks(p *Proc, nr Syscall) {
	hooks := k.preHooks.Load()
	if hooks == nil {
		return
	}
	for _, e := range *hooks {
		e.h(p, nr)
	}
}

// Proc returns the process with the given pid.
func (k *Kernel) Proc(pid int) (*Proc, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// Procs returns a snapshot of all live processes.
func (k *Kernel) Procs() []*Proc {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		if !p.exited {
			out = append(out, p)
		}
	}
	return out
}

// LookupIno resolves a path (without mediation) to its inode number, the
// facility pftables uses to translate -f filenames at rule-install time.
func (k *Kernel) LookupIno(path string) (uint64, bool) {
	res, err := k.FS.Resolve(nil, path, vfs.ResolveOpts{FollowFinal: true}, nil)
	if err != nil || res.Node == nil {
		return 0, false
	}
	return uint64(res.Node.Ino), true
}

// resource adapts a vfs inode to pf.Resource.
type resource struct {
	k    *Kernel
	node *vfs.Inode
	path string
}

func (r *resource) SID() mac.SID { return r.node.SID }
func (r *resource) ID() uint64   { return uint64(r.node.Ino) }
func (r *resource) Path() string { return r.path }

func (r *resource) Class() mac.Class {
	switch r.node.Type {
	case vfs.TypeDir:
		return mac.ClassDir
	case vfs.TypeSymlink:
		return mac.ClassLnkFile
	case vfs.TypeSocket:
		return mac.ClassSockFile
	case vfs.TypeFifo:
		return mac.ClassFifoFile
	default:
		return mac.ClassFile
	}
}

func (r *resource) OwnerUID() int { return r.node.UID }

// LinkTargetOwnerUID resolves the symlink's target without mediation — the
// context module runs with kernel privilege (paper rule R8's
// C_TGT_DAC_OWNER context).
func (r *resource) LinkTargetOwnerUID() (int, bool) {
	if !r.node.IsSymlink() {
		return 0, false
	}
	res, err := r.k.FS.Resolve(nil, r.node.Target, vfs.ResolveOpts{FollowFinal: true}, nil)
	if err != nil || res.Node == nil {
		return 0, false
	}
	return res.Node.UID, true
}

// signalResource adapts a signal delivery to pf.Resource: the resource
// identifier is the signal number (paper Section 5.2: "resource identifier
// (signal or inode number)").
type signalResource struct {
	sig    int
	target *Proc
}

func (r *signalResource) SID() mac.SID                    { return r.target.sid }
func (r *signalResource) ID() uint64                      { return uint64(r.sig) }
func (r *signalResource) Path() string                    { return "" }
func (r *signalResource) Class() mac.Class                { return mac.ClassProcess }
func (r *signalResource) OwnerUID() int                   { return r.target.UID }
func (r *signalResource) LinkTargetOwnerUID() (int, bool) { return 0, false }
