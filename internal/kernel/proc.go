package kernel

import (
	"fmt"

	"pfirewall/internal/ipc"
	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/ustack"
	"pfirewall/internal/vfs"
)

// userMemWords sizes each process's simulated user memory. Kept modest so
// spawning a thousand workers (the Web1000 macrobenchmark) stays cheap, as
// lazily-faulted address spaces are on a real kernel.
const userMemWords = 1 << 14

// stackBase is where the frame-chain region starts in user memory.
const stackBase = 1 << 10

// interpArena is where interpreter frame structures live.
const interpArena = 1 << 13

// Proc is the simulated task structure. It implements pf.Process, giving
// the firewall introspective access to the process's user stack — state a
// sandbox could never trust, but which the Process Firewall may use because
// forging it only weakens the forger's own protection (paper Section 3).
type Proc struct {
	k   *Kernel
	pid int

	// Credentials. subject caches the label string for the sid so the
	// trace-span path never pays the SID-table lookup per span.
	UID, GID   int
	EUID, EGID int
	sid        mac.SID
	subject    string

	exec     string
	cwd      *vfs.Inode
	cwdPath  string
	root     *vfs.Inode // nil = global root (no chroot)
	rootPath string
	Env      map[string]string

	fds    map[int]*File
	nextFd int

	mem   *ustack.Memory
	stack *ustack.Stack
	as    *ustack.AddressSpace

	lang       ustack.Lang
	interpHead uint64
	interp     *ustack.InterpState

	ps *pf.ProcState

	// Mediation scratch: curMed is the in-flight syscall's medState (a LIFO
	// via medState.prev — signal-handler re-entry nests), medFree the
	// recycled pool, fileFree the open-file-description pool. All three ride
	// the single-flow invariant: a process mediates on its own flow, so no
	// locking is needed.
	curMed   *medState
	medFree  []*medState
	fileFree *File

	// Signal machinery.
	handlers map[int]func(*Proc, int)
	blocked  map[int]bool
	sigDepth int

	exited   bool
	ExitCode int
}

// File is an open file description. Socket descriptors additionally carry
// an IPC endpoint: Lis after bind (a rendezvous point that may be listening),
// Conn after connect/accept (one end of a connected pair). Abstract- and
// port-namespace sockets have no inode, so Node may be nil.
type File struct {
	Node *vfs.Inode
	Path string
	pos  int

	Lis  *ipc.Listener
	Conn *ipc.Conn

	// res is the descriptor's preresolved PF resource handle, filled once at
	// install time so fd-based syscalls (read/write/fstat/...) never rebuild
	// identity from the inode on the hot path.
	res resource

	// freeNext links recycled descriptions on the owning process's pool.
	freeNext *File
}

// ProcSpec parameterizes process creation.
type ProcSpec struct {
	UID, GID int
	Label    mac.Label
	Exec     string
	Cwd      string // absolute path; defaults to /
	Env      map[string]string
}

// NewProc creates a process. The binary named by Exec is mapped into the
// fresh address space so its entrypoint offsets resolve.
func (k *Kernel) NewProc(spec ProcSpec) *Proc {
	k.mu.Lock()
	pid := k.nextPid
	k.nextPid++
	k.mu.Unlock()

	mem := ustack.NewMemory(userMemWords)
	p := &Proc{
		k:   k,
		pid: pid,
		UID: spec.UID, GID: spec.GID, EUID: spec.UID, EGID: spec.GID,
		sid:      k.Policy.SIDs().SID(spec.Label),
		subject:  string(spec.Label),
		exec:     spec.Exec,
		Env:      map[string]string{},
		fds:      make(map[int]*File),
		nextFd:   3,
		mem:      mem,
		stack:    ustack.NewStack(mem, stackBase),
		as:       ustack.NewAddressSpace(uint64(pid)),
		ps:       pf.NewProcState(),
		handlers: make(map[int]func(*Proc, int)),
		blocked:  make(map[int]bool),
	}
	for k2, v := range spec.Env {
		p.Env[k2] = v
	}
	if spec.Exec != "" {
		p.as.Map(spec.Exec, 0)
	}
	cwd := spec.Cwd
	if cwd == "" {
		cwd = "/"
	}
	if res, err := k.FS.Resolve(nil, cwd, vfs.ResolveOpts{FollowFinal: true}, nil); err == nil {
		p.cwd = res.Node
		p.cwdPath = res.Path
	} else {
		p.cwd = k.FS.Root()
		p.cwdPath = "/"
	}
	k.mu.Lock()
	k.procs[pid] = p
	k.mu.Unlock()
	return p
}

// pf.Process implementation.

// PID implements pf.Process.
func (p *Proc) PID() int { return p.pid }

// SubjectSID implements pf.Process.
func (p *Proc) SubjectSID() mac.SID { return p.sid }

// ExecPath implements pf.Process.
func (p *Proc) ExecPath() string { return p.exec }

// UserRegs implements pf.Process.
func (p *Proc) UserRegs() ustack.Regs { return p.stack.Regs }

// UserMemory implements pf.Process.
func (p *Proc) UserMemory() *ustack.Memory { return p.mem }

// AddrSpace implements pf.Process.
func (p *Proc) AddrSpace() *ustack.AddressSpace { return p.as }

// Interp implements pf.Process.
func (p *Proc) Interp() (ustack.Lang, uint64) { return p.lang, p.interpHead }

// StackGen implements pf.Process: a generation stamp covering every user
// stack mutation (memory writes plus register-only changes). Paired with
// AddrSpace().Gen() it keys the firewall's entrypoint-unwind cache. Nil
// guards cover exited processes, whose stacks were recycled.
func (p *Proc) StackGen() uint64 {
	if p.mem == nil || p.stack == nil {
		return 0
	}
	return p.mem.Gen() + p.stack.Gen()
}

// PFState implements pf.Process.
func (p *Proc) PFState() *pf.ProcState { return p.ps }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Label returns the process's MAC label.
func (p *Proc) Label() mac.Label { return p.k.Policy.SIDs().Label(p.sid) }

// SetLabel relabels the process (domain transition).
func (p *Proc) SetLabel(l mac.Label) {
	p.sid = p.k.Policy.SIDs().SID(l)
	p.subject = string(l)
}

// Cwd returns the current working directory inode.
func (p *Proc) Cwd() *vfs.Inode { return p.cwd }

// Chdir changes the working directory (unmediated helper).
func (p *Proc) Chdir(path string) error {
	res, err := p.k.FS.Resolve(p.cwd, path, vfs.ResolveOpts{
		FollowFinal: true, CwdPath: p.cwdPath, Root: p.root, RootPath: p.rootPath,
	}, nil)
	if err != nil {
		return err
	}
	if !res.Node.IsDir() {
		return vfs.ErrNotDir
	}
	p.cwd = res.Node
	p.cwdPath = res.Path
	return nil
}

// --- simulated program-counter management --------------------------------

// SyscallSite positions the program counter at offset off within binary
// before issuing a system call, as compiled code would. The binary must be
// mapped (the main executable is mapped at creation; libraries via Mmap).
func (p *Proc) SyscallSite(binary string, off uint64) error {
	m, ok := p.as.FindByPath(binary)
	if !ok {
		return fmt.Errorf("kernel: %s not mapped in pid %d", binary, p.pid)
	}
	p.stack.SetPC(m.Base + off)
	return nil
}

// PushFrame records a function call at offset off within binary, growing
// the user stack's frame chain.
func (p *Proc) PushFrame(binary string, off uint64) error {
	m, ok := p.as.FindByPath(binary)
	if !ok {
		return fmt.Errorf("kernel: %s not mapped in pid %d", binary, p.pid)
	}
	return p.stack.Call(m.Base + off)
}

// PopFrame returns from the most recent PushFrame.
func (p *Proc) PopFrame() error { return p.stack.Ret() }

// BecomeInterpreter initializes interpreter frame structures for lang in
// this process's user memory (e.g. the PHP interpreter's call frames).
func (p *Proc) BecomeInterpreter(lang ustack.Lang) {
	p.lang = lang
	p.interpHead = interpArena
	p.interp = ustack.NewInterpState(lang, p.mem, interpArena, userMemWords-interpArena-1)
}

// InterpPush records interpreter entry into script at line.
func (p *Proc) InterpPush(script string, line int) error {
	if p.interp == nil {
		return fmt.Errorf("kernel: pid %d is not an interpreter", p.pid)
	}
	return p.interp.Push(script, line)
}

// InterpPop unwinds one interpreter frame.
func (p *Proc) InterpPop() error {
	if p.interp == nil {
		return fmt.Errorf("kernel: pid %d is not an interpreter", p.pid)
	}
	return p.interp.Pop()
}

// --- mediation -------------------------------------------------------------

// enterSyscall performs per-syscall bookkeeping: counters, PF state
// sequencing, mediation-scratch acquisition, the syscallbegin chain, and
// adversary interleave hooks. On success the caller owns the acquired
// scratch and must `defer p.exitSyscall()`; on error the scratch has
// already been released.
func (p *Proc) enterSyscall(nr Syscall, args ...uint64) error {
	if p.exited {
		return ErrExited
	}
	n := p.k.SyscallCount.Add(1)
	ob := p.k.obs.Load()
	if ob != nil && nr > 0 && nr < nrCount {
		ob.syscalls[nr].Add(p.pid, 1)
	}
	p.ps.BeginSyscall()
	ms := p.acquireMed(nr)
	if ob != nil && ob.tracer != nil && n&ob.traceMask == 0 {
		// Trace-sampled syscall: every request it mediates will carry a
		// provenance span. The sampling decision rides the syscall counter
		// this entry incremented anyway, mirroring the latency sampler.
		ms.tracer = ob.tracer
		ms.spanT0 = obs.MonoNow()
		ms.syscallSeq = n
	}
	if pfe := p.k.PF; pfe != nil {
		// One gauntlet setup (ruleset + observability snapshot) for the whole
		// syscall; every subsequent check this syscall performs rides it.
		pfe.StartBatch(&ms.b, p)
		ms.batchActive = true
		if pfe.MayFilter(pf.OpSyscallBegin) {
			ms.req.Reset()
			ms.req.Proc = p
			ms.req.Op = pf.OpSyscallBegin
			ms.req.SyscallNR = int(nr)
			ms.req.SetArgs(args...)
			if ms.tracer != nil {
				ms.beginSpan(pf.OpSyscallBegin, "")
			}
			v := ms.b.Filter(&ms.req)
			if ms.tracer != nil {
				ms.endSpan(v)
			}
			if v == pf.VerdictDrop {
				p.exitSyscall()
				return ErrPFDenied
			}
		}
	}
	p.k.runPreHooks(p, nr)
	return nil
}

// accessToOp maps a vfs mediation step to the PF operation.
func accessToOp(a vfs.Access) pf.Op {
	switch a.Class {
	case mac.ClassDir:
		return pf.OpDirSearch
	case mac.ClassLnkFile:
		return pf.OpLnkFileRead
	default:
		return pf.OpFileOpen
	}
}

// accessPerm maps a mediation step to the DAC bits it exercises.
func dacBits(a vfs.Access) (r, w, x bool) {
	if a.Class == mac.ClassDir && a.Want&mac.PermSearch != 0 {
		return false, false, true
	}
	if a.Want&(mac.PermWrite|mac.PermAddName|mac.PermRemoveName) != 0 {
		return false, true, false
	}
	return true, false, false
}

// mediator returns the vfs.Mediator chaining DAC → MAC → PF for this
// process, invoked on every object touched during path resolution
// (the complete-mediation property of LSM the paper relies on). Syscall
// dispatch uses the medState scratch directly; this closure form remains
// for helpers resolving outside a syscall.
func (p *Proc) mediator(nr Syscall) vfs.Mediator {
	return vfs.MediatorFunc(func(a vfs.Access) error {
		return p.mediate(nr, a)
	})
}

// mediate authorizes one object access, timing a sample of the full
// gauntlet (DAC → MAC → PF) when observability is attached. The sampling
// decision rides on MediationCount, which mediation maintains regardless,
// so the disabled path costs one pointer load and the enabled path adds no
// extra read-modify-write.
func (p *Proc) mediate(nr Syscall, a vfs.Access) error {
	n := p.k.MediationCount.Add(1)
	ob := p.k.obs.Load()
	if ms := p.curMed; ms != nil && ms.tracer != nil {
		// Trace-sampled syscall: stamp this mediation's start so the span
		// can split DAC+MAC time from gauntlet time.
		ms.medT0 = obs.MonoNow()
	}
	if ob == nil || n&ob.sampleMask != 0 {
		return p.mediate1(nr, a)
	}
	t0 := obs.MonoNow()
	err := p.mediate1(nr, a)
	ob.medLatency.Observe(p.pid, uint64(obs.MonoNow()-t0))
	return err
}

func (p *Proc) mediate1(nr Syscall, a vfs.Access) error {
	// DAC.
	r, w, x := dacBits(a)
	if !vfs.CanAccess(a.Node, p.EUID, p.EGID, r, w, x) {
		return vfs.ErrPerm
	}
	// MAC (LSM authorization proper).
	if p.k.MACEnforcing {
		cls := a.Class
		if !p.k.Policy.Authorized(p.sid, a.Node.SID, cls, a.Want) {
			return ErrMACDenied
		}
	}
	// Process Firewall: invoked only if authorization allowed (Figure 2).
	return p.pfFilter(accessToOp(a), a.Node, a.Path, nr)
}

// resolve performs a mediated path resolution relative to the cwd, inside
// the process's root (chroot). The result is returned by value: its Trail
// backing array belongs to the syscall's scratch and is reused by the next
// resolution (syscalls that resolve twice — link, rename — must not read
// the first result's Trail after the second resolve; kernel callers never
// do, only Node/Parent/Name/Path).
func (p *Proc) resolve(nr Syscall, path string, opts vfs.ResolveOpts) (vfs.Resolved, error) {
	opts.CwdPath = p.cwdPath
	opts.Root = p.root
	opts.RootPath = p.rootPath
	ms := p.curMed
	if ms == nil {
		// No in-flight syscall (helper path): one-shot resolution.
		res, err := p.k.FS.Resolve(p.cwd, path, opts, p.mediator(nr))
		if err != nil {
			return vfs.Resolved{}, err
		}
		return *res, nil
	}
	ms.nr = nr
	if err := p.k.FS.ResolveInto(&ms.resolved, p.cwd, path, opts, ms); err != nil {
		return vfs.Resolved{}, err
	}
	return ms.resolved, nil
}

// getFd looks up an open descriptor.
func (p *Proc) getFd(fd int) (*File, error) {
	f, ok := p.fds[fd]
	if !ok {
		return nil, ErrBadFd
	}
	return f, nil
}

// installFd allocates a descriptor for node, recycling a pooled File when
// one is free (Close returns them). node may be nil for inode-less
// endpoints (abstract/port sockets, connected pairs).
func (p *Proc) installFd(node *vfs.Inode, path string) int {
	fd := p.nextFd
	p.nextFd++
	f := p.fileFree
	if f != nil {
		p.fileFree = f.freeNext
	} else {
		f = &File{}
	}
	*f = File{Node: node, Path: path, res: resource{k: p.k, node: node, path: path}}
	p.fds[fd] = f
	if node != nil {
		p.k.FS.IncOpen(node)
	}
	return fd
}

// recycleFile returns a closed descriptor's File to the pool. The caller
// has already released endpoints and dropped it from the fd table.
func (p *Proc) recycleFile(f *File) {
	*f = File{freeNext: p.fileFree}
	p.fileFree = f
}

// closeEndpoints releases any IPC endpoint attached to f: closing a bound
// listener vacates its rendezvous name (opening the squat window an
// adversary exploits and the PF must compensate for), closing a conn
// resets the peer.
func (f *File) closeEndpoints() {
	if f.Lis != nil {
		f.Lis.Close()
	}
	if f.Conn != nil {
		f.Conn.Close()
	}
}
