package pf

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pfirewall/internal/mac"
)

// --- incremental-vs-full differential -----------------------------------
//
// The incremental publish path (patchRuleset) must be observationally
// identical to a from-scratch compile AND to linear traversal over
// arbitrary mutation histories: appends, head inserts, removals,
// replace-by-position, multi-rule transactions, flushes, and rollbacks.
// Three engines — linear, full-recompile, incremental — replay one shared
// mutation/request script; every verdict and every mutation error must
// agree, or first-match semantics drifted somewhere in the bucket surgery.

type mutEngine struct {
	name  string
	e     *Engine
	procs map[int]*fakeProc
}

func newMutEngine(t *testing.T, name string, pol *mac.Policy, cfg Config, userChains []string) *mutEngine {
	t.Helper()
	m := &mutEngine{name: name, e: New(pol, cfg), procs: make(map[int]*fakeProc)}
	for _, uc := range userChains {
		if err := m.e.NewChain(uc); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func (m *mutEngine) proc(t *testing.T, pid int, s mac.SID, ldso bool) *fakeProc {
	if p, ok := m.procs[pid]; ok {
		return p
	}
	p := newFakeProc(pid, s, "/usr/bin/prog")
	if ldso {
		setupLdSo(t, p)
	}
	m.procs[pid] = p
	return p
}

func TestIncrementalPublishDifferential(t *testing.T) {
	pol := testPolicy()
	subjects := []mac.Label{"httpd_t", "user_t", "sshd_t", "shadow_t"}
	objects := []mac.Label{"tmp_t", "lib_t", "etc_t", "shadow_t"}
	ops := []Op{OpFileOpen, OpFileRead, OpFileWrite, OpLnkFileRead, OpDirSearch, OpSocketBind, OpSyscallBegin}
	chains := []string{"input", "input", "syscallbegin", "mangle/input", "u0"}
	userChains := []string{"u0"}

	baseConfigs := []Config{
		{CtxCache: true, LazyCtx: true},
		{CtxCache: true, LazyCtx: true, EptChains: true},
	}

	const iterations = 120
	for iter := 0; iter < iterations; iter++ {
		rng := &diffRNG{s: uint64(iter)*0x9e3779b9 + 7}
		// User-chain rules must not jump (a u0 rule jumping to u0 would
		// cycle); regenerate those specs in no-jump mode.
		genSpec := func(candChains []string) *ruleSpec {
			s := genRuleSpec(rng, pol, candChains, userChains, false)
			if s.chain == "u0" {
				s = genRuleSpec(rng, pol, []string{s.chain}, userChains, true)
			}
			return s
		}
		for _, base := range baseConfigs {
			full := base
			full.RuleIndex = true
			full.FullRecompile = true
			incr := base
			incr.RuleIndex = true
			engines := []*mutEngine{
				newMutEngine(t, "linear", pol, base, userChains),
				newMutEngine(t, "full", pol, full, userChains),
				newMutEngine(t, "incremental", pol, incr, userChains),
			}

			// installed tracks, per engine, the same logical rule at the
			// same slot, so pointer-removals target equivalents everywhere.
			installed := make([][]*Rule, len(engines))
			instChain := []string{}

			// sameOutcome asserts the three engines agreed on success/failure
			// (rollbacks can legitimately fail a mutation — e.g. rolling
			// back past a NewChain — but must do so on every engine).
			sameOutcome := func(step int, what string, errs [3]error) bool {
				if (errs[0] == nil) != (errs[1] == nil) || (errs[0] == nil) != (errs[2] == nil) {
					t.Fatalf("iter %d step %d: %s errors diverge: %v / %v / %v", iter, step, what, errs[0], errs[1], errs[2])
				}
				return errs[0] == nil
			}

			install := func(step int, s *ruleSpec) {
				var errs [3]error
				rules := make([]*Rule, len(engines))
				for ei, m := range engines {
					r := s.build()
					if s.front {
						errs[ei] = m.e.Insert(s.chain, r)
					} else {
						errs[ei] = m.e.Append(s.chain, r)
					}
					rules[ei] = r
				}
				if sameOutcome(step, "install", errs) {
					for ei := range engines {
						installed[ei] = append(installed[ei], rules[ei])
					}
					instChain = append(instChain, s.chain)
				}
			}

			nSteps := 40 + rng.intn(30)
			for step := 0; step < nSteps; step++ {
				switch op := rng.intn(10); {
				case op < 4: // plain install
					install(step, genSpec(chains))

				case op < 6 && len(instChain) > 0: // pointer removal
					k := rng.intn(len(instChain))
					var errs [3]error
					for ei, m := range engines {
						victim := installed[ei][k]
						errs[ei] = m.e.Remove(instChain[k], func(r *Rule) bool { return r == victim })
					}
					sameOutcome(step, "remove", errs)

				case op == 6: // replace-by-position in a built-in chain
					name := compiledChains[rng.intn(len(compiledChains))]
					c, _ := engines[0].e.Chain(name)
					if c == nil || len(c.Rules) == 0 {
						continue
					}
					pos := rng.intn(len(c.Rules))
					s := genSpec([]string{name})
					var errs [3]error
					for ei, m := range engines {
						errs[ei] = m.e.Transaction(func(tx *Tx) error { return tx.ReplaceAt(name, pos, s.build()) })
					}
					sameOutcome(step, "replace", errs)

				case op == 7: // batched transaction: a wave of installs + a tag drain
					n := 2 + rng.intn(4)
					specs := make([]*ruleSpec, n)
					for i := range specs {
						specs[i] = genSpec(chains)
					}
					var errs [3]error
					for ei, m := range engines {
						errs[ei] = m.e.Transaction(func(tx *Tx) error {
							for _, s := range specs {
								r := s.build()
								r.Src = Pos{File: "<wave>", Line: step}
								if err := tx.Append(s.chain, r); err != nil {
									return err
								}
							}
							for _, ch := range []string{"input", "syscallbegin", "mangle/input"} {
								if _, err := tx.RemoveAll(ch, func(r *Rule) bool {
									return r.Src.File == "<wave>" && r.Src.Line < step-2
								}); err != nil {
									return err
								}
							}
							return nil
						})
					}
					sameOutcome(step, "wave tx", errs)

				case op == 8 && rng.intn(3) == 0: // rollback (all engines in lockstep)
					var errs [3]error
					for ei, m := range engines {
						_, errs[ei] = m.e.Rollback()
					}
					sameOutcome(step, "rollback", errs)

				case op == 9 && rng.intn(8) == 0: // rare flush
					for _, m := range engines {
						if err := m.e.Flush(); err != nil {
							t.Fatalf("iter %d %s: flush: %v", iter, m.name, err)
						}
					}
				}

				// A burst of requests after every mutation.
				for q := 0; q < 3; q++ {
					pid := 1 + rng.intn(3)
					subj := sid(pol, subjects[rng.intn(len(subjects))])
					ldso := rng.intn(2) == 0
					reqOp := ops[rng.intn(len(ops))]
					objSID := sid(pol, objects[rng.intn(len(objects))])
					objID := uint64(rng.intn(4))
					var verdicts [3]Verdict
					for ei, m := range engines {
						p := m.proc(t, pid, subj, ldso)
						p.ps.BeginSyscall()
						verdicts[ei] = m.e.Filter(&Request{Proc: p, Op: reqOp, Obj: &fakeRes{sid: objSID, id: objID}})
					}
					if verdicts[0] != verdicts[1] || verdicts[0] != verdicts[2] {
						t.Fatalf("iter %d step %d: verdicts diverge: linear=%v full=%v incremental=%v",
							iter, step, verdicts[0], verdicts[1], verdicts[2])
					}
				}

				// Structural parity: same rule counts everywhere.
				if a, b, c := engines[0].e.RuleCount(), engines[1].e.RuleCount(), engines[2].e.RuleCount(); a != b || a != c {
					t.Fatalf("iter %d step %d: rule counts diverge: %d/%d/%d", iter, step, a, b, c)
				}
			}

			// The incremental engine must actually have taken the delta path.
			if iter == 0 {
				if st := engines[2].e.PublishStats(); st.DeltaCompiles == 0 {
					t.Fatalf("incremental engine never delta-compiled: %+v", st)
				}
			}
		}
	}
}

// --- satellite: one publish per transaction -----------------------------

// TestTransactionSingleRecompile pins the batching contract: however many
// rules a transaction touches, the engine publishes (and recompiles or
// patches) exactly once, bumping the snapshot generation exactly once — so
// per-process caches keyed on the generation are invalidated once per batch,
// not once per rule.
func TestTransactionSingleRecompile(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")

	gen0 := e.Generation()
	ver0 := e.Version()
	st0 := e.PublishStats()

	var batch []*Rule
	err := e.Transaction(func(tx *Tx) error {
		for i := 0; i < 32; i++ {
			r := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Drop()}
			if err := tx.Append("input", r); err != nil {
				return err
			}
			batch = append(batch, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Generation() - gen0; got != 1 {
		t.Fatalf("32-rule install bumped generation %d times, want 1", got)
	}
	if got := e.Version() - ver0; got != 1 {
		t.Fatalf("32-rule install bumped version %d times, want 1", got)
	}
	st := e.PublishStats()
	if got := st.Publishes - st0.Publishes; got != 1 {
		t.Fatalf("32-rule install published %d times, want 1", got)
	}
	if got := st.FullCompiles - st0.FullCompiles; got != 0 {
		t.Fatalf("32-rule install full-compiled %d times, want 0 (delta path)", got)
	}

	// Batched removal: one generation bump for the whole drain.
	gen1 := e.Generation()
	st1 := e.PublishStats()
	err = e.Transaction(func(tx *Tx) error {
		n, err := tx.RemoveAll("input", func(r *Rule) bool { return true })
		if err != nil {
			return err
		}
		if n != len(batch) {
			return fmt.Errorf("drained %d rules, want %d", n, len(batch))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Generation() - gen1; got != 1 {
		t.Fatalf("32-rule removal bumped generation %d times, want 1", got)
	}
	if got := e.PublishStats().Publishes - st1.Publishes; got != 1 {
		t.Fatalf("32-rule removal published %d times, want 1", got)
	}

	// Contrast: per-rule Engine.Remove is one publish per rule — the shape
	// the transaction API exists to avoid.
	for i := 0; i < 4; i++ {
		if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
			t.Fatal(err)
		}
	}
	gen2 := e.Generation()
	for i := 0; i < 4; i++ {
		if err := e.Remove("input", func(r *Rule) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Generation() - gen2; got != 4 {
		t.Fatalf("4 single removes bumped generation %d times, want 4", got)
	}
}

// TestIncrementalPublishTakesDeltaPath verifies the publish-path selection:
// small installs and removals patch the previous index; Flush, rollback
// recovery, and Config.FullRecompile rebuild from scratch.
func TestIncrementalPublishTakesDeltaPath(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")

	r := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Append("input", r); err != nil {
		t.Fatal(err)
	}
	if st := e.PublishStats(); st.DeltaCompiles != 1 || st.FullCompiles != 0 {
		t.Fatalf("after one append: %+v, want 1 delta / 0 full", st)
	}
	if err := e.Remove("input", func(x *Rule) bool { return x == r }); err != nil {
		t.Fatal(err)
	}
	if st := e.PublishStats(); st.DeltaCompiles != 2 || st.FullCompiles != 0 {
		t.Fatalf("after remove: %+v, want 2 delta / 0 full", st)
	}

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := e.PublishStats(); st.FullCompiles != 1 {
		t.Fatalf("after flush: %+v, want 1 full compile", st)
	}

	// Rollback forces the next publish to renumber from scratch; the one
	// after that patches again.
	if _, err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	st := e.PublishStats()
	if st.FullCompiles != 2 || st.Rollbacks != 1 {
		t.Fatalf("after rollback+append: %+v, want 2 full / 1 rollback", st)
	}
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	if got := e.PublishStats().DeltaCompiles; got != st.DeltaCompiles+1 {
		t.Fatalf("post-rollback steady state did not return to delta compiles: %+v", e.PublishStats())
	}
}

// TestRollbackRestoresVerdicts pins the rollback contract: the restored
// snapshot enforces immediately and identically to when it was current.
func TestRollbackRestoresVerdicts(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")
	proc := newFakeProc(1, httpd, "/usr/bin/apache2")
	req := func() *Request {
		return &Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}
	}

	if err := e.Append("input", &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Accept()}); err != nil {
		t.Fatal(err)
	}
	verAccept := e.Version()
	if v := e.Filter(req()); v != VerdictAccept {
		t.Fatalf("baseline verdict = %v, want ACCEPT", v)
	}

	// A bad deploy: head-insert a drop.
	if err := e.Insert("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	if v := e.Filter(req()); v != VerdictDrop {
		t.Fatalf("post-deploy verdict = %v, want DROP", v)
	}

	ver, err := e.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if ver != verAccept || e.Version() != verAccept {
		t.Fatalf("rollback restored version %d (current %d), want %d", ver, e.Version(), verAccept)
	}
	if v := e.Filter(req()); v != VerdictAccept {
		t.Fatalf("post-rollback verdict = %v, want ACCEPT", v)
	}
	if e.RuleCount() != 1 {
		t.Fatalf("post-rollback rule count = %d, want 1", e.RuleCount())
	}

	// The rollback window is bounded: drain it and the next Rollback fails.
	for {
		if _, err := e.Rollback(); err != nil {
			break
		}
	}
	if _, err := e.Rollback(); err == nil {
		t.Fatal("rollback past the history window must fail")
	}
}

// TestOrdGapExhaustion pins the midpoint-collision fallback: when the two
// neighbors of an interior insertion hold adjacent order keys (no midpoint
// left), the transaction must transparently renumber via a full recompile
// and keep first-match order exact. ordBetween's arithmetic is checked
// directly, then the engine-level recovery end to end.
func TestOrdGapExhaustion(t *testing.T) {
	// Arithmetic: adjacent neighbors leave no midpoint.
	c := &Chain{generic: []*Rule{{ord: 4}, {ord: 5}}}
	tx := &Tx{e: New(testPolicy(), Config{})}
	if _, ok := tx.ordBetween(c, 1); ok {
		t.Fatal("ordBetween found a midpoint between adjacent keys 4 and 5")
	}
	if ord, ok := tx.ordBetween(c, 0); !ok || ord >= 4 {
		t.Fatalf("prepend ord = %d, %v; want < 4, ok", ord, ok)
	}
	if ord, ok := tx.ordBetween(c, 2); !ok || ord <= 5 {
		t.Fatalf("append ord = %d, %v; want > 5, ok", ord, ok)
	}

	// Engine-level recovery: squeeze the published keys to adjacency, then
	// replace the interior rule — publish must fall back to a full
	// recompile (renumbering) and the verdict order must hold.
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")
	proc := newFakeProc(1, httpd, "/usr/bin/apache2")
	rules := []*Rule{
		{Ops: NewOpSet(OpFileOpen), Target: Accept()},
		{Ops: NewOpSet(OpFileOpen), Target: Accept()},
		{Ops: NewOpSet(OpFileOpen), Target: Drop()},
	}
	for _, r := range rules {
		if err := e.Append("input", r); err != nil {
			t.Fatal(err)
		}
	}
	e.writeMu.Lock()
	rules[0].ord = 4
	rules[1].ord = 4 // stale bucket copies don't matter: no filtering until republish
	rules[2].ord = 5
	e.writeMu.Unlock()

	st0 := e.PublishStats()
	err := e.Transaction(func(tx *Tx) error {
		return tx.ReplaceAt("input", 1, &Rule{Ops: NewOpSet(OpFileOpen), Target: Accept()})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.PublishStats(); st.FullCompiles != st0.FullCompiles+1 {
		t.Fatalf("exhausted midpoint did not force a full recompile: %+v", st)
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictAccept {
		t.Fatalf("verdict = %v, want ACCEPT (head rule first)", v)
	}
	// And the renumbered base patches incrementally again.
	if err := e.Remove("input", func(r *Rule) bool { return r == rules[2] }); err != nil {
		t.Fatal(err)
	}
	if st := e.PublishStats(); st.DeltaCompiles == 0 {
		t.Fatalf("post-renumber publish did not take the delta path: %+v", st)
	}
}

// --- satellite: -race stress over publishes, rollbacks, mediation -------

// TestPublishRollbackMediationStress interleaves incremental publishes,
// rollbacks, and batched mediation across goroutines. Run under -race this
// checks the COW ownership rules (shared snapshots are never written); the
// accounting check asserts verdict conservation — every request issued
// during live updates got exactly one Accept or Drop, none lost or blocked.
func TestPublishRollbackMediationStress(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")
	tmp := sid(pol, "tmp_t")

	// A stable floor rule so verdicts stay meaningful mid-churn.
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Object: NewSIDSet(false, sid(pol, "shadow_t")), Target: Drop()}); err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 4
		duration = 300 * time.Millisecond
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: churn waves through transactions, with replaces and rollbacks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := &diffRNG{s: 0xfeed}
		cycle := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			cycle++
			tag := fmt.Sprintf("<wave-%d>", cycle)
			err := e.Transaction(func(tx *Tx) error {
				for i := 0; i < 8; i++ {
					r := &Rule{
						Subject: NewSIDSet(false, httpd),
						Ops:     NewOpSet(OpFileOpen),
						Target:  Accept(),
						Src:     Pos{File: tag, Line: i},
					}
					if rng.intn(4) == 0 {
						r.Target = Drop()
					}
					if err := tx.Append("input", r); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if rng.intn(8) == 0 {
				if _, err := e.Rollback(); err != nil {
					t.Error(err)
					return
				}
			}
			// Drain this wave's survivors (a rollback may already have
			// unpublished them; zero removals is fine).
			err = e.Transaction(func(tx *Tx) error {
				_, err := tx.RemoveAll("input", func(r *Rule) bool { return r.Src.File == tag })
				return err
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var issued [readers]uint64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proc := newFakeProc(100+g, httpd, "/usr/bin/apache2")
			res := &fakeRes{sid: tmp, id: uint64(g)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc.ps.BeginSyscall()
				var b Batch
				e.StartBatch(&b, proc)
				for i := 0; i < 4; i++ {
					v := b.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: res})
					if v != VerdictAccept && v != VerdictDrop {
						t.Errorf("reader %d: verdict %v is neither accept nor drop", g, v)
						b.Finish()
						return
					}
					issued[g]++
				}
				b.Finish()
			}
		}(g)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	var total uint64
	for _, n := range issued {
		total += n
	}
	req := e.Stats.Requests.Load()
	acc := e.Stats.Accepts.Load()
	drp := e.Stats.Drops.Load()
	if req != acc+drp {
		t.Fatalf("verdicts not conserved: requests=%d accepts=%d drops=%d", req, acc, drp)
	}
	if req != total {
		t.Fatalf("engine saw %d requests, readers issued %d", req, total)
	}
	st := e.PublishStats()
	if st.DeltaCompiles == 0 || st.Publishes < 10 {
		t.Fatalf("stress exercised too little of the publish path: %+v", st)
	}
	t.Logf("stress: %d requests, %d publishes (%d delta, %d full, %d rollbacks)",
		req, st.Publishes, st.DeltaCompiles, st.FullCompiles, st.Rollbacks)
}
