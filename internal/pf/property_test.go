package pf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfirewall/internal/mac"
)

// TestDenyOnlyOrderIndependence verifies the property paper Section 4.3
// builds entrypoint-specific chains on: with deny-only rules and a default
// allow, the verdict is independent of rule order, so the engine may
// evaluate applicable rules in any arrangement.
func TestDenyOnlyOrderIndependence(t *testing.T) {
	pol := testPolicy()
	labels := []mac.Label{"tmp_t", "lib_t", "etc_t", "shadow_t", "httpd_content_t"}
	ops := []Op{OpFileOpen, OpFileRead, OpLnkFileRead, OpFileCreate, OpSocketBind}

	// mkRules builds n deterministic pseudo-random deny rules.
	mkRules := func(rng *rand.Rand, n int) []*Rule {
		rules := make([]*Rule, n)
		for i := range rules {
			r := &Rule{Target: Drop()}
			if rng.Intn(2) == 0 {
				r.Object = NewSIDSet(rng.Intn(2) == 0, sid(pol, labels[rng.Intn(len(labels))]))
			}
			if rng.Intn(2) == 0 {
				r.Ops = NewOpSet(ops[rng.Intn(len(ops))])
			}
			if rng.Intn(3) == 0 {
				r.ResID = uint64(rng.Intn(5))
				r.ResIDSet = true
			}
			rules[i] = r
		}
		return rules
	}

	verdicts := func(rules []*Rule, reqs []*Request) []Verdict {
		e := New(pol, Optimized())
		for _, r := range rules {
			e.Append("input", r)
		}
		out := make([]Verdict, len(reqs))
		for i, req := range reqs {
			out[i] = e.Filter(req)
		}
		return out
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rules := mkRules(rng, 1+rng.Intn(12))

		// A request set covering the label/op/ino space.
		var reqs []*Request
		for _, l := range labels {
			for _, op := range ops {
				proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
				reqs = append(reqs, &Request{
					Proc: proc, Op: op,
					Obj: &fakeRes{sid: sid(pol, l), id: uint64(rng.Intn(5))},
				})
			}
		}
		base := verdicts(rules, reqs)

		// Shuffle and re-evaluate.
		shuffled := append([]*Rule(nil), rules...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Fresh rule instances to avoid shared Hits counters mattering.
		again := verdicts(shuffled, reqs)

		for i := range base {
			if base[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOptimizationsPreserveVerdicts checks that all four engine
// configurations agree on every verdict for a mixed rule base — the
// optimizations must be semantics-preserving.
func TestOptimizationsPreserveVerdicts(t *testing.T) {
	pol := testPolicy()
	configs := []Config{
		{},
		{CtxCache: true},
		{CtxCache: true, LazyCtx: true},
		{CtxCache: true, LazyCtx: true, EptChains: true},
	}

	build := func(cfg Config) *Engine {
		e := New(pol, cfg)
		e.Append("input", entryRule(pol, Drop()))
		e.Append("input", &Rule{
			Object: NewSIDSet(false, sid(pol, "shadow_t")),
			Ops:    NewOpSet(OpFileRead),
			Target: Drop(),
		})
		e.Append("input", &Rule{
			Ops:     NewOpSet(OpLnkFileRead),
			Matches: []Match{&CompareMatch{V1: Value{Ref: RefDACOwner}, V2: Value{Ref: RefTgtDACOwner}, Nequal: true}},
			Target:  Drop(),
		})
		return e
	}

	type tc struct {
		op    Op
		obj   *fakeRes
		stack bool
	}
	cases := []tc{
		{OpFileOpen, &fakeRes{sid: sid(pol, "tmp_t"), id: 1}, true},
		{OpFileOpen, &fakeRes{sid: sid(pol, "tmp_t"), id: 1}, false},
		{OpFileOpen, &fakeRes{sid: sid(pol, "lib_t"), id: 2}, true},
		{OpFileRead, &fakeRes{sid: sid(pol, "shadow_t"), id: 3}, false},
		{OpLnkFileRead, &fakeRes{sid: sid(pol, "tmp_t"), owner: 1000, tgtOwner: 0, tgtOK: true}, false},
		{OpLnkFileRead, &fakeRes{sid: sid(pol, "tmp_t"), owner: 33, tgtOwner: 33, tgtOK: true}, false},
	}

	for ci, c := range cases {
		var ref Verdict
		for i, cfg := range configs {
			e := build(cfg)
			proc := newFakeProc(ci+1, sid(pol, "httpd_t"), "/usr/bin/apache2")
			if c.stack {
				setupLdSo(t, proc)
			}
			v := e.Filter(&Request{Proc: proc, Op: c.op, Obj: c.obj})
			if i == 0 {
				ref = v
			} else if v != ref {
				t.Errorf("case %d: config %+v verdict %v, want %v", ci, cfg, v, ref)
			}
		}
	}
}

func TestReturnTarget(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.NewChain("sub")
	// input: jump to sub, then DROP.
	e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: &JumpTarget{ChainName: "sub"}})
	e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()})
	// sub: RETURN before its own DROP.
	e.Append("sub", &Rule{Target: &ReturnTarget{}})
	e.Append("sub", &Rule{Target: Accept()})

	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}})
	// RETURN skips sub's ACCEPT, resumes in input, hits DROP.
	if v != VerdictDrop {
		t.Errorf("verdict = %v, want DROP (RETURN must resume the caller)", v)
	}
}

func TestReturnAtBaseChainIsAllow(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{Target: &ReturnTarget{}})
	e.Append("input", &Rule{Target: Drop()})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{}})
	// RETURN at the base chain terminates traversal -> default allow,
	// matching iptables' built-in chain policy semantics.
	if v != VerdictAccept {
		t.Errorf("verdict = %v, want ACCEPT", v)
	}
}

func TestRemoveRule(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	r1 := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	r2 := entryRule(pol, Drop())
	e.Append("input", r1)
	e.Append("input", r2)
	if err := e.Remove("input", func(r *Rule) bool { return r == r2 }); err != nil {
		t.Fatal(err)
	}
	if e.RuleCount() != 1 {
		t.Errorf("RuleCount = %d, want 1", e.RuleCount())
	}
	// The removed entrypoint rule must be gone from the index too.
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	setupLdSo(t, proc)
	v := e.Filter(&Request{Proc: proc, Op: OpFileRead, Obj: &fakeRes{sid: sid(pol, "tmp_t")}})
	if v != VerdictAccept {
		t.Errorf("read verdict = %v, want ACCEPT", v)
	}
	if err := e.Remove("input", func(r *Rule) bool { return false }); err == nil {
		t.Error("removing a non-matching rule should fail")
	}
	if err := e.Remove("nochain", func(r *Rule) bool { return true }); err == nil {
		t.Error("removing from an unknown chain should fail")
	}
}

func TestConcurrentFilterAndInstall(t *testing.T) {
	// The RCU-style rule base must tolerate installs racing with filters.
	pol := testPolicy()
	e := New(pol, Optimized())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			e.Append("input", &Rule{
				Object: NewSIDSet(false, sid(pol, "shadow_t")),
				Ops:    NewOpSet(OpFileRead),
				Target: Drop(),
			})
			e.Remove("input", func(*Rule) bool { return true })
		}
	}()
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	obj := &fakeRes{sid: sid(pol, "tmp_t")}
	for i := 0; i < 2000; i++ {
		e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: obj})
	}
	<-done
}

func TestShardedCounter(t *testing.T) {
	var c Counter
	for pid := 0; pid < 300; pid++ {
		c.Add(pid, 2)
	}
	if got := c.Load(); got != 600 {
		t.Errorf("Load = %d, want 600", got)
	}
}

func TestMangleTableRunsFirst(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Mangle marks state; a filter rule matches on that mark and drops.
	e.Append("mangle/input", &Rule{
		Ops:    NewOpSet(OpFileOpen),
		Target: &StateTarget{Key: 0x77, Val: Literal(1)},
	})
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpFileOpen),
		Matches: []Match{&StateMatch{Key: 0x77, Cmp: Literal(1)}},
		Target:  Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}})
	if v != VerdictDrop {
		t.Errorf("verdict = %v, want DROP (mangle must run before filter)", v)
	}
}

func TestMangleVerdictIsFinal(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("mangle/input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()})
	e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Accept()})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{}})
	if v != VerdictDrop {
		t.Errorf("verdict = %v, want DROP from mangle", v)
	}
}
