package pf

import (
	"pfirewall/internal/obs"
)

// ObsConfig tunes the engine's observability instrumentation.
type ObsConfig struct {
	// SampleEvery takes one gauntlet-latency sample per SampleEvery
	// requests per shard (default 16; 1 samples every request). Counters
	// are always exact — only the two timestamps per request are sampled,
	// which is what keeps enabled-metrics overhead inside the ≤5% budget.
	SampleEvery int
	// RingSize is the per-verdict flight-recorder capacity (default 256).
	RingSize int
	// RecordAccepts also records ACCEPT verdicts into the accept ring.
	// Off by default: accepts dominate by orders of magnitude and would
	// only evict each other; DROPs — the events an operator reviews — are
	// always recorded.
	RecordAccepts bool
}

// engineObs is the engine's attached instrumentation. Every series is
// pre-registered and indexed directly by Op, so the Filter hot path does
// no map lookups and no locking — one atomic pointer load decides whether
// any of this runs at all.
type engineObs struct {
	reg *obs.Registry
	// sampleMask gates latency timestamps against the requester's
	// Stats.Requests shard — a counter Filter increments regardless, so the
	// sampling decision costs one load, not an extra read-modify-write.
	sampleMask uint64

	mediations [opCount][2]*obs.Counter // [op][verdict]
	latency    [opCount]*obs.Histogram

	logEmissions  *obs.Counter
	dropRing      *obs.Ring
	acceptRing    *obs.Ring
	recordAccepts bool
}

// AttachObs registers the engine's metric series on reg and arms the
// Filter instrumentation. Idempotent per registry (series registration
// dedupes); the hot path notices the attachment through one atomic load.
func (e *Engine) AttachObs(reg *obs.Registry, cfg ObsConfig) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 16
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	ob := &engineObs{
		reg:           reg,
		sampleMask:    obs.SampleMask(cfg.SampleEvery),
		recordAccepts: cfg.RecordAccepts,
	}
	const medHelp = "Mediation requests by operation and verdict."
	for op := Op(1); op < opCount; op++ {
		name := op.String()
		ob.mediations[op][VerdictAccept] = reg.Counter("pf_mediations_total", medHelp,
			obs.L("op", name), obs.L("verdict", VerdictAccept.String()))
		ob.mediations[op][VerdictDrop] = reg.Counter("pf_mediations_total", medHelp,
			obs.L("op", name), obs.L("verdict", VerdictDrop.String()))
		ob.latency[op] = reg.Histogram("pf_gauntlet_latency_ns",
			"Sampled PF gauntlet latency per operation, in nanoseconds.",
			obs.L("op", name))
	}
	ob.logEmissions = reg.Counter("pf_log_emissions_total", "LOG-target records emitted.")
	ob.dropRing = reg.Ring("pf_flight_drop", cfg.RingSize)
	ob.acceptRing = reg.Ring("pf_flight_accept", cfg.RingSize)

	// Engine totals are already counted exactly by Stats; export them
	// rather than double-counting on the hot path.
	reg.CounterFunc("pf_requests_total", "Requests filtered.", e.Stats.Requests.Load)
	reg.CounterFunc("pf_verdicts_total", "Verdicts by outcome.",
		e.Stats.Accepts.Load, obs.L("verdict", VerdictAccept.String()))
	reg.CounterFunc("pf_verdicts_total", "Verdicts by outcome.",
		e.Stats.Drops.Load, obs.L("verdict", VerdictDrop.String()))
	reg.CounterFunc("pf_rules_evaluated_total", "Rules evaluated across all requests.", e.Stats.RulesEvaluated.Load)
	reg.CounterFunc("pf_ctx_collections_total", "Context fields collected.", e.Stats.CtxCollections.Load)
	reg.CounterFunc("pf_ctx_cache_hits_total", "Context cache hits.", e.Stats.CtxCacheHits.Load)

	e.obs.Store(ob)
	// Per-chain traversal counts. The Traversals counter is shared across
	// ruleset snapshots (like Rule.Hits), so capturing it here stays
	// correct over later rule updates.
	for _, name := range e.Chains() {
		e.registerChainObs(name)
	}
}

// Obs returns the attached registry; nil when observability is off.
func (e *Engine) Obs() *obs.Registry {
	if ob := e.obs.Load(); ob != nil {
		return ob.reg
	}
	return nil
}

// registerChainObs exports one chain's traversal counter.
func (e *Engine) registerChainObs(name string) {
	ob := e.obs.Load()
	if ob == nil {
		return
	}
	c, okc := e.Chain(name)
	if !okc || c.Traversals == nil {
		return
	}
	ob.reg.CounterFunc("pf_chain_traversals_total", "Chain traversals by chain.",
		c.Traversals.Load, obs.L("chain", name))
}

// finish flushes one request's obs series. t0 is meaningful only when
// sampled is true; chain is the start chain ("" on the empty-ruleset fast
// path).
func (ob *engineObs) finish(pid int, req *Request, v Verdict, sampled bool, t0 int64, chain string) {
	op := req.Op
	if op >= opCount {
		op = OpInvalid
	}
	vi := 0
	if v == VerdictDrop {
		vi = 1
	}
	if c := ob.mediations[op][vi]; c != nil {
		c.Add(pid, 1)
	}
	if sampled {
		if h := ob.latency[op]; h != nil {
			h.Observe(pid, uint64(obs.MonoNow()-t0))
		}
	}
	if v == VerdictDrop {
		ob.record(ob.dropRing, pid, req, v, chain)
	} else if ob.recordAccepts {
		ob.record(ob.acceptRing, pid, req, v, chain)
	}
}

// record appends one flight-recorder event.
//
//pflint:allow-fn — metrics-layer recording, active only when an observability sink is attached.
func (ob *engineObs) record(ring *obs.Ring, pid int, req *Request, v Verdict, chain string) {
	ev := obs.Event{
		TimeUnixNano: obs.WallNano(obs.MonoNow()),
		PID:          pid,
		Op:           req.Op.String(),
		Verdict:      v.String(),
		Chain:        chain,
	}
	if req.Obj != nil {
		ev.Path = req.Obj.Path()
		ev.ResourceID = req.Obj.ID()
	}
	ring.Record(ev)
}
