package pf

import (
	"testing"

	"pfirewall/internal/mac"
)

// --- analyzer soundness differential ------------------------------------
//
// AnalyzeChains promises one-directional soundness: a rule it reports
// unreachable provably has Hits == 0 for any request sequence. This test
// enforces that promise over the same randomized ruleset distribution the
// compiled-dispatch differential uses (350 seeds, 1-14 rules each, jumps,
// returns, negated sets, entrypoint rules, STATE matches). Each ruleset is
// driven two ways before the assertion:
//
//   - the differential harness's random request script (minus removals —
//     the analysis describes the installed ruleset, and removing a jump can
//     orphan a chain whose rules legitimately fired earlier);
//   - a targeted witness-fuzzing pass that constructs requests from each
//     rule's own match sets, i.e. the best case the rule could hope for.
//
// Any rule flagged unreachable that still collects a hit is an analyzer
// unsoundness and fails the test immediately. The reverse direction is
// deliberately not asserted: a reachable rule with zero hits only means the
// fuzzer found no witness (e.g. the 0x1234 entrypoint no binary maps), which
// weakens, never breaks, the property.

func TestAnalyzeUnreachableSoundness(t *testing.T) {
	pol := testPolicy()
	subjects := []mac.Label{"httpd_t", "user_t", "sshd_t", "shadow_t"}
	objects := []mac.Label{"tmp_t", "lib_t", "etc_t", "shadow_t"}
	reqOps := []Op{OpFileOpen, OpFileRead, OpFileWrite, OpLnkFileRead, OpDirSearch, OpSocketBind, OpSyscallBegin, OpInvalid}
	allLabels := []mac.Label{"httpd_t", "user_t", "sshd_t", "tmp_t", "lib_t", "etc_t", "shadow_t"}

	const iterations = 350
	flagged, rulesTotal := 0, 0
	kinds := make(map[UnreachKind]int)
	for iter := 0; iter < iterations; iter++ {
		rng := &diffRNG{s: uint64(iter)*2654435761 + 1}
		chains := []string{"input", "input", "input", "syscallbegin", "mangle/input", "u0", "u1"}
		userChains := []string{"u0", "u1"}
		nRules := 1 + rng.intn(14)
		specs := make([]*ruleSpec, 0, nRules)
		for i := 0; i < nRules; i++ {
			s := genRuleSpec(rng, pol, chains, userChains, false)
			if s.chain == "u0" || s.chain == "u1" {
				s = genRuleSpec(rng, pol, []string{s.chain}, userChains, true)
			}
			specs = append(specs, s)
		}
		d := newDiffEngine(t, pol, Optimized(), specs, userChains)
		an := d.e.Analyze()

		// Random traffic, same distribution as the dispatch differential.
		nReqs := 20 + rng.intn(20)
		for i := 0; i < nReqs; i++ {
			p := d.proc(t, 1+rng.intn(3), sid(pol, subjects[rng.intn(len(subjects))]), rng.intn(2) == 0)
			p.ps.BeginSyscall()
			req := &Request{Proc: p, Op: reqOps[rng.intn(len(reqOps))]}
			if rng.intn(6) != 0 {
				req.Obj = &fakeRes{sid: sid(pol, objects[rng.intn(len(objects))]), id: uint64(rng.intn(4))}
			}
			d.e.Filter(req)
		}

		// Witness fuzzing: per-rule adversarial requests.
		pid := 100
		for ri, r := range d.rules {
			pid = witnessRule(t, d, pol, an, specs[ri].chain, r, allLabels, pid)
		}

		rulesTotal += len(d.rules)
		for _, u := range an.Unreachable {
			flagged++
			kinds[u.Kind]++
			if n := u.Rule.Hits.Load(); n != 0 {
				t.Fatalf("iter %d: rule %q in chain %q flagged %v but collected %d hits — analyzer unsound",
					iter, u.Rule.String(pol.SIDs()), u.Chain, u.Kind, n)
			}
		}
	}
	if flagged == 0 {
		t.Fatal("analysis flagged no rules across every iteration — the soundness test is vacuous")
	}
	t.Logf("soundness: %d/%d generated rules flagged unreachable (%v), all with zero hits after witness fuzzing",
		flagged, rulesTotal, kinds)
}

// witnessRule fires the requests most likely to match r: member SIDs of its
// subject/object sets (an outside SID for negated sets), ops drawn from the
// rule's mask restricted to its chain's op context, the rule's resource ID,
// a mapped ld.so for entrypoint rules, and a STATE dictionary pre-seeded to
// satisfy the rule's StateMatch. Reaching a jump-guarded user chain is
// best-effort — the guarding jump's own match fields aren't modeled here —
// which only weakens the one-directional assertion, never breaks it.
func witnessRule(t *testing.T, d *diffEngine, pol *mac.Policy, an *RulesetAnalysis, chainName string, r *Rule, labels []mac.Label, pid int) int {
	t.Helper()
	ctx, ok := an.OpContext[chainName]
	if !ok {
		ctx = allOps
	}
	var wOps []Op
	for op := Op(1); op < opCount; op++ {
		if r.Ops.Has(op) && ctx&(1<<op) != 0 {
			wOps = append(wOps, op)
			if len(wOps) == 2 {
				break
			}
		}
	}
	subs := witnessSIDs(pol, r.Subject, labels)
	objs := witnessSIDs(pol, r.Object, labels)
	for _, op := range wOps {
		for _, sub := range subs {
			for _, obj := range objs {
				pid++
				p := d.proc(t, pid, sub, r.EntrySet)
				for _, m := range r.Matches {
					if sm, isState := m.(*StateMatch); isState && sm.Cmp.Ref == RefLiteral {
						want := sm.Cmp.Lit
						if sm.Nequal {
							want++
						}
						p.ps.Dict[sm.Key] = want
					}
				}
				p.ps.BeginSyscall()
				id := uint64(1)
				if r.ResIDSet {
					id = r.ResID
				}
				d.e.Filter(&Request{Proc: p, Op: op, Obj: &fakeRes{sid: obj, id: id}})
			}
		}
	}
	return pid
}

// witnessSIDs picks the SIDs a request must carry to satisfy set: the
// members of a plain set, any outside SID for a negated set, an arbitrary
// SID when the field is unconstrained. An empty plain set yields no
// witnesses — there is none, which is exactly what the analyzer reports.
func witnessSIDs(pol *mac.Policy, set *SIDSet, labels []mac.Label) []mac.SID {
	if set == nil {
		return []mac.SID{sid(pol, labels[0])}
	}
	if !set.Negate {
		return set.SIDs()
	}
	for _, l := range labels {
		s := sid(pol, l)
		if !set.Contains(s) {
			return []mac.SID{s}
		}
	}
	return nil
}
