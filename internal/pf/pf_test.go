package pf

import (
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/ustack"
)

// --- test doubles -------------------------------------------------------

type fakeProc struct {
	pid   int
	sid   mac.SID
	exec  string
	mem   *ustack.Memory
	stack *ustack.Stack
	as    *ustack.AddressSpace
	lang  ustack.Lang
	head  uint64
	ps    *ProcState
}

func newFakeProc(pid int, sid mac.SID, exec string) *fakeProc {
	mem := ustack.NewMemory(4096)
	return &fakeProc{
		pid: pid, sid: sid, exec: exec,
		mem:   mem,
		stack: ustack.NewStack(mem, 1000),
		as:    ustack.NewAddressSpace(uint64(pid)),
		ps:    NewProcState(),
	}
}

func (p *fakeProc) PID() int                        { return p.pid }
func (p *fakeProc) SubjectSID() mac.SID             { return p.sid }
func (p *fakeProc) ExecPath() string                { return p.exec }
func (p *fakeProc) UserRegs() ustack.Regs           { return p.stack.Regs }
func (p *fakeProc) UserMemory() *ustack.Memory      { return p.mem }
func (p *fakeProc) AddrSpace() *ustack.AddressSpace { return p.as }
func (p *fakeProc) Interp() (ustack.Lang, uint64)   { return p.lang, p.head }
func (p *fakeProc) StackGen() uint64                { return p.mem.Gen() + p.stack.Gen() }
func (p *fakeProc) PFState() *ProcState             { return p.ps }

type fakeRes struct {
	sid      mac.SID
	id       uint64
	path     string
	class    mac.Class
	owner    int
	tgtOwner int
	tgtOK    bool
}

func (r *fakeRes) SID() mac.SID                    { return r.sid }
func (r *fakeRes) ID() uint64                      { return r.id }
func (r *fakeRes) Path() string                    { return r.path }
func (r *fakeRes) Class() mac.Class                { return r.class }
func (r *fakeRes) OwnerUID() int                   { return r.owner }
func (r *fakeRes) LinkTargetOwnerUID() (int, bool) { return r.tgtOwner, r.tgtOK }

func testPolicy() *mac.Policy {
	p := mac.NewPolicy(mac.NewSIDTable())
	p.MarkTrusted("httpd_t", "lib_t", "shadow_t")
	p.Allow("httpd_t", "lib_t", mac.ClassFile, mac.PermRead)
	p.Allow("user_t", "tmp_t", mac.ClassFile, mac.PermWrite|mac.PermRead)
	return p
}

func sid(p *mac.Policy, l mac.Label) mac.SID { return p.SIDs().SID(l) }

// --- default matches ----------------------------------------------------

func TestDefaultAllow(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	req := &Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "lib_t"), id: 7}}
	if v := e.Filter(req); v != VerdictAccept {
		t.Errorf("empty rule base: %v, want ACCEPT", v)
	}
	if e.Stats.Accepts.Load() != 1 {
		t.Error("accept counter not incremented")
	}
}

func TestDropByObjectLabelAndOp(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	tmp := sid(pol, "tmp_t")
	// Paper Table 3 example: disallow following links in temp filesystems.
	r := &Rule{
		Object: NewSIDSet(false, tmp),
		Ops:    NewOpSet(OpLnkFileRead),
		Target: Drop(),
	}
	if err := e.Append("input", r); err != nil {
		t.Fatal(err)
	}
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")

	link := &fakeRes{sid: tmp, id: 3, class: mac.ClassLnkFile}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: link}); v != VerdictDrop {
		t.Error("link read in tmp_t should DROP")
	}
	// Different op: allowed.
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: link}); v != VerdictAccept {
		t.Error("open is not covered by the rule")
	}
	// Different label: allowed.
	other := &fakeRes{sid: sid(pol, "etc_t"), id: 4}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: other}); v != VerdictAccept {
		t.Error("other labels should pass")
	}
	if r.Hits.Load() != 1 {
		t.Errorf("rule hits = %d, want 1", r.Hits.Load())
	}
}

func TestNegatedObjectSet(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// -d ~{lib_t} -o FILE_OPEN -j DROP : drop opens of anything NOT lib_t.
	r := &Rule{
		Object: NewSIDSet(true, sid(pol, "lib_t")),
		Ops:    NewOpSet(OpFileOpen),
		Target: Drop(),
	}
	e.Append("input", r)
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "lib_t")}}); v != VerdictAccept {
		t.Error("lib_t open should pass the negated set")
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Error("tmp_t open should DROP")
	}
}

func TestSubjectMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{
		Subject: NewSIDSet(false, sid(pol, "user_t")),
		Target:  Drop(),
	})
	userProc := newFakeProc(2, sid(pol, "user_t"), "/bin/sh")
	httpdProc := newFakeProc(3, sid(pol, "httpd_t"), "/usr/bin/apache2")
	obj := &fakeRes{sid: sid(pol, "tmp_t")}
	if v := e.Filter(&Request{Proc: userProc, Op: OpFileOpen, Obj: obj}); v != VerdictDrop {
		t.Error("user_t should be dropped")
	}
	if v := e.Filter(&Request{Proc: httpdProc, Op: OpFileOpen, Obj: obj}); v != VerdictAccept {
		t.Error("httpd_t should pass")
	}
}

func TestResourceIDMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{ResID: 42, ResIDSet: true, Target: Drop()})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{id: 42}}); v != VerdictDrop {
		t.Error("ino 42 should DROP")
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{id: 43}}); v != VerdictAccept {
		t.Error("ino 43 should pass")
	}
}

// --- entrypoints ----------------------------------------------------------

// setupLdSo maps ld.so into proc and pushes a frame at the canonical
// library-open entrypoint 0x596b (paper rule R1).
func setupLdSo(t *testing.T, proc *fakeProc) {
	t.Helper()
	m := proc.as.Map("/lib/ld-2.15.so", 0)
	if err := proc.stack.Call(m.Base + 0x100); err != nil {
		t.Fatal(err)
	}
	proc.stack.SetPC(m.Base + 0x596b)
}

func entryRule(pol *mac.Policy, target Target) *Rule {
	return &Rule{
		Program:  "/lib/ld-2.15.so",
		Entry:    0x596b,
		EntrySet: true,
		Object:   NewSIDSet(true, pol.SIDs().SID("lib_t")),
		Ops:      NewOpSet(OpFileOpen),
		Target:   target,
	}
}

func TestEntrypointMatch(t *testing.T) {
	for _, cfg := range []Config{{}, Optimized()} {
		pol := testPolicy()
		e := New(pol, cfg)
		e.Append("input", entryRule(pol, Drop()))

		proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
		setupLdSo(t, proc)

		evil := &fakeRes{sid: sid(pol, "tmp_t"), id: 9}
		if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: evil}); v != VerdictDrop {
			t.Errorf("cfg %+v: untrusted library open at ld.so entrypoint should DROP", cfg)
		}
		good := &fakeRes{sid: sid(pol, "lib_t"), id: 10}
		if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: good}); v != VerdictAccept {
			t.Errorf("cfg %+v: trusted library should load", cfg)
		}

		// A process without the entrypoint on its stack is unaffected.
		other := newFakeProc(2, sid(pol, "httpd_t"), "/usr/bin/apache2")
		other.as.Map("/lib/ld-2.15.so", 0)
		other.stack.SetPC(42) // unmapped PC
		if v := e.Filter(&Request{Proc: other, Op: OpFileOpen, Obj: evil}); v != VerdictAccept {
			t.Errorf("cfg %+v: rule must not fire without the entrypoint", cfg)
		}
	}
}

func TestEntrypointASLRIndependence(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", entryRule(pol, Drop()))
	evil := &fakeRes{sid: sid(pol, "tmp_t"), id: 9}

	// Two processes with different load bases hit the same rule.
	for pidSeed := 1; pidSeed <= 2; pidSeed++ {
		proc := newFakeProc(pidSeed*17, sid(pol, "httpd_t"), "/usr/bin/apache2")
		setupLdSo(t, proc)
		if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: evil}); v != VerdictDrop {
			t.Errorf("seed %d: rule should match relative entrypoint", pidSeed)
		}
	}
}

func TestMaliciousStackOnlyHurtsSelf(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", entryRule(pol, Drop()))

	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	m := proc.as.Map("/lib/ld-2.15.so", 0)
	// Corrupt frame chain: FP points into the weeds.
	proc.stack.Regs.FP = 999999
	proc.stack.SetPC(m.Base + 0x596b)

	evil := &fakeRes{sid: sid(pol, "tmp_t"), id: 9}
	// Unwinding fails; the rule's entrypoint cannot be confirmed, so the
	// access is allowed — the malicious process loses only its own
	// protection (paper Section 4.4).
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: evil}); v != VerdictDrop {
		// PC itself still rebases to the entrypoint even though the chain
		// is corrupt, so this specific case still matches via regs.PC...
		t.Skip("PC-only match; acceptable")
	}
}

func TestCorruptStackNoCrash(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", entryRule(pol, Drop()))
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	proc.as.Map("/lib/ld-2.15.so", 0)
	proc.stack.Regs.FP = 4095 // last word: frame read runs off the end
	proc.stack.SetPC(3)       // unmapped
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}})
	if v != VerdictAccept {
		t.Errorf("corrupt stack: %v, want ACCEPT (no entrypoint confirmed)", v)
	}
}

func TestInterpreterEntrypoint(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Drop when a PHP script include at a specific script line accesses
	// adversary-writable files.
	e.Append("input", &Rule{
		Program:  "gcal.php",
		Entry:    57,
		EntrySet: true,
		Object:   NewSIDSet(false, sid(pol, "tmp_t")),
		Ops:      NewOpSet(OpFileOpen),
		Target:   Drop(),
	})
	proc := newFakeProc(5, sid(pol, "httpd_t"), "/usr/bin/php5")
	m := proc.as.Map("/usr/bin/php5", 0)
	proc.stack.Call(m.Base + 0x10)
	proc.stack.SetPC(m.Base + 0x27ad2c%0x7ffff) // keep within mapping
	proc.lang = ustack.LangPHP
	proc.head = 3000
	st := ustack.NewInterpState(ustack.LangPHP, proc.mem, 3000, 900)
	st.Push("index.php", 3)
	st.Push("gcal.php", 57)

	evil := &fakeRes{sid: sid(pol, "tmp_t"), id: 8}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: evil}); v != VerdictDrop {
		t.Error("script-level entrypoint rule should DROP")
	}
	// After the script returns, the rule no longer applies.
	st.Pop()
	proc.ps.BeginSyscall() // invalidate cached entrypoints
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: evil}); v != VerdictAccept {
		t.Error("rule should not fire outside the script frame")
	}
}

// --- match modules --------------------------------------------------------

func TestStateTargetAndMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Paper rules R5/R6 pattern: record inode at bind, drop chmod on a
	// different inode.
	e.Append("input", &Rule{
		Ops:    NewOpSet(OpSocketBind),
		Target: &StateTarget{Key: 0xbeef, Val: Value{Ref: RefIno}},
	})
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpSocketSetattr),
		Matches: []Match{&StateMatch{Key: 0xbeef, Cmp: Value{Ref: RefIno}, Nequal: true}},
		Target:  Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/bin/dbus-daemon")
	sock := &fakeRes{sid: sid(pol, "tmp_t"), id: 77, class: mac.ClassSockFile}

	if v := e.Filter(&Request{Proc: proc, Op: OpSocketBind, Obj: sock}); v != VerdictAccept {
		t.Fatal("bind should pass and record state")
	}
	if got, _ := proc.ps.Get(0xbeef); got != 77 {
		t.Fatalf("state = %d, want 77", got)
	}
	// chmod on same inode: fine.
	if v := e.Filter(&Request{Proc: proc, Op: OpSocketSetattr, Obj: sock}); v != VerdictAccept {
		t.Error("setattr on recorded inode should pass")
	}
	// Adversary squatted a different inode in between.
	squat := &fakeRes{sid: sid(pol, "tmp_t"), id: 78, class: mac.ClassSockFile}
	if v := e.Filter(&Request{Proc: proc, Op: OpSocketSetattr, Obj: squat}); v != VerdictDrop {
		t.Error("setattr on different inode should DROP (TOCTTOU)")
	}
}

func TestStateMatchMissingKeyNeverMatches(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{
		Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(0), Nequal: true}},
		Target:  Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/bin/x")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{}}); v != VerdictAccept {
		t.Error("unset STATE key must not match even with --nequal")
	}
}

func TestCompareMatchSymlinkOwner(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Paper rule R8: SymLinksIfOwnerMatch as a firewall rule.
	e.Append("input", &Rule{
		Ops: NewOpSet(OpLnkFileRead),
		Matches: []Match{&CompareMatch{
			V1: Value{Ref: RefDACOwner}, V2: Value{Ref: RefTgtDACOwner}, Nequal: true,
		}},
		Target: Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")

	same := &fakeRes{class: mac.ClassLnkFile, owner: 33, tgtOwner: 33, tgtOK: true}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: same}); v != VerdictAccept {
		t.Error("owner-matching symlink should pass")
	}
	diff := &fakeRes{class: mac.ClassLnkFile, owner: 1000, tgtOwner: 0, tgtOK: true}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: diff}); v != VerdictDrop {
		t.Error("owner-mismatched symlink should DROP")
	}
	// Target unresolvable: context unavailable, rule does not apply.
	dangling := &fakeRes{class: mac.ClassLnkFile, owner: 1000, tgtOK: false}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: dangling}); v != VerdictAccept {
		t.Error("dangling symlink: COMPARE context unavailable, must not DROP")
	}
}

func TestSignalChainRules(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.NewChain("signal_chain")
	sigKey := uint64(0x517)
	// R9: jump signal deliveries to signal_chain.
	e.Append("input", &Rule{Ops: NewOpSet(OpSignalDeliver), Target: &JumpTarget{ChainName: "signal_chain"}})
	// R10: drop if already in a handler.
	e.Append("signal_chain", &Rule{
		Matches: []Match{&SignalMatch{}, &StateMatch{Key: sigKey, Cmp: Literal(1)}},
		Target:  Drop(),
	})
	// R11: else record that we are entering a handler.
	e.Append("signal_chain", &Rule{
		Matches: []Match{&SignalMatch{}},
		Target:  &StateTarget{Key: sigKey, Val: Literal(1)},
	})
	// R12: sigreturn resets the flag (syscallbegin chain).
	e.Append("syscallbegin", &Rule{
		Matches: []Match{&SyscallArgsMatch{Arg: 0, Equal: 500}},
		Target:  &StateTarget{Key: sigKey, Val: Literal(0)},
	})

	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/sbin/sshd")
	sig := &SignalInfo{Signal: 14, HasHandler: true}
	sigObj := &fakeRes{id: 14, class: mac.ClassProcess}

	// First delivery: allowed, records handler entry.
	if v := e.Filter(&Request{Proc: proc, Op: OpSignalDeliver, Obj: sigObj, Sig: sig}); v != VerdictAccept {
		t.Fatal("first signal should deliver")
	}
	// Second delivery while in handler: dropped (re-entrancy race).
	if v := e.Filter(&Request{Proc: proc, Op: OpSignalDeliver, Obj: sigObj, Sig: sig}); v != VerdictDrop {
		t.Error("nested signal should DROP")
	}
	// sigreturn: clears the flag.
	proc.ps.BeginSyscall()
	e.Filter(&Request{Proc: proc, Op: OpSyscallBegin, SyscallNR: 500})
	if v := e.Filter(&Request{Proc: proc, Op: OpSignalDeliver, Obj: sigObj, Sig: sig}); v != VerdictAccept {
		t.Error("after sigreturn, signals deliver again")
	}
	// Unblockable signals are never dropped.
	kill := &SignalInfo{Signal: 9, HasHandler: true, Unblockable: true}
	e.Filter(&Request{Proc: proc, Op: OpSignalDeliver, Obj: sigObj, Sig: sig}) // re-enter handler
	if v := e.Filter(&Request{Proc: proc, Op: OpSignalDeliver, Obj: sigObj, Sig: kill}); v != VerdictAccept {
		t.Error("SIGKILL-like must not be dropped")
	}
}

func TestAdvAccessMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpFileOpen),
		Matches: []Match{&AdvAccessMatch{Write: true, Want: true}},
		Target:  Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	lowIntegrity := &fakeRes{sid: sid(pol, "tmp_t")} // user_t writes tmp_t
	highIntegrity := &fakeRes{sid: sid(pol, "lib_t")}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: lowIntegrity}); v != VerdictDrop {
		t.Error("adversary-writable resource should DROP")
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: highIntegrity}); v != VerdictAccept {
		t.Error("high-integrity resource should pass")
	}
}

// --- optimizations ----------------------------------------------------------

func TestContextCacheWithinSyscall(t *testing.T) {
	pol := testPolicy()
	run := func(cache bool) (collections uint64) {
		e := New(pol, Config{CtxCache: cache, LazyCtx: true})
		e.Append("input", entryRule(pol, Drop()))
		proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
		setupLdSo(t, proc)
		// tmp_t passes the object match, so the entrypoint check (and thus
		// stack unwinding) runs on every evaluation.
		obj := &fakeRes{sid: sid(pol, "tmp_t")}
		proc.ps.BeginSyscall()
		// Several resource requests within one syscall (as in pathname
		// resolution).
		for i := 0; i < 5; i++ {
			e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: obj})
		}
		return e.Stats.CtxCollections.Load()
	}
	if got := run(true); got != 1 {
		t.Errorf("with cache: %d collections, want 1", got)
	}
	if got := run(false); got != 5 {
		t.Errorf("without cache: %d collections, want 5", got)
	}
}

// TestContextCacheAcrossSyscalls pins the generation-keyed cache contract:
// the entrypoint unwind is keyed on the (stack, address-space) generation
// pair, not the syscall sequence. An unchanged stack keeps the cache warm
// across any number of syscalls (one collection per program phase); any
// stack mutation — a new call frame here — forces a fresh unwind.
func TestContextCacheAcrossSyscalls(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Config{CtxCache: true, LazyCtx: true})
	e.Append("input", entryRule(pol, Drop()))
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	setupLdSo(t, proc)
	obj := &fakeRes{sid: sid(pol, "tmp_t")}
	for i := 0; i < 3; i++ {
		proc.ps.BeginSyscall()
		e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: obj})
	}
	if got := e.Stats.CtxCollections.Load(); got != 1 {
		t.Errorf("collections = %d, want 1 (stack unchanged across syscalls)", got)
	}
	if err := proc.stack.Call(0x9999); err != nil {
		t.Fatal(err)
	}
	proc.ps.BeginSyscall()
	e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: obj})
	if got := e.Stats.CtxCollections.Load(); got != 2 {
		t.Errorf("collections = %d, want 2 after a stack mutation", got)
	}
}

func TestLazyContextSkipsUnneededWork(t *testing.T) {
	pol := testPolicy()
	// The rule needs entrypoints only for FILE_OPEN; a read request should
	// not unwind under lazy mode but must under eager mode.
	count := func(lazy bool) uint64 {
		e := New(pol, Config{LazyCtx: lazy})
		e.Append("input", entryRule(pol, Drop()))
		proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
		setupLdSo(t, proc)
		e.Filter(&Request{Proc: proc, Op: OpFileRead, Obj: &fakeRes{sid: sid(pol, "lib_t")}})
		return e.Stats.CtxCollections.Load()
	}
	if got := count(true); got != 0 {
		t.Errorf("lazy: %d collections, want 0", got)
	}
	if got := count(false); got == 0 {
		t.Error("eager: expected unconditional context collection")
	}
}

func TestEptChainsSkipInapplicableRules(t *testing.T) {
	pol := testPolicy()
	evaluated := func(ept bool) uint64 {
		e := New(pol, Config{CtxCache: true, LazyCtx: true, EptChains: ept})
		// 50 rules for entrypoints this process never reaches.
		for i := 0; i < 50; i++ {
			e.Append("input", &Rule{
				Program:  "/usr/bin/other",
				Entry:    uint64(0x1000 + i),
				EntrySet: true,
				Ops:      NewOpSet(OpFileOpen),
				Target:   Drop(),
			})
		}
		proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
		setupLdSo(t, proc)
		e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "lib_t")}})
		return e.Stats.RulesEvaluated.Load()
	}
	withEpt, withoutEpt := evaluated(true), evaluated(false)
	if withEpt != 0 {
		t.Errorf("EPTSPC evaluated %d rules, want 0", withEpt)
	}
	if withoutEpt != 50 {
		t.Errorf("linear scan evaluated %d rules, want 50", withoutEpt)
	}
}

func TestEptChainsSameVerdictAsLinear(t *testing.T) {
	// Property: for deny-only rules, EPTSPC and linear traversal agree.
	pol := testPolicy()
	build := func(cfg Config) *Engine {
		e := New(pol, cfg)
		e.Append("input", entryRule(pol, Drop()))
		e.Append("input", &Rule{
			Object: NewSIDSet(false, sid(pol, "secret_t")),
			Ops:    NewOpSet(OpFileOpen),
			Target: Drop(),
		})
		return e
	}
	objs := []*fakeRes{
		{sid: sid(pol, "tmp_t"), id: 1},
		{sid: sid(pol, "lib_t"), id: 2},
		{sid: sid(pol, "secret_t"), id: 3},
	}
	for _, withStack := range []bool{true, false} {
		linear := build(Config{CtxCache: true, LazyCtx: true})
		indexed := build(Optimized())
		for _, obj := range objs {
			p1 := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
			p2 := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
			if withStack {
				setupLdSo(t, p1)
				setupLdSo(t, p2)
			}
			v1 := linear.Filter(&Request{Proc: p1, Op: OpFileOpen, Obj: obj})
			v2 := indexed.Filter(&Request{Proc: p2, Op: OpFileOpen, Obj: obj})
			if v1 != v2 {
				t.Errorf("obj %d stack=%v: linear %v, indexed %v", obj.id, withStack, v1, v2)
			}
		}
	}
}

// --- engine plumbing ------------------------------------------------------

func TestFlushAndRuleCount(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", entryRule(pol, Drop()))
	e.Append("syscallbegin", &Rule{Target: Accept()})
	if e.RuleCount() != 2 {
		t.Errorf("RuleCount = %d, want 2", e.RuleCount())
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if e.RuleCount() != 0 {
		t.Error("Flush left rules behind")
	}
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{}}); v != VerdictAccept {
		t.Error("flushed engine must default-allow")
	}
}

func TestInstallValidation(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	if err := e.Append("input", &Rule{}); err == nil {
		t.Error("rule without target must be rejected")
	}
	if err := e.Append("input", &Rule{EntrySet: true, Target: Drop()}); err == nil {
		t.Error("entrypoint without program must be rejected")
	}
	if err := e.Append("nochain", &Rule{Target: Drop()}); err == nil {
		t.Error("unknown chain must be rejected")
	}
	if err := e.NewChain("input"); err == nil {
		t.Error("duplicate chain must be rejected")
	}
}

func TestInsertOrder(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	a := &Rule{Target: Accept()}
	d := &Rule{Target: Drop()}
	e.Append("input", a)
	e.Insert("input", d) // prepend: DROP should win
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{}}); v != VerdictDrop {
		t.Error("inserted rule should run first")
	}
}

// reentrantTarget triggers a nested Filter from within rule evaluation,
// as happens when a context module's resource lookup is itself mediated.
type reentrantTarget struct {
	e     *Engine
	inner *Request
	seen  *Verdict
}

func (t *reentrantTarget) TargetName() string { return "REENTER" }
func (t *reentrantTarget) Needs() CtxKind     { return 0 }
func (t *reentrantTarget) Args() string       { return "" }
func (t *reentrantTarget) Fire(ctx *EvalCtx) Action {
	v := t.e.Filter(t.inner)
	*t.seen = v
	return Continue
}

func TestReentrantTraversal(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Config{}) // unoptimized: pure chain walk
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")

	var innerVerdict Verdict
	inner := &Request{Proc: proc, Op: OpLnkFileRead, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}
	e.Append("input", &Rule{
		Ops:    NewOpSet(OpFileOpen),
		Target: &reentrantTarget{e: e, inner: inner, seen: &innerVerdict},
	})
	e.Append("input", &Rule{
		Object: NewSIDSet(false, sid(pol, "tmp_t")),
		Ops:    NewOpSet(OpLnkFileRead),
		Target: Drop(),
	})

	// Outer request triggers the nested one; both must see correct verdicts
	// because traversal state is per process and stack-disciplined.
	v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "lib_t")}})
	if v != VerdictAccept {
		t.Errorf("outer verdict = %v, want ACCEPT", v)
	}
	if innerVerdict != VerdictDrop {
		t.Errorf("inner verdict = %v, want DROP", innerVerdict)
	}
	if len(proc.ps.traversal) != 0 {
		t.Error("traversal stack leaked frames")
	}
}

func TestProcStateClone(t *testing.T) {
	ps := NewProcState()
	ps.Set(1, 100)
	child := ps.Clone()
	child.Set(1, 200)
	if v, _ := ps.Get(1); v != 100 {
		t.Error("clone aliases parent dictionary")
	}
	if v, _ := child.Get(1); v != 200 {
		t.Error("clone lost write")
	}
}

func TestOpParseRoundTrip(t *testing.T) {
	for op := Op(1); op < opCount; op++ {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("round trip %v: %v, %v", op, got, err)
		}
	}
	if _, err := ParseOp("NOT_AN_OP"); err == nil {
		t.Error("bad op should fail")
	}
	if op, err := ParseOp("LINK_READ"); err != nil || op != OpLnkFileRead {
		t.Error("LINK_READ alias broken")
	}
}

func TestOpSetEmptyMatchesAll(t *testing.T) {
	var s OpSet
	if !s.Has(OpFileOpen) || !s.Has(OpSignalDeliver) {
		t.Error("empty OpSet must match every op")
	}
	s = NewOpSet(OpFileOpen)
	if s.Has(OpFileRead) {
		t.Error("set should not match absent ops")
	}
}

func TestLogTarget(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	var records []LogRecord
	e.Logger = func(r LogRecord) { records = append(records, r) }
	e.Append("input", &Rule{
		Ops:    NewOpSet(OpFileOpen),
		Target: &LogTarget{Prefix: "audit"},
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	setupLdSo(t, proc)
	obj := &fakeRes{sid: sid(pol, "tmp_t"), id: 12, path: "/tmp/x"}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: obj}); v != VerdictAccept {
		t.Fatal("LOG must not change the verdict")
	}
	if len(records) != 1 {
		t.Fatalf("records = %d, want 1", len(records))
	}
	r := records[0]
	if r.Prefix != "audit" || r.ResourceID != 12 || r.Path != "/tmp/x" || !r.AdvWrite {
		t.Errorf("record = %+v", r)
	}
	if len(r.Entrypoints) == 0 {
		t.Error("record should include entrypoints")
	}
}

func TestSIDSetString(t *testing.T) {
	pol := testPolicy()
	set := NewSIDSet(true, sid(pol, "lib_t"), sid(pol, "tmp_t"))
	s := set.String(pol.SIDs())
	if s != "~{lib_t|tmp_t}" && s != "~{tmp_t|lib_t}" {
		t.Errorf("String = %q", s)
	}
	var nilSet *SIDSet
	if nilSet.String(pol.SIDs()) != "any" {
		t.Error("nil set renders as any")
	}
	if !nilSet.Contains(99) {
		t.Error("nil set matches everything")
	}
}

func TestRuleString(t *testing.T) {
	pol := testPolicy()
	r := entryRule(pol, Drop())
	s := r.String(pol.SIDs())
	for _, want := range []string{"-p /lib/ld-2.15.so", "-i 0x596b", "-o FILE_OPEN", "-j DROP", "~{lib_t}"} {
		if !contains(s, want) {
			t.Errorf("rule string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
