package pf

import (
	"sync"
	"testing"
)

// TestConcurrentFilterRecompileStress hammers the lock-free read path while
// writers force full dispatch-index recompiles through Append, Remove, and
// Flush. Run under -race this checks that a compiled snapshot is published
// atomically and never mutated after the fact; functionally it checks that
// every reader sees either the old or the new ruleset, never a torn one.
func TestConcurrentFilterRecompileStress(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	httpd := sid(pol, "httpd_t")
	tmp := sid(pol, "tmp_t")

	mkRule := func() *Rule {
		return &Rule{
			Subject: NewSIDSet(false, httpd),
			Ops:     NewOpSet(OpFileOpen),
			Target:  Drop(),
		}
	}

	const (
		filterProcs = 4
		writerIters = 400
		readerIters = 4000
	)
	var wg sync.WaitGroup

	for g := 0; g < filterProcs; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			proc := newFakeProc(pid, httpd, "/usr/bin/apache2")
			setupLdSo(t, proc)
			req := &Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: tmp, id: 9}}
			for i := 0; i < readerIters; i++ {
				proc.ps.BeginSyscall()
				// Any verdict is legal mid-update; the assertion is the
				// absence of races, panics, and torn snapshots.
				e.Filter(req)
			}
		}(g + 1)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		var installed []*Rule
		for i := 0; i < writerIters; i++ {
			switch i % 8 {
			case 6:
				if err := e.Flush(); err != nil {
					t.Error(err)
				}
				installed = nil
			case 7:
				if len(installed) > 0 {
					victim := installed[0]
					installed = installed[1:]
					if err := e.Remove("input", func(r *Rule) bool { return r == victim }); err != nil {
						t.Error(err)
					}
				}
			case 3:
				r := entryRule(pol, Drop())
				if err := e.Append("input", r); err != nil {
					t.Error(err)
				}
				installed = append(installed, r)
			default:
				r := mkRule()
				if err := e.Append("input", r); err != nil {
					t.Error(err)
				}
				installed = append(installed, r)
			}
		}
	}()

	wg.Wait()
	if got := e.Stats.Requests.Load(); got == 0 {
		t.Fatal("no requests filtered during stress")
	}
}
