package pf

import (
	"strings"
	"testing"
)

// TestModuleRenderings pins the rule-language spellings every match and
// target module renders — these must stay parseable by pftables (the
// save/restore round trip in internal/pftables depends on them).
func TestModuleRenderings(t *testing.T) {
	cases := []struct {
		name string
		mod  interface {
			Args() string
		}
		modName string
		want    []string
	}{
		{"state-match", &StateMatch{Key: 0xbeef, Cmp: Value{Ref: RefIno}, Nequal: true}, "STATE",
			[]string{"--key 0xbeef", "--cmp C_INO", "--nequal"}},
		{"state-match-literal", &StateMatch{Key: 1, Cmp: Literal(7)}, "STATE",
			[]string{"--cmp 7"}},
		{"compare", &CompareMatch{V1: Value{Ref: RefDACOwner}, V2: Value{Ref: RefTgtDACOwner}, Nequal: true}, "COMPARE",
			[]string{"--v1 C_DAC_OWNER", "--v2 C_TGT_DAC_OWNER", "--nequal"}},
		{"signal", &SignalMatch{}, "SIGNAL_MATCH", nil},
		{"syscall-args", &SyscallArgsMatch{Arg: 0, Equal: 27}, "SYSCALL_ARGS",
			[]string{"--arg 0", "--equal 27"}},
		{"adv-access", &AdvAccessMatch{Write: true, Want: true}, "ADV_ACCESS",
			[]string{"--write", "--is true"}},
	}
	for _, c := range cases {
		args := c.mod.Args()
		for _, w := range c.want {
			if !strings.Contains(args, w) {
				t.Errorf("%s args %q missing %q", c.name, args, w)
			}
		}
		if m, ok := c.mod.(Match); ok && m.ModName() != c.modName {
			t.Errorf("%s ModName = %q, want %q", c.name, m.ModName(), c.modName)
		}
	}

	targets := []struct {
		tgt  Target
		name string
		args []string
	}{
		{Drop(), "DROP", nil},
		{Accept(), "ACCEPT", nil},
		{&ReturnTarget{}, "RETURN", nil},
		{&JumpTarget{ChainName: "signal_chain"}, "signal_chain", nil},
		{&StateTarget{Key: 0x9, Val: Literal(1)}, "STATE", []string{"--set", "--key 0x9", "--value 1"}},
		{&StateTarget{Key: 0x9, Val: Value{Ref: RefIno}}, "STATE", []string{"--value C_INO"}},
		{&LogTarget{Prefix: "audit"}, "LOG", []string{`--prefix "audit"`}},
		{&LogTarget{}, "LOG", nil},
	}
	for _, c := range targets {
		if c.tgt.TargetName() != c.name {
			t.Errorf("TargetName = %q, want %q", c.tgt.TargetName(), c.name)
		}
		args := c.tgt.Args()
		for _, w := range c.args {
			if !strings.Contains(args, w) {
				t.Errorf("%s args %q missing %q", c.name, args, w)
			}
		}
	}
}

func TestRefNameRoundTrip(t *testing.T) {
	for _, name := range []string{"C_INO", "C_OBJ_SID", "C_DAC_OWNER", "C_TGT_DAC_OWNER", "C_SIGNAL"} {
		ref, ok := ParseRef(name)
		if !ok {
			t.Errorf("ParseRef(%q) failed", name)
			continue
		}
		if got := RefName(ref); got != name {
			t.Errorf("RefName(%v) = %q, want %q", ref, got, name)
		}
	}
	if _, ok := ParseRef("C_BOGUS"); ok {
		t.Error("bogus ref parsed")
	}
	if RefName(RefNone) != "?" {
		t.Error("RefName of unknown should be ?")
	}
}

func TestResolveValueEdgeCases(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")

	// Nil-object requests: object-derived references are unavailable.
	ctx := &EvalCtx{Req: &Request{Proc: proc, Op: OpSyscallBegin}, engine: e}
	for _, ref := range []ValueRef{RefIno, RefObjSID, RefDACOwner, RefSignal} {
		if _, ok := ctx.Resolve(Value{Ref: ref}); ok {
			t.Errorf("ref %v should be unavailable without an object", ref)
		}
	}
	if _, ok := ctx.Resolve(Value{Ref: RefNone}); ok {
		t.Error("RefNone should never resolve")
	}

	// With an object, everything but the dangling-target ref resolves.
	obj := &fakeRes{sid: sid(pol, "tmp_t"), id: 42, owner: 7}
	ctx = &EvalCtx{Req: &Request{Proc: proc, Op: OpFileOpen, Obj: obj}, engine: e}
	if v, ok := ctx.Resolve(Value{Ref: RefIno}); !ok || v != 42 {
		t.Errorf("C_INO = %d, %v", v, ok)
	}
	if v, ok := ctx.Resolve(Value{Ref: RefObjSID}); !ok || v != uint64(obj.sid) {
		t.Errorf("C_OBJ_SID = %d, %v", v, ok)
	}
	if v, ok := ctx.Resolve(Value{Ref: RefDACOwner}); !ok || v != 7 {
		t.Errorf("C_DAC_OWNER = %d, %v", v, ok)
	}
	if _, ok := ctx.Resolve(Value{Ref: RefTgtDACOwner}); ok {
		t.Error("C_TGT_DAC_OWNER should be unavailable for non-links")
	}
	// Signal value with signal info present.
	ctx = &EvalCtx{Req: &Request{Proc: proc, Op: OpSignalDeliver, Obj: obj,
		Sig: &SignalInfo{Signal: 14}}, engine: e}
	if v, ok := ctx.Resolve(Value{Ref: RefSignal}); !ok || v != 14 {
		t.Errorf("C_SIGNAL = %d, %v", v, ok)
	}
}

func TestEngineAccessors(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Config{LazyCtx: true})
	if e.Policy() != pol {
		t.Error("Policy accessor")
	}
	if !e.Config().LazyCtx || e.Config().EptChains {
		t.Errorf("Config = %+v", e.Config())
	}
	names := e.Chains()
	want := map[string]bool{"input": true, "syscallbegin": true, "mangle/input": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected chain %q", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing chains: %v", want)
	}
	if _, ok := e.Chain("input"); !ok {
		t.Error("Chain(input) missing")
	}
	if _, ok := e.Chain("nope"); ok {
		t.Error("Chain(nope) should not exist")
	}
}

func TestSyscallArgsMatchSlots(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	req := &Request{Proc: proc, Op: OpSyscallBegin, SyscallNR: 5, SyscallArgs: []uint64{10, 20}}
	ctx := &EvalCtx{Req: req, engine: e}

	cases := []struct {
		arg   int
		equal uint64
		want  bool
	}{
		{0, 5, true}, // slot 0 = syscall number
		{0, 6, false},
		{1, 10, true}, // first argument
		{2, 20, true},
		{3, 0, false}, // out of range never matches
		{-1, 0, false},
	}
	for _, c := range cases {
		m := &SyscallArgsMatch{Arg: c.arg, Equal: c.equal}
		if got := m.Match(ctx); got != c.want {
			t.Errorf("arg %d equal %d: %v, want %v", c.arg, c.equal, got, c.want)
		}
	}
}

func TestAdvAccessReadDirection(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpFileRead),
		Matches: []Match{&AdvAccessMatch{Write: false, Want: true}},
		Target:  Drop(),
	})
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/x")
	// tmp_t is adversary-readable in the test policy (user_t reads it).
	if v := e.Filter(&Request{Proc: proc, Op: OpFileRead, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Error("adversary-readable resource should DROP")
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileRead, Obj: &fakeRes{sid: sid(pol, "shadow_t")}}); v != VerdictAccept {
		t.Error("secret resource should pass the read-direction match")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op = %q", got)
	}
	if got := Verdict(0).String(); got != "ACCEPT" {
		t.Errorf("verdict 0 = %q", got)
	}
	if got := VerdictDrop.String(); got != "DROP" {
		t.Errorf("drop = %q", got)
	}
}
