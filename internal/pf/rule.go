package pf

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"pfirewall/internal/mac"
)

// SIDSet is a possibly-negated set of MAC labels used by the -s and -d
// default matches. The SYSHIGH keyword and label names are resolved to SIDs
// at rule-install time (paper Section 5.2: pftables "translates SELinux
// security labels into security IDs for fast matching").
type SIDSet struct {
	sids   map[mac.SID]bool
	Negate bool
}

// NewSIDSet builds a set from resolved SIDs.
func NewSIDSet(negate bool, sids ...mac.SID) *SIDSet {
	m := make(map[mac.SID]bool, len(sids))
	for _, s := range sids {
		m[s] = true
	}
	return &SIDSet{sids: m, Negate: negate}
}

// Contains applies the set (with negation) to s. A nil set matches anything.
func (ss *SIDSet) Contains(s mac.SID) bool {
	if ss == nil {
		return true
	}
	in := ss.sids[s]
	if ss.Negate {
		return !in
	}
	return in
}

// SIDs returns the member SIDs in ascending order.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (ss *SIDSet) SIDs() []mac.SID {
	out := make([]mac.SID, 0, len(ss.sids))
	for s := range ss.sids {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set in rule-language syntax using tbl for names.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (ss *SIDSet) String(tbl *mac.SIDTable) string {
	if ss == nil {
		return "any"
	}
	names := make([]string, 0, len(ss.sids))
	for _, s := range ss.SIDs() {
		names = append(names, string(tbl.Label(s)))
	}
	body := "{" + strings.Join(names, "|") + "}"
	if ss.Negate {
		return "~" + body
	}
	return body
}

// Match is an extension match module (paper Section 5.1: "user-defined
// classifiers can be added through extensible match modules, similar to how
// iptables extensibly handles network protocols").
type Match interface {
	// ModName returns the module name used after -m.
	ModName() string
	// Needs declares the context fields the module reads, so lazy
	// retrieval can gather exactly those (Section 4.2).
	Needs() CtxKind
	// Match evaluates the module against the collected context.
	Match(ctx *EvalCtx) bool
	// Args renders the module's rule-language arguments.
	Args() string
}

// Action is the outcome of firing a target: a final verdict, a jump into
// another chain, a return to the calling chain, or plain continuation (for
// side-effecting targets such as STATE and LOG).
type Action struct {
	Final   bool
	Verdict Verdict
	Jump    string // non-empty: push the named chain and continue there
	Return  bool   // pop back to the calling chain (iptables RETURN)
}

// Continue is the action of non-terminal targets.
var Continue = Action{}

// Target is a terminal or side-effecting rule action.
type Target interface {
	// TargetName returns the name used after -j.
	TargetName() string
	// Needs declares required context fields.
	Needs() CtxKind
	// Fire executes the target and reports how traversal proceeds.
	Fire(ctx *EvalCtx) Action
	// Args renders the target's rule-language arguments.
	Args() string
}

// Rule is one firewall rule: default matches plus extension matches plus a
// target (paper Table 3).
type Rule struct {
	// Subject constrains the process label (-s). nil matches any.
	Subject *SIDSet
	// Object constrains the resource label (-d). nil matches any.
	Object *SIDSet
	// Program constrains where the entrypoint lives (-p): a binary path.
	// When EntrySet, the pair (Program, Entry) must appear as a stack
	// frame; otherwise Program is matched against the process's binary.
	Program string
	// Entry is the entrypoint PC offset (-i), relative to Program's base.
	Entry    uint64
	EntrySet bool
	// Ops constrains the mediated operation (-o). Zero matches any.
	Ops OpSet
	// ResID constrains the resource identifier (inode or signal number).
	ResID    uint64
	ResIDSet bool

	// Matches are extension modules, all of which must match.
	Matches []Match
	// Target fires when every match succeeds.
	Target Target

	// Hits counts how many requests matched this rule (like iptables
	// packet counters). Maintained atomically by the engine.
	Hits atomic.Uint64

	// Src locates the rule in the pftables source it was parsed from, so
	// analyzer findings and listings can point at the offending line. Zero
	// for rules built programmatically.
	Src Pos

	// ord is the rule's stable order key within its chain's compiled
	// traversal list (compile.go). Unlike a positional index it survives
	// neighbor inserts/removes, which is what lets a publish patch only the
	// dispatch buckets a delta touches. Assigned under the engine's write
	// lock (gap-allocated on install, renumbered on full recompile); the
	// mediation path never reads it — dispatch reads the indexedRule copy.
	ord int64
}

// needs aggregates the context demanded by the rule's matches and target.
func (r *Rule) needs() CtxKind {
	var k CtxKind
	if r.EntrySet || r.Program != "" {
		k |= CtxEntrypoints
	}
	for _, m := range r.Matches {
		k |= m.Needs()
	}
	if r.Target != nil {
		k |= r.Target.Needs()
	}
	return k
}

// matchesDefaults evaluates the rule's default matches against ctx,
// cheapest first (the operation bitmask eliminates most rules before any
// map lookup or context collection, like protocol matches in iptables).
func (r *Rule) matchesDefaults(ctx *EvalCtx) bool {
	req := ctx.Req
	if !r.Ops.Has(req.Op) {
		return false
	}
	if !r.Subject.Contains(req.Proc.SubjectSID()) {
		return false
	}
	if r.Object != nil {
		if req.Obj == nil || !r.Object.Contains(req.Obj.SID()) {
			return false
		}
	}
	if r.ResIDSet {
		if req.Obj == nil || req.Obj.ID() != r.ResID {
			return false
		}
	}
	if r.EntrySet {
		// An unwind failure yields no entrypoints, and a rule requiring one
		// then cannot match (fail-safe: a process that corrupts its own
		// stack only loses its own protection, paper Section 4.4). Binary
		// and interpreter frames match identically — by (program, offset).
		entries, _ := ctx.Entrypoints()
		found := false
		for _, e := range entries {
			if e.Path == r.Program && e.Off == r.Entry {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	} else if r.Program != "" {
		if req.Proc.ExecPath() != r.Program {
			return false
		}
	}
	return true
}

// String renders the rule approximately in pftables syntax.
//
//pflint:allow-fn — renders the full pftables rule text for -L listings and log lines; never on the accept path.
func (r *Rule) String(tbl *mac.SIDTable) string {
	var b strings.Builder
	if r.Program != "" {
		fmt.Fprintf(&b, "-p %s ", r.Program)
	}
	if r.EntrySet {
		fmt.Fprintf(&b, "-i %#x ", r.Entry)
	}
	if r.Subject != nil {
		fmt.Fprintf(&b, "-s %s ", r.Subject.String(tbl))
	}
	if r.Object != nil {
		fmt.Fprintf(&b, "-d %s ", r.Object.String(tbl))
	}
	if r.Ops != 0 {
		var names []string
		for op := Op(1); op < opCount; op++ {
			if r.Ops&(1<<op) != 0 {
				names = append(names, op.String())
			}
		}
		fmt.Fprintf(&b, "-o %s ", strings.Join(names, ","))
	}
	if r.ResIDSet {
		fmt.Fprintf(&b, "--res-id %d ", r.ResID)
	}
	for _, m := range r.Matches {
		fmt.Fprintf(&b, "-m %s %s ", m.ModName(), m.Args())
	}
	if r.Target != nil {
		fmt.Fprintf(&b, "-j %s", r.Target.TargetName())
		if a := r.Target.Args(); a != "" {
			fmt.Fprintf(&b, " %s", a)
		}
	}
	return strings.TrimSpace(b.String())
}
