package pf

// ProcState is the per-process firewall state the paper adds to
// struct task_struct (Sections 5.1–5.2):
//
//   - the STATE module's key→value dictionary, which records facts across
//     system calls (e.g. the inode bound by dbus-daemon, or whether the
//     process is inside a signal handler);
//   - the rule-traversal stack, held per process rather than per table so
//     the engine runs with preemption enabled and is safely re-entrant;
//   - the context cache, keyed by stack/address-space generations, so
//     entrypoint unwinding happens at most once per program phase even
//     though several resource requests are mediated during pathname
//     resolution — and across system calls whose stacks did not change;
//   - a free list of evaluation contexts, so steady-state mediation
//     allocates nothing.
type ProcState struct {
	// Dict is the STATE match/target dictionary.
	Dict map[uint64]uint64

	// SyscallSeq is incremented by the kernel at each syscall entry;
	// exported for diagnostics and tests.
	SyscallSeq uint64

	// Entrypoint-unwind cache, valid while the owning process's
	// (StackGen, AddrSpace generation) pair equals the cached pair. The
	// cached slice is immutable once stored: a re-unwind always builds a
	// fresh slice, so consumers (including LOG records) may alias it freely.
	cachedEntries  []Entrypoint
	cachedEntryErr bool
	cacheStackGen  uint64
	cacheMapGen    uint64
	cacheValid     bool

	// mayMatchEpt memo: whether any executable mapping is named by an
	// indexed entrypoint rule, valid while both the address-space mapping
	// generation and the ruleset generation are unchanged. Both generations
	// are globally unique, so a memo taken against one address space (or one
	// engine's snapshot) can never be mistaken for another's — even across
	// execve, which swaps the address space under a surviving ProcState.
	eptMemoMayMatch bool
	eptMemoValid    bool
	eptMemoMapGen   uint64
	eptMemoRSGen    uint64

	// traversal is the reusable chain-traversal stack.
	traversal []traversalFrame

	// ctxFree is a LIFO free list of evaluation contexts. Mediation is
	// single-flow per process (the kernel never runs two syscalls of one
	// process concurrently), so no locking is needed; re-entrant evaluation
	// (a context module that itself triggers mediation) simply pops a
	// second context. LIFO keeps the hot context cache-warm.
	ctxFree []*EvalCtx
}

// NewProcState returns an empty per-process state.
func NewProcState() *ProcState {
	return &ProcState{Dict: make(map[uint64]uint64)}
}

// BeginSyscall marks a new system call: it advances the sequence number.
// The kernel calls this from its syscall-entry stub. It no longer
// invalidates the entrypoint cache — that cache is keyed on stack and
// address-space generations, which outlive individual system calls and
// change exactly when the stack does.
func (ps *ProcState) BeginSyscall() {
	ps.SyscallSeq++
}

// acquireCtx pops an evaluation context from the free list, allocating only
// when the list is empty (first use, or re-entrant evaluation one level
// deeper than ever before). The returned context is dirty; the caller must
// reset it before use.
func (ps *ProcState) acquireCtx() *EvalCtx {
	if n := len(ps.ctxFree); n > 0 {
		c := ps.ctxFree[n-1]
		ps.ctxFree[n-1] = nil
		ps.ctxFree = ps.ctxFree[:n-1]
		return c
	}
	return &EvalCtx{} //pflint:allow — pool miss: first request on this process; every later one reuses it
}

// releaseCtx clears the context's references and returns it to the free
// list. After release the caller must not touch the context: the next
// acquire may hand it to a different request.
func (ps *ProcState) releaseCtx(c *EvalCtx) {
	c.clear()
	ps.ctxFree = append(ps.ctxFree, c)
}

// Get reads a dictionary key; missing keys read as (0, false).
func (ps *ProcState) Get(key uint64) (uint64, bool) {
	v, ok := ps.Dict[key]
	return v, ok
}

// Set writes a dictionary key.
func (ps *ProcState) Set(key, val uint64) { ps.Dict[key] = val }

// Clone copies the state for fork(): the dictionary is duplicated, caches
// are not inherited (the child has its own syscalls).
func (ps *ProcState) Clone() *ProcState {
	n := NewProcState()
	for k, v := range ps.Dict {
		n.Dict[k] = v
	}
	return n
}

// traversalFrame records a position within a chain during rule traversal.
type traversalFrame struct {
	chain *Chain
	index int
}
