package pf

// ProcState is the per-process firewall state the paper adds to
// struct task_struct (Sections 5.1–5.2):
//
//   - the STATE module's key→value dictionary, which records facts across
//     system calls (e.g. the inode bound by dbus-daemon, or whether the
//     process is inside a signal handler);
//   - the rule-traversal stack, held per process rather than per table so
//     the engine runs with preemption enabled and is safely re-entrant;
//   - the context cache, keyed by syscall sequence number, so entrypoint
//     unwinding happens at most once per system call even though several
//     resource requests are mediated during pathname resolution.
type ProcState struct {
	// Dict is the STATE match/target dictionary.
	Dict map[uint64]uint64

	// SyscallSeq is incremented by the kernel at each syscall entry; the
	// context cache is valid only within one sequence number.
	SyscallSeq uint64

	cachedEntries  []Entrypoint
	cachedEntryErr bool
	cacheSeq       uint64
	cacheValid     bool

	// mayMatchEpt memo: whether any executable mapping is named by an
	// indexed entrypoint rule, valid while both the address-space mapping
	// generation and the ruleset generation are unchanged. Both generations
	// are globally unique, so a memo taken against one address space (or one
	// engine's snapshot) can never be mistaken for another's — even across
	// execve, which swaps the address space under a surviving ProcState.
	eptMemoMayMatch bool
	eptMemoValid    bool
	eptMemoMapGen   uint64
	eptMemoRSGen    uint64

	// traversal is the reusable chain-traversal stack.
	traversal []traversalFrame
}

// NewProcState returns an empty per-process state.
func NewProcState() *ProcState {
	return &ProcState{Dict: make(map[uint64]uint64)}
}

// BeginSyscall marks a new system call: it advances the sequence number,
// invalidating per-syscall cached context. The kernel calls this from its
// syscall-entry stub.
func (ps *ProcState) BeginSyscall() {
	ps.SyscallSeq++
	ps.cacheValid = false
}

// Get reads a dictionary key; missing keys read as (0, false).
func (ps *ProcState) Get(key uint64) (uint64, bool) {
	v, ok := ps.Dict[key]
	return v, ok
}

// Set writes a dictionary key.
func (ps *ProcState) Set(key, val uint64) { ps.Dict[key] = val }

// Clone copies the state for fork(): the dictionary is duplicated, caches
// are not inherited (the child has its own syscalls).
func (ps *ProcState) Clone() *ProcState {
	n := NewProcState()
	for k, v := range ps.Dict {
		n.Dict[k] = v
	}
	return n
}

// traversalFrame records a position within a chain during rule traversal.
type traversalFrame struct {
	chain *Chain
	index int
}
