package pf

import (
	"testing"
)

// findUnreach returns the analysis entry for (chain, index), if any.
func findUnreach(an *RulesetAnalysis, chain string, index int) (Unreachable, bool) {
	for _, u := range an.Unreachable {
		if u.Chain == chain && u.Index == index {
			return u, true
		}
	}
	return Unreachable{}, false
}

func TestCoversFields(t *testing.T) {
	pol := testPolicy()
	httpd, user := sid(pol, "httpd_t"), sid(pol, "user_t")
	tmp := sid(pol, "tmp_t")

	cases := []struct {
		name string
		a, b *Rule
		want bool
	}{
		{"any covers exact", &Rule{}, &Rule{Subject: NewSIDSet(false, httpd)}, true},
		{"exact superset covers subset",
			&Rule{Subject: NewSIDSet(false, httpd, user)},
			&Rule{Subject: NewSIDSet(false, httpd)}, true},
		{"exact does not cover wider",
			&Rule{Subject: NewSIDSet(false, httpd)},
			&Rule{Subject: NewSIDSet(false, httpd, user)}, false},
		{"exact never covers nil subject",
			&Rule{Subject: NewSIDSet(false, httpd)}, &Rule{}, false},
		{"negated covers disjoint exact",
			&Rule{Subject: NewSIDSet(true, user)},
			&Rule{Subject: NewSIDSet(false, httpd)}, true},
		{"negated does not cover overlapping exact",
			&Rule{Subject: NewSIDSet(true, httpd)},
			&Rule{Subject: NewSIDSet(false, httpd, user)}, false},
		{"negated subset covers negated superset",
			&Rule{Subject: NewSIDSet(true, httpd)},
			&Rule{Subject: NewSIDSet(true, httpd, user)}, true},
		{"negated superset does not cover negated subset",
			&Rule{Subject: NewSIDSet(true, httpd, user)},
			&Rule{Subject: NewSIDSet(true, httpd)}, false},
		{"exact never covers negated (open SID space)",
			&Rule{Subject: NewSIDSet(false, httpd, user, tmp)},
			&Rule{Subject: NewSIDSet(true, httpd)}, false},
		{"negated empty subject covers nil",
			&Rule{Subject: NewSIDSet(true)}, &Rule{}, true},
		{"object set never covers nil object (nil-obj requests)",
			&Rule{Object: NewSIDSet(true)}, &Rule{}, false},
		{"nil object covers object set",
			&Rule{}, &Rule{Object: NewSIDSet(false, tmp)}, true},
		{"empty ops cover all", &Rule{}, &Rule{Ops: NewOpSet(OpFileOpen)}, true},
		{"op superset covers subset",
			&Rule{Ops: NewOpSet(OpFileOpen, OpFileRead)},
			&Rule{Ops: NewOpSet(OpFileOpen)}, true},
		{"op subset does not cover superset",
			&Rule{Ops: NewOpSet(OpFileOpen)},
			&Rule{Ops: NewOpSet(OpFileOpen, OpFileRead)}, false},
		{"nonempty ops do not cover empty mask",
			&Rule{Ops: NewOpSet(OpFileOpen)}, &Rule{}, false},
		{"unset resid covers set", &Rule{}, &Rule{ResID: 7, ResIDSet: true}, true},
		{"set resid does not cover unset", &Rule{ResID: 7, ResIDSet: true}, &Rule{}, false},
		{"equal resid covers", &Rule{ResID: 7, ResIDSet: true}, &Rule{ResID: 7, ResIDSet: true}, true},
		{"different resid does not cover", &Rule{ResID: 7, ResIDSet: true}, &Rule{ResID: 8, ResIDSet: true}, false},
		{"no program covers program", &Rule{}, &Rule{Program: "/bin/sh"}, true},
		{"program-only covers same program-only",
			&Rule{Program: "/bin/sh"}, &Rule{Program: "/bin/sh"}, true},
		{"program-only does not cover entrypoint rule (ExecPath vs stack frame)",
			&Rule{Program: "/bin/sh"},
			&Rule{Program: "/bin/sh", Entry: 0x10, EntrySet: true}, false},
		{"entrypoint rule does not cover program-only",
			&Rule{Program: "/bin/sh", Entry: 0x10, EntrySet: true},
			&Rule{Program: "/bin/sh"}, false},
		{"identical entrypoint covers",
			&Rule{Program: "/bin/sh", Entry: 0x10, EntrySet: true},
			&Rule{Program: "/bin/sh", Entry: 0x10, EntrySet: true}, true},
		{"different offset does not cover",
			&Rule{Program: "/bin/sh", Entry: 0x10, EntrySet: true},
			&Rule{Program: "/bin/sh", Entry: 0x20, EntrySet: true}, false},
		{"no matches cover any matches",
			&Rule{}, &Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(2)}}}, true},
		{"identical match covers",
			&Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(2)}}},
			&Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(2)}}}, true},
		{"extra match in shadower does not cover",
			&Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(2)}}},
			&Rule{}, false},
		{"different match args do not cover",
			&Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(2)}}},
			&Rule{Matches: []Match{&StateMatch{Key: 1, Cmp: Literal(3)}}}, false},
	}
	for _, tc := range cases {
		if got := covers(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: covers = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAnalyzeShadowing(t *testing.T) {
	pol := testPolicy()
	httpd := sid(pol, "httpd_t")
	e := New(pol, Optimized())

	broad := &Rule{Subject: NewSIDSet(false, httpd), Target: Accept()}
	narrowConflict := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Drop()}
	narrowRedundant := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileRead), Target: Accept()}
	other := &Rule{Ops: NewOpSet(OpFileWrite), Target: Drop()}
	for _, r := range []*Rule{broad, narrowConflict, narrowRedundant, other} {
		if err := e.Append("input", r); err != nil {
			t.Fatal(err)
		}
	}

	an := e.Analyze()
	u, ok := findUnreach(an, "input", 1)
	if !ok || u.Kind != UnreachShadowed || u.ByIndex != 0 || u.SameVerdict {
		t.Errorf("conflicting shadow not found or wrong: %+v (ok=%v)", u, ok)
	}
	u, ok = findUnreach(an, "input", 2)
	if !ok || u.Kind != UnreachShadowed || !u.SameVerdict {
		t.Errorf("redundant shadow not found or wrong: %+v (ok=%v)", u, ok)
	}
	if _, ok := findUnreach(an, "input", 3); ok {
		t.Error("uncovered rule reported unreachable")
	}
	// The wildcard-subject rule is not covered by the httpd-only accept.
	if got := len(an.Unreachable); got != 2 {
		t.Errorf("unreachable count = %d, want 2: %+v", got, an.Unreachable)
	}
}

func TestAnalyzeStateStalenessGuard(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	st := func() Match { return &StateMatch{Key: 1, Cmp: Literal(1)} }

	// shadower with a STATE match, an intervening STATE target, then an
	// identical rule: the dictionary may have changed, no shadow claim.
	a := &Rule{Matches: []Match{st()}, Target: Drop()}
	setter := &Rule{Ops: NewOpSet(OpFileWrite), Target: &StateTarget{Key: 1, Val: Literal(1)}}
	b := &Rule{Matches: []Match{st()}, Target: Drop()}
	for _, r := range []*Rule{a, setter, b} {
		if err := e.Append("input", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := findUnreach(e.Analyze(), "input", 2); ok {
		t.Error("STATE-matched rule claimed shadowed across an intervening STATE target")
	}

	// Without the intervening mutation the claim is sound.
	e2 := New(pol, Optimized())
	for _, r := range []*Rule{
		{Matches: []Match{st()}, Target: Drop()},
		{Matches: []Match{st()}, Target: Drop()},
	} {
		if err := e2.Append("input", r); err != nil {
			t.Fatal(err)
		}
	}
	if u, ok := findUnreach(e2.Analyze(), "input", 1); !ok || u.Kind != UnreachShadowed {
		t.Errorf("clean STATE shadow not claimed: %+v (ok=%v)", u, ok)
	}
}

func TestAnalyzeReturnDoesNotShadowEntrypointRules(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	ret := &Rule{Target: &ReturnTarget{}}
	ept := &Rule{Program: "/lib/ld-2.15.so", Entry: 0x596b, EntrySet: true, Target: Drop()}
	plain := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	for _, r := range []*Rule{ret, ept, plain} {
		if err := e.Append("input", r); err != nil {
			t.Fatal(err)
		}
	}
	an := e.Analyze()
	if _, ok := findUnreach(an, "input", 1); ok {
		t.Error("RETURN claimed to shadow an entrypoint rule (ept scan ignores RETURN)")
	}
	// The generic rule after the base-chain RETURN is legitimately dead.
	if u, ok := findUnreach(an, "input", 2); !ok || u.Kind != UnreachShadowed || u.ByIndex != 0 {
		t.Errorf("generic rule after RETURN not claimed: %+v (ok=%v)", u, ok)
	}
}

func TestAnalyzeOpContext(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	if err := e.NewChain("uc"); err != nil {
		t.Fatal(err)
	}
	// A FILE_OPEN rule in syscallbegin can never match: that chain only
	// sees SYSCALL_BEGIN.
	misrouted := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Append("syscallbegin", misrouted); err != nil {
		t.Fatal(err)
	}
	// uc is reached only through a FILE_OPEN-restricted jump, so its
	// SOCKET_BIND rule is dead while its FILE_OPEN rule lives.
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: &JumpTarget{ChainName: "uc"}}); err != nil {
		t.Fatal(err)
	}
	dead := &Rule{Ops: NewOpSet(OpSocketBind), Target: Drop()}
	live := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Append("uc", dead); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("uc", live); err != nil {
		t.Fatal(err)
	}

	an := e.Analyze()
	if u, ok := findUnreach(an, "syscallbegin", 0); !ok || u.Kind != UnreachOpContext {
		t.Errorf("misrouted syscallbegin rule: %+v (ok=%v)", u, ok)
	}
	if u, ok := findUnreach(an, "uc", 0); !ok || u.Kind != UnreachOpContext {
		t.Errorf("op-context through jump edge: %+v (ok=%v)", u, ok)
	}
	if _, ok := findUnreach(an, "uc", 1); ok {
		t.Error("live user-chain rule reported dead")
	}
	if got := an.OpContext["uc"]; got != NewOpSet(OpFileOpen) {
		t.Errorf("uc op context = %b, want FILE_OPEN only", got)
	}
}

func TestAnalyzeDeadChainAndEmptySets(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	if err := e.NewChain("orphan"); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("orphan", &Rule{Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &Rule{Subject: NewSIDSet(false), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &Rule{Object: NewSIDSet(false), Target: Drop()}); err != nil {
		t.Fatal(err)
	}

	an := e.Analyze()
	if len(an.DeadChains) != 1 || an.DeadChains[0] != "orphan" {
		t.Errorf("dead chains = %v, want [orphan]", an.DeadChains)
	}
	if u, ok := findUnreach(an, "orphan", 0); !ok || u.Kind != UnreachDeadChain {
		t.Errorf("orphan rule: %+v (ok=%v)", u, ok)
	}
	if u, ok := findUnreach(an, "input", 0); !ok || u.Kind != UnreachEmptySubject {
		t.Errorf("empty subject: %+v (ok=%v)", u, ok)
	}
	if u, ok := findUnreach(an, "input", 1); !ok || u.Kind != UnreachEmptyObject {
		t.Errorf("empty object: %+v (ok=%v)", u, ok)
	}
}

func TestAnalyzeJumpCycle(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	for _, n := range []string{"c0", "c1"} {
		if err := e.NewChain(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Append("input", &Rule{Target: &JumpTarget{ChainName: "c0"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("c0", &Rule{Target: &JumpTarget{ChainName: "c1"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("c1", &Rule{Target: &JumpTarget{ChainName: "c0"}}); err != nil {
		t.Fatal(err)
	}
	an := e.Analyze()
	if len(an.Cycles) != 1 || len(an.Cycles[0]) != 2 {
		t.Fatalf("cycles = %v, want one 2-chain cycle", an.Cycles)
	}
}

// TestAnalyzeStandardRulesClean pins that the analyzer is quiet on a
// realistic hand-written base: no rule of the engine's own differential
// fixtures is falsely condemned (the full property check lives in
// compile_test.go).
func TestAnalyzeEmptyEngine(t *testing.T) {
	an := New(testPolicy(), Optimized()).Analyze()
	if len(an.Unreachable) != 0 || len(an.DeadChains) != 0 || len(an.Cycles) != 0 {
		t.Errorf("empty engine produced findings: %+v", an)
	}
	if an.OpContext["input"] == 0 || an.OpContext["syscallbegin"] == 0 {
		t.Error("builtin chains must have nonzero op context")
	}
}
