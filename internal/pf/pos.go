package pf

import "fmt"

// Pos locates a rule (or an error) in the rule source it was parsed from.
// The zero Pos means "no source information" — rules built programmatically
// carry it. Line and Col are 1-based; either may be zero when unknown.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsSet reports whether the position carries any source information.
func (p Pos) IsSet() bool { return p.File != "" || p.Line > 0 || p.Col > 0 }

// String renders the position in the compiler-conventional file:line:col
// form, omitting unknown components.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (p Pos) String() string {
	file := p.File
	if file == "" {
		file = "<input>"
	}
	switch {
	case p.Line > 0 && p.Col > 0:
		return fmt.Sprintf("%s:%d:%d", file, p.Line, p.Col)
	case p.Line > 0:
		return fmt.Sprintf("%s:%d", file, p.Line)
	case p.Col > 0:
		return fmt.Sprintf("%s:col %d", file, p.Col)
	default:
		return file
	}
}

// WithCol returns the position with its column replaced.
func (p Pos) WithCol(col int) Pos {
	p.Col = col
	return p
}
