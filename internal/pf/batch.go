package pf

import (
	"pfirewall/internal/obs"
)

// Batch amortizes mediation-gauntlet setup — ruleset and observability
// snapshot loads, per-process state lookup, evaluation-context acquisition —
// across the several Filter calls one logical operation makes: the
// per-component checks of a pathname walk, or an ipc send/recv burst. The
// paper's hook fires once per resource request; a batch keeps that
// semantics (every request is filtered and counted individually) while
// paying the setup once.
//
// Usage:
//
//	var b pf.Batch
//	engine.StartBatch(&b, proc)
//	for each resource request {
//		v := b.Filter(req)
//	}
//	b.Finish()
//
// All requests in one batch must be made on behalf of the process passed
// to StartBatch (req.Proc == proc): the batch caches that process's pid
// and firewall state. A Batch is not safe for concurrent use; like the
// rest of the engine it relies on the kernel's one-flow-per-process
// mediation discipline. Declaring the Batch as a local variable keeps it
// on the caller's stack — no StartBatch/Filter/Finish path retains the
// pointer.
type Batch struct {
	e   *Engine
	rs  *ruleset
	ob  *engineObs
	ps  *ProcState
	pid int
	ctx *EvalCtx
}

// StartBatch initializes b against the current ruleset snapshot for
// requests by proc. Every batch sees one consistent snapshot: a rule
// update published mid-batch applies from the next batch, exactly like a
// packet in flight under RCU.
func (e *Engine) StartBatch(b *Batch, proc Process) {
	b.e = e
	b.rs = e.rs.Load()
	b.ob = e.obs.Load()
	b.ps = proc.PFState()
	b.pid = proc.PID()
	b.ctx = nil
}

// Filter evaluates one request within the batch. Verdicts, rule hit
// counters, statistics, and observability records are identical to
// Engine.Filter — batching changes only where setup costs are paid.
func (b *Batch) Filter(req *Request) Verdict {
	e, rs, pid := b.e, b.rs, b.pid

	// Observability: when attached, count every request exactly, but take
	// the two timestamps only on sampled requests — the timer calls, not
	// the sharded counter adds, are what would bust the overhead budget.
	// The sampling decision piggybacks on the request counter this shard
	// is about to increment anyway (first request per shard samples, so
	// short workloads still populate the histograms).
	ob := b.ob
	var t0 int64
	sampled := false
	if ob != nil && e.Stats.Requests.LoadKey(pid)&ob.sampleMask == 0 {
		sampled = true
		t0 = obs.MonoNow()
	}

	// Provenance: a trace-sampled request carries a kernel-armed span the
	// gauntlet annotates in place — chain path, deciding rule, cache bits,
	// rules evaluated. sp is nil on virtually every request; each fill
	// point below is one predictable branch. Latency is the one thing not
	// stamped here: the span's publisher already brackets the gauntlet
	// call, so paying more clock reads inside it would only double-measure.
	sp := req.Span

	// Fast path: with no rules installed, every request takes the default
	// allow without building evaluation context (the BASE configuration of
	// Table 6 measures exactly this hook cost).
	if rs.totalRules == 0 {
		e.Stats.Requests.Add(pid, 1)
		e.Stats.Accepts.Add(pid, 1)
		if sp != nil {
			sp.Flags |= obs.SpanEmptyRuleset
		}
		if ob != nil {
			ob.finish(pid, req, VerdictAccept, sampled, t0, "")
		}
		return VerdictAccept
	}

	// The evaluation context is recycled through the per-process free
	// list; it is acquired on the batch's first non-trivial request and
	// held until Finish. Between requests it is reset, not released: the
	// object-specific fields must not bleed across requests, and the
	// expensive shared field (entrypoints) re-attaches from the
	// generation-keyed per-process cache in O(1).
	ctx := b.ctx
	if ctx == nil {
		ctx = b.ps.acquireCtx() //pflint:allow — pool-miss allocation inlined here; steady state hits the freelist
		b.ctx = ctx
	}
	ctx.reset(req, e, rs)
	if !e.cfg.LazyCtx {
		// Unoptimized mode gathers every context field any rule may need
		// before matching begins (the "naive design" of Section 4.2).
		ctx.Require(rs.allNeeds)
	}

	start := "input"
	if req.Op == OpSyscallBegin {
		start = "syscallbegin"
	}

	v, final := VerdictAccept, false
	// The mangle table runs first for resource requests (it may mark state
	// or log but can also issue verdicts, as in iptables).
	if start == "input" {
		if mangle := rs.chains["mangle/input"]; mangle != nil && len(mangle.Rules) > 0 {
			if sp != nil {
				sp.PushChain("mangle/input")
			}
			if act := e.runChain(ctx, rs, mangle, false); act.Final {
				v, final = act.Verdict, true
			}
		}
	}
	if !final {
		if sp != nil {
			sp.PushChain(start)
		}
		if act := e.runChain(ctx, rs, rs.chains[start], e.cfg.EptChains); act.Final {
			v, final = act.Verdict, true
		}
	}

	// Entrypoint-specific chains: only rules whose entrypoint appears on
	// the current stack are considered (Section 4.3). If none of the
	// process's mapped binaries (or interpreter) can appear in the index,
	// the stack is not even unwound.
	if !final && e.cfg.EptChains && rs.hasEptRules && mayMatchEpt(rs, req.Proc) {
		eps, _ := ctx.Entrypoints()
	scan:
		for _, ep := range eps {
			for _, r := range rs.eptIndex[entryKey{start, ep.Path, ep.Off}] {
				act := e.evalRule(ctx, r)
				if !act.Final && act.Jump != "" {
					if c, ok := rs.chains[act.Jump]; ok {
						act = e.traverse(ctx, rs, c, false)
					}
				}
				if act.Final {
					v = act.Verdict
					break scan
				}
			}
		}
	}

	if v == VerdictDrop && e.LogDenials {
		e.emitLog(ctx, "denied", VerdictDrop)
	}

	// Flush batched statistics in one round of sharded atomics per request.
	e.Stats.Requests.Add(pid, 1)
	if v == VerdictDrop {
		e.Stats.Drops.Add(pid, 1)
	} else {
		e.Stats.Accepts.Add(pid, 1)
	}
	if ctx.rulesEvaluated > 0 {
		e.Stats.RulesEvaluated.Add(pid, ctx.rulesEvaluated)
	}
	if ctx.ctxCollections > 0 {
		e.Stats.CtxCollections.Add(pid, ctx.ctxCollections)
	}
	if ctx.ctxCacheHits > 0 {
		e.Stats.CtxCacheHits.Add(pid, ctx.ctxCacheHits)
	}
	if sp != nil {
		sp.RulesEvaluated = uint32(ctx.rulesEvaluated)
		if ctx.ctxCacheHits > 0 {
			sp.Flags |= obs.SpanEptCacheHit
		}
		if ctx.ctxCollections > 0 {
			sp.Flags |= obs.SpanEptUnwound
		}
	}
	if ob != nil {
		ob.finish(pid, req, v, sampled, t0, start)
	}
	return v
}

// Finish releases the batch's evaluation context back to the process free
// list and drops every snapshot reference. The Batch may be reused with a
// fresh StartBatch.
func (b *Batch) Finish() {
	if b.ctx != nil {
		b.ps.releaseCtx(b.ctx)
		b.ctx = nil
	}
	b.e, b.rs, b.ob, b.ps = nil, nil, nil, nil
}
