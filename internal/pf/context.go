package pf

import (
	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/ustack"
)

// Process is the engine's view of the subject process. The simulated kernel
// implements it on its task structure. The engine reads process-internal
// state (user stacks, interpreter frames) through this interface — the
// defining capability of the Process Firewall relative to sandboxes, which
// must not trust such state (paper Section 3).
type Process interface {
	// PID returns the process identifier.
	PID() int
	// SubjectSID returns the MAC label of the process.
	SubjectSID() mac.SID
	// ExecPath returns the path of the program binary being executed.
	ExecPath() string
	// UserRegs returns the register snapshot at syscall entry.
	UserRegs() ustack.Regs
	// UserMemory exposes the process's user memory for unwinding.
	UserMemory() *ustack.Memory
	// AddrSpace returns the executable mappings, used to rebase PCs.
	AddrSpace() *ustack.AddressSpace
	// StackGen returns a generation counter covering every mutation of the
	// process's call-stack state: user-memory writes (which include
	// interpreter frame pushes/pops and deliberate corruption) and
	// register-only changes (call/ret/PC moves). It is strictly monotonic
	// within one address-space lifetime; paired with AddrSpace().Gen() —
	// which is globally unique across all address spaces — it keys the
	// entrypoint-unwind cache so stacks are re-unwound only when they
	// actually changed, not once per system call.
	StackGen() uint64
	// Interp describes the interpreter runtime, if any: the language and
	// the user-memory address of its frame structure. Native binaries
	// return (ustack.LangNative, 0).
	Interp() (ustack.Lang, uint64)
	// PFState returns the per-process firewall state (STATE dictionary,
	// context caches, traversal state).
	PFState() *ProcState
}

// Resource is the engine's view of the object being accessed. The kernel
// implements it; methods that require extra system work (symlink target
// lookup) are only called when a rule needs them, which is what lazy
// context retrieval buys (paper Section 4.2).
type Resource interface {
	// SID returns the MAC label of the resource.
	SID() mac.SID
	// ID returns the resource identifier: inode number for filesystem
	// objects, signal number for signals.
	ID() uint64
	// Path returns the name by which the resource was reached, if any.
	Path() string
	// Class returns the object class.
	Class() mac.Class
	// OwnerUID returns the DAC owner of the resource.
	OwnerUID() int
	// LinkTargetOwnerUID resolves the owner of a symlink's target; ok is
	// false when the resource is not a symlink or the target is absent.
	// Used by the COMPARE module for SymLinksIfOwnerMatch (rule R8).
	LinkTargetOwnerUID() (uid int, ok bool)
}

// SockResource is the optional extension a Resource implements when the
// object is a socket endpoint. Like LinkTargetOwnerUID, each method is only
// called when a rule needs it (lazy context retrieval): ok is false when the
// field does not apply to the object.
type SockResource interface {
	// SockNS names the rendezvous namespace: "fs", "abstract", or "port".
	SockNS() (ns string, ok bool)
	// SockPort returns the port for port-namespace sockets.
	SockPort() (port uint16, ok bool)
	// PeerCred returns the peer credential captured at connect time
	// (SO_PEERCRED): for a connect, the listener's owner; for accept and
	// the data plane, the other endpoint of the stream.
	PeerCred() (pid, uid, gid int, ok bool)
}

// SignalInfo carries signal-delivery context for PROCESS_SIGNAL_DELIVERY
// requests (rules R9–R11).
type SignalInfo struct {
	Signal      int
	HasHandler  bool // the victim registered a handler for this signal
	Unblockable bool // SIGKILL/SIGSTOP-like
}

// Request is the "packet" the firewall filters: one mediated operation by
// one process on one resource (paper Section 5.1 — the Process Firewall
// constructs its packet from process and resource context).
type Request struct {
	Proc Process
	Op   Op
	Obj  Resource

	// SyscallNR and SyscallArgs describe the system call in progress, used
	// by the SYSCALL_ARGS match (rule R12) and by syscallbegin chains.
	SyscallNR   int
	SyscallArgs []uint64

	// Sig is non-nil for signal delivery requests.
	Sig *SignalInfo

	// Span, when non-nil, is the provenance record this request fills as it
	// moves through the gauntlet: chain path, deciding rule, cache bits,
	// rules evaluated. The kernel arms it on trace-sampled syscalls; nil
	// (the overwhelmingly common case) costs one predictable branch per
	// fill point and no allocation.
	Span *obs.Span

	// argsBuf backs SyscallArgs for SetArgs callers, so forwarding a
	// syscall's argument words into the request does not force the caller's
	// variadic slice onto the heap.
	argsBuf [8]uint64
}

// SetArgs copies args into the request's inline buffer and points
// SyscallArgs at it. The copy means the caller's slice is never retained,
// so a stack-allocated variadic argument list stays on the stack (retaining
// it on any path would make the parameter leak and force every call site's
// slice onto the heap). Like a register-passing syscall ABI the buffer
// carries at most 8 words; the simulated syscalls use at most four.
func (r *Request) SetArgs(args ...uint64) {
	n := copy(r.argsBuf[:], args)
	r.SyscallArgs = r.argsBuf[:n:n]
}

// Reset clears the request for reuse, preserving only the inline storage.
func (r *Request) Reset() {
	*r = Request{}
}

// CtxKind is a bit identifying one context field. The engine tracks which
// fields have been collected in a bitmask, the mechanism of paper
// Section 4.2 ("the Process Firewall associates each context field with a
// bit in a context bit mask").
type CtxKind uint32

// Context kinds.
const (
	CtxEntrypoints CtxKind = 1 << iota // unwound stack as (binary, offset) pairs
	CtxAdvWrite                        // adversary can write the resource
	CtxAdvRead                         // adversary can read the resource
	CtxDACOwner                        // resource DAC owner uid
	CtxTgtDACOwner                     // symlink target owner uid
	CtxSignal                          // signal delivery info
	CtxSyscall                         // syscall number and args
	CtxPeerCred                        // socket peer credential (SO_PEERCRED)
	CtxSockNS                          // socket rendezvous namespace
	CtxPort                            // port-namespace port number
)

// ctxKinds enumerates all kinds for eager collection.
var ctxKinds = []CtxKind{
	CtxEntrypoints, CtxAdvWrite, CtxAdvRead, CtxDACOwner, CtxTgtDACOwner,
	CtxSignal, CtxSyscall, CtxPeerCred, CtxSockNS, CtxPort,
}

// Entrypoint is a resolved stack frame: the binary (or script) and the
// program-counter offset within it. Offsets are relative to the binary's
// load base, making rules ASLR-independent (paper Section 5.2).
type Entrypoint struct {
	Path   string // binary path, or script path for interpreter frames
	Off    uint64 // PC offset, or line number for interpreter frames
	Interp bool   // true for interpreter-level frames
}

// ValueRef names a context value usable as a match/target argument, e.g.
// C_INO in "--value C_INO" (paper Section 5.2: "match and target modules in
// a rule can refer to a context in their arguments; this is replaced by the
// actual context value at runtime").
type ValueRef uint8

// Value references.
const (
	RefNone        ValueRef = iota
	RefLiteral              // a literal number carried alongside
	RefIno                  // C_INO: resource identifier
	RefObjSID               // C_OBJ_SID
	RefDACOwner             // C_DAC_OWNER
	RefTgtDACOwner          // C_TGT_DAC_OWNER
	RefSignal               // C_SIGNAL
	RefPeerUID              // C_PEER_UID
	RefPeerPID              // C_PEER_PID
	RefPort                 // C_PORT
)

// refNames maps rule-language spellings to references.
var refNames = map[string]ValueRef{
	"C_INO":           RefIno,
	"C_OBJ_SID":       RefObjSID,
	"C_DAC_OWNER":     RefDACOwner,
	"C_TGT_DAC_OWNER": RefTgtDACOwner,
	"C_SIGNAL":        RefSignal,
	"C_PEER_UID":      RefPeerUID,
	"C_PEER_PID":      RefPeerPID,
	"C_PORT":          RefPort,
}

// RefName returns the canonical spelling of a reference.
func RefName(r ValueRef) string {
	for n, v := range refNames {
		if v == r {
			return n
		}
	}
	return "?"
}

// needsOf maps a reference to the context kind it requires.
func needsOf(r ValueRef) CtxKind {
	switch r {
	case RefDACOwner:
		return CtxDACOwner
	case RefTgtDACOwner:
		return CtxTgtDACOwner
	case RefSignal:
		return CtxSignal
	case RefPeerUID, RefPeerPID:
		return CtxPeerCred
	case RefPort:
		return CtxPort
	default:
		return 0
	}
}

// Value is either a literal or a context reference, resolved at match time.
type Value struct {
	Ref ValueRef
	Lit uint64
}

// Literal wraps a constant value.
func Literal(v uint64) Value { return Value{Ref: RefLiteral, Lit: v} }

// ParseRef parses a C_* reference name.
func ParseRef(s string) (ValueRef, bool) {
	r, ok := refNames[s]
	return r, ok
}

// EvalCtx carries one request's evaluation state: the request, the engine,
// the ruleset snapshot, and the lazily collected context fields. Statistics
// are batched here and flushed once per request.
type EvalCtx struct {
	Req    *Request
	engine *Engine
	rs     *ruleset

	rulesEvaluated uint64
	ctxCollections uint64
	ctxCacheHits   uint64

	have CtxKind

	entries  []Entrypoint
	entryErr bool // unwinding failed; entrypoint matches cannot succeed

	advWrite bool
	advRead  bool

	dacOwner   int
	tgtOwner   int
	tgtOwnerOK bool

	peerPID, peerUID, peerGID int
	peerOK                    bool

	sockNS   string
	sockNSOK bool

	port   uint16
	portOK bool
}

// reset prepares a (possibly recycled) context for one request. The whole
// struct is overwritten: every collected field, counter, and the have mask
// go back to zero, so no state can bleed from the previous request the
// context served. The entries slice reference is dropped, not reused — a
// cached unwind re-attaches from ProcState in O(1), and log consumers may
// still be aliasing the old slice.
func (c *EvalCtx) reset(req *Request, e *Engine, rs *ruleset) {
	*c = EvalCtx{Req: req, engine: e, rs: rs}
}

// clear drops all references before the context returns to the free list.
func (c *EvalCtx) clear() {
	*c = EvalCtx{}
}

// Require ensures kinds have been collected, invoking context modules as
// needed. With lazy retrieval disabled the engine pre-collects everything,
// so Require becomes a no-op.
func (c *EvalCtx) Require(kinds CtxKind) {
	missing := kinds &^ c.have
	if missing == 0 {
		return
	}
	for _, k := range ctxKinds {
		if missing&k != 0 {
			c.collect(k)
		}
	}
}

// collect gathers a single context field.
func (c *EvalCtx) collect(k CtxKind) {
	defer func() { c.have |= k }()
	switch k {
	case CtxEntrypoints:
		c.collectEntrypoints()
	case CtxAdvWrite:
		if c.Req.Obj != nil {
			var hit bool
			c.advWrite, hit = c.engine.policy.AdversaryWritableHit(c.Req.Proc.SubjectSID(), c.Req.Obj.SID())
			c.noteAdvCache(hit)
		}
	case CtxAdvRead:
		if c.Req.Obj != nil {
			var hit bool
			c.advRead, hit = c.engine.policy.AdversaryReadableHit(c.Req.Proc.SubjectSID(), c.Req.Obj.SID())
			c.noteAdvCache(hit)
		}
	case CtxDACOwner:
		if c.Req.Obj != nil {
			c.dacOwner = c.Req.Obj.OwnerUID()
		}
	case CtxTgtDACOwner:
		if c.Req.Obj != nil {
			c.tgtOwner, c.tgtOwnerOK = c.Req.Obj.LinkTargetOwnerUID()
		}
	case CtxPeerCred:
		if sr, ok := c.Req.Obj.(SockResource); ok {
			c.peerPID, c.peerUID, c.peerGID, c.peerOK = sr.PeerCred()
		}
	case CtxSockNS:
		if sr, ok := c.Req.Obj.(SockResource); ok {
			c.sockNS, c.sockNSOK = sr.SockNS()
		}
	case CtxPort:
		if sr, ok := c.Req.Obj.(SockResource); ok {
			c.port, c.portOK = sr.SockPort()
		}
	case CtxSignal, CtxSyscall:
		// Present directly on the Request; nothing to gather.
	}
}

// noteAdvCache records adversary-cache provenance on the request's span,
// when one is armed. Lock- and allocation-free.
func (c *EvalCtx) noteAdvCache(hit bool) {
	if sp := c.Req.Span; sp != nil {
		if hit {
			sp.Flags |= obs.SpanAdvCacheHit
		} else {
			sp.Flags |= obs.SpanAdvCacheMiss
		}
	}
}

// collectEntrypoints unwinds the process stack (and interpreter frames) and
// rebases PCs to (binary, offset) pairs. It consults the per-process cache
// when the engine's caching optimization is on. The cache is keyed on the
// pair (StackGen, AddrSpace generation), which strictly generalizes the
// paper's per-syscall validity observation (Section 4.2): the stack is
// valid not just across the resource requests of one system call but
// across entire program phases — any call, return, memory write, or mmap
// invalidates the pair, and execve swaps in an address space whose globally
// unique generation can never collide with the cached one.
func (c *EvalCtx) collectEntrypoints() {
	ps := c.Req.Proc.PFState()
	if c.engine.cfg.CtxCache {
		sg := c.Req.Proc.StackGen()
		mg := c.Req.Proc.AddrSpace().Gen()
		if ps.cacheValid && ps.cacheStackGen == sg && ps.cacheMapGen == mg {
			c.entries, c.entryErr = ps.cachedEntries, ps.cachedEntryErr
			c.ctxCacheHits++
			return
		}
		c.entries, c.entryErr = unwindEntrypoints(c.Req.Proc)
		c.ctxCollections++
		ps.cachedEntries, ps.cachedEntryErr = c.entries, c.entryErr
		ps.cacheStackGen, ps.cacheMapGen = sg, mg
		ps.cacheValid = true
		return
	}
	c.entries, c.entryErr = unwindEntrypoints(c.Req.Proc)
	c.ctxCollections++
}

// unwindEntrypoints performs the actual stack walk. Failures are contained:
// the returned flag marks the context unavailable and only costs the
// (possibly malicious) process its own protection (paper Section 4.4).
//
//pflint:allow-fn — entrypoint-cache miss path, once per program phase (stack/exec generation); cached hits allocate nothing.
func unwindEntrypoints(p Process) ([]Entrypoint, bool) {
	pcs, err := ustack.UnwindBinary(p.UserMemory(), p.UserRegs(), ustack.MaxFrames)
	if err != nil {
		return nil, true
	}
	as := p.AddrSpace()
	entries := make([]Entrypoint, 0, len(pcs)+4)
	for _, pc := range pcs {
		if path, off, ok := as.Rebase(pc); ok {
			entries = append(entries, Entrypoint{Path: path, Off: off})
		}
		// PCs outside any mapping are skipped, not fatal: a partially
		// valid stack still yields usable entrypoints.
	}
	if lang, head := p.Interp(); lang != ustack.LangNative {
		frames, err := ustack.UnwindInterp(lang, p.UserMemory(), head)
		if err != nil {
			// Interpreter state is corrupt; binary entrypoints remain valid.
			return entries, false
		}
		for _, f := range frames {
			entries = append(entries, Entrypoint{Path: f.Script, Off: uint64(f.Line), Interp: true})
		}
	}
	return entries, false
}

// Entrypoints returns the unwound entrypoints, collecting them if needed.
func (c *EvalCtx) Entrypoints() ([]Entrypoint, bool) {
	c.Require(CtxEntrypoints)
	return c.entries, !c.entryErr
}

// AdversaryWritable reports the resource's adversary write accessibility.
func (c *EvalCtx) AdversaryWritable() bool {
	c.Require(CtxAdvWrite)
	return c.advWrite
}

// AdversaryReadable reports the resource's adversary read accessibility.
func (c *EvalCtx) AdversaryReadable() bool {
	c.Require(CtxAdvRead)
	return c.advRead
}

// PeerCred returns the socket peer credential, collecting it if needed; ok
// is false when the object is not a connected socket endpoint.
func (c *EvalCtx) PeerCred() (pid, uid, gid int, ok bool) {
	c.Require(CtxPeerCred)
	return c.peerPID, c.peerUID, c.peerGID, c.peerOK
}

// SockNS returns the socket's rendezvous namespace name.
func (c *EvalCtx) SockNS() (string, bool) {
	c.Require(CtxSockNS)
	return c.sockNS, c.sockNSOK
}

// SockPort returns the socket's port for port-namespace endpoints.
func (c *EvalCtx) SockPort() (uint16, bool) {
	c.Require(CtxPort)
	return c.port, c.portOK
}

// Resolve evaluates a Value against the collected context.
func (c *EvalCtx) Resolve(v Value) (uint64, bool) {
	c.Require(needsOf(v.Ref))
	switch v.Ref {
	case RefLiteral:
		return v.Lit, true
	case RefIno:
		if c.Req.Obj == nil {
			return 0, false
		}
		return c.Req.Obj.ID(), true
	case RefObjSID:
		if c.Req.Obj == nil {
			return 0, false
		}
		return uint64(c.Req.Obj.SID()), true
	case RefDACOwner:
		if c.Req.Obj == nil {
			return 0, false
		}
		return uint64(int64(c.dacOwner)), true
	case RefTgtDACOwner:
		if !c.tgtOwnerOK {
			return 0, false
		}
		return uint64(int64(c.tgtOwner)), true
	case RefSignal:
		if c.Req.Sig == nil {
			return 0, false
		}
		return uint64(c.Req.Sig.Signal), true
	case RefPeerUID:
		if !c.peerOK {
			return 0, false
		}
		return uint64(int64(c.peerUID)), true
	case RefPeerPID:
		if !c.peerOK {
			return 0, false
		}
		return uint64(int64(c.peerPID)), true
	case RefPort:
		if !c.portOK {
			return 0, false
		}
		return uint64(c.port), true
	default:
		return 0, false
	}
}
