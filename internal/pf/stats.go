package pf

import "pfirewall/internal/obs"

// Counter is a sharded monotonic counter: increments go to a per-shard
// cache line selected by pid, so a thousand concurrent processes do not
// serialize on one atomic — the user-space analogue of the kernel's
// per-CPU statistics. The implementation now lives in the observability
// layer (internal/obs), which grew out of this type; the alias keeps the
// engine API unchanged.
type Counter = obs.Counter
