package pf

import "sync/atomic"

// Counter is a sharded monotonic counter: increments go to a per-shard
// cache line selected by pid, so a thousand concurrent processes do not
// serialize on one atomic — the user-space analogue of the kernel's
// per-CPU statistics.
type Counter struct {
	shards [counterShards]paddedUint64
}

const counterShards = 64

type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line
}

// Add adds n on the shard selected by key (typically the pid).
func (c *Counter) Add(key int, n uint64) {
	c.shards[uint(key)%counterShards].v.Add(n)
}

// Load sums all shards.
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}
