package pf

import (
	"fmt"
	"reflect"
	"testing"

	"pfirewall/internal/mac"
)

// --- differential property test ----------------------------------------
//
// The compiled dispatch index must be observationally identical to linear
// traversal: same verdicts, same per-rule hit counters, same LOG emissions,
// same STATE side effects — over arbitrary rulesets (jumps, returns, user
// chains, negated sets, entrypoint rules, inserts, removals). We generate
// randomized ruleset/request pairs and run each through two engines whose
// configs differ ONLY in RuleIndex, then compare everything observable.
// (Comparing e.g. FULL against Optimized directly would conflate the index
// with EptChains, which reorders entrypoint-rule evaluation by design.)

type diffRNG struct{ s uint64 }

func (r *diffRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *diffRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// ruleSpec describes one generated rule so identical fresh Rule values can
// be materialized for each engine (rules carry atomic hit counters and must
// not be shared across engines).
type ruleSpec struct {
	chain    string
	front    bool
	subject  func() *SIDSet
	object   func() *SIDSet
	ops      OpSet
	resID    uint64
	resIDSet bool
	program  string
	entry    uint64
	entrySet bool
	match    func() Match
	target   func() Target
}

func (s *ruleSpec) build() *Rule {
	r := &Rule{
		Ops:      s.ops,
		ResID:    s.resID,
		ResIDSet: s.resIDSet,
		Program:  s.program,
		Entry:    s.entry,
		EntrySet: s.entrySet,
		Target:   s.target(),
	}
	if s.subject != nil {
		r.Subject = s.subject()
	}
	if s.object != nil {
		r.Object = s.object()
	}
	if s.match != nil {
		r.Matches = []Match{s.match()}
	}
	return r
}

func genRuleSpec(rng *diffRNG, pol *mac.Policy, chains []string, userChains []string, inUser bool) *ruleSpec {
	labels := []mac.Label{"httpd_t", "user_t", "sshd_t", "tmp_t", "lib_t", "etc_t", "shadow_t"}
	pick := func() mac.SID { return sid(pol, labels[rng.intn(len(labels))]) }
	ops := []Op{OpFileOpen, OpFileRead, OpFileWrite, OpLnkFileRead, OpDirSearch, OpSocketBind, OpSyscallBegin}

	s := &ruleSpec{chain: chains[rng.intn(len(chains))], front: rng.intn(4) == 0}
	switch rng.intn(4) {
	case 0: // no subject
	case 1:
		a := pick()
		s.subject = func() *SIDSet { return NewSIDSet(false, a) }
	case 2:
		a, b := pick(), pick()
		s.subject = func() *SIDSet { return NewSIDSet(false, a, b) }
	case 3:
		a := pick()
		s.subject = func() *SIDSet { return NewSIDSet(true, a) }
	}
	switch rng.intn(3) {
	case 0: // no object
	case 1:
		a := pick()
		s.object = func() *SIDSet { return NewSIDSet(false, a) }
	case 2:
		a := pick()
		s.object = func() *SIDSet { return NewSIDSet(true, a) }
	}
	switch rng.intn(4) {
	case 0: // empty mask: all ops
	case 1:
		s.ops = NewOpSet(ops[rng.intn(len(ops))])
	default:
		s.ops = NewOpSet(ops[rng.intn(len(ops))], ops[rng.intn(len(ops))])
	}
	if rng.intn(6) == 0 {
		s.resID = uint64(rng.intn(4))
		s.resIDSet = true
	}
	if rng.intn(8) == 0 {
		s.program = "/lib/ld-2.15.so"
		s.entry = 0x596b
		if rng.intn(3) == 0 {
			s.entry = 0x1234 // entrypoint nobody reaches
		}
		s.entrySet = true
	}
	if rng.intn(5) == 0 {
		key := uint64(rng.intn(3))
		cmp := uint64(rng.intn(3))
		ne := rng.intn(2) == 0
		s.match = func() Match { return &StateMatch{Key: key, Cmp: Literal(cmp), Nequal: ne} }
	}
	n := rng.intn(10)
	switch {
	case n < 3:
		s.target = func() Target { return Drop() }
	case n < 5:
		s.target = func() Target { return Accept() }
	case n < 7:
		prefix := fmt.Sprintf("p%d", rng.intn(3))
		s.target = func() Target { return &LogTarget{Prefix: prefix} }
	case n == 7:
		key := uint64(rng.intn(3))
		val := uint64(rng.intn(3))
		s.target = func() Target { return &StateTarget{Key: key, Val: Literal(val)} }
	case n == 8 && !inUser:
		uc := userChains[rng.intn(len(userChains))]
		s.target = func() Target { return &JumpTarget{ChainName: uc} }
	default:
		s.target = func() Target { return &ReturnTarget{} }
	}
	return s
}

// diffEngine is one side of the differential pair: an engine, its
// materialized rules (parallel to the shared spec list), its log capture,
// and its own processes (STATE dictionaries are per-process and must not be
// shared across engines).
type diffEngine struct {
	e     *Engine
	rules []*Rule
	logs  []LogRecord
	procs map[int]*fakeProc
}

func newDiffEngine(t *testing.T, pol *mac.Policy, cfg Config, specs []*ruleSpec, userChains []string) *diffEngine {
	t.Helper()
	d := &diffEngine{e: New(pol, cfg), procs: make(map[int]*fakeProc)}
	d.e.Logger = func(rec LogRecord) { d.logs = append(d.logs, rec) }
	for _, uc := range userChains {
		if err := d.e.NewChain(uc); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range specs {
		r := s.build()
		d.rules = append(d.rules, r)
		var err error
		if s.front {
			err = d.e.Insert(s.chain, r)
		} else {
			err = d.e.Append(s.chain, r)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func (d *diffEngine) proc(t *testing.T, pid int, s mac.SID, ldso bool) *fakeProc {
	if p, ok := d.procs[pid]; ok {
		return p
	}
	p := newFakeProc(pid, s, "/usr/bin/prog")
	if ldso {
		setupLdSo(t, p)
	}
	d.procs[pid] = p
	return p
}

func TestCompiledDispatchDifferential(t *testing.T) {
	pol := testPolicy()
	baseConfigs := []Config{
		{},
		{CtxCache: true, LazyCtx: true},
		{CtxCache: true, LazyCtx: true, EptChains: true},
	}
	subjects := []mac.Label{"httpd_t", "user_t", "sshd_t", "shadow_t"}
	objects := []mac.Label{"tmp_t", "lib_t", "etc_t", "shadow_t"}
	ops := []Op{OpFileOpen, OpFileRead, OpFileWrite, OpLnkFileRead, OpDirSearch, OpSocketBind, OpSyscallBegin, OpInvalid}

	const iterations = 350 // x len(baseConfigs) = 1050 ruleset/request pairs
	pairs := 0
	for iter := 0; iter < iterations; iter++ {
		rng := &diffRNG{s: uint64(iter)*2654435761 + 1}
		chains := []string{"input", "input", "input", "syscallbegin", "mangle/input", "u0", "u1"}
		userChains := []string{"u0", "u1"}
		nRules := 1 + rng.intn(14)
		specs := make([]*ruleSpec, 0, nRules)
		for i := 0; i < nRules; i++ {
			s := genRuleSpec(rng, pol, chains, userChains, false)
			if s.chain == "u0" || s.chain == "u1" {
				s = genRuleSpec(rng, pol, []string{s.chain}, userChains, true)
			}
			specs = append(specs, s)
		}

		// One request script shared by every engine pair of this iteration.
		type reqStep struct {
			pid    int
			subj   mac.SID
			ldso   bool
			op     Op
			objSID mac.SID
			objID  uint64
			noObj  bool
			remove int // >= 0: remove the rule at this spec index instead
		}
		nReqs := 20 + rng.intn(20)
		steps := make([]reqStep, 0, nReqs)
		for i := 0; i < nReqs; i++ {
			st := reqStep{
				pid:    1 + rng.intn(3),
				subj:   sid(pol, subjects[rng.intn(len(subjects))]),
				ldso:   rng.intn(2) == 0,
				op:     ops[rng.intn(len(ops))],
				objSID: sid(pol, objects[rng.intn(len(objects))]),
				objID:  uint64(rng.intn(4)),
				noObj:  rng.intn(6) == 0,
				remove: -1,
			}
			if i == nReqs/2 && len(specs) > 2 {
				st.remove = rng.intn(len(specs))
			}
			steps = append(steps, st)
		}

		for _, base := range baseConfigs {
			withIdx := base
			withIdx.RuleIndex = true
			lin := newDiffEngine(t, pol, base, specs, userChains)
			idx := newDiffEngine(t, pol, withIdx, specs, userChains)
			pairs++

			for si, st := range steps {
				if st.remove >= 0 {
					for _, d := range []*diffEngine{lin, idx} {
						victim := d.rules[st.remove]
						if err := d.e.Remove(specs[st.remove].chain, func(r *Rule) bool { return r == victim }); err != nil {
							t.Fatal(err)
						}
					}
					continue
				}
				var vLin, vIdx Verdict
				for _, d := range []*diffEngine{lin, idx} {
					p := d.proc(t, st.pid, st.subj, st.ldso)
					p.ps.BeginSyscall()
					req := &Request{Proc: p, Op: st.op}
					if !st.noObj {
						req.Obj = &fakeRes{sid: st.objSID, id: st.objID}
					}
					v := d.e.Filter(req)
					if d == lin {
						vLin = v
					} else {
						vIdx = v
					}
				}
				if vLin != vIdx {
					t.Fatalf("iter %d cfg %+v step %d: linear=%v compiled=%v\nstep: %+v", iter, base, si, vLin, vIdx, st)
				}
			}

			for ri := range specs {
				if h1, h2 := lin.rules[ri].Hits.Load(), idx.rules[ri].Hits.Load(); h1 != h2 {
					t.Fatalf("iter %d cfg %+v rule %d (%s): hits linear=%d compiled=%d",
						iter, base, ri, lin.rules[ri].String(pol.SIDs()), h1, h2)
				}
			}
			if !reflect.DeepEqual(lin.logs, idx.logs) {
				t.Fatalf("iter %d cfg %+v: LOG emissions differ\nlinear:   %+v\ncompiled: %+v", iter, base, lin.logs, idx.logs)
			}
			for pid, p := range lin.procs {
				if !reflect.DeepEqual(p.ps.Dict, idx.procs[pid].ps.Dict) {
					t.Fatalf("iter %d cfg %+v pid %d: STATE dict diverged: %v vs %v",
						iter, base, pid, p.ps.Dict, idx.procs[pid].ps.Dict)
				}
			}
		}
	}
	if pairs < 1000 {
		t.Fatalf("only %d ruleset/request pairs exercised, want >= 1000", pairs)
	}
}

// --- targeted compiled-dispatch tests ----------------------------------

// TestCompiledFirstMatchOrder pins the order-preserving merge: an
// exact-SID bucket rule installed after a wildcard rule must not overtake it.
func TestCompiledFirstMatchOrder(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Config{RuleIndex: true})
	httpd := sid(pol, "httpd_t")
	wild := &Rule{Ops: NewOpSet(OpFileOpen), Target: Accept()} // no subject: wildcard bucket
	exact := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Append("input", wild); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", exact); err != nil {
		t.Fatal(err)
	}
	proc := newFakeProc(1, httpd, "/usr/bin/apache2")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictAccept {
		t.Fatalf("wildcard ACCEPT installed first must win, got %v", v)
	}
	if wild.Hits.Load() != 1 || exact.Hits.Load() != 0 {
		t.Fatalf("hits wild=%d exact=%d, want 1/0", wild.Hits.Load(), exact.Hits.Load())
	}

	// Insert a drop at the head: it now precedes the accept.
	head := &Rule{Subject: NewSIDSet(false, httpd), Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Insert("input", head); err != nil {
		t.Fatal(err)
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Fatalf("inserted head DROP must win after recompile, got %v", v)
	}
}

// TestCompiledJumpFallback pins the conservative control-flow fallback:
// a jump rule reached through the index must traverse its user chain and
// then resume with the rules after the jump.
func TestCompiledJumpFallback(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Config{RuleIndex: true})
	if err := e.NewChain("side"); err != nil {
		t.Fatal(err)
	}
	httpd := sid(pol, "httpd_t")
	mustAppend := func(chain string, r *Rule) {
		t.Helper()
		if err := e.Append(chain, r); err != nil {
			t.Fatal(err)
		}
	}
	// side chain: RETURN for httpd_t, so traversal resumes in input.
	mustAppend("side", &Rule{Subject: NewSIDSet(false, httpd), Target: &ReturnTarget{}})
	mustAppend("side", &Rule{Target: Drop()})
	mustAppend("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: &JumpTarget{ChainName: "side"}})
	after := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	mustAppend("input", after)

	proc := newFakeProc(1, httpd, "/usr/bin/apache2")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Fatalf("RETURN from side chain must fall through to the post-jump DROP, got %v", v)
	}
	if after.Hits.Load() != 1 {
		t.Fatalf("post-jump rule hits = %d, want 1", after.Hits.Load())
	}

	other := newFakeProc(2, sid(pol, "user_t"), "/bin/sh")
	if v := e.Filter(&Request{Proc: other, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Fatalf("non-httpd subject must hit the side chain's DROP, got %v", v)
	}
}

// TestRemoveRecomputesDerivedState is the satellite regression test: after
// the last entrypoint rule is removed, the engine must stop unwinding
// stacks (mayMatchEpt) and non-lazy mode must stop collecting context for
// rules that no longer exist.
func TestRemoveRecomputesDerivedState(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	r := entryRule(pol, Drop())
	if err := e.Append("input", r); err != nil {
		t.Fatal(err)
	}
	rs := e.rs.Load()
	if !rs.hasEptRules || !rs.eptPrograms["/lib/ld-2.15.so"] {
		t.Fatal("setup: entrypoint rule not indexed")
	}

	if err := e.Remove("input", func(x *Rule) bool { return x == r }); err != nil {
		t.Fatal(err)
	}
	rs = e.rs.Load()
	if rs.hasEptRules {
		t.Error("hasEptRules still set after removing the only entrypoint rule")
	}
	if len(rs.eptPrograms) != 0 {
		t.Errorf("eptPrograms = %v, want empty", rs.eptPrograms)
	}
	if rs.allNeeds != 0 {
		t.Errorf("allNeeds = %v, want 0", rs.allNeeds)
	}

	// With a remaining plain rule, allNeeds must shrink to that rule's
	// needs rather than keeping the removed LOG/entrypoint demands.
	logRule := entryRule(pol, &LogTarget{})
	plain := &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}
	if err := e.Append("input", logRule); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", plain); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("input", func(x *Rule) bool { return x == logRule }); err != nil {
		t.Fatal(err)
	}
	rs = e.rs.Load()
	if rs.allNeeds != plain.needs() {
		t.Errorf("allNeeds = %v, want %v (the surviving rule's needs)", rs.allNeeds, plain.needs())
	}
	if rs.hasEptRules {
		t.Error("hasEptRules still set")
	}
}

// TestMayMatchEptMemo verifies the memoized pre-filter: the address-space
// walk happens once per (mapping generation, ruleset generation) and is
// invalidated by both mmap and rule updates.
func TestMayMatchEptMemo(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	if err := e.Append("input", entryRule(pol, Drop())); err != nil {
		t.Fatal(err)
	}
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	rs := e.rs.Load()

	if mayMatchEpt(rs, proc) {
		t.Fatal("no relevant mapping yet")
	}
	if !proc.ps.eptMemoValid || proc.ps.eptMemoMayMatch {
		t.Fatal("memo not recorded")
	}

	// Mapping the rule's program bumps the generation and flips the answer.
	setupLdSo(t, proc)
	if !mayMatchEpt(rs, proc) {
		t.Fatal("mapping ld.so must invalidate the memo and match")
	}

	// A rule update (removing the entrypoint rule) bumps the ruleset
	// generation; the memo must not serve the stale positive.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	rs = e.rs.Load()
	if mayMatchEpt(rs, proc) {
		t.Fatal("stale memo served after ruleset change")
	}
}

// TestFilterSurvivesMissingMangleChain pins the satellite nil-guard: a
// snapshot without the mangle chain must not panic the hot path.
func TestFilterSurvivesMissingMangleChain(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	if err := e.Append("input", &Rule{Ops: NewOpSet(OpFileOpen), Target: Drop()}); err != nil {
		t.Fatal(err)
	}
	e.writeMu.Lock()
	rs := e.rs.Load().clone()
	delete(rs.chains, "mangle/input")
	if e.cfg.RuleIndex {
		rs.compiled = compileRuleset(rs, e.cfg)
	}
	e.rs.Store(rs)
	e.writeMu.Unlock()

	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	if v := e.Filter(&Request{Proc: proc, Op: OpFileOpen, Obj: &fakeRes{sid: sid(pol, "tmp_t")}}); v != VerdictDrop {
		t.Fatalf("verdict = %v, want DROP", v)
	}
}
