package pf

import (
	"testing"

	"pfirewall/internal/mac"
)

// TestMayFilterSkipParity pins the contract the kernel's pre-mediation
// fast path depends on: whenever MayFilter(op) reports false, running the
// full gauntlet for a request with that op MUST yield the default accept —
// so skipping the request construction entirely is invisible to policy.
// The parity sweep covers every op against a mixed rule base.
func TestMayFilterSkipParity(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	proc := newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2")
	tmp := sid(pol, "tmp_t")

	// An object that satisfies every non-op predicate of the rules below,
	// so only the op distinguishes skip from drop.
	obj := &fakeRes{sid: tmp, id: 3, class: mac.ClassLnkFile}

	parity := func(when string) {
		t.Helper()
		for op := Op(0); op < opCount; op++ {
			if e.MayFilter(op) {
				continue
			}
			if v := e.Filter(&Request{Proc: proc, Op: op, Obj: obj}); v != VerdictAccept {
				t.Errorf("%s: MayFilter(%v)=false but Filter=%v — skip would change the verdict", when, op, v)
			}
		}
	}

	// Empty base: nothing may filter, everything accepts.
	for op := Op(0); op < opCount; op++ {
		if e.MayFilter(op) {
			t.Fatalf("empty base: MayFilter(%v)=true", op)
		}
	}
	parity("empty base")

	// One op-specific drop rule: only that op may filter, and it really drops.
	if err := e.Append("input", &Rule{
		Object: NewSIDSet(false, tmp),
		Ops:    NewOpSet(OpLnkFileRead),
		Target: Drop(),
	}); err != nil {
		t.Fatal(err)
	}
	if !e.MayFilter(OpLnkFileRead) {
		t.Error("rule on LNK_FILE_READ installed but MayFilter=false")
	}
	if e.MayFilter(OpFileOpen) {
		t.Error("no FILE_OPEN rule installed but MayFilter=true")
	}
	if v := e.Filter(&Request{Proc: proc, Op: OpLnkFileRead, Obj: obj}); v != VerdictDrop {
		t.Errorf("ruled op must still DROP through the full gauntlet, got %v", v)
	}
	parity("single op rule")

	// A rule with no -o applies to every operation: the mask must saturate
	// (a skip anywhere could change its verdict).
	wild := &Rule{Subject: NewSIDSet(false, sid(pol, "user_t")), Target: Drop()}
	if err := e.Append("input", wild); err != nil {
		t.Fatal(err)
	}
	for op := Op(0); op < opCount; op++ {
		if !e.MayFilter(op) {
			t.Fatalf("wildcard-op rule installed but MayFilter(%v)=false", op)
		}
	}

	// Removing the wildcard rule must recompute the mask from what remains.
	if err := e.Remove("input", func(r *Rule) bool { return r == wild }); err != nil {
		t.Fatal(err)
	}
	if e.MayFilter(OpFileOpen) {
		t.Error("mask not recomputed after Remove: FILE_OPEN still claimed")
	}
	if !e.MayFilter(OpLnkFileRead) {
		t.Error("mask over-shrunk after Remove: LNK_FILE_READ rule still installed")
	}
	parity("after remove")

	// Flush drops everything; the mask must go dark and parity still hold.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for op := Op(0); op < opCount; op++ {
		if e.MayFilter(op) {
			t.Fatalf("flushed base: MayFilter(%v)=true", op)
		}
	}
	parity("after flush")
}
