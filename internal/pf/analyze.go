package pf

import (
	"sort"

	"pfirewall/internal/mac"
)

// Static ruleset analysis (DESIGN.md §8). The compiled dispatch index of
// compile.go proves, per request, that the rules outside its buckets cannot
// match. This file runs the same per-field reasoning in the other
// direction: over all requests, at publish/analysis time, to prove that a
// rule can never fire at all — because its match space is empty, because no
// operation that reaches its chain is in its op mask, because its chain is
// unreachable from any built-in chain, or because an earlier terminal rule
// covers its entire match space (first-match shadowing).
//
// Every claim is an under-approximation of "dead": the analysis only
// reports a rule unreachable when the per-field lattice PROVES coverage, so
// a reported rule provably has Hits==0 for any request sequence (the
// differential property test in compile_test.go enforces exactly this).
// Rules it cannot prove dead are reported reachable, which may be
// optimistic — completeness is not claimed, soundness is.

// UnreachKind says why the analysis proved a rule can never fire.
type UnreachKind uint8

// Unreachability kinds.
const (
	// UnreachEmptySubject: a non-negated empty -s set matches no process.
	UnreachEmptySubject UnreachKind = iota + 1
	// UnreachEmptyObject: a non-negated empty -d set matches no resource.
	UnreachEmptyObject
	// UnreachOpContext: the rule's op mask is disjoint from every
	// operation that can reach its chain (e.g. a FILE_OPEN rule in the
	// syscallbegin chain, which only ever sees SYSCALL_BEGIN).
	UnreachOpContext
	// UnreachShadowed: an earlier terminal rule in the same chain covers
	// the rule's entire match space, so first-match semantics never reach
	// it.
	UnreachShadowed
	// UnreachDeadChain: the rule lives in a user chain no jump from a
	// built-in chain can reach.
	UnreachDeadChain
)

// String names the kind for findings.
func (k UnreachKind) String() string {
	switch k {
	case UnreachEmptySubject:
		return "empty-subject-set"
	case UnreachEmptyObject:
		return "empty-object-set"
	case UnreachOpContext:
		return "op-context"
	case UnreachShadowed:
		return "shadowed"
	case UnreachDeadChain:
		return "dead-chain"
	}
	return "unknown"
}

// Unreachable is one proven-dead rule.
type Unreachable struct {
	Chain string
	Index int // position in the chain's Rules list
	Rule  *Rule
	Kind  UnreachKind
	// By identifies the shadowing rule for UnreachShadowed (ByIndex is its
	// position in the same chain); nil otherwise.
	By      *Rule
	ByIndex int
	// SameVerdict reports that the shadower produces the identical outcome,
	// making the rule redundant rather than conflicting.
	SameVerdict bool
}

// RulesetAnalysis is the result of AnalyzeChains.
type RulesetAnalysis struct {
	// Unreachable lists proven-dead rules, ordered by (chain, index).
	Unreachable []Unreachable
	// DeadChains lists non-builtin chains unreachable from any built-in
	// chain, sorted by name.
	DeadChains []string
	// Cycles lists jump cycles, each as the chain names along the cycle
	// (a traversal entering one would loop forever).
	Cycles [][]string
	// OpContext maps each chain to the set of operations that can reach it
	// (zero for unreachable chains). Built-in chains start from the
	// engine's routing: syscallbegin sees only SYSCALL_BEGIN, the input and
	// mangle/input chains everything else; user chains get the union over
	// incoming jump edges of (source context ∩ jump rule ops).
	OpContext map[string]OpSet
}

// allOps is the op-context universe: every representable operation.
const allOps OpSet = 1<<opCount - 1

// builtinOpContext is how Filter routes requests into built-in chains.
var builtinOpContext = map[string]OpSet{
	"input":        allOps &^ (1 << OpSyscallBegin),
	"syscallbegin": 1 << OpSyscallBegin,
	"mangle/input": allOps &^ (1 << OpSyscallBegin),
}

// Analyze runs the static reachability analysis over the engine's current
// ruleset snapshot.
func (e *Engine) Analyze() *RulesetAnalysis {
	return AnalyzeChains(e.rs.Load().chains)
}

// AnalyzeChains analyzes a chain map (engine snapshot or one assembled from
// parsed source) and returns every rule it can prove dead.
func AnalyzeChains(chains map[string]*Chain) *RulesetAnalysis {
	an := &RulesetAnalysis{OpContext: make(map[string]OpSet, len(chains))}

	names := make([]string, 0, len(chains))
	for n := range chains {
		names = append(names, n)
	}
	sort.Strings(names)

	// Jump graph: one edge per JUMP rule, carrying the rule's op mask.
	// Every jump counts, even from rules themselves proven dead — an
	// over-approximation of reachability keeps the dead-chain claim sound.
	type edge struct {
		ops OpSet
		to  string
	}
	edges := make(map[string][]edge)
	for _, name := range names {
		for _, r := range chains[name].Rules {
			if jt, ok := r.Target.(*JumpTarget); ok {
				ops := r.Ops
				if ops == 0 {
					ops = allOps
				}
				edges[name] = append(edges[name], edge{ops: ops, to: jt.ChainName})
			}
		}
	}

	// Op-context fixpoint over the jump graph.
	ctx := make(map[string]OpSet, len(chains))
	for n, m := range builtinOpContext {
		if _, ok := chains[n]; ok {
			ctx[n] = m
		}
	}
	for changed := true; changed; {
		changed = false
		for _, from := range names {
			fctx := ctx[from]
			if fctx == 0 {
				continue
			}
			for _, e := range edges[from] {
				if _, ok := chains[e.to]; !ok {
					continue
				}
				if c := ctx[e.to] | (fctx & e.ops); c != ctx[e.to] {
					ctx[e.to] = c
					changed = true
				}
			}
		}
	}
	for _, n := range names {
		an.OpContext[n] = ctx[n]
	}

	// Jump cycles (a traversal entering one would push frames forever).
	const (
		white = iota
		grey
		black
	)
	color := make(map[string]int, len(chains))
	var stack []string
	var visit func(string)
	visit = func(n string) {
		color[n] = grey
		stack = append(stack, n)
		for _, e := range edges[n] {
			if _, ok := chains[e.to]; !ok {
				continue
			}
			switch color[e.to] {
			case white:
				visit(e.to)
			case grey:
				// Slice the cycle out of the DFS stack.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == e.to {
						an.Cycles = append(an.Cycles, append([]string(nil), stack[i:]...))
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}

	// Per-chain rule analysis.
	for _, name := range names {
		c := chains[name]
		if ctx[name] == 0 {
			if _, builtin := builtinOpContext[name]; !builtin {
				an.DeadChains = append(an.DeadChains, name)
				for i, r := range c.Rules {
					an.Unreachable = append(an.Unreachable, Unreachable{
						Chain: name, Index: i, Rule: r, Kind: UnreachDeadChain, ByIndex: -1,
					})
				}
			}
			continue
		}
		analyzeChainRules(an, name, c, ctx[name])
	}
	return an
}

// shadowCand is a terminal rule eligible to shadow later rules.
type shadowCand struct {
	idx      int
	r        *Rule
	isReturn bool
	hasState bool
}

// analyzeChainRules finds never-matching and shadowed rules within one
// reachable chain. The candidate search mirrors compile.go's dispatch
// lattice: earlier terminal rules are bucketed by exact subject SID with a
// wildcard lane for nil/negated subjects, so a rule only tests candidates
// that could possibly cover it — O(matching-candidates) per rule on
// realistic bases instead of O(n²) pair checks.
func analyzeChainRules(an *RulesetAnalysis, name string, c *Chain, cctx OpSet) {
	// Prefix counts of rules with state-mutating or control-transferring
	// targets, for the STATE staleness guard (see coverageShadows).
	mut := make([]int, len(c.Rules)+1)
	for i, r := range c.Rules {
		mut[i+1] = mut[i]
		switch r.Target.(type) {
		case *StateTarget, *JumpTarget:
			mut[i+1]++
		}
	}
	mutBetween := func(i, j int) bool { return mut[j]-mut[i+1] > 0 }

	wild := []shadowCand{}
	bySID := make(map[mac.SID][]shadowCand)

	for j, r := range c.Rules {
		// Never-matching rules first: they are dead regardless of order,
		// and are excluded from the shadower candidate set.
		if r.Subject != nil && !r.Subject.Negate && len(r.Subject.sids) == 0 {
			an.Unreachable = append(an.Unreachable, Unreachable{Chain: name, Index: j, Rule: r, Kind: UnreachEmptySubject, ByIndex: -1})
			continue
		}
		if r.Object != nil && !r.Object.Negate && len(r.Object.sids) == 0 {
			an.Unreachable = append(an.Unreachable, Unreachable{Chain: name, Index: j, Rule: r, Kind: UnreachEmptyObject, ByIndex: -1})
			continue
		}
		if r.Ops != 0 && r.Ops&cctx == 0 {
			an.Unreachable = append(an.Unreachable, Unreachable{Chain: name, Index: j, Rule: r, Kind: UnreachOpContext, ByIndex: -1})
			continue
		}

		// Candidate lanes: a shadower with an exact subject set must
		// contain every subject SID this rule names, in particular its
		// first one — so probing one member's bucket loses no candidates.
		lanes := [2][]shadowCand{nil, wild}
		if r.Subject != nil && !r.Subject.Negate {
			lanes[0] = bySID[r.Subject.SIDs()[0]]
		}
		if a, ok := firstShadower(lanes, r, mutBetween, j); ok {
			an.Unreachable = append(an.Unreachable, Unreachable{
				Chain: name, Index: j, Rule: r, Kind: UnreachShadowed,
				By: a.r, ByIndex: a.idx, SameVerdict: sameOutcome(a.r.Target, r.Target),
			})
			// Shadowed rules never fire, so they are not candidates; their
			// own shadower already covers anything they would have covered.
			continue
		}

		// A live terminal rule becomes a shadower candidate for the rules
		// after it.
		switch r.Target.(type) {
		case *VerdictTarget, *ReturnTarget:
			_, isReturn := r.Target.(*ReturnTarget)
			cand := shadowCand{idx: j, r: r, isReturn: isReturn, hasState: hasStateMatch(r)}
			if r.Subject != nil && !r.Subject.Negate {
				for sid := range r.Subject.sids {
					bySID[sid] = append(bySID[sid], cand)
				}
			} else {
				wild = append(wild, cand)
			}
		}
	}
}

// firstShadower order-merges the candidate lanes (both already sorted by
// install index) and returns the earliest candidate whose claim survives
// every soundness guard.
func firstShadower(lanes [2][]shadowCand, r *Rule, mutBetween func(i, j int) bool, j int) (shadowCand, bool) {
	x, y := lanes[0], lanes[1]
	xi, yi := 0, 0
	for xi < len(x) || yi < len(y) {
		var a shadowCand
		if yi >= len(y) || (xi < len(x) && x[xi].idx < y[yi].idx) {
			a = x[xi]
			xi++
		} else {
			a = y[yi]
			yi++
		}
		if !coverageShadows(a, r, mutBetween, j) {
			continue
		}
		return a, true
	}
	return shadowCand{}, false
}

// coverageShadows applies the full per-claim soundness checks for
// "candidate a shadows rule r at index j".
func coverageShadows(a shadowCand, r *Rule, mutBetween func(i, j int) bool, j int) bool {
	// RETURN ends the current chain walk, but under EptChains the
	// entrypoint-indexed rules of a built-in chain are scanned in a
	// separate pass that a RETURN in the generic pass does not stop — so a
	// RETURN shadower proves nothing about an entrypoint-bearing rule.
	if a.isReturn && r.EntrySet {
		return false
	}
	if !covers(a.r, r) {
		return false
	}
	// STATE staleness guard: a STATE extension match in the shadower reads
	// the live per-process dictionary, which a STATE target — or a jump
	// into a chain holding one — between the two rules could flip between
	// the shadower's evaluation and r's. Demand a mutation-free interval.
	if a.hasState && mutBetween(a.idx, j) {
		return false
	}
	return true
}

// covers reports whether every request that fully matches b at its position
// in a traversal would also have fully matched a at a's earlier position in
// the same traversal — per-field containment of match spaces.
func covers(a, b *Rule) bool {
	if !opsCover(a.Ops, b.Ops) {
		return false
	}
	if !subjectCovers(a.Subject, b.Subject) {
		return false
	}
	if !objectCovers(a.Object, b.Object) {
		return false
	}
	if a.ResIDSet && (!b.ResIDSet || a.ResID != b.ResID) {
		return false
	}
	if !entryCovers(a, b) {
		return false
	}
	return matchesSubset(a.Matches, b.Matches)
}

// opsCover: the empty mask is the rule-language "any op"; a non-empty mask
// covers exactly its bits, so it can never cover the universe.
func opsCover(a, b OpSet) bool {
	return a == 0 || (b != 0 && b&^a == 0)
}

// subjectCovers compares -s spaces; a nil set matches any subject.
func subjectCovers(a, b *SIDSet) bool {
	if a == nil {
		return true
	}
	if b == nil {
		// b is the universe; only a negated-empty set also matches it all.
		return a.Negate && len(a.sids) == 0
	}
	return lanesCover(a, b)
}

// objectCovers compares -d spaces. Unlike subjects, a non-nil object set —
// even a negated one — additionally requires the request to carry an
// object at all, so it can never cover the nil set's space.
func objectCovers(a, b *SIDSet) bool {
	if a == nil {
		return true
	}
	if b == nil {
		return false
	}
	return lanesCover(a, b)
}

// lanesCover decides set containment across the exact and negated lanes.
// The SID space is open (labels intern on demand), so a finite set can
// never cover a negated (co-finite) one.
func lanesCover(a, b *SIDSet) bool {
	switch {
	case !a.Negate && !b.Negate:
		return subsetOf(b.sids, a.sids)
	case !a.Negate && b.Negate:
		return false
	case a.Negate && !b.Negate:
		return disjointFrom(b.sids, a.sids)
	default: // both negated: ~A ⊇ ~B iff A ⊆ B
		return subsetOf(a.sids, b.sids)
	}
}

func subsetOf(inner, outer map[mac.SID]bool) bool {
	if len(inner) > len(outer) {
		return false
	}
	for s := range inner {
		if !outer[s] {
			return false
		}
	}
	return true
}

func disjointFrom(xs, ys map[mac.SID]bool) bool {
	for s := range xs {
		if ys[s] {
			return false
		}
	}
	return true
}

// entryCovers compares the -p/-i space. A program-only rule matches by the
// process's exec path; an entrypoint rule matches by a (program, offset)
// stack frame — different predicates, so neither covers the other except
// exactly.
func entryCovers(a, b *Rule) bool {
	switch {
	case a.Program == "" && !a.EntrySet:
		return true
	case a.EntrySet:
		return b.EntrySet && b.Program == a.Program && b.Entry == a.Entry
	default: // program-only
		return !b.EntrySet && b.Program == a.Program
	}
}

// matchesSubset demands that every extension match of a appears verbatim in
// b (multiset containment by module name and rendered arguments): then b's
// full match implies each shared module matched, and — state staleness
// aside, guarded separately — it would have matched identically at a.
func matchesSubset(a, b []Match) bool {
	if len(a) == 0 {
		return true
	}
	if len(a) > len(b) {
		return false
	}
	have := make(map[string]int, len(b))
	for _, m := range b {
		have[matchKey(m)]++
	}
	for _, m := range a {
		k := matchKey(m)
		if have[k] == 0 {
			return false
		}
		have[k]--
	}
	return true
}

func matchKey(m Match) string { return m.ModName() + "\x00" + m.Args() }

func hasStateMatch(r *Rule) bool {
	for _, m := range r.Matches {
		if _, ok := m.(*StateMatch); ok {
			return true
		}
	}
	return false
}

// sameOutcome reports whether two terminal targets produce the identical
// effect, downgrading a shadow from "conflicting" to "redundant".
func sameOutcome(a, b Target) bool {
	switch ta := a.(type) {
	case *VerdictTarget:
		tb, ok := b.(*VerdictTarget)
		return ok && tb.V == ta.V
	case *ReturnTarget:
		_, ok := b.(*ReturnTarget)
		return ok
	}
	return false
}
