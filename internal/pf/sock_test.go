package pf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfirewall/internal/mac"
)

// fakeSockRes is a fakeRes that additionally carries socket context, the
// way the kernel's IPC resource adapter does.
type fakeSockRes struct {
	fakeRes
	ns      string
	port    uint16
	portOK  bool
	peerPID int
	peerUID int
	peerGID int
	peerOK  bool
}

func (r *fakeSockRes) SockNS() (string, bool)   { return r.ns, r.ns != "" }
func (r *fakeSockRes) SockPort() (uint16, bool) { return r.port, r.portOK }
func (r *fakeSockRes) PeerCred() (int, int, int, bool) {
	return r.peerPID, r.peerUID, r.peerGID, r.peerOK
}

func sockReq(pol *mac.Policy, op Op, obj Resource) *Request {
	return &Request{
		Proc: newFakeProc(1, sid(pol, "httpd_t"), "/usr/bin/apache2"),
		Op:   op,
		Obj:  obj,
	}
}

func TestPeerCredMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Deny connects answered by a non-root peer.
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpSocketConnect),
		Matches: []Match{&PeerCredMatch{UID: Literal(0), Nequal: true}},
		Target:  Drop(),
	})

	rootPeer := &fakeSockRes{
		fakeRes: fakeRes{sid: sid(pol, "tmp_t")},
		ns:      "abstract", peerPID: 7, peerUID: 0, peerOK: true,
	}
	if v := e.Filter(sockReq(pol, OpSocketConnect, rootPeer)); v != VerdictAccept {
		t.Errorf("root peer: %v, want ACCEPT", v)
	}
	userPeer := &fakeSockRes{
		fakeRes: fakeRes{sid: sid(pol, "tmp_t")},
		ns:      "abstract", peerPID: 8, peerUID: 1000, peerOK: true,
	}
	if v := e.Filter(sockReq(pol, OpSocketConnect, userPeer)); v != VerdictDrop {
		t.Errorf("squatter peer: %v, want DROP", v)
	}
	// Unavailable peer context: the deny rule must not apply.
	noPeer := &fakeSockRes{fakeRes: fakeRes{sid: sid(pol, "tmp_t")}, ns: "abstract"}
	if v := e.Filter(sockReq(pol, OpSocketConnect, noPeer)); v != VerdictAccept {
		t.Errorf("no peer context: %v, want ACCEPT", v)
	}
	// A plain file resource has no socket context at all.
	if v := e.Filter(sockReq(pol, OpSocketConnect, &fakeRes{sid: sid(pol, "tmp_t")})); v != VerdictAccept {
		t.Errorf("non-sock resource: %v, want ACCEPT", v)
	}
}

func TestSockNSAndPortMatch(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// Deny binds in the port namespace on the privileged range.
	e.Append("input", &Rule{
		Ops: NewOpSet(OpSocketBind),
		Matches: []Match{
			&SockNSMatch{NS: "port"},
			&PortMatch{Min: 1, Max: 1023},
		},
		Target: Drop(),
	})

	low := &fakeSockRes{fakeRes: fakeRes{sid: sid(pol, "tmp_t")}, ns: "port", port: 631, portOK: true}
	if v := e.Filter(sockReq(pol, OpSocketBind, low)); v != VerdictDrop {
		t.Errorf("privileged port: %v, want DROP", v)
	}
	high := &fakeSockRes{fakeRes: fakeRes{sid: sid(pol, "tmp_t")}, ns: "port", port: 8080, portOK: true}
	if v := e.Filter(sockReq(pol, OpSocketBind, high)); v != VerdictAccept {
		t.Errorf("high port: %v, want ACCEPT", v)
	}
	abs := &fakeSockRes{fakeRes: fakeRes{sid: sid(pol, "tmp_t")}, ns: "abstract"}
	if v := e.Filter(sockReq(pol, OpSocketBind, abs)); v != VerdictAccept {
		t.Errorf("abstract ns: %v, want ACCEPT", v)
	}
}

func TestPeerCredRefValue(t *testing.T) {
	pol := testPolicy()
	e := New(pol, Optimized())
	// C_PORT as the comparison value: drop when the peer uid differs from
	// the port number — nonsense policy, but it exercises ref resolution
	// inside PEER_CRED.
	e.Append("input", &Rule{
		Ops:     NewOpSet(OpSocketAccept),
		Matches: []Match{&PeerCredMatch{UID: Value{Ref: RefPort}, Nequal: true}},
		Target:  Drop(),
	})
	match := &fakeSockRes{
		fakeRes: fakeRes{sid: sid(pol, "tmp_t")},
		ns:      "port", port: 1000, portOK: true,
		peerUID: 1000, peerOK: true,
	}
	if v := e.Filter(sockReq(pol, OpSocketAccept, match)); v != VerdictAccept {
		t.Errorf("uid == port: %v, want ACCEPT", v)
	}
	differ := &fakeSockRes{
		fakeRes: fakeRes{sid: sid(pol, "tmp_t")},
		ns:      "port", port: 22, portOK: true,
		peerUID: 1000, peerOK: true,
	}
	if v := e.Filter(sockReq(pol, OpSocketAccept, differ)); v != VerdictDrop {
		t.Errorf("uid != port: %v, want DROP", v)
	}
}

// TestDenyOnlyOrderIndependenceIPC extends the Section 4.3 order-independence
// property to the socket operations and socket match modules.
func TestDenyOnlyOrderIndependenceIPC(t *testing.T) {
	pol := testPolicy()
	labels := []mac.Label{"tmp_t", "system_dbusd_var_run_t", "etc_t"}
	ops := []Op{OpSocketBind, OpSocketConnect, OpSocketListen, OpSocketAccept, OpSocketSend, OpSocketRecv, OpFifoCreate}
	nss := []string{"fs", "abstract", "port"}

	mkRules := func(rng *rand.Rand, n int) []*Rule {
		rules := make([]*Rule, n)
		for i := range rules {
			r := &Rule{Target: Drop()}
			if rng.Intn(2) == 0 {
				r.Object = NewSIDSet(rng.Intn(2) == 0, sid(pol, labels[rng.Intn(len(labels))]))
			}
			if rng.Intn(2) == 0 {
				r.Ops = NewOpSet(ops[rng.Intn(len(ops))])
			}
			switch rng.Intn(4) {
			case 0:
				r.Matches = append(r.Matches, &SockNSMatch{NS: nss[rng.Intn(len(nss))]})
			case 1:
				r.Matches = append(r.Matches, &PortMatch{Min: uint16(rng.Intn(3)) * 500, Max: 1500})
			case 2:
				r.Matches = append(r.Matches, &PeerCredMatch{UID: Literal(uint64(rng.Intn(2)) * 1000), Nequal: rng.Intn(2) == 0})
			}
			rules[i] = r
		}
		return rules
	}

	verdicts := func(rules []*Rule, reqs []*Request) []Verdict {
		e := New(pol, Optimized())
		for _, r := range rules {
			e.Append("input", r)
		}
		out := make([]Verdict, len(reqs))
		for i, req := range reqs {
			out[i] = e.Filter(req)
		}
		return out
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rules := mkRules(rng, 1+rng.Intn(10))

		var reqs []*Request
		for _, l := range labels {
			for _, op := range ops {
				obj := &fakeSockRes{
					fakeRes: fakeRes{sid: sid(pol, l), id: uint64(rng.Intn(5))},
					ns:      nss[rng.Intn(len(nss))],
				}
				if obj.ns == "port" {
					obj.port = uint16(rng.Intn(2000))
					obj.portOK = true
				}
				if rng.Intn(2) == 0 {
					obj.peerUID = rng.Intn(2) * 1000
					obj.peerOK = true
				}
				reqs = append(reqs, sockReq(pol, op, obj))
			}
		}
		base := verdicts(rules, reqs)

		shuffled := append([]*Rule(nil), rules...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		again := verdicts(shuffled, reqs)

		for i := range base {
			if base[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
