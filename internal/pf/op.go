// Package pf implements the Process Firewall engine of the EuroSys 2013
// paper: an iptables-style rule base consulted after conventional
// authorization, which decides — from process context (entrypoints, syscall
// history) and resource context (labels, identifiers, adversary
// accessibility) — whether a resource is appropriate for the process's
// current state.
//
// Architecture (paper Figure 3): rules live in chains; each rule combines
// default matches (subject/object label, program, entrypoint, operation),
// extension match modules (STATE, COMPARE, SIGNAL_MATCH, SYSCALL_ARGS), and
// a target (ACCEPT, DROP, STATE, LOG, or a jump to another chain). Context
// needed by matches is gathered by context modules, gated by a bitmask so
// each field is collected at most once (lazy retrieval), cached across the
// multiple resource requests of one system call (module-specific caching),
// and rules tied to entrypoints are indexed into entrypoint-specific chains
// (paper Sections 4.2–4.3). Traversal state is per process, so evaluation
// is re-entrant and never disables preemption (Section 5.1).
package pf

import "fmt"

// Op identifies the mediated operation, mirroring the LSM operations the
// paper's rules name with -o (e.g. FILE_OPEN, LNK_FILE_READ).
type Op uint16

// Mediated operations.
const (
	OpInvalid Op = iota
	OpFileOpen
	OpFileRead
	OpFileWrite
	OpFileCreate
	OpFileExec
	OpFileGetattr
	OpFileSetattr
	OpFileUnlink
	OpFileMmap
	OpDirSearch
	OpDirAddName
	OpDirRemoveName
	OpLnkFileRead
	OpSocketBind
	OpSocketConnect
	OpSocketSetattr
	OpSocketListen
	OpSocketAccept
	OpSocketSend
	OpSocketRecv
	OpFifoCreate
	OpSignalDeliver
	OpSyscallBegin
	opCount
)

var opNames = map[Op]string{
	OpFileOpen:      "FILE_OPEN",
	OpFileRead:      "FILE_READ",
	OpFileWrite:     "FILE_WRITE",
	OpFileCreate:    "FILE_CREATE",
	OpFileExec:      "FILE_EXEC",
	OpFileGetattr:   "FILE_GETATTR",
	OpFileSetattr:   "FILE_SETATTR",
	OpFileUnlink:    "FILE_UNLINK",
	OpFileMmap:      "FILE_MMAP",
	OpDirSearch:     "DIR_SEARCH",
	OpDirAddName:    "DIR_ADD_NAME",
	OpDirRemoveName: "DIR_REMOVE_NAME",
	OpLnkFileRead:   "LNK_FILE_READ",
	OpSocketBind:    "SOCKET_BIND",
	OpSocketConnect: "UNIX_STREAM_SOCKET_CONNECT",
	OpSocketSetattr: "SOCKET_SETATTR",
	OpSocketListen:  "SOCKET_LISTEN",
	OpSocketAccept:  "SOCKET_ACCEPT",
	OpSocketSend:    "SOCKET_SENDMSG",
	OpSocketRecv:    "SOCKET_RECVMSG",
	OpFifoCreate:    "FIFO_CREATE",
	OpSignalDeliver: "PROCESS_SIGNAL_DELIVERY",
	OpSyscallBegin:  "SYSCALL_BEGIN",
}

// opAliases accepts alternative spellings seen in the paper's rule listing.
var opAliases = map[string]Op{
	"LINK_READ":      OpLnkFileRead,
	"SOCKET_CONNECT": OpSocketConnect,
}

// String returns the rule-language name of the operation.
//
//pflint:allow-fn — diagnostic rendering, reached only from log/flight-record emission.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint16(o))
}

// ParseOp parses a rule-language operation name.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	if op, ok := opAliases[s]; ok {
		return op, nil
	}
	return OpInvalid, fmt.Errorf("pf: unknown operation %q", s)
}

// OpSet is a bit set of operations.
type OpSet uint32

// NewOpSet builds a set from ops.
func NewOpSet(ops ...Op) OpSet {
	var s OpSet
	for _, o := range ops {
		s |= 1 << o
	}
	return s
}

// Has reports membership. The empty set matches every operation, which is
// the rule-language convention for an omitted -o.
func (s OpSet) Has(o Op) bool {
	return s == 0 || s&(1<<o) != 0
}

// Verdict is the authorization decision the engine returns.
type Verdict int8

// Verdicts.
const (
	VerdictAccept Verdict = iota // allow the access (default policy)
	VerdictDrop                  // block the access
)

// String names the verdict like an iptables target.
func (v Verdict) String() string {
	if v == VerdictDrop {
		return "DROP"
	}
	return "ACCEPT"
}
