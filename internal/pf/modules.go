package pf

import "fmt"

// --- Match modules -----------------------------------------------------

// StateMatch tests a key in the per-process STATE dictionary (paper
// Section 5.2). The expected value may be a literal or a context reference
// (e.g. C_INO); Nequal inverts the comparison, as in rule R6, which drops a
// chmod whose inode differs from the one recorded at bind time.
type StateMatch struct {
	Key    uint64
	Cmp    Value
	Nequal bool
	// Absent controls matching when the key has never been set: rules like
	// R10 ("if process is already executing a signal handler") must not
	// match on first use. A missing key never matches, regardless of Nequal.
}

// ModName implements Match.
func (m *StateMatch) ModName() string { return "STATE" }

// Needs implements Match.
func (m *StateMatch) Needs() CtxKind { return needsOf(m.Cmp.Ref) }

// Match implements Match.
func (m *StateMatch) Match(ctx *EvalCtx) bool {
	cur, ok := ctx.Req.Proc.PFState().Get(m.Key)
	if !ok {
		return false
	}
	want, ok := ctx.Resolve(m.Cmp)
	if !ok {
		return false
	}
	if m.Nequal {
		return cur != want
	}
	return cur == want
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *StateMatch) Args() string {
	op := "--cmp"
	val := fmt.Sprintf("%d", m.Cmp.Lit)
	if m.Cmp.Ref != RefLiteral {
		val = RefName(m.Cmp.Ref)
	}
	s := fmt.Sprintf("--key %#x %s %s", m.Key, op, val)
	if m.Nequal {
		s += " --nequal"
	}
	return s
}

// CompareMatch compares two context values (paper rule R8: compare the
// symlink's owner with its target's owner to implement
// SymLinksIfOwnerMatch in the firewall).
type CompareMatch struct {
	V1, V2 Value
	Nequal bool
}

// ModName implements Match.
func (m *CompareMatch) ModName() string { return "COMPARE" }

// Needs implements Match.
func (m *CompareMatch) Needs() CtxKind { return needsOf(m.V1.Ref) | needsOf(m.V2.Ref) }

// Match implements Match.
func (m *CompareMatch) Match(ctx *EvalCtx) bool {
	a, ok1 := ctx.Resolve(m.V1)
	b, ok2 := ctx.Resolve(m.V2)
	if !ok1 || !ok2 {
		// Unavailable context (e.g. not a symlink) never matches: deny
		// rules predicated on it simply do not apply.
		return false
	}
	if m.Nequal {
		return a != b
	}
	return a == b
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *CompareMatch) Args() string {
	name := func(v Value) string {
		if v.Ref == RefLiteral {
			return fmt.Sprintf("%d", v.Lit)
		}
		return RefName(v.Ref)
	}
	s := fmt.Sprintf("--v1 %s --v2 %s", name(m.V1), name(m.V2))
	if m.Nequal {
		s += " --nequal"
	}
	return s
}

// SignalMatch matches signal deliveries that have a registered handler and
// are blockable (paper rules R10–R11): exactly the signals whose delivery
// into a running handler constitutes a re-entrancy race.
type SignalMatch struct{}

// ModName implements Match.
func (m *SignalMatch) ModName() string { return "SIGNAL_MATCH" }

// Needs implements Match.
func (m *SignalMatch) Needs() CtxKind { return CtxSignal }

// Match implements Match.
func (m *SignalMatch) Match(ctx *EvalCtx) bool {
	s := ctx.Req.Sig
	return s != nil && s.HasHandler && !s.Unblockable
}

// Args implements Match.
func (m *SignalMatch) Args() string { return "" }

// SyscallArgsMatch matches one syscall argument slot against a value
// (paper rule R12: "--arg 0 --equal NR_sigreturn" detects the sigreturn
// system call on the syscallbegin chain). Slot 0 is the syscall number.
type SyscallArgsMatch struct {
	Arg   int
	Equal uint64
}

// ModName implements Match.
func (m *SyscallArgsMatch) ModName() string { return "SYSCALL_ARGS" }

// Needs implements Match.
func (m *SyscallArgsMatch) Needs() CtxKind { return CtxSyscall }

// Match implements Match.
func (m *SyscallArgsMatch) Match(ctx *EvalCtx) bool {
	if m.Arg == 0 {
		return uint64(ctx.Req.SyscallNR) == m.Equal
	}
	i := m.Arg - 1
	if i < 0 || i >= len(ctx.Req.SyscallArgs) {
		return false
	}
	return ctx.Req.SyscallArgs[i] == m.Equal
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *SyscallArgsMatch) Args() string {
	return fmt.Sprintf("--arg %d --equal %d", m.Arg, m.Equal)
}

// AdvAccessMatch matches on the resource's adversary accessibility, the
// context the paper identifies as necessary for untrusted search path,
// squatting, and library-load invariants (Table 2 rows 1–2). Rules
// generated from templates use it via the generalized "~{SYSHIGH}" object
// sets; this module exposes the same context explicitly.
type AdvAccessMatch struct {
	Write bool // match adversary-writable (integrity); else adversary-readable
	Want  bool // required value
}

// ModName implements Match.
func (m *AdvAccessMatch) ModName() string { return "ADV_ACCESS" }

// Needs implements Match.
func (m *AdvAccessMatch) Needs() CtxKind {
	if m.Write {
		return CtxAdvWrite
	}
	return CtxAdvRead
}

// Match implements Match.
func (m *AdvAccessMatch) Match(ctx *EvalCtx) bool {
	if m.Write {
		return ctx.AdversaryWritable() == m.Want
	}
	return ctx.AdversaryReadable() == m.Want
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *AdvAccessMatch) Args() string {
	kind := "--read"
	if m.Write {
		kind = "--write"
	}
	return fmt.Sprintf("%s --is %v", kind, m.Want)
}

// PeerCredMatch tests the socket peer's uid (SO_PEERCRED context), the
// binding a squatted rendezvous cannot forge: whoever answers at the name,
// their credential was captured when the connection pair was created. With
// Nequal it expresses "must be answered by uid N" as a deny rule, e.g.
// "-m PEER_CRED --uid 0 --nequal -j DROP" pins a system service's clients
// to a root-owned peer. Unavailable context (not a connected endpoint)
// never matches, so deny rules predicated on it simply do not apply.
type PeerCredMatch struct {
	UID    Value
	Nequal bool
}

// ModName implements Match.
func (m *PeerCredMatch) ModName() string { return "PEER_CRED" }

// Needs implements Match.
func (m *PeerCredMatch) Needs() CtxKind { return CtxPeerCred | needsOf(m.UID.Ref) }

// Match implements Match.
func (m *PeerCredMatch) Match(ctx *EvalCtx) bool {
	_, uid, _, ok := ctx.PeerCred()
	if !ok {
		return false
	}
	want, ok := ctx.Resolve(m.UID)
	if !ok {
		return false
	}
	if m.Nequal {
		return uint64(int64(uid)) != want
	}
	return uint64(int64(uid)) == want
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *PeerCredMatch) Args() string {
	val := fmt.Sprintf("%d", m.UID.Lit)
	if m.UID.Ref != RefLiteral {
		val = RefName(m.UID.Ref)
	}
	s := fmt.Sprintf("--uid %s", val)
	if m.Nequal {
		s += " --nequal"
	}
	return s
}

// SockNSMatch tests which rendezvous namespace the socket lives in ("fs",
// "abstract", "port"), letting rules treat the inode-less namespaces — the
// classic squat surfaces — differently from filesystem sockets.
type SockNSMatch struct {
	NS string
}

// ModName implements Match.
func (m *SockNSMatch) ModName() string { return "SOCK_NS" }

// Needs implements Match.
func (m *SockNSMatch) Needs() CtxKind { return CtxSockNS }

// Match implements Match.
func (m *SockNSMatch) Match(ctx *EvalCtx) bool {
	ns, ok := ctx.SockNS()
	return ok && ns == m.NS
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *SockNSMatch) Args() string { return fmt.Sprintf("--ns %s", m.NS) }

// PortMatch tests the port of a port-namespace socket against an inclusive
// range, iptables --dport style.
type PortMatch struct {
	Min, Max uint16
}

// ModName implements Match.
func (m *PortMatch) ModName() string { return "PORT" }

// Needs implements Match.
func (m *PortMatch) Needs() CtxKind { return CtxPort }

// Match implements Match.
func (m *PortMatch) Match(ctx *EvalCtx) bool {
	p, ok := ctx.SockPort()
	return ok && p >= m.Min && p <= m.Max
}

// Args implements Match.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (m *PortMatch) Args() string { return fmt.Sprintf("--min %d --max %d", m.Min, m.Max) }

// --- Target modules ----------------------------------------------------

// VerdictTarget terminates traversal with a fixed verdict (ACCEPT / DROP).
type VerdictTarget struct {
	V Verdict
}

// Drop returns the DROP target.
func Drop() *VerdictTarget { return &VerdictTarget{V: VerdictDrop} }

// Accept returns the ACCEPT target.
func Accept() *VerdictTarget { return &VerdictTarget{V: VerdictAccept} }

// TargetName implements Target.
func (t *VerdictTarget) TargetName() string { return t.V.String() }

// Needs implements Target.
func (t *VerdictTarget) Needs() CtxKind { return 0 }

// Fire implements Target.
func (t *VerdictTarget) Fire(ctx *EvalCtx) Action { return Action{Final: true, Verdict: t.V} }

// Args implements Target.
func (t *VerdictTarget) Args() string { return "" }

// ReturnTarget pops traversal back to the calling chain, like iptables
// RETURN: the remaining rules of the current user chain are skipped and
// evaluation resumes after the jump point.
type ReturnTarget struct{}

// TargetName implements Target.
func (t *ReturnTarget) TargetName() string { return "RETURN" }

// Needs implements Target.
func (t *ReturnTarget) Needs() CtxKind { return 0 }

// Fire implements Target.
func (t *ReturnTarget) Fire(ctx *EvalCtx) Action { return Action{Return: true} }

// Args implements Target.
func (t *ReturnTarget) Args() string { return "" }

// JumpTarget transfers traversal into a user-defined chain, like iptables
// jumps (paper rule R9 jumps signal deliveries into SIGNAL_CHAIN).
type JumpTarget struct {
	ChainName string
}

// TargetName implements Target.
func (t *JumpTarget) TargetName() string { return t.ChainName }

// Needs implements Target.
func (t *JumpTarget) Needs() CtxKind { return 0 }

// Fire implements Target.
func (t *JumpTarget) Fire(ctx *EvalCtx) Action { return Action{Jump: t.ChainName} }

// Args implements Target.
func (t *JumpTarget) Args() string { return "" }

// StateTarget sets a key in the per-process STATE dictionary and continues
// (paper rule R5 records the inode bound by dbus-daemon; R11/R12 track
// signal-handler entry and exit).
type StateTarget struct {
	Key uint64
	Val Value
}

// TargetName implements Target.
func (t *StateTarget) TargetName() string { return "STATE" }

// Needs implements Target.
func (t *StateTarget) Needs() CtxKind { return needsOf(t.Val.Ref) }

// Fire implements Target.
func (t *StateTarget) Fire(ctx *EvalCtx) Action {
	if v, ok := ctx.Resolve(t.Val); ok {
		ctx.Req.Proc.PFState().Set(t.Key, v)
	}
	return Continue
}

// Args implements Target.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (t *StateTarget) Args() string {
	val := fmt.Sprintf("%d", t.Val.Lit)
	if t.Val.Ref != RefLiteral {
		val = RefName(t.Val.Ref)
	}
	return fmt.Sprintf("--set --key %#x --value %s", t.Key, val)
}

// LogTarget emits a LogRecord for the current access and continues; rule
// generation consumes these records (paper Section 6.3).
type LogTarget struct {
	Prefix string
}

// TargetName implements Target.
func (t *LogTarget) TargetName() string { return "LOG" }

// Needs implements Target.
func (t *LogTarget) Needs() CtxKind { return CtxEntrypoints | CtxAdvWrite | CtxAdvRead }

// Fire implements Target.
func (t *LogTarget) Fire(ctx *EvalCtx) Action {
	ctx.engine.emitLog(ctx, t.Prefix, VerdictAccept)
	return Continue
}

// Args implements Target.
//
//pflint:allow-fn — rule-text rendering for listings and logs; never on the accept path.
func (t *LogTarget) Args() string {
	if t.Prefix == "" {
		return ""
	}
	return fmt.Sprintf("--prefix %q", t.Prefix)
}
