package pf

import "pfirewall/internal/mac"

// Ruleset compilation (DESIGN.md §7). At publish time each built-in chain's
// traversal list is compiled into a dispatch index bucketed by operation and
// then by subject SID. A request consults only the buckets that can contain
// rules matching its (op, subject) pair; every other rule is provably
// non-matching and is never inspected, so per-request cost scales with the
// number of possibly-matching rules instead of the total rule count.
//
// Soundness rests on two static facts about rule predicates:
//
//   - OpSet membership: a rule whose op mask excludes the request's op can
//     never match it (an empty mask matches every op and fans into every
//     bucket).
//   - Exact subject SIDs: a rule with a non-negated subject set only matches
//     requests whose subject SID is in the set, so it lives in exactly those
//     SID buckets. Rules with no subject — or a negated one — go to the
//     per-op wildcard bucket, which every request scans.
//
// Both are over-approximations: a candidate still runs the full predicate
// (matchesDefaults + match modules), so false positives cost a comparison,
// never a wrong verdict. First-match order is preserved by recording each
// rule's install sequence number and merging the two candidate streams by
// sequence at dispatch time.

// indexedRule is one compiled candidate: the rule plus its position in the
// chain's traversal list, so merged bucket scans preserve install order.
type indexedRule struct {
	seq  int
	ctrl bool
	r    *Rule
}

// opBucket holds the candidate rules for one operation.
type opBucket struct {
	bySID map[mac.SID][]indexedRule // exact, non-negated subject sets
	wild  []indexedRule             // no subject, or a negated subject set
}

// chainIndex is the compiled dispatch index of one built-in chain.
type chainIndex struct {
	chain *Chain
	// skipEpt records which traversal list the index was compiled from, so
	// the control-flow fallback resumes over the same rule sequence.
	skipEpt bool
	ops     [opCount]*opBucket
}

// isCtrlTarget reports whether firing t can redirect chain traversal. The
// dispatch merge can run verdict-, state-, and log-targets directly: they
// either end evaluation or fall through to the next rule. Anything else
// (JUMP, RETURN, custom targets) may move to a different chain position, so
// dispatch conservatively falls back to linear traversal at that rule.
func isCtrlTarget(t Target) bool {
	switch t.(type) {
	case *VerdictTarget, *StateTarget, *LogTarget:
		return false
	}
	return true
}

// compiledChains names the built-in chains dispatch covers. User-defined
// chains are only ever reached through jumps — a control transfer — which
// already run under linear traversal.
var compiledChains = []string{"input", "syscallbegin", "mangle/input"}

// compileRuleset builds the dispatch indexes for rs's built-in chains.
// It runs under the engine's write lock on a not-yet-published snapshot;
// once published the index is immutable like everything else in it.
func compileRuleset(rs *ruleset, cfg Config) map[string]*chainIndex {
	out := make(map[string]*chainIndex, len(compiledChains))
	for _, name := range compiledChains {
		c := rs.chains[name]
		if c == nil {
			continue
		}
		// Mangle always traverses its full rule list; the filter chains
		// skip entrypoint rules when EptChains has indexed them out.
		skipEpt := cfg.EptChains && name != "mangle/input"
		out[name] = compileChain(c, skipEpt)
	}
	return out
}

// compileChain fans each rule of c's traversal list into its op buckets.
func compileChain(c *Chain, skipEpt bool) *chainIndex {
	ci := &chainIndex{chain: c, skipEpt: skipEpt}
	for seq, r := range c.traversalRules(skipEpt) {
		ir := indexedRule{seq: seq, ctrl: isCtrlTarget(r.Target), r: r}
		exact := r.Subject != nil && !r.Subject.Negate
		if exact && len(r.Subject.sids) == 0 {
			// A non-negated empty subject set matches no request; the rule
			// is unreachable and needs no buckets. (Linear traversal still
			// evaluates it to the same non-match.)
			continue
		}
		// Op(0) is OpInvalid; only an empty op mask — which matches every
		// op, including a zero-valued one — lands in its bucket, keeping
		// dispatch bit-for-bit with linear evaluation even for degenerate
		// requests.
		for op := Op(0); op < opCount; op++ {
			if !r.Ops.Has(op) {
				continue
			}
			b := ci.ops[op]
			if b == nil {
				b = &opBucket{bySID: make(map[mac.SID][]indexedRule)}
				ci.ops[op] = b
			}
			if exact {
				for sid := range r.Subject.sids {
					b.bySID[sid] = append(b.bySID[sid], ir)
				}
			} else {
				b.wild = append(b.wild, ir)
			}
		}
	}
	return ci
}

// dispatch evaluates the chain through its compiled index: an
// order-preserving two-pointer merge of the exact-SID bucket and the
// wildcard bucket for the request's op. A rule with a control-flow target
// aborts the merge and resumes linear traversal at that rule — everything
// before it is provably non-matching, so first-match semantics (including
// jump/return and user-chain traversal) are preserved exactly.
func (e *Engine) dispatch(ctx *EvalCtx, rs *ruleset, ci *chainIndex) Action {
	op := ctx.Req.Op
	if op >= opCount {
		// Unknown future op: the index has no bucket for it; stay correct
		// via plain traversal.
		return e.traverse(ctx, rs, ci.chain, ci.skipEpt)
	}
	if ci.chain.Traversals != nil {
		ci.chain.Traversals.Add(ctx.Req.Proc.PID(), 1)
	}
	b := ci.ops[op]
	if b == nil {
		return Continue
	}
	exact := b.bySID[ctx.Req.Proc.SubjectSID()]
	wild := b.wild
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var ir indexedRule
		if j >= len(wild) || (i < len(exact) && exact[i].seq < wild[j].seq) {
			ir = exact[i]
			i++
		} else {
			ir = wild[j]
			j++
		}
		if ir.ctrl {
			return e.traverseFrom(ctx, rs, ci.chain, ir.seq, ci.skipEpt, false)
		}
		if act := e.evalRule(ctx, ir.r); act.Final {
			return act
		}
	}
	return Continue
}
