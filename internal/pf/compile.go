package pf

import (
	"sort"

	"pfirewall/internal/mac"
)

// Ruleset compilation (DESIGN.md §7, §12). At publish time each built-in
// chain's traversal list is compiled into a dispatch index bucketed by
// operation and then by subject SID. A request consults only the buckets that
// can contain rules matching its (op, subject) pair; every other rule is
// provably non-matching and is never inspected, so per-request cost scales
// with the number of possibly-matching rules instead of the total rule count.
//
// Soundness rests on two static facts about rule predicates:
//
//   - OpSet membership: a rule whose op mask excludes the request's op can
//     never match it (an empty mask matches every op and fans into every
//     bucket).
//   - Exact subject SIDs: a rule with a non-negated subject set only matches
//     requests whose subject SID is in the set, so it lives in exactly those
//     SID buckets. Rules with no subject — or a negated one — go to the
//     per-op wildcard bucket, which every request scans.
//
// Both are over-approximations: a candidate still runs the full predicate
// (matchesDefaults + match modules), so false positives cost a comparison,
// never a wrong verdict. First-match order is preserved by recording each
// rule's order key and merging the two candidate streams by key at dispatch
// time.
//
// Publishes are incremental (DESIGN.md §12): a transaction records the rules
// it added to or removed from each compiled chain, and patchRuleset clones
// only the (op, SID) buckets those rules fan into, sharing every untouched
// bucket slice with the previous snapshot. For order keys to survive such
// surgery they cannot be positional indexes — inserting one rule would shift
// every later rule's position and invalidate the shared buckets — so each
// rule carries a stable gap-allocated ord (Rule.ord): full compiles number
// rules ordGap apart, installs take ord±ordGap at the ends or the midpoint
// between neighbors, and a midpoint collision (the gap is exhausted after
// ~20 same-spot inserts) falls back to a full recompile that renumbers.

// ordGap is the spacing between order keys assigned by a full compile, and
// the headroom for midpoint insertion between neighbors.
const ordGap = int64(1) << 20

// indexedRule is one compiled candidate: the rule plus its stable order key,
// so merged bucket scans preserve install order.
type indexedRule struct {
	ord  int64
	ctrl bool
	r    *Rule
}

// opBucket holds the candidate rules for one operation.
type opBucket struct {
	bySID map[mac.SID][]indexedRule // exact, non-negated subject sets
	wild  []indexedRule             // no subject, or a negated subject set
}

// chainIndex is the compiled dispatch index of one built-in chain.
type chainIndex struct {
	chain *Chain
	// skipEpt records which traversal list the index was compiled from, so
	// the control-flow fallback resumes over the same rule sequence.
	skipEpt bool
	ops     [opCount]*opBucket
}

// isCtrlTarget reports whether firing t can redirect chain traversal. The
// dispatch merge can run verdict-, state-, and log-targets directly: they
// either end evaluation or fall through to the next rule. Anything else
// (JUMP, RETURN, custom targets) may move to a different chain position, so
// dispatch conservatively falls back to linear traversal at that rule.
func isCtrlTarget(t Target) bool {
	switch t.(type) {
	case *VerdictTarget, *StateTarget, *LogTarget:
		return false
	}
	return true
}

// compiledChains names the built-in chains dispatch covers. User-defined
// chains are only ever reached through jumps — a control transfer — which
// already run under linear traversal.
var compiledChains = []string{"input", "syscallbegin", "mangle/input"}

// compiledChain reports whether dispatch covers chain name.
func compiledChain(name string) bool {
	return name == "input" || name == "syscallbegin" || name == "mangle/input"
}

// compileRuleset builds the dispatch indexes for rs's built-in chains from
// scratch, renumbering every rule's order key. It runs under the engine's
// write lock on a not-yet-published snapshot; once published the index is
// immutable like everything else in it.
func compileRuleset(rs *ruleset, cfg Config) map[string]*chainIndex {
	out := make(map[string]*chainIndex, len(compiledChains))
	for _, name := range compiledChains {
		c := rs.chains[name]
		if c == nil {
			continue
		}
		// Mangle always traverses its full rule list; the filter chains
		// skip entrypoint rules when EptChains has indexed them out.
		skipEpt := cfg.EptChains && name != "mangle/input"
		out[name] = compileChain(c, skipEpt)
	}
	return out
}

// compileChain fans each rule of c's traversal list into its op buckets,
// assigning fresh gap-spaced order keys as it goes.
func compileChain(c *Chain, skipEpt bool) *chainIndex {
	ci := &chainIndex{chain: c, skipEpt: skipEpt}
	for seq, r := range c.traversalRules(skipEpt) {
		r.ord = (int64(seq) + 1) * ordGap
		ci.add(r)
	}
	return ci
}

// add fans one rule into the buckets its predicate can reach, appending in
// bucket order (callers guarantee ascending ord).
func (ci *chainIndex) add(r *Rule) {
	ir := indexedRule{ord: r.ord, ctrl: isCtrlTarget(r.Target), r: r}
	exact := r.Subject != nil && !r.Subject.Negate
	if exact && len(r.Subject.sids) == 0 {
		// A non-negated empty subject set matches no request; the rule
		// is unreachable and needs no buckets. (Linear traversal still
		// evaluates it to the same non-match.)
		return
	}
	// Op(0) is OpInvalid; only an empty op mask — which matches every
	// op, including a zero-valued one — lands in its bucket, keeping
	// dispatch bit-for-bit with linear evaluation even for degenerate
	// requests.
	for op := Op(0); op < opCount; op++ {
		if !r.Ops.Has(op) {
			continue
		}
		b := ci.ops[op]
		if b == nil {
			b = &opBucket{bySID: make(map[mac.SID][]indexedRule)}
			ci.ops[op] = b
		}
		if exact {
			for sid := range r.Subject.sids {
				b.bySID[sid] = append(b.bySID[sid], ir)
			}
		} else {
			b.wild = append(b.wild, ir)
		}
	}
}

// --- incremental recompilation -----------------------------------------

// patchRuleset derives rs's dispatch indexes from the previous snapshot's,
// re-fanning only the rules in delta and sharing every untouched bucket with
// prev. Returns nil when the delta cannot be applied consistently (the caller
// then falls back to a full compile). Runs under the engine's write lock.
func patchRuleset(prev map[string]*chainIndex, rs *ruleset, delta map[string][]ruleDelta, cfg Config) map[string]*chainIndex {
	out := make(map[string]*chainIndex, len(compiledChains))
	for _, name := range compiledChains {
		c := rs.chains[name]
		if c == nil {
			continue
		}
		old := prev[name]
		if old == nil {
			return nil
		}
		ds := delta[name]
		if len(ds) == 0 {
			if old.chain == c {
				// Chain untouched by the transaction: share the whole index.
				out[name] = old
			} else {
				// Chain was copy-on-written (e.g. an indexed-out entrypoint
				// rule changed) but its compiled traversal list did not:
				// rebind the index to the new Chain value, sharing buckets.
				ci := *old
				ci.chain = c
				out[name] = &ci
			}
			continue
		}
		ci := patchChain(old, c, ds)
		if ci == nil {
			return nil
		}
		out[name] = ci
	}
	return out
}

// patchChain applies one chain's deltas to a copy of its previous index.
// Buckets are copy-on-write: the ops array is copied wholesale (it is small),
// but each opBucket — and each bySID slice inside one — is only cloned the
// first time a delta touches it; everything else stays shared with prev.
// Returns nil on inconsistency (a removal that finds no bucket entry), which
// signals the caller to full-compile instead.
func patchChain(prev *chainIndex, c *Chain, ds []ruleDelta) *chainIndex {
	ci := &chainIndex{chain: c, skipEpt: prev.skipEpt, ops: prev.ops}
	var owned [opCount]bool
	for _, d := range ds {
		r := d.r
		exact := r.Subject != nil && !r.Subject.Negate
		if exact && len(r.Subject.sids) == 0 {
			continue // bucketless either way; nothing to patch
		}
		ir := indexedRule{ord: r.ord, ctrl: isCtrlTarget(r.Target), r: r}
		for op := Op(0); op < opCount; op++ {
			if !r.Ops.Has(op) {
				continue
			}
			b := ci.ops[op]
			if d.add && b == nil {
				b = &opBucket{bySID: make(map[mac.SID][]indexedRule)}
				ci.ops[op] = b
				owned[op] = true
			}
			if b == nil {
				return nil // removing from an op with no bucket: inconsistent
			}
			if !owned[op] {
				b = b.cow()
				ci.ops[op] = b
				owned[op] = true
			}
			if exact {
				for sid := range r.Subject.sids {
					if d.add {
						b.bySID[sid] = insertOrd(b.bySID[sid], ir)
					} else {
						rules, ok := removeOrd(b.bySID[sid], r)
						if !ok {
							return nil
						}
						if len(rules) == 0 {
							delete(b.bySID, sid)
						} else {
							b.bySID[sid] = rules
						}
					}
				}
			} else {
				if d.add {
					b.wild = insertOrd(b.wild, ir)
				} else {
					rules, ok := removeOrd(b.wild, r)
					if !ok {
						return nil
					}
					b.wild = rules
				}
			}
		}
	}
	return ci
}

// cow returns a bucket whose bySID map can be mutated without touching the
// original. The map is copied; the slices inside it (and wild) stay shared —
// insertOrd/removeOrd always produce fresh slices, never write in place.
func (b *opBucket) cow() *opBucket {
	n := &opBucket{bySID: make(map[mac.SID][]indexedRule, len(b.bySID)), wild: b.wild}
	for sid, rules := range b.bySID {
		n.bySID[sid] = rules
	}
	return n
}

// insertOrd returns a fresh slice with ir spliced in at its ord position.
// The input slice is shared with previous snapshots and is never written.
func insertOrd(rules []indexedRule, ir indexedRule) []indexedRule {
	i := sort.Search(len(rules), func(k int) bool { return rules[k].ord > ir.ord })
	out := make([]indexedRule, 0, len(rules)+1)
	out = append(out, rules[:i]...)
	out = append(out, ir)
	return append(out, rules[i:]...)
}

// removeOrd returns a fresh slice with r's entry removed, or ok=false when
// no entry references r (the index disagrees with the delta).
func removeOrd(rules []indexedRule, r *Rule) ([]indexedRule, bool) {
	for i := range rules {
		if rules[i].r != r {
			continue
		}
		out := make([]indexedRule, 0, len(rules)-1)
		out = append(out, rules[:i]...)
		return append(out, rules[i+1:]...), true
	}
	return nil, false
}

// --- dispatch -----------------------------------------------------------

// posOf locates r in the chain's traversal list for the control-flow
// fallback. A miss (possible only if the index and chain disagree, which the
// publish path prevents) restarts from 0 — correct, since every rule before
// r is provably non-matching and re-evaluates to a no-op, just slower.
func (ci *chainIndex) posOf(r *Rule) int {
	for k, rr := range ci.chain.traversalRules(ci.skipEpt) {
		if rr == r {
			return k
		}
	}
	return 0
}

// dispatch evaluates the chain through its compiled index: an
// order-preserving two-pointer merge of the exact-SID bucket and the
// wildcard bucket for the request's op. A rule with a control-flow target
// aborts the merge and resumes linear traversal at that rule — everything
// before it is provably non-matching, so first-match semantics (including
// jump/return and user-chain traversal) are preserved exactly.
func (e *Engine) dispatch(ctx *EvalCtx, rs *ruleset, ci *chainIndex) Action {
	op := ctx.Req.Op
	if op >= opCount {
		// Unknown future op: the index has no bucket for it; stay correct
		// via plain traversal.
		return e.traverse(ctx, rs, ci.chain, ci.skipEpt)
	}
	if ci.chain.Traversals != nil {
		ci.chain.Traversals.Add(ctx.Req.Proc.PID(), 1)
	}
	b := ci.ops[op]
	if b == nil {
		return Continue
	}
	exact := b.bySID[ctx.Req.Proc.SubjectSID()]
	wild := b.wild
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var ir indexedRule
		if j >= len(wild) || (i < len(exact) && exact[i].ord < wild[j].ord) {
			ir = exact[i]
			i++
		} else {
			ir = wild[j]
			j++
		}
		if ir.ctrl {
			return e.traverseFrom(ctx, rs, ci.chain, ci.posOf(ir.r), ci.skipEpt, false)
		}
		if act := e.evalRule(ctx, ir.r); act.Final {
			return act
		}
	}
	return Continue
}
