package pf

// Transactional rule-base updates (DESIGN.md §12). A Tx batches any number
// of rule mutations into one atomic publish: one cloned snapshot, one
// generation bump, one dispatch-index derivation, one pointer store. The
// mediation path never blocks on a publish and never observes a partial
// batch — it either runs against the previous snapshot or the new one.
//
// Ownership discipline: Tx.rs starts as a shallow clone sharing every
// *Chain, entrypoint-index slice, and compiled bucket with the published
// snapshot. The first mutation of a chain copies it (ownChain); the first
// entrypoint-index mutation copies the index map (ownEpt); slice mutations
// always produce fresh slices. Shared state is therefore never written —
// concurrent readers of any historical snapshot (including ones a Rollback
// may re-expose) keep an immutable view.

import (
	"fmt"
	"sort"
)

// historyCap bounds the engine's rollback window: how many previously
// published snapshots Rollback can restore, newest first.
const historyCap = 8

// ruleDelta records one compiled-chain mutation for incremental
// recompilation: rule r entered (add) or left the chain's traversal list.
type ruleDelta struct {
	add bool
	r   *Rule
}

// Tx is an in-flight rule-base transaction. All methods run under the
// engine's write lock (Transaction holds it); a Tx must not escape the
// callback it is passed to.
type Tx struct {
	e    *Engine
	prev *ruleset
	rs   *ruleset

	owned     map[string]bool // chains copied from prev
	eptOwned  bool            // eptIndex/eptPrograms maps copied
	delta     map[string][]ruleDelta
	full      bool     // bulk change: skip deltas, full-compile at publish
	derived   bool     // a removal may have narrowed the derived summaries
	newChains []string // register observability after publish
}

// Transaction runs fn against a transactional view of the rule base and, if
// fn succeeds, publishes every mutation as one new snapshot (one version,
// one generation, one dispatch-index derivation). If fn returns an error
// nothing is published and the error is returned.
func (e *Engine) Transaction(fn func(*Tx) error) error {
	return e.TransactionGated(fn, nil)
}

// TransactionGated is Transaction with a pre-publish gate: after fn succeeds
// the gate inspects the would-be chains (an immutable view); a non-nil error
// vetoes the publish. The control plane uses this to run pfcheck over each
// delta before it can reach the mediation path.
func (e *Engine) TransactionGated(fn func(*Tx) error, gate func(chains map[string]*Chain) error) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	prev := e.rs.Load()
	tx := &Tx{e: e, prev: prev, rs: prev.clone(), owned: make(map[string]bool)}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.derived {
		tx.recomputeDerived()
	}
	if gate != nil {
		if err := gate(tx.rs.chains); err != nil {
			return err
		}
	}
	e.publishLocked(tx)
	for _, name := range tx.newChains {
		e.registerChainObs(name)
	}
	return nil
}

// publishLocked derives the new snapshot's dispatch index (incrementally
// when the transaction recorded a clean delta, from scratch otherwise),
// stamps version and generation, pushes the previous snapshot onto the
// rollback ring, and atomically exposes the new snapshot to readers.
func (e *Engine) publishLocked(tx *Tx) {
	n := tx.rs
	e.versionCtr++
	n.version = e.versionCtr
	n.gen = rulesetGen.Add(1)
	if e.cfg.RuleIndex {
		var compiled map[string]*chainIndex
		if !tx.full && !e.cfg.FullRecompile && !e.forceFull && tx.prev.compiled != nil {
			compiled = patchRuleset(tx.prev.compiled, n, tx.delta, e.cfg)
		}
		if compiled == nil {
			compiled = compileRuleset(n, e.cfg)
			e.forceFull = false
			e.fullCompiles.Add(1)
		} else {
			e.deltaCompiles.Add(1)
		}
		n.compiled = compiled
	}
	e.history = append(e.history, tx.prev)
	if len(e.history) > historyCap {
		copy(e.history, e.history[len(e.history)-historyCap:])
		e.history = e.history[:historyCap]
	}
	e.rs.Store(n)
	e.publishes.Add(1)
}

// Rollback atomically re-exposes the most recently superseded snapshot and
// returns its version. Verdicts in flight keep the snapshot they started
// with; new requests see the restored ruleset immediately. The rollback
// window is the last historyCap publishes.
func (e *Engine) Rollback() (uint64, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if len(e.history) == 0 {
		return 0, fmt.Errorf("pf: no snapshot to roll back to")
	}
	prev := e.history[len(e.history)-1]
	e.history[len(e.history)-1] = nil
	e.history = e.history[:len(e.history)-1]
	e.rs.Store(prev)
	// A full recompile since prev was published may have renumbered rule
	// order keys; prev's index holds the old ones. Patching on top of it
	// would interleave incompatible keys, so the next publish renumbers.
	e.forceFull = true
	e.rollbacks.Add(1)
	return prev.version, nil
}

// Version returns the currently enforcing snapshot's publish version.
func (e *Engine) Version() uint64 { return e.rs.Load().version }

// Generation returns the currently enforcing snapshot's globally unique
// generation (bumped on every publish and never reused, unlike Version,
// which a rollback restores).
func (e *Engine) Generation() uint64 { return e.rs.Load().gen }

// PublishStats counts control-plane activity since the engine was created.
type PublishStats struct {
	Publishes     uint64 `json:"publishes"`
	FullCompiles  uint64 `json:"full_compiles"`
	DeltaCompiles uint64 `json:"delta_compiles"`
	Rollbacks     uint64 `json:"rollbacks"`
}

// PublishStats returns a snapshot of the publish-path counters.
func (e *Engine) PublishStats() PublishStats {
	return PublishStats{
		Publishes:     e.publishes.Load(),
		FullCompiles:  e.fullCompiles.Load(),
		DeltaCompiles: e.deltaCompiles.Load(),
		Rollbacks:     e.rollbacks.Load(),
	}
}

// --- copy-on-write helpers ----------------------------------------------

// ownChain returns chain name's *Chain, copied from the published snapshot
// the first time the transaction mutates it. Returns nil for unknown chains.
func (tx *Tx) ownChain(name string) *Chain {
	c := tx.rs.chains[name]
	if c == nil || tx.owned[name] {
		return c
	}
	n := c.clone()
	tx.rs.chains[name] = n
	tx.owned[name] = true
	return n
}

// ownEpt copies the entrypoint index map (sharing its slices) and the
// program set before their first mutation.
func (tx *Tx) ownEpt() {
	if tx.eptOwned {
		return
	}
	rs := tx.rs
	idx := make(map[entryKey][]*Rule, len(rs.eptIndex))
	for k, v := range rs.eptIndex {
		idx[k] = v
	}
	rs.eptIndex = idx
	progs := make(map[string]bool, len(rs.eptPrograms))
	for k := range rs.eptPrograms {
		progs[k] = true
	}
	rs.eptPrograms = progs
	tx.eptOwned = true
}

// bulkDeltaMax bounds the per-chain delta a publish will patch. Each patched
// rule copies the buckets it lands in, so a huge batch degrades toward
// O(batch × bucket) — past this point a from-scratch compile is cheaper and
// the transaction flips to full.
const bulkDeltaMax = 256

// recordDelta notes that r entered or left a compiled chain's traversal
// list. Pointless once the transaction went bulk (full) or when the chain
// is not dispatch-compiled.
func (tx *Tx) recordDelta(chain string, add bool, r *Rule) {
	if !tx.e.cfg.RuleIndex || tx.full || !compiledChain(chain) {
		return
	}
	if tx.delta == nil {
		tx.delta = make(map[string][]ruleDelta)
	}
	tx.delta[chain] = append(tx.delta[chain], ruleDelta{add: add, r: r})
	if len(tx.delta[chain]) > bulkDeltaMax {
		tx.full = true
		tx.delta = nil
	}
}

// eptIndexed reports whether a rule is routed to the entrypoint index (and
// thus out of the chain's compiled traversal list) under the engine's
// configuration. This is a pure function of the rule and chain, so install,
// removal, and replacement all agree on which lane a rule lives in.
func (tx *Tx) eptIndexed(chain string, r *Rule) bool {
	return r.EntrySet && tx.e.cfg.EptChains && (chain == "input" || chain == "syscallbegin")
}

// --- mutations ----------------------------------------------------------

// Append adds a rule at the end of chain.
func (tx *Tx) Append(chain string, r *Rule) error { return tx.install(chain, r, false) }

// Insert adds a rule at the head of chain.
func (tx *Tx) Insert(chain string, r *Rule) error { return tx.install(chain, r, true) }

func (tx *Tx) install(chain string, r *Rule, front bool) error {
	if r.Target == nil {
		return fmt.Errorf("pf: rule without target")
	}
	if r.EntrySet && r.Program == "" {
		return fmt.Errorf("pf: entrypoint match requires a program (-p with -i)")
	}
	c := tx.ownChain(chain)
	if c == nil {
		return fmt.Errorf("pf: no such chain %q", chain)
	}
	rs := tx.rs
	rs.allNeeds |= r.needs()
	rs.totalRules++
	rs.opsPresent |= opsMaskOf(r)
	if r.EntrySet {
		rs.hasEptRules = true
	}
	if tx.eptIndexed(chain, r) {
		tx.ownEpt()
		rs.eptPrograms[r.Program] = true
		k := entryKey{chain, r.Program, r.Entry}
		if front {
			rs.eptIndex[k] = append([]*Rule{r}, rs.eptIndex[k]...)
		} else {
			// Fresh slice: the previous one may be shared with published
			// snapshots, and append could write into shared backing.
			old := rs.eptIndex[k]
			rules := make([]*Rule, 0, len(old)+1)
			rules = append(rules, old...)
			rs.eptIndex[k] = append(rules, r)
		}
	} else {
		// Gap-allocate the order key from the traversal list's extremes so
		// the dispatch patch can splice without disturbing neighbors.
		list := c.traversalRules(tx.e.cfg.EptChains)
		switch {
		case len(list) == 0:
			r.ord = ordGap
		case front:
			r.ord = list[0].ord - ordGap
		default:
			r.ord = list[len(list)-1].ord + ordGap
		}
		if front {
			c.generic = append([]*Rule{r}, c.generic...)
		} else {
			c.generic = append(c.generic, r)
		}
		tx.recordDelta(chain, true, r)
	}
	if front {
		c.Rules = append([]*Rule{r}, c.Rules...)
	} else {
		c.Rules = append(c.Rules, r)
	}
	return nil
}

// Remove deletes the first rule in chain for which match returns true.
func (tx *Tx) Remove(chain string, match func(*Rule) bool) error {
	n, err := tx.removeMatching(chain, match, 1)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("pf: no matching rule in %q", chain)
	}
	return nil
}

// RemoveAll deletes every rule in chain for which match returns true and
// returns how many were removed (zero is not an error).
func (tx *Tx) RemoveAll(chain string, match func(*Rule) bool) (int, error) {
	return tx.removeMatching(chain, match, 0)
}

func (tx *Tx) removeMatching(chain string, match func(*Rule) bool, limit int) (int, error) {
	c := tx.ownChain(chain)
	if c == nil {
		return 0, fmt.Errorf("pf: no such chain %q", chain)
	}
	removed := 0
	for i := 0; i < len(c.Rules); {
		r := c.Rules[i]
		if !match(r) {
			i++
			continue
		}
		c.Rules = append(c.Rules[:i], c.Rules[i+1:]...) // owned chain: in-place is safe
		tx.unlink(chain, c, r)
		removed++
		if limit > 0 && removed >= limit {
			break
		}
	}
	if removed > 0 {
		tx.rs.totalRules -= removed
		tx.derived = true
	}
	return removed, nil
}

// unlink removes r from the chain's generic list or the entrypoint index
// (whichever lane install routed it to) and records the index delta.
func (tx *Tx) unlink(chain string, c *Chain, r *Rule) {
	if tx.eptIndexed(chain, r) {
		k := entryKey{chain, r.Program, r.Entry}
		for j, x := range tx.rs.eptIndex[k] {
			if x != r {
				continue
			}
			tx.ownEpt()
			rules := tx.rs.eptIndex[k]
			// Fresh slice: the shared one must stay intact for readers of
			// previous snapshots.
			out := make([]*Rule, 0, len(rules)-1)
			out = append(out, rules[:j]...)
			tx.rs.eptIndex[k] = append(out, rules[j+1:]...)
			break
		}
		return
	}
	for j, g := range c.generic {
		if g == r {
			c.generic = append(c.generic[:j], c.generic[j+1:]...) // owned chain
			break
		}
	}
	tx.recordDelta(chain, false, r)
}

// ReplaceAt swaps the rule at position idx (0-based, over the chain's full
// rule list) for r, preserving evaluation order: r slots exactly where the
// old rule was. This is the pftables -R primitive — at 10k rules it patches
// a handful of dispatch buckets instead of recompiling the index.
func (tx *Tx) ReplaceAt(chain string, idx int, r *Rule) error {
	if r.Target == nil {
		return fmt.Errorf("pf: rule without target")
	}
	if r.EntrySet && r.Program == "" {
		return fmt.Errorf("pf: entrypoint match requires a program (-p with -i)")
	}
	c := tx.ownChain(chain)
	if c == nil {
		return fmt.Errorf("pf: no such chain %q", chain)
	}
	if idx < 0 || idx >= len(c.Rules) {
		return fmt.Errorf("pf: %s: no rule at position %d", chain, idx+1)
	}
	old := c.Rules[idx]
	c.Rules[idx] = r
	tx.unlink(chain, c, old)

	rs := tx.rs
	rs.allNeeds |= r.needs()
	rs.opsPresent |= opsMaskOf(r)
	if r.EntrySet {
		rs.hasEptRules = true
	}
	tx.derived = true // the removal may have narrowed the summaries

	if tx.eptIndexed(chain, r) {
		tx.ownEpt()
		rs.eptPrograms[r.Program] = true
		k := entryKey{chain, r.Program, r.Entry}
		oldList := rs.eptIndex[k]
		rules := make([]*Rule, 0, len(oldList)+1)
		rules = append(rules, oldList...)
		rs.eptIndex[k] = append(rules, r)
		return nil
	}

	// Splice r into the generic lane at the position matching idx. The
	// generic list preserves the relative order of Rules, so the insertion
	// point is the count of generic-lane rules before idx.
	pos := 0
	for _, rr := range c.Rules[:idx] {
		if !tx.eptIndexed(chain, rr) {
			pos++
		}
	}
	ord, ok := tx.ordBetween(c, pos)
	if !ok {
		tx.full = true // gap exhausted: renumber via full recompile
	}
	r.ord = ord
	c.generic = append(c.generic, nil)
	copy(c.generic[pos+1:], c.generic[pos:])
	c.generic[pos] = r
	tx.recordDelta(chain, true, r)
	return nil
}

// ordBetween picks an order key for a rule entering c.generic at pos.
// ok=false means the midpoint gap is exhausted and the caller must force a
// full recompile (which renumbers with fresh gaps).
func (tx *Tx) ordBetween(c *Chain, pos int) (int64, bool) {
	g := c.generic
	switch {
	case len(g) == 0:
		return ordGap, true
	case pos == 0:
		return g[0].ord - ordGap, true
	case pos >= len(g):
		return g[len(g)-1].ord + ordGap, true
	default:
		lo, hi := g[pos-1].ord, g[pos].ord
		mid := lo + (hi-lo)/2
		return mid, mid != lo
	}
}

// Flush removes every rule from every chain (the chains themselves stay).
func (tx *Tx) Flush() {
	rs := tx.rs
	for name := range rs.chains {
		c := tx.ownChain(name)
		c.Rules, c.generic = nil, nil
	}
	rs.eptIndex = make(map[entryKey][]*Rule)
	rs.eptPrograms = make(map[string]bool)
	tx.eptOwned = true
	rs.hasEptRules = false
	rs.allNeeds = 0
	rs.totalRules = 0
	rs.opsPresent = 0
	// Summaries are exact again (subsequent installs re-widen them), and
	// any earlier deltas are moot: this is a bulk rebuild.
	tx.full = true
	tx.delta = nil
	tx.derived = false
}

// FlushChain removes every rule from one chain.
func (tx *Tx) FlushChain(chain string) error {
	c := tx.ownChain(chain)
	if c == nil {
		return fmt.Errorf("pf: no such chain %q", chain)
	}
	if _, err := tx.removeMatching(chain, func(*Rule) bool { return true }, 0); err != nil {
		return err
	}
	return nil
}

// NewChain creates a user-defined chain.
func (tx *Tx) NewChain(name string) error {
	if _, ok := tx.rs.chains[name]; ok {
		return fmt.Errorf("pf: chain %q exists", name)
	}
	tx.rs.chains[name] = newChain(name)
	tx.owned[name] = true
	tx.newChains = append(tx.newChains, name)
	return nil
}

// Chain exposes the transaction's working view of a chain (nil when
// unknown). Callers must treat it as read-only.
func (tx *Tx) Chain(name string) (*Chain, bool) {
	c, ok := tx.rs.chains[name]
	return c, ok
}

// Chains returns the transaction's chain names in sorted order.
func (tx *Tx) Chains() []string {
	out := make([]string, 0, len(tx.rs.chains))
	for n := range tx.rs.chains {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// recomputeDerived rebuilds the summaries install() maintains incrementally
// (allNeeds, hasEptRules, opsPresent, eptPrograms). Installation only ever
// widens them; removal must recompute from scratch or deleting the last
// entrypoint rule would leave mayMatchEpt unwinding stacks — and non-lazy
// mode over-collecting context — forever. Runs once per transaction, at
// commit, however many rules the batch removed.
func (tx *Tx) recomputeDerived() {
	rs := tx.rs
	rs.allNeeds = 0
	rs.hasEptRules = false
	rs.opsPresent = 0
	for _, c := range rs.chains {
		for _, r := range c.Rules {
			rs.allNeeds |= r.needs()
			rs.opsPresent |= opsMaskOf(r)
			if r.EntrySet {
				rs.hasEptRules = true
			}
		}
	}
	progs := make(map[string]bool, len(rs.eptPrograms))
	for k, rules := range rs.eptIndex {
		if len(rules) == 0 {
			// Dropping the emptied key is cosmetic; only safe when the map
			// is transaction-owned (it may be shared with published
			// snapshots otherwise).
			if tx.eptOwned {
				delete(rs.eptIndex, k)
			}
			continue
		}
		progs[k.program] = true
	}
	rs.eptPrograms = progs
}
