package pf

import (
	"sort"
	"sync"
	"sync/atomic"

	"pfirewall/internal/mac"
	"pfirewall/internal/obs"
	"pfirewall/internal/ustack"
)

// Config selects the engine optimizations, matching the columns of the
// paper's Table 6 microbenchmarks:
//
//	FULL     — Config{} (no optimizations)
//	CONCACHE — Config{CtxCache: true}
//	LAZYCON  — Config{CtxCache: true, LazyCtx: true}
//	EPTSPC   — Config{CtxCache: true, LazyCtx: true, EptChains: true}
type Config struct {
	// CtxCache caches collected context (entrypoints) across the multiple
	// resource requests of one system call (paper Section 4.2).
	CtxCache bool
	// LazyCtx collects a context field only when a rule under evaluation
	// needs it, instead of collecting everything at hook entry.
	LazyCtx bool
	// EptChains indexes entrypoint-bearing rules into per-entrypoint
	// chains so only applicable rules are traversed (paper Section 4.3).
	EptChains bool
	// RuleIndex compiles each built-in chain's generic rules into an
	// (op, subject-SID) dispatch index at publish time, so per-request cost
	// scales with the number of possibly-matching rules rather than the
	// total rule count. Goes beyond the paper's EPTSPC: entrypoint rules
	// were already indexed; this indexes everything else.
	RuleIndex bool
	// FullRecompile forces every publish to rebuild the dispatch index from
	// scratch instead of patching the previous snapshot's. Incremental
	// publish is always verdict-identical (the differential tests prove it);
	// this exists as the benchmark baseline and a diagnostic escape hatch.
	FullRecompile bool
}

// Optimized returns the fully optimized configuration (the deployment mode).
func Optimized() Config {
	return Config{CtxCache: true, LazyCtx: true, EptChains: true, RuleIndex: true}
}

// Stats counts engine activity; read by benchmarks and tests. Counters are
// batched per request and sharded by pid, so concurrent processes can be
// filtered in parallel without cache-line contention.
type Stats struct {
	Requests       Counter
	Accepts        Counter
	Drops          Counter
	RulesEvaluated Counter
	CtxCollections Counter
	CtxCacheHits   Counter
}

// Chain is an ordered rule list. Built-in chains are "input" (resource
// accesses and signal delivery) and "syscallbegin" (evaluated at syscall
// entry, used by rule R12); others are user-defined jump targets.
type Chain struct {
	Name  string
	Rules []*Rule
	// Traversals counts entries into this chain (initial dispatch and
	// jumps). Like Rule.Hits it is shared across copy-on-write ruleset
	// snapshots, so counts survive rule updates.
	Traversals *Counter
	// generic holds the traversal list when entrypoint rules are indexed
	// out of the chain: only rules without an entrypoint remain, so the
	// per-request scan never touches inapplicable entrypoint rules.
	generic []*Rule
}

// newChain builds a chain with its traversal counter armed.
func newChain(name string) *Chain {
	return &Chain{Name: name, Traversals: &Counter{}}
}

// traversalRules returns the list Filter walks for this chain.
func (c *Chain) traversalRules(indexed bool) []*Rule {
	if indexed && (c.Name == "input" || c.Name == "syscallbegin") {
		return c.generic
	}
	return c.Rules
}

// clone returns a shallow-rule deep-slice copy for copy-on-write updates.
func (c *Chain) clone() *Chain {
	n := &Chain{Name: c.Name, Traversals: c.Traversals}
	n.Rules = append([]*Rule(nil), c.Rules...)
	n.generic = append([]*Rule(nil), c.generic...)
	return n
}

// entryKey indexes entrypoint-specific chains. The chain is part of the
// key so input-chain rules never run from the syscallbegin hook.
type entryKey struct {
	chain   string
	program string
	off     uint64
}

// ruleset is an immutable snapshot of the installed rules. The filter path
// reads it through an atomic pointer with no locking — the same
// read-copy-update discipline in-kernel packet filters use so rule updates
// never stall the hot path (and so the engine stays re-entrant and
// preemptible, paper Section 5.1).
type ruleset struct {
	chains      map[string]*Chain
	eptIndex    map[entryKey][]*Rule
	eptPrograms map[string]bool
	hasEptRules bool
	allNeeds    CtxKind
	totalRules  int
	// opsPresent has bit op set when some installed rule could apply to
	// op (a rule with an empty op set applies to every op). The kernel
	// consults it through MayFilter to skip request construction entirely
	// for operations no rule mediates.
	opsPresent uint32
	// compiled holds the per-chain dispatch indexes when Config.RuleIndex
	// is set; nil otherwise. Derived incrementally from the previous
	// snapshot's on publish (or rebuilt from scratch, see compile.go) and
	// then as immutable as the rest of the snapshot.
	compiled map[string]*chainIndex
	// gen identifies this snapshot. Generations are globally unique (drawn
	// from rulesetGen), so per-process caches keyed on gen can never alias
	// a snapshot of a different engine.
	gen uint64
	// version is this snapshot's position in the engine's publish sequence,
	// monotonic per engine. Unlike gen it is stable across rollback: rolling
	// back re-exposes the old snapshot with its old version, so control-plane
	// clients can tell exactly which ruleset is enforcing.
	version uint64
}

// rulesetGen issues snapshot generations; see ruleset.gen.
var rulesetGen atomic.Uint64

// clone returns a shallow copy for transactional copy-on-write updates:
// the chains map is copied but the *Chain values, entrypoint-index slices,
// and compiled buckets stay shared with rs until a Tx mutation owns them
// (DESIGN.md §12). Cloning is therefore O(chains), not O(rules) — what keeps
// a one-rule publish cheap at 10k rules.
func (rs *ruleset) clone() *ruleset {
	n := &ruleset{
		chains:      make(map[string]*Chain, len(rs.chains)),
		eptIndex:    rs.eptIndex,
		eptPrograms: rs.eptPrograms,
		hasEptRules: rs.hasEptRules,
		allNeeds:    rs.allNeeds,
		totalRules:  rs.totalRules,
		opsPresent:  rs.opsPresent,
	}
	for name, c := range rs.chains {
		n.chains[name] = c
	}
	// compiled is intentionally not copied: publish derives it after the
	// mutation, and gen/version are reissued at publish time.
	return n
}

// Engine is the Process Firewall proper: the rule base plus the context
// machinery. One engine serves the whole system, like the in-kernel
// firewall; per-process state lives in ProcState.
type Engine struct {
	policy *mac.Policy
	cfg    Config

	// writeMu serializes rule-base writers; readers go through rs.
	writeMu sync.Mutex
	rs      atomic.Pointer[ruleset]

	// Control-plane state, all under writeMu (see tx.go): versionCtr issues
	// snapshot versions; history is the rollback ring of previously
	// published snapshots; forceFull makes the next publish renumber order
	// keys from scratch (set by Rollback, whose restored snapshot may
	// predate a renumbering).
	versionCtr uint64
	history    []*ruleset
	forceFull  bool

	// Publish-path counters (PublishStats); written under writeMu, read
	// lock-free by benchmarks and the control plane.
	publishes     atomic.Uint64
	fullCompiles  atomic.Uint64
	deltaCompiles atomic.Uint64
	rollbacks     atomic.Uint64

	// Logger receives LOG-target records; nil discards them.
	Logger func(LogRecord)
	// LogDenials additionally emits a record for every DROP verdict, the
	// denial log the paper's operators review ("we noticed it later in our
	// denial logs", Section 6.1.2).
	LogDenials bool

	Stats Stats

	// obs is the attached observability instrumentation; nil (the default)
	// costs the hot path one predictable branch. See AttachObs.
	obs atomic.Pointer[engineObs]
}

// LogRecord is what the LOG target emits (paper Section 5.2: "logs a
// variety of information about the current resource access in JSON
// format"). The trace package serializes it.
type LogRecord struct {
	PID         int
	SubjectSID  mac.SID
	ObjectSID   mac.SID
	Op          Op
	ResourceID  uint64
	Path        string
	Entrypoints []Entrypoint
	AdvWrite    bool
	AdvRead     bool
	Verdict     Verdict
	Prefix      string
}

// New creates an engine over policy with the given optimization config.
func New(policy *mac.Policy, cfg Config) *Engine {
	e := &Engine{policy: policy, cfg: cfg}
	rs := &ruleset{
		chains: map[string]*Chain{
			"input":        newChain("input"),
			"syscallbegin": newChain("syscallbegin"),
			// The mangle table's built-in chain runs before filter/input,
			// mirroring iptables table precedence (paper Table 3 lists
			// tables [filter | mangle]). Mangle rules typically carry
			// side-effecting targets (STATE, LOG) rather than verdicts.
			"mangle/input": newChain("mangle/input"),
		},
		eptIndex:    make(map[entryKey][]*Rule),
		eptPrograms: make(map[string]bool),
		gen:         rulesetGen.Add(1),
		version:     1,
	}
	e.versionCtr = 1
	if cfg.RuleIndex {
		rs.compiled = compileRuleset(rs, cfg)
	}
	e.rs.Store(rs)
	return e
}

// Policy returns the MAC policy the engine consults for adversary context.
func (e *Engine) Policy() *mac.Policy { return e.policy }

// Config returns the engine's optimization configuration.
func (e *Engine) Config() Config { return e.cfg }

// NewChain creates a user-defined chain.
func (e *Engine) NewChain(name string) error {
	return e.Transaction(func(tx *Tx) error { return tx.NewChain(name) })
}

// Chain returns a chain snapshot by name. The returned chain is part of an
// immutable snapshot: inspect it, but install rules through the engine.
func (e *Engine) Chain(name string) (*Chain, bool) {
	c, ok := e.rs.Load().chains[name]
	return c, ok
}

// Chains returns the chain names in sorted order.
func (e *Engine) Chains() []string {
	rs := e.rs.Load()
	out := make([]string, 0, len(rs.chains))
	for n := range rs.chains {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Append adds a rule at the end of chain (pftables -A semantics; the
// paper's listings use -I, which prepends — see Insert).
func (e *Engine) Append(chain string, r *Rule) error {
	return e.Transaction(func(tx *Tx) error { return tx.Append(chain, r) })
}

// Insert adds a rule at the head of chain (pftables -I).
func (e *Engine) Insert(chain string, r *Rule) error {
	return e.Transaction(func(tx *Tx) error { return tx.Insert(chain, r) })
}

// Remove deletes the first rule in chain for which match returns true,
// repairing the generic list and the entrypoint index.
func (e *Engine) Remove(chain string, match func(*Rule) bool) error {
	return e.Transaction(func(tx *Tx) error { return tx.Remove(chain, match) })
}

// Flush removes all rules from every chain.
func (e *Engine) Flush() error {
	return e.Transaction(func(tx *Tx) error { tx.Flush(); return nil })
}

// opsMaskOf returns the opsPresent contribution of one rule: its explicit
// op set, or every operation when the rule omits -o. The union is taken
// over every chain (not just the one dispatched for an op) because jumps
// can route any built-in chain's traversal through user chains.
func opsMaskOf(r *Rule) uint32 {
	if r.Ops == 0 {
		return ^uint32(0)
	}
	return uint32(r.Ops)
}

// MayFilter reports whether any installed rule could apply to op. A false
// answer is a guarantee: Filter would return the default accept without
// consulting any context, so the caller may skip building the request
// entirely. The kernel uses this as its pre-mediation mask; rule updates
// publish a new snapshot and naturally refresh the answer.
func (e *Engine) MayFilter(op Op) bool {
	return e.rs.Load().opsPresent&(1<<op) != 0
}

// RuleCount returns the total number of installed rules.
func (e *Engine) RuleCount() int { return e.rs.Load().totalRules }

// Filter evaluates req against the rule base and returns the verdict.
// This is the PF hook body of paper Figure 3: find the next rule, match it
// against the packet, run its target, until a verdict or the default allow.
// The read path takes no locks: the rule base is an immutable snapshot.
// Filter is a one-request batch; multi-request gauntlets (pathname walks,
// send/recv bursts) use StartBatch directly to amortize setup. The Batch
// value stays on the caller's stack, so the whole steady-state path
// allocates nothing.
func (e *Engine) Filter(req *Request) Verdict {
	var b Batch
	e.StartBatch(&b, req.Proc)
	v := b.Filter(req)
	b.Finish()
	return v
}

// mayMatchEpt reports whether any of proc's executable mappings is named
// by an indexed entrypoint rule. Interpreter processes always may match,
// since script-frame entrypoints are not mappings. The answer is a pure
// function of (address space contents, installed rules), so it is memoized
// in the process's PFState keyed on the mapping generation and the ruleset
// generation — an mmap/execve or a rule update each bump their counter and
// naturally invalidate the memo.
func mayMatchEpt(rs *ruleset, p Process) bool {
	if lang, _ := p.Interp(); lang != 0 {
		return true
	}
	as := p.AddrSpace()
	ps := p.PFState()
	mapGen := as.Gen()
	if ps.eptMemoValid && ps.eptMemoMapGen == mapGen && ps.eptMemoRSGen == rs.gen {
		return ps.eptMemoMayMatch
	}
	found := false
	as.ForEach(func(m ustack.Mapping) bool {
		if rs.eptPrograms[m.Path] {
			found = true
			return false
		}
		return true
	})
	ps.eptMemoMayMatch = found
	ps.eptMemoMapGen = mapGen
	ps.eptMemoRSGen = rs.gen
	ps.eptMemoValid = true
	return found
}

// runChain evaluates one built-in chain for the request, through the
// compiled dispatch index when the snapshot carries one for this chain and
// linear traversal otherwise. Verdict, hit-counter, and LOG behavior are
// identical either way; only the number of rules inspected differs.
func (e *Engine) runChain(ctx *EvalCtx, rs *ruleset, c *Chain, skipEpt bool) Action {
	if c == nil {
		return Continue
	}
	if rs.compiled != nil {
		if ci := rs.compiled[c.Name]; ci != nil {
			return e.dispatch(ctx, rs, ci)
		}
	}
	return e.traverse(ctx, rs, c, skipEpt)
}

// traverse walks a chain (honoring jumps) using the per-process traversal
// stack. skipEpt omits entrypoint rules in built-in chains (they are
// handled by the entrypoint index).
func (e *Engine) traverse(ctx *EvalCtx, rs *ruleset, start *Chain, skipEpt bool) Action {
	return e.traverseFrom(ctx, rs, start, 0, skipEpt, true)
}

// traverseFrom is traverse starting at rule index from within start's
// traversal list. countEntry controls whether entering start increments its
// Traversals counter: the compiled dispatch path has already counted the
// chain entry when it falls back here, and must not count it twice.
func (e *Engine) traverseFrom(ctx *EvalCtx, rs *ruleset, start *Chain, from int, skipEpt bool, countEntry bool) Action {
	ps := ctx.Req.Proc.PFState()
	pid := ctx.Req.Proc.PID()
	// Per-process traversal state (paper Section 5.1): we reuse the
	// process's stack buffer; a re-entrant call simply appends deeper
	// frames and unwinds them before returning.
	base := len(ps.traversal)
	ps.traversal = append(ps.traversal, traversalFrame{chain: start, index: from})
	defer func() { ps.traversal = ps.traversal[:base] }()
	if countEntry && start.Traversals != nil {
		start.Traversals.Add(pid, 1)
	}

	for len(ps.traversal) > base {
		top := &ps.traversal[len(ps.traversal)-1]
		rules := top.chain.traversalRules(skipEpt)
		if top.index >= len(rules) {
			ps.traversal = ps.traversal[:len(ps.traversal)-1]
			continue
		}
		r := rules[top.index]
		top.index++
		act := e.evalRule(ctx, r)
		if act.Final {
			return act
		}
		if act.Return {
			// Pop back to the calling chain (no-op at the base chain).
			ps.traversal = ps.traversal[:len(ps.traversal)-1]
			continue
		}
		if act.Jump != "" {
			if c, exists := rs.chains[act.Jump]; exists {
				ps.traversal = append(ps.traversal, traversalFrame{chain: c, index: 0})
				if c.Traversals != nil {
					c.Traversals.Add(pid, 1)
				}
				if sp := ctx.Req.Span; sp != nil {
					sp.PushChain(c.Name)
				}
			}
		}
	}
	return Continue
}

// evalRule matches one rule and fires its target on success.
func (e *Engine) evalRule(ctx *EvalCtx, r *Rule) Action {
	ctx.rulesEvaluated++
	if !r.matchesDefaults(ctx) {
		return Continue
	}
	for _, m := range r.Matches {
		ctx.Require(m.Needs())
		if !m.Match(ctx) {
			return Continue
		}
	}
	r.Hits.Add(1)
	ctx.Require(r.Target.Needs())
	act := r.Target.Fire(ctx)
	if act.Final {
		if sp := ctx.Req.Span; sp != nil {
			sp.Flags |= obs.SpanRuleDecided
			sp.RuleFile = r.Src.File
			sp.RuleLine = r.Src.Line
			sp.RuleCol = r.Src.Col
			sp.RuleTarget = r.Target.TargetName()
		}
	}
	return act
}

// emitLog sends a record to the engine's logger.
func (e *Engine) emitLog(ctx *EvalCtx, prefix string, v Verdict) {
	if e.Logger == nil {
		return
	}
	if ob := e.obs.Load(); ob != nil {
		ob.logEmissions.Add(ctx.Req.Proc.PID(), 1)
	}
	rec := LogRecord{
		PID:        ctx.Req.Proc.PID(),
		SubjectSID: ctx.Req.Proc.SubjectSID(),
		Op:         ctx.Req.Op,
		Verdict:    v,
		Prefix:     prefix,
	}
	if ctx.Req.Obj != nil {
		rec.ObjectSID = ctx.Req.Obj.SID()
		rec.ResourceID = ctx.Req.Obj.ID()
		rec.Path = ctx.Req.Obj.Path()
	}
	entries, _ := ctx.Entrypoints()
	rec.Entrypoints = entries
	rec.AdvWrite = ctx.AdversaryWritable()
	rec.AdvRead = ctx.AdversaryReadable()
	e.Logger(rec)
}
