package attacks

import (
	"fmt"
	"strings"

	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
)

// Outcome records one exploit run under one configuration.
type Outcome struct {
	Exploit   Exploit
	PFEnabled bool
	Succeeded bool
	Err       error
}

// Blocked reports whether the configuration defeated the attack.
func (o Outcome) Blocked() bool { return !o.Succeeded }

// RunAll executes every exploit against a fresh world. With pfEnabled, the
// Table 5 rule set is installed first; the paper's claim is that every
// exploit succeeds without the firewall and none succeeds with it.
func RunAll(pfEnabled bool) ([]Outcome, error) {
	var outcomes []Outcome
	for _, e := range Exploits() {
		o, err := RunOne(e, pfEnabled)
		if err != nil {
			return outcomes, fmt.Errorf("%s (%s): %w", e.ID, e.Program, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// RunOne executes a single exploit in a fresh world. Extra exploits
// (X1–X3) get the extra rule set on top of Table 5's.
func RunOne(e Exploit, pfEnabled bool) (Outcome, error) {
	var w *programs.World
	if pfEnabled {
		cfg := pf.Optimized()
		w = programs.NewWorld(programs.WorldOpts{PF: &cfg})
		rules := programs.StandardRules()
		if strings.HasPrefix(e.ID, "X") {
			rules = append(rules, ExtraRules()...)
		}
		switch e.ID {
		case "E10", "E11", "E12":
			rules = append(rules, IPCRules()...)
		}
		if _, err := w.InstallRules(rules); err != nil {
			return Outcome{}, fmt.Errorf("install rules: %w", err)
		}
	} else {
		w = programs.NewWorld(programs.WorldOpts{})
	}
	ok, err := e.Run(w)
	if err != nil {
		return Outcome{Exploit: e, PFEnabled: pfEnabled}, err
	}
	return Outcome{Exploit: e, PFEnabled: pfEnabled, Succeeded: ok}, nil
}

// RunExtra executes the extra exploits (X1–X3) under one configuration.
func RunExtra(pfEnabled bool) ([]Outcome, error) {
	var outcomes []Outcome
	for _, e := range ExtraExploits() {
		o, err := RunOne(e, pfEnabled)
		if err != nil {
			return outcomes, fmt.Errorf("%s (%s): %w", e.ID, e.Program, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// RunIPC executes the IPC rendezvous exploits (E10–E12) under one
// configuration.
func RunIPC(pfEnabled bool) ([]Outcome, error) {
	var outcomes []Outcome
	for _, e := range IPCExploits() {
		o, err := RunOne(e, pfEnabled)
		if err != nil {
			return outcomes, fmt.Errorf("%s (%s): %w", e.ID, e.Program, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// Table4 renders the paper's Table 4 with measured outcomes appended:
// whether each exploit succeeded with the firewall off and on.
func Table4() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-18s %-15s %-22s %-10s %-10s\n",
		"#", "Program", "Reference", "Class", "PF off", "PF on")
	for _, e := range Exploits() {
		off, err := RunOne(e, false)
		if err != nil {
			return "", fmt.Errorf("%s without PF: %w", e.ID, err)
		}
		on, err := RunOne(e, true)
		if err != nil {
			return "", fmt.Errorf("%s with PF: %w", e.ID, err)
		}
		verdict := func(o Outcome) string {
			if o.Succeeded {
				return "EXPLOITED"
			}
			return "blocked"
		}
		fmt.Fprintf(&b, "%-3s %-18s %-15s %-22s %-10s %-10s\n",
			e.ID, e.Program, e.Reference, e.Class, verdict(off), verdict(on))
	}
	return b.String(), nil
}
