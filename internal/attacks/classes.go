package attacks

// This file embeds the paper's survey data: Table 1 (CVE counts per
// resource access attack class — external statistics, reproduced as
// reference constants) and Table 2 (the attack-class taxonomy that drives
// invariant design).

// ClassStat is one row of Table 1.
type ClassStat struct {
	Class       string
	CWE         string
	CVEPre2007  int
	CVE2007to12 int
}

// Table1 returns the paper's Table 1 rows. The totals correspond to 12.40%
// (pre-2007) and 9.41% (2007–2012) of all CVE entries.
func Table1() []ClassStat {
	return []ClassStat{
		{"Untrusted Search Path", "CWE-426", 109, 329},
		{"Untrusted Library Load", "CWE-426", 97, 91},
		{"File/IPC squat", "CWE-283", 13, 9},
		{"Directory Traversal", "CWE-22", 1057, 1514},
		{"PHP File Inclusion", "CWE-98", 1112, 1020},
		{"Link Following", "CWE-59", 480, 357},
		{"TOCTTOU Races", "CWE-362", 17, 14},
		{"Signal Races", "CWE-479", 9, 1},
	}
}

// Taxonomy is one row of Table 2: what distinguishes safe from unsafe
// resources for an attack class, and the process context needed to decide.
type Taxonomy struct {
	SafeResource   string
	UnsafeResource string
	Classes        []string
	ProcessContext string
}

// Table2 returns the paper's Table 2 taxonomy.
func Table2() []Taxonomy {
	return []Taxonomy{
		{
			SafeResource:   "Adversary inaccessible (high integrity, high secrecy)",
			UnsafeResource: "Adversary accessible (low integrity, low secrecy)",
			Classes:        []string{"Untrusted Search Path", "File/IPC Squat", "Untrusted Library", "PHP File Inclusion"},
			ProcessContext: "Entrypoint",
		},
		{
			SafeResource:   "Adversary accessible (low integrity, low secrecy)",
			UnsafeResource: "Adversary inaccessible (high integrity, high secrecy)",
			Classes:        []string{"Link Following", "Directory Traversal"},
			ProcessContext: "Entrypoint",
		},
		{
			SafeResource:   "Same as previous check/use",
			UnsafeResource: "Different from previous check/use",
			Classes:        []string{"TOCTTOU Races"},
			ProcessContext: "Entrypoint + System-Call Trace",
		},
		{
			SafeResource:   "No signal (blocked)",
			UnsafeResource: "Adversary delivers signal",
			Classes:        []string{"Non-reentrant Signal Handlers"},
			ProcessContext: "System-Call Trace + In Signal Handler",
		},
	}
}
