package attacks

import (
	"testing"
)

// TestTable4 is the paper's security evaluation: every exploit must
// succeed with the Process Firewall disabled and be blocked with the
// Table 5 rule set enabled.
func TestTable4AllExploitsSucceedWithoutPF(t *testing.T) {
	outcomes, err := RunAll(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 9 {
		t.Fatalf("got %d exploits, want 9", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Succeeded {
			t.Errorf("%s (%s) should succeed without the firewall", o.Exploit.ID, o.Exploit.Program)
		}
	}
}

func TestTable4AllExploitsBlockedWithPF(t *testing.T) {
	outcomes, err := RunAll(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Succeeded {
			t.Errorf("%s (%s) should be blocked by the firewall", o.Exploit.ID, o.Exploit.Program)
		}
	}
}

// Individual exploit subtests give precise failure locations.
func TestExploitsIndividually(t *testing.T) {
	for _, e := range Exploits() {
		e := e
		t.Run(e.ID+"_noPF", func(t *testing.T) {
			o, err := RunOne(e, false)
			if err != nil {
				t.Fatal(err)
			}
			if !o.Succeeded {
				t.Errorf("%s must succeed without PF", e.ID)
			}
		})
		t.Run(e.ID+"_PF", func(t *testing.T) {
			o, err := RunOne(e, true)
			if err != nil {
				t.Fatal(err)
			}
			if o.Succeeded {
				t.Errorf("%s must be blocked with PF", e.ID)
			}
		})
	}
}

func TestTable4Rendering(t *testing.T) {
	out, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E9", "Apache", "init script", "blocked", "EXPLOITED"} {
		if !containsStr(out, want) {
			t.Errorf("Table4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Data(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8", len(rows))
	}
	// Spot-check against the paper.
	if rows[3].Class != "Directory Traversal" || rows[3].CVE2007to12 != 1514 {
		t.Errorf("row 4 = %+v", rows[3])
	}
	total := 0
	for _, r := range rows {
		total += r.CVEPre2007 + r.CVE2007to12
	}
	if total != 6229 {
		t.Errorf("total CVEs = %d, want 6229", total)
	}
}

func TestTable2Taxonomy(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("Table 2 rows = %d, want 4", len(rows))
	}
	// Every exploit class in Table 4 must be covered by the taxonomy.
	covered := map[string]bool{}
	for _, r := range rows {
		for _, c := range r.Classes {
			covered[c] = true
		}
	}
	for _, e := range Exploits() {
		found := false
		for c := range covered {
			if containsStr(c, e.Class) || containsStr(e.Class, c) ||
				(e.Class == "Signal Handler Race" && c == "Non-reentrant Signal Handlers") ||
				(e.Class == "TOCTTOU" && c == "TOCTTOU Races") ||
				(e.Class == "Untrusted Library" && c == "Untrusted Library") {
				found = true
			}
		}
		if !found {
			t.Errorf("exploit class %q not in taxonomy", e.Class)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExtraExploits(t *testing.T) {
	for _, e := range ExtraExploits() {
		e := e
		t.Run(e.ID+"_noPF", func(t *testing.T) {
			o, err := RunOne(e, false)
			if err != nil {
				t.Fatal(err)
			}
			if !o.Succeeded {
				t.Errorf("%s must succeed without PF", e.ID)
			}
		})
		t.Run(e.ID+"_PF", func(t *testing.T) {
			o, err := RunOne(e, true)
			if err != nil {
				t.Fatal(err)
			}
			if o.Succeeded {
				t.Errorf("%s must be blocked with PF", e.ID)
			}
		})
	}
}

func TestExtraRulesParse(t *testing.T) {
	if len(ExtraRules()) != 3 {
		t.Fatalf("extra rules = %d, want 3", len(ExtraRules()))
	}
	// RunOne already installs them; an install error would surface there,
	// but verify directly for a clear failure mode.
	if _, err := RunExtra(true); err != nil {
		t.Fatal(err)
	}
}

func TestIPCExploits(t *testing.T) {
	for _, e := range IPCExploits() {
		e := e
		t.Run(e.ID+"_noPF", func(t *testing.T) {
			o, err := RunOne(e, false)
			if err != nil {
				t.Fatal(err)
			}
			if !o.Succeeded {
				t.Errorf("%s must succeed without PF", e.ID)
			}
		})
		t.Run(e.ID+"_PF", func(t *testing.T) {
			o, err := RunOne(e, true)
			if err != nil {
				t.Fatal(err)
			}
			if o.Succeeded {
				t.Errorf("%s must be blocked with PF", e.ID)
			}
		})
	}
}

func TestIPCRulesParse(t *testing.T) {
	if len(IPCRules()) != 3 {
		t.Fatalf("ipc rules = %d, want 3", len(IPCRules()))
	}
	if _, err := RunIPC(true); err != nil {
		t.Fatal(err)
	}
}
