package attacks

// This file extends the Table 4 suite with attack classes the paper's
// taxonomy (Table 2) covers but its exploit table does not exercise
// directly: the cryogenic-sleep TOCTTOU variant (Kirch [12], discussed in
// Section 2.1), directory traversal (CWE-22, the largest class in
// Table 1), and file squatting (CWE-283). Each comes with the pftables
// rules that block it, instantiated from the paper's templates.

import (
	"errors"
	"fmt"
	"strings"

	"pfirewall/internal/kernel"
	"pfirewall/internal/programs"
	"pfirewall/internal/vfs"
)

// Entrypoints of the synthetic victim daemons used by the extra exploits.
const (
	entryStatusCheck  uint64 = 0x8100 // lstat of the status file ("check")
	entryStatusUse    uint64 = 0x8140 // open of the status file ("use")
	entryStatusCreate uint64 = 0x8180 // creation of the report file
)

// ExtraExploits returns the additional scenarios; they run through the
// same harness as E1–E9 (RunOne handles rule installation).
func ExtraExploits() []Exploit {
	return []Exploit{
		{
			ID: "X1", Program: "tmp status daemon", Reference: "Kirch 2000", Class: "TOCTTOU (cryogenic sleep)",
			Run: runX1CryogenicSleep,
		},
		{
			ID: "X2", Program: "Apache", Reference: "CWE-22", Class: "Directory Traversal",
			Run: runX2DirectoryTraversal,
		},
		{
			ID: "X3", Program: "report daemon", Reference: "CWE-283", Class: "File Squat",
			Run: runX3FileSquat,
		},
	}
}

// ExtraRules returns the rules that defend the extra exploits, derived
// from template T1: each victim entrypoint is restricted to the resource
// kind it expects.
func ExtraRules() []string {
	return []string{
		// X1: the status daemon's use entrypoint expects a plain file it
		// checked moments ago; it must never traverse a symlink. This
		// covers both the classic flip and the cryogenic-sleep variant,
		// because the kernel sees the link during (atomic) resolution
		// regardless of inode-number games.
		fmt.Sprintf(`pftables -p %s -i 0x%x -o LNK_FILE_READ -j DROP`,
			programs.BinSshd, entryStatusUse),
		// X2: Apache's serve entrypoint reads web content only.
		fmt.Sprintf(`pftables -p %s -i 0x%x -s SYSHIGH -d ~{httpd_content_t} -o FILE_OPEN -j DROP`,
			programs.BinApache, programs.EntryApacheServe),
		// X3: the report daemon's create entrypoint must get a fresh file,
		// never an adversary-accessible existing one (FILE_CREATE of its
		// own file stays allowed; FILE_OPEN of a squatted one does not).
		fmt.Sprintf(`pftables -p %s -i 0x%x -d ~{SYSHIGH} -o FILE_OPEN -j DROP`,
			programs.BinSshd, entryStatusCreate),
	}
}

// runX1CryogenicSleep reproduces Olaf Kirch's attack against a daemon that
// performs the lstat/open/fstat discipline but omits the second lstat
// (Figure 1a lines 11–14): the adversary recycles the checked inode number
// so the fstat comparison passes even though the opened object was reached
// through a planted symlink.
func runX1CryogenicSleep(w *programs.World) (bool, error) {
	adv := w.NewUser()
	fd, err := adv.Open("/tmp/status", kernel.O_CREAT|kernel.O_RDWR, 0o666)
	if err != nil {
		return false, err
	}
	adv.Close(fd)

	victim := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})

	// The adversary acts while the victim "sleeps" between check and use:
	// free the checked inode, recycle it into a decoy holding the secret,
	// and point a symlink at the decoy.
	flipped := false
	hid := w.K.AddPreSyscallHook(func(p *kernel.Proc, nr kernel.Syscall) {
		if p == victim && nr == kernel.NrOpen && !flipped {
			flipped = true
			adv.Unlink("/tmp/status")
			dfd, _ := adv.Open("/tmp/decoy", kernel.O_CREAT|kernel.O_RDWR, 0o666)
			adv.Close(dfd)
			adv.Symlink("/tmp/decoy", "/tmp/status")
		}
	})
	defer w.K.RemoveHook(hid)

	// Victim: lstat (check) ... open (use) ... fstat (verify).
	victim.SyscallSite(programs.BinSshd, entryStatusCheck)
	lst, err := victim.Lstat("/tmp/status")
	if err != nil || lst.Type == vfs.TypeSymlink {
		return false, err
	}
	victim.SyscallSite(programs.BinSshd, entryStatusUse)
	fd, err = victim.Open("/tmp/status", kernel.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, kernel.ErrPFDenied) {
			return false, nil
		}
		return false, err
	}
	defer victim.Close(fd)
	fst, err := victim.Fstat(fd)
	if err != nil {
		return false, err
	}
	if fst.Ino != lst.Ino || fst.Dev != lst.Dev {
		return false, nil // the naive check caught it — no exploit
	}
	// The comparison passed; the attack succeeded if the victim is in fact
	// holding the adversary's decoy.
	res, err := w.K.FS.Resolve(nil, "/tmp/decoy", vfs.ResolveOpts{}, nil)
	if err != nil {
		return false, err
	}
	return fst.Ino == res.Node.Ino, nil
}

// runX2DirectoryTraversal requests ../../../etc/shadow from the web
// server; without per-entrypoint confinement the raw path concatenation
// serves the password database.
func runX2DirectoryTraversal(w *programs.World) (bool, error) {
	apache := programs.NewApache(w)
	p := apache.Spawn()
	body, err := apache.Serve(p, "/../../../etc/shadow")
	if err != nil {
		if errors.Is(err, kernel.ErrPFDenied) {
			return false, nil
		}
		// DAC may deny the worker; that is not the firewall's doing but
		// also not an exploit.
		if errors.Is(err, vfs.ErrPerm) {
			return false, nil
		}
		return false, err
	}
	return strings.Contains(string(body), "$6$"), nil
}

// runX3FileSquat: a root daemon writes a report to a fixed /tmp name with
// O_CREAT but not O_EXCL. The adversary squats the name beforehand with a
// mode that keeps the file readable, capturing whatever the daemon writes.
func runX3FileSquat(w *programs.World) (bool, error) {
	adv := w.NewUser()
	fd, err := adv.Open("/tmp/report", kernel.O_CREAT|kernel.O_EXCL|kernel.O_RDWR, 0o666)
	if err != nil {
		return false, err
	}
	adv.Close(fd)

	victim := w.NewProc(kernel.ProcSpec{UID: 0, GID: 0, Label: "sshd_t", Exec: programs.BinSshd})
	victim.SyscallSite(programs.BinSshd, entryStatusCreate)
	fd, err = victim.Open("/tmp/report", kernel.O_CREAT|kernel.O_WRONLY, 0o600)
	if err != nil {
		if errors.Is(err, kernel.ErrPFDenied) {
			return false, nil
		}
		return false, err
	}
	victim.Write(fd, []byte("SECRET-AUDIT-DATA"))
	victim.Close(fd)

	// The attack succeeded if the adversary can read the secret out of
	// the file they still own.
	rfd, err := adv.Open("/tmp/report", kernel.O_RDONLY, 0)
	if err != nil {
		return false, nil
	}
	data, _ := adv.ReadAll(rfd)
	adv.Close(rfd)
	return strings.Contains(string(data), "SECRET-AUDIT-DATA"), nil
}
