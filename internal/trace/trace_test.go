package trace

import (
	"bytes"
	"testing"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

func TestStoreRoundTripJSON(t *testing.T) {
	s := NewStore()
	s.Add(Record{PID: 1, SubjectLabel: "httpd_t", ObjectLabel: "tmp_t",
		Op: "FILE_OPEN", ResourceID: 42, Program: "/usr/bin/apache2",
		Entrypoint: 0x41a20, AdvWrite: true, Verdict: "ACCEPT"})
	s.Add(Record{PID: 2, SubjectLabel: "sshd_t", ObjectLabel: "etc_t",
		Op: "FILE_READ", ResourceID: 7, Program: "/usr/sbin/sshd",
		Entrypoint: 0x100, Verdict: "DROP"})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records", loaded.Len())
	}
	got := loaded.Records()
	want := s.Records()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestByEntrypointGroupsInOrder(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Add(Record{Program: "/a", Entrypoint: 1, ResourceID: uint64(i)})
		s.Add(Record{Program: "/b", Entrypoint: 2, ResourceID: uint64(100 + i)})
	}
	groups := s.ByEntrypoint()
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	a := groups[EpKey{"/a", 1}]
	for i, r := range a {
		if r.ResourceID != uint64(i) {
			t.Errorf("group order broken: %d -> %d", i, r.ResourceID)
		}
	}
}

func TestCollectorConvertsLogRecords(t *testing.T) {
	tbl := mac.NewSIDTable()
	httpd := tbl.SID("httpd_t")
	tmp := tbl.SID("tmp_t")
	s := NewStore()
	logger := s.Collector(tbl)
	logger(pf.LogRecord{
		PID: 9, SubjectSID: httpd, ObjectSID: tmp, Op: pf.OpFileOpen,
		ResourceID: 5, Path: "/tmp/x", AdvWrite: true,
		Entrypoints: []pf.Entrypoint{{Path: "/usr/bin/apache2", Off: 0x41a20}},
		Verdict:     pf.VerdictAccept, Prefix: "audit",
	})
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatal("no record collected")
	}
	r := recs[0]
	if r.SubjectLabel != "httpd_t" || r.ObjectLabel != "tmp_t" ||
		r.Program != "/usr/bin/apache2" || r.Entrypoint != 0x41a20 ||
		!r.AdvWrite || r.Op != "FILE_OPEN" || r.Prefix != "audit" {
		t.Errorf("record = %+v", r)
	}
	if !r.LowIntegrity() {
		t.Error("adv-writable record must be low integrity")
	}
}

func TestEpKey(t *testing.T) {
	r := Record{Program: "/x", Entrypoint: 7}
	if r.Ep() != (EpKey{"/x", 7}) {
		t.Error("Ep mismatch")
	}
}

func TestStoreRingEviction(t *testing.T) {
	s := NewStoreCapacity(3)
	for i := 1; i <= 5; i++ {
		s.Add(Record{PID: i})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", s.Evicted())
	}
	recs := s.Records()
	for i, r := range recs {
		if r.PID != i+3 {
			t.Fatalf("Records() = %v, want pids 3,4,5", recs)
		}
	}
	// Under capacity: order preserved, nothing evicted.
	s2 := NewStoreCapacity(10)
	s2.Add(Record{PID: 1})
	s2.Add(Record{PID: 2})
	if got := s2.Records(); len(got) != 2 || got[0].PID != 1 || got[1].PID != 2 {
		t.Fatalf("under-capacity Records() = %v", got)
	}
	if s2.Evicted() != 0 {
		t.Fatal("nothing should be evicted under capacity")
	}
	// The zero value and NewStore use the documented default.
	var zero Store
	zero.Add(Record{PID: 1})
	if zero.Len() != 1 {
		t.Fatal("zero-value store must accept records")
	}
}
