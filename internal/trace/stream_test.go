package trace

import (
	"errors"
	"testing"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/pftables"
	"pfirewall/internal/programs"
)

func tracedWorld(t *testing.T, traceEvery int) *programs.World {
	t.Helper()
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{
		PF: &cfg, Obs: obs.New(), ObsEvery: 1, TraceEvery: traceEvery,
	})
	// Spans are only generated for ops the firewall actually filters
	// (MayFilter short-circuits the rest), so give the world a rule.
	if _, err := pftables.Install(w.Env, w.Engine,
		`pftables -o FILE_OPEN -d shadow_t -s user_t -j DROP`); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSpanStreamDelivers is the end-to-end dogfooding check: spans sampled
// from one process's syscalls travel over the simulated kernel's own
// sockets to an in-world subscriber.
func TestSpanStreamDelivers(t *testing.T) {
	w := tracedWorld(t, 1)
	srv, err := ServeSpans(w.K, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialSpans(w.K, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Let the server's accept loop admit the client before traffic flows —
	// spans published before the fd is admitted are not relayed to it.
	deadline := time.Now().Add(time.Second)
	for w.K.Tracer().Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * serverPoll)

	p := w.K.NewProc(kernel.ProcSpec{UID: 0, Label: "httpd_t", Exec: "/usr/bin/apache2"})
	var opened bool
	var got obs.Span
	for time.Now().Before(deadline) {
		fd, err := p.Open("/etc/passwd", kernel.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		_ = p.Close(fd)
		opened = true
		sp, err := cl.Next(100 * time.Millisecond)
		if err == nil && sp.PID == p.PID() {
			got = sp
			break
		}
		if err != nil && !errors.Is(err, ErrStreamTimeout) {
			t.Fatal(err)
		}
	}
	if !opened || got.PID != p.PID() {
		t.Fatalf("no span from pid %d arrived over the stream", p.PID())
	}
	if got.Op == "" || got.Verdict == "" {
		t.Errorf("streamed span missing op/verdict: %+v", got)
	}
	if got.Subject != "httpd_t" {
		t.Errorf("streamed span subject = %q, want httpd_t", got.Subject)
	}

	// The transport muted itself: no span describes the stream's own pids.
	for _, sp := range w.K.Tracer().Snapshot() {
		if sp.PID == srv.proc.PID() || sp.PID == cl.proc.PID() {
			t.Fatalf("transport traced itself: %+v", sp)
		}
	}
}

func TestServeSpansRequiresTracer(t *testing.T) {
	cfg := pf.Optimized()
	w := programs.NewWorld(programs.WorldOpts{PF: &cfg, Obs: obs.New(), ObsEvery: 1})
	if _, err := ServeSpans(w.K, ""); !errors.Is(err, ErrNoTracer) {
		t.Fatalf("ServeSpans without tracer: %v, want ErrNoTracer", err)
	}
}

// TestSpanJSONGolden pins the span wire schema (the streaming protocol and
// pfctl -trace output) and checks a marshal → unmarshal → marshal round
// trip is byte-stable, derived fields included.
func TestSpanJSONGolden(t *testing.T) {
	sp := obs.Span{
		Seq: 3, TimeUnixNano: 1700000000000000000, PID: 42, SyscallSeq: 9,
		BatchIndex: 2,
		Flags: obs.SpanBatch | obs.SpanDcacheHit | obs.SpanAdvCacheMiss |
			obs.SpanRuleDecided,
		Syscall: "open", Op: "FILE_OPEN", Verdict: "DROP",
		Subject: "user_t", Path: "/tmp/trap",
		RuleFile: "trap.pft", RuleLine: 7, RuleCol: 1, RuleTarget: "DROP",
		RulesEvaluated: 4,
		KernelNs:       120, CheckNs: 350, GauntletNs: 900, TotalNs: 1250,
	}
	sp.PushChain("input")
	sp.PushChain("user-jail")

	const golden = `{"seq":3,"time_unix_nano":1700000000000000000,"pid":42,` +
		`"syscall_seq":9,"batch_index":2,"flags":201,` +
		`"flag_names":["batch","dcache_hit","adv_cache_miss","rule_decided"],` +
		`"syscall":"open","op":"FILE_OPEN","verdict":"DROP","subject":"user_t",` +
		`"path":"/tmp/trap","chains":["input","user-jail"],` +
		`"rule_src":"trap.pft:7:1","rule_file":"trap.pft","rule_line":7,` +
		`"rule_col":1,"rule_target":"DROP","rules_evaluated":4,` +
		`"kernel_ns":120,"check_ns":350,"gauntlet_ns":900,"total_ns":1250}`

	first, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != golden {
		t.Errorf("span wire schema drifted:\n got %s\nwant %s", first, golden)
	}

	var back obs.Span
	if err := back.UnmarshalJSON(first); err != nil {
		t.Fatal(err)
	}
	second, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != string(first) {
		t.Errorf("round trip not byte-stable:\n 1st %s\n 2nd %s", first, second)
	}
	if back != sp {
		t.Errorf("round trip changed the span:\n got %+v\nwant %+v", back, sp)
	}
}
