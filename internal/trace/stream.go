package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"time"

	"pfirewall/internal/kernel"
	"pfirewall/internal/obs"
)

// Span streaming over the simulated kernel's own socket subsystem: the
// server process binds an abstract-namespace socket inside the world and
// relays sampled provenance spans as JSON lines to every connected client.
// Dogfooding internal/ipc as the transport means the stream itself runs
// the full mediation gauntlet — so both endpoint processes are muted on
// the tracer, otherwise the transport's Send/Recv syscalls would generate
// spans describing their own delivery and feed back forever at low
// sampling periods.
//
// Concurrency: each endpoint owns exactly one simulated process and issues
// all of that process's syscalls from one goroutine (the server's event
// loop; the client caller's), preserving the kernel's single-flow
// invariant. Server and client never share a process.

// DefaultStreamName is the abstract-namespace rendezvous both pfctl -trace
// and ServeSpans default to.
const DefaultStreamName = "pftrace"

// streamLabel is the subject label of the stream's endpoint processes.
// It appears in no shipped ruleset, so persona-targeted rules can never
// match the transport.
const streamLabel = "pftrace_t"

// serverPoll bounds how long an idle server loop sleeps between accept
// polls; span delivery itself is channel-driven and does not wait on it.
const serverPoll = 2 * time.Millisecond

// serverSubBuf is the relay's subscription depth. Publishes are
// synchronous with the traced workload while the relay runs on its own
// goroutine, so a burst can outrun the relay before it is even scheduled;
// a deep buffer absorbs whole bursts (a span is ~300 bytes) and the
// tracer's drop counters record anything deeper.
const serverSubBuf = 8192

// serverDrainMax bounds how many buffered spans the relay forwards before
// polling for new connections again, so a saturating publisher cannot
// starve accepts.
const serverDrainMax = 512

// ErrNoTracer is returned by ServeSpans on a kernel without an attached
// tracer (observability missing or ObsConfig.TraceEvery zero).
var ErrNoTracer = errors.New("trace: kernel has no tracer attached (set ObsConfig.TraceEvery)")

// ErrStreamTimeout is returned by SpanClient.Next when no span arrived
// within the deadline.
var ErrStreamTimeout = errors.New("trace: span stream read timed out")

// SpanServer relays tracer spans to in-simulation subscribers.
type SpanServer struct {
	k    *kernel.Kernel
	t    *obs.Tracer
	proc *kernel.Proc
	lfd  int

	stop chan struct{}
	done chan struct{}
}

// ServeSpans binds an abstract socket named name (DefaultStreamName when
// empty) inside k's world and starts the relay loop. The server process is
// muted on the tracer before it issues its first syscall.
func ServeSpans(k *kernel.Kernel, name string) (*SpanServer, error) {
	t := k.Tracer()
	if t == nil {
		return nil, ErrNoTracer
	}
	if name == "" {
		name = DefaultStreamName
	}
	proc := k.NewProc(kernel.ProcSpec{UID: 0, Label: streamLabel})
	t.Mute(proc.PID())
	lfd, err := proc.BindAbstract(name)
	if err != nil {
		return nil, err
	}
	if err := proc.Listen(lfd, 16); err != nil {
		return nil, err
	}
	s := &SpanServer{
		k: k, t: t, proc: proc, lfd: lfd,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

// Close stops the relay loop and waits for it to unwind. The server's
// subscription is dropped and every client connection is closed.
func (s *SpanServer) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// loop is the server's single flow: accept pending clients, drain the
// tracer subscription, relay each span as one JSON line. A client that
// cannot keep up (send would block) loses that line; a closed client is
// reaped on its next send error.
func (s *SpanServer) loop() {
	defer close(s.done)
	sub := s.t.SubscribeBuf(serverSubBuf)
	defer s.t.Unsubscribe(sub)
	var fds []int
	defer func() {
		for _, fd := range fds {
			_ = s.proc.Close(fd)
		}
		_ = s.proc.Close(s.lfd)
	}()
	for {
		// Admit every pending connection before blocking on spans.
		for {
			fd, err := s.proc.Accept(s.lfd)
			if err != nil {
				break
			}
			fds = append(fds, fd)
		}
		select {
		case <-s.stop:
			return
		case sp, ok := <-sub.C():
			if !ok {
				return
			}
			fds = s.relay(fds, &sp)
			// Forward whatever else is already buffered before paying
			// another accept-poll syscall, bounded so a saturating
			// publisher cannot starve new connections.
			for n := 1; n < serverDrainMax; n++ {
				select {
				case sp, ok := <-sub.C():
					if !ok {
						return
					}
					fds = s.relay(fds, &sp)
					continue
				default:
				}
				break
			}
		case <-time.After(serverPoll):
		}
	}
}

// relay sends one span as a JSON line to every connected client, reaping
// connections whose peer is gone, and returns the surviving fd set.
func (s *SpanServer) relay(fds []int, sp *obs.Span) []int {
	if len(fds) == 0 {
		return fds
	}
	line, err := json.Marshal(sp)
	if err != nil {
		return fds
	}
	line = append(line, '\n')
	live := fds[:0]
	for _, fd := range fds {
		if _, err := s.proc.Send(fd, line); err != nil && !kernel.IsWouldBlock(err) {
			// Peer gone (or the connection was torn down): reap.
			_ = s.proc.Close(fd)
			continue
		}
		live = append(live, fd)
	}
	return live
}

// SpanClient tails a SpanServer from inside the simulation.
type SpanClient struct {
	proc *kernel.Proc
	fd   int
	buf  []byte
}

// DialSpans connects a fresh (muted) process to the named span stream.
func DialSpans(k *kernel.Kernel, name string) (*SpanClient, error) {
	if name == "" {
		name = DefaultStreamName
	}
	proc := k.NewProc(kernel.ProcSpec{UID: 0, Label: streamLabel})
	if t := k.Tracer(); t != nil {
		t.Mute(proc.PID())
	}
	fd, err := proc.ConnectAbstract(name)
	if err != nil {
		return nil, err
	}
	return &SpanClient{proc: proc, fd: fd}, nil
}

// Next returns the next streamed span, polling the (non-blocking)
// simulated socket until timeout. Returns ErrStreamTimeout when nothing
// arrived in time and the transport error when the stream closed.
func (c *SpanClient) Next(timeout time.Duration) (obs.Span, error) {
	deadline := time.Now().Add(timeout)
	for {
		if i := bytes.IndexByte(c.buf, '\n'); i >= 0 {
			line := c.buf[:i]
			c.buf = c.buf[i+1:]
			var sp obs.Span
			if err := json.Unmarshal(line, &sp); err != nil {
				return obs.Span{}, err
			}
			return sp, nil
		}
		data, err := c.proc.Recv(c.fd, 0)
		if len(data) > 0 {
			c.buf = append(c.buf, data...)
			continue
		}
		if err != nil && !kernel.IsWouldBlock(err) {
			return obs.Span{}, err
		}
		if time.Now().After(deadline) {
			return obs.Span{}, ErrStreamTimeout
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Close tears down the client's end of the stream.
func (c *SpanClient) Close() {
	_ = c.proc.Close(c.fd)
}
