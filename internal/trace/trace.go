// Package trace implements the Process Firewall's LOG record stream
// (paper Section 5.2: the LOG target "logs a variety of information about
// the current resource access in JSON format") and the trace store that
// rule generation consumes (Section 6.3).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
)

// Record is one logged resource access, the JSON form of pf.LogRecord with
// labels resolved to names so traces are meaningful across systems.
type Record struct {
	PID          int    `json:"pid"`
	SubjectLabel string `json:"subject"`
	ObjectLabel  string `json:"object"`
	Op           string `json:"op"`
	ResourceID   uint64 `json:"resource_id"`
	Path         string `json:"path,omitempty"`
	// Program and Entrypoint identify the innermost resolved entrypoint.
	Program    string `json:"program"`
	Entrypoint uint64 `json:"entrypoint"`
	// AdvWrite / AdvRead are the adversary accessibility of the resource —
	// what classification keys on (low integrity = adversary writable).
	AdvWrite bool   `json:"adv_write"`
	AdvRead  bool   `json:"adv_read"`
	Verdict  string `json:"verdict"`
	Prefix   string `json:"prefix,omitempty"`
}

// EpKey identifies an entrypoint: the program (or library/script) and the
// offset within it.
type EpKey struct {
	Program string
	Off     uint64
}

// Ep returns the record's entrypoint key.
func (r Record) Ep() EpKey { return EpKey{r.Program, r.Entrypoint} }

// LowIntegrity reports whether the accessed resource was
// adversary-modifiable, the paper's low-integrity criterion for
// classification (Section 6.3.1).
func (r Record) LowIntegrity() bool { return r.AdvWrite }

// DefaultCapacity bounds a Store created with NewStore. 65536 records is
// plenty for a rule-generation profiling run (the paper's traces are per
// entrypoint invocation) while capping a LOG-heavy workload at a few tens
// of megabytes instead of unbounded growth.
const DefaultCapacity = 1 << 16

// Store accumulates records in arrival order with ring semantics: once
// the capacity is reached, the oldest records are evicted. Safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	start   int // index of the oldest record once wrapped
	wrapped bool
	evicted uint64
	recs    []Record
}

// NewStore returns an empty store with DefaultCapacity.
func NewStore() *Store { return NewStoreCapacity(DefaultCapacity) }

// NewStoreCapacity returns an empty store holding the last capacity
// records (minimum 1).
func NewStoreCapacity(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{cap: capacity}
}

// Add appends a record, evicting the oldest once the store is full.
func (s *Store) Add(r Record) {
	s.mu.Lock() //pflint:allow — denial-log ingestion: runs only when a rule LOGs or a request drops, never on the steady-state accept path
	defer s.mu.Unlock()
	if s.cap == 0 {
		s.cap = DefaultCapacity // zero-value Store
	}
	if len(s.recs) < s.cap {
		s.recs = append(s.recs, r)
		return
	}
	s.recs[s.start] = r
	s.start = (s.start + 1) % s.cap
	s.wrapped = true
	s.evicted++
}

// Len returns the number of retained records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Evicted returns how many records ring eviction has discarded.
func (s *Store) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Records returns the retained records, oldest first.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	if !s.wrapped {
		copy(out, s.recs)
		return out
	}
	n := copy(out, s.recs[s.start:])
	copy(out[n:], s.recs[:s.start])
	return out
}

// Collector returns a pf.Engine logger that records into the store,
// resolving SIDs against tbl. Attach with engine.Logger = store.Collector(tbl).
func (s *Store) Collector(tbl *mac.SIDTable) func(pf.LogRecord) {
	return func(lr pf.LogRecord) {
		rec := Record{
			PID:          lr.PID,
			SubjectLabel: string(tbl.Label(lr.SubjectSID)),
			ObjectLabel:  string(tbl.Label(lr.ObjectSID)),
			Op:           lr.Op.String(),
			ResourceID:   lr.ResourceID,
			Path:         lr.Path,
			AdvWrite:     lr.AdvWrite,
			AdvRead:      lr.AdvRead,
			Verdict:      lr.Verdict.String(),
			Prefix:       lr.Prefix,
		}
		// The innermost non-interpreter frame is the program entrypoint;
		// interpreter frames, when present, refine it.
		for _, ep := range lr.Entrypoints {
			rec.Program, rec.Entrypoint = ep.Path, ep.Off
			break
		}
		s.Add(rec)
	}
}

// WriteJSON streams the store as JSON lines.
func (s *Store) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range s.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON loads JSON-lines records into a new store.
func ReadJSON(r io.Reader) (*Store, error) {
	s := NewStore()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		s.Add(rec)
	}
}

// ByEntrypoint groups the store's records per entrypoint, preserving
// per-entrypoint order (one record = one invocation, per the paper's
// definition "one invocation is one system call").
func (s *Store) ByEntrypoint() map[EpKey][]Record {
	out := make(map[EpKey][]Record)
	for _, r := range s.Records() {
		k := r.Ep()
		out[k] = append(out[k], r)
	}
	return out
}
