package trace_test

// External test package: worldgen and fleet import rulegen, which imports
// trace, so this stress lives outside package trace to break the cycle.

import (
	"sync"
	"testing"
	"time"

	"pfirewall/internal/fleet"
	"pfirewall/internal/obs"
	"pfirewall/internal/pf"
	"pfirewall/internal/programs"
	"pfirewall/internal/trace"
	"pfirewall/internal/worldgen"
)

// TestStreamChurnUnderFleet is the -race stress: subscribers connect and
// disconnect while a churned fleet drives traced traffic through the same
// kernel. Nothing here asserts on span contents — the test is that no data
// race, deadlock, or panic occurs while the subscriber set churns.
func TestStreamChurnUnderFleet(t *testing.T) {
	cfg := pf.Optimized()
	gw := worldgen.Build(worldgen.Tiny, programs.WorldOpts{
		PF: &cfg, MACEnforcing: true,
		Obs: obs.New(), ObsEvery: 1, TraceEvery: 2,
	})
	srv, err := trace.ServeSpans(gw.K, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fl := fleet.New(gw, fleet.Config{
		Seed: 11, Instances: 3, Duration: 500 * time.Millisecond,
		ProcChurn: true,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		fl.Run()
	}()

	var wg sync.WaitGroup
	stop := time.Now().Add(450 * time.Millisecond)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				cl, err := trace.DialSpans(gw.K, "")
				if err != nil {
					t.Error(err)
					return
				}
				// Read a little, then churn away regardless of outcome.
				for i := 0; i < 3; i++ {
					if _, err := cl.Next(20 * time.Millisecond); err != nil {
						break
					}
				}
				cl.Close()
			}
		}()
	}
	wg.Wait()
	<-done

	if got := gw.K.Tracer().Total(); got == 0 {
		t.Error("fleet run published no spans")
	}
}
