package pftables

import (
	"strings"
	"testing"

	"pfirewall/internal/pf"
)

// --- -R replace-by-position ---------------------------------------------

func TestReplaceByPosition(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	lines := []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -A input -s user_t -o FILE_OPEN -j DROP`,
	}
	if _, err := InstallAll(env, engine, lines); err != nil {
		t.Fatal(err)
	}

	if _, err := Install(env, engine, `pftables -R input 2 -s httpd_t -d shadow_t -o FILE_OPEN -j DROP`); err != nil {
		t.Fatal(err)
	}
	c, _ := engine.Chain("input")
	if len(c.Rules) != 3 {
		t.Fatalf("rule count after replace = %d, want 3", len(c.Rules))
	}
	got := c.Rules[1].String(env.Policy.SIDs())
	if !strings.Contains(got, "shadow_t") || !strings.Contains(got, "DROP") {
		t.Fatalf("position 2 after replace renders %q, want the new shadow_t DROP", got)
	}

	// Out-of-range and malformed positions fail cleanly.
	if _, err := Install(env, engine, `pftables -R input 9 -o FILE_OPEN -j DROP`); err == nil {
		t.Fatal("replace at position 9 of a 3-rule chain must fail")
	}
	if _, err := Parse(env, `pftables -R input -o FILE_OPEN -j DROP`); err == nil {
		t.Fatal("-R without a position must fail to parse")
	}
	if _, err := Parse(env, `pftables -R input 0 -o FILE_OPEN -j DROP`); err == nil {
		t.Fatal("-R position 0 must fail to parse (positions are 1-based)")
	}
}

func TestReplaceByPositionMangle(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, `pftables -t mangle -A input -o FILE_OPEN -j LOG --prefix "a"`); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(env, engine, `pftables -t mangle -R input 1 -o FILE_OPEN -j LOG --prefix "b"`); err != nil {
		t.Fatal(err)
	}
	c, _ := engine.Chain("mangle/input")
	if len(c.Rules) != 1 || !strings.Contains(c.Rules[0].String(env.Policy.SIDs()), `"b"`) {
		t.Fatalf("mangle replace did not land: %v", Save(engine))
	}
}

// --- -D --tag remove-by-tag ---------------------------------------------

func TestRemoveByTag(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	// Two tagged churn rules and one untagged bystander.
	for i := 0; i < 2; i++ {
		line := `pftables -A input -s user_t -o FILE_UNLINK -j DROP`
		if _, err := InstallAt(env, engine, line, pf.Pos{File: "<wave>", Line: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Install(env, engine, `pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`); err != nil {
		t.Fatal(err)
	}

	gen0 := engine.Generation()
	if _, err := Install(env, engine, `pftables -D input --tag <wave>`); err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 1 {
		t.Fatalf("rule count after tag drain = %d, want 1 (the bystander)", engine.RuleCount())
	}
	if got := engine.Generation() - gen0; got != 1 {
		t.Fatalf("tag drain bumped generation %d times, want 1 (one batch, one publish)", got)
	}
	// Draining a tag with no matches is a no-op, not an error.
	if _, err := Install(env, engine, `pftables -D input --tag <wave>`); err != nil {
		t.Fatal(err)
	}
}

// --- -F flush ------------------------------------------------------------

func TestFlushCommand(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	lines := []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
		`pftables -t mangle -A input -o FILE_OPEN -j LOG`,
		`pftables -A syscallbegin -o SYSCALL_BEGIN -j ACCEPT`,
	}
	if _, err := InstallAll(env, engine, lines); err != nil {
		t.Fatal(err)
	}

	// Single-chain flush leaves the others alone.
	if _, err := Install(env, engine, `pftables -F input`); err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 2 {
		t.Fatalf("rule count after -F input = %d, want 2", engine.RuleCount())
	}
	// Global flush empties everything.
	if _, err := Install(env, engine, `pftables -F`); err != nil {
		t.Fatal(err)
	}
	if engine.RuleCount() != 0 {
		t.Fatalf("rule count after -F = %d, want 0", engine.RuleCount())
	}
}

// --- transactional batch apply ------------------------------------------

func TestApplyAllFromSinglePublish(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	gen0 := engine.Generation()
	st0 := engine.PublishStats()

	n, err := ApplyAllFrom(env, engine, "batch.pft", []string{
		`# comment`,
		`pftables -N side`,
		`pftables -A input -s httpd_t -o FILE_OPEN -j side`,
		`pftables -A side -o FILE_OPEN -j DROP`,
		``,
		`pftables -A syscallbegin -o SYSCALL_BEGIN -j ACCEPT`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("applied %d commands, want 4", n)
	}
	if got := engine.Generation() - gen0; got != 1 {
		t.Fatalf("batch bumped generation %d times, want exactly 1", got)
	}
	if got := engine.PublishStats().Publishes - st0.Publishes; got != 1 {
		t.Fatalf("batch published %d times, want 1", got)
	}
	if _, ok := engine.Chain("side"); !ok {
		t.Fatal("side chain missing after batch")
	}
	if engine.RuleCount() != 3 {
		t.Fatalf("rule count = %d, want 3", engine.RuleCount())
	}
	// Rules carry the batch source for tag-targeting and provenance spans.
	c, _ := engine.Chain("input")
	if c.Rules[0].Src.File != "batch.pft" {
		t.Fatalf("rule source = %q, want batch.pft", c.Rules[0].Src.File)
	}
}

func TestApplyAllFromAtomicOnError(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, `pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`); err != nil {
		t.Fatal(err)
	}
	ver0 := engine.Version()

	// A flush+reinstall batch with a bad line must leave the engine
	// untouched — unlike InstallAll, which installs up to the bad line.
	n, err := ApplyAllFrom(env, engine, "reload.pft", []string{
		`pftables -F`,
		`pftables -A input -s user_t -o FILE_OPEN -j DROP`,
		`pftables -A input -o BOGUS_OP -j DROP`,
	})
	if err == nil {
		t.Fatal("batch with a bad line must fail")
	}
	if n != 0 {
		t.Fatalf("failed batch reported %d applied commands, want 0", n)
	}
	if engine.Version() != ver0 {
		t.Fatalf("failed batch published: version %d -> %d", ver0, engine.Version())
	}
	if engine.RuleCount() != 1 {
		t.Fatalf("failed batch changed the rule base: count = %d, want 1", engine.RuleCount())
	}
}

func TestApplyAllGatedVeto(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	ver0 := engine.Version()
	gateRan := false
	_, err := ApplyAllGated(env, engine, "gated.pft", []string{
		`pftables -A input -s httpd_t -o FILE_OPEN -j ACCEPT`,
	}, func(chains map[string]*pf.Chain) error {
		gateRan = true
		if c := chains["input"]; c == nil || len(c.Rules) != 1 {
			t.Errorf("gate saw stale chains: %+v", chains)
		}
		return &Error{Err: errVeto}
	})
	if err == nil || !gateRan {
		t.Fatalf("gate veto not honored (ran=%v err=%v)", gateRan, err)
	}
	if engine.Version() != ver0 || engine.RuleCount() != 0 {
		t.Fatal("vetoed batch reached the rule base")
	}
}

var errVeto = &vetoError{}

type vetoError struct{}

func (*vetoError) Error() string { return "vetoed" }
