package pftables

import (
	"strings"
	"testing"

	"pfirewall/internal/pf"
)

// socketRules covers every new socket/port keyword: the four data-plane
// operations, FIFO_CREATE, and the PEER_CRED / SOCK_NS / PORT matches in
// all their argument spellings.
var socketRules = []string{
	`pftables -o SOCKET_LISTEN -j DROP`,
	`pftables -o SOCKET_ACCEPT -m PEER_CRED --uid 1000 -j DROP`,
	`pftables -o SOCKET_SENDMSG,SOCKET_RECVMSG -m SOCK_NS --ns abstract -j DROP`,
	`pftables -o FIFO_CREATE -d tmp_t -j DROP`,
	`pftables -o UNIX_STREAM_SOCKET_CONNECT -m SOCK_NS --ns port -m PORT --min 1 --max 1023 -j DROP`,
	`pftables -o UNIX_STREAM_SOCKET_CONNECT -m PEER_CRED --uid 0 --nequal -j DROP`,
	`pftables -o SOCKET_ACCEPT -m PEER_CRED --uid C_PORT --nequal -j DROP`,
	`pftables -o SOCKET_BIND -m SOCK_NS --ns fs -j LOG --prefix "fsbind"`,
}

func TestSocketRuleRoundTrip(t *testing.T) {
	env := testEnv()
	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := InstallAll(env, engine, socketRules); err != nil {
		t.Fatal(err)
	}

	saved := Save(engine)
	engine2 := pf.New(env.Policy, pf.Optimized())
	if _, err := InstallAll(env, engine2, saved); err != nil {
		t.Fatalf("restore: %v\nsaved:\n%s", err, strings.Join(saved, "\n"))
	}
	saved2 := Save(engine2)
	if len(saved) != len(saved2) {
		t.Fatalf("save lengths differ: %d vs %d", len(saved), len(saved2))
	}
	for i := range saved {
		if saved[i] != saved2[i] {
			t.Errorf("line %d not a fixed point:\n%s\n%s", i, saved[i], saved2[i])
		}
	}
}

func TestPortSingleSpellingNormalizes(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -o SOCKET_BIND -m PORT --port 631 -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	m := cmd.Rule.Matches[0].(*pf.PortMatch)
	if m.Min != 631 || m.Max != 631 {
		t.Errorf("PORT --port 631 = [%d,%d], want [631,631]", m.Min, m.Max)
	}
	// --port renders as --min/--max, which must reparse identically.
	if !strings.Contains(m.Args(), "--min 631 --max 631") {
		t.Errorf("Args() = %q", m.Args())
	}
}

func TestSockNSAcceptsAliases(t *testing.T) {
	env := testEnv()
	for spelling, want := range map[string]string{"file": "fs", "fs": "fs", "abstract": "abstract", "port": "port"} {
		cmd, err := Parse(env, `pftables -o SOCKET_BIND -m SOCK_NS --ns `+spelling+` -j DROP`)
		if err != nil {
			t.Fatalf("--ns %s: %v", spelling, err)
		}
		if got := cmd.Rule.Matches[0].(*pf.SockNSMatch).NS; got != want {
			t.Errorf("--ns %s parsed as %q, want %q", spelling, got, want)
		}
	}
	if _, err := Parse(env, `pftables -m SOCK_NS --ns bogus -j DROP`); err == nil {
		t.Error("bogus namespace should fail to parse")
	}
}

// TestFileCreateCoversFifoCreate pins the backward-compatibility expansion:
// rule files written when mkfifo was mediated as FILE_CREATE keep covering
// fifo creation, and the expansion is a Save/restore fixed point.
func TestFileCreateCoversFifoCreate(t *testing.T) {
	env := testEnv()
	cmd, err := Parse(env, `pftables -o FILE_CREATE -j DROP`)
	if err != nil {
		t.Fatal(err)
	}
	if !cmd.Rule.Ops.Has(pf.OpFifoCreate) {
		t.Error("FILE_CREATE must expand to cover FIFO_CREATE")
	}
	if !cmd.Rule.Ops.Has(pf.OpFileCreate) {
		t.Error("expansion must keep FILE_CREATE itself")
	}
	if cmd.Rule.Ops.Has(pf.OpSocketBind) {
		t.Error("expansion must not leak into unrelated ops")
	}

	engine := pf.New(env.Policy, pf.Optimized())
	if _, err := Install(env, engine, `pftables -o FILE_CREATE -j DROP`); err != nil {
		t.Fatal(err)
	}
	saved := Save(engine)
	engine2 := pf.New(env.Policy, pf.Optimized())
	if _, err := InstallAll(env, engine2, saved); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if saved2 := Save(engine2); saved[0] != saved2[0] {
		t.Errorf("not a fixed point:\n%s\n%s", saved[0], saved2[0])
	}
}

func TestSocketMatchParseErrors(t *testing.T) {
	env := testEnv()
	for _, line := range []string{
		`pftables -m PEER_CRED -j DROP`,
		`pftables -m PEER_CRED --uid -j DROP`,
		`pftables -m SOCK_NS -j DROP`,
		`pftables -m PORT -j DROP`,
		`pftables -m PORT --port 99999 -j DROP`,
	} {
		if _, err := Parse(env, line); err == nil {
			t.Errorf("%q should fail to parse", line)
		}
	}
}
