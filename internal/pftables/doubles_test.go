package pftables

import (
	"pfirewall/internal/mac"
	"pfirewall/internal/pf"
	"pfirewall/internal/ustack"
)

// testProc is a minimal pf.Process for end-to-end parser tests.
type testProc struct {
	sid   mac.SID
	exec  string
	mem   *ustack.Memory
	stack *ustack.Stack
	as    *ustack.AddressSpace
	ps    *pf.ProcState
}

func newTestProc(pol *mac.Policy, label mac.Label, exec string) *testProc {
	mem := ustack.NewMemory(4096)
	return &testProc{
		sid:   pol.SIDs().SID(label),
		exec:  exec,
		mem:   mem,
		stack: ustack.NewStack(mem, 1000),
		as:    ustack.NewAddressSpace(1),
		ps:    pf.NewProcState(),
	}
}

func (p *testProc) PID() int                        { return 1 }
func (p *testProc) SubjectSID() mac.SID             { return p.sid }
func (p *testProc) ExecPath() string                { return p.exec }
func (p *testProc) UserRegs() ustack.Regs           { return p.stack.Regs }
func (p *testProc) UserMemory() *ustack.Memory      { return p.mem }
func (p *testProc) AddrSpace() *ustack.AddressSpace { return p.as }
func (p *testProc) Interp() (ustack.Lang, uint64)   { return ustack.LangNative, 0 }
func (p *testProc) StackGen() uint64                { return p.mem.Gen() + p.stack.Gen() }
func (p *testProc) PFState() *pf.ProcState          { return p.ps }

// testRes is a minimal pf.Resource.
type testRes struct {
	sid mac.SID
	id  uint64
}

func (r testRes) SID() mac.SID                    { return r.sid }
func (r testRes) ID() uint64                      { return r.id }
func (r testRes) Path() string                    { return "" }
func (r testRes) Class() mac.Class                { return mac.ClassFile }
func (r testRes) OwnerUID() int                   { return 0 }
func (r testRes) LinkTargetOwnerUID() (int, bool) { return 0, false }
